(* eric: command-line front end to the framework.

   Subcommands mirror the paper's workflow:
     compile   MiniC -> plain RV64 image (the baseline toolchain)
     build     MiniC -> encrypted package for one device (compiler + ERIC)
     inspect   describe a plain image or an encrypted package
     disasm    disassemble a plain image (what a static attacker does)
     analyze   static-analysis metrics of an image or package text
     run       execute a plain image, or a package on its device
     puf       show a device's PUF identity and derived key
     fleet     enroll devices, run deployment campaigns, rotate keys
     verif     differential fuzzing and fault-injection campaigns
     serve     simulated OTA update service with SLO accounting

   Exit codes are uniform across subcommands:
     0    success
     1    internal error (compilation failure, I/O, ...)
     2    command-line usage error (cmdliner)
     3    campaign found failures or did not complete
     4    malformed input (unparseable package or image)
     5    the device's validation unit refused a package
     124  the executed program faulted
     125  the executed program ran out of fuel *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc data)

(* Exit codes, as documented in every subcommand's EXIT STATUS section. *)
let exit_internal = 1
let exit_failures = 3
let exit_malformed = 4
let exit_refused = 5

let die ?(code = exit_internal) msg =
  Printf.eprintf "error: %s\n" msg;
  exit code

let or_die = function Ok v -> v | Error msg -> die msg

let or_die_malformed = function Ok v -> v | Error msg -> die ~code:exit_malformed msg

let load_error_code = function
  | Eric.Target.Malformed _ -> exit_malformed
  | Eric.Target.Rejected _ -> exit_refused
  | Eric.Target.Key_unavailable _ -> exit_refused

let campaign_exits =
  [
    Cmd.Exit.info 0 ~doc:"on success.";
    Cmd.Exit.info exit_internal ~doc:"on internal errors (compilation failure, I/O).";
    Cmd.Exit.info exit_failures ~doc:"when the campaign found failures or did not complete.";
    Cmd.Exit.info exit_malformed ~doc:"when an input file is malformed.";
  ]

let run_exits =
  [
    Cmd.Exit.info 0 ~doc:"on success (the program's own exit code otherwise).";
    Cmd.Exit.info exit_malformed
      ~doc:"when the input is neither a well-formed package nor a plain image.";
    Cmd.Exit.info exit_refused
      ~doc:"when the device's validation unit refused the package (framing or signature).";
    Cmd.Exit.info 124 ~doc:"when the program faulted.";
    Cmd.Exit.info 125 ~doc:"when the program ran out of fuel.";
  ]

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let source_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE.mc" ~doc:"MiniC source file.")

let output_arg ~default =
  Arg.(value & opt string default & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")

(* Device ids travel as strings and are parsed in the term body, not by an
   Arg.conv: a malformed id is malformed *input* (exit 4, like a garbage
   package), not a command-line usage error (exit 2). *)
let device_id_of_string s =
  match Int64.of_string_opt s with
  | Some id -> id
  | None ->
    die ~code:exit_malformed
      (Printf.sprintf "malformed device id %S (expected decimal or 0x-prefixed hex)" s)

let device_id_arg =
  Term.(
    const device_id_of_string
    $ Arg.(
        value
        & opt string "1"
        & info [ "device-id" ] ~docv:"ID"
            ~doc:
              "Target device identity (simulated silicon seed), decimal or 0x-prefixed \
               hex."))

let no_compress_arg =
  Arg.(value & flag & info [ "no-compress" ] ~doc:"Disable RVC compression.")

let no_optimize_arg =
  Arg.(value & flag & info [ "no-optimize" ] ~doc:"Disable IR optimisation passes.")

let mode_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "full" ] -> Ok Eric.Config.Full
    | [ "partial" ] -> Ok (Eric.Config.Partial Eric.Config.Select_all)
    | [ "partial"; frac ] -> (
      match float_of_string_opt frac with
      | Some fraction when fraction >= 0.0 && fraction <= 1.0 ->
        Ok (Eric.Config.Partial (Eric.Config.Select_fraction { fraction; seed = 0x5EEDL }))
      | _ -> Error (`Msg "partial:<fraction in 0..1>"))
    | [ "field-imm" ] -> Ok (Eric.Config.Field (Eric.Config.Imm_fields, Eric.Config.Select_all))
    | [ "field-all" ] ->
      Ok (Eric.Config.Field (Eric.Config.All_but_opcode, Eric.Config.Select_all))
    | [ "field-cf" ] ->
      Ok (Eric.Config.Field (Eric.Config.Control_flow, Eric.Config.Select_all))
    | _ -> Error (`Msg "expected full | partial[:frac] | field-imm | field-all | field-cf")
  in
  Arg.conv (parse, fun fmt m -> Eric.Config.pp_mode fmt m)

let mode_arg_with default =
  Arg.(
    value
    & opt mode_conv default
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Encryption mode: full, partial[:frac], field-imm, field-all, field-cf.")

let mode_arg = mode_arg_with Eric.Config.Full

let options_of ~no_compress ~no_optimize =
  { Eric_cc.Driver.default_options with
    Eric_cc.Driver.compress = not no_compress;
    optimize = not no_optimize }

let obfuscate_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "obfuscate" ] ~docv:"PASSES"
        ~doc:
          "Comma-separated obfuscation passes applied to the optimised IR: constants, \
           arith, opaque, dummy, flatten.  Passes always run in that canonical order \
           regardless of how the list is spelled.")

let obf_seed_arg =
  Arg.(
    value
    & opt int64 Eric_obf.Obf.default_seed
    & info [ "obf-seed" ] ~docv:"SEED"
        ~doc:
          "Obfuscation build seed; all pass randomness derives from it, so equal \
           seed + source + passes reproduce a byte-identical image.")

(* Parse --obfuscate; an unknown pass name is an input error (exit 4),
   the same class as a malformed file. *)
let obf_config_of ~obfuscate ~obf_seed =
  match obfuscate with
  | None -> None
  | Some spec -> (
    match Eric_obf.Obf.passes_of_string spec with
    | Error msg -> die ~code:exit_malformed msg
    | Ok passes -> Some { Eric_obf.Obf.passes; seed = obf_seed })

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let telemetry_format_conv =
  let parse = function
    | "table" -> Ok `Table
    | "jsonl" -> Ok `Jsonl
    | "trace" -> Ok `Trace
    | s -> Error (`Msg (Printf.sprintf "unknown telemetry format %S (expected table, jsonl or trace)" s))
  in
  let print fmt f =
    Format.pp_print_string fmt (match f with `Table -> "table" | `Jsonl -> "jsonl" | `Trace -> "trace")
  in
  Arg.conv (parse, print)

let telemetry_arg =
  Arg.(
    value
    & opt ~vopt:(Some `Table) (some telemetry_format_conv) None
    & info [ "telemetry" ] ~docv:"FORMAT"
        ~doc:
          "Record pipeline telemetry (spans, counters, gauges) and report it when the command \
           finishes.  FORMAT is table (default), jsonl, or trace (Chrome trace_event JSON for \
           about:tracing / Perfetto).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write the telemetry report to FILE instead of stderr.")

(* Enable recording now and export at process exit, so even the [exit]-ing
   run command reports.  [at_exit] fires exactly once on every exit path. *)
let setup_telemetry format trace_out =
  match format with
  | None -> ()
  | Some format ->
    Eric_telemetry.Control.enable ();
    at_exit (fun () ->
        let snapshot = Eric_telemetry.Snapshot.capture () in
        let rendered =
          match format with
          | `Table -> Format.asprintf "%a" Eric_telemetry.Export.pp_table snapshot
          | `Jsonl -> Eric_telemetry.Export.to_jsonl snapshot
          | `Trace -> Eric_telemetry.Export.to_chrome_trace snapshot
        in
        match trace_out with
        | Some path -> write_file path (Bytes.of_string rendered)
        | None ->
          prerr_string rendered;
          flush stderr)

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint_format_conv =
  let parse s =
    match Eric_lint.Engine.format_of_string s with
    | Some f -> Ok f
    | None -> Error (`Msg (Printf.sprintf "unknown lint format %S (expected table or jsonl)" s))
  in
  Arg.conv (parse, fun fmt f -> Format.pp_print_string fmt (Eric_lint.Engine.format_name f))

let lint_format_arg =
  Arg.(
    value
    & opt lint_format_conv Eric_lint.Engine.Table
    & info [ "lint-format" ] ~docv:"FORMAT" ~doc:"Diagnostics rendering: table or jsonl.")

let max_leakage_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-leakage" ] ~docv:"FRACTION"
        ~doc:
          "Escalate a leakage metric (plaintext/opcode/branch-offset fraction, legible call \
           edges or prologues) above FRACTION to an error.")

let checks_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checks" ] ~docv:"PREFIXES"
        ~doc:"Comma-separated check-id prefixes to keep, e.g. 'mc.,leak.cfg'.")

let lint_flag_arg =
  Arg.(value & flag & info [ "lint" ] ~doc:"Run the machine-code and leakage linters and report.")

let attacker_conv =
  let parse s =
    match Eric_lint.Leakage.attacker_of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown attacker %S (expected linear or recursive)" s))
  in
  Arg.conv
    (parse, fun fmt a -> Format.pp_print_string fmt (Eric_lint.Leakage.attacker_to_string a))

let attacker_arg =
  Arg.(
    value
    & opt (some attacker_conv) None
    & info [ "attacker" ] ~docv:"MODEL"
        ~doc:
          "Simulate an attacker against the policy's plaintext bits and score the program \
           structure it recovers: 'linear' (sweep classification) or 'recursive' \
           (recursive descent from the entry point with value-set resolution of computed \
           jumps).  The score participates in the --max-leakage gate.")

let taint_arg =
  Arg.(
    value & flag
    & info [ "taint" ]
        ~doc:
          "Check the secret-taint obligation over the build pipeline: KMU-derived key \
           material must never reach a plaintext package field or telemetry output.  Any \
           finding is an error.")

let lint_error_arg =
  Arg.(
    value & flag
    & info [ "lint-error" ]
        ~doc:"Run the linters and fail on any warning-or-error diagnostic (implies --lint).")

(* Machine-code verification plus leakage prediction for one policy on one
   plain image — what build/analyze/lint all share. *)
let lint_image ?max_leakage ?attacker ~mode image =
  let mc = Eric_lint.Mc_verify.verify image in
  let report, leak = Eric.Policy_lint.lint ?max_leakage ~mode image in
  let structure =
    Option.map (fun a -> Eric.Policy_lint.recover ~mode ~attacker:a image) attacker
  in
  let struct_diags =
    match structure with
    | Some s -> Eric_lint.Leakage.structure_diags ?max_leakage s
    | None -> []
  in
  (mc @ leak @ struct_diags, report, structure)

let lint_source ?max_leakage ?attacker ?obf ~mode ~options source =
  (* Compile without the driver's verify-abort so IR findings are listed
     rather than turned into an internal error, then verify the image. *)
  let hook = Option.map Eric_obf.Obf.hook obf in
  let options =
    match hook with
    | None -> options
    | Some (t, _) -> { options with Eric_cc.Driver.transform = Some t }
  in
  let ( let* ) = Result.bind in
  let* ir =
    Eric_cc.Driver.compile_to_ir ~options:{ options with Eric_cc.Driver.verify_ir = false } source
  in
  let ir_diags = Eric_cc.Ir_verify.verify ir in
  match Eric_cc.Ir_verify.errors ir_diags with
  | _ :: _ -> Ok (ir_diags, None, None)
  | [] -> (
    let* image = Eric_cc.Driver.compile ~options source in
    match hook with
    | None ->
      let mc_leak, report, structure = lint_image ?max_leakage ?attacker ~mode image in
      Ok (ir_diags @ mc_leak, Some report, structure)
    | Some (_, annot) ->
      (* Obfuscated build: the attacker is graded Jaccard-style against
         the decoy-subtracted ground truth, so swallowed decoys *lower*
         the score and --max-leakage gates the residual leakage. *)
      let mc_leak, report, _ = lint_image ?max_leakage ~mode image in
      let structure =
        Option.map (fun a -> Eric_obf.Obf.grade ~annot ~attacker:a image) attacker
      in
      let struct_diags =
        match structure with
        | Some s -> Eric_lint.Leakage.structure_diags ?max_leakage s
        | None -> []
      in
      Ok (ir_diags @ mc_leak @ struct_diags, Some report, structure))

let pp_leakage_report fmt (r : Eric_lint.Leakage.report) =
  Format.fprintf fmt
    "leakage: %.0f%% parcels plaintext, %.0f%% opcodes visible, %d/%d branch offsets, %d/%d \
     call edges, %d/%d prologues legible@."
    (100. *. r.Eric_lint.Leakage.plaintext_fraction)
    (100. *. r.Eric_lint.Leakage.opcode_visible_fraction)
    r.Eric_lint.Leakage.branch_offsets_plaintext r.Eric_lint.Leakage.branch_sites
    r.Eric_lint.Leakage.call_edges_plaintext r.Eric_lint.Leakage.call_sites
    r.Eric_lint.Leakage.prologues_plaintext r.Eric_lint.Leakage.prologues

let render_diags ~format ~checks diags =
  let checks =
    match checks with
    | None -> []
    | Some s -> List.filter (fun p -> p <> "") (String.split_on_char ',' s)
  in
  let diags = Eric_lint.Engine.filter ~checks diags in
  Eric_lint.Engine.render format Format.std_formatter (Eric_lint.Diag.sort diags);
  diags

let pp_structure fmt (s : Eric_lint.Leakage.structure) =
  Format.fprintf fmt
    "structure (%s): score %.2f, code %d/%d, functions %d/%d, branch targets %d/%d, call \
     edges %d/%d, indirect resolved %d/%d@."
    (Eric_lint.Leakage.attacker_to_string s.Eric_lint.Leakage.s_attacker)
    s.Eric_lint.Leakage.structure_score s.Eric_lint.Leakage.code_found
    s.Eric_lint.Leakage.code_total s.Eric_lint.Leakage.functions_found
    s.Eric_lint.Leakage.functions_total s.Eric_lint.Leakage.branch_targets_found
    s.Eric_lint.Leakage.branch_targets_total s.Eric_lint.Leakage.call_edges_found
    s.Eric_lint.Leakage.call_edges_total s.Eric_lint.Leakage.indirect_resolved
    s.Eric_lint.Leakage.indirect_total

let lint_cmd =
  let run path workloads mode max_leakage attacker taint format checks lint_error no_compress
      no_optimize obfuscate obf_seed telemetry trace_out =
    setup_telemetry telemetry trace_out;
    let options = options_of ~no_compress ~no_optimize in
    let obf = obf_config_of ~obfuscate ~obf_seed in
    let lint_one label (diags, report, structure) =
      if workloads <> [] || path = None then Format.printf "== %s ==@." label;
      let diags = render_diags ~format ~checks diags in
      (match (report, format) with
      | Some r, Eric_lint.Engine.Table -> pp_leakage_report Format.std_formatter r
      | _ -> ());
      (match (structure, format) with
      | Some s, Eric_lint.Engine.Table -> pp_structure Format.std_formatter s
      | Some s, Eric_lint.Engine.Jsonl ->
        print_endline
          (Eric_telemetry.Json.to_string
             (Eric_telemetry.Json.Obj
                [ ("structure", Eric_lint.Leakage.structure_to_json s);
                  ("label", Eric_telemetry.Json.Str label) ]))
      | None, _ -> ());
      diags
    in
    let inputs =
      match (workloads, path) with
      | [], None when not taint ->
        Printf.eprintf "error: give a FILE or --workloads\n";
        exit 2
      | [], None -> []
      | [], Some path ->
        let data = read_file path in
        let result =
          match Eric.Package.parse (Bytes.of_string data) with
          | Ok pkg ->
            (match pkg.Eric.Package.obf with
            | Some (mask, seed) ->
              Format.printf "package obfuscation: passes %s, seed 0x%Lx@."
                (String.concat ","
                   (List.map Eric_obf.Obf.pass_name (Eric_obf.Obf.passes_of_mask mask)))
                seed
            | None -> Format.printf "package obfuscation: none@.");
            Error "cannot lint an encrypted package; lint runs before packaging"
          | Error _ -> (
            match Eric_rv.Program.of_binary (Bytes.of_string data) with
            | Ok image ->
              Ok (lint_image ?max_leakage ?attacker ~mode image |> fun (d, r, s) -> (d, Some r, s))
            | Error _ -> lint_source ?max_leakage ?attacker ?obf ~mode ~options data)
        in
        [ (path, result) ]
      | names, _ ->
        List.map
          (fun name ->
            match Eric_workloads.Workloads.by_name name with
            | None -> (name, Error (Printf.sprintf "unknown workload %s" name))
            | Some w ->
              ( name,
                lint_source ?max_leakage ?attacker ?obf ~mode ~options
                  w.Eric_workloads.Workloads.source ))
          (if names = [ "all" ] then Eric_workloads.Workloads.names else names)
    in
    let all_diags =
      List.concat_map (fun (label, result) -> lint_one label (or_die result)) inputs
    in
    let taint_diags =
      if not taint then []
      else begin
        let result, diags = Eric.Pipeline_taint.lint () in
        if workloads <> [] || path = None then Format.printf "== pipeline taint ==@.";
        let diags = render_diags ~format ~checks diags in
        (if diags = [] && format = Eric_lint.Engine.Table then
           Format.printf "taint: obligation holds (%d values tainted, 0 reach a sink)@."
             (List.length result.Eric_lint.Taint.tainted));
        diags
      end
    in
    let all_diags = all_diags @ taint_diags in
    let fail_on = if lint_error then Eric_lint.Diag.Warning else Eric_lint.Diag.Error in
    exit (Eric_lint.Engine.exit_code ~fail_on all_diags)
  in
  let path_arg =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"MiniC source or plain image (.rexe).")
  in
  let workloads_arg =
    Arg.(
      value
      & opt ~vopt:[ "all" ] (list string) []
      & info [ "workloads" ] ~docv:"NAMES"
          ~doc:"Lint the named built-in workloads ('all' or no value = every one).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Verify IR (for sources), machine code and encryption-policy leakage; exit 1 on \
          errors (with --lint-error, also on warnings).")
    Term.(
      const run $ path_arg $ workloads_arg $ mode_arg $ max_leakage_arg $ attacker_arg
      $ taint_arg $ lint_format_arg $ checks_arg $ lint_error_arg $ no_compress_arg
      $ no_optimize_arg $ obfuscate_arg $ obf_seed_arg $ telemetry_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let compile_cmd =
  let run source output no_compress no_optimize =
    let options = options_of ~no_compress ~no_optimize in
    let image = or_die (Eric_cc.Driver.compile ~options (read_file source)) in
    write_file output (Eric_rv.Program.to_binary ~with_symbols:true image);
    Format.printf "%s: %a@." output Eric_rv.Program.pp_summary image
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile MiniC to a plain RV64 image (with symbols; see disasm).")
    Term.(const run $ source_arg $ output_arg ~default:"a.rexe" $ no_compress_arg $ no_optimize_arg)

let build_cmd =
  let run source output device_id mode lint lint_error max_leakage format checks no_compress
      no_optimize obfuscate obf_seed telemetry trace_out =
    setup_telemetry telemetry trace_out;
    let options = options_of ~no_compress ~no_optimize in
    let obf_cfg = obf_config_of ~obfuscate ~obf_seed in
    let options =
      match obf_cfg with None -> options | Some cfg -> Eric_obf.Obf.options ~base:options cfg
    in
    (* Pass mask + seed ride in the (signed) package header so any later
       consumer can tell how the image was produced. *)
    let obf =
      Option.map
        (fun cfg ->
          (Eric_obf.Obf.mask_of_passes cfg.Eric_obf.Obf.passes, cfg.Eric_obf.Obf.seed))
        obf_cfg
    in
    let target = Eric.Target.of_id device_id in
    let key = Eric.Protocol.provision target in
    let build = or_die (Eric.Source.build ~options ?obf ~mode ~key (read_file source)) in
    if lint || lint_error then begin
      let diags, report, _ = lint_image ?max_leakage ~mode build.Eric.Source.image in
      let diags = render_diags ~format ~checks diags in
      if format = Eric_lint.Engine.Table then pp_leakage_report Format.std_formatter report;
      if lint_error && Eric_lint.Engine.fails ~fail_on:Eric_lint.Diag.Warning diags then begin
        Printf.eprintf "error: lint diagnostics with --lint-error\n";
        exit 1
      end
    end;
    write_file output (Eric.Package.serialize build.Eric.Source.package);
    Format.printf "%s: %a@." output Eric.Package.pp_summary build.Eric.Source.package;
    Format.printf "plain %d B -> package %d B (%+.2f%%), %d/%d parcels encrypted@."
      build.Eric.Source.plain_size build.Eric.Source.package_size
      (100.0
      *. float_of_int (build.Eric.Source.package_size - build.Eric.Source.plain_size)
      /. float_of_int build.Eric.Source.plain_size)
      build.Eric.Source.stats.Eric.Encrypt.encrypted_parcels
      build.Eric.Source.stats.Eric.Encrypt.parcels
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Compile and encrypt a package for one device.")
    Term.(
      const run $ source_arg $ output_arg ~default:"a.epkg" $ device_id_arg $ mode_arg
      $ lint_flag_arg $ lint_error_arg $ max_leakage_arg $ lint_format_arg $ checks_arg
      $ no_compress_arg $ no_optimize_arg $ obfuscate_arg $ obf_seed_arg $ telemetry_arg
      $ trace_out_arg)

let emit_asm_cmd =
  let run source output no_compress no_optimize =
    let options = options_of ~no_compress ~no_optimize in
    let text = or_die (Eric_cc.Driver.compile_to_assembly ~options (read_file source)) in
    if output = "-" then print_string text
    else begin
      write_file output (Bytes.of_string text);
      Printf.printf "%s: %d lines of assembly\n" output
        (List.length (String.split_on_char '\n' text))
    end
  in
  Cmd.v
    (Cmd.info "emit-asm" ~doc:"Compile MiniC to assembly text (-S mode; '-o -' for stdout).")
    Term.(const run $ source_arg $ output_arg ~default:"a.s" $ no_compress_arg $ no_optimize_arg)

let asm_cmd =
  let run source output no_compress entry =
    let image =
      or_die (Eric_rv.Asm.assemble ?entry ~compress:(not no_compress) (read_file source))
    in
    write_file output (Eric_rv.Program.to_binary ~with_symbols:true image);
    Format.printf "%s: %a@." output Eric_rv.Program.pp_summary image
  in
  let entry_arg =
    Arg.(
      value & opt (some string) None
      & info [ "entry" ] ~docv:"LABEL" ~doc:"Entry label (default _start or first label).")
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Assemble RISC-V assembly text to a plain image.")
    Term.(
      const run
      $ Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE.s" ~doc:"Assembly file.")
      $ output_arg ~default:"a.rexe" $ no_compress_arg $ entry_arg)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Image (.rexe) or package (.epkg).")

let inspect_cmd =
  let run path =
    let data = Bytes.of_string (read_file path) in
    match Eric.Package.parse data with
    | Ok pkg -> Format.printf "%a@." Eric.Package.pp_summary pkg
    | Error _ ->
      let image = or_die_malformed (Eric_rv.Program.of_binary data) in
      Format.printf "%a@." Eric_rv.Program.pp_summary image
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Describe an image or package.") Term.(const run $ file_arg)

let disasm_cmd =
  let run path =
    let image = or_die_malformed (Eric_rv.Program.of_binary (Bytes.of_string (read_file path))) in
    let lines = Eric_rv.Disasm.disassemble_stream (Eric_rv.Program.text_bytes image) in
    match image.Eric_rv.Program.symbols with
    | [] -> Format.printf "%a" Eric_rv.Disasm.pp_listing lines
    | symbols -> Format.printf "%a" (Eric_rv.Disasm.pp_listing_symbols ~symbols) lines
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a plain image (symbolised when the image carries symbols).")
    Term.(const run $ file_arg)

let analyze_cmd =
  let run path mode lint lint_error max_leakage format checks telemetry trace_out =
    setup_telemetry telemetry trace_out;
    let data = Bytes.of_string (read_file path) in
    let text, image =
      match Eric.Package.parse data with
      | Ok pkg -> (pkg.Eric.Package.enc_text, None)
      | Error _ ->
        let image = or_die_malformed (Eric_rv.Program.of_binary data) in
        (Eric_rv.Program.text_bytes image, Some image)
    in
    Format.printf "%a@." Eric.Analysis.pp_static_report (Eric.Analysis.static_analysis text);
    Format.printf "byte entropy: %.2f bits/byte@." (Eric.Analysis.byte_entropy text);
    if lint || lint_error then begin
      match image with
      | None ->
        Printf.eprintf "error: cannot lint an encrypted package; lint runs before packaging\n";
        exit 1
      | Some image ->
        let diags, report, _ = lint_image ?max_leakage ~mode image in
        let diags = render_diags ~format ~checks diags in
        if format = Eric_lint.Engine.Table then pp_leakage_report Format.std_formatter report;
        if lint_error && Eric_lint.Engine.fails ~fail_on:Eric_lint.Diag.Warning diags then
          exit 1
    end
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Static-analysis metrics of a text section.")
    Term.(
      const run $ file_arg $ mode_arg $ lint_flag_arg $ lint_error_arg $ max_leakage_arg
      $ lint_format_arg $ checks_arg $ telemetry_arg $ trace_out_arg)

let run_cmd =
  let run path device_id fuel trace telemetry trace_out =
    setup_telemetry telemetry trace_out;
    let data = Bytes.of_string (read_file path) in
    let with_trace image memory load_cycles =
      let cpu = Eric_sim.Soc.boot image memory in
      if trace > 0 then begin
        let remaining = ref trace in
        Eric_sim.Cpu.set_trace cpu
          (Some
             (fun ~pc inst ->
               if !remaining > 0 then begin
                 decr remaining;
                 Printf.eprintf "%8x:  %s\n" pc (Eric_rv.Disasm.inst_to_string inst)
               end))
      end;
      ignore
        (Eric_telemetry.Span.with_ ~cat:"sim" ~name:"sim.execute" (fun () ->
             Eric_sim.Cpu.run ~fuel cpu));
      let result =
        { Eric_sim.Soc.status = Eric_sim.Cpu.status cpu;
          output = Eric_sim.Cpu.output cpu;
          exec_cycles = Eric_sim.Cpu.cycles cpu;
          load_cycles;
          guard_cycles = 0L;
          instructions = Eric_sim.Cpu.instructions cpu;
          icache_hit_rate = Eric_sim.Cache.hit_rate (Eric_sim.Cpu.icache cpu);
          dcache_hit_rate = Eric_sim.Cache.hit_rate (Eric_sim.Cpu.dcache cpu) }
      in
      Eric_sim.Soc.record_result result;
      result
    in
    let result =
      match Eric.Package.parse data with
      | Ok pkg -> (
        let target = Eric.Target.of_id device_id in
        match Eric.Target.receive target pkg with
        | Error e ->
          Printf.eprintf "error: %s\n" (Format.asprintf "%a" Eric.Target.pp_load_error e);
          exit (load_error_code e)
        | Ok loaded ->
          let image = loaded.Eric.Target.image in
          with_trace image (Eric_sim.Soc.load image)
            loaded.Eric.Target.load.Eric_hw.Hde.total_cycles)
      | Error _ ->
        let image = or_die_malformed (Eric_rv.Program.of_binary data) in
        with_trace image (Eric_sim.Soc.load image) (Eric_sim.Soc.plain_load_cycles image)
    in
    print_string result.Eric_sim.Soc.output;
    Format.eprintf "load %Ld + exec %Ld = %Ld cycles, %Ld instructions@."
      result.Eric_sim.Soc.load_cycles result.Eric_sim.Soc.exec_cycles
      (Eric_sim.Soc.total_cycles result)
      result.Eric_sim.Soc.instructions;
    match result.Eric_sim.Soc.status with
    | Eric_sim.Cpu.Exited code -> exit code
    | Eric_sim.Cpu.Faulted msg ->
      Printf.eprintf "fault: %s\n" msg;
      exit 124
    | Eric_sim.Cpu.Integrity_fault msg ->
      Printf.eprintf "integrity fault: %s\n" msg;
      exit 123
    | Eric_sim.Cpu.Running -> exit 125
  in
  let fuel_arg =
    Arg.(
      value & opt int 200_000_000
      & info [ "fuel" ] ~docv:"N" ~doc:"Maximum instructions to execute.")
  in
  let trace_arg =
    Arg.(
      value & opt int 0
      & info [ "trace" ] ~docv:"N" ~doc:"Print the first N executed instructions to stderr.")
  in
  Cmd.v
    (Cmd.info "run" ~exits:run_exits ~doc:"Run an image, or a package on its device.")
    Term.(const run $ file_arg $ device_id_arg $ fuel_arg $ trace_arg $ telemetry_arg $ trace_out_arg)

let corner_conv =
  let parse s =
    match Eric_puf.Env.of_name s with
    | Some env -> Ok env
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown corner %S (expected %s)" s
             (String.concat ", " (List.map fst Eric_puf.Env.corners))))
  in
  Arg.conv (parse, Eric_puf.Env.pp)

let corner_arg =
  Arg.(
    value
    & opt corner_conv Eric_puf.Env.nominal
    & info [ "corner" ] ~docv:"NAME"
        ~doc:
          "Operating corner: nominal, cold, hot, low-voltage, cold-lowv, hot-lowv, aged, \
           aged-hot-lowv.")

(* ------------------------------------------------------------------ *)
(* Fleet                                                               *)
(* ------------------------------------------------------------------ *)

let registry_arg =
  Arg.(
    value & opt string "fleet.efrg"
    & info [ "registry" ] ~docv:"PATH"
        ~doc:"Device registry: an EFRG file or a sharded registry directory.")

let load_registry path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "error: registry %s does not exist (run 'eric fleet enroll' first)\n" path;
    exit 1
  end;
  or_die (Eric_fleet.Registry.load path)

(* A registry path is either a single EFRG file or a sharded directory;
   every fleet command detects which transparently. *)
type registry_handle =
  | Reg_file of Eric_fleet.Registry.t
  | Reg_sharded of Eric_fleet.Registry_shard.t

let load_any_registry path =
  if Eric_fleet.Registry_shard.is_sharded path then
    Reg_sharded (or_die (Eric_fleet.Registry_shard.load path))
  else Reg_file (load_registry path)

let save_any_registry path = function
  | Reg_file reg -> Eric_fleet.Registry.save reg path
  | Reg_sharded sh -> Eric_fleet.Registry_shard.save sh

let scheduler_conv =
  let parse s =
    Result.map_error (fun e -> `Msg e) (Eric_engine.Engine.scheduler_of_string s)
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Eric_engine.Engine.scheduler_label s))

let scheduler_arg =
  Arg.(
    value
    & opt scheduler_conv Eric_engine.Engine.default_config.Eric_engine.Engine.scheduler
    & info [ "scheduler" ] ~docv:"SCHED"
        ~doc:
          "Work-queue scheduler: deterministic (reference, index order) or domains[:N] \
           (OCaml-5 domain pool; identical outcomes, only timing differs).")

let window_arg =
  Arg.(
    value
    & opt int Eric_engine.Engine.default_config.Eric_engine.Engine.window
    & info [ "window" ] ~docv:"N" ~doc:"Max in-flight jobs before their results commit.")

let engine_config_of scheduler window =
  { Eric_engine.Engine.default_config with Eric_engine.Engine.scheduler; window }

let channel_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Eric_fleet.Channel.of_string s) in
  Arg.conv (parse, fun fmt c -> Format.pp_print_string fmt (Eric_fleet.Channel.name c))

let channel_arg =
  Arg.(
    value
    & opt channel_conv Eric_fleet.Channel.clean
    & info [ "channel" ] ~docv:"SPEC"
        ~doc:"Delivery channel model: clean, drop-first:N, or flaky:P[:SEED].")

let epoch_arg ~default =
  Arg.(value & opt int default & info [ "epoch" ] ~docv:"N" ~doc:"KMU key epoch.")

let label_arg =
  Arg.(
    value & opt (some string) None
    & info [ "label" ] ~docv:"LABEL" ~doc:"KMU deployment-scope label.")

let fleet_enroll_cmd =
  let run registry count start_id epoch label factory shards quiet telemetry trace_out =
    setup_telemetry telemetry trace_out;
    let handle =
      if Sys.file_exists registry then load_any_registry registry
      else if shards > 0 then
        Reg_sharded (or_die (Eric_fleet.Registry_shard.create ~dir:registry ~shards))
      else Reg_file (Eric_fleet.Registry.create ())
    in
    let enroll_one id =
      match handle, factory with
      | Reg_file reg, false -> Eric_fleet.Registry.enroll ~epoch ?label reg id
      | Reg_file reg, true -> Eric_fleet.Registry.enroll_legacy ~epoch ?label reg id
      | Reg_sharded sh, false -> Eric_fleet.Registry_shard.enroll ~epoch ?label sh id
      | Reg_sharded sh, true -> Eric_fleet.Registry_shard.enroll_legacy ~epoch ?label sh id
    in
    for i = 0 to count - 1 do
      let id = Int64.add start_id (Int64.of_int i) in
      let entry = or_die (enroll_one id) in
      if not quiet then Format.printf "%a@." Eric_fleet.Registry.pp_entry entry
    done;
    save_any_registry registry handle;
    match handle with
    | Reg_file reg -> Format.printf "%s: %a@." registry Eric_fleet.Registry.pp_summary reg
    | Reg_sharded sh -> Format.printf "%s: %a@." registry Eric_fleet.Registry_shard.pp_summary sh
  in
  let count_arg =
    Arg.(value & opt int 1 & info [ "count" ] ~docv:"N" ~doc:"Number of devices to enroll.")
  in
  let start_id_arg =
    Term.(
      const device_id_of_string
      $ Arg.(
          value & opt string "1"
          & info [ "start-id" ] ~docv:"ID"
              ~doc:"First device id (decimal or 0x-prefixed hex); ids are consecutive."))
  in
  let factory_arg =
    Arg.(
      value & flag
      & info [ "factory" ]
          ~doc:
            "Fast factory path: plain majority-vote key at nominal conditions, no helper \
             data (the legacy v1 flow) — about 5x faster per device than full reliability \
             screening.")
  in
  let shards_arg =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "When creating a new registry, make it a sharded directory with N shards \
             instead of a single EFRG file.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Do not print one line per device.")
  in
  Cmd.v
    (Cmd.info "enroll" ~doc:"Manufacture, provision and register devices.")
    Term.(
      const run $ registry_arg $ count_arg $ start_id_arg $ epoch_arg ~default:0 $ label_arg
      $ factory_arg $ shards_arg $ quiet_arg $ telemetry_arg $ trace_out_arg)

(* Canonical campaign report as JSON, for the determinism gate: only
   simulation-deterministic fields — no wall-clock timings, no scheduler
   name — so reports from the deterministic and domain schedulers (and
   from sharded vs single-file registries of the same fleet) compare
   byte-for-byte with cmp(1). *)
let campaign_report_json (r : Eric_fleet.Campaign.report) =
  let buf = Buffer.create 4096 in
  let escape s =
    String.to_seq s
    |> Seq.iter (fun c ->
           match c with
           | '"' -> Buffer.add_string buf "\\\""
           | '\\' -> Buffer.add_string buf "\\\\"
           | '\n' -> Buffer.add_string buf "\\n"
           | c when Char.code c < 0x20 ->
             Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
           | c -> Buffer.add_char buf c)
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"digest\": \"%s\",\n" r.Eric_fleet.Campaign.digest);
  Buffer.add_string buf
    (Printf.sprintf "  \"firmware_epoch\": %d,\n" r.Eric_fleet.Campaign.firmware_epoch);
  Buffer.add_string buf
    (Printf.sprintf "  \"delivered\": %d,\n" r.Eric_fleet.Campaign.delivered);
  Buffer.add_string buf (Printf.sprintf "  \"retried\": %d,\n" r.Eric_fleet.Campaign.retried);
  Buffer.add_string buf
    (Printf.sprintf "  \"quarantined\": %d,\n" r.Eric_fleet.Campaign.quarantined);
  Buffer.add_string buf (Printf.sprintf "  \"skipped\": %d,\n" r.Eric_fleet.Campaign.skipped);
  Buffer.add_string buf
    (Printf.sprintf "  \"wire_bytes\": %d,\n" r.Eric_fleet.Campaign.wire_bytes);
  Buffer.add_string buf
    (Printf.sprintf "  \"load_cycles\": %Ld,\n" r.Eric_fleet.Campaign.load_cycles);
  Buffer.add_string buf
    (Printf.sprintf "  \"backoff_ns\": %Ld,\n" r.Eric_fleet.Campaign.backoff_ns);
  Buffer.add_string buf "  \"devices\": [\n";
  let n = List.length r.Eric_fleet.Campaign.devices in
  List.iteri
    (fun i ((entry : Eric_fleet.Registry.entry), result) ->
      Buffer.add_string buf (Printf.sprintf "    {\"id\": %Ld, " entry.Eric_fleet.Registry.device_id);
      (match result with
      | Eric_fleet.Campaign.Skipped reason ->
        Buffer.add_string buf "\"result\": \"skipped\", \"reason\": \"";
        escape reason;
        Buffer.add_string buf "\"}"
      | Eric_fleet.Campaign.Shipped d ->
        let outcome, reason =
          match d.Eric_fleet.Shipper.outcome with
          | Eric_fleet.Shipper.Delivered _ -> ("delivered", None)
          | Eric_fleet.Shipper.Quarantined { reason } ->
            ("quarantined", Some (Eric_fleet.Shipper.quarantine_label reason))
        in
        Buffer.add_string buf
          (Printf.sprintf "\"result\": \"%s\", \"attempts\": %d, \"wire_bytes\": %d" outcome
             d.Eric_fleet.Shipper.attempts d.Eric_fleet.Shipper.wire_bytes);
        (match reason with
        | None -> ()
        | Some reason ->
          Buffer.add_string buf ", \"reason\": \"";
          escape reason;
          Buffer.add_string buf "\"");
        Buffer.add_string buf "}");
      Buffer.add_string buf (if i = n - 1 then "\n" else ",\n"))
    r.Eric_fleet.Campaign.devices;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let fleet_campaign_cmd =
  let run source registry mode channel max_attempts execute fuel cache_dir firmware devices
      scheduler window report_out no_compress no_optimize telemetry trace_out =
    setup_telemetry telemetry trace_out;
    let handle = load_any_registry registry in
    let policy =
      or_die
        (Eric_fleet.Backoff.validate
           { Eric_fleet.Backoff.default with Eric_fleet.Backoff.max_attempts })
    in
    let cache = Eric_fleet.Artifact_cache.create ?dir:cache_dir () in
    let config =
      { Eric_fleet.Campaign.options = options_of ~no_compress ~no_optimize;
        mode;
        policy;
        channel;
        execute;
        fuel;
        firmware_epoch = firmware;
        engine = engine_config_of scheduler window }
    in
    let source = read_file source in
    let report =
      match handle with
      | Reg_file reg -> or_die (Eric_fleet.Campaign.deploy ~config ~cache ~registry:reg source)
      | Reg_sharded sh ->
        or_die (Eric_fleet.Campaign.deploy_sharded ~config ~cache ~shards:sh source)
    in
    if devices then Format.printf "%a" Eric_fleet.Campaign.pp_devices report;
    Format.printf "%a@." Eric_fleet.Campaign.pp_report report;
    save_any_registry registry handle;
    (match report_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (campaign_report_json report)));
    if report.Eric_fleet.Campaign.delivered = List.length report.Eric_fleet.Campaign.devices
    then exit 0
    else exit 3
  in
  let max_attempts_arg =
    Arg.(
      value
      & opt int Eric_fleet.Backoff.default.Eric_fleet.Backoff.max_attempts
      & info [ "max-attempts" ] ~docv:"N" ~doc:"Delivery attempts per device.")
  in
  let execute_arg =
    Arg.(value & flag & info [ "execute" ] ~doc:"Run each delivered package on its device's SoC.")
  in
  let fuel_arg =
    Arg.(
      value & opt (some int) None
      & info [ "fuel" ] ~docv:"N" ~doc:"Instruction budget when --execute is given.")
  in
  let cache_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Persist compiled artifacts to DIR across runs.")
  in
  let firmware_arg =
    Arg.(
      value & opt (some int) None
      & info [ "firmware" ] ~docv:"N"
          ~doc:"Firmware epoch to stamp on delivered devices (default: auto-increment).")
  in
  let devices_arg =
    Arg.(value & flag & info [ "devices" ] ~doc:"Print one line per device delivery.")
  in
  let report_out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "report-out" ] ~docv:"FILE"
          ~doc:
            "Write the campaign report as canonical JSON (simulation-deterministic fields \
             only — byte-identical across schedulers).")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Deploy a workload to every active device: compile once, personalize per device, ship \
          with retry/backoff.  Exits 3 unless every device was delivered.")
    Term.(
      const run $ source_arg $ registry_arg $ mode_arg $ channel_arg $ max_attempts_arg
      $ execute_arg $ fuel_arg $ cache_dir_arg $ firmware_arg $ devices_arg $ scheduler_arg
      $ window_arg $ report_out_arg $ no_compress_arg $ no_optimize_arg $ telemetry_arg
      $ trace_out_arg)

let fleet_rotate_cmd =
  let run registry epoch label rsa_bits seed scheduler window telemetry trace_out =
    setup_telemetry telemetry trace_out;
    let handle = load_any_registry registry in
    let method_ =
      match rsa_bits with
      | None -> Eric_fleet.Rotation.Local
      | Some bits -> Eric_fleet.Rotation.Rsa { bits; seed }
    in
    let engine = engine_config_of scheduler window in
    let failed = ref false in
    (match handle with
    | Reg_file reg ->
      let report = Eric_fleet.Rotation.rotate ~engine ~method_ ?label ~epoch reg in
      Format.printf "%a@." Eric_fleet.Rotation.pp_report report;
      failed := report.Eric_fleet.Rotation.failed <> []
    | Reg_sharded sh ->
      (* shard-by-shard: one shard resident at a time *)
      for i = 0 to Eric_fleet.Registry_shard.shards sh - 1 do
        if Eric_fleet.Registry_shard.shard_count sh i > 0 then begin
          let reg = Eric_fleet.Registry_shard.shard sh i in
          let report = Eric_fleet.Rotation.rotate ~engine ~method_ ?label ~epoch reg in
          Format.printf "shard %04d: %a@." i Eric_fleet.Rotation.pp_report report;
          if report.Eric_fleet.Rotation.failed <> [] then failed := true;
          Eric_fleet.Registry_shard.mark_dirty sh i;
          Eric_fleet.Registry_shard.release sh i
        end
      done);
    save_any_registry registry handle;
    if !failed then exit 3
  in
  let rsa_arg =
    Arg.(
      value
      & opt ~vopt:(Some 768) (some int) None
      & info [ "rsa" ] ~docv:"BITS"
          ~doc:"Re-provision in-band under RSA (default 768-bit) instead of out-of-band.")
  in
  let seed_arg =
    Arg.(
      value & opt int64 0xE41CL
      & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed for RSA key generation and padding.")
  in
  Cmd.v
    (Cmd.info "rotate"
       ~doc:
         "Rotate every device to a new key epoch, re-provisioning keys and reactivating \
          quarantined devices.")
    Term.(
      const run $ registry_arg $ epoch_arg ~default:1 $ label_arg $ rsa_arg $ seed_arg
      $ scheduler_arg $ window_arg $ telemetry_arg $ trace_out_arg)

let fleet_reenroll_cmd =
  let run registry threshold votes env scheduler window telemetry trace_out =
    setup_telemetry telemetry trace_out;
    let handle = load_any_registry registry in
    let config =
      {
        Eric_fleet.Reenroll.default_config with
        Eric_fleet.Reenroll.threshold_ppm = threshold;
        survey_votes = votes;
        survey_env = env;
      }
    in
    let engine = engine_config_of scheduler window in
    let failed = ref false in
    (match handle with
    | Reg_file reg ->
      let report = Eric_fleet.Reenroll.run ~engine ~config reg in
      Format.printf "%a@." Eric_fleet.Reenroll.pp_report report;
      failed := report.Eric_fleet.Reenroll.failed <> []
    | Reg_sharded sh ->
      for i = 0 to Eric_fleet.Registry_shard.shards sh - 1 do
        if Eric_fleet.Registry_shard.shard_count sh i > 0 then begin
          let reg = Eric_fleet.Registry_shard.shard sh i in
          let report = Eric_fleet.Reenroll.run ~engine ~config reg in
          Format.printf "shard %04d: %a@." i Eric_fleet.Reenroll.pp_report report;
          if report.Eric_fleet.Reenroll.failed <> [] then failed := true;
          Eric_fleet.Registry_shard.mark_dirty sh i;
          Eric_fleet.Registry_shard.release sh i
        end
      done);
    save_any_registry registry handle;
    if !failed then exit exit_failures
  in
  let threshold_arg =
    Arg.(
      value
      & opt int Eric_fleet.Reenroll.default_config.Eric_fleet.Reenroll.threshold_ppm
      & info [ "threshold" ] ~docv:"PPM"
          ~doc:"Re-enroll devices whose surveyed worst-bit instability exceeds PPM.")
  in
  let votes_arg =
    Arg.(
      value
      & opt int Eric_fleet.Reenroll.default_config.Eric_fleet.Reenroll.survey_votes
      & info [ "votes" ] ~docv:"N" ~doc:"Reads per enrolled challenge during the survey.")
  in
  let survey_corner_arg =
    Arg.(
      value
      & opt corner_conv Eric_puf.Env.stress
      & info [ "corner" ] ~docv:"NAME"
          ~doc:"Survey operating corner (default: the cold-lowv stress corner).")
  in
  Cmd.v
    (Cmd.info "reenroll" ~exits:campaign_exits
       ~doc:
         "Survey every device's helper data at a stress corner and re-enroll drifting \
          devices, upgrade legacy entries to the fuzzy-extractor boot path and reactivate \
          key-reconstruction quarantines.  Exits 3 if any device failed re-enrollment.")
    Term.(
      const run $ registry_arg $ threshold_arg $ votes_arg $ survey_corner_arg $ scheduler_arg
      $ window_arg $ telemetry_arg $ trace_out_arg)

let fleet_status_cmd =
  let run registry devices =
    match load_any_registry registry with
    | Reg_file reg ->
      if devices then
        List.iter
          (fun e -> Format.printf "%a@." Eric_fleet.Registry.pp_entry e)
          (Eric_fleet.Registry.entries reg);
      Format.printf "%s: %a@." registry Eric_fleet.Registry.pp_summary reg
    | Reg_sharded sh ->
      if devices then
        Eric_fleet.Registry_shard.fold_entries sh ~init:() ~f:(fun () e ->
            Format.printf "%a@." Eric_fleet.Registry.pp_entry e);
      Format.printf "%s: %a@." registry Eric_fleet.Registry_shard.pp_summary sh
  in
  let devices_arg =
    Arg.(value & flag & info [ "devices" ] ~doc:"Print one line per enrolled device.")
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Summarise a device registry (single-file or sharded).")
    Term.(const run $ registry_arg $ devices_arg)

let fleet_shard_migrate_cmd =
  let run registry dir shards telemetry trace_out =
    setup_telemetry telemetry trace_out;
    if Eric_fleet.Registry_shard.is_sharded registry then begin
      Printf.eprintf "error: %s is already a sharded registry\n" registry;
      exit 1
    end;
    if not (Sys.file_exists registry) then begin
      Printf.eprintf "error: registry %s does not exist\n" registry;
      exit 1
    end;
    let sh = or_die (Eric_fleet.Registry_shard.migrate ~file:registry ~dir ~shards) in
    Format.printf "%s -> %s: %a@." registry dir Eric_fleet.Registry_shard.pp_summary sh
  in
  let dir_arg =
    Arg.(
      required & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"Destination directory for the sharded registry.")
  in
  let shards_arg =
    Arg.(value & opt int 16 & info [ "shards" ] ~docv:"N" ~doc:"Number of shards (1-65535).")
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:
         "Stream a single-file EFRG registry into a hash-partitioned sharded directory.  The \
          source file is decoded one entry at a time and never fully resident, so fleets \
          larger than memory migrate fine.")
    Term.(const run $ registry_arg $ dir_arg $ shards_arg $ telemetry_arg $ trace_out_arg)

let fleet_shard_cmd =
  Cmd.group
    (Cmd.info "shard" ~doc:"Sharded registry maintenance.")
    [ fleet_shard_migrate_cmd ]

let fleet_cmd =
  Cmd.group
    (Cmd.info "fleet"
       ~doc:
         "Fleet management: enroll devices, run deployment campaigns, rotate keys, re-enroll \
          drifting PUFs, inspect the registry.")
    [ fleet_enroll_cmd; fleet_campaign_cmd; fleet_rotate_cmd; fleet_reenroll_cmd;
      fleet_status_cmd; fleet_shard_cmd ]

(* ------------------------------------------------------------------ *)
(* Verification: differential fuzzing and fault injection              *)
(* ------------------------------------------------------------------ *)

(* A small workload with both string data and computed output, so every
   package region (map, payload, data) is non-empty for injections. *)
let verif_default_source =
  "int g0[4] = {3, 1, 4, 1};\n\
   int main() {\n\
  \  int acc = 0;\n\
  \  for (int i = 0; i < 4; i++) { acc += g0[i] * (i + 1); }\n\
  \  print_str(\"acc=\");\n\
  \  println_int(acc);\n\
  \  return acc & 255;\n\
   }\n"

let verif_seed_arg ~default =
  Arg.(value & opt int64 default & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign PRNG seed.")

let verif_count_arg ~default ~doc =
  Arg.(value & opt int default & info [ "count" ] ~docv:"N" ~doc)

let verif_fuel_arg =
  Arg.(
    value
    & opt int Eric_verif.Oracle.default_fuel
    & info [ "fuel" ] ~docv:"N" ~doc:"Instruction budget per execution.")

let regions_conv =
  let parse s =
    match s with
    | "wire" -> Ok Eric_verif.Inject.wire_regions
    | "all" -> Ok Eric_verif.Inject.all_regions
    | s -> (
      let rec build acc = function
        | [] -> Ok (List.rev acc)
        | name :: rest -> (
          match Eric_verif.Inject.region_of_string name with
          | Ok r -> build (r :: acc) rest
          | Error e -> Error (`Msg e))
      in
      build [] (String.split_on_char ',' s))
  in
  let print fmt regions =
    Format.pp_print_string fmt
      (String.concat "," (List.map Eric_verif.Inject.region_name regions))
  in
  Arg.conv (parse, print)

let verif_fuzz_cmd =
  let run count seed size mode device_id fuel corpus mutate_pct shrink_budget max_failures
      obfuscate obf_seed quiet telemetry trace_out =
    setup_telemetry telemetry trace_out;
    let options =
      match obf_config_of ~obfuscate ~obf_seed with
      | None -> Eric_cc.Driver.default_options
      | Some cfg -> Eric_obf.Obf.options cfg
    in
    let config =
      {
        Eric_verif.Fuzz.count;
        seed;
        size;
        mode;
        device_id;
        fuel;
        corpus_dir = corpus;
        mutate_pct;
        shrink_budget;
        max_failures;
        options;
      }
    in
    let on_progress n =
      if not quiet then Format.eprintf "... %d/%d programs@." n count
    in
    let outcome = Eric_verif.Fuzz.run ~config ~on_progress () in
    Format.printf "%a@." Eric_verif.Fuzz.pp_stats outcome.Eric_verif.Fuzz.stats;
    List.iter
      (fun f -> Format.printf "@.%a@." Eric_verif.Fuzz.pp_failure f)
      outcome.Eric_verif.Fuzz.failures;
    if outcome.Eric_verif.Fuzz.failures <> [] then exit exit_failures
  in
  let size_arg =
    Arg.(
      value & opt int Eric_verif.Fuzz.default_config.Eric_verif.Fuzz.size
      & info [ "size" ] ~docv:"N" ~doc:"Generator size budget (statements per program).")
  in
  let corpus_arg =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Persist minimised reproducers to DIR.")
  in
  let mutate_pct_arg =
    Arg.(
      value & opt int Eric_verif.Fuzz.default_config.Eric_verif.Fuzz.mutate_pct
      & info [ "mutate-pct" ] ~docv:"PCT"
          ~doc:"Percentage of programs produced by trace mutation instead of fresh generation.")
  in
  let shrink_budget_arg =
    Arg.(
      value & opt int Eric_verif.Fuzz.default_config.Eric_verif.Fuzz.shrink_budget
      & info [ "shrink-budget" ] ~docv:"N" ~doc:"Maximum oracle runs per finding while shrinking.")
  in
  let max_failures_arg =
    Arg.(
      value & opt int Eric_verif.Fuzz.default_config.Eric_verif.Fuzz.max_failures
      & info [ "max-failures" ] ~docv:"N" ~doc:"Stop the campaign after N findings.")
  in
  let quiet_arg = Arg.(value & flag & info [ "quiet" ] ~doc:"No progress output.") in
  Cmd.v
    (Cmd.info "fuzz" ~exits:campaign_exits
       ~doc:
         "Differential fuzzing: generate MiniC programs and compare the IR interpreter, the \
          plain compiled image and the full encrypt-ship-decrypt-validate path.  With \
          --obfuscate the machine paths run the obfuscated build while the interpreter runs \
          the pristine IR, so the campaign proves the passes semantics-preserving.  Any \
          divergence is shrunk to a minimal reproducer.  Exits 3 if anything diverged.")
    Term.(
      const run
      $ verif_count_arg ~default:1000 ~doc:"Programs to generate and run."
      $ verif_seed_arg ~default:0xF22DL $ size_arg
      $ mode_arg $ device_id_arg $ verif_fuel_arg $ corpus_arg $ mutate_pct_arg
      $ shrink_budget_arg $ max_failures_arg $ obfuscate_arg $ obf_seed_arg $ quiet_arg
      $ telemetry_arg $ trace_out_arg)

let verif_inject_cmd =
  let run source_opt regions count seed mode device_id fuel corpus guard sweep json out
      min_coverage telemetry trace_out =
    setup_telemetry telemetry trace_out;
    let source =
      match source_opt with Some path -> read_file path | None -> verif_default_source
    in
    let guard = Eric_hw.Guard.default guard in
    let config =
      { Eric_verif.Inject.fuel; mode; device_id; seed; count; regions; guard }
    in
    let gate coverage =
      match min_coverage with
      | Some floor when coverage *. 100.0 < floor ->
        die ~code:exit_failures
          (Printf.sprintf "detection coverage %.2f%% below required %.2f%%"
             (100.0 *. coverage) floor)
      | _ -> ()
    in
    match sweep with
    | Some mechanisms -> (
      match Eric_verif.Inject.dram_sweep ~config ~mechanisms source with
      | Error msg -> die msg
      | Ok points ->
        let rendered =
          Eric_telemetry.Json.to_string (Eric_verif.Inject.sweep_to_json points) ^ "\n"
        in
        Option.iter (fun path -> write_file path (Bytes.of_string rendered)) out;
        if json then print_string rendered
        else
          List.iter
            (fun p ->
              Format.printf "%-16s %6d injections  %8.2f%% coverage  %6.3f overhead@."
                (Eric_hw.Guard.mechanism_name p.Eric_verif.Inject.sp_mechanism)
                p.Eric_verif.Inject.sp_injections
                (100.0 *. p.Eric_verif.Inject.sp_coverage)
                p.Eric_verif.Inject.sp_overhead)
            points;
        let best =
          List.fold_left
            (fun acc p -> Float.max acc p.Eric_verif.Inject.sp_coverage)
            0.0 points
        in
        gate best)
    | None -> (
      match Eric_verif.Inject.campaign ~config source with
      | Error msg -> die msg
      | Ok report ->
        let rendered =
          Eric_telemetry.Json.to_string (Eric_verif.Inject.report_to_json config report)
          ^ "\n"
        in
        Option.iter (fun path -> write_file path (Bytes.of_string rendered)) out;
        if json then print_string rendered
        else Format.printf "%a@." Eric_verif.Inject.pp_report report;
        let escaped_protected =
          List.filter
            (fun e -> e.Eric_verif.Inject.e_region <> Eric_verif.Inject.Dram)
            report.Eric_verif.Inject.escapes
        in
        (match corpus with
        | None -> ()
        | Some dir ->
          List.iter
            (fun e ->
              let entry =
                {
                  Eric_verif.Corpus.kind =
                    Eric_verif.Corpus.Injection_escape
                      {
                        region = Eric_verif.Inject.region_name e.Eric_verif.Inject.e_region;
                        bit = e.Eric_verif.Inject.e_bit;
                      };
                  seed;
                  trace = [||];
                  source;
                  note =
                    "single-bit flip escaped detection; replay: "
                    ^ Eric_verif.Inject.replay_command ~regions e;
                }
              in
              match Eric_verif.Corpus.save ~dir entry with
              | Ok path -> Format.eprintf "escape saved: %s@." path
              | Error msg -> Format.eprintf "warning: could not save escape: %s@." msg)
            escaped_protected);
        gate (Eric_verif.Inject.detection_coverage report);
        if escaped_protected <> [] then
          die ~code:exit_failures
            (Printf.sprintf "%d silent corruption(s) escaped detection in protected regions"
               (List.length escaped_protected)))
  in
  let source_arg =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"SOURCE.mc" ~doc:"MiniC workload (default: a built-in workload).")
  in
  let regions_arg =
    Arg.(
      value
      & opt regions_conv Eric_verif.Inject.wire_regions
      & info [ "region"; "regions" ] ~docv:"LIST"
          ~doc:
            "Comma-separated injection regions (header, map, payload, data, signature, dram, \
             key), or the aliases 'wire' and 'all'.")
  in
  let corpus_arg =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Persist escape reproducers to DIR.")
  in
  let guard_mech_conv =
    let parse s = Result.map_error (fun e -> `Msg e) (Eric_hw.Guard.mechanism_of_string s) in
    Arg.conv (parse, Eric_hw.Guard.pp_mechanism)
  in
  let guard_arg =
    Arg.(
      value
      & opt guard_mech_conv Eric_hw.Guard.Off
      & info [ "guard" ] ~docv:"MECH"
          ~doc:
            "Runtime integrity guard active during dram injections: off, fetch, scrub:N or \
             fetch+scrub:N (N = scrub interval in cycles).")
  in
  let sweep_arg =
    Arg.(
      value
      & opt (some (list guard_mech_conv)) None
      & info [ "guard-sweep" ] ~docv:"MECHS"
          ~doc:
            "Run one dram-only campaign per comma-separated guard mechanism and report the \
             coverage-vs-overhead curve instead of a single campaign.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the JSON report to stdout instead of the table.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON report to FILE.")
  in
  let min_coverage_arg =
    Arg.(
      value & opt (some float) None
      & info [ "min-coverage" ] ~docv:"PCT"
          ~doc:
            "Exit 3 when pooled detection coverage (best sweep point under --guard-sweep) \
             falls below PCT percent.")
  in
  Cmd.v
    (Cmd.info "inject" ~exits:campaign_exits
       ~doc:
         "Fault injection: flip single bits in package regions in transit, in DRAM after \
          validation, or in the device key, and classify each flip as detected, masked or \
          silent corruption.  With --guard the runtime integrity guard re-checks resident \
          memory during dram runs.  Exits 3 on silent corruption anywhere the HDE is \
          supposed to protect (everywhere but dram), or when coverage falls below \
          --min-coverage.")
    Term.(
      const run $ source_arg $ regions_arg
      $ verif_count_arg ~default:1000 ~doc:"Number of single-bit injections."
      $ verif_seed_arg ~default:0x1A7EC7L
      $ mode_arg_with Eric_verif.Inject.default_config.Eric_verif.Inject.mode
      $ device_id_arg $ verif_fuel_arg $ corpus_arg $ guard_arg $ sweep_arg $ json_arg
      $ out_arg $ min_coverage_arg $ telemetry_arg $ trace_out_arg)

let verif_shrink_cmd =
  let run file size fuel mode device_id budget =
    let entry = or_die_malformed (Eric_verif.Corpus.load file) in
    let oracle source = Eric_verif.Oracle.run ~fuel ~mode ~device_id source in
    let failing =
      match entry.Eric_verif.Corpus.kind with
      | Eric_verif.Corpus.Injection_escape _ ->
        die "injection-escape reproducers replay a whole campaign and cannot be shrunk"
      | Eric_verif.Corpus.Divergence ->
        fun trace ->
          (match oracle (Eric_verif.Gen.of_trace ~size trace).Eric_verif.Gen.source with
          | Ok r -> not (Eric_verif.Oracle.agree r)
          | Error _ -> false)
      | Eric_verif.Corpus.Compile_error ->
        fun trace ->
          (match oracle (Eric_verif.Gen.of_trace ~size trace).Eric_verif.Gen.source with
          | Error _ -> true
          | Ok _ -> false)
    in
    if not (failing entry.Eric_verif.Corpus.trace) then begin
      Format.printf "%s no longer reproduces@." file;
      exit 0
    end;
    let min_trace, tests =
      Eric_verif.Shrink.minimize ~max_tests:budget ~failing entry.Eric_verif.Corpus.trace
    in
    let min_prog = Eric_verif.Gen.of_trace ~size min_trace in
    let entry =
      { entry with
        Eric_verif.Corpus.trace = min_prog.Eric_verif.Gen.trace;
        source = min_prog.Eric_verif.Gen.source }
    in
    write_file file (Bytes.of_string (Eric_verif.Corpus.to_string entry));
    Format.printf "%s: %d draws after %d oracle runs@.%s@." file
      (Array.length min_prog.Eric_verif.Gen.trace)
      tests min_prog.Eric_verif.Gen.source;
    exit exit_failures
  in
  let file_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE.repro" ~doc:"Reproducer written by 'verif fuzz --corpus'.")
  in
  let size_arg =
    Arg.(
      value & opt int Eric_verif.Fuzz.default_config.Eric_verif.Fuzz.size
      & info [ "size" ] ~docv:"N" ~doc:"Generator size budget used by the original campaign.")
  in
  let budget_arg =
    Arg.(
      value & opt int 400
      & info [ "budget" ] ~docv:"N" ~doc:"Maximum oracle runs to spend shrinking.")
  in
  Cmd.v
    (Cmd.info "shrink" ~exits:campaign_exits
       ~doc:
         "Re-minimise a persisted reproducer in place.  Exits 3 when the reproducer still \
          fails (i.e. there is still a bug), 0 when it no longer reproduces.")
    Term.(
      const run $ file_arg $ size_arg $ verif_fuel_arg $ mode_arg $ device_id_arg $ budget_arg)

let verif_corpus_cmd =
  let run dir replay fuel mode device_id =
    let entries = Eric_verif.Corpus.list ~dir in
    if entries = [] then Format.printf "%s: empty corpus@." dir;
    let bad = ref 0 and still = ref 0 in
    List.iter
      (fun (path, result) ->
        match result with
        | Error msg ->
          incr bad;
          Format.printf "%s: unreadable: %s@." path msg
        | Ok entry ->
          Format.printf "%s: %a@." path Eric_verif.Corpus.pp_entry entry;
          if replay then (
            match entry.Eric_verif.Corpus.kind with
            | Eric_verif.Corpus.Injection_escape _ -> ()
            | Eric_verif.Corpus.Divergence | Eric_verif.Corpus.Compile_error -> (
              match Eric_verif.Fuzz.replay ~fuel ~mode ~device_id entry with
              | Error msg ->
                incr still;
                Format.printf "  still fails to compile: %s@." msg
              | Ok r ->
                if Eric_verif.Oracle.agree r then Format.printf "  no longer diverges@."
                else begin
                  incr still;
                  Format.printf "  still diverges:@.  %a@." Eric_verif.Oracle.pp_report r
                end)))
      entries;
    if !bad > 0 then exit exit_malformed;
    if !still > 0 then exit exit_failures
  in
  let dir_arg =
    Arg.(
      value & pos 0 dir "verif-corpus"
      & info [] ~docv:"DIR" ~doc:"Corpus directory (default: verif-corpus).")
  in
  let replay_arg =
    Arg.(value & flag & info [ "replay" ] ~doc:"Re-run each reproducer through the oracle.")
  in
  Cmd.v
    (Cmd.info "corpus" ~exits:campaign_exits
       ~doc:
         "List a reproducer corpus; with --replay, re-run every entry and exit 3 if any \
          still fails (4 if any entry is unreadable).")
    Term.(const run $ dir_arg $ replay_arg $ verif_fuel_arg $ mode_arg $ device_id_arg)

let verif_env_cmd =
  let run devices boots seed max_kfr out telemetry trace_out =
    setup_telemetry telemetry trace_out;
    let config =
      {
        Eric_verif.Envsweep.default_config with
        Eric_verif.Envsweep.devices;
        boots;
        seed;
        max_kfr;
      }
    in
    match Eric_verif.Envsweep.campaign ~config () with
    | Error msg -> die msg
    | Ok report ->
      Format.printf "%a@." Eric_verif.Envsweep.pp_report report;
      (match out with
      | None -> ()
      | Some path ->
        write_file path
          (Bytes.of_string
             (Eric_telemetry.Json.to_string (Eric_verif.Envsweep.to_json report))));
      if not (Eric_verif.Envsweep.passed report) then exit exit_failures
  in
  let devices_arg =
    Arg.(
      value
      & opt int Eric_verif.Envsweep.default_config.Eric_verif.Envsweep.devices
      & info [ "devices" ] ~docv:"N" ~doc:"Population size.")
  in
  let boots_arg =
    Arg.(
      value
      & opt int Eric_verif.Envsweep.default_config.Eric_verif.Envsweep.boots
      & info [ "boots" ] ~docv:"N" ~doc:"Boots per device per corner.")
  in
  let max_kfr_arg =
    Arg.(
      value
      & opt float Eric_verif.Envsweep.default_config.Eric_verif.Envsweep.max_kfr
      & info [ "max-kfr" ] ~docv:"RATE"
          ~doc:"Per-corner post-extractor key-failure-rate budget.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the per-corner report as JSON to FILE.")
  in
  Cmd.v
    (Cmd.info "env" ~exits:campaign_exits
       ~doc:
         "Environmental sweep: enroll a population, boot every device at every operating \
          corner and report key failure rate with and without the fuzzy extractor.  Exits 3 \
          if any corner exceeds the post-extractor budget or a verified reconstruction \
          produced a wrong key.")
    Term.(
      const run $ devices_arg $ boots_arg $ verif_seed_arg ~default:0xE57EEDL $ max_kfr_arg
      $ out_arg $ telemetry_arg $ trace_out_arg)

let verif_cmd =
  Cmd.group
    (Cmd.info "verif"
       ~doc:
         "Verification campaigns: differential fuzzing across the interpreter, plain and \
          encrypted execution paths, fault-injection coverage measurement, environmental \
          sweeps of the PUF key path, and reproducer corpus maintenance.")
    [ verif_fuzz_cmd; verif_inject_cmd; verif_shrink_cmd; verif_corpus_cmd; verif_env_cmd ]

let puf_show_term =
  let run device_id =
    let device = Eric_puf.Device.manufacture device_id in
    let target = Eric.Target.create device in
    Printf.printf "device id     : %Ld\n" device_id;
    Printf.printf "chains        : %d x %d-stage arbiter\n" (Eric_puf.Device.chains device)
      (Eric_puf.Arbiter.default_params.Eric_puf.Arbiter.stages);
    Printf.printf "puf key       : %s\n"
      (Eric_util.Bytesx.to_hex (Eric_puf.Device.puf_key device));
    Printf.printf "derived key   : %s\n"
      (Eric_util.Bytesx.to_hex (Eric.Target.derived_key target));
    Printf.printf "challenge set : %s\n"
      (String.concat " "
         (Array.to_list (Array.map string_of_int (Eric_puf.Device.challenge_set device))));
    match Eric_puf.Enroll.enroll device with
    | Error e -> Printf.printf "enrollment    : refused (%s)\n" e
    | Ok e ->
      Printf.printf "enrollment    : %d/%d chains kept, worst instability %.1f%%, helper %d B\n"
        (Eric_puf.Enroll.kept_chains e.Eric_puf.Enroll.helper)
        (Eric_puf.Device.chains device)
        (100.0 *. e.Eric_puf.Enroll.worst_instability)
        (Bytes.length (Eric_puf.Enroll.serialize e.Eric_puf.Enroll.helper))
  in
  Term.(const run $ device_id_arg)

let puf_show_cmd =
  Cmd.v
    (Cmd.info "show" ~doc:"Show a device's PUF identity, derived key and enrollment.")
    puf_show_term

let puf_metrics_cmd =
  let run devices challenges reeval seed env =
    let report =
      Eric_puf.Metrics.evaluate ~devices ~challenges_per_device:challenges ~reeval ~env ~seed
        ()
    in
    Format.printf "corner %a@." Eric_puf.Env.pp env;
    Format.printf "%a@." Eric_puf.Metrics.pp_report report
  in
  let devices_arg =
    Arg.(value & opt int 32 & info [ "devices" ] ~docv:"N" ~doc:"Population size.")
  in
  let challenges_arg =
    Arg.(
      value & opt int 128
      & info [ "challenges" ] ~docv:"N" ~doc:"Random challenges per device.")
  in
  let reeval_arg =
    Arg.(
      value & opt int 32
      & info [ "reeval" ] ~docv:"N" ~doc:"Noisy re-evaluations per challenge.")
  in
  let seed_arg =
    Arg.(value & opt int64 0x3E721C5L & info [ "seed" ] ~docv:"SEED" ~doc:"Population PRNG seed.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Monte-Carlo PUF quality metrics (uniformity, uniqueness, reliability, key failure \
          rate) over a simulated population, at any operating corner.")
    Term.(const run $ devices_arg $ challenges_arg $ reeval_arg $ seed_arg $ corner_arg)

let puf_cmd =
  Cmd.group ~default:puf_show_term
    (Cmd.info "puf"
       ~doc:
         "PUF device identity, enrollment and population metrics (default: show one \
          device).")
    [ puf_show_cmd; puf_metrics_cmd ]

(* ------------------------------------------------------------------ *)
(* Serve: simulated OTA update service                                 *)
(* ------------------------------------------------------------------ *)

let scenario_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Eric_serve.Scenario.by_name s) in
  Arg.conv (parse, fun fmt sc -> Format.pp_print_string fmt sc.Eric_serve.Scenario.name)

let serve_run_cmd =
  let run scenario seed duration rate_scale cache_dir out json slo_error telemetry
      trace_out =
    setup_telemetry telemetry trace_out;
    let scenario =
      match duration with
      | None -> scenario
      | Some seconds -> Eric_serve.Scenario.with_duration scenario ~seconds
    in
    let scenario =
      match rate_scale with
      | None -> scenario
      | Some factor -> Eric_serve.Scenario.with_rate_scale scenario ~factor
    in
    let report = Eric_serve.Service.run ~seed ?cache_dir ~scenario () in
    let rendered =
      Eric_telemetry.Json.to_string (Eric_serve.Slo.to_json report) ^ "\n"
    in
    Option.iter (fun path -> write_file path (Bytes.of_string rendered)) out;
    if json then print_string rendered
    else Format.printf "%a@." Eric_serve.Slo.pp report;
    if slo_error && not (Eric_serve.Slo.passed report) then exit exit_failures
  in
  let scenario_arg =
    Arg.(
      value
      & opt scenario_conv Eric_serve.Scenario.steady
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Scenario preset to run: %s."
               (String.concat ", " Eric_serve.Scenario.names)))
  in
  let seed_arg =
    Arg.(
      value & opt int64 1L
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "PRNG seed for traffic and channel draws.  The same (scenario, seed) pair \
             produces a byte-identical report on any machine.")
  in
  let duration_arg =
    Arg.(
      value & opt (some float) None
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Override the scenario's simulated traffic horizon.")
  in
  let rate_scale_arg =
    Arg.(
      value & opt (some float) None
      & info [ "rate-scale" ] ~docv:"FACTOR"
          ~doc:"Scale the scenario's request rates (CI smoke runs shrink both).")
  in
  let cache_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Enable the artifact cache's on-disk tier in DIR.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON report to FILE.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the JSON report to stdout instead of the summary.")
  in
  let slo_error_arg =
    Arg.(
      value & flag
      & info [ "slo-error" ]
          ~doc:"Exit 3 when the run blows any of the scenario's SLO budgets.")
  in
  Cmd.v
    (Cmd.info "run" ~exits:campaign_exits
       ~doc:
         "Run one scenario of the simulated OTA update service: Zipf-popular workloads \
          over the corpus, Poisson/burst device arrivals, a bounded admission queue with \
          shed-on-full backpressure, per-tenant fleets and key rotations — all on a \
          simulated clock, reporting p50/p99 latency, refusal rate, quarantine rate and \
          cache hit rate against the scenario's SLO budgets.")
    Term.(
      const run $ scenario_arg $ seed_arg $ duration_arg $ rate_scale_arg $ cache_dir_arg
      $ out_arg $ json_arg $ slo_error_arg $ telemetry_arg $ trace_out_arg)

let serve_scenarios_cmd =
  let run () =
    List.iter
      (fun sc -> Format.printf "%a@." Eric_serve.Scenario.pp sc)
      Eric_serve.Scenario.presets
  in
  Cmd.v
    (Cmd.info "scenarios" ~doc:"List the scenario presets and their shapes.")
    Term.(const run $ const ())

let serve_cmd =
  Cmd.group
    (Cmd.info "serve"
       ~doc:
         "Simulated OTA update service: deterministic traffic scenarios through the fleet \
          pipeline with bounded queues, backpressure and SLO accounting.")
    [ serve_run_cmd; serve_scenarios_cmd ]

let () =
  let doc = "ERIC: PUF-keyed software obfuscation and trusted execution" in
  exit (Cmd.eval (Cmd.group (Cmd.info "eric" ~doc) [ compile_cmd; emit_asm_cmd; asm_cmd; build_cmd; inspect_cmd; disasm_cmd; analyze_cmd; lint_cmd; run_cmd; puf_cmd; fleet_cmd; verif_cmd; serve_cmd ]))
