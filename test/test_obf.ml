(* The obfuscation pass family: semantics preservation (differential
   oracle + verifier cleanliness), reproducibility of the seed contract,
   decoy provenance and Jaccard grading, the control-flow field-class,
   and the package obfuscation-metadata wire format. *)

let check = Alcotest.check

module Obf = Eric_obf.Obf
module Driver = Eric_cc.Driver
module Leakage = Eric_lint.Leakage

let full_cfg = { Obf.passes = Obf.all_passes; seed = Obf.default_seed }

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let compile_obf ?(cfg = full_cfg) source =
  let t, annot = Obf.hook cfg in
  let options = { Driver.default_options with Driver.transform = Some t } in
  (Driver.compile_exn ~options source, annot)

(* ------------------------------------------------------------------ *)
(* Pass-list plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let test_pass_parsing () =
  (match Obf.passes_of_string "flatten,opaque" with
  | Ok [ Obf.Opaque; Obf.Flatten ] -> ()
  | Ok _ -> Alcotest.fail "expected canonical order opaque < flatten"
  | Error e -> Alcotest.fail e);
  (match Obf.passes_of_string "dummy,dummy,constants" with
  | Ok [ Obf.Constants; Obf.Dummy ] -> ()
  | Ok _ -> Alcotest.fail "expected deduplicated canonical list"
  | Error e -> Alcotest.fail e);
  (match Obf.passes_of_string "flatten,bogus" with
  | Error msg -> check Alcotest.bool "error names the pass" true (contains msg "bogus")
  | Ok _ -> Alcotest.fail "unknown pass accepted")

let test_mask_round_trip () =
  List.iter
    (fun passes ->
      let mask = Obf.mask_of_passes passes in
      check
        Alcotest.(list string)
        "mask round-trips"
        (List.map Obf.pass_name passes)
        (List.map Obf.pass_name (Obf.passes_of_mask mask)))
    [ Obf.all_passes; [ Obf.Flatten ]; [ Obf.Constants; Obf.Dummy ]; [] ];
  check Alcotest.int "five pass bits" 0x1F (Obf.mask_of_passes Obf.all_passes)

(* ------------------------------------------------------------------ *)
(* Semantics: differential oracle over generated programs              *)
(* ------------------------------------------------------------------ *)

(* Every pass subset would be 31 oracle campaigns; the singletons catch
   per-pass breakage and the full stack catches composition breakage. *)
let combos =
  [ [ Obf.Constants ]; [ Obf.Arith ]; [ Obf.Opaque ]; [ Obf.Dummy ]; [ Obf.Flatten ];
    Obf.all_passes ]

let test_oracle_equivalence () =
  List.iteri
    (fun ci passes ->
      let options = Obf.options { Obf.passes; seed = Obf.default_seed } in
      for i = 0 to 5 do
        let seed = Int64.of_int ((ci * 101) + i + 7) in
        let g = Eric_verif.Gen.generate ~size:20 ~seed () in
        match Eric_verif.Oracle.run ~options g.Eric_verif.Gen.source with
        | Error msg -> Alcotest.failf "seed %Ld failed to compile: %s" seed msg
        | Ok report when Eric_verif.Oracle.exhausted report -> ()
        | Ok report ->
          if not (Eric_verif.Oracle.agree report) then
            Alcotest.failf "passes [%s] seed %Ld diverge:@.%a@.%s"
              (String.concat "," (List.map Obf.pass_name passes))
              seed Eric_verif.Oracle.pp_report report g.Eric_verif.Gen.source
      done)
    combos

(* Beyond the oracle: the qcheck property covers ALL 31 non-empty pass
   combinations at the IR level, where a run is cheap — interpreter
   output of the obfuscated IR must equal that of the plain IR. *)
let test_qcheck_interp_equivalence () =
  let interp ir =
    match Eric_cc.Ir_interp.run ~max_steps:8_000_000 ir with
    | o -> `Done (o.Eric_cc.Ir_interp.exit_code, o.Eric_cc.Ir_interp.output)
    | exception Eric_cc.Ir_interp.Runtime_error "interpreter out of fuel" -> `Fuel
    | exception Eric_cc.Ir_interp.Runtime_error msg -> `Trap msg
  in
  let ir_of ?transform source =
    let options = { Driver.default_options with Driver.transform } in
    match Driver.compile_to_ir ~options source with
    | Ok ir -> ir
    | Error e -> Alcotest.failf "generated program failed to compile: %s" e
  in
  let test =
    QCheck.Test.make ~count:93 ~name:"interp equivalence over all pass combos"
      QCheck.(pair (int_bound 1_000_000) (int_range 1 31))
      (fun (s, combo) ->
        let g = Eric_verif.Gen.generate ~size:16 ~seed:(Int64.of_int (s + 13)) () in
        let source = g.Eric_verif.Gen.source in
        let passes = Obf.passes_of_mask combo in
        let transform = Obf.transform { Obf.passes; seed = Obf.default_seed } in
        match (interp (ir_of source), interp (ir_of ~transform source)) with
        | `Fuel, _ | _, `Fuel -> true (* incomparable, not a divergence *)
        | `Trap _, `Trap _ -> true (* messages are layer-specific *)
        | a, b -> a = b)
  in
  QCheck.Test.check_exn test

let test_workload_outputs_unchanged () =
  List.iter
    (fun (w : Eric_workloads.Workloads.t) ->
      let plain = Driver.compile_exn w.source_small in
      let image, _ = compile_obf w.source_small in
      let a = Eric_sim.Soc.run_program plain in
      let b = Eric_sim.Soc.run_program image in
      check Alcotest.string (w.name ^ ": same output") a.Eric_sim.Soc.output
        b.Eric_sim.Soc.output;
      check Alcotest.bool (w.name ^ ": same status") true
        (a.Eric_sim.Soc.status = b.Eric_sim.Soc.status))
    Eric_workloads.Workloads.all

(* ------------------------------------------------------------------ *)
(* Reproducibility: the seed contract                                  *)
(* ------------------------------------------------------------------ *)

let test_reproducible_builds () =
  let w = List.hd Eric_workloads.Workloads.all in
  let a, _ = compile_obf w.source in
  let b, _ = compile_obf w.source in
  check Alcotest.bool "same seed, byte-identical image" true
    (Eric_rv.Program.text_bytes a = Eric_rv.Program.text_bytes b);
  let c, _ = compile_obf ~cfg:{ full_cfg with Obf.seed = 0xDEADBEEFL } w.source in
  check Alcotest.bool "different seed, different image" false
    (Eric_rv.Program.text_bytes a = Eric_rv.Program.text_bytes c)

let test_annot_counters_seeded_golden () =
  (* Golden provenance counters for one pinned (workload, seed): any
     drift in the PRNG stream derivation or pass order shows up here
     before it silently changes every "reproducible" build. *)
  let w = List.hd Eric_workloads.Workloads.all in
  let _, annot = compile_obf w.source in
  check Alcotest.int "passes run" 5 annot.Eric_obf.Annot.passes_run;
  check Alcotest.bool "constants encoded" true (annot.Eric_obf.Annot.constants_encoded > 0);
  check Alcotest.bool "arith rewrites" true (annot.Eric_obf.Annot.arith_rewrites > 0);
  check Alcotest.bool "decoy blocks planted" true (annot.Eric_obf.Annot.blocks_inserted > 0);
  check Alcotest.bool "dummy functions added" true (annot.Eric_obf.Annot.functions_added >= 4);
  check Alcotest.bool "functions flattened" true (annot.Eric_obf.Annot.functions_flattened > 0);
  let _, again = compile_obf w.source in
  check Alcotest.int "counters reproduce: blocks" annot.Eric_obf.Annot.blocks_inserted
    again.Eric_obf.Annot.blocks_inserted;
  check Alcotest.int "counters reproduce: constants" annot.Eric_obf.Annot.constants_encoded
    again.Eric_obf.Annot.constants_encoded;
  check Alcotest.int "counters reproduce: arith" annot.Eric_obf.Annot.arith_rewrites
    again.Eric_obf.Annot.arith_rewrites

(* ------------------------------------------------------------------ *)
(* Verifier cleanliness                                                *)
(* ------------------------------------------------------------------ *)

let test_verifiers_clean () =
  List.iter
    (fun (w : Eric_workloads.Workloads.t) ->
      let cfg = full_cfg in
      let t, _ = Obf.hook cfg in
      let options = { Driver.default_options with Driver.transform = Some t; verify_ir = false } in
      (match Driver.compile_to_ir ~options w.source with
      | Error e -> Alcotest.failf "%s: %s" w.name e
      | Ok ir ->
        check Alcotest.int (w.name ^ ": ir_verify error-clean") 0
          (List.length (Eric_cc.Ir_verify.errors (Eric_cc.Ir_verify.verify ir))));
      let image = Driver.compile_exn ~options:{ options with Driver.verify_ir = true } w.source in
      check Alcotest.int (w.name ^ ": mc_verify clean") 0
        (List.length (Eric_lint.Mc_verify.verify image)))
    Eric_workloads.Workloads.all

(* ------------------------------------------------------------------ *)
(* Grading: decoy subtraction and the leakage bar                      *)
(* ------------------------------------------------------------------ *)

let test_grade_under_bar_all_workloads () =
  List.iter
    (fun (w : Eric_workloads.Workloads.t) ->
      let image, annot = compile_obf w.source in
      let s = Obf.grade ~annot ~attacker:Leakage.Recursive image in
      if s.Leakage.structure_score > 0.6 then
        Alcotest.failf "%s: recursive attacker scores %.3f > 0.6" w.name
          s.Leakage.structure_score)
    Eric_workloads.Workloads.all

let test_plain_image_grades_full_recovery () =
  (* Jaccard == plain recall == 1.0 when nothing was planted: the scale's
     top anchor. *)
  let w = List.hd Eric_workloads.Workloads.all in
  let image = Driver.compile_exn w.source in
  let annot = Eric_obf.Annot.create () in
  let s = Obf.grade ~annot ~attacker:Leakage.Recursive image in
  check (Alcotest.float 0.0001) "plain image scores 1.0" 1.0 s.Leakage.structure_score

let test_truth_restrict () =
  let w = List.hd Eric_workloads.Workloads.all in
  let image = Driver.compile_exn w.source in
  let t = Eric_cc.Truth.of_image image in
  let all = Eric_cc.Truth.restrict ~keep:(fun _ -> true) t in
  check Alcotest.int "keep-all preserves code"
    (Leakage.Iset.cardinal t.Eric_cc.Truth.truth.Leakage.t_code)
    (Leakage.Iset.cardinal all.Eric_cc.Truth.truth.Leakage.t_code);
  let none = Eric_cc.Truth.restrict ~keep:(fun _ -> false) t in
  check Alcotest.int "keep-none empties code" 0
    (Leakage.Iset.cardinal none.Eric_cc.Truth.truth.Leakage.t_code);
  check Alcotest.int "keep-none empties edges" 0
    (Leakage.Eset.cardinal none.Eric_cc.Truth.truth.Leakage.t_call_edges);
  check Alcotest.int "keep-none empties functions" 0 (List.length none.Eric_cc.Truth.functions)

(* ------------------------------------------------------------------ *)
(* Control-flow field-class encryption                                 *)
(* ------------------------------------------------------------------ *)

let cf_mode = Eric.Config.Field (Eric.Config.Control_flow, Eric.Config.Select_all)

let test_control_flow_masks () =
  let m32 op = Eric.Config.field_mask32 Eric.Config.Control_flow (Int32.of_int op) in
  (* branch (opcode 1100011): S-type immediate bits *)
  check Alcotest.bool "beq imm masked" true (m32 0b1100011 <> 0l);
  (* jal (1101111) and jalr (1100111): offset bits *)
  check Alcotest.bool "jal imm masked" true (m32 0b1101111 <> 0l);
  check Alcotest.bool "jalr imm masked" true (m32 0b1100111 <> 0l);
  (* arithmetic stays plaintext under this class *)
  check Alcotest.int32 "add untouched" 0l (m32 0b0110011);
  let m16 p = Eric.Config.field_mask16 Eric.Config.Control_flow p in
  (* c.j (quadrant 1, funct3 5) and c.beqz (1,6) carry offsets *)
  check Alcotest.bool "c.j offset masked" true (m16 ((5 lsl 13) lor 1) <> 0);
  check Alcotest.bool "c.beqz offset masked" true (m16 ((6 lsl 13) lor 1) <> 0);
  (* c.addiw (1,1) is NOT control flow on RV64 *)
  check Alcotest.int "c.addiw untouched" 0 (m16 ((1 lsl 13) lor 1))

let test_field_cf_round_trip () =
  let source = "int main() { int s = 0; for (int i = 0; i < 9; i++) { s += i; } println_int(s); return 0; }" in
  match Eric_verif.Oracle.run ~mode:cf_mode source with
  | Error e -> Alcotest.fail e
  | Ok report ->
    check Alcotest.bool "field-cf round-trips through HDE" true
      (Eric_verif.Oracle.agree report)

let test_field_cf_hides_branch_offsets () =
  let w = List.hd Eric_workloads.Workloads.all in
  let image = Driver.compile_exn w.source in
  let report, _ = Eric.Policy_lint.lint ~mode:cf_mode image in
  check Alcotest.int "no branch offsets legible" 0
    report.Leakage.branch_offsets_plaintext;
  check Alcotest.bool "opcodes stay visible (field class)" true
    (report.Leakage.opcode_visible_fraction > 0.9)

(* ------------------------------------------------------------------ *)
(* Package metadata wire format                                        *)
(* ------------------------------------------------------------------ *)

let build_pkg ?obf () =
  let target = Eric.Target.of_id 0xE51CL in
  let key = Eric.Target.derived_key target in
  let source = "int main() { println_int(41); return 0; }" in
  match Eric.Source.build ?obf ~mode:Eric.Config.Full ~key source with
  | Ok b -> b.Eric.Source.package
  | Error e -> Alcotest.fail e

let test_package_obf_metadata_round_trip () =
  let mask = Obf.mask_of_passes Obf.all_passes in
  let pkg = build_pkg ~obf:(mask, Obf.default_seed) () in
  let wire = Eric.Package.serialize pkg in
  (match Eric.Package.parse wire with
  | Error e -> Alcotest.fail e
  | Ok parsed -> (
    match parsed.Eric.Package.obf with
    | Some (m, s) ->
      check Alcotest.int "pass mask survives the wire" mask m;
      check Alcotest.int64 "seed survives the wire" Obf.default_seed s
    | None -> Alcotest.fail "obfuscation metadata lost on the wire"));
  let plain = build_pkg () in
  match Eric.Package.parse (Eric.Package.serialize plain) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    check Alcotest.bool "no metadata when not obfuscated" true
      (parsed.Eric.Package.obf = None)

let test_package_obf_metadata_malformed () =
  let mask = Obf.mask_of_passes [ Obf.Flatten ] in
  let pkg = build_pkg ~obf:(mask, 1L) () in
  let wire = Eric.Package.serialize pkg in
  (* Full mode: no selection map, so the metadata block sits directly
     after the fixed header. *)
  let expect what needle bytes =
    match Eric.Package.parse bytes with
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | Error msg ->
      check Alcotest.bool
        (Printf.sprintf "%s: %S mentions %S" what msg needle)
        true (contains msg needle)
  in
  let with_byte off v =
    let b = Bytes.copy wire in
    Bytes.set b off (Char.chr v);
    b
  in
  expect "reserved pass bits" "reserved obfuscation pass bits"
    (with_byte Eric.Package.header_size 0xFF);
  expect "flag without passes" "obfuscation metadata without passes"
    (with_byte Eric.Package.header_size 0x00);
  (* signature covers the metadata: a flipped seed byte must not verify *)
  let tampered_seed = with_byte (Eric.Package.header_size + 3) 0x55 in
  match Eric.Package.parse tampered_seed with
  | Ok parsed ->
    let target = Eric.Target.of_id 0xE51CL in
    (match Eric.Target.execute target parsed with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "tampered obf seed executed")
  | Error _ -> ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "eric_obf"
    [ ( "plumbing",
        [ Alcotest.test_case "pass parsing" `Quick test_pass_parsing;
          Alcotest.test_case "mask round trip" `Quick test_mask_round_trip ] );
      ( "semantics",
        [ Alcotest.test_case "oracle equivalence" `Slow test_oracle_equivalence;
          Alcotest.test_case "qcheck interp equivalence" `Slow test_qcheck_interp_equivalence;
          Alcotest.test_case "workload outputs" `Slow test_workload_outputs_unchanged ] );
      ( "reproducibility",
        [ Alcotest.test_case "byte-identical builds" `Quick test_reproducible_builds;
          Alcotest.test_case "seeded counters" `Quick test_annot_counters_seeded_golden ] );
      ( "verifiers",
        [ Alcotest.test_case "ir+mc clean" `Slow test_verifiers_clean ] );
      ( "grading",
        [ Alcotest.test_case "all workloads under 0.6" `Slow test_grade_under_bar_all_workloads;
          Alcotest.test_case "plain anchors at 1.0" `Quick test_plain_image_grades_full_recovery;
          Alcotest.test_case "truth restrict" `Quick test_truth_restrict ] );
      ( "field-cf",
        [ Alcotest.test_case "masks" `Quick test_control_flow_masks;
          Alcotest.test_case "round trip" `Quick test_field_cf_round_trip;
          Alcotest.test_case "hides branch offsets" `Quick test_field_cf_hides_branch_offsets ] );
      ( "package",
        [ Alcotest.test_case "metadata round trip" `Quick test_package_obf_metadata_round_trip;
          Alcotest.test_case "metadata malformed" `Quick test_package_obf_metadata_malformed ] ) ]
