(* Tests for eric_sim: memory bounds, cache geometry and LRU, CPU
   instruction semantics (including M-extension corner cases, checked
   against independently computed expectations), syscalls and timing. *)

open Eric_rv
open Eric_sim

let check = Alcotest.check
let qtest ?(count = 300) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let test_memory_rw () =
  let m = Memory.create ~size:4096 in
  Memory.write_u64 m 128 0x1122334455667788L;
  check Alcotest.int64 "u64" 0x1122334455667788L (Memory.read_u64 m 128);
  check Alcotest.int "low byte" 0x88 (Memory.read_u8 m 128);
  check Alcotest.int "u16" 0x7788 (Memory.read_u16 m 128);
  check Alcotest.int32 "u32" 0x55667788l (Memory.read_u32 m 128);
  Memory.write_u8 m 128 0xFF;
  check Alcotest.int "byte replaced" 0xFF (Memory.read_u8 m 128)

let test_memory_bounds () =
  let m = Memory.create ~size:64 in
  let trap f = try f (); false with Memory.Trap _ -> true in
  check Alcotest.bool "read past end" true (trap (fun () -> ignore (Memory.read_u64 m 60)));
  check Alcotest.bool "negative" true (trap (fun () -> ignore (Memory.read_u8 m (-1))));
  check Alcotest.bool "blit past end" true
    (trap (fun () -> Memory.blit_bytes m ~addr:60 (Bytes.make 8 'x')))

let test_memory_blit_fill () =
  let m = Memory.create ~size:64 in
  Memory.blit_bytes m ~addr:8 (Bytes.of_string "abc");
  check Alcotest.string "blit" "abc" (Bytes.to_string (Memory.read_bytes m ~addr:8 ~len:3));
  Memory.fill m ~addr:8 ~len:2 'z';
  check Alcotest.string "fill" "zzc" (Bytes.to_string (Memory.read_bytes m ~addr:8 ~len:3))

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let small_cache () = Cache.create { Cache.size_bytes = 512; ways = 2; line_bytes = 64 }
(* 512/64 = 8 lines, 2-way -> 4 sets; set index = line mod 4 *)

let test_cache_hit_after_fill () =
  let c = small_cache () in
  check Alcotest.bool "first access misses" true (Cache.access c ~addr:0 ~write:false <> Cache.Hit);
  check Alcotest.bool "second hits" true (Cache.access c ~addr:32 ~write:false = Cache.Hit);
  check Alcotest.int "stats" 1 (Cache.stats c).Cache.hits

let test_cache_lru_eviction () =
  let c = small_cache () in
  (* Three lines mapping to set 0: line 0 (addr 0), line 4 (addr 256),
     line 8 (addr 512). *)
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:256 ~write:false);
  (* touch line 0 so line 4 is LRU *)
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:512 ~write:false);
  (* evicts line 4 *)
  check Alcotest.bool "line 0 still resident" true (Cache.access c ~addr:0 ~write:false = Cache.Hit);
  check Alcotest.bool "line 4 evicted" true (Cache.access c ~addr:256 ~write:false <> Cache.Hit)

let test_cache_writeback () =
  let c = small_cache () in
  ignore (Cache.access c ~addr:0 ~write:true);
  (* dirty line 0 *)
  ignore (Cache.access c ~addr:256 ~write:false);
  match Cache.access c ~addr:512 ~write:false with
  | Cache.Miss { writeback = true } -> ()
  | Cache.Miss { writeback = false } -> Alcotest.fail "expected dirty eviction"
  | Cache.Hit -> Alcotest.fail "expected miss"

let test_cache_flush () =
  let c = small_cache () in
  ignore (Cache.access c ~addr:0 ~write:false);
  Cache.flush c;
  check Alcotest.bool "miss after flush" true (Cache.access c ~addr:0 ~write:false <> Cache.Hit)

let test_cache_geometry_validation () =
  let bad geometry = try ignore (Cache.create geometry); false with Invalid_argument _ -> true in
  check Alcotest.bool "non power of two line" true
    (bad { Cache.size_bytes = 512; ways = 2; line_bytes = 48 });
  check Alcotest.bool "zero ways" true (bad { Cache.size_bytes = 512; ways = 0; line_bytes = 64 })

let test_cache_table1_geometry () =
  let c = Cache.create Cache.table1_config in
  check Alcotest.int "16 KiB" (16 * 1024) (Cache.config c).Cache.size_bytes;
  check Alcotest.int "4-way" 4 (Cache.config c).Cache.ways

(* ------------------------------------------------------------------ *)
(* CPU semantics                                                       *)
(* ------------------------------------------------------------------ *)

(* Run a single R-type instruction with the given operand values and
   return rd. *)
let exec_r op a b =
  let memory = Memory.create ~size:0x20000 in
  Memory.write_u32 memory 0x10000 (Encode.encode (Inst.R (op, Reg.a 0, Reg.a 1, Reg.a 2)));
  Memory.write_u32 memory 0x10004 (Encode.encode (Inst.I (Addi, Reg.x0, Reg.x0, 0)));
  let cpu = Cpu.create ~memory ~pc:0x10000 ~sp:0x1F000 () in
  Cpu.set_reg cpu (Reg.a 1) a;
  Cpu.set_reg cpu (Reg.a 2) b;
  Cpu.step cpu;
  (match Cpu.status cpu with
  | Cpu.Running -> ()
  | Cpu.Exited _ | Cpu.Faulted _ | Cpu.Integrity_fault _ ->
    Alcotest.fail "single step should leave CPU running");
  Cpu.reg cpu (Reg.a 0)

let test_div_corner_cases () =
  check Alcotest.int64 "div by zero" (-1L) (exec_r Inst.Div 42L 0L);
  check Alcotest.int64 "rem by zero" 42L (exec_r Inst.Rem 42L 0L);
  check Alcotest.int64 "divu by zero" (-1L) (exec_r Inst.Divu 42L 0L);
  check Alcotest.int64 "remu by zero" 42L (exec_r Inst.Remu 42L 0L);
  check Alcotest.int64 "signed overflow div" Int64.min_int (exec_r Inst.Div Int64.min_int (-1L));
  check Alcotest.int64 "signed overflow rem" 0L (exec_r Inst.Rem Int64.min_int (-1L));
  check Alcotest.int64 "divw by zero" (-1L) (exec_r Inst.Divw 7L 0L);
  check Alcotest.int64 "remw by zero" 7L (exec_r Inst.Remw 7L 0L);
  check Alcotest.int64 "divw overflow" (Int64.of_int32 Int32.min_int)
    (exec_r Inst.Divw (Int64.of_int32 Int32.min_int) (-1L));
  check Alcotest.int64 "trunc toward zero" (-3L) (exec_r Inst.Div (-7L) 2L);
  check Alcotest.int64 "rem sign follows dividend" (-1L) (exec_r Inst.Rem (-7L) 2L)

let test_mulh_identities () =
  (* mulhu/mulh cross-checked against a 32x32 split computed here,
     independent of the CPU implementation's helper. *)
  let samples =
    [ (0x123456789ABCDEFL, 0x0FEDCBA987654321L); (-1L, -1L); (Int64.min_int, 2L);
      (Int64.max_int, Int64.max_int); (0xFFFFFFFFFFFFFFFFL, 2L); (3L, -5L) ]
  in
  let ref_mulhu a b =
    let lo32 = 0xFFFFFFFFL in
    let al = Int64.logand a lo32 and ah = Int64.shift_right_logical a 32 in
    let bl = Int64.logand b lo32 and bh = Int64.shift_right_logical b 32 in
    let open Int64 in
    let ll = mul al bl in
    let lh = mul al bh and hl = mul ah bl and hh = mul ah bh in
    let mid = add (add lh (shift_right_logical ll 32)) (logand hl lo32) in
    add (add hh (shift_right_logical hl 32)) (shift_right_logical mid 32)
  in
  List.iter
    (fun (a, b) ->
      let hu = ref_mulhu a b in
      check Alcotest.int64 "mulhu" hu (exec_r Inst.Mulhu a b);
      let hs =
        let r = hu in
        let r = if Int64.compare a 0L < 0 then Int64.sub r b else r in
        if Int64.compare b 0L < 0 then Int64.sub r a else r
      in
      check Alcotest.int64 "mulh" hs (exec_r Inst.Mulh a b);
      let hsu = if Int64.compare a 0L < 0 then Int64.sub hu b else hu in
      check Alcotest.int64 "mulhsu" hsu (exec_r Inst.Mulhsu a b))
    samples

let mul_small_products =
  qtest "mul/mulh on small magnitudes" QCheck.(pair int64 int64) (fun (a, b) ->
      let a = Int64.rem a 0x40000000L and b = Int64.rem b 0x40000000L in
      exec_r Inst.Mul a b = Int64.mul a b
      && exec_r Inst.Mulh a b = (if Int64.mul a b < 0L then -1L else 0L))

let test_w_ops () =
  check Alcotest.int64 "addw wraps" (Int64.of_int32 (Int32.add Int32.max_int 1l))
    (exec_r Inst.Addw (Int64.of_int32 Int32.max_int) 1L);
  check Alcotest.int64 "subw" (-1L) (exec_r Inst.Subw 0L 1L);
  check Alcotest.int64 "sllw truncates high bits" 0L (exec_r Inst.Sllw 0x100000000L 0L);
  check Alcotest.int64 "srlw on bit31" 1L (exec_r Inst.Srlw 0x80000000L 31L);
  check Alcotest.int64 "sraw sign extends" (-1L) (exec_r Inst.Sraw 0x80000000L 31L);
  check Alcotest.int64 "mulw" (Int64.of_int32 (Int32.mul 123456789l 987654321l))
    (exec_r Inst.Mulw 123456789L 987654321L)

let test_shifts_mask_shamt () =
  check Alcotest.int64 "sll uses low 6 bits" (Int64.shift_left 1L 1) (exec_r Inst.Sll 1L 65L);
  check Alcotest.int64 "srl logical" 1L (exec_r Inst.Srl Int64.min_int 63L);
  check Alcotest.int64 "sra arithmetic" (-1L) (exec_r Inst.Sra Int64.min_int 63L)

let test_slt_family () =
  check Alcotest.int64 "slt" 1L (exec_r Inst.Slt (-1L) 0L);
  check Alcotest.int64 "sltu unsigned" 0L (exec_r Inst.Sltu (-1L) 0L);
  check Alcotest.int64 "sltu small" 1L (exec_r Inst.Sltu 0L 1L)

(* ------------------------------------------------------------------ *)
(* Program-level behaviour                                             *)
(* ------------------------------------------------------------------ *)

let build_program ?(data = Bytes.empty) insts =
  let text = Array.of_list (List.map (fun i -> Program.P32 (Encode.encode i)) insts) in
  { Program.text; data; bss_size = 0; entry_offset = 0; symbols = [] }

let test_x0_hardwired () =
  let image =
    build_program
      [ Inst.I (Addi, Reg.x0, Reg.x0, 55) (* attempt to write x0 *);
        Inst.I (Addi, Reg.a 0, Reg.x0, 0) (* a0 = x0 *);
        Inst.I (Addi, Reg.a 7, Reg.x0, 93); Inst.Ecall ]
  in
  match (Soc.run_program image).Soc.status with
  | Cpu.Exited 0 -> ()
  | Cpu.Exited n -> Alcotest.failf "x0 was written: exit %d" n
  | _ -> Alcotest.fail "fault"

let test_load_store_widths () =
  let a n = Reg.a n in
  let image =
    build_program
      [ Inst.I (Addi, a 1, Reg.x0, -128) (* 0xFF..80 *);
        Inst.U (Lui, Reg.t_ 0, 0x12) (* scratch memory at 0x12000 *);
        Inst.Store (Sd, a 1, Reg.t_ 0, 0);
        Inst.Load (Lb, a 2, Reg.t_ 0, 0) (* -128 *);
        Inst.Load (Lbu, a 3, Reg.t_ 0, 0) (* 128 *);
        Inst.Load (Lh, a 4, Reg.t_ 0, 0) (* -128 *);
        Inst.Load (Lhu, a 5, Reg.t_ 0, 0) (* 65408 *);
        Inst.R (Add, a 0, a 2, a 3); Inst.R (Add, a 0, a 0, a 4); Inst.R (Add, a 0, a 0, a 5);
        Inst.I (Addi, a 7, Reg.x0, 93); Inst.Ecall ]
  in
  match (Soc.run_program image).Soc.status with
  | Cpu.Exited code -> check Alcotest.int "widths checksum" (-128 + 128 - 128 + 65408) code
  | _ -> Alcotest.fail "did not exit"

let test_misaligned_store_faults () =
  let image =
    build_program
      [ Inst.U (Lui, Reg.t_ 0, 0x12); Inst.I (Addi, Reg.t_ 0, Reg.t_ 0, 1);
        Inst.Store (Sd, Reg.x0, Reg.t_ 0, 0) ]
  in
  match (Soc.run_program image).Soc.status with
  | Cpu.Faulted msg ->
    check Alcotest.bool "mentions misaligned" true
      (String.length msg >= 10 && String.sub msg 0 10 = "misaligned")
  | _ -> Alcotest.fail "expected fault"

let test_invalid_instruction_faults () =
  let image =
    { Program.text = [| Program.P32 0xFFFFFFFFl |]; data = Bytes.empty; bss_size = 0;
      entry_offset = 0; symbols = [] }
  in
  match (Soc.run_program image).Soc.status with
  | Cpu.Faulted _ -> ()
  | _ -> Alcotest.fail "expected fault"

let test_ebreak_faults () =
  let image = build_program [ Inst.Ebreak ] in
  match (Soc.run_program image).Soc.status with
  | Cpu.Faulted _ -> ()
  | _ -> Alcotest.fail "expected fault"

let test_out_of_fuel () =
  let image = build_program [ Inst.Jal (Reg.x0, 0) (* jump to self *) ] in
  match (Soc.run_program ~fuel:1000 image).Soc.status with
  | Cpu.Faulted "out of fuel" -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_write_syscall () =
  let image =
    build_program ~data:(Bytes.of_string "xyz")
      [ Inst.U (Lui, Reg.a 1, 0x11) (* data base: text rounds up to one page *);
        Inst.I (Addi, Reg.a 0, Reg.x0, 1); Inst.I (Addi, Reg.a 2, Reg.x0, 3);
        Inst.I (Addi, Reg.a 7, Reg.x0, 64); Inst.Ecall;
        Inst.I (Addi, Reg.a 7, Reg.x0, 93); Inst.I (Addi, Reg.a 0, Reg.x0, 0); Inst.Ecall ]
  in
  let r = Soc.run_program image in
  check Alcotest.string "output" "xyz" r.Soc.output;
  check Alcotest.bool "exit 0" true (r.Soc.status = Cpu.Exited 0)

(* ------------------------------------------------------------------ *)
(* Timing model                                                        *)
(* ------------------------------------------------------------------ *)

let cycles_of insts =
  let image = build_program (insts @ [ Inst.I (Addi, Reg.a 7, Reg.x0, 93); Inst.Ecall ]) in
  let r = Soc.run_program image in
  (match r.Soc.status with Cpu.Exited _ -> () | _ -> Alcotest.fail "did not exit");
  r.Soc.exec_cycles

let test_timing_load_use_stall () =
  let independent =
    cycles_of
      [ Inst.U (Lui, Reg.t_ 0, 0x12); Inst.Load (Ld, Reg.a 1, Reg.t_ 0, 0);
        Inst.I (Addi, Reg.t_ 1, Reg.t_ 1, 1);
        Inst.R (Add, Reg.a 2, Reg.a 1, Reg.a 1) ]
  in
  let dependent =
    cycles_of
      [ Inst.U (Lui, Reg.t_ 0, 0x12); Inst.Load (Ld, Reg.a 1, Reg.t_ 0, 0);
        Inst.R (Add, Reg.a 2, Reg.a 1, Reg.a 1);
        Inst.I (Addi, Reg.t_ 1, Reg.t_ 1, 1) ]
  in
  check Alcotest.int64 "dependent order costs one stall" (Int64.add independent 1L) dependent

let test_timing_div_slower_than_add () =
  let adds = cycles_of (List.init 10 (fun _ -> Inst.R (Add, Reg.a 0, Reg.a 0, Reg.a 1))) in
  let divs = cycles_of (List.init 10 (fun _ -> Inst.R (Div, Reg.a 0, Reg.a 0, Reg.a 1))) in
  check Alcotest.bool "div expensive" true (Int64.compare divs (Int64.add adds 200L) > 0)

let test_timing_taken_branch_penalty () =
  let taken =
    cycles_of [ Inst.Branch (Beq, Reg.x0, Reg.x0, 8); Inst.I (Addi, Reg.a 0, Reg.x0, 1) ]
  in
  let straight =
    cycles_of [ Inst.I (Addi, Reg.a 0, Reg.x0, 1); Inst.I (Addi, Reg.a 1, Reg.x0, 1) ]
  in
  check Alcotest.bool "taken branch pays penalty" true (Int64.compare taken straight > 0)

let test_icache_stats_exposed () =
  let image = build_program [ Inst.I (Addi, Reg.a 7, Reg.x0, 93); Inst.Ecall ] in
  let r = Soc.run_program image in
  check Alcotest.bool "icache rate sane" true
    (r.Soc.icache_hit_rate >= 0.0 && r.Soc.icache_hit_rate <= 1.0)

let test_plain_load_cycles () =
  let image = build_program [ Inst.Ecall ] in
  let bytes = Bytes.length (Program.to_binary image) in
  check Alcotest.int64 "dma cycles" (Int64.of_int ((bytes + 7) / 8)) (Soc.plain_load_cycles image)


let test_branch_predictor () =
  (* A hot loop: the bimodal predictor should eliminate most taken-branch
     penalties without changing architectural results. *)
  let a n = Reg.a n in
  let insts =
    [ Inst.I (Addi, a 0, Reg.x0, 0); Inst.I (Addi, Reg.t_ 0, Reg.x0, 0);
      Inst.I (Addi, Reg.t_ 1, Reg.x0, 1000);
      (* loop: *)
      Inst.R (Add, a 0, a 0, Reg.t_ 0); Inst.I (Addi, Reg.t_ 0, Reg.t_ 0, 1);
      Inst.Branch (Blt, Reg.t_ 0, Reg.t_ 1, -8);
      Inst.I (Addi, a 7, Reg.x0, 93); Inst.Ecall ]
  in
  let image = build_program insts in
  let fixed = Soc.run_program image in
  let predicted = Soc.run_program ~branch_predictor:true image in
  check Alcotest.bool "same status" true (fixed.Soc.status = predicted.Soc.status);
  (match (fixed.Soc.status, predicted.Soc.status) with
  | Cpu.Exited a, Cpu.Exited b -> check Alcotest.int "same result" a b
  | _ -> Alcotest.fail "did not exit");
  check Alcotest.int64 "same instruction count" fixed.Soc.instructions predicted.Soc.instructions;
  (* ~999 taken branches at 2 cycles each should nearly all disappear *)
  check Alcotest.bool "prediction saves cycles" true
    (Int64.compare (Int64.add predicted.Soc.exec_cycles 1500L) fixed.Soc.exec_cycles < 0)


let test_csr_counters () =
  (* rdcycle twice and rdinstret once; check deltas. *)
  let a n = Reg.a n in
  let image =
    build_program
      [ Inst.Csrr (a 1, 0xC00) (* cycles #1 *); Inst.I (Addi, Reg.t_ 0, Reg.x0, 1);
        Inst.I (Addi, Reg.t_ 0, Reg.t_ 0, 1); Inst.Csrr (a 2, 0xC00) (* cycles #2 *);
        Inst.Csrr (a 3, 0xC02) (* instret *);
        Inst.R (Sub, a 0, a 2, a 1) (* cycle delta -> exit code *);
        Inst.I (Addi, a 7, Reg.x0, 93); Inst.Ecall ]
  in
  let memory = Soc.load image in
  let cpu = Soc.boot image memory in
  (match Cpu.run cpu with
  | Cpu.Exited delta ->
    check Alcotest.bool "cycles advance" true (delta >= 3);
    (* rdinstret executed as the 5th instruction; it reads the count of
       instructions retired before it *)
    check Alcotest.int64 "instret" 4L (Cpu.reg cpu (a 3))
  | _ -> Alcotest.fail "did not exit")

(* ------------------------------------------------------------------ *)
(* Integrity guard runtime                                             *)
(* ------------------------------------------------------------------ *)

(* A countdown loop long enough for several scrub passes, with optional
   preamble instructions and never-executed padding to flip bits in. *)
let loop_program ?(iters = 1500) ?(extra = []) ?(pad = 0) ?data () =
  build_program ?data
    ([ Inst.I (Addi, Reg.t_ 0, Reg.x0, iters) ]
    @ extra
    @ [ Inst.I (Addi, Reg.t_ 0, Reg.t_ 0, -1);
        Inst.Branch (Bne, Reg.t_ 0, Reg.x0, -4);
        Inst.I (Addi, Reg.a 0, Reg.x0, 0);
        Inst.I (Addi, Reg.a 7, Reg.x0, 93); Inst.Ecall ]
    @ List.init pad (fun _ -> Inst.I (Addi, Reg.x0, Reg.x0, 0)))

let run_flipped ~guard ?(flip = fun _ _ -> ()) image =
  let memory = Soc.load image in
  flip memory image;
  Soc.run_loaded ~guard ~load_cycles:0L image memory

let flip_text_byte ~off memory (image : Program.t) =
  ignore image;
  let addr = Program.Layout.text_base + off in
  Memory.write_u8 memory addr (Memory.read_u8 memory addr lxor 0x10)

let test_guard_clean_run_equivalent () =
  let image = loop_program () in
  let plain = run_flipped ~guard:Eric_hw.Guard.disabled image in
  let guarded = run_flipped ~guard:(Eric_hw.Guard.fetch_and_scrub ~interval_cycles:256) image in
  (match (plain.Soc.status, guarded.Soc.status) with
  | Cpu.Exited 0, Cpu.Exited 0 -> ()
  | _ -> Alcotest.fail "clean run did not exit 0 under the guard");
  check Alcotest.int64 "same instructions" plain.Soc.instructions guarded.Soc.instructions;
  check Alcotest.int64 "plain charges no guard cycles" 0L plain.Soc.guard_cycles;
  check Alcotest.bool "guard cycles charged" true
    (Int64.compare guarded.Soc.guard_cycles 0L > 0);
  check Alcotest.bool "guard slows the run" true
    (Int64.compare guarded.Soc.exec_cycles plain.Soc.exec_cycles > 0)

let test_guard_fetch_detects_before_decode () =
  (* The flipped first instruction would also fail decode; the fetch
     check must win (check-before-decode in Cpu.step), yielding a typed
     integrity fault rather than an invalid-instruction trap. *)
  let image = loop_program () in
  let r =
    run_flipped ~guard:Eric_hw.Guard.fetch_check ~flip:(flip_text_byte ~off:0) image
  in
  match r.Soc.status with
  | Cpu.Integrity_fault _ -> ()
  | Cpu.Faulted m -> Alcotest.failf "machine fault preempted the guard: %s" m
  | _ -> Alcotest.fail "corrupted fetch not detected"

let test_guard_scrub_detects_dead_code () =
  (* Flip in padding that is never fetched: I-side checking alone is
     blind to it, a scrub pass is not. *)
  let image = loop_program ~pad:32 () in
  let flip = flip_text_byte ~off:(Program.text_size image - 4) in
  let scrubbed =
    run_flipped ~guard:(Eric_hw.Guard.scrub ~interval_cycles:256) ~flip image
  in
  (match scrubbed.Soc.status with
  | Cpu.Integrity_fault _ -> ()
  | _ -> Alcotest.fail "scrub missed a dead-code flip");
  let fetch_only = run_flipped ~guard:Eric_hw.Guard.fetch_check ~flip image in
  match fetch_only.Soc.status with
  | Cpu.Exited 0 -> ()  (* the honest I-side blind spot *)
  | _ -> Alcotest.fail "fetch-only guard should not see never-fetched text"

let test_guard_self_modifying_text_faults () =
  (* A store below the data segment is never re-enrolled, so the next
     scrub pass faults it. *)
  let image =
    loop_program
      ~extra:[ Inst.U (Lui, Reg.a 1, 0x10); Inst.Store (Sw, Reg.x0, Reg.a 1, 0) ]
      ()
  in
  let r = run_flipped ~guard:(Eric_hw.Guard.scrub ~interval_cycles:256) image in
  match r.Soc.status with
  | Cpu.Integrity_fault _ -> ()
  | _ -> Alcotest.fail "self-modified text not faulted"

let test_guard_reenrolls_dirty_data () =
  (* Legitimate data writes re-enroll instead of faulting: the guarded
     run completes, and the stats show the re-enrollment happened. *)
  let image =
    loop_program
      ~extra:[ Inst.U (Lui, Reg.a 1, 0x11); Inst.Store (Sw, Reg.t_ 0, Reg.a 1, 0) ]
      ~data:(Bytes.make 16 '\x00') ()
  in
  let memory = Soc.load image in
  let cpu = Soc.boot image memory in
  let config = Eric_hw.Guard.scrub ~interval_cycles:128 in
  let integ = Integrity.create ~config ~image memory in
  Integrity.attach integ cpu;
  let fuel = ref 100_000 in
  while Cpu.status cpu = Cpu.Running && !fuel > 0 do
    if Integrity.scrub_due integ ~now:(Cpu.cycles cpu) then Integrity.scrub integ cpu;
    if Cpu.status cpu = Cpu.Running then begin
      Cpu.step cpu;
      decr fuel
    end
  done;
  (match Cpu.status cpu with
  | Cpu.Exited 0 -> ()
  | _ -> Alcotest.fail "data write must not integrity-fault");
  let s = Integrity.stats integ in
  check Alcotest.bool "scrubs ran" true (s.Integrity.scrub_passes > 1);
  check Alcotest.bool "dirty granule re-enrolled" true (s.Integrity.granules_reenrolled >= 1);
  check Alcotest.bool "clean granules checked" true (s.Integrity.granules_checked > 0);
  check Alcotest.bool "post-run audit clean" true (Result.is_ok (Integrity.verify_all integ))

let () =
  Alcotest.run "eric_sim"
    [ ( "memory",
        [ Alcotest.test_case "read/write" `Quick test_memory_rw;
          Alcotest.test_case "bounds" `Quick test_memory_bounds;
          Alcotest.test_case "blit/fill" `Quick test_memory_blit_fill ] );
      ( "cache",
        [ Alcotest.test_case "hit after fill" `Quick test_cache_hit_after_fill;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "writeback" `Quick test_cache_writeback;
          Alcotest.test_case "flush" `Quick test_cache_flush;
          Alcotest.test_case "geometry validation" `Quick test_cache_geometry_validation;
          Alcotest.test_case "table1 geometry" `Quick test_cache_table1_geometry ] );
      ( "cpu-semantics",
        [ Alcotest.test_case "div corner cases" `Quick test_div_corner_cases;
          Alcotest.test_case "mulh identities" `Quick test_mulh_identities;
          mul_small_products;
          Alcotest.test_case "w ops" `Quick test_w_ops;
          Alcotest.test_case "shift masking" `Quick test_shifts_mask_shamt;
          Alcotest.test_case "slt family" `Quick test_slt_family;
          Alcotest.test_case "x0 hardwired" `Quick test_x0_hardwired;
          Alcotest.test_case "load/store widths" `Quick test_load_store_widths ] );
      ( "faults",
        [ Alcotest.test_case "misaligned store" `Quick test_misaligned_store_faults;
          Alcotest.test_case "invalid instruction" `Quick test_invalid_instruction_faults;
          Alcotest.test_case "ebreak" `Quick test_ebreak_faults;
          Alcotest.test_case "out of fuel" `Quick test_out_of_fuel ] );
      ("syscalls", [ Alcotest.test_case "write" `Quick test_write_syscall ]);
      ( "timing",
        [ Alcotest.test_case "load-use stall" `Quick test_timing_load_use_stall;
          Alcotest.test_case "div slower" `Quick test_timing_div_slower_than_add;
          Alcotest.test_case "taken branch penalty" `Quick test_timing_taken_branch_penalty;
          Alcotest.test_case "icache stats" `Quick test_icache_stats_exposed;
          Alcotest.test_case "plain load cycles" `Quick test_plain_load_cycles;
          Alcotest.test_case "branch predictor" `Quick test_branch_predictor;
          Alcotest.test_case "csr counters" `Quick test_csr_counters ] );
      ( "integrity",
        [ Alcotest.test_case "clean run equivalent" `Quick test_guard_clean_run_equivalent;
          Alcotest.test_case "fetch check beats decode" `Quick
            test_guard_fetch_detects_before_decode;
          Alcotest.test_case "scrub finds dead-code flip" `Quick
            test_guard_scrub_detects_dead_code;
          Alcotest.test_case "self-modifying text faults" `Quick
            test_guard_self_modifying_text_faults;
          Alcotest.test_case "dirty data re-enrolls" `Quick
            test_guard_reenrolls_dirty_data ] ) ]
