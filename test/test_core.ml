(* Tests for the eric core library: key management, package wire format,
   encryption/decryption in every mode, the Validation Unit's rejection of
   every tampering scenario from the threat model, the two-way
   authentication protocol, and the attack-analysis metrics. *)

let check = Alcotest.check
let qtest ?(count = 100) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let test_source =
  {|
int main() {
  int s = 0;
  for (int i = 1; i <= 64; i = i + 1) { s = s + i * i; }
  println_int(s);
  return 0;
}
|}

let expected_output = "89440\n" (* sum of squares 1..64 *)

let image = lazy (Eric_cc.Driver.compile_exn test_source)

let device_key = Bytes.of_string "0123456789abcdef0123456789abcdef"
let other_key = Bytes.of_string "0123456789abcdef0123456789abcdeg"

let modes =
  [ ("full", Eric.Config.Full);
    ("partial-half", Eric.Config.Partial (Eric.Config.Select_fraction { fraction = 0.5; seed = 11L }));
    ("partial-all", Eric.Config.Partial Eric.Config.Select_all);
    ("field-imm", Eric.Config.Field (Eric.Config.Imm_fields, Eric.Config.Select_all));
    ("field-abo", Eric.Config.Field (Eric.Config.All_but_opcode, Eric.Config.Select_all)) ]

(* ------------------------------------------------------------------ *)
(* Kmu                                                                 *)
(* ------------------------------------------------------------------ *)

let test_kmu_deterministic () =
  let k1 = Eric.Kmu.derive ~puf_key:(Bytes.of_string "puf!") Eric.Kmu.default_context in
  let k2 = Eric.Kmu.derive ~puf_key:(Bytes.of_string "puf!") Eric.Kmu.default_context in
  check Alcotest.string "same" (Eric_util.Bytesx.to_hex k1) (Eric_util.Bytesx.to_hex k2);
  check Alcotest.int "32 bytes" 32 (Bytes.length k1)

let test_kmu_context_separation () =
  let puf_key = Bytes.of_string "puf!" in
  let base = Eric.Kmu.derive ~puf_key Eric.Kmu.default_context in
  let epoch2 = Eric.Kmu.derive ~puf_key { Eric.Kmu.epoch = 2; label = "eric" } in
  let label2 = Eric.Kmu.derive ~puf_key { Eric.Kmu.epoch = 1; label = "other" } in
  check Alcotest.bool "epoch rotates key" false (Bytes.equal base epoch2);
  check Alcotest.bool "label scopes key" false (Bytes.equal base label2)

let kmu_derive_prop =
  (* Deterministic, and distinct contexts — different epoch or different
     label — must yield distinct keys (prefix-free KDF message). *)
  qtest ~count:300 "kmu derive separates contexts"
    QCheck.(
      triple
        (string_of_size (Gen.int_range 1 64))
        (pair small_nat small_printable_string)
        (pair small_nat small_printable_string))
    (fun (puf, (e1, l1), (e2, l2)) ->
      let puf_key = Bytes.of_string puf in
      let c1 = { Eric.Kmu.epoch = e1; label = l1 } in
      let c2 = { Eric.Kmu.epoch = e2; label = l2 } in
      let k1 = Eric.Kmu.derive ~puf_key c1 in
      let k2 = Eric.Kmu.derive ~puf_key c2 in
      Bytes.equal k1 (Eric.Kmu.derive ~puf_key c1)
      && Bytes.length k1 = 32
      && Bytes.equal k1 k2 = (e1 = e2 && String.equal l1 l2))

let test_kmu_device_key_matches_target () =
  let device = Eric_puf.Device.manufacture 5L in
  let target = Eric.Target.create device in
  check Alcotest.string "target caches the derived key"
    (Eric_util.Bytesx.to_hex (Eric.Kmu.device_key device))
    (Eric_util.Bytesx.to_hex (Eric.Target.derived_key target))

(* ------------------------------------------------------------------ *)
(* Package wire format                                                 *)
(* ------------------------------------------------------------------ *)

let build mode = fst (Eric.Encrypt.encrypt ~key:device_key ~mode (Lazy.force image))

let test_package_roundtrip_all_modes () =
  List.iter
    (fun (name, mode) ->
      let pkg = build mode in
      match Eric.Package.parse (Eric.Package.serialize pkg) with
      | Error e -> Alcotest.failf "%s: parse failed: %s" name e
      | Ok pkg' ->
        check Alcotest.bool (name ^ " kind") true (pkg'.Eric.Package.kind = pkg.Eric.Package.kind);
        check Alcotest.int (name ^ " entry") pkg.Eric.Package.entry_offset pkg'.Eric.Package.entry_offset;
        check Alcotest.int (name ^ " parcels") pkg.Eric.Package.parcel_count pkg'.Eric.Package.parcel_count;
        check Alcotest.bool (name ^ " map") true
          (match (pkg.Eric.Package.map, pkg'.Eric.Package.map) with
          | None, None -> true
          | Some a, Some b -> Eric_util.Bitvec.equal a b
          | _ -> false);
        check Alcotest.string (name ^ " text")
          (Eric_util.Bytesx.to_hex pkg.Eric.Package.enc_text)
          (Eric_util.Bytesx.to_hex pkg'.Eric.Package.enc_text);
        check Alcotest.int (name ^ " size") (Eric.Package.size pkg)
          (Bytes.length (Eric.Package.serialize pkg)))
    modes

let test_package_parse_rejects () =
  let pkg = build Eric.Config.Full in
  let wire = Eric.Package.serialize pkg in
  let is_err b = Result.is_error (Eric.Package.parse b) in
  check Alcotest.bool "truncated" true (is_err (Bytes.sub wire 0 (Bytes.length wire - 1)));
  check Alcotest.bool "extended" true (is_err (Eric_util.Bytesx.append wire (Bytes.make 1 'x')));
  let bad_magic = Bytes.copy wire in
  Bytes.set bad_magic 0 'X';
  check Alcotest.bool "magic" true (is_err bad_magic);
  let bad_version = Bytes.copy wire in
  Bytes.set bad_version 4 '\x09';
  check Alcotest.bool "version" true (is_err bad_version);
  let bad_mode = Bytes.copy wire in
  Bytes.set bad_mode 6 '\x07';
  check Alcotest.bool "mode tag" true (is_err bad_mode);
  check Alcotest.bool "empty" true (is_err Bytes.empty)

(* One regression test per malformed-package class: each must come back
   as a clean [Error] with a stable, distinct message — never an
   exception, never a misclassification. *)
let test_package_parse_malformed_classes () =
  let expect name expected b =
    match Eric.Package.parse b with
    | Ok _ -> Alcotest.failf "%s: expected parse error %S" name expected
    | Error msg -> check Alcotest.string name expected msg
  in
  let splice b ~at ~delete ~insert =
    Eric_util.Bytesx.concat
      [ Bytes.sub b 0 at; insert; Bytes.sub b (at + delete) (Bytes.length b - at - delete) ]
  in
  let with_u32 b off v =
    let c = Bytes.copy b in
    Eric_util.Bytesx.set_u32 c off (Int32.of_int v);
    c
  in
  let full_pkg = build Eric.Config.Full in
  let full = Eric.Package.serialize full_pkg in
  let partial = Eric.Package.serialize (build (Eric.Config.Partial Eric.Config.Select_all)) in
  let map_len = Int32.to_int (Eric_util.Bytesx.get_u32 partial 28) in
  let text_len = Int32.to_int (Eric_util.Bytesx.get_u32 partial 12) in
  let parcel_count = Int32.to_int (Eric_util.Bytesx.get_u32 partial 24) in
  check Alcotest.bool "fixture has a real map" true (map_len > 0);
  (* map one byte shorter than the parcel count needs *)
  expect "truncated map" "encryption map shorter than parcel count"
    (splice (with_u32 partial 28 (map_len - 1)) ~at:32 ~delete:1 ~insert:Bytes.empty);
  (* map one byte longer: the spare byte is zero, so only the length
     check can catch it *)
  expect "overlong map" "encryption map longer than parcel count"
    (splice
       (with_u32 partial 28 (map_len + 1))
       ~at:(32 + map_len) ~delete:0 ~insert:(Bytes.make 1 '\000'));
  (* a set bit in the map's padding (only exists when the parcel count
     is not a byte multiple) *)
  if parcel_count mod 8 <> 0 then begin
    let c = Bytes.copy partial in
    let last = 32 + map_len - 1 in
    Bytes.set c last (Char.chr (Char.code (Bytes.get c last) lor 0x80));
    expect "map padding bit" "encryption map has padding bits set" c
  end;
  (* a full-encryption package must not carry a map at all *)
  expect "full with map" "full-encryption package carries a map"
    (splice (with_u32 full 28 1) ~at:32 ~delete:0 ~insert:(Bytes.make 1 '\000'));
  (* parcel count no longer consistent with the text length *)
  expect "parcel count too large" "parcel count inconsistent with text length"
    (with_u32 full 24 (text_len + 1));
  expect "parcel count too small" "parcel count inconsistent with text length"
    (with_u32 full 24 ((text_len / 4) - 1));
  (* entry offset: odd (inside a parcel), or at/after the end of text *)
  expect "entry misaligned" "entry not parcel-aligned" (with_u32 full 8 1);
  expect "entry at text end" "entry out of range" (with_u32 full 8 text_len);
  expect "entry past text end" "entry out of range" (with_u32 full 8 (text_len + 2));
  (* u32 fields with the sign bit set *)
  expect "negative text length" "negative section length" (with_u32 full 12 (-4));
  (* reserved flag byte (bit 0 is the obfuscation-metadata flag, so the
     first *reserved* bit is bit 1) *)
  let flags = Bytes.copy full in
  Bytes.set flags 7 '\x02';
  expect "reserved flags" "reserved flags set" flags;
  (* truncated / overlong signature section: the total length no longer
     matches the header *)
  let starts_with_length_error b =
    match Eric.Package.parse b with
    | Error msg -> String.length msg >= 14 && String.sub msg 0 14 = "package length"
    | Ok _ -> false
  in
  check Alcotest.bool "truncated signature" true
    (starts_with_length_error (Bytes.sub full 0 (Bytes.length full - 5)));
  check Alcotest.bool "overlong signature" true
    (starts_with_length_error (Eric_util.Bytesx.append full (Bytes.make 3 '\000')))

let test_package_sizes_match_paper_accounting () =
  let img = Lazy.force image in
  let plain = Bytes.length (Eric_rv.Program.to_binary img) in
  let full = Eric.Package.size (build Eric.Config.Full) in
  let partial = Eric.Package.size (build (Eric.Config.Partial Eric.Config.Select_all)) in
  let parcels = Array.length img.Eric_rv.Program.text in
  (* Full: header grows by 8 bytes vs the plain header, plus the 32-byte
     signature.  Partial: the same plus 1 bit per parcel. *)
  check Alcotest.int "full overhead" (plain + 8 + 32) full;
  check Alcotest.int "partial overhead" (full + ((parcels + 7) / 8)) partial


let package_parser_fuzz =
  qtest ~count:300 "parser never crashes on junk" QCheck.string (fun junk ->
      match Eric.Package.parse (Bytes.of_string junk) with
      | Ok _ | Error _ -> true)

let package_parser_fuzz_mutated =
  qtest ~count:300 "parser survives arbitrary mutations of a real package"
    QCheck.(pair small_nat (small_list (pair small_nat small_nat)))
    (fun (drop, edits) ->
      let wire = Eric.Package.serialize (build Eric.Config.Full) in
      let wire = Bytes.sub wire 0 (max 0 (Bytes.length wire - (drop mod Bytes.length wire))) in
      List.iter
        (fun (pos, value) ->
          if Bytes.length wire > 0 then
            Bytes.set wire (pos mod Bytes.length wire) (Char.chr (value land 0xFF)))
        edits;
      match Eric.Package.parse wire with
      | Ok pkg -> (
        (* structurally valid mutants must still never validate unless the
           mutation was a no-op *)
        match Eric.Encrypt.decrypt ~key:device_key pkg with
        | Ok _ -> Bytes.equal wire (Eric.Package.serialize (build Eric.Config.Full))
        | Error _ -> true)
      | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Encrypt / decrypt                                                   *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_all_modes () =
  let img = Lazy.force image in
  List.iter
    (fun (name, mode) ->
      let pkg, stats = Eric.Encrypt.encrypt ~key:device_key ~mode img in
      match Eric.Encrypt.decrypt ~key:device_key pkg with
      | Error e -> Alcotest.failf "%s: %s" name (Format.asprintf "%a" Eric.Encrypt.pp_error e)
      | Ok (img', stats') ->
        check Alcotest.string (name ^ " text restored")
          (Eric_util.Bytesx.to_hex (Eric_rv.Program.text_bytes img))
          (Eric_util.Bytesx.to_hex (Eric_rv.Program.text_bytes img'));
        check Alcotest.int (name ^ " entry") img.Eric_rv.Program.entry_offset
          img'.Eric_rv.Program.entry_offset;
        check Alcotest.int (name ^ " bss") img.Eric_rv.Program.bss_size img'.Eric_rv.Program.bss_size;
        check Alcotest.int (name ^ " enc parcels agree") stats.Eric.Encrypt.encrypted_parcels
          stats'.Eric.Encrypt.encrypted_parcels)
    modes

let test_full_encrypts_everything () =
  let img = Lazy.force image in
  let _, stats = Eric.Encrypt.encrypt ~key:device_key ~mode:Eric.Config.Full img in
  check Alcotest.int "all parcels" stats.Eric.Encrypt.parcels stats.Eric.Encrypt.encrypted_parcels;
  check Alcotest.int "all bytes" (Eric_rv.Program.text_size img) stats.Eric.Encrypt.encrypted_bytes

let test_partial_fraction_plausible () =
  let img = Lazy.force image in
  let _, stats =
    Eric.Encrypt.encrypt ~key:device_key
      ~mode:(Eric.Config.Partial (Eric.Config.Select_fraction { fraction = 0.5; seed = 1L }))
      img
  in
  let f = float_of_int stats.Eric.Encrypt.encrypted_parcels /. float_of_int stats.Eric.Encrypt.parcels in
  check Alcotest.bool "about half" true (f > 0.35 && f < 0.65)

let test_partial_ranges () =
  let img = Lazy.force image in
  let text_size = Eric_rv.Program.text_size img in
  let pkg, stats =
    Eric.Encrypt.encrypt ~key:device_key
      ~mode:(Eric.Config.Partial (Eric.Config.Select_ranges [ (0, 64) ]))
      img
  in
  check Alcotest.bool "only the range" true
    (stats.Eric.Encrypt.encrypted_bytes <= 68 && stats.Eric.Encrypt.encrypted_bytes >= 60);
  (* bytes outside the range are untouched ciphertext = plaintext *)
  let plain = Eric_rv.Program.text_bytes img in
  check Alcotest.string "tail untouched"
    (Eric_util.Bytesx.to_hex (Bytes.sub plain 128 (text_size - 128)))
    (Eric_util.Bytesx.to_hex (Bytes.sub pkg.Eric.Package.enc_text 128 (text_size - 128)));
  match Eric.Encrypt.decrypt ~key:device_key pkg with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "range mode roundtrip"

let test_field_mode_keeps_opcodes () =
  let img = Lazy.force image in
  let plain = Eric_rv.Program.text_bytes img in
  List.iter
    (fun scope ->
      let pkg, _ =
        Eric.Encrypt.encrypt ~key:device_key ~mode:(Eric.Config.Field (scope, Eric.Config.Select_all))
          img
      in
      let enc = pkg.Eric.Package.enc_text in
      (* Walk parcels of the plaintext and verify the opcode bits match in
         the ciphertext. *)
      let offsets = Eric_rv.Program.parcel_offsets img in
      Array.iteri
        (fun i parcel ->
          let pos = offsets.(i) in
          match parcel with
          | Eric_rv.Program.P32 _ ->
            let op_plain = Char.code (Bytes.get plain pos) land 0x7F in
            let op_enc = Char.code (Bytes.get enc pos) land 0x7F in
            check Alcotest.int "32-bit opcode preserved" op_plain op_enc
          | Eric_rv.Program.P16 _ ->
            let p = Eric_util.Bytesx.get_u16 plain pos and e = Eric_util.Bytesx.get_u16 enc pos in
            check Alcotest.int "16-bit opcode bits preserved" (p land 0xE003) (e land 0xE003))
        img.Eric_rv.Program.text)
    [ Eric.Config.Imm_fields; Eric.Config.All_but_opcode ]

let test_wrong_key_rejected () =
  List.iter
    (fun (name, mode) ->
      let pkg = build mode in
      match Eric.Encrypt.decrypt ~key:other_key pkg with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: wrong key accepted" name)
    modes

let test_every_bit_flip_detected () =
  (* Soft-error coverage: flip each byte of the serialised full package (a
     superset test of single bit flips at byte granularity) and require
     rejection or parse failure. *)
  let pkg = build Eric.Config.Full in
  let wire = Eric.Package.serialize pkg in
  let survived = ref 0 in
  for i = 0 to Bytes.length wire - 1 do
    let mutated = Bytes.copy wire in
    Bytes.set mutated i (Char.chr (Char.code (Bytes.get mutated i) lxor 0x40));
    match Eric.Package.parse mutated with
    | Error _ -> ()
    | Ok pkg' -> (
      match Eric.Encrypt.decrypt ~key:device_key pkg' with
      | Error _ -> ()
      | Ok _ -> incr survived)
  done;
  check Alcotest.int "no corruption survives" 0 !survived

let test_single_bit_flips_sampled () =
  let pkg = build (Eric.Config.Partial (Eric.Config.Select_fraction { fraction = 0.5; seed = 3L })) in
  let wire = Eric.Package.serialize pkg in
  let rng = Eric_util.Prng.create ~seed:99L in
  for _ = 1 to 200 do
    let bit = Eric_util.Prng.int rng ~bound:(8 * Bytes.length wire) in
    let mutated = Bytes.copy wire in
    let pos = bit / 8 in
    Bytes.set mutated pos (Char.chr (Char.code (Bytes.get mutated pos) lxor (1 lsl (bit mod 8))));
    match Eric.Package.parse mutated with
    | Error _ -> ()
    | Ok pkg' -> (
      match Eric.Encrypt.decrypt ~key:device_key pkg' with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bit flip at %d survived validation" bit)
  done

let decrypt_roundtrip_random_keys =
  qtest ~count:50 "roundtrip under random keys" QCheck.(string_of_size (QCheck.Gen.return 16))
    (fun key_str ->
      let key = Bytes.of_string key_str in
      let img = Lazy.force image in
      let pkg, _ = Eric.Encrypt.encrypt ~key ~mode:Eric.Config.Full img in
      match Eric.Encrypt.decrypt ~key pkg with
      | Ok (img', _) ->
        Bytes.equal (Eric_rv.Program.text_bytes img) (Eric_rv.Program.text_bytes img')
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Target / end-to-end execution                                       *)
(* ------------------------------------------------------------------ *)

let target = lazy (Eric.Target.of_id 1001L)

let test_execute_all_modes () =
  let t = Lazy.force target in
  let key = Eric.Target.derived_key t in
  List.iter
    (fun (name, mode) ->
      match Eric.Source.build ~mode ~key test_source with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok b -> (
        match Eric.Target.execute t b.Eric.Source.package with
        | Error e -> Alcotest.failf "%s: %s" name (Format.asprintf "%a" Eric.Target.pp_load_error e)
        | Ok result ->
          check Alcotest.string (name ^ " output") expected_output result.Eric_sim.Soc.output;
          check Alcotest.bool (name ^ " exited 0") true
            (result.Eric_sim.Soc.status = Eric_sim.Cpu.Exited 0);
          check Alcotest.bool (name ^ " load cycles positive") true
            (Int64.compare result.Eric_sim.Soc.load_cycles 0L > 0)))
    modes

let test_encrypted_load_slower_than_plain () =
  let t = Lazy.force target in
  let key = Eric.Target.derived_key t in
  match Eric.Source.build ~mode:Eric.Config.Full ~key test_source with
  | Error e -> Alcotest.fail e
  | Ok b -> (
    match Eric.Target.execute t b.Eric.Source.package with
    | Error _ -> Alcotest.fail "execution failed"
    | Ok enc_result ->
      let plain_result = Eric_sim.Soc.run_program b.Eric.Source.image in
      check Alcotest.bool "hde load slower" true
        (Int64.compare enc_result.Eric_sim.Soc.load_cycles plain_result.Eric_sim.Soc.load_cycles
        > 0);
      check Alcotest.int64 "same exec cycles" plain_result.Eric_sim.Soc.exec_cycles
        enc_result.Eric_sim.Soc.exec_cycles)

let test_receive_reports_hde_breakdown () =
  let t = Lazy.force target in
  let key = Eric.Target.derived_key t in
  match Eric.Source.build ~mode:Eric.Config.Full ~key test_source with
  | Error e -> Alcotest.fail e
  | Ok b -> (
    match Eric.Target.receive t b.Eric.Source.package with
    | Error _ -> Alcotest.fail "receive failed"
    | Ok loaded ->
      let bd = loaded.Eric.Target.load in
      check Alcotest.bool "keystream dominates for full encryption" true
        (Int64.compare bd.Eric_hw.Hde.keystream_cycles bd.Eric_hw.Hde.dma_cycles > 0))

(* ------------------------------------------------------------------ *)
(* Protocol: two-way authentication                                    *)
(* ------------------------------------------------------------------ *)

let test_protocol_happy_path () =
  let t = Lazy.force target in
  let key = Eric.Protocol.provision t in
  match Eric.Source.build ~mode:Eric.Config.Full ~key test_source with
  | Error e -> Alcotest.fail e
  | Ok b -> (
    match Eric.Protocol.transmit ~source:b ~target:t () with
    | Eric.Protocol.Executed r -> check Alcotest.string "output" expected_output r.Eric_sim.Soc.output
    | Eric.Protocol.Refused _ -> Alcotest.fail "refused legit package")

let test_protocol_attacks_refused () =
  let t = Lazy.force target in
  let key = Eric.Protocol.provision t in
  match Eric.Source.build ~mode:Eric.Config.Full ~key test_source with
  | Error e -> Alcotest.fail e
  | Ok b ->
    let refused attack =
      match Eric.Protocol.transmit ~attack ~source:b ~target:t () with
      | Eric.Protocol.Refused _ -> true
      | Eric.Protocol.Executed _ -> false
    in
    check Alcotest.bool "bit flips" true (refused (Eric.Protocol.Bit_flips { count = 3; seed = 5L }));
    check Alcotest.bool "truncate" true (refused (Eric.Protocol.Truncate 10));
    check Alcotest.bool "splice" true
      (refused (Eric.Protocol.Splice { payload = Bytes.make 16 '\xAA'; at = 100 }));
    (* replay of a package built for a different device *)
    let other = Eric.Target.of_id 2002L in
    (match Eric.Source.build ~mode:Eric.Config.Full ~key:(Eric.Protocol.provision other) test_source with
    | Error e -> Alcotest.fail e
    | Ok foreign ->
      check Alcotest.bool "replayed foreign package" true
        (refused (Eric.Protocol.Replay (Eric.Package.serialize foreign.Eric.Source.package))))

(* The whole pipeline is instrumented: a successful transmit must leave
   decrypt/validation counts in the telemetry registry, and every refusal
   must land in the refused_total family under its reason. *)
let test_protocol_populates_telemetry () =
  Eric_telemetry.Snapshot.reset_all ();
  Eric_telemetry.Control.enable ();
  Fun.protect
    ~finally:(fun () ->
      Eric_telemetry.Control.disable ();
      Eric_telemetry.Snapshot.reset_all ())
    (fun () ->
      let t = Lazy.force target in
      let key = Eric.Protocol.provision t in
      match Eric.Source.build ~mode:Eric.Config.Full ~key test_source with
      | Error e -> Alcotest.fail e
      | Ok b ->
        (match Eric.Protocol.transmit ~source:b ~target:t () with
        | Eric.Protocol.Executed _ -> ()
        | Eric.Protocol.Refused _ -> Alcotest.fail "refused legit package");
        let counter ?labels name = Int64.to_int (Eric_telemetry.Registry.counter ?labels name) in
        check Alcotest.bool "parcels decrypted" true (counter "ingest.parcels_decrypted" > 0);
        check Alcotest.bool "bytes in" true (counter "ingest.bytes_in" > 0);
        check Alcotest.int "signature validated ok" 1
          (counter ~labels:[ ("result", "ok") ] "ingest.signature_validations");
        check Alcotest.int "no refusals yet" 0
          (Int64.to_int (Eric_telemetry.Registry.counter_family_total "ingest.refused_total"));
        (* a truncated transmission fails framing *)
        (match Eric.Protocol.transmit ~attack:(Eric.Protocol.Truncate 10) ~source:b ~target:t () with
        | Eric.Protocol.Refused _ -> ()
        | Eric.Protocol.Executed _ -> Alcotest.fail "truncation executed");
        check Alcotest.int "refusal reason counted" 1
          (counter ~labels:[ ("reason", "malformed") ] "ingest.refused_total"
          + counter ~labels:[ ("reason", "framing") ] "ingest.refused_total");
        (* a package for another device fails its signature or framing *)
        let other = Eric.Target.of_id 2002L in
        (match Eric.Source.build ~mode:Eric.Config.Full ~key:(Eric.Protocol.provision other) test_source with
        | Error e -> Alcotest.fail e
        | Ok foreign -> (
          match Eric.Protocol.transmit ~source:foreign ~target:t () with
          | Eric.Protocol.Refused _ -> ()
          | Eric.Protocol.Executed _ -> Alcotest.fail "foreign package executed"));
        check Alcotest.int "both refusals in family" 2
          (Int64.to_int (Eric_telemetry.Registry.counter_family_total "ingest.refused_total"));
        (* the compiler and simulator stages left spans behind *)
        let span_names =
          List.map (fun (e : Eric_telemetry.Span.event) -> e.Eric_telemetry.Span.name)
            (Eric_telemetry.Span.completed ())
        in
        List.iter
          (fun needed ->
            check Alcotest.bool ("span " ^ needed) true (List.mem needed span_names))
          [ "cc.compile"; "core.encrypt"; "transit.transmit"; "ingest.receive"; "sim.execute" ])

let test_protocol_cross_check_diagonal () =
  let targets = List.map (fun id -> (Printf.sprintf "dev%Ld" id, Eric.Target.of_id id)) [ 1L; 2L; 3L ] in
  let keys = List.map (fun (n, t) -> (n, Eric.Protocol.provision t)) targets in
  match Eric.Source.build_multi ~mode:Eric.Config.Full ~keys test_source with
  | Error e -> Alcotest.fail e
  | Ok builds ->
    let matrix = Eric.Protocol.cross_check ~builds ~targets in
    List.iter
      (fun (bname, tname, ok) ->
        check Alcotest.bool (Printf.sprintf "%s on %s" bname tname) (bname = tname) ok)
      matrix

let test_build_multi_shares_work () =
  (* One compile, one signature, one layout — the key-independent work
     must run once no matter how many devices are personalized, and every
     build must share the plaintext image *physically*, not by copy. *)
  let keys =
    List.map
      (fun id -> (Printf.sprintf "dev%Ld" id, Eric.Target.derived_key (Eric.Target.of_id id)))
      [ 501L; 502L; 503L; 504L ]
  in
  Eric_telemetry.Snapshot.reset_all ();
  Eric_telemetry.Control.enable ();
  Fun.protect
    ~finally:(fun () ->
      Eric_telemetry.Control.disable ();
      Eric_telemetry.Snapshot.reset_all ())
    (fun () ->
      match Eric.Source.build_multi ~mode:Eric.Config.Full ~keys test_source with
      | Error e -> Alcotest.fail e
      | Ok builds ->
        let counter name = Int64.to_int (Eric_telemetry.Registry.counter name) in
        check Alcotest.int "signature computed once total" 1 (counter "build.signatures_total");
        check Alcotest.int "one personalization per device" 4
          (counter "build.personalizations_total");
        let images = List.map (fun (_, b) -> b.Eric.Source.image) builds in
        let first = List.hd images in
        List.iter
          (fun img -> check Alcotest.bool "plaintext image physically shared" true (img == first))
          images;
        (* each personalized build is byte-identical to a direct build *)
        let name0, key0 = List.hd keys in
        let direct =
          match Eric.Source.build ~mode:Eric.Config.Full ~key:key0 test_source with
          | Ok b -> b
          | Error e -> Alcotest.fail e
        in
        check Alcotest.string "equivalent to Source.build"
          (Eric_util.Bytesx.to_hex (Eric.Package.serialize direct.Eric.Source.package))
          (Eric_util.Bytesx.to_hex
             (Eric.Package.serialize (List.assoc name0 builds).Eric.Source.package)))

let test_protocol_cross_check_fleet () =
  (* Fleet scale: 31 distinct devices plus one deliberate clone of device
     16 (same silicon id, so the same PUF and the same derived key). The
     execute matrix must be exactly the diagonal plus the clone pair —
     the only off-diagonal entries that may execute. *)
  let named id name = (name, Eric.Target.of_id id) in
  let targets =
    List.init 31 (fun i ->
        let id = Int64.of_int (i + 1) in
        named id (Printf.sprintf "dev%Ld" id))
    @ [ named 16L "clone16" ]
  in
  let keys = List.map (fun (n, t) -> (n, Eric.Protocol.provision t)) targets in
  match Eric.Source.build_multi ~mode:Eric.Config.Full ~keys test_source with
  | Error e -> Alcotest.fail e
  | Ok builds ->
    let matrix = Eric.Protocol.cross_check ~builds ~targets in
    check Alcotest.int "full matrix" (32 * 32) (List.length matrix);
    List.iter
      (fun (bname, tname, ok) ->
        let clone_pair =
          (bname = "dev16" && tname = "clone16") || (bname = "clone16" && tname = "dev16")
        in
        check Alcotest.bool (Printf.sprintf "%s on %s" bname tname)
          (bname = tname || clone_pair) ok)
      matrix

let test_epoch_rotation_revokes () =
  (* A package built for epoch 1 must not run after the device rotates its
     KMU context to epoch 2. *)
  let device = Eric_puf.Device.manufacture 77L in
  let t1 = Eric.Target.create ~context:{ Eric.Kmu.epoch = 1; label = "eric" } device in
  let t2 = Eric.Target.create ~context:{ Eric.Kmu.epoch = 2; label = "eric" } device in
  match Eric.Source.build ~mode:Eric.Config.Full ~key:(Eric.Protocol.provision t1) test_source with
  | Error e -> Alcotest.fail e
  | Ok b ->
    (match Eric.Protocol.transmit ~source:b ~target:t1 () with
    | Eric.Protocol.Executed _ -> ()
    | Eric.Protocol.Refused _ -> Alcotest.fail "epoch 1 should accept");
    (match Eric.Protocol.transmit ~source:b ~target:t2 () with
    | Eric.Protocol.Refused _ -> ()
    | Eric.Protocol.Executed _ -> Alcotest.fail "epoch 2 should refuse")



let test_provision_over_network () =
  let t = Lazy.force target in
  let rng = Eric_util.Prng.create ~seed:404L in
  let source_key = Eric_crypto.Rsa.generate ~bits:384 rng in
  (* happy path: the source recovers exactly the device's derived key *)
  (match Eric.Protocol.provision_over_network ~rng ~source_key t with
  | Ok key ->
    check Alcotest.string "recovered key" 
      (Eric_util.Bytesx.to_hex (Eric.Target.derived_key t))
      (Eric_util.Bytesx.to_hex key)
  | Error e -> Alcotest.fail e);
  (* tampered wire: padding validation rejects (or at worst yields a key
     that matches nothing) *)
  (match
     Eric.Protocol.provision_over_network
       ~attack:(Eric.Protocol.Bit_flips { count = 2; seed = 9L })
       ~rng ~source_key t
   with
  | Error _ -> ()
  | Ok key ->
    check Alcotest.bool "corrupted provisioning never yields the real key" false
      (Bytes.equal key (Eric.Target.derived_key t)));
  (* end to end: provision in band, then build + execute *)
  match Eric.Protocol.provision_over_network ~rng ~source_key t with
  | Error e -> Alcotest.fail e
  | Ok key -> (
    match Eric.Source.build ~mode:Eric.Config.Full ~key test_source with
    | Error e -> Alcotest.fail e
    | Ok b -> (
      match Eric.Protocol.transmit ~source:b ~target:t () with
      | Eric.Protocol.Executed r ->
        check Alcotest.string "runs with network-provisioned key" expected_output
          r.Eric_sim.Soc.output
      | Eric.Protocol.Refused _ -> Alcotest.fail "refused"))

(* ------------------------------------------------------------------ *)
(* Environment-bound keys                                              *)
(* ------------------------------------------------------------------ *)

let puf_key = Bytes.of_string "envbind-puf-key!"
let ctx = Eric.Kmu.default_context

let test_envbind_unconstrained_is_base () =
  check Alcotest.string "matches plain KMU derivation"
    (Eric_util.Bytesx.to_hex (Eric.Kmu.derive ~puf_key ctx))
    (Eric_util.Bytesx.to_hex (Eric.Envbind.derive ~puf_key ~context:ctx Eric.Envbind.unconstrained))

let test_envbind_same_window_same_key () =
  let wanted =
    { Eric.Envbind.hour_slot = Some 100; temperature_band = Some 2; frequency_mhz = Some 25 }
  in
  let key_at env =
    Eric.Envbind.derive ~puf_key ~context:ctx (Eric.Envbind.observe ~window_hours:4 env wanted)
  in
  let a = key_at { Eric.Envbind.unix_hours = 400; temperature_c = 20; clock_mhz = 25 } in
  let b = key_at { Eric.Envbind.unix_hours = 403; temperature_c = 29; clock_mhz = 25 } in
  check Alcotest.string "same window+band keys equal" (Eric_util.Bytesx.to_hex a)
    (Eric_util.Bytesx.to_hex b);
  let late = key_at { Eric.Envbind.unix_hours = 404; temperature_c = 20; clock_mhz = 25 } in
  check Alcotest.bool "next window differs" false (Bytes.equal a late);
  let hot = key_at { Eric.Envbind.unix_hours = 400; temperature_c = 31; clock_mhz = 25 } in
  check Alcotest.bool "other band differs" false (Bytes.equal a hot);
  let fast = key_at { Eric.Envbind.unix_hours = 400; temperature_c = 20; clock_mhz = 26 } in
  check Alcotest.bool "other frequency differs" false (Bytes.equal a fast)

let test_envbind_unbound_sensors_ignored () =
  (* Binding only the frequency: time and temperature must not matter. *)
  let wanted =
    { Eric.Envbind.hour_slot = None; temperature_band = None; frequency_mhz = Some 25 }
  in
  let key_at env =
    Eric.Envbind.derive ~puf_key ~context:ctx (Eric.Envbind.observe ~window_hours:4 env wanted)
  in
  let a = key_at { Eric.Envbind.unix_hours = 1; temperature_c = -40; clock_mhz = 25 } in
  let b = key_at { Eric.Envbind.unix_hours = 999999; temperature_c = 85; clock_mhz = 25 } in
  check Alcotest.string "only the bound sensor matters" (Eric_util.Bytesx.to_hex a)
    (Eric_util.Bytesx.to_hex b)

let test_envbind_negative_temperature_bands () =
  (* Floor semantics: -1C is in band -1, not band 0 (no -0 collision). *)
  let cold = Eric.Envbind.observe ~window_hours:1
      { Eric.Envbind.unix_hours = 0; temperature_c = -1; clock_mhz = 25 }
      { Eric.Envbind.hour_slot = None; temperature_band = Some 0; frequency_mhz = None }
  in
  let zero = Eric.Envbind.observe ~window_hours:1
      { Eric.Envbind.unix_hours = 0; temperature_c = 1; clock_mhz = 25 }
      { Eric.Envbind.hour_slot = None; temperature_band = Some 0; frequency_mhz = None }
  in
  check Alcotest.bool "bands straddle zero" false (cold = zero)

let test_envbind_end_to_end () =
  let device = Eric_puf.Device.manufacture 808L in
  let pk = Eric_puf.Device.puf_key device in
  let wanted =
    { Eric.Envbind.hour_slot = Some 10; temperature_band = Some 2; frequency_mhz = None }
  in
  let bound = Eric.Envbind.derive ~puf_key:pk ~context:ctx wanted in
  let pkg, _ = Eric.Encrypt.encrypt ~key:bound ~mode:Eric.Config.Full (Lazy.force image) in
  (* right conditions decrypt *)
  let good = Eric.Envbind.observe ~window_hours:4
      { Eric.Envbind.unix_hours = 41; temperature_c = 25; clock_mhz = 25 } wanted
  in
  check Alcotest.bool "decrypts in window" true
    (Result.is_ok (Eric.Encrypt.decrypt ~key:(Eric.Envbind.derive ~puf_key:pk ~context:ctx good) pkg));
  (* wrong window refused *)
  let late = Eric.Envbind.observe ~window_hours:4
      { Eric.Envbind.unix_hours = 60; temperature_c = 25; clock_mhz = 25 } wanted
  in
  check Alcotest.bool "refused after the window" true
    (Result.is_error
       (Eric.Encrypt.decrypt ~key:(Eric.Envbind.derive ~puf_key:pk ~context:ctx late) pkg))

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Fuzzy-extractor boot path                                           *)
(* ------------------------------------------------------------------ *)

let enrolled_device id =
  let device = Eric_puf.Device.manufacture id in
  match Eric_puf.Enroll.enroll device with
  | Ok e -> (device, e)
  | Error e -> Alcotest.fail (Printf.sprintf "device %Ld refused enrollment: %s" id e)

let tampered_helper (e : Eric_puf.Enroll.enrollment) =
  let tag = Bytes.copy e.Eric_puf.Enroll.helper.Eric_puf.Enroll.tag in
  Bytes.set tag 0 (Char.chr (Char.code (Bytes.get tag 0) lxor 1));
  { e.Eric_puf.Enroll.helper with Eric_puf.Enroll.tag = tag }

let test_kmu_boot_key () =
  let device, e = enrolled_device 7100L in
  (match Eric.Kmu.boot_key device e.Eric_puf.Enroll.helper with
  | Eric.Kmu.Key_ready key ->
    (* the booted key is derive(enrolled puf key, context) *)
    check Alcotest.string "boot key = derived enrolled key"
      (Eric_util.Bytesx.to_hex
         (Eric.Kmu.derive ~puf_key:e.Eric_puf.Enroll.key Eric.Kmu.default_context))
      (Eric_util.Bytesx.to_hex key)
  | Eric.Kmu.Key_reconstruction_failed f ->
    Alcotest.fail (Eric_puf.Fuzzy.failure_to_string f));
  match Eric.Kmu.boot_key device (tampered_helper e) with
  | Eric.Kmu.Key_ready _ -> Alcotest.fail "tampered helper booted a key"
  | Eric.Kmu.Key_reconstruction_failed (Eric_puf.Fuzzy.Exhausted _) -> ()
  | Eric.Kmu.Key_reconstruction_failed f ->
    Alcotest.fail ("expected exhaustion, got " ^ Eric_puf.Fuzzy.failure_to_string f)

let test_target_helper_boot_end_to_end () =
  (* The production path: enroll, boot through the extractor, ship a
     package personalized to the reconstructed key, run it. *)
  let device, e = enrolled_device 7101L in
  let t = Eric.Target.create_with_helper device e.Eric_puf.Enroll.helper in
  let key = match Eric.Target.key_state t with
    | Ok key -> key
    | Error f -> Alcotest.fail (Eric_puf.Fuzzy.failure_to_string f)
  in
  check Alcotest.string "key_state = derived_key" (Eric_util.Bytesx.to_hex key)
    (Eric_util.Bytesx.to_hex (Eric.Target.derived_key t));
  let build =
    match Eric.Source.build ~mode:Eric.Config.Full ~key test_source with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  (match Eric.Target.execute t build.Eric.Source.package with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Eric.Target.pp_load_error e)
  | Ok r -> check Alcotest.string "program output" expected_output r.Eric_sim.Soc.output);
  (* a helper boot pays reconstruction (reads + tag hashing) in its
     key-setup accounting, which dominates the legacy majority vote *)
  let fixed target build =
    match Eric.Target.receive target build.Eric.Source.package with
    | Error e -> Alcotest.fail (Format.asprintf "%a" Eric.Target.pp_load_error e)
    | Ok loaded -> loaded.Eric.Target.load.Eric_hw.Hde.fixed_cycles
  in
  let plain_target = Eric.Target.create device in
  let plain_build =
    match
      Eric.Source.build ~mode:Eric.Config.Full
        ~key:(Eric.Target.derived_key plain_target) test_source
    with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  check Alcotest.bool "reconstruction costs more than a majority vote" true
    (fixed t build > fixed plain_target plain_build)

let test_target_key_unavailable_refuses () =
  let device, e = enrolled_device 7102L in
  let t = Eric.Target.create_with_helper device (tampered_helper e) in
  (match Eric.Target.key_state t with
  | Ok _ -> Alcotest.fail "tampered helper produced a key"
  | Error _ -> ());
  (* derived_key is the provisioning-path accessor; on a failed boot it
     must raise, not return garbage *)
  (match Eric.Target.derived_key t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "derived_key returned despite failed reconstruction");
  (* every load refuses with the typed error and a distinct refusal
     reason, never executes *)
  let key =
    Eric.Kmu.derive ~puf_key:e.Eric_puf.Enroll.key Eric.Kmu.default_context
  in
  let build =
    match Eric.Source.build ~mode:Eric.Config.Full ~key test_source with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  match Eric.Target.receive t build.Eric.Source.package with
  | Ok _ -> Alcotest.fail "keyless target accepted a load"
  | Error (Eric.Target.Key_unavailable _ as err) ->
    check Alcotest.string "refusal reason" "key-reconstruction"
      (Eric.Target.refusal_reason err)
  | Error err ->
    Alcotest.fail
      (Format.asprintf "expected Key_unavailable, got %a" Eric.Target.pp_load_error err)

let test_static_analysis_contrast () =
  let img = Lazy.force image in
  let plain = Eric_rv.Program.text_bytes img in
  let pkg = build Eric.Config.Full in
  let rp = Eric.Analysis.static_analysis plain in
  let rc = Eric.Analysis.static_analysis pkg.Eric.Package.enc_text in
  check Alcotest.bool "plaintext decodes fully" true (rp.Eric.Analysis.valid_fraction > 0.99);
  check Alcotest.bool "plaintext has call edges" true (rp.Eric.Analysis.call_edges > 0);
  check Alcotest.bool "plaintext reveals function boundaries" true
    (rp.Eric.Analysis.prologue_candidates >= 2);
  check Alcotest.bool "encryption hides most boundaries" true
    (rc.Eric.Analysis.prologue_candidates * 2 <= rp.Eric.Analysis.prologue_candidates
     || rc.Eric.Analysis.prologue_candidates <= 2);
  check Alcotest.bool "ciphertext decodes worse" true
    (rc.Eric.Analysis.valid_fraction < rp.Eric.Analysis.valid_fraction -. 0.2);
  check Alcotest.bool "call graph destroyed" true
    (rc.Eric.Analysis.call_edges < rp.Eric.Analysis.call_edges)

let test_byte_entropy_contrast () =
  let img = Lazy.force image in
  let plain = Eric_rv.Program.text_bytes img in
  let pkg = build Eric.Config.Full in
  let ep = Eric.Analysis.byte_entropy plain in
  let ec = Eric.Analysis.byte_entropy pkg.Eric.Package.enc_text in
  check Alcotest.bool "ciphertext entropy higher" true (ec > ep +. 0.5);
  check Alcotest.bool "ciphertext near random" true (ec > 7.0)

let test_diffusion_near_half () =
  let pkg = build Eric.Config.Full in
  let d = Eric.Analysis.diffusion ~key:device_key pkg in
  check Alcotest.bool "diffusion ~0.5" true (d > 0.45 && d < 0.55)

let test_field_imm_hides_offsets_only () =
  (* Under Imm_fields the ciphertext still decodes almost fully (opcodes
     and registers intact) but memory-access offsets change. *)
  let img = Lazy.force image in
  let pkg, _ =
    Eric.Encrypt.encrypt ~key:device_key
      ~mode:(Eric.Config.Field (Eric.Config.Imm_fields, Eric.Config.Select_all))
      img
  in
  let r = Eric.Analysis.static_analysis pkg.Eric.Package.enc_text in
  check Alcotest.bool "still decodes (stealthy)" true (r.Eric.Analysis.valid_fraction > 0.9);
  check Alcotest.bool "text differs from plaintext" false
    (Bytes.equal pkg.Eric.Package.enc_text (Eric_rv.Program.text_bytes img))

let () =
  Alcotest.run "eric_core"
    [ ( "kmu",
        [ Alcotest.test_case "deterministic" `Quick test_kmu_deterministic;
          Alcotest.test_case "context separation" `Quick test_kmu_context_separation;
          Alcotest.test_case "device key" `Quick test_kmu_device_key_matches_target;
          kmu_derive_prop ] );
      ( "package",
        [ Alcotest.test_case "roundtrip all modes" `Quick test_package_roundtrip_all_modes;
          Alcotest.test_case "parse rejects" `Quick test_package_parse_rejects;
          Alcotest.test_case "malformed classes" `Quick test_package_parse_malformed_classes;
          Alcotest.test_case "size accounting" `Quick test_package_sizes_match_paper_accounting;
          package_parser_fuzz;
          package_parser_fuzz_mutated ] );
      ( "encrypt",
        [ Alcotest.test_case "roundtrip all modes" `Quick test_roundtrip_all_modes;
          Alcotest.test_case "full covers everything" `Quick test_full_encrypts_everything;
          Alcotest.test_case "partial fraction" `Quick test_partial_fraction_plausible;
          Alcotest.test_case "partial ranges" `Quick test_partial_ranges;
          Alcotest.test_case "field keeps opcodes" `Quick test_field_mode_keeps_opcodes;
          Alcotest.test_case "wrong key rejected" `Quick test_wrong_key_rejected;
          Alcotest.test_case "every byte corruption detected" `Slow test_every_bit_flip_detected;
          Alcotest.test_case "single bit flips" `Quick test_single_bit_flips_sampled;
          decrypt_roundtrip_random_keys ] );
      ( "target",
        [ Alcotest.test_case "execute all modes" `Quick test_execute_all_modes;
          Alcotest.test_case "hde load slower than plain" `Quick test_encrypted_load_slower_than_plain;
          Alcotest.test_case "hde breakdown" `Quick test_receive_reports_hde_breakdown ] );
      ( "protocol",
        [ Alcotest.test_case "happy path" `Quick test_protocol_happy_path;
          Alcotest.test_case "attacks refused" `Quick test_protocol_attacks_refused;
          Alcotest.test_case "populates telemetry" `Quick test_protocol_populates_telemetry;
          Alcotest.test_case "cross-check diagonal" `Quick test_protocol_cross_check_diagonal;
          Alcotest.test_case "build_multi shares work" `Quick test_build_multi_shares_work;
          Alcotest.test_case "cross-check fleet + clone" `Slow test_protocol_cross_check_fleet;
          Alcotest.test_case "epoch rotation revokes" `Quick test_epoch_rotation_revokes;
          Alcotest.test_case "RSA in-band provisioning" `Slow test_provision_over_network ] );
      ( "boot",
        [ Alcotest.test_case "kmu boot_key" `Quick test_kmu_boot_key;
          Alcotest.test_case "helper boot end to end" `Quick test_target_helper_boot_end_to_end;
          Alcotest.test_case "key unavailable refuses" `Quick
            test_target_key_unavailable_refuses ] );
      ( "envbind",
        [ Alcotest.test_case "unconstrained = base" `Quick test_envbind_unconstrained_is_base;
          Alcotest.test_case "window/band/frequency" `Quick test_envbind_same_window_same_key;
          Alcotest.test_case "unbound sensors ignored" `Quick test_envbind_unbound_sensors_ignored;
          Alcotest.test_case "negative temperatures" `Quick test_envbind_negative_temperature_bands;
          Alcotest.test_case "end to end" `Quick test_envbind_end_to_end ] );
      ( "analysis",
        [ Alcotest.test_case "static contrast" `Quick test_static_analysis_contrast;
          Alcotest.test_case "byte entropy" `Quick test_byte_entropy_contrast;
          Alcotest.test_case "diffusion" `Quick test_diffusion_near_half;
          Alcotest.test_case "field imm stealth" `Quick test_field_imm_hides_offsets_only ] ) ]
