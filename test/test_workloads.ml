(* Verification of the MiBench-style workload suite: every program must
   compile, run to exit 0 on the simulated SoC, and print values that match
   *independent* OCaml reference implementations of the same algorithms
   (same pseudo-random inputs, different code). *)

let check = Alcotest.check

let run_workload =
  (* Compile+run once per workload and memoise. *)
  let cache = Hashtbl.create 8 in
  fun name ->
    match Hashtbl.find_opt cache name with
    | Some r -> r
    | None ->
      let w =
        match Eric_workloads.Workloads.by_name name with
        | Some w -> w
        | None -> Alcotest.failf "unknown workload %s" name
      in
      let image =
        match Eric_cc.Driver.compile w.Eric_workloads.Workloads.source with
        | Ok img -> img
        | Error e -> Alcotest.failf "%s failed to compile: %s" name e
      in
      let r = Eric_sim.Soc.run_program image in
      let result =
        match r.Eric_sim.Soc.status with
        | Eric_sim.Cpu.Exited code -> (image, code, r.Eric_sim.Soc.output)
        | Eric_sim.Cpu.Faulted m | Eric_sim.Cpu.Integrity_fault m ->
          Alcotest.failf "%s faulted: %s" name m
        | Eric_sim.Cpu.Running -> Alcotest.failf "%s did not finish" name
      in
      Hashtbl.replace cache name result;
      result

let output_ints name =
  let _, code, out = run_workload name in
  check Alcotest.int (name ^ " exit code") 0 code;
  out |> String.trim |> String.split_on_char '\n' |> List.map Int64.of_string

(* Shared LCG, identical to the MiniC one. *)
let lcg seed = (seed * 1103515245 + 12345) land 0x7fffffff

(* ------------------------------------------------------------------ *)
(* References                                                          *)
(* ------------------------------------------------------------------ *)

let test_basicmath () =
  (* isqrt reference: float sqrt with integer correction. *)
  let isqrt x =
    if x < 2 then x
    else begin
      let r = ref (int_of_float (sqrt (float_of_int x))) in
      while (!r + 1) * (!r + 1) <= x do incr r done;
      while !r * !r > x do decr r done;
      !r
    end
  in
  let sum = ref 0 in
  for i = 0 to 29999 do
    sum := !sum + isqrt i
  done;
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let g = ref 0 in
  for i = 1 to 120 do
    for j = 1 to 120 do
      g := !g + gcd i j
    done
  done;
  let sieve = Array.make 20000 true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to 141 do
    if sieve.(i) then
      let j = ref (i * i) in
      while !j < 20000 do
        sieve.(!j) <- false;
        j := !j + i
      done
  done;
  let primes = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 sieve in
  check (Alcotest.list Alcotest.int64) "basicmath checksums"
    [ Int64.of_int !sum; Int64.of_int !g; Int64.of_int primes ]
    (output_ints "basicmath")

let test_bitcount () =
  let popcount v =
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
    go v 0
  in
  let seed = ref 1 and total = ref 0 in
  for _ = 1 to 20000 do
    seed := lcg !seed;
    total := !total + popcount (!seed land 0xffffffff)
  done;
  let t = Int64.of_int !total in
  check (Alcotest.list Alcotest.int64) "four equal popcount totals" [ t; t; t; t ]
    (output_ints "bitcount")

let test_qsort () =
  let n = 3000 in
  let seed = ref 42 in
  let data =
    Array.init n (fun _ ->
        seed := lcg !seed;
        !seed mod 100000)
  in
  Array.sort compare data;
  let checksum = ref 0 in
  for i = 0 to n - 1 do
    checksum := (!checksum + ((i + 1) * (data.(i) mod 1000))) mod 1000000007
  done;
  check (Alcotest.list Alcotest.int64) "qsort results"
    [ Int64.of_int data.(0); Int64.of_int data.(n - 1); Int64.of_int !checksum ]
    (output_ints "qsort")

let test_dijkstra () =
  let n = 96 in
  let inf = 1000000000 in
  let seed = ref 7 in
  let adj = Array.make (n * n) inf in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      seed := lcg !seed;
      let w = !seed mod 1000 in
      adj.((i * n) + j) <- (if w < 700 then w + 1 else inf)
    done
  done;
  let total = ref 0 and unreachable = ref 0 in
  for src = 0 to 7 do
    let dist = Array.make n inf and visited = Array.make n false in
    dist.(src * 11 mod n) <- 0;
    (try
       for _ = 0 to n - 1 do
         let best = ref (-1) and best_d = ref inf in
         for i = 0 to n - 1 do
           if (not visited.(i)) && dist.(i) < !best_d then begin
             best := i;
             best_d := dist.(i)
           end
         done;
         if !best < 0 then raise Exit;
         visited.(!best) <- true;
         for j = 0 to n - 1 do
           let w = adj.((!best * n) + j) in
           if w < inf && dist.(!best) + w < dist.(j) then dist.(j) <- dist.(!best) + w
         done
       done
     with Exit -> ());
    Array.iter (fun d -> if d = inf then incr unreachable else total := !total + d) dist
  done;
  check (Alcotest.list Alcotest.int64) "dijkstra totals"
    [ Int64.of_int !total; Int64.of_int !unreachable ]
    (output_ints "dijkstra")

let crc32_ref data =
  (* Independent bitwise implementation over int. *)
  let c = ref 0xffffffff in
  Bytes.iter
    (fun ch ->
      c := !c lxor Char.code ch;
      for _ = 1 to 8 do
        if !c land 1 = 1 then c := 0xedb88320 lxor (!c lsr 1) else c := !c lsr 1
      done)
    data;
  !c lxor 0xffffffff

let test_crc32 () =
  let seed = ref 123 in
  let buffer =
    Bytes.init 16384 (fun _ ->
        seed := lcg !seed;
        Char.chr ((!seed lsr 16) land 0xFF))
  in
  let full = crc32_ref buffer in
  let prefix = crc32_ref (Bytes.sub buffer 0 512) in
  check (Alcotest.list Alcotest.int64) "crc values"
    [ Int64.of_int full; Int64.of_int prefix ]
    (output_ints "crc32")

let test_stringsearch () =
  let n = 8192 in
  let seed = ref 99 in
  let corpus =
    Bytes.init n (fun _ ->
        seed := lcg !seed;
        Char.chr (Char.code 'a' + (!seed mod 26)))
  in
  let plant at pat = Bytes.blit_string pat 0 corpus at (String.length pat) in
  plant 100 "obfuscation";
  plant 2048 "hardware";
  plant 4096 "obfuscation";
  plant 8000 "signature";
  let count pat =
    let m = String.length pat in
    let c = ref 0 in
    for pos = 0 to n - m do
      if Bytes.sub_string corpus pos m = pat then incr c
    done;
    !c
  in
  let total =
    count "obfuscation" + count "hardware" + count "signature" + count "decrypt" + count "the"
  in
  check (Alcotest.list Alcotest.int64) "match counts"
    [ Int64.of_int total; Int64.of_int total ]
    (output_ints "stringsearch")

let test_sha_fips_vector () =
  (* First five printed words are SHA-1("abc"), checkable against FIPS
     180-1: a9993e36 4706816a ba3e2571 7850c26c 9cd0d89d. *)
  let values = output_ints "sha" in
  check Alcotest.int "ten words" 10 (List.length values);
  let abc = [ 0xa9993e36L; 0x4706816aL; 0xba3e2571L; 0x7850c26cL; 0x9cd0d89dL ] in
  check (Alcotest.list Alcotest.int64) "abc digest" abc (List.filteri (fun i _ -> i < 5) values)

let test_adpcm () =
  (* Independent re-implementation of the IMA codec. *)
  let step_table =
    [| 7; 8; 9; 10; 11; 12; 13; 14; 16; 17; 19; 21; 23; 25; 28; 31; 34; 37; 41; 45; 50; 55; 60;
       66; 73; 80; 88; 97; 107; 118; 130; 143; 157; 173; 190; 209; 230; 253; 279; 307; 337; 371;
       408; 449; 494; 544; 598; 658; 724; 796; 876; 963; 1060; 1166; 1282; 1411; 1552; 1707;
       1878; 2066; 2272; 2499; 2749; 3024; 3327; 3660; 4026; 4428; 4871; 5358; 5894; 6484; 7132;
       7845; 8630; 9493; 10442; 11487; 12635; 13899; 15289; 16818; 18500; 20350; 22385; 24623;
       27086; 29794; 32767 |]
  in
  let index_table = [| -1; -1; -1; -1; 2; 4; 6; 8; -1; -1; -1; -1; 2; 4; 6; 8 |] in
  let clamp v lo hi = if v < lo then lo else if v > hi then hi else v in
  let n = 4096 in
  let samples = Array.make n 0 in
  let seed = ref 5 and phase = ref 0 and dir = ref 37 in
  for i = 0 to n - 1 do
    seed := lcg !seed;
    phase := !phase + !dir;
    if !phase > 12000 then dir := -41;
    if !phase < -12000 then dir := 53;
    samples.(i) <- clamp (!phase + (!seed mod 257) - 128) (-32768) 32767
  done;
  let deltas = Array.make n 0 in
  let valpred = ref 0 and index = ref 0 in
  for i = 0 to n - 1 do
    let step = ref step_table.(!index) in
    let diff = ref (samples.(i) - !valpred) in
    let sign = if !diff < 0 then 8 else 0 in
    if sign = 8 then diff := - !diff;
    let delta = ref 0 in
    let vpdiff = ref (!step lsr 3) in
    if !diff >= !step then begin
      delta := 4;
      diff := !diff - !step;
      vpdiff := !vpdiff + !step
    end;
    step := !step lsr 1;
    if !diff >= !step then begin
      delta := !delta lor 2;
      diff := !diff - !step;
      vpdiff := !vpdiff + !step
    end;
    step := !step lsr 1;
    if !diff >= !step then begin
      delta := !delta lor 1;
      vpdiff := !vpdiff + !step
    end;
    if sign = 8 then valpred := !valpred - !vpdiff else valpred := !valpred + !vpdiff;
    valpred := clamp !valpred (-32768) 32767;
    delta := !delta lor sign;
    deltas.(i) <- !delta;
    index := clamp (!index + index_table.(!delta)) 0 88
  done;
  let decoded = Array.make n 0 in
  let valpred = ref 0 and index = ref 0 in
  for i = 0 to n - 1 do
    let delta = deltas.(i) in
    let step = step_table.(!index) in
    let vpdiff = ref (step lsr 3) in
    if delta land 4 <> 0 then vpdiff := !vpdiff + step;
    if delta land 2 <> 0 then vpdiff := !vpdiff + (step lsr 1);
    if delta land 1 <> 0 then vpdiff := !vpdiff + (step lsr 2);
    if delta land 8 <> 0 then valpred := !valpred - !vpdiff else valpred := !valpred + !vpdiff;
    valpred := clamp !valpred (-32768) 32767;
    decoded.(i) <- !valpred;
    index := clamp (!index + index_table.(delta)) 0 88
  done;
  let checksum = ref 0 and worst = ref 0 in
  for i = 0 to n - 1 do
    checksum := ((!checksum * 31) + deltas.(i)) mod 1000000007;
    let err = abs (samples.(i) - decoded.(i)) in
    if err > !worst then worst := err
  done;
  check (Alcotest.list Alcotest.int64) "adpcm checksums"
    [ Int64.of_int !checksum; Int64.of_int !worst ]
    (output_ints "adpcm")


let test_rijndael () =
  (* Independent AES-128 implementation: hard-coded FIPS S-box (the MiniC
     version derives it algebraically), straightforward key schedule and
     rounds over int arrays. *)
  let sbox =
    [| 0x63; 0x7c; 0x77; 0x7b; 0xf2; 0x6b; 0x6f; 0xc5; 0x30; 0x01; 0x67; 0x2b; 0xfe; 0xd7;
       0xab; 0x76; 0xca; 0x82; 0xc9; 0x7d; 0xfa; 0x59; 0x47; 0xf0; 0xad; 0xd4; 0xa2; 0xaf;
       0x9c; 0xa4; 0x72; 0xc0; 0xb7; 0xfd; 0x93; 0x26; 0x36; 0x3f; 0xf7; 0xcc; 0x34; 0xa5;
       0xe5; 0xf1; 0x71; 0xd8; 0x31; 0x15; 0x04; 0xc7; 0x23; 0xc3; 0x18; 0x96; 0x05; 0x9a;
       0x07; 0x12; 0x80; 0xe2; 0xeb; 0x27; 0xb2; 0x75; 0x09; 0x83; 0x2c; 0x1a; 0x1b; 0x6e;
       0x5a; 0xa0; 0x52; 0x3b; 0xd6; 0xb3; 0x29; 0xe3; 0x2f; 0x84; 0x53; 0xd1; 0x00; 0xed;
       0x20; 0xfc; 0xb1; 0x5b; 0x6a; 0xcb; 0xbe; 0x39; 0x4a; 0x4c; 0x58; 0xcf; 0xd0; 0xef;
       0xaa; 0xfb; 0x43; 0x4d; 0x33; 0x85; 0x45; 0xf9; 0x02; 0x7f; 0x50; 0x3c; 0x9f; 0xa8;
       0x51; 0xa3; 0x40; 0x8f; 0x92; 0x9d; 0x38; 0xf5; 0xbc; 0xb6; 0xda; 0x21; 0x10; 0xff;
       0xf3; 0xd2; 0xcd; 0x0c; 0x13; 0xec; 0x5f; 0x97; 0x44; 0x17; 0xc4; 0xa7; 0x7e; 0x3d;
       0x64; 0x5d; 0x19; 0x73; 0x60; 0x81; 0x4f; 0xdc; 0x22; 0x2a; 0x90; 0x88; 0x46; 0xee;
       0xb8; 0x14; 0xde; 0x5e; 0x0b; 0xdb; 0xe0; 0x32; 0x3a; 0x0a; 0x49; 0x06; 0x24; 0x5c;
       0xc2; 0xd3; 0xac; 0x62; 0x91; 0x95; 0xe4; 0x79; 0xe7; 0xc8; 0x37; 0x6d; 0x8d; 0xd5;
       0x4e; 0xa9; 0x6c; 0x56; 0xf4; 0xea; 0x65; 0x7a; 0xae; 0x08; 0xba; 0x78; 0x25; 0x2e;
       0x1c; 0xa6; 0xb4; 0xc6; 0xe8; 0xdd; 0x74; 0x1f; 0x4b; 0xbd; 0x8b; 0x8a; 0x70; 0x3e;
       0xb5; 0x66; 0x48; 0x03; 0xf6; 0x0e; 0x61; 0x35; 0x57; 0xb9; 0x86; 0xc1; 0x1d; 0x9e;
       0xe1; 0xf8; 0x98; 0x11; 0x69; 0xd9; 0x8e; 0x94; 0x9b; 0x1e; 0x87; 0xe9; 0xce; 0x55;
       0x28; 0xdf; 0x8c; 0xa1; 0x89; 0x0d; 0xbf; 0xe6; 0x42; 0x68; 0x41; 0x99; 0x2d; 0x0f;
       0xb0; 0x54; 0xbb; 0x16 |]
  in
  let xtime a = if a land 0x80 <> 0 then ((a lsl 1) lxor 0x1b) land 0xff else (a lsl 1) land 0xff in
  let expand key =
    let rk = Array.make 176 0 in
    Array.blit key 0 rk 0 16;
    let rcon = ref 1 in
    for w = 4 to 43 do
      let base = 4 * w and prev = (4 * w) - 4 in
      if w mod 4 = 0 then begin
        rk.(base) <- rk.(base - 16) lxor sbox.(rk.(prev + 1)) lxor !rcon;
        rk.(base + 1) <- rk.(base - 15) lxor sbox.(rk.(prev + 2));
        rk.(base + 2) <- rk.(base - 14) lxor sbox.(rk.(prev + 3));
        rk.(base + 3) <- rk.(base - 13) lxor sbox.(rk.(prev));
        rcon := xtime !rcon
      end
      else
        for b = 0 to 3 do
          rk.(base + b) <- rk.(base - 16 + b) lxor rk.(prev + b)
        done
    done;
    rk
  in
  let encrypt_block rk (s : int array) =
    let add_rk r = for i = 0 to 15 do s.(i) <- s.(i) lxor rk.((16 * r) + i) done in
    let sub () = for i = 0 to 15 do s.(i) <- sbox.(s.(i)) done in
    let shift () =
      let t = Array.copy s in
      for c = 0 to 3 do
        for r = 0 to 3 do
          s.((4 * c) + r) <- t.((4 * ((c + r) mod 4)) + r)
        done
      done
    in
    let mix () =
      for c = 0 to 3 do
        let s0 = s.(4 * c) and s1 = s.((4 * c) + 1) and s2 = s.((4 * c) + 2) and s3 = s.((4 * c) + 3) in
        let all = s0 lxor s1 lxor s2 lxor s3 in
        s.(4 * c) <- s0 lxor all lxor xtime (s0 lxor s1);
        s.((4 * c) + 1) <- s1 lxor all lxor xtime (s1 lxor s2);
        s.((4 * c) + 2) <- s2 lxor all lxor xtime (s2 lxor s3);
        s.((4 * c) + 3) <- s3 lxor all lxor xtime (s3 lxor s0)
      done
    in
    add_rk 0;
    for r = 1 to 9 do
      sub (); shift (); mix (); add_rk r
    done;
    sub (); shift (); add_rk 10
  in
  let rk = expand (Array.init 16 (fun i -> i)) in
  (* FIPS vector *)
  let block = Array.init 16 (fun i -> (i * 17) land 0xff) in
  encrypt_block rk block;
  let words =
    List.init 4 (fun w ->
        Int64.of_int
          ((block.(4 * w) lsl 24) lor (block.((4 * w) + 1) lsl 16) lor (block.((4 * w) + 2) lsl 8)
          lor block.((4 * w) + 3)))
  in
  (* ECB buffer *)
  let len = 2048 in
  let seed = ref 77 in
  let buffer =
    Array.init len (fun _ ->
        seed := lcg !seed;
        (!seed lsr 11) land 0xff)
  in
  let off = ref 0 in
  while !off + 16 <= len do
    let b = Array.sub buffer !off 16 in
    encrypt_block rk b;
    Array.blit b 0 buffer !off 16;
    off := !off + 16
  done;
  let checksum = ref 0 in
  for i = 0 to len - 1 do
    checksum := ((!checksum * 131) + buffer.(i)) mod 1000000007
  done;
  check (Alcotest.list Alcotest.int64) "aes vector + ecb checksum"
    (words @ [ Int64.of_int !checksum ])
    (output_ints "rijndael")

let test_fft () =
  (* Independent check: a float DFT finds the same dominant bin, the
     round-trip flag printed by the program must be 1, and the
     reconstruction checksum matches a float inverse within the same
     quantisation (recomputed with exact integer semantics below only for
     the input signal itself). *)
  match output_ints "fft" with
  | [ bin; ok; _checksum ] ->
    (* regenerate the input signal with the workload's exact integer code *)
    let sine =
      [| 0; 402; 804; 1205; 1606; 2006; 2404; 2801; 3196; 3590; 3981; 4370; 4756; 5139; 5520;
         5897; 6270; 6639; 7005; 7366; 7723; 8076; 8423; 8765; 9102; 9434; 9760; 10080; 10394;
         10702; 11003; 11297; 11585; 11866; 12140; 12406; 12665; 12916; 13160; 13395; 13623;
         13842; 14053; 14256; 14449; 14635; 14811; 14978; 15137; 15286; 15426; 15557; 15679;
         15791; 15893; 15986; 16069; 16143; 16207; 16261; 16305; 16340; 16364; 16379; 16384 |]
    in
    let sin256 k =
      let k = ((k mod 256) + 256) mod 256 in
      if k <= 64 then sine.(k)
      else if k <= 128 then sine.(128 - k)
      else if k <= 192 then -sine.(k - 128)
      else -sine.(256 - k)
    in
    let n = 256 and tone = 10 in
    let seed = ref 31 in
    let signal =
      Array.init n (fun i ->
          seed := lcg !seed;
          ((8192 * sin256 (tone * i)) asr 14) + (!seed mod 65) - 32)
    in
    (* float DFT: dominant positive-frequency bin *)
    let best = ref 0 and best_mag = ref 0.0 in
    for k = 1 to (n / 2) - 1 do
      let re = ref 0.0 and im = ref 0.0 in
      for i = 0 to n - 1 do
        let angle = -2.0 *. Float.pi *. float_of_int (k * i) /. float_of_int n in
        re := !re +. (float_of_int signal.(i) *. cos angle);
        im := !im +. (float_of_int signal.(i) *. sin angle)
      done;
      let mag = (!re *. !re) +. (!im *. !im) in
      if mag > !best_mag then begin
        best_mag := mag;
        best := k
      end
    done;
    check Alcotest.int64 "dominant bin (float DFT agrees)" (Int64.of_int !best) bin;
    check Alcotest.int64 "round-trip flag" 1L ok
  | other -> Alcotest.failf "expected 3 output values, got %d" (List.length other)

(* ------------------------------------------------------------------ *)
(* Suite-wide invariants                                               *)
(* ------------------------------------------------------------------ *)

let test_all_compile_and_exit_zero () =
  List.iter
    (fun name ->
      let _, code, out = run_workload name in
      check Alcotest.int (name ^ " exit") 0 code;
      check Alcotest.bool (name ^ " produced output") true (String.length out > 0))
    Eric_workloads.Workloads.names

let test_sizes_vary () =
  (* The paper wants "programs of different sizes". *)
  let sizes =
    List.map
      (fun name ->
        let img, _, _ = run_workload name in
        Eric_rv.Program.text_size img)
      Eric_workloads.Workloads.names
  in
  let mn = List.fold_left min max_int sizes and mx = List.fold_left max 0 sizes in
  check Alcotest.bool "spread" true (mx > mn * 2)

let test_compression_equivalence () =
  (* Compressed and uncompressed builds behave identically (checked on two
     representative workloads to bound test time). *)
  List.iter
    (fun name ->
      let w = Option.get (Eric_workloads.Workloads.by_name name) in
      let run options =
        let img =
          match Eric_cc.Driver.compile ~options w.Eric_workloads.Workloads.source with
          | Ok i -> i
          | Error e -> Alcotest.fail e
        in
        let r = Eric_sim.Soc.run_program img in
        (r.Eric_sim.Soc.status, r.Eric_sim.Soc.output)
      in
      let s1, o1 = run { Eric_cc.Driver.default_options with Eric_cc.Driver.compress = false } in
      let s2, o2 = run Eric_cc.Driver.default_options in
      check Alcotest.bool (name ^ " same status") true (s1 = s2);
      check Alcotest.string (name ^ " same output") o1 o2)
    [ "crc32"; "qsort" ]

let test_unoptimized_equivalence () =
  List.iter
    (fun name ->
      let w = Option.get (Eric_workloads.Workloads.by_name name) in
      let run options =
        let img =
          match Eric_cc.Driver.compile ~options w.Eric_workloads.Workloads.source with
          | Ok i -> i
          | Error e -> Alcotest.fail e
        in
        (Eric_sim.Soc.run_program img).Eric_sim.Soc.output
      in
      let o1 = run { Eric_cc.Driver.default_options with Eric_cc.Driver.optimize = false } in
      let o2 = run Eric_cc.Driver.default_options in
      check Alcotest.string (name ^ " same output") o1 o2)
    [ "sha"; "stringsearch" ]

let test_encrypted_roundtrip_identical_image () =
  (* Ship one workload through the full ERIC pipeline and require the
     decrypted image to be byte-identical; then run it. *)
  let key = Bytes.of_string "workload-roundtrip-key-32bytes!!" in
  let img, _, plain_out = run_workload "crc32" in
  let pkg, _ = Eric.Encrypt.encrypt ~key ~mode:Eric.Config.Full img in
  match Eric.Encrypt.decrypt ~key pkg with
  | Error _ -> Alcotest.fail "decrypt failed"
  | Ok (img', _) ->
    check Alcotest.string "identical text"
      (Eric_util.Bytesx.to_hex (Eric_rv.Program.text_bytes img))
      (Eric_util.Bytesx.to_hex (Eric_rv.Program.text_bytes img'));
    let r = Eric_sim.Soc.run_program img' in
    check Alcotest.string "identical behaviour" plain_out r.Eric_sim.Soc.output


let test_ir_interpreter_agrees () =
  (* Third implementation: the IR interpreter (which shares nothing with
     codegen/regalloc/the CPU) must produce the same observable behaviour
     as the compiled binary on the SoC, for every workload. *)
  List.iter
    (fun name ->
      let w = Option.get (Eric_workloads.Workloads.by_name name) in
      match Eric_cc.Driver.compile_to_ir w.Eric_workloads.Workloads.source_small with
      | Error e -> Alcotest.fail e
      | Ok ir ->
        let interp = Eric_cc.Ir_interp.run ir in
        let image =
          match Eric_cc.Driver.compile w.Eric_workloads.Workloads.source_small with
          | Ok img -> img
          | Error e -> Alcotest.fail e
        in
        let soc = Eric_sim.Soc.run_program image in
        check Alcotest.string (name ^ " output") interp.Eric_cc.Ir_interp.output
          soc.Eric_sim.Soc.output;
        (match soc.Eric_sim.Soc.status with
        | Eric_sim.Cpu.Exited code ->
          check Alcotest.int (name ^ " exit") interp.Eric_cc.Ir_interp.exit_code code
        | _ -> Alcotest.fail (name ^ " did not exit")))
    Eric_workloads.Workloads.names

let () =
  Alcotest.run "eric_workloads"
    [ ( "references",
        [ Alcotest.test_case "basicmath" `Slow test_basicmath;
          Alcotest.test_case "bitcount" `Slow test_bitcount;
          Alcotest.test_case "qsort" `Quick test_qsort;
          Alcotest.test_case "dijkstra" `Slow test_dijkstra;
          Alcotest.test_case "crc32" `Quick test_crc32;
          Alcotest.test_case "stringsearch" `Quick test_stringsearch;
          Alcotest.test_case "sha FIPS vector" `Quick test_sha_fips_vector;
          Alcotest.test_case "adpcm" `Quick test_adpcm;
          Alcotest.test_case "rijndael (independent AES)" `Slow test_rijndael;
          Alcotest.test_case "fft (float DFT agrees)" `Slow test_fft ] );
      ( "suite",
        [ Alcotest.test_case "all compile and exit 0" `Slow test_all_compile_and_exit_zero;
          Alcotest.test_case "sizes vary" `Quick test_sizes_vary;
          Alcotest.test_case "compression equivalence" `Slow test_compression_equivalence;
          Alcotest.test_case "unoptimized equivalence" `Slow test_unoptimized_equivalence;
          Alcotest.test_case "encrypted roundtrip" `Quick test_encrypted_roundtrip_identical_image;
          Alcotest.test_case "IR interpreter agrees" `Slow test_ir_interpreter_agrees ] ) ]
