(* Tests for eric_puf: arbiter chain physics, device determinism, key
   generation stability, population quality metrics. *)

open Eric_puf

let check = Alcotest.check

let test_arbiter_deterministic () =
  let rng = Eric_util.Prng.create ~seed:1L in
  let chain = Arbiter.manufacture Arbiter.default_params rng in
  for challenge = 0 to 255 do
    check Alcotest.bool
      (Printf.sprintf "challenge %d" challenge)
      (Arbiter.eval chain ~challenge) (Arbiter.eval chain ~challenge)
  done

let test_arbiter_sign_matches_delay () =
  let rng = Eric_util.Prng.create ~seed:2L in
  let chain = Arbiter.manufacture Arbiter.default_params rng in
  for challenge = 0 to 255 do
    let d = Arbiter.delay_difference chain ~challenge in
    check Alcotest.bool "eval = sign of delay difference" (d < 0.0)
      (Arbiter.eval chain ~challenge)
  done

let test_arbiter_challenge_sensitivity () =
  (* A healthy chain should not answer every challenge identically. *)
  let rng = Eric_util.Prng.create ~seed:3L in
  let ones = ref 0 in
  for _ = 1 to 8 do
    let chain = Arbiter.manufacture Arbiter.default_params rng in
    for challenge = 0 to 255 do
      if Arbiter.eval chain ~challenge then incr ones
    done
  done;
  check Alcotest.bool "response distribution is mixed" true (!ones > 200 && !ones < 8 * 256 - 200)

let test_arbiter_stage_validation () =
  Alcotest.check_raises "zero stages" (Invalid_argument "Arbiter.manufacture: stages must be positive")
    (fun () ->
      ignore
        (Arbiter.manufacture
           { Arbiter.default_params with Arbiter.stages = 0 }
           (Eric_util.Prng.create ~seed:1L)))

let test_device_table1_shape () =
  (* Table I: 32 chains, 8-bit challenge, 1-bit response each. *)
  let d = Device.manufacture 100L in
  check Alcotest.int "32 chains" 32 (Device.chains d);
  check Alcotest.int "key bits" 32 (Device.key_bits d);
  check Alcotest.int "challenge set size" 32 (Array.length (Device.challenge_set d));
  Array.iter
    (fun c -> check Alcotest.bool "8-bit challenge" true (c >= 0 && c < 256))
    (Device.challenge_set d);
  check Alcotest.int "key bytes" 4 (Bytes.length (Device.puf_key d))

let test_device_reproducible () =
  let a = Device.manufacture 55L and b = Device.manufacture 55L in
  check Alcotest.string "same silicon, same key"
    (Eric_util.Bytesx.to_hex (Device.puf_key a))
    (Eric_util.Bytesx.to_hex (Device.puf_key b))

let test_device_unique () =
  (* Keys across a population must not collide en masse. *)
  let keys =
    List.init 24 (fun i -> Eric_util.Bytesx.to_hex (Device.puf_key (Device.manufacture (Int64.of_int (i + 1)))))
  in
  let distinct = List.sort_uniq compare keys in
  check Alcotest.bool "mostly distinct keys" true (List.length distinct >= 23)

let test_device_key_stable_under_noise () =
  (* Majority voting + dark-bit masking: regeneration is error-free. *)
  let d = Device.manufacture 77L in
  let enrolled = Device.puf_key d in
  for _ = 1 to 50 do
    check Alcotest.string "regenerated key" (Eric_util.Bytesx.to_hex enrolled)
      (Eric_util.Bytesx.to_hex (Device.puf_key d))
  done

let test_device_noiseless_response_deterministic () =
  let d = Device.manufacture 88L in
  let ch = Device.challenge_set d in
  let a = Device.respond ~noisy:false d ch in
  let b = Device.respond ~noisy:false d ch in
  check Alcotest.bool "ideal responses equal" true (Eric_util.Bitvec.equal a b)

let test_device_respond_arity () =
  let d = Device.manufacture 99L in
  Alcotest.check_raises "arity" (Invalid_argument "Device.respond: one challenge per chain expected")
    (fun () -> ignore (Device.respond d [| 1; 2; 3 |]))

(* ------------------------------------------------------------------ *)
(* Environment model                                                   *)
(* ------------------------------------------------------------------ *)

let test_env_nominal_identity () =
  check (Alcotest.float 1e-9) "nominal scale is 1" 1.0 (Env.noise_scale Env.nominal);
  check (Alcotest.float 1e-9) "nominal drift is 0" 0.0 (Env.age_shift_ps Env.nominal)

let test_env_noise_grows_with_stress () =
  let scale name =
    match Env.of_name name with
    | Some env -> Env.noise_scale env
    | None -> Alcotest.fail ("unknown corner " ^ name)
  in
  check Alcotest.bool "cold > nominal" true (scale "cold" > scale "nominal");
  check Alcotest.bool "low voltage > nominal" true (scale "low-voltage" > scale "nominal");
  check Alcotest.bool "stress combines both" true
    (scale "cold-lowv" > scale "cold" && scale "cold-lowv" > scale "low-voltage");
  (* the acceptance criterion's >= 10x corner exists *)
  check Alcotest.bool "stress corner is >= 10x nominal" true
    (Env.noise_scale Env.stress >= 10.0)

let test_env_of_name_total () =
  List.iter
    (fun (name, env) ->
      match Env.of_name name with
      | Some env' ->
        check Alcotest.string "round-trips"
          (Format.asprintf "%a" Env.pp env)
          (Format.asprintf "%a" Env.pp env');
        check Alcotest.bool "name recovered" true (Env.name env' = Some name)
      | None -> Alcotest.fail ("corner list name not parsed: " ^ name))
    Env.corners;
  check Alcotest.bool "garbage refused" true (Env.of_name "volcano" = None)

let test_env_aging_shifts_responses () =
  (* Aging drifts delays, so an aged device must eventually disagree with
     its nominal self on some noiseless response; the same device queried
     twice at the same age must agree with itself. *)
  let d = Device.manufacture 321L in
  let aged = { Env.nominal with Env.age_years = 10.0 } in
  let ch = Device.challenge_set d in
  let later = Device.respond ~noisy:false ~env:aged d ch in
  let later' = Device.respond ~noisy:false ~env:aged d ch in
  check Alcotest.bool "aged responses deterministic" true (Eric_util.Bitvec.equal later later');
  (* Scan the full challenge space: a decade of drift must move at least
     one marginal response somewhere on the die.  Determinism makes this
     a fixed fact of device 321, not flaky. *)
  let disagreements = ref 0 in
  for chain = 0 to Device.chains d - 1 do
    for challenge = 0 to 255 do
      if
        Device.eval_chain ~noisy:false d ~chain ~challenge
        <> Device.eval_chain ~noisy:false ~env:aged d ~chain ~challenge
      then incr disagreements
    done
  done;
  check Alcotest.bool "a decade moves some marginal bit" true (!disagreements > 0)

(* ------------------------------------------------------------------ *)
(* Enrollment + helper data                                            *)
(* ------------------------------------------------------------------ *)

let enroll_ok ?config id =
  match Enroll.enroll ?config (Device.manufacture id) with
  | Ok e -> e
  | Error e -> Alcotest.fail (Printf.sprintf "device %Ld refused enrollment: %s" id e)

let test_enroll_deterministic () =
  let a = enroll_ok 900L and b = enroll_ok 900L in
  check Alcotest.string "same helper blob"
    (Eric_util.Bytesx.to_hex (Enroll.serialize a.Enroll.helper))
    (Eric_util.Bytesx.to_hex (Enroll.serialize b.Enroll.helper));
  check Alcotest.string "same key" (Eric_util.Bytesx.to_hex a.Enroll.key)
    (Eric_util.Bytesx.to_hex b.Enroll.key);
  check Alcotest.bool "enough chains kept" true
    (Enroll.kept_chains a.Enroll.helper >= Enroll.default_config.Enroll.min_chains)

let test_helper_serialize_roundtrip () =
  let e = enroll_ok 901L in
  let blob = Enroll.serialize e.Enroll.helper in
  match Enroll.parse blob with
  | Error err -> Alcotest.fail err
  | Ok h ->
    check Alcotest.string "round-trips byte-for-byte"
      (Eric_util.Bytesx.to_hex blob)
      (Eric_util.Bytesx.to_hex (Enroll.serialize h))

let test_helper_parse_rejects () =
  let e = enroll_ok 902L in
  let good = Enroll.serialize e.Enroll.helper in
  let expect_error what bytes =
    match Enroll.parse bytes with
    | Ok _ -> Alcotest.fail (what ^ " parsed")
    | Error _ -> ()
  in
  for len = 0 to min 64 (Bytes.length good - 1) do
    expect_error (Printf.sprintf "truncated to %d" len) (Bytes.sub good 0 len)
  done;
  let flip pos =
    let b = Bytes.copy good in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
    b
  in
  expect_error "bad magic" (flip 0);
  expect_error "bad version" (flip 4);
  expect_error "trailing garbage" (Bytes.cat good (Bytes.of_string "z"))

(* ------------------------------------------------------------------ *)
(* Fuzzy extractor                                                     *)
(* ------------------------------------------------------------------ *)

let reconstruction_deterministic_prop =
  (* For any device, reconstruction at nominal returns exactly the
     enrolled key — never a different key, never a refusal. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"nominal reconstruction yields the enrolled key"
       QCheck.(int_range 1 10_000)
       (fun n ->
         let id = Int64.of_int (100_000 + n) in
         match Enroll.enroll (Device.manufacture id) with
         | Error _ -> QCheck.assume_fail () (* scrapped die: out of scope *)
         | Ok e -> (
           match Fuzzy.reconstruct (Device.manufacture id) e.Enroll.helper with
           | Error f -> QCheck.Test.fail_report (Fuzzy.failure_to_string f)
           | Ok r -> Bytes.equal r.Fuzzy.key e.Enroll.key)))

let test_fuzzy_wrong_device_refuses () =
  let e = enroll_ok 903L in
  match Fuzzy.reconstruct (Device.manufacture 904L) e.Enroll.helper with
  | Error (Fuzzy.Helper_mismatch _) -> ()
  | Error (Fuzzy.Exhausted _) -> Alcotest.fail "expected a structural mismatch"
  | Ok _ -> Alcotest.fail "another device's helper reconstructed a key"

let test_helper_tamper_never_yields_wrong_key () =
  (* The regression the tag exists for: flip any byte of the sketch or
     tag and reconstruction must either refuse (typed failure) or — if
     the flipped bit lands outside the decode path — still produce the
     one enrolled key.  A different key must never verify. *)
  let e = enroll_ok 905L in
  let d = Device.manufacture 905L in
  let h = e.Enroll.helper in
  let tampered_sketch =
    let s = Eric_util.Bitvec.to_bytes h.Enroll.sketch in
    Bytes.set s 0 (Char.chr (Char.code (Bytes.get s 0) lxor 0x0F));
    { h with Enroll.sketch = Eric_util.Bitvec.of_bytes ~len:(Eric_util.Bitvec.length h.Enroll.sketch) s }
  in
  let tampered_tag =
    let t = Bytes.copy h.Enroll.tag in
    Bytes.set t 5 (Char.chr (Char.code (Bytes.get t 5) lxor 0x80));
    { h with Enroll.tag = t }
  in
  List.iter
    (fun (what, h') ->
      match Fuzzy.reconstruct d h' with
      | Error (Fuzzy.Exhausted _) -> () (* explicit refusal: the safe outcome *)
      | Error (Fuzzy.Helper_mismatch _) -> ()
      | Ok r ->
        check Alcotest.string (what ^ ": only the enrolled key may verify")
          (Eric_util.Bytesx.to_hex e.Enroll.key)
          (Eric_util.Bytesx.to_hex r.Fuzzy.key))
    [ ("sketch bits flipped", tampered_sketch); ("tag byte flipped", tampered_tag) ];
  (* the tag flip specifically must refuse: the decoded key is right but
     cannot reproduce a corrupted tag *)
  match Fuzzy.reconstruct d tampered_tag with
  | Error (Fuzzy.Exhausted { attempts }) ->
    check Alcotest.int "used every bounded attempt" Fuzzy.default_config.Fuzzy.attempts attempts
  | Error (Fuzzy.Helper_mismatch _) -> Alcotest.fail "tag flip is not structural"
  | Ok _ -> Alcotest.fail "corrupted tag verified"

let test_corner_sweep_kfr () =
  (* Nominal corner: both boot paths are error-free.  Stress corner
     (>= 10x noise): the fuzzy extractor still reconstructs every boot
     while the plain majority vote measurably fails — checked over a
     fixed population so the numbers are deterministic. *)
  let boots = 20 in
  let ids = List.init 4 (fun i -> Int64.of_int (950 + i)) in
  let run env =
    List.fold_left
      (fun (plain_fails, fuzzy_fails, wrong) id ->
        let d = Device.manufacture id in
        let e = enroll_ok id in
        let reference = Device.puf_key d in
        let rec go n ((p, f, w) as acc) =
          if n = 0 then acc
          else
            let p = if Bytes.equal (Device.puf_key ~env d) reference then p else p + 1 in
            let f, w =
              match Fuzzy.reconstruct ~env d e.Enroll.helper with
              | Ok r -> (f, if Bytes.equal r.Fuzzy.key e.Enroll.key then w else w + 1)
              | Error _ -> (f + 1, w)
            in
            go (n - 1) (p, f, w)
        in
        go boots (plain_fails, fuzzy_fails, wrong))
      (0, 0, 0) ids
  in
  let plain_nom, fuzzy_nom, wrong_nom = run Env.nominal in
  check Alcotest.int "nominal: plain kfr = 0" 0 plain_nom;
  check Alcotest.int "nominal: fuzzy kfr = 0" 0 fuzzy_nom;
  let plain_stress, fuzzy_stress, wrong_stress = run Env.stress in
  check Alcotest.bool "stress: plain majority measurably fails" true (plain_stress > 0);
  check Alcotest.int "stress: fuzzy extractor survives every boot" 0 fuzzy_stress;
  check Alcotest.int "no wrong key anywhere" 0 (wrong_nom + wrong_stress)

let test_metrics_quality () =
  let r = Metrics.evaluate ~devices:12 ~challenges_per_device:48 ~reeval:8 ~seed:2024L () in
  check Alcotest.bool "uniformity near 50%" true
    (r.Metrics.uniformity_pct > 40.0 && r.Metrics.uniformity_pct < 60.0);
  check Alcotest.bool "uniqueness near 50%" true
    (r.Metrics.uniqueness_pct > 40.0 && r.Metrics.uniqueness_pct < 60.0);
  check Alcotest.bool "reliability high" true (r.Metrics.reliability_pct > 95.0);
  check Alcotest.bool "keys regenerate" true (r.Metrics.key_failure_rate < 0.01)

let test_metrics_validation () =
  Alcotest.check_raises "needs 2 devices"
    (Invalid_argument "Metrics.evaluate: need at least two devices") (fun () ->
      ignore (Metrics.evaluate ~devices:1 ~seed:1L ()))

let () =
  Alcotest.run "eric_puf"
    [ ( "arbiter",
        [ Alcotest.test_case "deterministic" `Quick test_arbiter_deterministic;
          Alcotest.test_case "sign matches delay" `Quick test_arbiter_sign_matches_delay;
          Alcotest.test_case "challenge sensitivity" `Quick test_arbiter_challenge_sensitivity;
          Alcotest.test_case "stage validation" `Quick test_arbiter_stage_validation ] );
      ( "device",
        [ Alcotest.test_case "table1 shape" `Quick test_device_table1_shape;
          Alcotest.test_case "reproducible" `Quick test_device_reproducible;
          Alcotest.test_case "unique" `Quick test_device_unique;
          Alcotest.test_case "key stable under noise" `Quick test_device_key_stable_under_noise;
          Alcotest.test_case "ideal response deterministic" `Quick
            test_device_noiseless_response_deterministic;
          Alcotest.test_case "respond arity" `Quick test_device_respond_arity ] );
      ( "env",
        [ Alcotest.test_case "nominal identity" `Quick test_env_nominal_identity;
          Alcotest.test_case "noise grows with stress" `Quick test_env_noise_grows_with_stress;
          Alcotest.test_case "of_name total" `Quick test_env_of_name_total;
          Alcotest.test_case "aging shifts responses" `Quick test_env_aging_shifts_responses ] );
      ( "enroll",
        [ Alcotest.test_case "deterministic" `Quick test_enroll_deterministic;
          Alcotest.test_case "helper round-trip" `Quick test_helper_serialize_roundtrip;
          Alcotest.test_case "parse rejects" `Quick test_helper_parse_rejects ] );
      ( "fuzzy",
        [ reconstruction_deterministic_prop;
          Alcotest.test_case "wrong device refuses" `Quick test_fuzzy_wrong_device_refuses;
          Alcotest.test_case "tamper never yields wrong key" `Quick
            test_helper_tamper_never_yields_wrong_key;
          Alcotest.test_case "corner sweep kfr" `Slow test_corner_sweep_kfr ] );
      ( "metrics",
        [ Alcotest.test_case "population quality" `Slow test_metrics_quality;
          Alcotest.test_case "validation" `Quick test_metrics_validation ] ) ]
