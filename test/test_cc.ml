(* Tests for the MiniC compiler: front-end diagnostics, IR passes,
   end-to-end golden programs, and a differential property test pitting
   compiled code (run on the simulated SoC) against an independent OCaml
   evaluator with RV64 semantics. *)

open Eric_cc

let check = Alcotest.check
let qtest ?(count = 200) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let compile_run ?options src =
  match Driver.compile ?options src with
  | Error e -> Alcotest.failf "compile error: %s" e
  | Ok image -> (
    let r = Eric_sim.Soc.run_program image in
    match r.Eric_sim.Soc.status with
    | Eric_sim.Cpu.Exited code -> (code, r.Eric_sim.Soc.output)
    | Eric_sim.Cpu.Faulted m | Eric_sim.Cpu.Integrity_fault m ->
      Alcotest.failf "runtime fault: %s (output %S)" m r.Eric_sim.Soc.output
    | Eric_sim.Cpu.Running -> Alcotest.fail "still running")

let expect_output ?options src expected =
  let _, out = compile_run ?options src in
  check Alcotest.string "output" expected out

let expect_exit ?options src expected =
  let code, _ = compile_run ?options src in
  check Alcotest.int "exit code" expected code

let compile_fails src =
  match Driver.compile src with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected a compile error for: %s" src

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "int x = 0x1F + 'a'; // comment\n" in
  let kinds = List.map (fun t -> t.Lexer.tok) toks in
  check Alcotest.bool "shape" true
    (kinds
    = [ Lexer.KW_INT; Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.INT_LIT 0x1FL; Lexer.PLUS;
        Lexer.INT_LIT 97L; Lexer.SEMI; Lexer.EOF ])

let test_lexer_operators () =
  let toks = Lexer.tokenize "<= >= == != << >> && || < >" in
  let kinds = List.map (fun t -> t.Lexer.tok) toks in
  check Alcotest.bool "operators" true
    (kinds
    = [ Lexer.LE; Lexer.GE; Lexer.EQEQ; Lexer.NEQ; Lexer.SHL; Lexer.SHR; Lexer.ANDAND;
        Lexer.OROR; Lexer.LT; Lexer.GT; Lexer.EOF ])

let test_lexer_string_escapes () =
  match (Lexer.tokenize {|"a\n\t\\\""|} : Lexer.loc_token list) with
  | [ { tok = Lexer.STR_LIT s; _ }; _ ] -> check Alcotest.string "escapes" "a\n\t\\\"" s
  | _ -> Alcotest.fail "bad token stream"

let test_lexer_errors () =
  let fails s = try ignore (Lexer.tokenize s); false with Lexer.Lex_error _ -> true in
  check Alcotest.bool "unterminated string" true (fails {|"abc|});
  check Alcotest.bool "unterminated comment" true (fails "/* abc");
  check Alcotest.bool "bad escape" true (fails {|"\q"|});
  check Alcotest.bool "stray char" true (fails "int $x;")

let test_lexer_comments_positions () =
  let toks = Lexer.tokenize "/* multi\nline */ int\nx" in
  match toks with
  | [ { tok = Lexer.KW_INT; pos = p1 }; { tok = Lexer.IDENT "x"; pos = p2 }; _ ] ->
    check Alcotest.int "int line" 2 p1.Ast.line;
    check Alcotest.int "x line" 3 p2.Ast.line
  | _ -> Alcotest.fail "bad stream"

(* ------------------------------------------------------------------ *)
(* Parser / typechecker diagnostics                                    *)
(* ------------------------------------------------------------------ *)

let test_parse_errors () =
  List.iter
    (fun src -> check Alcotest.bool src true (Result.is_error (Parser.parse src)))
    [ "int main( { return 0; }"; "int main() { return 0 }"; "int main() { if return; }";
      "int main() { int x = ; }"; "int 3x;"; "int main() { x = = 2; }" ]

let test_type_errors () =
  List.iter compile_fails
    [ "int main() { return y; }" (* undefined variable *);
      "int main() { foo(); return 0; }" (* undefined function *);
      "int main() { print_int(1, 2); return 0; }" (* arity *);
      "int main() { int x; x[0] = 1; return 0; }" (* indexing a scalar *);
      "int main() { int xs[4]; xs = 0; return 0; }" (* assigning an array *);
      "int main() { break; }" (* break outside loop *);
      "void f() { return 1; } int main() { return 0; }" (* void returns value *);
      "int main() { int *p; p = 5; return 0; }" (* int to pointer *);
      "int main() { char *c; int *i; c = i; return 0; }" (* pointer mismatch *);
      "int x; int x; int main() { return 0; }" (* duplicate global *);
      "int f() { return 0; } int f() { return 0; } int main() { return 0; }"
      (* duplicate function *);
      "int main(int a, int b, int c, int d, int e, int f, int g, int h, int i) { return 0; }"
      (* too many params *);
      "int main() { return 0; } void v; int g = v;" (* garbage *) ]

let test_no_main () =
  match Driver.compile "int f() { return 1; }" with
  | Error e -> check Alcotest.bool "mentions main" true (e = "program has no main function")
  | Ok _ -> Alcotest.fail "accepted program without main"

(* ------------------------------------------------------------------ *)
(* Golden end-to-end programs                                          *)
(* ------------------------------------------------------------------ *)

let test_arith () =
  expect_output
    {|int main() { println_int(2 + 3 * 4); println_int((2 + 3) * 4); println_int(10 / 3);
       println_int(10 % 3); println_int(-10 / 3); println_int(-10 % 3); return 0; }|}
    "14\n20\n3\n1\n-3\n-1\n"

let test_comparisons () =
  expect_output
    {|int main() {
        println_int(1 < 2); println_int(2 < 1); println_int(2 <= 2);
        println_int(3 > 2); println_int(2 >= 3); println_int(5 == 5); println_int(5 != 5);
        return 0; }|}
    "1\n0\n1\n1\n0\n1\n0\n"

let test_bitwise () =
  expect_output
    {|int main() {
        println_int(12 & 10); println_int(12 | 10); println_int(12 ^ 10);
        println_int(~0); println_int(1 << 10); println_int(-16 >> 2);
        return 0; }|}
    "8\n14\n6\n-1\n1024\n-4\n"

let test_short_circuit_effects () =
  (* The right operand must not run when the left decides. *)
  expect_output
    {|int calls = 0;
      int bump() { calls = calls + 1; return 1; }
      int main() {
        int r1 = 0 && bump();
        int r2 = 1 || bump();
        int r3 = 1 && bump();
        println_int(calls);   // only r3 evaluated bump()
        println_int(r1); println_int(r2); println_int(r3);
        return 0; }|}
    "1\n0\n1\n1\n"

let test_while_break_continue () =
  expect_output
    {|int main() {
        int s = 0;
        int i = 0;
        while (1) {
          i = i + 1;
          if (i > 10) { break; }
          if (i % 2 == 0) { continue; }
          s = s + i;
        }
        println_int(s);  // 1+3+5+7+9 = 25
        return 0; }|}
    "25\n"

let test_for_scoping () =
  expect_output
    {|int main() {
        int i = 99;
        int s = 0;
        for (int i = 0; i < 5; i = i + 1) { s = s + i; }
        println_int(s);
        println_int(i);  // outer i untouched
        return 0; }|}
    "10\n99\n"

let test_nested_loops () =
  expect_output
    {|int main() {
        int s = 0;
        for (int i = 0; i < 10; i = i + 1) {
          for (int j = 0; j < 10; j = j + 1) {
            if (j > i) { break; }
            s = s + 1;
          }
        }
        println_int(s);  // 1+2+...+10 = 55
        return 0; }|}
    "55\n"

let test_recursion_ackermann () =
  expect_output
    {|int ack(int m, int n) {
        if (m == 0) { return n + 1; }
        if (n == 0) { return ack(m - 1, 1); }
        return ack(m - 1, ack(m, n - 1));
      }
      int main() { println_int(ack(2, 3)); println_int(ack(3, 3)); return 0; }|}
    "9\n61\n"

(* Mutual recursion works without forward declarations because the
   typechecker collects every signature before checking bodies. *)
let test_mutual_recursion_two_pass () =
  expect_output
    {|int is_odd(int n) {
        if (n == 0) { return 0; }
        return is_even(n - 1);
      }
      int is_even(int n) {
        if (n == 0) { return 1; }
        return is_odd(n - 1);
      }
      int main() { println_int(is_even(10)); println_int(is_odd(7)); return 0; }|}
    "1\n1\n"

let test_global_arrays_and_strings () =
  expect_output
    {|int fib_cache[32] = {0, 1};
      char label[8] = "fib:";
      int fib(int n) {
        if (n < 2) { return fib_cache[n]; }
        if (fib_cache[n] != 0) { return fib_cache[n]; }
        int v = fib(n - 1) + fib(n - 2);
        fib_cache[n] = v;
        return v;
      }
      int main() {
        print_str(label);
        print_char(' ');
        println_int(fib(30));
        return 0; }|}
    "fib: 832040\n"

let test_char_semantics () =
  expect_output
    {|int main() {
        char c = 255;
        c = c + 1;        // wraps to 0
        println_int(c);
        char d = 'A';
        d = d + 32;
        print_char(d);    // 'a'
        print_char(10);
        char s[4];
        s[0] = 'o'; s[1] = 'k'; s[2] = 0;
        println_str(s);
        return 0; }|}
    "0\na\nok\n"

let test_pointers_and_args () =
  expect_output
    {|void fill(int *xs, int n, int base) {
        for (int i = 0; i < n; i = i + 1) { xs[i] = base + i; }
      }
      int sum(int *xs, int n) {
        int s = 0;
        for (int i = 0; i < n; i = i + 1) { s = s + xs[i]; }
        return s;
      }
      int main() {
        int data[10];
        fill(data, 10, 5);
        println_int(sum(data, 10));  // 5+6+...+14 = 95
        int *p = data;
        println_int(p[3]);           // 8
        println_int(sum(data + 2, 3)); // 7+8+9 = 24
        return 0; }|}
    "95\n8\n24\n"

let test_pointer_difference () =
  expect_output
    {|int main() {
        int xs[10];
        int *a = xs;
        int *b = xs + 7;
        println_int(b - a);
        char cs[10];
        char *c = cs;
        char *d = cs + 7;
        println_int(d - c);
        return 0; }|}
    "7\n7\n"

let test_eight_args () =
  expect_output
    {|int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
        return a + b + c + d + e + f + g + h;
      }
      int main() { println_int(sum8(1, 2, 3, 4, 5, 6, 7, 8)); return 0; }|}
    "36\n"

let test_big_frame () =
  (* Local array larger than the 12-bit immediate range forces the
     big-offset frame paths in codegen. *)
  expect_output
    {|int main() {
        int big[1000];
        for (int i = 0; i < 1000; i = i + 1) { big[i] = i; }
        int s = 0;
        for (int i = 0; i < 1000; i = i + 1) { s = s + big[i]; }
        println_int(s);
        return 0; }|}
    "499500\n"

let test_register_pressure () =
  (* More simultaneously live values than the allocator has registers. *)
  expect_output
    {|int main() {
        int a = 1; int b = 2; int c = 3; int d = 4; int e = 5; int f = 6;
        int g = 7; int h = 8; int i = 9; int j = 10; int k = 11; int l = 12;
        int m = 13; int n = 14; int o = 15; int p = 16; int q = 17; int r = 18;
        int s = a + b * c + d * e + f * g + h * i + j * k + l * m + n * o + p * q + r;
        println_int(s);
        println_int(a + b + c + d + e + f + g + h + i + j + k + l + m + n + o + p + q + r);
        return 0; }|}
    (let s = 1 + (2 * 3) + (4 * 5) + (6 * 7) + (8 * 9) + (10 * 11) + (12 * 13) + (14 * 15)
             + (16 * 17) + 18
     in
     Printf.sprintf "%d\n%d\n" s 171)

let test_exit_code () = expect_exit "int main() { return 41; }" 41

let test_exit_builtin () =
  expect_output
    {|int main() {
        println_int(1);
        exit(3);
        println_int(2);  // unreachable
        return 0; }|}
    "1\n";
  expect_exit {|int main() { exit(7); return 0; }|} 7

let test_print_int_extremes () =
  expect_output
    {|int main() {
        println_int(9223372036854775807);
        println_int(-9223372036854775807 - 1);
        println_int(0);
        return 0; }|}
    "9223372036854775807\n-9223372036854775808\n0\n"


(* ------------------------------------------------------------------ *)
(* Extended language features                                          *)
(* ------------------------------------------------------------------ *)

let test_compound_assignment () =
  expect_output
    {|int g = 10;
      int main() {
        int x = 5;
        x += 3; println_int(x);
        x <<= 2; println_int(x);
        x -= 1; x *= 2; println_int(x);
        x /= 4; println_int(x);
        x %= 4; println_int(x);
        x |= 8; x &= 12; x ^= 5; println_int(x);
        g += 5; println_int(g);
        return 0; }|}
    "8\n32\n62\n15\n3\n13\n15\n"

let test_incr_decr () =
  expect_output
    {|int main() {
        int x = 13;
        println_int(x++);
        println_int(x);
        println_int(++x);
        println_int(--x);
        println_int(x--);
        println_int(x);
        int arr[4];
        for (int i = 0; i < 4; ++i) { arr[i] = i * i; }
        arr[2]++;
        println_int(arr[2]);
        return 0; }|}
    "13\n14\n15\n14\n14\n13\n5\n"

let test_address_of_and_deref () =
  expect_output
    {|void bump(int *p, int by) { *p += by; }
      int swap_min(int *a, int *b) {
        if (*a > *b) { int t = *a; *a = *b; *b = t; }
        return *a;
      }
      int main() {
        int x = 5;
        int *p = &x;
        *p = 100;
        println_int(x);
        bump(&x, 23);
        println_int(*p);
        int lo = 9; int hi = 2;
        println_int(swap_min(&lo, &hi));
        println_int(lo); println_int(hi);
        return 0; }|}
    "100\n123\n2\n2\n9\n"

let test_pointer_incr_scaling () =
  expect_output
    {|int main() {
        int arr[5];
        for (int i = 0; i < 5; i++) { arr[i] = 10 * i; }
        int *q = arr;
        q++;
        println_int(*q);
        q += 3;
        println_int(*q);
        q--;
        println_int(*q);
        println_int(q - arr);
        char cs[4];
        cs[0] = 'a'; cs[1] = 'b';
        char *c = cs;
        c++;
        println_int(*c);
        return 0; }|}
    "10\n40\n30\n3\n98\n"

let test_ternary () =
  expect_output
    {|int sign(int v) { return v > 0 ? 1 : (v < 0 ? 0 - 1 : 0); }
      int main() {
        println_int(sign(42)); println_int(sign(-3)); println_int(sign(0));
        int a = 5;
        int b = a > 3 ? a * 2 : a / 2;
        println_int(b);
        // ternary as a call argument and with side effects only in the
        // taken branch
        int hits = 0;
        int r = 1 ? (hits = hits + 1) : (hits = hits + 100);
        println_int(r); println_int(hits);
        return 0; }|}
    "1\n-1\n0\n10\n1\n1\n"

let test_sizeof () =
  expect_output
    {|int main() {
        println_int(sizeof(int));
        println_int(sizeof(char));
        println_int(sizeof(int*));
        println_int(sizeof(char*));
        int xs[8];
        xs[sizeof(int) - 1] = 3;
        println_int(xs[7]);
        return 0; }|}
    "8\n1\n8\n8\n3\n"

let test_do_while () =
  expect_output
    {|int main() {
        int n = 0;
        do { n += 5; } while (n < 12);
        println_int(n);        // body runs until 15
        int m = 100;
        do { m = m + 1; } while (0);
        println_int(m);        // body runs exactly once
        int k = 0;
        int rounds = 0;
        do {
          rounds++;
          if (rounds == 3) { break; }
          k = k + 10;
        } while (1);
        println_int(k); println_int(rounds);
        return 0; }|}
    "15\n101\n20\n3\n"

let test_char_compound_wraps () =
  expect_output
    {|int main() {
        char c = 250;
        c += 10;
        println_int(c);   // 4
        c++;
        println_int(c);   // 5
        c -= 10;
        println_int(c);   // 251
        return 0; }|}
    "4\n5\n251\n"

let test_addressed_param () =
  (* Taking the address of a parameter forces it into the frame. *)
  expect_output
    {|int twice_via_self(int v) {
        int *p = &v;
        *p = *p * 2;
        return v;
      }
      int main() { println_int(twice_via_self(21)); return 0; }|}
    "42\n"

let test_extended_type_errors () =
  List.iter compile_fails
    [ "int main() { int x; &x = 0; return 0; }" (* & is not an lvalue *);
      "int main() { int x; *x = 1; return 0; }" (* deref of int *);
      "int main() { 5++; return 0; }" (* ++ on rvalue *);
      "int main() { int xs[3]; xs += 1; return 0; }" (* compound on array *);
      "int main() { int *p; p *= 2; return 0; }" (* * on pointer *);
      "int main() { int x = 1 ? 2 : (int*)0; return 0; }" (* parse error: cast *) ;
      "int main() { return sizeof(void); }" (* sizeof void *) ]

(* ------------------------------------------------------------------ *)
(* Pass pipeline invariants                                            *)
(* ------------------------------------------------------------------ *)

let golden_sources =
  [ "int main() { int s = 0; for (int i = 0; i < 50; i = i + 1) { s = s + i * i; } println_int(s); return s % 256; }";
    "int f(int n) { if (n < 2) { return n; } return f(n - 1) + f(n - 2); } int main() { println_int(f(15)); return 0; }";
    "char buf[64]; int main() { for (int i = 0; i < 26; i = i + 1) { buf[i] = 'a' + i; } buf[26] = 0; println_str(buf); return 0; }" ]

let test_optimize_preserves_semantics () =
  List.iter
    (fun src ->
      let opt = { Driver.default_options with Driver.optimize = true } in
      let raw = { Driver.default_options with Driver.optimize = false } in
      let c1, o1 = compile_run ~options:opt src in
      let c2, o2 = compile_run ~options:raw src in
      check Alcotest.int "exit codes agree" c1 c2;
      check Alcotest.string "outputs agree" o1 o2)
    golden_sources

let test_compress_preserves_semantics () =
  List.iter
    (fun src ->
      let on = { Driver.default_options with Driver.compress = true } in
      let off = { Driver.default_options with Driver.compress = false } in
      let c1, o1 = compile_run ~options:on src in
      let c2, o2 = compile_run ~options:off src in
      check Alcotest.int "exit codes agree" c1 c2;
      check Alcotest.string "outputs agree" o1 o2)
    golden_sources

let test_optimizer_shrinks_ir () =
  let src =
    "int main() { int x = 2 + 3; int dead = 100 * 100; int y = x * 1 + 0; println_int(y); return 0; }"
  in
  let count options =
    match Driver.compile_to_ir ~options src with
    | Ok ir ->
      List.fold_left (fun acc f -> acc + Ir.instruction_count f) 0 ir.Ir.p_funcs
    | Error e -> Alcotest.fail e
  in
  let optimised = count { Driver.default_options with Driver.optimize = true } in
  let plain = count { Driver.default_options with Driver.optimize = false } in
  check Alcotest.bool "fewer instructions" true (optimised < plain)

let test_const_fold_unit () =
  (* div by zero must not fold (runtime semantics), algebra must. *)
  let block = { Ir.b_label = 0; body = [ Ir.Bin (Ir.Div, 0, Ir.Imm 1L, Ir.Imm 0L);
                                         Ir.Bin (Ir.Add, 1, Ir.Temp 0, Ir.Imm 0L) ];
                term = Ir.Ret (Some (Ir.Temp 1)) }
  in
  let f = { Ir.f_name = "t"; f_params = []; f_blocks = [ block ]; f_slots = []; f_temp_count = 2 } in
  ignore (Opt.const_fold f);
  (match (List.hd f.Ir.f_blocks).Ir.body with
  | [ Ir.Bin (Ir.Div, _, _, _); Ir.Move (1, Ir.Temp 0) ] -> ()
  | _ -> Alcotest.fail "unexpected fold result")


let simple_func blocks temp_count =
  { Ir.f_name = "t"; f_params = []; f_blocks = blocks; f_slots = []; f_temp_count = temp_count }

let test_copy_prop_unit () =
  (* t1 = t0; t2 = t1 + 1  ==>  t2 = t0 + 1 *)
  let b =
    { Ir.b_label = 0;
      body = [ Ir.Move (1, Ir.Temp 0); Ir.Bin (Ir.Add, 2, Ir.Temp 1, Ir.Imm 1L) ];
      term = Ir.Ret (Some (Ir.Temp 2)) }
  in
  let f = simple_func [ b ] 3 in
  check Alcotest.bool "changed" true (Opt.copy_prop f);
  (match (List.hd f.Ir.f_blocks).Ir.body with
  | [ Ir.Move _; Ir.Bin (Ir.Add, 2, Ir.Temp 0, Ir.Imm 1L) ] -> ()
  | _ -> Alcotest.fail "copy not propagated");
  (* redefinition kills the mapping: t1 = t0; t0 = 5; t2 = t1 must still
     read the OLD t0 - so t1 must NOT be replaced by t0 after the kill *)
  let b2 =
    { Ir.b_label = 0;
      body = [ Ir.Move (1, Ir.Temp 0); Ir.Move (0, Ir.Imm 5L); Ir.Move (2, Ir.Temp 1) ];
      term = Ir.Ret (Some (Ir.Temp 2)) }
  in
  let f2 = simple_func [ b2 ] 3 in
  ignore (Opt.copy_prop f2);
  (match (List.hd f2.Ir.f_blocks).Ir.body with
  | [ _; _; Ir.Move (2, Ir.Temp 1) ] -> ()
  | [ _; _; Ir.Move (2, v) ] ->
    Alcotest.failf "stale propagation to %s" (Format.asprintf "%a" Ir.pp_value v)
  | _ -> Alcotest.fail "unexpected shape")

let test_dce_unit () =
  (* dead pure instruction removed; side-effecting kept *)
  let b =
    { Ir.b_label = 0;
      body =
        [ Ir.Bin (Ir.Mul, 0, Ir.Imm 100L, Ir.Imm 100L) (* dead *);
          Ir.Store (Ir.W64, Ir.Imm 0x11000L, Ir.Imm 1L) (* kept: side effect *);
          Ir.Bin (Ir.Add, 1, Ir.Imm 1L, Ir.Imm 2L) (* live via ret *) ];
      term = Ir.Ret (Some (Ir.Temp 1)) }
  in
  let f = simple_func [ b ] 2 in
  check Alcotest.bool "changed" true (Opt.dce f);
  (match (List.hd f.Ir.f_blocks).Ir.body with
  | [ Ir.Store _; Ir.Bin (Ir.Add, 1, _, _) ] -> ()
  | body -> Alcotest.failf "unexpected %d instrs" (List.length body))

let test_dce_transitive () =
  (* chain of dead temps collapses entirely *)
  let b =
    { Ir.b_label = 0;
      body =
        [ Ir.Bin (Ir.Add, 0, Ir.Imm 1L, Ir.Imm 2L); Ir.Bin (Ir.Add, 1, Ir.Temp 0, Ir.Imm 3L);
          Ir.Bin (Ir.Add, 2, Ir.Temp 1, Ir.Imm 4L) ];
      term = Ir.Ret None }
  in
  let f = simple_func [ b ] 3 in
  ignore (Opt.dce f);
  check Alcotest.int "all dead removed" 0 (List.length (List.hd f.Ir.f_blocks).Ir.body)

let test_simplify_cfg_unit () =
  (* constant branch folds, unreachable block drops, empty block threads *)
  let entry = { Ir.b_label = 0; body = []; term = Ir.Br (Ir.Imm 1L, 1, 2) } in
  let fwd = { Ir.b_label = 1; body = []; term = Ir.Jmp 3 } in
  let dead = { Ir.b_label = 2; body = []; term = Ir.Ret None } in
  let final = { Ir.b_label = 3; body = []; term = Ir.Ret (Some (Ir.Imm 7L)) } in
  let f = simple_func [ entry; fwd; dead; final ] 0 in
  check Alcotest.bool "changed" true (Opt.simplify_cfg f);
  let labels = List.map (fun b -> b.Ir.b_label) f.Ir.f_blocks in
  check Alcotest.bool "dead block gone" false (List.mem 2 labels);
  (match (List.hd f.Ir.f_blocks).Ir.term with
  | Ir.Jmp target -> check Alcotest.bool "threads through the empty block" true (target = 3 || target = 1)
  | _ -> Alcotest.fail "branch did not fold")

let test_regalloc_assigns_everything () =
  (* every temp referenced by the IR ends up with a register or a slot *)
  let src =
    "int f(int a, int b) { int c = a * b; int d = c + a; return d - b; }\n\
     int main() { println_int(f(6, 7)); return 0; }"
  in
  match Driver.compile_to_ir src with
  | Error e -> Alcotest.fail e
  | Ok ir ->
    List.iter
      (fun f ->
        let alloc = Regalloc.allocate f in
        List.iter
          (fun b ->
            List.iter
              (fun i ->
                List.iter
                  (fun t ->
                    match Hashtbl.find_opt alloc.Regalloc.assign t with
                    | Some _ -> ()
                    | None -> Alcotest.failf "%s: t%d unassigned" f.Ir.f_name t)
                  (Ir.uses_of i @ Option.to_list (Ir.def_of i)))
              b.Ir.body)
          f.Ir.f_blocks)
      ir.Ir.p_funcs

let test_regalloc_call_crossing_callee_saved () =
  (* temps live across a call must not sit in caller-saved registers *)
  let src =
    "int g(int x) { return x + 1; }\n\
     int main() { int keep = 41; int r = g(1); println_int(keep + r); return 0; }"
  in
  (* without optimisation so the constant is not propagated past the call *)
  match Driver.compile_to_ir ~options:{ Driver.default_options with Driver.optimize = false } src with
  | Error e -> Alcotest.fail e
  | Ok ir ->
    let f = List.find (fun f -> f.Ir.f_name = "main") ir.Ir.p_funcs in
    let alloc = Regalloc.allocate f in
    (* just assert the compiled program is right - the golden check - and
       that at least one callee-saved register or spill was used *)
    check Alcotest.bool "uses callee-saved or spill" true
      (alloc.Regalloc.used_callee_saved <> [] || alloc.Regalloc.spill_slots > 0);
    expect_output src "43\n"


let test_runtime_string_helpers () =
  expect_output
    {|char buf[32];
      char other[32];
      int main() {
        strcpy(buf, "hello");
        println_int(strlen(buf));                 // 5
        println_int(strcmp(buf, "hello"));        // 0
        println_int(strcmp(buf, "help") < 0);     // 'l' < 'p' -> 1
        println_int(strcmp("b", "a"));            // 1
        strcpy(other, buf);
        memset(other, 'x', 2);
        println_str(other);                       // xxllo
        memcpy(buf + 1, other, 3);
        println_str(buf);                         // hxxlo
        println_int(memcmp(buf, buf, 5));         // 0
        println_int(memcmp("abc", "abd", 3) != 0);// 1
        return 0; }|}
    "5\n0\n1\n1\nxxllo\nhxxlo\n0\n1\n"

let test_linker_gc_drops_unused_prelude () =
  (* A program that calls nothing from the runtime must be much smaller
     than one that uses print_int (which drags in the decimal printer). *)
  let bare = "int main() { __exit(7); return 0; }" in
  let printing = "int main() { println_int(7); return 0; }" in
  let size src =
    match Driver.compile src with
    | Ok img -> Eric_rv.Program.text_size img
    | Error e -> Alcotest.fail e
  in
  check Alcotest.bool "unused runtime dropped" true (size bare * 2 < size printing);
  expect_exit bare 7

let test_linker_gc_keeps_recursion () =
  (* mutual recursion must survive the reachability walk *)
  expect_output
    {|int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
      int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
      int main() { println_int(even(8)); return 0; }|}
    "1\n"


let test_strength_reduction () =
  let b =
    { Ir.b_label = 0;
      body = [ Ir.Bin (Ir.Mul, 1, Ir.Temp 0, Ir.Imm 8L); Ir.Bin (Ir.Mul, 2, Ir.Imm 16L, Ir.Temp 1);
               Ir.Bin (Ir.Mul, 3, Ir.Temp 2, Ir.Imm 6L) (* not a power of two *) ];
      term = Ir.Ret (Some (Ir.Temp 3)) }
  in
  let f = simple_func [ b ] 4 in
  ignore (Opt.const_fold f);
  (match (List.hd f.Ir.f_blocks).Ir.body with
  | [ Ir.Bin (Ir.Shl, 1, Ir.Temp 0, Ir.Imm 3L); Ir.Bin (Ir.Shl, 2, Ir.Temp 1, Ir.Imm 4L);
      Ir.Bin (Ir.Mul, 3, _, _) ] -> ()
  | _ -> Alcotest.fail "strength reduction mismatch");
  (* semantics preserved end to end, including negatives and wraparound *)
  expect_output
    "int main() { int x = -7; println_int(x * 8); println_int(x * 1024); int y = 3; println_int(y * 4 * 4); return 0; }"
    "-56\n-7168\n48\n"


let test_emit_assembly_roundtrip () =
  (* -S output re-assembled must behave identically to direct compilation,
     for a program covering data, bss, strings, calls and loops. *)
  let src =
    {|int table[6] = {5, 4, 3, 2, 1, 0};
      int counters[4];
      char tag[8] = "sum";
      int main() {
        int s = 0;
        for (int i = 0; i < 6; i++) { s += table[i] * i; counters[i % 4]++; }
        print_str(tag); print_char(61); println_int(s);
        println_int(counters[0] + 10 * counters[1]);
        return s % 7;
      }|}
  in
  let asm_text =
    match Driver.compile_to_assembly src with Ok t -> t | Error e -> Alcotest.fail e
  in
  check Alcotest.bool "mentions main" true
    (let contains hay needle =
       let n = String.length needle in
       let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
       go 0
     in
     contains asm_text "main:" && contains asm_text ".data" && contains asm_text ".bss");
  let direct = compile_run src in
  let via_asm =
    match Eric_rv.Asm.assemble asm_text with
    | Error e -> Alcotest.failf "reassembly failed: %s" e
    | Ok image -> (
      let r = Eric_sim.Soc.run_program image in
      match r.Eric_sim.Soc.status with
      | Eric_sim.Cpu.Exited code -> (code, r.Eric_sim.Soc.output)
      | _ -> Alcotest.fail "asm build did not exit")
  in
  check Alcotest.int "same exit" (fst direct) (fst via_asm);
  check Alcotest.string "same output" (snd direct) (snd via_asm)

let test_emit_assembly_workloads () =
  (* the -S roundtrip holds for real workloads too *)
  List.iter
    (fun name ->
      let w = Option.get (Eric_workloads.Workloads.by_name name) in
      let src = w.Eric_workloads.Workloads.source_small in
      let asm_text =
        match Driver.compile_to_assembly src with Ok t -> t | Error e -> Alcotest.fail e
      in
      let direct = compile_run src in
      match Eric_rv.Asm.assemble asm_text with
      | Error e -> Alcotest.failf "%s: reassembly failed: %s" name e
      | Ok image ->
        let r = Eric_sim.Soc.run_program image in
        check Alcotest.string (name ^ " output") (snd direct) r.Eric_sim.Soc.output)
    [ "crc32"; "adpcm" ]


let test_cse_unit () =
  (* identical pure computations collapse; commutativity is normalised *)
  let b =
    { Ir.b_label = 0;
      body =
        [ Ir.Bin (Ir.Add, 1, Ir.Temp 0, Ir.Imm 8L); Ir.Bin (Ir.Add, 2, Ir.Imm 8L, Ir.Temp 0);
          Ir.Bin (Ir.Add, 3, Ir.Temp 1, Ir.Temp 2) ];
      term = Ir.Ret (Some (Ir.Temp 3)) }
  in
  let f = simple_func [ b ] 4 in
  check Alcotest.bool "changed" true (Opt.cse f);
  (match (List.hd f.Ir.f_blocks).Ir.body with
  | [ Ir.Bin _; Ir.Move (2, Ir.Temp 1); Ir.Bin _ ] -> ()
  | _ -> Alcotest.fail "commuted duplicate not eliminated")

let test_cse_redefinition_safe () =
  (* d = d + 1 twice must NOT collapse: the second reads the new d *)
  let b =
    { Ir.b_label = 0;
      body = [ Ir.Bin (Ir.Add, 0, Ir.Temp 0, Ir.Imm 1L); Ir.Bin (Ir.Add, 0, Ir.Temp 0, Ir.Imm 1L) ];
      term = Ir.Ret (Some (Ir.Temp 0)) }
  in
  let f = simple_func [ b ] 1 in
  ignore (Opt.cse f);
  (match (List.hd f.Ir.f_blocks).Ir.body with
  | [ Ir.Bin _; Ir.Bin _ ] -> ()
  | _ -> Alcotest.fail "self-referential increment was wrongly eliminated");
  (* and operand redefinition invalidates the cached expression *)
  let b2 =
    { Ir.b_label = 0;
      body =
        [ Ir.Bin (Ir.Add, 1, Ir.Temp 0, Ir.Imm 8L); Ir.Move (0, Ir.Imm 5L);
          Ir.Bin (Ir.Add, 2, Ir.Temp 0, Ir.Imm 8L) ];
      term = Ir.Ret (Some (Ir.Temp 2)) }
  in
  let f2 = simple_func [ b2 ] 3 in
  ignore (Opt.cse f2);
  (match (List.hd f2.Ir.f_blocks).Ir.body with
  | [ Ir.Bin _; Ir.Move _; Ir.Bin _ ] -> ()
  | _ -> Alcotest.fail "stale expression survived an operand redefinition")

let test_cse_shrinks_array_loops () =
  (* array writes + reads at the same index share address computations *)
  let src =
    "int xs[8];\n\
     int main() { int s = 0; for (int i = 0; i < 8; i++) { xs[i] = i; s += xs[i]; } println_int(s); return 0; }"
  in
  let count options =
    match Driver.compile_to_ir ~options src with
    | Ok ir -> List.fold_left (fun acc f -> acc + Ir.instruction_count f) 0 ir.Ir.p_funcs
    | Error e -> Alcotest.fail e
  in
  check Alcotest.bool "optimised smaller" true
    (count Driver.default_options
    < count { Driver.default_options with Driver.optimize = false });
  expect_output src "28\n"


let test_counter_intrinsics () =
  expect_output
    {|int main() {
        int c0 = __cycles();
        int i0 = __instret();
        int s = 0;
        for (int i = 0; i < 100; i++) { s += i; }
        int c1 = __cycles();
        int i1 = __instret();
        println_int(s);
        println_int(c1 > c0);        // time moved forward
        println_int(i1 - i0 > 300);  // the loop retired > 300 instructions
        println_int(i1 - i0 < 2000); // ... but not thousands
        return 0; }|}
    "4950\n1\n1\n1\n"

(* ------------------------------------------------------------------ *)
(* Differential testing: random expressions                            *)
(* ------------------------------------------------------------------ *)

type expr =
  | Lit of int64
  | Var of int (* index into the fixed variable set *)
  | Un of string * expr
  | Bin of string * expr * expr

let var_values = [| 7L; -3L; 1000L; -123456789L; 0x0F0F0F0FL |]

let rec gen_expr depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof [ map (fun v -> Lit (Int64.of_int v)) (int_range (-1000) 1000);
            map (fun i -> Var i) (int_bound (Array.length var_values - 1)) ]
  else
    let sub = gen_expr (depth - 1) in
    frequency
      [ (1, map (fun v -> Lit (Int64.of_int v)) (int_range (-1000) 1000));
        (1, map (fun i -> Var i) (int_bound (Array.length var_values - 1)));
        (2, map2 (fun op e -> Un (op, e)) (oneofl [ "-"; "~"; "!" ]) sub);
        (6, map3 (fun op a b -> Bin (op, a, b))
             (oneofl [ "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "<"; "<="; ">"; ">="; "=="; "!=" ])
             sub sub);
        (1, map2 (fun a sh -> Bin ("<<", a, Lit (Int64.of_int sh))) sub (int_bound 20));
        (1, map2 (fun a sh -> Bin (">>", a, Lit (Int64.of_int sh))) sub (int_bound 20)) ]

let rec print_expr = function
  | Lit v -> if Int64.compare v 0L < 0 then Printf.sprintf "(0 - %Ld)" (Int64.neg v) else Int64.to_string v
  | Var i -> Printf.sprintf "v%d" i
  | Un (op, e) -> Printf.sprintf "(%s%s)" op (print_expr e)
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (print_expr a) op (print_expr b)

(* RV64 semantics reference evaluator. *)
let rec eval = function
  | Lit v -> v
  | Var i -> var_values.(i)
  | Un ("-", e) -> Int64.neg (eval e)
  | Un ("~", e) -> Int64.lognot (eval e)
  | Un ("!", e) -> if eval e = 0L then 1L else 0L
  | Un (op, _) -> failwith ("bad unop " ^ op)
  | Bin (op, a, b) -> (
    let x = eval a and y = eval b in
    let bool_ c = if c then 1L else 0L in
    match op with
    | "+" -> Int64.add x y
    | "-" -> Int64.sub x y
    | "*" -> Int64.mul x y
    | "/" -> if y = 0L then -1L else if x = Int64.min_int && y = -1L then Int64.min_int else Int64.div x y
    | "%" -> if y = 0L then x else if x = Int64.min_int && y = -1L then 0L else Int64.rem x y
    | "&" -> Int64.logand x y
    | "|" -> Int64.logor x y
    | "^" -> Int64.logxor x y
    | "<<" -> Int64.shift_left x (Int64.to_int (Int64.logand y 63L))
    | ">>" -> Int64.shift_right x (Int64.to_int (Int64.logand y 63L))
    | "<" -> bool_ (Int64.compare x y < 0)
    | "<=" -> bool_ (Int64.compare x y <= 0)
    | ">" -> bool_ (Int64.compare x y > 0)
    | ">=" -> bool_ (Int64.compare x y >= 0)
    | "==" -> bool_ (Int64.equal x y)
    | "!=" -> bool_ (not (Int64.equal x y))
    | _ -> failwith ("bad binop " ^ op))

let arb_expr = QCheck.make ~print:print_expr (gen_expr 4)

let differential_expressions =
  qtest ~count:150 "compiled expression = reference evaluation" arb_expr (fun e ->
      let expected = eval e in
      let decls =
        String.concat "\n"
          (List.mapi (fun i v -> Printf.sprintf "int v%d = %Ld;" i v)
             (Array.to_list var_values))
      in
      (* variables as globals so the compiler cannot constant-fold them
         away (their initialisers are runtime data in .data) *)
      let src =
        Printf.sprintf "%s\nint main() { println_int(%s); return 0; }" decls (print_expr e)
      in
      let _, out = compile_run src in
      out = Printf.sprintf "%Ld\n" expected)

let differential_unoptimised =
  qtest ~count:60 "unoptimised compiled expression = reference" arb_expr (fun e ->
      let expected = eval e in
      let decls =
        String.concat "\n"
          (List.mapi (fun i v -> Printf.sprintf "int v%d = %Ld;" i v)
             (Array.to_list var_values))
      in
      let src =
        Printf.sprintf "%s\nint main() { println_int(%s); return 0; }" decls (print_expr e)
      in
      let _, out =
        compile_run ~options:{ Driver.default_options with Driver.optimize = false } src
      in
      out = Printf.sprintf "%Ld\n" expected)


(* ------------------------------------------------------------------ *)
(* Differential testing: random statement-level programs               *)
(* ------------------------------------------------------------------ *)

type rstmt =
  | R_assign of int * expr
  | R_compound of string * int * expr
  | R_incr of int * bool
  | R_if of expr * rstmt list * rstmt list
  | R_for of int * rstmt list  (** literal iteration count; fresh counter *)

let num_vars = Array.length var_values

let rec gen_rstmt depth =
  let open QCheck.Gen in
  let var = int_bound (num_vars - 1) in
  let expr = gen_expr 2 in
  if depth = 0 then
    frequency
      [ (4, map2 (fun v e -> R_assign (v, e)) var expr);
        (3, map3 (fun op v e -> R_compound (op, v, e))
             (oneofl [ "+="; "-="; "*="; "&="; "|="; "^=" ]) var expr);
        (2, map2 (fun v up -> R_incr (v, up)) var bool) ]
  else
    frequency
      [ (4, map2 (fun v e -> R_assign (v, e)) var expr);
        (3, map3 (fun op v e -> R_compound (op, v, e))
             (oneofl [ "+="; "-="; "*="; "&="; "|="; "^=" ]) var expr);
        (2, map2 (fun v up -> R_incr (v, up)) var bool);
        (2, map3 (fun c t e -> R_if (c, t, e)) expr
             (list_size (int_bound 3) (gen_rstmt (depth - 1)))
             (list_size (int_bound 2) (gen_rstmt (depth - 1))));
        (2, map2 (fun n body -> R_for (1 + n, body)) (int_bound 5)
             (list_size (int_bound 3) (gen_rstmt (depth - 1)))) ]

let rec print_rstmt ~indent counter stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | R_assign (v, e) -> Printf.sprintf "%sv%d = %s;" pad v (print_expr e)
  | R_compound (op, v, e) -> Printf.sprintf "%sv%d %s %s;" pad v op (print_expr e)
  | R_incr (v, true) -> Printf.sprintf "%sv%d++;" pad v
  | R_incr (v, false) -> Printf.sprintf "%sv%d--;" pad v
  | R_if (c, t, e) ->
    Printf.sprintf "%sif (%s) {\n%s\n%s} else {\n%s\n%s}" pad (print_expr c)
      (print_rstmts ~indent:(indent + 2) counter t)
      pad
      (print_rstmts ~indent:(indent + 2) counter e)
      pad
  | R_for (n, body) ->
    let c = !counter in
    incr counter;
    Printf.sprintf "%sfor (int it%d = 0; it%d < %d; it%d++) {\n%s\n%s}" pad c c n c
      (print_rstmts ~indent:(indent + 2) counter body)
      pad

and print_rstmts ~indent counter stmts =
  String.concat "\n" (List.map (print_rstmt ~indent counter) stmts)

(* Reference interpreter with RV64 semantics over a mutable environment. *)
let rec exec_rstmt env stmt =
  let eval_with e =
    (* reuse the expression evaluator, reading vars from env *)
    let rec ev = function
      | Lit v -> v
      | Var i -> env.(i)
      | Un (op, e) -> eval (Un (op, Lit (ev e)))
      | Bin (op, a, b) -> eval (Bin (op, Lit (ev a), Lit (ev b)))
    in
    ev e
  in
  match stmt with
  | R_assign (v, e) -> env.(v) <- eval_with e
  | R_compound (op, v, e) ->
    let rhs = eval_with e in
    let binop = String.sub op 0 (String.length op - 1) in
    env.(v) <- eval (Bin (binop, Lit env.(v), Lit rhs))
  | R_incr (v, up) -> env.(v) <- Int64.add env.(v) (if up then 1L else -1L)
  | R_if (c, t, e) -> if eval_with c <> 0L then List.iter (exec_rstmt env) t else List.iter (exec_rstmt env) e
  | R_for (n, body) ->
    for _ = 1 to n do
      List.iter (exec_rstmt env) body
    done

let rec rstmt_print_ast stmt =
  match stmt with
  | R_assign (v, e) -> Printf.sprintf "v%d = %s" v (print_expr e)
  | R_compound (op, v, e) -> Printf.sprintf "v%d %s %s" v op (print_expr e)
  | R_incr (v, up) -> Printf.sprintf "v%d%s" v (if up then "++" else "--")
  | R_if (c, t, e) ->
    Printf.sprintf "if(%s){%s}else{%s}" (print_expr c)
      (String.concat "; " (List.map rstmt_print_ast t))
      (String.concat "; " (List.map rstmt_print_ast e))
  | R_for (n, body) ->
    Printf.sprintf "for(%d){%s}" n (String.concat "; " (List.map rstmt_print_ast body))

let arb_program =
  QCheck.make
    ~print:(fun stmts -> String.concat "\n" (List.map rstmt_print_ast stmts))
    QCheck.Gen.(list_size (int_bound 6) (gen_rstmt 2))

let differential_programs =
  qtest ~count:60 "compiled random program = reference interpreter" arb_program (fun stmts ->
      (* initial values exercise negatives and large magnitudes *)
      let init = [| 3L; -17L; 123456789L; -2L; 0x0F0F0F0FL |] in
      let env = Array.copy init in
      List.iter (exec_rstmt env) stmts;
      let counter = ref 0 in
      let body = print_rstmts ~indent:2 counter stmts in
      let decls =
        String.concat "\n"
          (List.mapi (fun i v -> Printf.sprintf "  int v%d = %Ld;" i v) (Array.to_list init))
      in
      let prints =
        String.concat "\n"
          (List.init num_vars (fun i -> Printf.sprintf "  println_int(v%d);" i))
      in
      let src = Printf.sprintf "int main() {\n%s\n%s\n%s\n  return 0;\n}" decls body prints in
      let _, out = compile_run src in
      let expected =
        String.concat "" (List.map (Printf.sprintf "%Ld\n") (Array.to_list env))
      in
      (* three-way: the IR interpreter must agree with both the reference
         evaluator and the compiled program on the SoC *)
      let interp_out =
        match Driver.compile_to_ir src with
        | Ok ir -> (Ir_interp.run ir).Ir_interp.output
        | Error e -> Alcotest.fail e
      in
      out = expected && interp_out = expected)

let () =
  Alcotest.run "eric_cc"
    [ ( "lexer",
        [ Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "string escapes" `Quick test_lexer_string_escapes;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "comments and positions" `Quick test_lexer_comments_positions ] );
      ( "diagnostics",
        [ Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "type errors" `Quick test_type_errors;
          Alcotest.test_case "no main" `Quick test_no_main ] );
      ( "golden",
        [ Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "bitwise" `Quick test_bitwise;
          Alcotest.test_case "short circuit" `Quick test_short_circuit_effects;
          Alcotest.test_case "while/break/continue" `Quick test_while_break_continue;
          Alcotest.test_case "for scoping" `Quick test_for_scoping;
          Alcotest.test_case "nested loops" `Quick test_nested_loops;
          Alcotest.test_case "ackermann" `Quick test_recursion_ackermann;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion_two_pass;
          Alcotest.test_case "global arrays and strings" `Quick test_global_arrays_and_strings;
          Alcotest.test_case "char semantics" `Quick test_char_semantics;
          Alcotest.test_case "pointers and args" `Quick test_pointers_and_args;
          Alcotest.test_case "pointer difference" `Quick test_pointer_difference;
          Alcotest.test_case "eight args" `Quick test_eight_args;
          Alcotest.test_case "big frame" `Quick test_big_frame;
          Alcotest.test_case "register pressure" `Quick test_register_pressure;
          Alcotest.test_case "exit code" `Quick test_exit_code;
          Alcotest.test_case "exit builtin" `Quick test_exit_builtin;
          Alcotest.test_case "print_int extremes" `Quick test_print_int_extremes ] );
      ( "extended-language",
        [ Alcotest.test_case "compound assignment" `Quick test_compound_assignment;
          Alcotest.test_case "incr/decr" `Quick test_incr_decr;
          Alcotest.test_case "address-of and deref" `Quick test_address_of_and_deref;
          Alcotest.test_case "pointer incr scaling" `Quick test_pointer_incr_scaling;
          Alcotest.test_case "ternary" `Quick test_ternary;
          Alcotest.test_case "sizeof" `Quick test_sizeof;
          Alcotest.test_case "do-while" `Quick test_do_while;
          Alcotest.test_case "char compound wraps" `Quick test_char_compound_wraps;
          Alcotest.test_case "addressed parameter" `Quick test_addressed_param;
          Alcotest.test_case "type errors" `Quick test_extended_type_errors;
          Alcotest.test_case "runtime string helpers" `Quick test_runtime_string_helpers;
          Alcotest.test_case "linker GC drops unused" `Quick test_linker_gc_drops_unused_prelude;
          Alcotest.test_case "linker GC keeps recursion" `Quick test_linker_gc_keeps_recursion;
          Alcotest.test_case "counter intrinsics" `Quick test_counter_intrinsics ] );
      ( "passes",
        [ Alcotest.test_case "optimize preserves semantics" `Quick test_optimize_preserves_semantics;
          Alcotest.test_case "compress preserves semantics" `Quick test_compress_preserves_semantics;
          Alcotest.test_case "optimizer shrinks IR" `Quick test_optimizer_shrinks_ir;
          Alcotest.test_case "const fold unit" `Quick test_const_fold_unit;
          Alcotest.test_case "copy prop unit" `Quick test_copy_prop_unit;
          Alcotest.test_case "dce unit" `Quick test_dce_unit;
          Alcotest.test_case "dce transitive" `Quick test_dce_transitive;
          Alcotest.test_case "simplify cfg unit" `Quick test_simplify_cfg_unit;
          Alcotest.test_case "regalloc coverage" `Quick test_regalloc_assigns_everything;
          Alcotest.test_case "regalloc call crossing" `Quick test_regalloc_call_crossing_callee_saved;
          Alcotest.test_case "strength reduction" `Quick test_strength_reduction;
          Alcotest.test_case "emit-asm roundtrip" `Quick test_emit_assembly_roundtrip;
          Alcotest.test_case "emit-asm workloads" `Slow test_emit_assembly_workloads;
          Alcotest.test_case "cse unit" `Quick test_cse_unit;
          Alcotest.test_case "cse redefinition safety" `Quick test_cse_redefinition_safe;
          Alcotest.test_case "cse shrinks loops" `Quick test_cse_shrinks_array_loops ] );
      ( "differential",
        [ differential_expressions; differential_unoptimised; differential_programs ] ) ]
