(* The verification harness has to be trustworthy before anything it says
   about the toolchain is: these tests pin the generator's determinism and
   totality, the oracle's agreement on known-good programs, the shrinker's
   minimality on a synthetic predicate, the corpus round-trip, and the
   injection engine's 100%-detection obligation on signed regions. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_gen_deterministic () =
  let a = Eric_verif.Gen.generate ~seed:42L () in
  let b = Eric_verif.Gen.generate ~seed:42L () in
  check Alcotest.string "same seed, same source" a.Eric_verif.Gen.source b.Eric_verif.Gen.source;
  check
    Alcotest.(array int)
    "same seed, same trace" a.Eric_verif.Gen.trace b.Eric_verif.Gen.trace;
  let c = Eric_verif.Gen.generate ~seed:43L () in
  check Alcotest.bool "different seed, different program" false
    (a.Eric_verif.Gen.source = c.Eric_verif.Gen.source)

let test_gen_trace_replay_identity () =
  (* the recorded trace is canonical: replaying it regenerates the very
     same program and the very same trace (fixpoint) *)
  List.iter
    (fun seed ->
      let g = Eric_verif.Gen.generate ~seed () in
      let r = Eric_verif.Gen.of_trace g.Eric_verif.Gen.trace in
      check Alcotest.string "replay reproduces source" g.Eric_verif.Gen.source
        r.Eric_verif.Gen.source;
      check
        Alcotest.(array int)
        "replay reproduces trace" g.Eric_verif.Gen.trace r.Eric_verif.Gen.trace)
    [ 1L; 2L; 77L; 0xDEADL; -5L ]

let compiles source =
  match Eric_cc.Driver.compile ~options:Eric_cc.Driver.default_options source with
  | Ok _ -> true
  | Error _ -> false

let test_gen_total_over_arbitrary_traces () =
  (* any int array replays to some valid program: of_trace never raises
     and the result always compiles *)
  let test =
    QCheck.Test.make ~count:60 ~name:"of_trace total"
      QCheck.(array_of_size (Gen.int_bound 200) (int_range (-1000) 1000))
      (fun arr ->
        let g = Eric_verif.Gen.of_trace arr in
        String.length g.Eric_verif.Gen.source > 0 && compiles g.Eric_verif.Gen.source)
  in
  QCheck.Test.check_exn test

let test_gen_empty_and_tiny_traces () =
  List.iter
    (fun arr ->
      let g = Eric_verif.Gen.of_trace arr in
      check Alcotest.bool "degenerate trace compiles" true (compiles g.Eric_verif.Gen.source))
    [ [||]; [| 0 |]; [| max_int |]; [| -1; -1; -1 |]; Array.make 500 9999 ]

let test_mutation_total () =
  let rng = Eric_util.Prng.create ~seed:0x515CL in
  let base = (Eric_verif.Gen.generate ~seed:7L ()).Eric_verif.Gen.trace in
  for _ = 1 to 40 do
    let m = Eric_verif.Mutate.mutate ~rng base in
    let g = Eric_verif.Gen.of_trace m in
    check Alcotest.bool "mutant compiles" true (compiles g.Eric_verif.Gen.source)
  done;
  let other = (Eric_verif.Gen.generate ~seed:8L ()).Eric_verif.Gen.trace in
  for _ = 1 to 10 do
    let x = Eric_verif.Mutate.crossover ~rng base other in
    let g = Eric_verif.Gen.of_trace x in
    check Alcotest.bool "crossover compiles" true (compiles g.Eric_verif.Gen.source)
  done

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

let test_oracle_agreement () =
  List.iter
    (fun seed ->
      let g = Eric_verif.Gen.generate ~seed () in
      match Eric_verif.Oracle.run g.Eric_verif.Gen.source with
      | Error msg -> Alcotest.failf "seed %Ld failed to compile: %s" seed msg
      | Ok report ->
        if not (Eric_verif.Oracle.agree report) then
          Alcotest.failf "seed %Ld diverges:@.%a@.%s" seed Eric_verif.Oracle.pp_report report
            g.Eric_verif.Gen.source)
    [ 101L; 102L; 103L; 104L; 105L; 106L ]

let test_oracle_agreement_partial_mode () =
  List.iter
    (fun seed ->
      let g = Eric_verif.Gen.generate ~seed () in
      match
        Eric_verif.Oracle.run ~mode:(Eric.Config.Partial Eric.Config.Select_all)
          g.Eric_verif.Gen.source
      with
      | Error msg -> Alcotest.failf "seed %Ld failed to compile: %s" seed msg
      | Ok report ->
        check Alcotest.bool "partial mode agrees" true (Eric_verif.Oracle.agree report))
    [ 201L; 202L; 203L ]

let test_oracle_behaviour_classes () =
  let open Eric_verif.Oracle in
  check Alcotest.bool "same exit agrees" true
    (behaviour_equal (Exit { code = 3; output = "x" }) (Exit { code = 3; output = "x" }));
  check Alcotest.bool "different output disagrees" false
    (behaviour_equal (Exit { code = 3; output = "x" }) (Exit { code = 3; output = "y" }));
  check Alcotest.bool "trap messages not compared" true
    (behaviour_equal (Trap "load fault") (Trap "store fault"));
  check Alcotest.bool "refusal never equals execution" false
    (behaviour_equal (Refused "sig") (Exit { code = 0; output = "" }));
  check Alcotest.bool "exhaustion never equals execution" false
    (behaviour_equal Exhausted (Exit { code = 0; output = "" }));
  check Alcotest.bool "exhaustion never equals a trap" false
    (behaviour_equal Exhausted (Trap "fault"));
  check Alcotest.bool "exhausted report flagged" true
    (exhausted
       { interp = Exit { code = 0; output = "" };
         plain = Exhausted;
         encrypted = Exhausted });
  check Alcotest.bool "complete report not flagged" false
    (exhausted
       { interp = Exit { code = 0; output = "" };
         plain = Trap "x";
         encrypted = Refused "y" });
  check Alcotest.bool "refusal disagrees in a report" false
    (agree
       { interp = Exit { code = 0; output = "" };
         plain = Exit { code = 0; output = "" };
         encrypted = Refused "sig" })

let test_oracle_fixed_program () =
  match Eric_verif.Oracle.run "int main() { println_int(6 * 7); return 5; }" with
  | Error msg -> Alcotest.fail msg
  | Ok r -> (
    check Alcotest.bool "agrees" true (Eric_verif.Oracle.agree r);
    match r.Eric_verif.Oracle.plain with
    | Eric_verif.Oracle.Exit { code; output } ->
      check Alcotest.int "exit code" 5 code;
      check Alcotest.string "output" "42\n" output
    | b -> Alcotest.failf "unexpected behaviour %a" Eric_verif.Oracle.pp_behaviour b)

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)
(* ------------------------------------------------------------------ *)

let test_shrink_synthetic_predicate () =
  (* "contains an element >= 7" minimises to a single 7 *)
  let failing arr = Array.exists (fun v -> v >= 7) arr in
  let start = [| 3; 9; 1; 12; 0; 44; 2 |] in
  let minimized, tests = Eric_verif.Shrink.minimize ~failing start in
  check Alcotest.bool "still fails" true (failing minimized);
  check Alcotest.int "minimal length" 1 (Array.length minimized);
  check Alcotest.int "minimal value" 7 minimized.(0);
  check Alcotest.bool "spent some tests" true (tests > 1)

let test_shrink_non_failing_input () =
  let minimized, tests = Eric_verif.Shrink.minimize ~failing:(fun _ -> false) [| 1; 2; 3 |] in
  check Alcotest.(array int) "returned unchanged" [| 1; 2; 3 |] minimized;
  check Alcotest.int "one test" 1 tests

let test_shrink_respects_budget () =
  let calls = ref 0 in
  let failing arr =
    incr calls;
    Array.length arr > 0
  in
  let _, tests = Eric_verif.Shrink.minimize ~max_tests:25 ~failing (Array.make 200 5) in
  check Alcotest.bool "stayed within budget" true (tests <= 25 + 2);
  check Alcotest.int "tests counted accurately" !calls tests

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let sample_entry =
  { Eric_verif.Corpus.kind = Eric_verif.Corpus.Divergence;
    seed = 0xABCL;
    trace = [| 4; 0; 17; 3 |];
    source = "int main() {\n  return 0;\n}\n";
    note = "interp=Exit(0) plain=Exit(1)" }

let test_corpus_roundtrip () =
  let s = Eric_verif.Corpus.to_string sample_entry in
  match Eric_verif.Corpus.parse s with
  | Error msg -> Alcotest.fail msg
  | Ok e ->
    check Alcotest.bool "kind" true (e.Eric_verif.Corpus.kind = Eric_verif.Corpus.Divergence);
    check Alcotest.int64 "seed" sample_entry.Eric_verif.Corpus.seed e.Eric_verif.Corpus.seed;
    check
      Alcotest.(array int)
      "trace" sample_entry.Eric_verif.Corpus.trace e.Eric_verif.Corpus.trace;
    check Alcotest.string "source" sample_entry.Eric_verif.Corpus.source
      e.Eric_verif.Corpus.source;
    check Alcotest.string "note" sample_entry.Eric_verif.Corpus.note e.Eric_verif.Corpus.note

let test_corpus_escape_kind_roundtrip () =
  let entry =
    { sample_entry with
      Eric_verif.Corpus.kind =
        Eric_verif.Corpus.Injection_escape { region = "payload"; bit = 133 } }
  in
  match Eric_verif.Corpus.parse (Eric_verif.Corpus.to_string entry) with
  | Error msg -> Alcotest.fail msg
  | Ok e -> (
    match e.Eric_verif.Corpus.kind with
    | Eric_verif.Corpus.Injection_escape { region; bit } ->
      check Alcotest.string "region" "payload" region;
      check Alcotest.int "bit" 133 bit
    | _ -> Alcotest.fail "wrong kind")

let with_tmp_dir f =
  let dir = Filename.temp_file "eric_verif_corpus" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_corpus_save_load_list () =
  with_tmp_dir (fun dir ->
      let path =
        match Eric_verif.Corpus.save ~dir sample_entry with
        | Ok p -> p
        | Error e -> Alcotest.fail e
      in
      check Alcotest.bool "file exists" true (Sys.file_exists path);
      (match Eric_verif.Corpus.load path with
      | Ok e ->
        check Alcotest.string "load round-trips source" sample_entry.Eric_verif.Corpus.source
          e.Eric_verif.Corpus.source
      | Error e -> Alcotest.fail e);
      match Eric_verif.Corpus.list ~dir with
      | [ (p, Ok _) ] -> check Alcotest.string "list finds it" path p
      | l -> Alcotest.failf "expected one readable entry, got %d" (List.length l))

let test_corpus_rejects_garbage () =
  check Alcotest.bool "garbage is an error" true
    (Result.is_error (Eric_verif.Corpus.parse "not a reproducer"))

(* ------------------------------------------------------------------ *)
(* Injection                                                           *)
(* ------------------------------------------------------------------ *)

let inject_source =
  "int g[2] = {5, 6};\n\
   int main() { int i; int acc; acc = g[0]; for (i = 0; i < 8; i = i + 1) { acc = acc + i; } \
   print_str(\"acc=\"); println_int(acc + g[1]); return acc & 255; }"

let test_inject_wire_all_detected () =
  let config =
    { Eric_verif.Inject.default_config with Eric_verif.Inject.count = 200 }
  in
  match Eric_verif.Inject.campaign ~config inject_source with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
    check Alcotest.int "no silent corruption in signed regions" 0
      (Eric_verif.Inject.silent_total report);
    check (Alcotest.float 0.0001) "full detection coverage" 1.0
      (Eric_verif.Inject.detection_coverage report);
    check Alcotest.int "one row per wire region"
      (List.length Eric_verif.Inject.wire_regions)
      (List.length report.Eric_verif.Inject.rows);
    List.iter
      (fun row ->
        check Alcotest.bool "every region got injections" true
          (row.Eric_verif.Inject.injections > 0);
        check Alcotest.int "nothing masked on the wire" 0 row.Eric_verif.Inject.masked)
      report.Eric_verif.Inject.rows

let test_inject_key_never_validates () =
  let config =
    { Eric_verif.Inject.default_config with
      Eric_verif.Inject.count = 100;
      regions = [ Eric_verif.Inject.Key ] }
  in
  match Eric_verif.Inject.campaign ~config inject_source with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
    check Alcotest.int "wrong key never validates" 0 (Eric_verif.Inject.silent_total report);
    List.iter
      (fun row ->
        check Alcotest.int "all detected" row.Eric_verif.Inject.injections
          row.Eric_verif.Inject.detected)
      report.Eric_verif.Inject.rows

let test_inject_empty_region_is_error () =
  (* full encryption has no map: requesting Map must be a loud error,
     not a vacuous 100% *)
  let config =
    { Eric_verif.Inject.default_config with
      Eric_verif.Inject.mode = Eric.Config.Full;
      count = 10;
      regions = [ Eric_verif.Inject.Map ] }
  in
  check Alcotest.bool "empty region refused" true
    (Result.is_error (Eric_verif.Inject.campaign ~config inject_source))

let test_inject_dram_guard_coverage () =
  (* the tentpole claim at test scale: an unguarded Dram campaign leaks
     silent corruptions, the same flips under fetch+scrub do not *)
  let base =
    { Eric_verif.Inject.default_config with
      Eric_verif.Inject.count = 120;
      seed = 0x5C12BL;
      regions = [ Eric_verif.Inject.Dram ] }
  in
  let run config =
    match Eric_verif.Inject.campaign ~config inject_source with
    | Error msg -> Alcotest.fail msg
    | Ok report -> report
  in
  let off = run base in
  let guarded =
    run
      { base with
        Eric_verif.Inject.guard =
          Eric_hw.Guard.fetch_and_scrub ~interval_cycles:256 }
  in
  check Alcotest.bool "unguarded DRAM leaks silent corruption" true
    (Eric_verif.Inject.silent_total off > 0);
  check Alcotest.bool "guarded coverage >= 0.99" true
    (Eric_verif.Inject.detection_coverage guarded >= 0.99);
  check Alcotest.bool "guard work is billed" true
    (guarded.Eric_verif.Inject.dram_overhead > 0.0);
  check (Alcotest.float 1e-9) "no guard, no billed overhead" 0.0
    off.Eric_verif.Inject.dram_overhead

let test_inject_escape_replay () =
  (* an escape carries (seed, iter): re-running the campaign with
     count = e_iter under e_seed makes it the final shot, exactly *)
  let config =
    { Eric_verif.Inject.default_config with
      Eric_verif.Inject.count = 120;
      seed = 0x5C12BL;
      regions = [ Eric_verif.Inject.Dram ] }
  in
  match Eric_verif.Inject.campaign ~config inject_source with
  | Error msg -> Alcotest.fail msg
  | Ok report -> (
    match report.Eric_verif.Inject.escapes with
    | [] -> Alcotest.fail "expected at least one unguarded DRAM escape"
    | e :: _ ->
      check Alcotest.int64 "escape records the campaign seed"
        config.Eric_verif.Inject.seed e.Eric_verif.Inject.e_seed;
      check Alcotest.bool "iteration within campaign" true
        (e.Eric_verif.Inject.e_iter >= 1
        && e.Eric_verif.Inject.e_iter <= config.Eric_verif.Inject.count);
      let replay_config =
        { config with
          Eric_verif.Inject.seed = e.Eric_verif.Inject.e_seed;
          count = e.Eric_verif.Inject.e_iter }
      in
      (match Eric_verif.Inject.campaign ~config:replay_config inject_source with
      | Error msg -> Alcotest.fail msg
      | Ok replayed ->
        let last =
          List.nth replayed.Eric_verif.Inject.escapes
            (List.length replayed.Eric_verif.Inject.escapes - 1)
        in
        check Alcotest.bool "replay reproduces the escape as its final shot"
          true
          (last.Eric_verif.Inject.e_region = e.Eric_verif.Inject.e_region
          && last.Eric_verif.Inject.e_bit = e.Eric_verif.Inject.e_bit
          && last.Eric_verif.Inject.e_iter = e.Eric_verif.Inject.e_iter));
      let cmd =
        Eric_verif.Inject.replay_command
          ~regions:config.Eric_verif.Inject.regions e
      in
      let contains_sub hay needle =
        let h = String.length hay and n = String.length needle in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      check Alcotest.bool "replay command names the seed" true
        (contains_sub cmd (Printf.sprintf "0x%Lx" e.Eric_verif.Inject.e_seed));
      check Alcotest.bool "replay command names the count" true
        (contains_sub cmd (Printf.sprintf "--count %d" e.Eric_verif.Inject.e_iter)))

let test_inject_json_stable () =
  let config =
    { Eric_verif.Inject.default_config with
      Eric_verif.Inject.count = 40;
      seed = 0x1A2BL;
      regions = [ Eric_verif.Inject.Dram ] }
  in
  let render () =
    match Eric_verif.Inject.campaign ~config inject_source with
    | Error msg -> Alcotest.fail msg
    | Ok report ->
      Eric_telemetry.Json.to_string (Eric_verif.Inject.report_to_json config report)
  in
  let a = render () in
  check Alcotest.string "report JSON deterministic" a (render ());
  (match Eric_telemetry.Json.of_string a with
  | Error msg -> Alcotest.failf "report JSON does not parse: %s" msg
  | Ok json ->
    check Alcotest.bool "report JSON carries escapes" true
      (Option.is_some (Eric_telemetry.Json.member "escapes" json)));
  let mechanisms =
    [ Eric_hw.Guard.Off; Eric_hw.Guard.Scrub { interval_cycles = 256 } ]
  in
  match
    Eric_verif.Inject.dram_sweep ~config ~mechanisms inject_source
  with
  | Error msg -> Alcotest.fail msg
  | Ok points ->
    check Alcotest.int "one sweep point per mechanism" (List.length mechanisms)
      (List.length points);
    let sweep = Eric_telemetry.Json.to_string (Eric_verif.Inject.sweep_to_json points) in
    check Alcotest.bool "sweep JSON parses" true
      (Result.is_ok (Eric_telemetry.Json.of_string sweep))

let test_inject_region_names () =
  List.iter
    (fun r ->
      match Eric_verif.Inject.region_of_string (Eric_verif.Inject.region_name r) with
      | Ok r' -> check Alcotest.bool "name round-trips" true (r = r')
      | Error e -> Alcotest.fail e)
    Eric_verif.Inject.all_regions;
  check Alcotest.bool "unknown region rejected" true
    (Result.is_error (Eric_verif.Inject.region_of_string "flux-capacitor"))

(* ------------------------------------------------------------------ *)
(* Fuzz campaign                                                       *)
(* ------------------------------------------------------------------ *)

let test_fuzz_small_campaign_clean () =
  let config =
    { Eric_verif.Fuzz.default_config with Eric_verif.Fuzz.count = 30; seed = 0xBEEFL }
  in
  let outcome = Eric_verif.Fuzz.run ~config () in
  check Alcotest.int "ran all programs" 30 outcome.Eric_verif.Fuzz.stats.Eric_verif.Fuzz.programs;
  check Alcotest.int "no divergences" 0
    outcome.Eric_verif.Fuzz.stats.Eric_verif.Fuzz.divergences;
  check Alcotest.int "no compile errors" 0
    outcome.Eric_verif.Fuzz.stats.Eric_verif.Fuzz.compile_errors;
  check Alcotest.int "no failures recorded" 0 (List.length outcome.Eric_verif.Fuzz.failures)

let test_fuzz_deterministic () =
  let config =
    { Eric_verif.Fuzz.default_config with Eric_verif.Fuzz.count = 10; seed = 0xD15EL }
  in
  let a = Eric_verif.Fuzz.run ~config () in
  let b = Eric_verif.Fuzz.run ~config () in
  check Alcotest.int "same mutated count"
    a.Eric_verif.Fuzz.stats.Eric_verif.Fuzz.mutated
    b.Eric_verif.Fuzz.stats.Eric_verif.Fuzz.mutated;
  check Alcotest.int "same divergences"
    a.Eric_verif.Fuzz.stats.Eric_verif.Fuzz.divergences
    b.Eric_verif.Fuzz.stats.Eric_verif.Fuzz.divergences

let () =
  Alcotest.run "eric_verif"
    [ ( "gen",
        [ Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "trace replay identity" `Quick test_gen_trace_replay_identity;
          Alcotest.test_case "total over arbitrary traces" `Slow
            test_gen_total_over_arbitrary_traces;
          Alcotest.test_case "degenerate traces" `Quick test_gen_empty_and_tiny_traces;
          Alcotest.test_case "mutation total" `Quick test_mutation_total ] );
      ( "oracle",
        [ Alcotest.test_case "agreement on generated programs" `Slow test_oracle_agreement;
          Alcotest.test_case "agreement in partial mode" `Slow
            test_oracle_agreement_partial_mode;
          Alcotest.test_case "behaviour classes" `Quick test_oracle_behaviour_classes;
          Alcotest.test_case "fixed program" `Quick test_oracle_fixed_program ] );
      ( "shrink",
        [ Alcotest.test_case "synthetic predicate minimal" `Quick
            test_shrink_synthetic_predicate;
          Alcotest.test_case "non-failing input unchanged" `Quick test_shrink_non_failing_input;
          Alcotest.test_case "budget respected" `Quick test_shrink_respects_budget ] );
      ( "corpus",
        [ Alcotest.test_case "round-trip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "escape kind round-trip" `Quick test_corpus_escape_kind_roundtrip;
          Alcotest.test_case "save/load/list" `Quick test_corpus_save_load_list;
          Alcotest.test_case "rejects garbage" `Quick test_corpus_rejects_garbage ] );
      ( "inject",
        [ Alcotest.test_case "wire regions fully detected" `Slow test_inject_wire_all_detected;
          Alcotest.test_case "key flips never validate" `Slow test_inject_key_never_validates;
          Alcotest.test_case "empty region is an error" `Quick test_inject_empty_region_is_error;
          Alcotest.test_case "DRAM guard coverage" `Slow test_inject_dram_guard_coverage;
          Alcotest.test_case "escape replay" `Slow test_inject_escape_replay;
          Alcotest.test_case "JSON stable" `Slow test_inject_json_stable;
          Alcotest.test_case "region names round-trip" `Quick test_inject_region_names ] );
      ( "fuzz",
        [ Alcotest.test_case "small clean campaign" `Slow test_fuzz_small_campaign_clean;
          Alcotest.test_case "deterministic" `Slow test_fuzz_deterministic ] ) ]
