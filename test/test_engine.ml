(* Tests for the campaign engine: stage pipeline semantics, admit/skip,
   retry + simulated backoff accounting, quarantine on non-retryable or
   exhausted faults, windowed in-index-order commits, and the core
   determinism contract — the deterministic and domain schedulers must
   produce identical outcome arrays for pure per-item jobs. *)

module Engine = Eric_engine.Engine
module Job = Eric_engine.Job

let check = Alcotest.check

(* A spec whose stages each add a tagged amount, so the final value
   proves every stage ran exactly once and in order. *)
let counting_spec () =
  let ran = Array.make 4 0 in
  let stage k f x =
    ran.(k) <- ran.(k) + 1;
    f x
  in
  ( ran,
    {
      Job.admit = Job.always_admit;
      prepare = stage 0 (fun i -> Ok (i + 1));
      personalize = stage 1 (fun x -> Ok (x * 10));
      ship = stage 2 (fun x -> Ok (x + 3));
      verify = stage 3 (fun x -> Ok (x * 100));
    } )

let test_run_once_stages () =
  let ran, spec = counting_spec () in
  (match Job.run_once spec 4 with
  | Ok r -> check Alcotest.int "(4+1)*10+3 then *100" (((4 + 1) * 10) + 3) (r / 100)
  | Error f -> Alcotest.failf "unexpected fault: %a" Job.pp_fault f);
  Array.iteri (fun i n -> check Alcotest.int (Printf.sprintf "stage %d ran once" i) 1 n) ran

let test_run_once_fault_stops () =
  let ran, spec = counting_spec () in
  let spec = { spec with Job.ship = (fun _ -> Error (Job.fault Job.Ship "no route")) } in
  (match Job.run_once spec 1 with
  | Ok _ -> Alcotest.fail "should have faulted at ship"
  | Error f ->
    check Alcotest.string "stage label" "ship" (Job.stage_label f.Job.f_stage);
    check Alcotest.bool "not retryable by default" false f.Job.f_retryable);
  check Alcotest.int "verify never ran" 0 ran.(3)

let items n = Array.init n (fun i -> i)

let test_admit_skips () =
  let ran, spec = counting_spec () in
  let spec =
    { spec with Job.admit = (fun i -> if i mod 2 = 0 then Some "even is benched" else None) }
  in
  let r = Engine.run ~name:"t.admit" spec (items 6) in
  check Alcotest.int "three skipped" 3 r.Engine.skipped;
  check Alcotest.int "three done" 3 r.Engine.jobs_done;
  check Alcotest.int "skipped jobs never touch stages" 3 ran.(0);
  Array.iteri
    (fun i c ->
      check Alcotest.int "index recorded" i c.Engine.c_index;
      match c.Engine.c_outcome with
      | Job.Skipped reason ->
        check Alcotest.bool "even skipped" true (i mod 2 = 0);
        check Alcotest.string "reason carried" "even is benched" reason;
        check Alcotest.int "no attempts for a skip" 0 c.Engine.c_attempts
      | Job.Done _ -> check Alcotest.bool "odd done" true (i mod 2 = 1)
      | Job.Faulted f -> Alcotest.failf "unexpected fault: %a" Job.pp_fault f)
    r.Engine.completions

(* Per-item attempt counters: item-owned state, so the determinism
   contract still holds. Fails the first [fail_first] tries of each item. *)
let flaky_spec ~fail_first ~retryable n =
  let tries = Array.make n 0 in
  {
    Job.admit = Job.always_admit;
    prepare = (fun i -> Ok i);
    personalize = (fun i -> Ok i);
    ship =
      (fun i ->
        tries.(i) <- tries.(i) + 1;
        if tries.(i) <= fail_first then Error (Job.fault ~retryable Job.Ship "flaky link")
        else Ok i);
    verify = (fun i -> Ok i);
  }

let retry_config =
  {
    Engine.default_config with
    Engine.retries = 3;
    retry_delay_ns = 10L;
    max_delay_ns = 40L;
  }

let test_retry_then_done () =
  let spec = flaky_spec ~fail_first:2 ~retryable:true 4 in
  let r = Engine.run ~config:retry_config ~name:"t.retry" spec (items 4) in
  check Alcotest.int "all delivered" 4 r.Engine.jobs_done;
  check Alcotest.int "all retried" 4 r.Engine.retried_jobs;
  Array.iter
    (fun c ->
      check Alcotest.int "third attempt succeeded" 3 c.Engine.c_attempts;
      (* doubling from 10ns: retry 1 = 10, retry 2 = 20 *)
      check Alcotest.int64 "backoff accounted" 30L c.Engine.c_backoff_ns)
    r.Engine.completions;
  check Alcotest.int64 "report sums backoff" 120L r.Engine.backoff_ns

let test_non_retryable_quarantines () =
  let spec = flaky_spec ~fail_first:1 ~retryable:false 3 in
  let r = Engine.run ~config:retry_config ~name:"t.quarantine" spec (items 3) in
  check Alcotest.int "all quarantined" 3 r.Engine.quarantined;
  check Alcotest.int "none retried" 0 r.Engine.retried_jobs;
  Array.iter
    (fun c ->
      check Alcotest.int "gave up on first attempt" 1 c.Engine.c_attempts;
      check Alcotest.int64 "no backoff" 0L c.Engine.c_backoff_ns;
      match c.Engine.c_outcome with
      | Job.Faulted f -> check Alcotest.string "ship fault" "ship" (Job.stage_label f.Job.f_stage)
      | _ -> Alcotest.fail "expected Faulted")
    r.Engine.completions

let test_retries_exhausted () =
  let spec = flaky_spec ~fail_first:max_int ~retryable:true 2 in
  let r = Engine.run ~config:retry_config ~name:"t.exhaust" spec (items 2) in
  check Alcotest.int "all quarantined" 2 r.Engine.quarantined;
  Array.iter
    (fun c ->
      check Alcotest.int "1 + 3 retries" 4 c.Engine.c_attempts;
      (* 10 + 20 + 40(capped) *)
      check Alcotest.int64 "capped doubling backoff" 70L c.Engine.c_backoff_ns)
    r.Engine.completions

let test_commit_order_windowed () =
  let n = 23 in
  let _, spec = counting_spec () in
  let order = ref [] in
  let config = { Engine.default_config with Engine.window = 4 } in
  let commit (c : _ Engine.completion) = order := c.Engine.c_index :: !order in
  let r = Engine.run ~config ~commit ~name:"t.window" spec (items n) in
  check Alcotest.int "everything queued" n r.Engine.queued;
  check (Alcotest.list Alcotest.int) "commits replayed in index order"
    (List.init n (fun i -> i))
    (List.rev !order);
  Array.iteri (fun i c -> check Alcotest.int "c_index = slot" i c.Engine.c_index) r.Engine.completions

let test_bad_config_rejected () =
  let _, spec = counting_spec () in
  let raises what config =
    match Engine.run ~config ~name:"t.bad" spec (items 1) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (what ^ " accepted")
  in
  raises "window 0" { Engine.default_config with Engine.window = 0 };
  raises "negative retries" { Engine.default_config with Engine.retries = -1 }

let outcome_key = function
  | Job.Done r -> Printf.sprintf "done:%d" r
  | Job.Faulted f -> Printf.sprintf "faulted:%s:%s" (Job.stage_label f.Job.f_stage) f.Job.f_reason
  | Job.Skipped s -> "skipped:" ^ s

(* The determinism gate in miniature: a mixed fleet of skips, faults,
   retryable flakes and successes must complete identically under both
   schedulers, including attempt and backoff accounting. *)
let mixed_spec n =
  let flaky = flaky_spec ~fail_first:1 ~retryable:true n in
  {
    flaky with
    Job.admit = (fun i -> if i mod 7 = 0 then Some "sampled out" else None);
    prepare =
      (fun i -> if i mod 5 = 3 then Error (Job.fault Job.Prepare "bad die") else Ok i);
    ship =
      (fun i ->
        if i mod 3 = 1 then flaky.Job.ship i
        else Ok i);
  }

let run_mixed scheduler n =
  let config = { retry_config with Engine.scheduler; window = 16 } in
  Engine.run ~config ~name:"t.det" (mixed_spec n) (items n)

let test_deterministic_vs_domains () =
  let n = 200 in
  let a = run_mixed Engine.Deterministic n in
  let b = run_mixed (Engine.Domains 3) n in
  check Alcotest.int "same queued" a.Engine.queued b.Engine.queued;
  check Alcotest.int "same done" a.Engine.jobs_done b.Engine.jobs_done;
  check Alcotest.int "same quarantined" a.Engine.quarantined b.Engine.quarantined;
  check Alcotest.int "same skipped" a.Engine.skipped b.Engine.skipped;
  check Alcotest.int "same retried" a.Engine.retried_jobs b.Engine.retried_jobs;
  check Alcotest.int64 "same total backoff" a.Engine.backoff_ns b.Engine.backoff_ns;
  Array.iteri
    (fun i (ca : _ Engine.completion) ->
      let cb = b.Engine.completions.(i) in
      check Alcotest.string
        (Printf.sprintf "job %d same outcome" i)
        (outcome_key ca.Engine.c_outcome) (outcome_key cb.Engine.c_outcome);
      check Alcotest.int
        (Printf.sprintf "job %d same attempts" i)
        ca.Engine.c_attempts cb.Engine.c_attempts;
      check Alcotest.int64
        (Printf.sprintf "job %d same backoff" i)
        ca.Engine.c_backoff_ns cb.Engine.c_backoff_ns)
    a.Engine.completions

let test_scheduler_of_string () =
  let ok s = match Engine.scheduler_of_string s with Ok c -> c | Error e -> Alcotest.fail e in
  check Alcotest.bool "deterministic" true (ok "deterministic" = Engine.Deterministic);
  check Alcotest.bool "det alias" true (ok "det" = Engine.Deterministic);
  check Alcotest.bool "domains" true (ok "domains" = Engine.Domains 0);
  check Alcotest.bool "domains:4" true (ok "domains:4" = Engine.Domains 4);
  List.iter
    (fun s ->
      match Engine.scheduler_of_string s with
      | Ok _ -> Alcotest.fail (s ^ " accepted")
      | Error _ -> ())
    [ "bogus"; "domains:0"; "domains:-2"; "domains:x"; "" ];
  check Alcotest.string "label round-trips" "domains:4"
    (Engine.scheduler_label (ok (Engine.scheduler_label (Engine.Domains 4))))

let test_report_shape () =
  let _, spec = counting_spec () in
  let r = Engine.run ~name:"t.report" spec (items 50) in
  check Alcotest.string "deterministic label" "deterministic" r.Engine.scheduler_used;
  check Alcotest.int "one worker" 1 (Array.length r.Engine.workers);
  check Alcotest.int "worker saw every job" 50 r.Engine.workers.(0).Engine.w_jobs;
  check Alcotest.bool "throughput positive" true (Engine.throughput_per_s r > 0.0);
  check Alcotest.bool "utilization sane" true
    (r.Engine.utilization >= 0.0 && r.Engine.utilization <= 1.5);
  (* empty runs don't divide by zero *)
  let empty = Engine.run ~name:"t.empty" spec [||] in
  check Alcotest.int "empty queued" 0 empty.Engine.queued;
  check (Alcotest.float 0.0) "empty utilization" 0.0 empty.Engine.utilization

let () =
  Alcotest.run "engine"
    [
      ( "job",
        [
          Alcotest.test_case "stages run in order" `Quick test_run_once_stages;
          Alcotest.test_case "fault stops the pipeline" `Quick test_run_once_fault_stops;
        ] );
      ( "engine",
        [
          Alcotest.test_case "admit benches items as skipped" `Quick test_admit_skips;
          Alcotest.test_case "retryable faults retry then deliver" `Quick test_retry_then_done;
          Alcotest.test_case "non-retryable faults quarantine" `Quick
            test_non_retryable_quarantines;
          Alcotest.test_case "exhausted retries quarantine" `Quick test_retries_exhausted;
          Alcotest.test_case "windowed commits replay in index order" `Quick
            test_commit_order_windowed;
          Alcotest.test_case "invalid configs rejected" `Quick test_bad_config_rejected;
          Alcotest.test_case "report shape and telemetry-free math" `Quick test_report_shape;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "deterministic = domains, job for job" `Quick
            test_deterministic_vs_domains;
          Alcotest.test_case "scheduler_of_string" `Quick test_scheduler_of_string;
        ] );
    ]
