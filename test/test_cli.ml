(* End-to-end checks that eric_cli fails *cleanly* on malformed input:
   a clear "error: ..." line on stderr and a non-zero exit code, never an
   uncaught exception trace. Runs the real executable via Sys.command. *)

let check = Alcotest.check

(* Under `dune runtest` the cwd is _build/default/test; under a direct
   `dune exec test/test_cli.exe` it is the workspace root. *)
let cli =
  let candidates =
    [ Filename.concat (Filename.dirname (Sys.getcwd ())) "bin/eric_cli.exe";
      "_build/default/bin/eric_cli.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> Alcotest.fail "eric_cli.exe not built"

let with_tmp f =
  let path = Filename.temp_file "eric_cli_test" ".bin" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let write path (bytes : bytes) =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc bytes)

(* Run the CLI, returning (exit_code, stderr). Quoting is fine here: every
   argument we pass is a temp-file path or a plain flag. *)
let run_cli args =
  with_tmp (fun err_file ->
      let cmd =
        Printf.sprintf "%s %s 2> %s" (Filename.quote cli)
          (String.concat " " (List.map Filename.quote args))
          (Filename.quote err_file)
      in
      let code = Sys.command cmd in
      let ic = open_in_bin err_file in
      let err =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (code, err))

let expect_clean_failure what (code, err) =
  check Alcotest.bool (what ^ ": non-zero exit") true (code <> 0);
  let starts_with prefix s =
    String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix
  in
  check Alcotest.bool (what ^ ": stderr starts with 'error:'") true (starts_with "error:" err);
  check Alcotest.bool (what ^ ": no exception trace") false
    (List.exists
       (fun marker ->
         let rec contains i =
           i + String.length marker <= String.length err
           && (String.sub err i (String.length marker) = marker || contains (i + 1))
         in
         contains 0)
       [ "Fatal error"; "Raised at"; "Backtrace" ])

let make_registry path n =
  let reg = Eric_fleet.Registry.create () in
  for i = 1 to n do
    match Eric_fleet.Registry.enroll reg (Int64.of_int (7_000 + i)) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  Eric_fleet.Registry.save reg path;
  reg

let test_truncated_registry () =
  with_tmp (fun path ->
      ignore (make_registry path 3);
      let full = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
      (* cut mid-record, the shape a crashed writer or bad copy leaves *)
      write path (Bytes.sub full 0 (Bytes.length full - 7));
      expect_clean_failure "truncated registry"
        (run_cli [ "fleet"; "status"; "--registry"; path ]))

let test_corrupt_registry_magic () =
  with_tmp (fun path ->
      ignore (make_registry path 1);
      let full = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
      Bytes.set full 0 'X';
      write path full;
      expect_clean_failure "bad registry magic"
        (run_cli [ "fleet"; "status"; "--registry"; path ]))

let test_missing_registry () =
  let code, err = run_cli [ "fleet"; "status"; "--registry"; "/nonexistent/fleet.efrg" ] in
  expect_clean_failure "missing registry" (code, err);
  let rec contains i =
    let m = "does not exist" in
    i + String.length m <= String.length err
    && (String.sub err i (String.length m) = m || contains (i + 1))
  in
  check Alcotest.bool "message says what to do" true (contains 0)

let test_garbage_package () =
  with_tmp (fun path ->
      write path (Bytes.of_string "this is not a package");
      expect_clean_failure "garbage package" (run_cli [ "run"; path ]))

let test_truncated_package () =
  with_tmp (fun path ->
      let key = Eric.Target.derived_key (Eric.Target.of_id 808L) in
      let build =
        match
          Eric.Source.build ~mode:Eric.Config.Full ~key
            "int main() { println_int(1); return 0; }"
        with
        | Ok b -> b
        | Error e -> Alcotest.fail e
      in
      let wire = Eric.Package.serialize build.Eric.Source.package in
      write path (Bytes.sub wire 0 (Bytes.length wire / 2));
      expect_clean_failure "truncated package" (run_cli [ "run"; path ]))

(* ------------------------------------------------------------------ *)
(* Exit codes: each failure class maps to its documented code          *)
(*   1 internal, 3 failures found, 4 malformed input, 5 refused        *)
(* ------------------------------------------------------------------ *)

let expect_code what expected (code, err) =
  expect_clean_failure what (code, err);
  check Alcotest.int (what ^ ": exit code") expected code

let test_exit_code_malformed () =
  with_tmp (fun path ->
      write path (Bytes.of_string "this is not a package");
      expect_code "garbage run" 4 (run_cli [ "run"; path ]);
      expect_code "garbage inspect" 4 (run_cli [ "inspect"; path ]);
      expect_code "garbage disasm" 4 (run_cli [ "disasm"; path ]))

let build_package ~device_id source =
  let key = Eric.Target.derived_key (Eric.Target.of_id device_id) in
  match Eric.Source.build ~mode:Eric.Config.Full ~key source with
  | Ok b -> Eric.Package.serialize b.Eric.Source.package
  | Error e -> Alcotest.fail e

let test_exit_code_refused () =
  with_tmp (fun path ->
      (* valid package, wrong device: the HDE refuses the signature -> 5 *)
      write path (build_package ~device_id:808L "int main() { println_int(1); return 0; }");
      expect_code "wrong device" 5 (run_cli [ "run"; path; "--device-id"; "809" ]))

let test_exit_code_truncated_is_malformed () =
  with_tmp (fun path ->
      let wire = build_package ~device_id:808L "int main() { println_int(1); return 0; }" in
      write path (Bytes.sub wire 0 (Bytes.length wire / 2));
      expect_code "truncated package" 4 (run_cli [ "run"; path; "--device-id"; "808" ]))

let test_exit_code_program_exit_passthrough () =
  with_tmp (fun path ->
      write path (build_package ~device_id:808L "int main() { return 42; }");
      let code, _ = run_cli [ "run"; path; "--device-id"; "808" ] in
      check Alcotest.int "program exit code passes through" 42 code)

let test_exit_code_internal () =
  with_tmp (fun path ->
      write path (Bytes.of_string "int main() { return syntax error here; }");
      (* compile failure is an internal-error class, not malformed input *)
      let path_mc = path ^ ".mc" in
      Sys.rename path path_mc;
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path_mc then Sys.remove path_mc)
        (fun () -> expect_code "compile error" 1 (run_cli [ "compile"; path_mc ])))

(* ------------------------------------------------------------------ *)
(* verif subcommands through the real binary                           *)
(* ------------------------------------------------------------------ *)

let test_verif_fuzz_smoke () =
  let code, err = run_cli [ "verif"; "fuzz"; "--count"; "15"; "--quiet" ] in
  check Alcotest.int "verif fuzz clean run" 0 code;
  check Alcotest.bool "no error output" false
    (String.length err >= 6 && String.sub err 0 6 = "error:")

let test_verif_inject_smoke () =
  let code, _ =
    run_cli [ "verif"; "inject"; "--region"; "signature,payload,map"; "--count"; "60" ]
  in
  check Alcotest.int "wire injections all detected" 0 code

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_verif_inject_guard_json_out () =
  (* the CI guard-smoke invocation: guarded dram campaign, JSON artifact
     written via --out, coverage gated via --min-coverage *)
  with_tmp (fun out ->
      let code, err =
        run_cli
          [ "verif"; "inject"; "--regions"; "dram"; "--count"; "80";
            "--guard"; "fetch+scrub:256"; "--json"; "--out"; out;
            "--min-coverage"; "99" ]
      in
      check Alcotest.int "guarded dram campaign passes the gate" 0 code;
      check Alcotest.bool "no error output" false
        (String.length err >= 6 && String.sub err 0 6 = "error:");
      let artifact = read_file out in
      check Alcotest.bool "artifact written" true (String.length artifact > 0);
      check Alcotest.bool "artifact is the JSON report" true
        (String.length artifact > 0 && artifact.[0] = '{'))

let test_verif_inject_min_coverage_gate () =
  (* unguarded dram leaks silent corruption, so the same gate must trip *)
  let code, _ =
    run_cli
      [ "verif"; "inject"; "--regions"; "dram"; "--count"; "80";
        "--min-coverage"; "99" ]
  in
  check Alcotest.int "unguarded dram fails the gate" 3 code

let test_verif_inject_guard_sweep () =
  let code, err =
    run_cli
      [ "verif"; "inject"; "--regions"; "dram"; "--count"; "40";
        "--guard-sweep"; "off,scrub:256"; "--json" ]
  in
  check Alcotest.int "sweep runs clean" 0 code;
  check Alcotest.bool "no error output" false
    (String.length err >= 6 && String.sub err 0 6 = "error:")

let test_verif_inject_bad_guard_mechanism () =
  let code, _ =
    run_cli [ "verif"; "inject"; "--guard"; "scrub:banana"; "--count"; "5" ]
  in
  check Alcotest.bool "malformed guard mechanism refused" true (code <> 0)

let test_verif_corpus_empty () =
  let dir = Filename.temp_file "eric_corpus" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then Sys.rmdir dir)
    (fun () ->
      let code, _ = run_cli [ "verif"; "corpus"; dir ] in
      check Alcotest.int "empty corpus is fine" 0 code)

(* ------------------------------------------------------------------ *)
(* puf subcommands: device-id parsing and metrics                      *)
(* ------------------------------------------------------------------ *)

let test_puf_hex_device_id () =
  (* decimal and 0x-prefixed hex must name the same device *)
  let dec, _ = run_cli [ "puf"; "--device-id"; "42" ] in
  let hex, _ = run_cli [ "puf"; "--device-id"; "0x2A" ] in
  check Alcotest.int "decimal id accepted" 0 dec;
  check Alcotest.int "hex id accepted" 0 hex

let test_puf_malformed_device_id () =
  expect_code "garbage device id" 4 (run_cli [ "puf"; "--device-id"; "not-a-number" ]);
  expect_code "trailing junk" 4 (run_cli [ "puf"; "--device-id"; "12abc" ]);
  expect_code "run with bad id" 4
    (run_cli [ "run"; "/dev/null"; "--device-id"; "0xZZ" ])

let test_puf_metrics_smoke () =
  let code, err =
    run_cli
      [ "puf"; "metrics"; "--devices"; "4"; "--challenges"; "16"; "--reeval"; "4";
        "--corner"; "cold-lowv" ]
  in
  check Alcotest.int "metrics at a corner" 0 code;
  check Alcotest.bool "no error output" false
    (String.length err >= 6 && String.sub err 0 6 = "error:")

let test_puf_unknown_corner () =
  let code, _ = run_cli [ "puf"; "metrics"; "--corner"; "volcano" ] in
  (* cmdliner usage errors exit 124 by its convention for conv failures *)
  check Alcotest.bool "unknown corner refused" true (code <> 0)

(* ------------------------------------------------------------------ *)
(* fleet reenroll + verif env through the real binary                  *)
(* ------------------------------------------------------------------ *)

let test_fleet_reenroll_smoke () =
  with_tmp (fun path ->
      ignore (make_registry path 2);
      let code, err = run_cli [ "fleet"; "reenroll"; "--registry"; path ] in
      check Alcotest.int "reenroll clean run" 0 code;
      check Alcotest.bool "no error output" false
        (String.length err >= 6 && String.sub err 0 6 = "error:");
      (* the surveyed registry must still load *)
      match Eric_fleet.Registry.load path with
      | Ok reg -> check Alcotest.int "registry intact" 2 (Eric_fleet.Registry.count reg)
      | Error e -> Alcotest.fail e)

let test_verif_env_smoke () =
  with_tmp (fun out ->
      let code, _ =
        run_cli
          [ "verif"; "env"; "--devices"; "2"; "--boots"; "3"; "--out"; out ]
      in
      check Alcotest.int "sweep passes" 0 code;
      let json = In_channel.with_open_bin out In_channel.input_all in
      let contains needle =
        let n = String.length needle and h = String.length json in
        let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
        go 0
      in
      check Alcotest.bool "report written" true (String.length json > 0);
      check Alcotest.bool "names the suite" true (contains {|"suite":"env_sweep"|});
      check Alcotest.bool "covers the stress corner" true (contains {|"corner":"cold-lowv"|});
      check Alcotest.bool "reports pass/fail" true (contains {|"passed":true|}))

let contains_str haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_serve_scenarios_lists_presets () =
  let code, err = run_cli [ "serve"; "scenarios" ] in
  check Alcotest.int "clean exit" 0 code;
  check Alcotest.bool "no error output" false (contains_str err "error:")

let test_serve_run_smoke_deterministic () =
  (* two short flash-crowd runs with one seed must write byte-identical
     JSON reports — the CLI-level acceptance criterion *)
  let report seed_out =
    let code, err =
      run_cli
        [ "serve"; "run"; "--scenario"; "flash-crowd"; "--seed"; "123"; "--duration";
          "2"; "--out"; seed_out ]
    in
    check Alcotest.int "clean exit" 0 code;
    check Alcotest.bool "no error output" false (contains_str err "error:");
    In_channel.with_open_bin seed_out In_channel.input_all
  in
  with_tmp (fun out1 ->
      with_tmp (fun out2 ->
          let a = report out1 and b = report out2 in
          check Alcotest.bool "report non-empty" true (String.length a > 0);
          check Alcotest.string "identical reports across runs" a b;
          check Alcotest.bool "json has scenario field" true
            (contains_str a "\"scenario\":\"flash-crowd\"");
          check Alcotest.bool "json has latency family" true
            (contains_str a "\"latency_ms\"")))

let test_serve_slo_error_exit_code () =
  (* 20x the steady rate swamps two servers: the refusal budget blows
     and --slo-error must turn that into exit 3 *)
  let code, _ =
    run_cli
      [ "serve"; "run"; "--scenario"; "steady"; "--seed"; "1"; "--duration"; "2";
        "--rate-scale"; "20"; "--slo-error" ]
  in
  check Alcotest.int "blown SLO exits 3" 3 code

(* Run the CLI capturing stdout as well (the obf-metadata report of
   `lint <pkg>` goes to stdout, the error to stderr). *)
let run_cli_capture args =
  with_tmp (fun out_file ->
      with_tmp (fun err_file ->
          let cmd =
            Printf.sprintf "%s %s > %s 2> %s" (Filename.quote cli)
              (String.concat " " (List.map Filename.quote args))
              (Filename.quote out_file) (Filename.quote err_file)
          in
          let code = Sys.command cmd in
          let slurp p = In_channel.with_open_bin p In_channel.input_all in
          (code, slurp out_file, slurp err_file)))

let test_build_unknown_obf_pass_exit_4 () =
  with_tmp (fun src ->
      write src (Bytes.of_string "int main() { return 0; }");
      let code, err = run_cli [ "build"; src; "--obfuscate"; "flatten,bogus" ] in
      check Alcotest.int "unknown pass is exit 4" 4 code;
      check Alcotest.bool "error names the pass" true (contains_str err "bogus"))

let test_lint_package_reports_obf_passes () =
  with_tmp (fun src ->
      with_tmp (fun pkg ->
          write src (Bytes.of_string "int main() { println_int(7); return 0; }");
          let code, _, _ =
            run_cli_capture
              [ "build"; src; "-o"; pkg; "--obfuscate"; "opaque,constants" ]
          in
          check Alcotest.int "obfuscated build succeeds" 0 code;
          let code, out, err = run_cli_capture [ "lint"; pkg ] in
          check Alcotest.bool "package still refuses lint" true (code <> 0);
          check Alcotest.bool "stdout names the passes" true
            (contains_str out "package obfuscation: passes constants,opaque");
          check Alcotest.bool "stderr explains the refusal" true
            (contains_str err "cannot lint an encrypted package")))

let test_serve_unknown_scenario_usage_error () =
  let code, err = run_cli [ "serve"; "run"; "--scenario"; "nope" ] in
  check Alcotest.bool "non-zero exit" true (code <> 0);
  check Alcotest.bool "error names the candidates" true (contains_str err "steady")

let () =
  Alcotest.run "eric_cli"
    [ ( "malformed-input",
        [ Alcotest.test_case "truncated registry" `Quick test_truncated_registry;
          Alcotest.test_case "corrupt registry magic" `Quick test_corrupt_registry_magic;
          Alcotest.test_case "missing registry" `Quick test_missing_registry;
          Alcotest.test_case "garbage package" `Quick test_garbage_package;
          Alcotest.test_case "truncated package" `Quick test_truncated_package ] );
      ( "exit-codes",
        [ Alcotest.test_case "malformed input is 4" `Quick test_exit_code_malformed;
          Alcotest.test_case "validation refusal is 5" `Quick test_exit_code_refused;
          Alcotest.test_case "truncated package is 4" `Quick test_exit_code_truncated_is_malformed;
          Alcotest.test_case "program exit passes through" `Quick
            test_exit_code_program_exit_passthrough;
          Alcotest.test_case "internal error is 1" `Quick test_exit_code_internal ] );
      ( "puf",
        [ Alcotest.test_case "hex device id" `Quick test_puf_hex_device_id;
          Alcotest.test_case "malformed device id is 4" `Quick test_puf_malformed_device_id;
          Alcotest.test_case "metrics smoke" `Quick test_puf_metrics_smoke;
          Alcotest.test_case "unknown corner refused" `Quick test_puf_unknown_corner ] );
      ( "fleet",
        [ Alcotest.test_case "reenroll smoke" `Quick test_fleet_reenroll_smoke ] );
      ( "obfuscate",
        [ Alcotest.test_case "unknown pass is 4" `Quick test_build_unknown_obf_pass_exit_4;
          Alcotest.test_case "lint reports package passes" `Quick
            test_lint_package_reports_obf_passes ] );
      ( "serve",
        [ Alcotest.test_case "scenarios lists presets" `Quick test_serve_scenarios_lists_presets;
          Alcotest.test_case "run smoke is deterministic" `Quick
            test_serve_run_smoke_deterministic;
          Alcotest.test_case "slo-error exits 3" `Quick test_serve_slo_error_exit_code;
          Alcotest.test_case "unknown scenario refused" `Quick
            test_serve_unknown_scenario_usage_error ] );
      ( "verif",
        [ Alcotest.test_case "fuzz smoke" `Quick test_verif_fuzz_smoke;
          Alcotest.test_case "inject smoke" `Quick test_verif_inject_smoke;
          Alcotest.test_case "inject guard json/out" `Quick test_verif_inject_guard_json_out;
          Alcotest.test_case "inject min-coverage gate" `Quick
            test_verif_inject_min_coverage_gate;
          Alcotest.test_case "inject guard sweep" `Quick test_verif_inject_guard_sweep;
          Alcotest.test_case "inject bad guard mechanism" `Quick
            test_verif_inject_bad_guard_mechanism;
          Alcotest.test_case "empty corpus" `Quick test_verif_corpus_empty;
          Alcotest.test_case "env sweep smoke" `Quick test_verif_env_smoke ] ) ]
