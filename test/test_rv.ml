(* Tests for eric_rv: golden encodings from the ISA manual, encoder/decoder
   and RVC round-trips, disassembly, program images, and the
   assembler/layout engine. *)

open Eric_rv

let check = Alcotest.check
let qtest ?(count = 500) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Golden 32-bit encodings (cross-checked with riscv64 binutils)       *)
(* ------------------------------------------------------------------ *)

let golden =
  [ (Inst.I (Addi, Reg.a 0, Reg.a 1, 42), 0x02a58513l);
    (Inst.I (Addi, Reg.x0, Reg.x0, 0), 0x00000013l) (* canonical nop *);
    (Inst.R (Add, Reg.a 0, Reg.a 1, Reg.a 2), 0x00c58533l);
    (Inst.R (Sub, Reg.s 2, Reg.s 3, Reg.s 4), 0x41498933l);
    (Inst.R (Mul, Reg.t_ 0, Reg.t_ 1, Reg.t_ 2), 0x027302b3l);
    (Inst.R (Divu, Reg.a 3, Reg.a 4, Reg.a 5), 0x02f756b3l);
    (Inst.R (Remw, Reg.a 0, Reg.a 1, Reg.a 2), 0x02c5e53bl);
    (Inst.R (Sraw, Reg.a 0, Reg.a 1, Reg.a 2), 0x40c5d53bl);
    (Inst.Shift (Slli, Reg.a 0, Reg.a 0, 63), 0x03f51513l);
    (Inst.Shift (Srai, Reg.a 0, Reg.a 0, 1), 0x40155513l);
    (Inst.Shift (Sraiw, Reg.a 0, Reg.a 0, 31), 0x41f5551bl);
    (Inst.I (Addiw, Reg.a 0, Reg.a 0, -1), 0xfff5051bl);
    (Inst.Load (Ld, Reg.s 1, Reg.sp, 16), 0x01013483l);
    (Inst.Load (Lbu, Reg.a 0, Reg.a 1, -1), 0xfff5c503l);
    (Inst.Store (Sd, Reg.s 1, Reg.sp, 16), 0x00913823l);
    (Inst.Store (Sb, Reg.a 0, Reg.a 1, -2048), 0x80a58023l);
    (Inst.Branch (Bne, Reg.a 0, Reg.x0, -4), 0xfe051ee3l);
    (Inst.Branch (Beq, Reg.a 0, Reg.a 1, 4094), 0x7eb50fe3l);
    (Inst.Jal (Reg.ra, 2048), 0x001000efl);
    (Inst.Jal (Reg.x0, -2), 0xfffff06fl);
    (Inst.Jalr (Reg.x0, Reg.ra, 0), 0x00008067l) (* ret *);
    (Inst.U (Lui, Reg.a 0, 0x12345), 0x12345537l);
    (Inst.U (Auipc, Reg.t_ 0, -1), 0xfffff297l);
    (Inst.Csrr (Reg.a 0, 0xC00), 0xc0002573l) (* rdcycle a0 *);
    (Inst.Csrr (Reg.t_ 1, 0xC02), 0xc0202373l) (* rdinstret t1 *);
    (Inst.Ecall, 0x00000073l);
    (Inst.Ebreak, 0x00100073l);
    (Inst.Fence, 0x0ff0000fl) ]

let test_golden_encode () =
  List.iter
    (fun (inst, word) ->
      check Alcotest.int32 (Disasm.inst_to_string inst) word (Encode.encode inst))
    golden

let test_golden_decode () =
  List.iter
    (fun (inst, word) ->
      match Decode.decode word with
      | Some decoded ->
        check Alcotest.bool (Printf.sprintf "decode %08lx" word) true (Inst.equal inst decoded)
      | None -> Alcotest.failf "failed to decode %08lx" word)
    golden

let test_decode_rejects_garbage () =
  List.iter
    (fun w ->
      check Alcotest.bool (Printf.sprintf "%08lx invalid" w) false (Decode.is_valid w))
    [ 0xFFFFFFFFl (* all ones: opcode 1111111 unassigned *);
      0x00000000l (* all zeros: low bits 00 mark a 16-bit parcel *);
      0x0000007Fl (* unassigned opcode *) ]

let test_decode_invalid_funct () =
  (* OP opcode with funct7 = 0b0000010 (unassigned) *)
  let w = Int32.of_int ((0b0000010 lsl 25) lor 0b0110011) in
  check Alcotest.bool "unassigned funct7" false (Decode.is_valid w);
  (* LOAD with funct3 = 111 (unassigned) *)
  let w = Int32.of_int ((0b111 lsl 12) lor 0b0000011) in
  check Alcotest.bool "unassigned load width" false (Decode.is_valid w)

(* ------------------------------------------------------------------ *)
(* Random instruction generator                                        *)
(* ------------------------------------------------------------------ *)

let gen_reg = QCheck.Gen.(map Reg.of_int (int_bound 31))

let gen_inst : Inst.t QCheck.Gen.t =
  let open QCheck.Gen in
  let r_ops : Inst.r_op list =
    [ Add; Sub; Sll; Slt; Sltu; Xor; Srl; Sra; Or; And; Addw; Subw; Sllw; Srlw; Sraw; Mul;
      Mulh; Mulhsu; Mulhu; Div; Divu; Rem; Remu; Mulw; Divw; Divuw; Remw; Remuw ]
  in
  let i_ops : Inst.i_op list = [ Addi; Slti; Sltiu; Xori; Ori; Andi; Addiw ] in
  let imm12 = int_range (-2048) 2047 in
  frequency
    [ (4, map (fun (op, (rd, rs1, rs2)) -> Inst.R (op, rd, rs1, rs2))
         (pair (oneofl r_ops) (triple gen_reg gen_reg gen_reg)));
      (3, map (fun (op, (rd, rs1, imm)) -> Inst.I (op, rd, rs1, imm))
         (pair (oneofl i_ops) (triple gen_reg gen_reg imm12)));
      (2, map (fun (op, (rd, rs1)) ->
             let limit = match (op : Inst.shift_op) with Slliw | Srliw | Sraiw -> 31 | _ -> 63 in
             Inst.Shift (op, rd, rs1, limit))
         (pair (oneofl ([ Slli; Srli; Srai; Slliw; Srliw; Sraiw ] : Inst.shift_op list))
            (pair gen_reg gen_reg)));
      (2, map (fun ((op, sh), (rd, rs1)) ->
             let limit = match (op : Inst.shift_op) with Slliw | Srliw | Sraiw -> 31 | _ -> 63 in
             Inst.Shift (op, rd, rs1, sh mod (limit + 1)))
         (pair (pair (oneofl ([ Slli; Srli; Srai; Slliw; Srliw; Sraiw ] : Inst.shift_op list)) small_nat)
            (pair gen_reg gen_reg)));
      (2, map (fun (op, (rd, imm)) -> Inst.U (op, rd, imm))
         (pair (oneofl ([ Lui; Auipc ] : Inst.u_op list)) (pair gen_reg (int_range (-524288) 524287))));
      (3, map (fun (op, (rd, base, off)) -> Inst.Load (op, rd, base, off))
         (pair (oneofl ([ Lb; Lh; Lw; Ld; Lbu; Lhu; Lwu ] : Inst.load_op list))
            (triple gen_reg gen_reg imm12)));
      (3, map (fun (op, (src, base, off)) -> Inst.Store (op, src, base, off))
         (pair (oneofl ([ Sb; Sh; Sw; Sd ] : Inst.store_op list)) (triple gen_reg gen_reg imm12)));
      (2, map (fun (op, (rs1, rs2, off)) -> Inst.Branch (op, rs1, rs2, 2 * off))
         (pair (oneofl ([ Beq; Bne; Blt; Bge; Bltu; Bgeu ] : Inst.branch_op list))
            (triple gen_reg gen_reg (int_range (-2048) 2047))));
      (1, map (fun (rd, off) -> Inst.Jal (rd, 2 * off)) (pair gen_reg (int_range (-524288) 524287)));
      (1, map (fun (rd, rs1, imm) -> Inst.Jalr (rd, rs1, imm)) (triple gen_reg gen_reg imm12));
      (1, oneofl [ Inst.Ecall; Inst.Ebreak; Inst.Fence ]) ]

let arb_inst = QCheck.make ~print:Disasm.inst_to_string gen_inst

let encode_decode_roundtrip =
  qtest ~count:2000 "encode/decode roundtrip" arb_inst (fun inst ->
      match Decode.decode (Encode.encode inst) with
      | Some decoded -> Inst.equal inst decoded
      | None -> false)

let compress_expand_roundtrip =
  qtest ~count:2000 "compress/expand agree" arb_inst (fun inst ->
      match Rvc.compress inst with
      | None -> true
      | Some parcel -> (
        match Rvc.expand parcel with Some back -> Inst.equal inst back | None -> false))

let test_rvc_exhaustive () =
  (* Every valid 16-bit parcel expands to an instruction that encodes back
     to an equally valid parcel (compress may pick an alias). *)
  let valid = ref 0 in
  for p = 0 to 0xFFFF do
    match Rvc.expand p with
    | None -> ()
    | Some inst -> (
      incr valid;
      match Rvc.compress inst with
      | None -> Alcotest.failf "parcel %04x expands to %s which will not compress" p (Disasm.inst_to_string inst)
      | Some p' -> (
        match Rvc.expand p' with
        | Some inst' when Inst.equal inst inst' -> ()
        | _ -> Alcotest.failf "parcel %04x alias mismatch" p))
  done;
  check Alcotest.bool "plenty of valid parcels" true (!valid > 30000)

let test_rvc_known_parcels () =
  let cases =
    [ (0x0001, Inst.I (Addi, Reg.x0, Reg.x0, 0)) (* c.nop *);
      (0x4505, Inst.I (Addi, Reg.a 0, Reg.x0, 1)) (* c.li a0, 1 *);
      (0x852e, Inst.R (Add, Reg.a 0, Reg.x0, Reg.a 1)) (* c.mv a0, a1 *);
      (0x9532, Inst.R (Add, Reg.a 0, Reg.a 0, Reg.a 2)) (* c.add a0, a2 *);
      (0x8082, Inst.Jalr (Reg.x0, Reg.ra, 0)) (* c.ret *);
      (0x9002, Inst.Ebreak) (* c.ebreak *) ]
  in
  List.iter
    (fun (parcel, inst) ->
      match Rvc.expand parcel with
      | Some got ->
        check Alcotest.bool (Printf.sprintf "parcel %04x" parcel) true (Inst.equal inst got)
      | None -> Alcotest.failf "parcel %04x did not expand" parcel)
    cases;
  check Alcotest.bool "0x0000 illegal" true (Rvc.expand 0x0000 = None)

(* Pinned corner cases: reserved RVC encodings must refuse to expand,
   and the immediate edges of the trickiest formats (c.addi16sp, c.lui,
   c.addi4spn, c.j, c.beqz, the sp-relative loads) encode to exactly
   these parcels.  Golden values guard against silent en/decoding
   regressions the roundtrip properties cannot see. *)
let test_rvc_reserved_encodings () =
  let reserved =
    [ (0x0000, "all-zero illegal parcel");
      (0x0004, "c.addi4spn with imm=0");
      (0x0281, "c.addi hint (rd!=0, imm=0)");
      (0x2005, "c.addiw with rd=0");
      (0x4005, "c.li with rd=0");
      (0x6101, "c.addi16sp with imm=0");
      (0x6281, "c.lui with imm=0");
      (0x6005, "c.lui with rd=0");
      (0x8001, "c.srli with shamt=0");
      (0x9c41, "q1 CA reserved funct2 (w=1, 0b10)");
      (0x0282, "c.slli with shamt=0");
      (0x0006, "c.slli with rd=0");
      (0x4012, "c.lwsp with rd=0");
      (0x6012, "c.ldsp with rd=0");
      (0x8002, "c.jr with rs1=0");
      (0x802a, "c.mv with rd=0");
      (0x2000, "q0 funct3=001 (c.fld, unsupported)");
      (0x2002, "q2 funct3=001 (c.fldsp, unsupported)") ]
  in
  List.iter
    (fun (parcel, why) ->
      match Rvc.expand parcel with
      | None -> ()
      | Some inst ->
        Alcotest.failf "reserved parcel %04x (%s) expanded to %s" parcel why
          (Disasm.inst_to_string inst))
    reserved

let test_rvc_immediate_edges () =
  let golden =
    [ (* c.addi16sp: 10-bit immediate, multiples of 16, zero excluded *)
      (Inst.I (Addi, Reg.sp, Reg.sp, 496), Some 0x617d);
      (Inst.I (Addi, Reg.sp, Reg.sp, -512), Some 0x7101);
      (Inst.I (Addi, Reg.sp, Reg.sp, 504), None) (* not a multiple of 16 *);
      (Inst.I (Addi, Reg.sp, Reg.sp, 512), None) (* out of range *);
      (* c.lui: 6-bit immediate, rd not x0/sp, zero excluded *)
      (Inst.U (Lui, Reg.a 0, 31), Some 0x657d);
      (Inst.U (Lui, Reg.a 0, -32), Some 0x7501);
      (Inst.U (Lui, Reg.a 0, 32), None);
      (Inst.U (Lui, Reg.sp, 1), None);
      (Inst.U (Lui, Reg.x0, 1), None);
      (* c.addi4spn: zero-extended, multiples of 4, < 1024 *)
      (Inst.I (Addi, Reg.of_int 8, Reg.sp, 1020), Some 0x1fe0);
      (Inst.I (Addi, Reg.of_int 8, Reg.sp, 1024), None);
      (* c.j: 12-bit signed, even *)
      (Inst.Jal (Reg.x0, 2046), Some 0xaffd);
      (Inst.Jal (Reg.x0, -2048), Some 0xb001);
      (Inst.Jal (Reg.x0, 2048), None);
      (Inst.Jal (Reg.x0, 3), None) (* odd *);
      (* c.beqz: 9-bit signed, even, compressed register *)
      (Inst.Branch (Beq, Reg.of_int 8, Reg.x0, 254), Some 0xcc7d);
      (Inst.Branch (Beq, Reg.of_int 8, Reg.x0, -256), Some 0xd001);
      (Inst.Branch (Beq, Reg.of_int 8, Reg.x0, 256), None);
      (Inst.Branch (Beq, Reg.a 0, Reg.x0, 255), None) (* odd *);
      (* sp-relative loads: scaled, zero-extended offsets *)
      (Inst.Load (Lw, Reg.a 0, Reg.sp, 252), Some 0x557e);
      (Inst.Load (Lw, Reg.a 0, Reg.sp, 256), None);
      (Inst.Load (Ld, Reg.a 0, Reg.sp, 504), Some 0x757e);
      (Inst.Load (Ld, Reg.a 0, Reg.sp, 512), None);
      (* shifts: 6-bit shamt, max 63 *)
      (Inst.Shift (Slli, Reg.a 0, Reg.a 0, 63), Some 0x157e);
      (Inst.Shift (Srai, Reg.of_int 8, Reg.of_int 8, 63), Some 0x947d) ]
  in
  List.iter
    (fun (inst, expected) ->
      let name = Disasm.inst_to_string inst in
      match (Rvc.compress inst, expected) with
      | None, None -> ()
      | Some p, Some e ->
        if p <> e then Alcotest.failf "%s: compressed to %04x, expected %04x" name p e;
        (* the pinned parcel must also expand back to the instruction *)
        (match Rvc.expand p with
        | Some back when Inst.equal back inst -> ()
        | Some back -> Alcotest.failf "%s: %04x expands to %s" name p (Disasm.inst_to_string back)
        | None -> Alcotest.failf "%s: golden parcel %04x does not expand" name p)
      | Some p, None -> Alcotest.failf "%s: unexpectedly compressed to %04x" name p
      | None, Some e -> Alcotest.failf "%s: failed to compress (expected %04x)" name e)
    golden

let test_rvc_expand_compress_coherent () =
  (* Exhaustive 16-bit sweep: expansion and validity must agree, and no
     expanded instruction may be something the compressor considers
     un-compressible (that would make decode-then-reencode lossy). *)
  for p = 0 to 0xFFFF do
    (match (Rvc.expand p, Rvc.is_valid p) with
    | Some _, true | None, false -> ()
    | Some _, false -> Alcotest.failf "parcel %04x expands but is_valid says no" p
    | None, true -> Alcotest.failf "parcel %04x is_valid but does not expand" p);
    match Rvc.expand p with
    | None -> ()
    | Some inst ->
      if Rvc.compress inst = None then
        Alcotest.failf "parcel %04x expands to uncompressible %s" p (Disasm.inst_to_string inst)
  done

(* ------------------------------------------------------------------ *)
(* Inst helpers                                                        *)
(* ------------------------------------------------------------------ *)

let test_validate_rejects () =
  let bad =
    [ Inst.I (Addi, Reg.a 0, Reg.a 0, 5000); Inst.Shift (Slli, Reg.a 0, Reg.a 0, 64);
      Inst.Shift (Slliw, Reg.a 0, Reg.a 0, 32); Inst.Branch (Beq, Reg.a 0, Reg.a 0, 3);
      Inst.Branch (Beq, Reg.a 0, Reg.a 0, 5000); Inst.Jal (Reg.x0, 1 lsl 21);
      Inst.U (Lui, Reg.a 0, 1 lsl 19); Inst.Load (Ld, Reg.a 0, Reg.a 0, 2048) ]
  in
  List.iter
    (fun inst ->
      match Inst.validate inst with
      | Ok () -> Alcotest.failf "accepted invalid %s" (Disasm.inst_to_string inst)
      | Error _ -> ())
    bad

let test_uses_defines () =
  let inst = Inst.Store (Sd, Reg.a 0, Reg.sp, 8) in
  check (Alcotest.list Alcotest.int) "store uses"
    [ Reg.to_int (Reg.a 0); Reg.to_int Reg.sp ]
    (List.map Reg.to_int (Inst.uses inst));
  check Alcotest.bool "store defines nothing" true (Inst.defines inst = None);
  check Alcotest.bool "load defines" true
    (Inst.defines (Inst.Load (Ld, Reg.a 1, Reg.sp, 0)) = Some (Reg.a 1))

let test_reg_names () =
  check Alcotest.string "abi name" "a0" (Reg.abi_name (Reg.a 0));
  check Alcotest.string "zero" "zero" (Reg.abi_name Reg.x0);
  check Alcotest.bool "of_name abi" true (Reg.of_name "t3" = Some (Reg.t_ 3));
  check Alcotest.bool "of_name xN" true (Reg.of_name "x17" = Some (Reg.a 7));
  check Alcotest.bool "of_name fp" true (Reg.of_name "fp" = Some (Reg.s 0));
  check Alcotest.bool "of_name bad" true (Reg.of_name "q9" = None);
  check Alcotest.bool "compressible" true (Reg.is_compressible (Reg.a 0));
  check Alcotest.bool "not compressible" false (Reg.is_compressible (Reg.t_ 3))

(* ------------------------------------------------------------------ *)
(* Disassembly                                                         *)
(* ------------------------------------------------------------------ *)

let test_disasm_strings () =
  let cases =
    [ (Inst.I (Addi, Reg.a 0, Reg.sp, 16), "addi a0, sp, 16");
      (Inst.Load (Ld, Reg.s 1, Reg.sp, 8), "ld s1, 8(sp)");
      (Inst.Store (Sw, Reg.a 2, Reg.a 3, -4), "sw a2, -4(a3)");
      (Inst.Branch (Bltu, Reg.t_ 0, Reg.t_ 1, 24), "bltu t0, t1, 24");
      (Inst.Jal (Reg.ra, -8), "jal ra, -8");
      (Inst.Jalr (Reg.x0, Reg.ra, 0), "jalr zero, 0(ra)");
      (Inst.U (Lui, Reg.a 0, 0x12345), "lui a0, 0x12345");
      (Inst.Ecall, "ecall") ]
  in
  List.iter
    (fun (inst, s) -> check Alcotest.string s s (Disasm.inst_to_string inst))
    cases

let test_disasm_stream_framing () =
  (* 32-bit inst, 16-bit inst, garbage word. *)
  let buf = Bytes.create 10 in
  Eric_util.Bytesx.set_u32 buf 0 (Encode.encode (Inst.I (Addi, Reg.a 0, Reg.a 1, 42)));
  Eric_util.Bytesx.set_u16 buf 4 0x4505 (* c.li a0,1 *);
  Eric_util.Bytesx.set_u32 buf 6 0xFFFFFFFFl;
  match Disasm.disassemble_stream buf with
  | [ l1; l2; l3 ] ->
    check Alcotest.int "first size" 4 l1.Disasm.size;
    check Alcotest.bool "first ok" true (l1.Disasm.decoded <> None);
    check Alcotest.int "second size" 2 l2.Disasm.size;
    check Alcotest.int "second offset" 4 l2.Disasm.offset;
    check Alcotest.bool "third invalid" true (l3.Disasm.decoded = None)
  | lines -> Alcotest.failf "expected 3 lines, got %d" (List.length lines)

(* ------------------------------------------------------------------ *)
(* Program images                                                      *)
(* ------------------------------------------------------------------ *)

let sample_image () =
  let text =
    [| Program.P32 (Encode.encode (Inst.I (Addi, Reg.a 0, Reg.x0, 7)));
       Program.P16 (Option.get (Rvc.compress (Inst.I (Addi, Reg.a 0, Reg.a 0, 1))));
       Program.P32 (Encode.encode Inst.Ecall) |]
  in
  { Program.text; data = Bytes.of_string "hello"; bss_size = 16; entry_offset = 0; symbols = [] }

let test_program_sizes () =
  let img = sample_image () in
  check Alcotest.int "text size" 10 (Program.text_size img);
  check Alcotest.int "total size" 15 (Program.total_size img);
  check (Alcotest.array Alcotest.int) "offsets" [| 0; 4; 6 |] (Program.parcel_offsets img)

let test_program_binary_roundtrip () =
  let img = sample_image () in
  match Program.of_binary (Program.to_binary img) with
  | Error e -> Alcotest.fail e
  | Ok img' ->
    check Alcotest.int "entry" img.Program.entry_offset img'.Program.entry_offset;
    check Alcotest.int "bss" img.Program.bss_size img'.Program.bss_size;
    check Alcotest.string "text bytes"
      (Eric_util.Bytesx.to_hex (Program.text_bytes img))
      (Eric_util.Bytesx.to_hex (Program.text_bytes img'));
    check Alcotest.string "data" "hello" (Bytes.to_string img'.Program.data)

let test_program_binary_rejects () =
  let img = sample_image () in
  let good = Program.to_binary img in
  let truncated = Bytes.sub good 0 (Bytes.length good - 3) in
  check Alcotest.bool "truncated" true (Result.is_error (Program.of_binary truncated));
  let bad_magic = Bytes.copy good in
  Bytes.set bad_magic 0 'X';
  check Alcotest.bool "magic" true (Result.is_error (Program.of_binary bad_magic))

let test_frame_text () =
  let img = sample_image () in
  (match Program.frame_text (Program.text_bytes img) with
  | Some parcels -> check Alcotest.int "parcel count" 3 (Array.length parcels)
  | None -> Alcotest.fail "framing failed");
  (* A lone half of a 32-bit instruction cannot tile. *)
  let partial = Bytes.of_string "\xef\xff" (* low bits 11 -> expects 4 bytes *) in
  check Alcotest.bool "partial fails" true (Program.frame_text partial = None)

let test_decode_all () =
  let img = sample_image () in
  match Program.decode_all img with
  | Some insts ->
    check Alcotest.int "count" 3 (Array.length insts);
    check Alcotest.bool "last is ecall" true (Inst.equal insts.(2) Inst.Ecall)
  | None -> Alcotest.fail "decode_all failed"


let test_program_symbol_table_roundtrip () =
  let img = { (sample_image ()) with Program.symbols = [ ("_start", 0); (".L_loop", 4) ] } in
  (* default serialisation strips symbols *)
  (match Program.of_binary (Program.to_binary img) with
  | Ok img' -> check Alcotest.int "stripped" 0 (List.length img'.Program.symbols)
  | Error e -> Alcotest.fail e);
  (* explicit symbol serialisation restores them *)
  (match Program.of_binary (Program.to_binary ~with_symbols:true img) with
  | Ok img' ->
    check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "restored"
      img.Program.symbols img'.Program.symbols
  | Error e -> Alcotest.fail e);
  (* truncated symbol table rejected *)
  let wire = Program.to_binary ~with_symbols:true img in
  check Alcotest.bool "truncated symtab" true
    (Result.is_error (Program.of_binary (Bytes.sub wire 0 (Bytes.length wire - 2))))

let test_symbolized_listing () =
  let img = { (sample_image ()) with Program.symbols = [ ("_start", 0); ("fn2", 4) ] } in
  let lines = Disasm.disassemble_stream (Program.text_bytes img) in
  let text =
    Format.asprintf "%a" (Disasm.pp_listing_symbols ~symbols:img.Program.symbols) lines
  in
  let contains hay needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "has _start label" true (contains text "_start:");
  check Alcotest.bool "has fn2 label" true (contains text "fn2:")

(* ------------------------------------------------------------------ *)
(* Assembler / layout                                                  *)
(* ------------------------------------------------------------------ *)

let assemble_exn ?compress input =
  match Assemble.assemble ?compress input with
  | Ok img -> img
  | Error e -> Alcotest.failf "assemble failed: %s" e

let run_image image =
  let r = Eric_sim.Soc.run_program image in
  match r.Eric_sim.Soc.status with
  | Eric_sim.Cpu.Exited code -> (code, r.Eric_sim.Soc.output)
  | Eric_sim.Cpu.Faulted m | Eric_sim.Cpu.Integrity_fault m -> Alcotest.failf "fault: %s" m
  | Eric_sim.Cpu.Running -> Alcotest.fail "still running"

let exit_with_a0 body =
  (* wrap: body ... then exit(a0) *)
  { Assemble.text =
      (Assemble.Label "_start" :: body)
      @ [ Assemble.Li (Reg.a 7, 93L); Assemble.Ins Inst.Ecall ];
    data = Bytes.empty;
    data_symbols = [];
    bss_symbols = [];
    entry = "_start" }

let test_assemble_li_values () =
  (* Execute li for awkward constants on the SoC and inspect the produced
     register value byte by byte via the exit code. *)
  let check_value v =
    for byte = 0 to 7 do
      let input =
        exit_with_a0
          [ Assemble.Li (Reg.t_ 0, v);
            Assemble.Ins (Inst.Shift (Srli, Reg.t_ 0, Reg.t_ 0, 8 * byte));
            Assemble.Ins (Inst.I (Andi, Reg.a 0, Reg.t_ 0, 255)) ]
      in
      let code, _ = run_image (assemble_exn input) in
      let expected = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * byte)) 0xFFL) in
      check Alcotest.int (Printf.sprintf "li %Ld byte %d" v byte) expected code
    done
  in
  List.iter check_value [ 0L; 1L; -1L; 2047L; -2048L; 2048L; 0x7FFFFFFFL; 0x80000000L;
                          0xFFFFFFFFL; 0x9E3779B9L; Int64.min_int; Int64.max_int; 1103515245L ]

let test_assemble_li_exit_code () =
  List.iter
    (fun v ->
      let input = exit_with_a0 [ Assemble.Li (Reg.a 0, Int64.of_int v) ] in
      let code, _ = run_image (assemble_exn input) in
      check Alcotest.int (Printf.sprintf "exit %d" v) v code)
    [ 0; 1; 42; 100; 255 ]

let test_assemble_branches_and_labels () =
  (* Loop: sum 1..10 in a0. *)
  let input =
    exit_with_a0
      [ Assemble.Li (Reg.a 0, 0L); Assemble.Li (Reg.t_ 0, 1L); Assemble.Li (Reg.t_ 1, 10L);
        Assemble.Label "loop";
        Assemble.Ins (Inst.R (Add, Reg.a 0, Reg.a 0, Reg.t_ 0));
        Assemble.Ins (Inst.I (Addi, Reg.t_ 0, Reg.t_ 0, 1));
        Assemble.Branch (Inst.Bge, Reg.t_ 1, Reg.t_ 0, "loop") ]
  in
  let code, _ = run_image (assemble_exn input) in
  check Alcotest.int "sum 1..10" 55 code

let test_assemble_far_branch_relaxed () =
  (* Branch over > 4 KiB of code must get relaxed and still behave. *)
  let filler = List.init 2000 (fun _ -> Assemble.Ins (Inst.I (Addi, Reg.t_ 2, Reg.t_ 2, 1))) in
  let input =
    exit_with_a0
      ([ Assemble.Li (Reg.a 0, 9L); Assemble.Branch (Inst.Beq, Reg.x0, Reg.x0, "far") ]
      @ filler
      @ [ Assemble.Label "skip_mark"; Assemble.Li (Reg.a 0, 1L); Assemble.Label "far" ])
  in
  let code, _ = run_image (assemble_exn input) in
  check Alcotest.int "took far branch" 9 code

let test_assemble_compression_shrinks () =
  let body =
    List.concat
      (List.init 50 (fun _ ->
           [ Assemble.Ins (Inst.I (Addi, Reg.a 0, Reg.a 0, 1));
             Assemble.Ins (Inst.R (Add, Reg.a 1, Reg.a 1, Reg.a 0)) ]))
  in
  let uncompressed = assemble_exn ~compress:false (exit_with_a0 body) in
  let compressed = assemble_exn ~compress:true (exit_with_a0 body) in
  check Alcotest.bool "smaller" true
    (Program.text_size compressed < Program.text_size uncompressed);
  (* Same architectural behaviour. *)
  let c1, _ = run_image uncompressed and c2, _ = run_image compressed in
  check Alcotest.int "same exit" c1 c2

let test_assemble_data_symbols () =
  let input =
    { Assemble.text =
        [ Assemble.Label "_start";
          Assemble.La (Reg.a 1, "greeting");
          Assemble.Li (Reg.a 0, 1L);
          Assemble.Li (Reg.a 2, 5L);
          Assemble.Li (Reg.a 7, 64L);
          Assemble.Ins Inst.Ecall;
          Assemble.La (Reg.t_ 0, "counter");
          Assemble.Li (Reg.t_ 1, 7L);
          Assemble.Ins (Inst.Store (Sd, Reg.t_ 1, Reg.t_ 0, 0));
          Assemble.Ins (Inst.Load (Ld, Reg.a 0, Reg.t_ 0, 0));
          Assemble.Li (Reg.a 7, 93L);
          Assemble.Ins Inst.Ecall ];
      data = Bytes.of_string "hello";
      data_symbols = [ ("greeting", 0) ];
      bss_symbols = [ ("counter", 8) ];
      entry = "_start" }
  in
  let code, out = run_image (assemble_exn input) in
  check Alcotest.string "wrote greeting" "hello" out;
  check Alcotest.int "bss readback" 7 code

let test_assemble_errors () =
  let is_err input = Result.is_error (Assemble.assemble input) in
  check Alcotest.bool "undefined label" true
    (is_err
       { Assemble.text = [ Assemble.Label "_start"; Assemble.Jump (Reg.x0, "nowhere") ];
         data = Bytes.empty; data_symbols = []; bss_symbols = []; entry = "_start" });
  check Alcotest.bool "duplicate label" true
    (is_err
       { Assemble.text =
           [ Assemble.Label "a"; Assemble.Ins Inst.Ecall; Assemble.Label "a"; Assemble.Ins Inst.Ecall ];
         data = Bytes.empty; data_symbols = []; bss_symbols = []; entry = "a" });
  check Alcotest.bool "missing entry" true
    (is_err
       { Assemble.text = [ Assemble.Label "a"; Assemble.Ins Inst.Ecall ];
         data = Bytes.empty; data_symbols = []; bss_symbols = []; entry = "other" });
  check Alcotest.bool "empty text" true
    (is_err
       { Assemble.text = [ Assemble.Label "a" ]; data = Bytes.empty; data_symbols = [];
         bss_symbols = []; entry = "a" })

let expand_li_matches_value =
  qtest ~count:300 "expand_li computes the constant" QCheck.int64 (fun v ->
      (* Interpret the expansion with a tiny evaluator over {addi, lui,
         addiw, slli}. *)
      let reg = ref 0L in
      List.iter
        (fun inst ->
          match inst with
          | Inst.I (Addi, _, rs1, imm) ->
            reg := if Reg.equal rs1 Reg.x0 then Int64.of_int imm else Int64.add !reg (Int64.of_int imm)
          | Inst.I (Addiw, _, _, imm) ->
            reg := Int64.of_int32 (Int64.to_int32 (Int64.add !reg (Int64.of_int imm)))
          | Inst.U (Lui, _, imm) -> reg := Int64.of_int (imm lsl 12)
          | Inst.Shift (Slli, _, _, sh) -> reg := Int64.shift_left !reg sh
          | _ -> failwith "unexpected instruction in li expansion")
        (Assemble.expand_li (Reg.a 0) v);
      Int64.equal !reg v)


(* ------------------------------------------------------------------ *)
(* Textual assembler                                                   *)
(* ------------------------------------------------------------------ *)

let asm_roundtrip =
  qtest ~count:1500 "print/parse instruction roundtrip" arb_inst (fun inst ->
      (* Wrap the printed instruction in a one-line program and check the
         parsed item is the same instruction.  Branch/jal targets print as
         numeric offsets, which the parser accepts directly. *)
      let text = Asm.print_inst inst in
      match Asm.parse ~entry:"_start" ("_start:\n  " ^ text ^ "\n") with
      | Error _ -> false
      | Ok input -> (
        match input.Assemble.text with
        | [ Assemble.Label "_start"; Assemble.Ins parsed ] -> Inst.equal parsed inst
        | [ Assemble.Label "_start"; Assemble.Jump (rd, _) ] -> (
          match inst with Inst.Jal (rd', _) -> Reg.equal rd rd' | _ -> false)
        | _ -> false))


(* Random whole-program property: generate an input with labels, branches
   between labels, data and bss; print it with Assemble.pp_input; re-parse
   with Asm; both must assemble to byte-identical programs. *)
let gen_asm_input : Assemble.input QCheck.Gen.t =
  let open QCheck.Gen in
  let straight_line =
    (* instructions safe at any position (no control flow) *)
    oneof
      [ map3 (fun rd rs1 imm -> Assemble.Ins (Inst.I (Addi, rd, rs1, imm))) gen_reg gen_reg
          (int_range (-100) 100);
        map3 (fun rd rs1 rs2 -> Assemble.Ins (Inst.R (Xor, rd, rs1, rs2))) gen_reg gen_reg gen_reg;
        map2 (fun rd v -> Assemble.Li (rd, Int64.of_int v)) gen_reg (int_range (-100000) 100000);
        map (fun rd -> Assemble.La (rd, "blob")) gen_reg;
        map2 (fun src base -> Assemble.Ins (Inst.Store (Sd, src, base, 16))) gen_reg gen_reg ]
  in
  let* n_blocks = int_range 1 4 in
  let labels = List.init n_blocks (fun i -> Printf.sprintf "blk%d" i) in
  let* blocks =
    flatten_l
      (List.mapi
         (fun i label ->
           let* body = list_size (int_bound 4) straight_line in
           let* jump_target = oneofl labels in
           let+ use_branch = bool in
           [ Assemble.Label label ] @ body
           @
           if i = n_blocks - 1 then [] (* fall through to the exit stub *)
           else if use_branch then [ Assemble.Branch (Inst.Beq, Reg.x0, Reg.x0, jump_target) ]
           else [ Assemble.Jump (Reg.x0, Printf.sprintf "blk%d" (i + 1)) ])
         labels)
  in
  let text =
    (Assemble.Label "_start" :: List.concat blocks)
    @ [ Assemble.Li (Reg.a 0, 0L); Assemble.Li (Reg.a 7, 93L); Assemble.Ins Inst.Ecall ]
  in
  return
    { Assemble.text; data = Bytes.of_string "somedata"; data_symbols = [ ("blob", 0) ];
      bss_symbols = [ ("scratch", 32) ]; entry = "_start" }

let arb_asm_input =
  QCheck.make ~print:(fun input -> Format.asprintf "%a" Assemble.pp_input input) gen_asm_input

let asm_pp_parse_roundtrip =
  qtest ~count:200 "pp_input/parse/assemble roundtrip" arb_asm_input (fun input ->
      match Assemble.assemble input with
      | Error _ -> QCheck.assume_fail () (* e.g. a branch target out of range; rare *)
      | Ok direct -> (
        let text = Format.asprintf "%a" Assemble.pp_input input in
        match Asm.assemble text with
        | Error _ -> false
        | Ok reparsed ->
          Bytes.equal (Program.text_bytes direct) (Program.text_bytes reparsed)
          && Bytes.equal direct.Program.data reparsed.Program.data
          && direct.Program.bss_size = reparsed.Program.bss_size
          && direct.Program.entry_offset = reparsed.Program.entry_offset))


let asm_parse_never_crashes =
  qtest ~count:500 "parse never raises on junk" QCheck.(string) (fun junk ->
      match Asm.parse junk with Ok _ | Error _ -> true)

let asm_parse_tokenish_fuzz =
  (* junk assembled from plausible assembly fragments *)
  let fragment =
    QCheck.Gen.oneofl
      [ "addi"; "a0"; "zero"; ","; "("; ")"; "16"; "-3"; ".data"; ".byte"; "label:"; "li";
        "0x10"; "beq"; "#c"; "\"s\""; "\n"; " "; "ld"; "sp"; ".space"; "jal"; "rdcycle" ]
  in
  qtest ~count:500 "parse never raises on token soup"
    (QCheck.make
       ~print:(fun parts -> String.concat " " parts)
       QCheck.Gen.(list_size (int_bound 20) fragment))
    (fun parts ->
      match Asm.parse (String.concat " " parts) with Ok _ | Error _ -> true)

let asm_run source =
  match Asm.assemble source with
  | Error e -> Alcotest.failf "asm error: %s" e
  | Ok image -> run_image image

let test_asm_program () =
  let code, out =
    asm_run
      {|
# sum the bytes of a message and print it via write()
.data
msg:    .asciz "hi"
        .align 3
nums:   .dword 7, -1
.bss
scratch: .space 16
.text
_start:
        la a1, msg
        li a0, 1
        li a2, 2
        li a7, 64
        ecall                 # write(1, msg, 2)
        la t0, nums
        ld a0, 0(t0)          # 7
        ld t1, 8(t0)          # -1
        add a0, a0, t1        # 6
        la t2, scratch
        sd a0, 8(t2)
        ld a0, 8(t2)
        li a7, 93
        ecall
|}
  in
  check Alcotest.string "wrote message" "hi" out;
  check Alcotest.int "computed exit" 6 code

let test_asm_pseudos () =
  let code, _ =
    asm_run
      {|
_start:
        li t0, 41
        mv a0, t0
        addi a0, a0, 1        # 42
        seqz t1, zero         # 1
        snez t2, a0           # 1
        add a0, a0, t1
        add a0, a0, t2        # 44
        neg t3, a0            # -44
        not t4, t3            # 43
        mv a0, t4
        j finish
        li a0, 0              # skipped
finish:
        li a7, 93
        ecall
|}
  in
  check Alcotest.int "pseudo semantics" 43 code

let test_asm_call_ret () =
  let code, _ =
    asm_run
      {|
_start:
        li a0, 5
        call double
        call double
        li a7, 93
        ecall
double:
        add a0, a0, a0
        ret
|}
  in
  check Alcotest.int "call/ret" 20 code

let test_asm_branches () =
  let code, _ =
    asm_run
      {|
_start:
        li t0, 0
        li a0, 0
loop:
        addi t0, t0, 1
        add a0, a0, t0
        li t1, 10
        blt t0, t1, loop
        beqz zero, done
        li a0, 0
done:
        li a7, 93
        ecall
|}
  in
  check Alcotest.int "sum 1..10" 55 code

let test_asm_errors () =
  let fails src =
    match Asm.parse src with Error _ -> true | Ok _ -> false
  in
  check Alcotest.bool "unknown mnemonic" true (fails "_start:\n  frobnicate a0\n");
  check Alcotest.bool "bad register" true (fails "_start:\n  addi q0, zero, 1\n");
  check Alcotest.bool "bad operand count" true (fails "_start:\n  add a0, a1\n");
  check Alcotest.bool "data in text" true (fails "_start:\n  .byte 1\n");
  check Alcotest.bool "bss without size" true (fails ".bss\nx:\n.text\n_start:\n  ecall\n");
  check Alcotest.bool "no labels" true (fails "  # nothing\n");
  check Alcotest.bool "unterminated string" true (fails ".data\ns: .asciz \"oops\n")

let test_asm_disasm_roundtrip_program () =
  (* Disassemble a compiled-style image and re-assemble the listing: the
     text bytes must match exactly (all offsets numeric, no labels). *)
  let original =
    [ Inst.I (Addi, Reg.a 0, Reg.x0, 21); Inst.Shift (Slli, Reg.a 0, Reg.a 0, 1);
      Inst.Branch (Bne, Reg.a 0, Reg.x0, 8); Inst.I (Addi, Reg.a 0, Reg.x0, 0);
      Inst.I (Addi, Reg.a 7, Reg.x0, 93); Inst.Ecall ]
  in
  let listing =
    "_start:\n"
    ^ String.concat "" (List.map (fun i -> "  " ^ Asm.print_inst i ^ "\n") original)
  in
  match Asm.assemble ~compress:false listing with
  | Error e -> Alcotest.fail e
  | Ok image -> (
    match Program.decode_all image with
    | Some insts ->
      check Alcotest.int "count" (List.length original) (Array.length insts);
      List.iteri
        (fun i inst ->
          check Alcotest.bool (Printf.sprintf "inst %d" i) true (Inst.equal inst insts.(i)))
        original
    | None -> Alcotest.fail "decode failed")

(* ------------------------------------------------------------------ *)
(* Decode∘encode identity over real compiler output                    *)
(* ------------------------------------------------------------------ *)

(* Every parcel of every workload's text section — including the RVC
   parcels the compressor emitted — must survive decode-then-re-encode
   bit-identically: the encoders are the only serialisation the
   encryption pipeline trusts. *)
let test_workload_text_parcel_roundtrip () =
  List.iter
    (fun (w : Eric_workloads.Workloads.t) ->
      let image = Eric_cc.Driver.compile_exn w.Eric_workloads.Workloads.source in
      let offsets = Program.parcel_offsets image in
      Array.iteri
        (fun i parcel ->
          let fail fmt =
            Printf.ksprintf
              (fun msg ->
                Alcotest.fail
                  (Printf.sprintf "%s +0x%x: %s" w.Eric_workloads.Workloads.name offsets.(i) msg))
              fmt
          in
          match parcel with
          | Program.P32 word -> (
            match Decode.decode word with
            | None -> fail "32-bit parcel %08lx does not decode" word
            | Some inst ->
              let re = Encode.encode inst in
              if re <> word then
                fail "decode/encode drift: %08lx -> %s -> %08lx" word
                  (Disasm.inst_to_string inst) re)
          | Program.P16 half -> (
            match Rvc.expand half with
            | None -> fail "16-bit parcel %04x does not expand" half
            | Some inst -> (
              match Rvc.compress inst with
              | None ->
                fail "expanded %04x (%s) no longer compresses" half
                  (Disasm.inst_to_string inst)
              | Some re ->
                if re <> half then
                  fail "expand/compress drift: %04x -> %s -> %04x" half
                    (Disasm.inst_to_string inst) re)))
        image.Program.text)
    Eric_workloads.Workloads.all

let () =
  Alcotest.run "eric_rv"
    [ ( "encode/decode",
        [ Alcotest.test_case "golden encode" `Quick test_golden_encode;
          Alcotest.test_case "golden decode" `Quick test_golden_decode;
          Alcotest.test_case "rejects garbage" `Quick test_decode_rejects_garbage;
          Alcotest.test_case "rejects bad funct" `Quick test_decode_invalid_funct;
          encode_decode_roundtrip ] );
      ( "rvc",
        [ Alcotest.test_case "exhaustive" `Quick test_rvc_exhaustive;
          Alcotest.test_case "known parcels" `Quick test_rvc_known_parcels;
          Alcotest.test_case "reserved encodings" `Quick test_rvc_reserved_encodings;
          Alcotest.test_case "immediate edges" `Quick test_rvc_immediate_edges;
          Alcotest.test_case "expand/compress coherent" `Quick test_rvc_expand_compress_coherent;
          compress_expand_roundtrip ] );
      ( "inst",
        [ Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
          Alcotest.test_case "uses/defines" `Quick test_uses_defines;
          Alcotest.test_case "reg names" `Quick test_reg_names ] );
      ( "disasm",
        [ Alcotest.test_case "strings" `Quick test_disasm_strings;
          Alcotest.test_case "stream framing" `Quick test_disasm_stream_framing ] );
      ( "parcel-roundtrip",
        [ Alcotest.test_case "workload text sections" `Quick
            test_workload_text_parcel_roundtrip ] );
      ( "program",
        [ Alcotest.test_case "sizes" `Quick test_program_sizes;
          Alcotest.test_case "binary roundtrip" `Quick test_program_binary_roundtrip;
          Alcotest.test_case "binary rejects" `Quick test_program_binary_rejects;
          Alcotest.test_case "frame text" `Quick test_frame_text;
          Alcotest.test_case "decode all" `Quick test_decode_all;
          Alcotest.test_case "symbol table roundtrip" `Quick test_program_symbol_table_roundtrip;
          Alcotest.test_case "symbolized listing" `Quick test_symbolized_listing ] );
      ( "asm-text",
        [ asm_roundtrip;
          asm_pp_parse_roundtrip;
          asm_parse_never_crashes;
          asm_parse_tokenish_fuzz;
          Alcotest.test_case "program with sections" `Quick test_asm_program;
          Alcotest.test_case "pseudo instructions" `Quick test_asm_pseudos;
          Alcotest.test_case "call/ret" `Quick test_asm_call_ret;
          Alcotest.test_case "branches and labels" `Quick test_asm_branches;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          Alcotest.test_case "disasm->asm roundtrip" `Quick test_asm_disasm_roundtrip_program ] );
      ( "assemble",
        [ Alcotest.test_case "li self-consistency" `Quick test_assemble_li_values;
          Alcotest.test_case "li exit code" `Quick test_assemble_li_exit_code;
          Alcotest.test_case "branches and labels" `Quick test_assemble_branches_and_labels;
          Alcotest.test_case "far branch relaxed" `Quick test_assemble_far_branch_relaxed;
          Alcotest.test_case "compression shrinks" `Quick test_assemble_compression_shrinks;
          Alcotest.test_case "data symbols" `Quick test_assemble_data_symbols;
          Alcotest.test_case "errors" `Quick test_assemble_errors;
          expand_li_matches_value ] ) ]
