(* Tests for the lint subsystem: the diagnostics engine (sorting, tables,
   JSONL, telemetry), the IR verifier on well-formed and seeded-defect
   IR, the machine-code verifier on workload images and hand-broken
   programs, and the encryption-policy leakage lint. *)

open Eric_lint
module Ir = Eric_cc.Ir

let check = Alcotest.check

let diag_ids ds = List.map (fun d -> d.Diag.check) ds

let has_check id ds = List.exists (fun d -> d.Diag.check = id) ds

let compile_workload (w : Eric_workloads.Workloads.t) =
  Eric_cc.Driver.compile_exn w.Eric_workloads.Workloads.source

(* ------------------------------------------------------------------ *)
(* Diagnostics engine                                                  *)
(* ------------------------------------------------------------------ *)

let test_sort_and_counts () =
  let ds =
    [ Diag.notef ~check:"c.note" "n";
      Diag.errorf ~loc:(Diag.Mc_loc { offset = 8 }) ~check:"b.err" "late";
      Diag.warningf ~check:"a.warn" "w";
      Diag.errorf ~loc:(Diag.Mc_loc { offset = 4 }) ~check:"b.err" "early" ]
  in
  let sorted = Diag.sort ds in
  check (Alcotest.list Alcotest.string) "severity then location order"
    [ "b.err"; "b.err"; "a.warn"; "c.note" ] (diag_ids sorted);
  (match sorted with
  | first :: second :: _ ->
    check Alcotest.string "offsets ascending within severity" "early" first.Diag.message;
    check Alcotest.string "later offset second" "late" second.Diag.message
  | _ -> Alcotest.fail "expected 4 diagnostics");
  let e, w, n = Diag.counts ds in
  check Alcotest.(triple int int int) "counts" (2, 1, 1) (e, w, n);
  check Alcotest.(option bool) "max severity" (Some true)
    (Option.map (fun s -> s = Diag.Error) (Diag.max_severity ds));
  check Alcotest.(option bool) "empty max severity" None
    (Option.map (fun _ -> true) (Diag.max_severity []))

let test_jsonl_roundtrip () =
  let ds =
    [ Diag.errorf
        ~loc:(Diag.Ir_loc { func = "main"; block = 3; index = Some 1 })
        ~check:"ir.temp.undef" "t9 is read but never assigned";
      Diag.warningf ~loc:(Diag.Parcel_loc { index = 2; offset = 6 }) ~check:"leak.text.plaintext"
        "x";
      Diag.notef ~check:"mc.jalr.indirect" "y" ]
  in
  let lines = String.split_on_char '\n' (String.trim (Diag.to_jsonl ds)) in
  check Alcotest.int "one line per diagnostic" 3 (List.length lines);
  List.iter2
    (fun line d ->
      match Eric_telemetry.Json.of_string line with
      | Error e -> Alcotest.fail ("jsonl line does not parse: " ^ e)
      | Ok json ->
        let str k = Option.bind (Eric_telemetry.Json.member k json) Eric_telemetry.Json.to_str in
        check Alcotest.(option string) "severity field"
          (Some (Diag.severity_name d.Diag.severity))
          (str "severity");
        check Alcotest.(option string) "check field" (Some d.Diag.check) (str "check");
        check Alcotest.(option string) "message field" (Some d.Diag.message) (str "message"))
    lines ds;
  (* Location fields survive the round-trip. *)
  match Eric_telemetry.Json.of_string (List.hd lines) with
  | Ok json ->
    let num k =
      Option.bind (Eric_telemetry.Json.member k json) Eric_telemetry.Json.to_float
    in
    check Alcotest.(option (float 0.0)) "block" (Some 3.0) (num "block");
    check Alcotest.(option (float 0.0)) "index" (Some 1.0) (num "index")
  | Error e -> Alcotest.fail e

let test_diagnostics_counter () =
  Eric_telemetry.Snapshot.reset_all ();
  Eric_telemetry.Control.enable ();
  Fun.protect
    ~finally:(fun () ->
      Eric_telemetry.Control.disable ();
      Eric_telemetry.Snapshot.reset_all ())
    (fun () ->
      ignore (Diag.errorf ~check:"mc.decode.invalid" "a");
      ignore (Diag.errorf ~check:"mc.decode.invalid" "b");
      ignore (Diag.warningf ~check:"leak.text.plaintext" "c");
      check Alcotest.int64 "per-check instance" 2L
        (Eric_telemetry.Registry.counter
           ~labels:[ ("severity", "error"); ("check", "mc.decode.invalid") ]
           "lint.diagnostics");
      check Alcotest.int64 "family total" 3L
        (Eric_telemetry.Registry.counter_family_total "lint.diagnostics"))

let test_engine_filter_and_gate () =
  let ds =
    [ Diag.errorf ~check:"mc.decode.invalid" "x";
      Diag.warningf ~check:"leak.text.plaintext" "y";
      Diag.notef ~check:"ir.cfg.unreachable-block" "z" ]
  in
  check Alcotest.int "prefix filter" 1 (List.length (Engine.filter ~checks:[ "leak." ] ds));
  check Alcotest.int "no prefixes keeps all" 3 (List.length (Engine.filter ds));
  check Alcotest.bool "fails on error" true (Engine.fails ds);
  check Alcotest.bool "warning gate" true
    (Engine.fails ~fail_on:Diag.Warning (Engine.filter ~checks:[ "leak." ] ds));
  check Alcotest.bool "notes never gate" false
    (Engine.fails ~fail_on:Diag.Warning (Engine.filter ~checks:[ "ir." ] ds));
  check Alcotest.int "exit code" 1 (Engine.exit_code ds)

let test_check_catalogue () =
  (* Every check id the checkers can emit is documented, unique, and
     carries its documented default severity. *)
  let ids = List.map (fun i -> i.Checks.id) Checks.all in
  check Alcotest.int "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      match Checks.find id with
      | Some _ -> ()
      | None -> Alcotest.fail ("undocumented check id: " ^ id))
    [ "ir.cfg.unresolved-label"; "mc.cfg.target-misaligned"; "leak.policy.empty" ];
  check Alcotest.bool "catalogue renders" true
    (String.length (Format.asprintf "%a" Checks.pp_catalogue ()) > 200)

(* ------------------------------------------------------------------ *)
(* IR verifier                                                         *)
(* ------------------------------------------------------------------ *)

let func_of ?(params = []) ?(slots = []) ~temps blocks =
  { Ir.f_name = "f"; f_params = params; f_blocks = blocks; f_slots = slots; f_temp_count = temps }

let program_of fs = { Ir.p_funcs = fs; p_data = []; p_bss = [] }

let verify_one ?params ?slots ~temps blocks =
  let f = func_of ?params ?slots ~temps blocks in
  Eric_cc.Ir_verify.verify_func (program_of [ f ]) f

let block label body term = { Ir.b_label = label; body; term }

let test_ir_clean () =
  let diags =
    verify_one ~temps:2
      [ block 0 [ Ir.Move (0, Ir.Imm 1L); Ir.Bin (Ir.Add, 1, Ir.Temp 0, Ir.Imm 2L) ]
          (Ir.Ret (Some (Ir.Temp 1))) ]
  in
  check (Alcotest.list Alcotest.string) "no diagnostics" [] (diag_ids diags)

let test_ir_unresolved_label () =
  (* The seeded "truncated terminator" defect: a branch to a block that
     does not exist. *)
  let diags =
    verify_one ~temps:1
      [ block 0 [ Ir.Move (0, Ir.Imm 0L) ] (Ir.Br (Ir.Temp 0, 1, 7)) ]
  in
  check Alcotest.bool "unresolved label reported" true
    (List.exists
       (fun d ->
         d.Diag.check = "ir.cfg.unresolved-label"
         && d.Diag.severity = Diag.Error
         && d.Diag.loc = Diag.Ir_loc { func = "f"; block = 0; index = None })
       diags);
  (* Both missing targets are reported. *)
  check Alcotest.int "two missing targets" 2
    (List.length (List.filter (fun d -> d.Diag.check = "ir.cfg.unresolved-label") diags))

let test_ir_cfg_defects () =
  check Alcotest.bool "empty function" true
    (has_check "ir.cfg.empty" (verify_one ~temps:0 []));
  let dup =
    verify_one ~temps:0
      [ block 0 [] (Ir.Jmp 1); block 1 [] (Ir.Ret None); block 1 [] (Ir.Ret None) ]
  in
  check Alcotest.bool "duplicate label" true (has_check "ir.cfg.duplicate-label" dup);
  let unreachable =
    verify_one ~temps:0 [ block 0 [] (Ir.Ret None); block 1 [] (Ir.Ret None) ]
  in
  check Alcotest.bool "unreachable block noted" true
    (List.exists
       (fun d -> d.Diag.check = "ir.cfg.unreachable-block" && d.Diag.severity = Diag.Note)
       unreachable)

let test_ir_temp_defects () =
  let undef =
    verify_one ~temps:2 [ block 0 [] (Ir.Ret (Some (Ir.Temp 1))) ]
  in
  check Alcotest.bool "never-assigned read is an error" true
    (List.exists
       (fun d -> d.Diag.check = "ir.temp.undef" && d.Diag.severity = Diag.Error)
       undef);
  let maybe =
    (* t1 is assigned on the then-path only, then read at the join. *)
    verify_one ~params:[ 0 ] ~temps:2
      [ block 0 [] (Ir.Br (Ir.Temp 0, 1, 2));
        block 1 [ Ir.Move (1, Ir.Imm 5L) ] (Ir.Jmp 2);
        block 2 [] (Ir.Ret (Some (Ir.Temp 1))) ]
  in
  check Alcotest.bool "path-dependent read is a warning" true
    (List.exists
       (fun d -> d.Diag.check = "ir.temp.maybe-undef" && d.Diag.severity = Diag.Warning)
       maybe);
  check Alcotest.bool "dominating definition is clean" false
    (has_check "ir.temp.maybe-undef"
       (verify_one ~params:[ 0 ] ~temps:2
          [ block 0 [ Ir.Move (1, Ir.Imm 5L) ] (Ir.Br (Ir.Temp 0, 1, 2));
            block 1 [] (Ir.Jmp 2);
            block 2 [] (Ir.Ret (Some (Ir.Temp 1))) ]));
  check Alcotest.bool "out-of-range temp" true
    (has_check "ir.temp.out-of-range"
       (verify_one ~temps:1 [ block 0 [ Ir.Move (4, Ir.Imm 0L) ] (Ir.Ret None) ]))

let test_ir_slot_and_call_defects () =
  check Alcotest.bool "unresolved slot" true
    (has_check "ir.slot.unresolved"
       (verify_one ~temps:1 [ block 0 [ Ir.Addr_local (0, 3) ] (Ir.Ret None) ]));
  let callee =
    { Ir.f_name = "g"; f_params = [ 0; 1 ]; f_blocks = [ block 0 [] (Ir.Ret None) ];
      f_slots = []; f_temp_count = 2 }
  in
  let caller arity_args =
    func_of ~temps:1 [ block 0 [ Ir.Call (None, "g", arity_args) ] (Ir.Ret None) ]
  in
  let p args =
    let f = caller args in
    Eric_cc.Ir_verify.verify_func (program_of [ f; callee ]) f
  in
  check Alcotest.bool "arity mismatch" true
    (has_check "ir.call.arity" (p [ Ir.Imm 1L ]));
  check Alcotest.bool "matching arity is clean" false
    (has_check "ir.call.arity" (p [ Ir.Imm 1L; Ir.Imm 2L ]));
  check Alcotest.bool "unknown callee" true
    (has_check "ir.call.unknown"
       (let f = func_of ~temps:0 [ block 0 [ Ir.Call (None, "nope", []) ] (Ir.Ret None) ] in
        Eric_cc.Ir_verify.verify_func (program_of [ f ]) f))

let test_driver_rejects_broken_ir () =
  (* A verify_ir compile of source whose IR the verifier rejects is not
     constructible from legal MiniC, so break the IR after lowering and
     check the driver-style gate directly. *)
  let f = func_of ~temps:1 [ block 0 [] (Ir.Jmp 9) ] in
  let errs = Eric_cc.Ir_verify.errors (Eric_cc.Ir_verify.verify (program_of [ f ])) in
  check Alcotest.bool "errors surfaced" true (errs <> [])

(* Satellite (a): every workload flows through the driver with the IR
   verifier enabled after lowering and after each opt-pass iteration
   (the default options), and the converged IR is diagnostic-free. *)
let test_workloads_ir_clean () =
  List.iter
    (fun (w : Eric_workloads.Workloads.t) ->
      let source = w.Eric_workloads.Workloads.source in
      match Eric_cc.Driver.compile_to_ir source with
      | Error msg -> Alcotest.fail (w.Eric_workloads.Workloads.name ^ ": " ^ msg)
      | Ok ir ->
        let diags = Eric_cc.Ir_verify.verify ir in
        if diags <> [] then
          Alcotest.fail
            (Printf.sprintf "%s: unexpected IR diagnostics after opt: %s"
               w.Eric_workloads.Workloads.name
               (String.concat "; " (List.map Diag.to_string diags))))
    Eric_workloads.Workloads.all

(* ------------------------------------------------------------------ *)
(* Machine-code verifier                                               *)
(* ------------------------------------------------------------------ *)

let image_of_parcels ?(entry = 0) parcels =
  { Eric_rv.Program.text = Array.of_list parcels;
    data = Bytes.create 0;
    bss_size = 0;
    entry_offset = entry;
    symbols = [] }

let p32 i = Eric_rv.Program.P32 (Eric_rv.Encode.encode i)

let exit_stub code =
  [ p32 (Eric_rv.Inst.I (Addi, Eric_rv.Reg.a 0, Eric_rv.Reg.x0, code));
    p32 (Eric_rv.Inst.I (Addi, Eric_rv.Reg.a 7, Eric_rv.Reg.x0, 93));
    p32 Eric_rv.Inst.Ecall ]

let test_mc_workloads_clean () =
  List.iter
    (fun (w : Eric_workloads.Workloads.t) ->
      let image = compile_workload w in
      let diags = Mc_verify.verify image in
      if diags <> [] then
        Alcotest.fail
          (Printf.sprintf "%s: unexpected MC diagnostics: %s" w.Eric_workloads.Workloads.name
             (String.concat "; " (List.map Diag.to_string diags))))
    Eric_workloads.Workloads.all

let test_mc_misaligned_branch () =
  (* The seeded "branch into a mis-aligned parcel" defect: target +6 lands
     in the middle of the 4-byte parcel at +4. *)
  let image =
    image_of_parcels
      (p32 (Eric_rv.Inst.Branch (Beq, Eric_rv.Reg.x0, Eric_rv.Reg.x0, 6)) :: exit_stub 0)
  in
  let diags = Mc_verify.verify image in
  check Alcotest.bool "misaligned target reported" true
    (List.exists
       (fun d ->
         d.Diag.check = "mc.cfg.target-misaligned"
         && d.Diag.severity = Diag.Error
         && d.Diag.loc = Diag.Mc_loc { offset = 0 })
       diags)

let test_mc_target_out_of_section () =
  let image =
    image_of_parcels (p32 (Eric_rv.Inst.Jal (Eric_rv.Reg.x0, 64)) :: exit_stub 0)
  in
  check Alcotest.bool "out-of-section target" true
    (has_check "mc.cfg.target-out-of-section" (Mc_verify.verify image))

let test_mc_fallthrough_end () =
  let image =
    image_of_parcels [ p32 (Eric_rv.Inst.I (Addi, Eric_rv.Reg.a 0, Eric_rv.Reg.x0, 1)) ]
  in
  check Alcotest.bool "fallthrough off the end" true
    (has_check "mc.cfg.fallthrough-end" (Mc_verify.verify image))

let test_mc_unbalanced_stack () =
  (* A leaf that returns without popping its frame.  Reached via a call so
     the region is not the (exempt) entry. *)
  let leaf =
    [ p32 (Eric_rv.Inst.I (Addi, Eric_rv.Reg.sp, Eric_rv.Reg.sp, -16));
      p32 (Eric_rv.Inst.Jalr (Eric_rv.Reg.x0, Eric_rv.Reg.ra, 0)) ]
  in
  let image =
    image_of_parcels ((p32 (Eric_rv.Inst.Jal (Eric_rv.Reg.ra, 16)) :: exit_stub 0) @ leaf)
  in
  let diags = Mc_verify.verify image in
  check Alcotest.bool "unbalanced return" true
    (List.exists
       (fun d -> d.Diag.check = "mc.stack.unbalanced" && d.Diag.loc = Diag.Mc_loc { offset = 20 })
       diags)

let test_mc_undecodable_parcel () =
  (* All-ones is not a valid RV64GC encoding. *)
  let image = image_of_parcels (exit_stub 0 @ [ Eric_rv.Program.P32 0xFFFFFFFFl ]) in
  check Alcotest.bool "undecodable parcel" true
    (has_check "mc.decode.invalid" (Mc_verify.verify image))

let test_mc_callee_clobber () =
  (* A called function that writes s1 with no prologue save. *)
  let leaf =
    [ p32 (Eric_rv.Inst.I (Addi, Eric_rv.Reg.s 1, Eric_rv.Reg.x0, 7));
      p32 (Eric_rv.Inst.Jalr (Eric_rv.Reg.x0, Eric_rv.Reg.ra, 0)) ]
  in
  let image =
    image_of_parcels ((p32 (Eric_rv.Inst.Jal (Eric_rv.Reg.ra, 16)) :: exit_stub 0) @ leaf)
  in
  check Alcotest.bool "clobbered callee-saved" true
    (has_check "mc.reg.callee-clobbered" (Mc_verify.verify image))

(* ------------------------------------------------------------------ *)
(* Leakage lint                                                        *)
(* ------------------------------------------------------------------ *)

let test_leakage_modes () =
  let image = compile_workload (List.hd Eric_workloads.Workloads.all) in
  (* Full encryption: nothing legible, nothing to report. *)
  let r_full, d_full = Eric.Policy_lint.lint ~mode:Eric.Config.Full image in
  check (Alcotest.list Alcotest.string) "full mode silent" [] (diag_ids d_full);
  check Alcotest.int "full mode: zero plaintext parcels" 0 r_full.Leakage.plaintext_parcels;
  check Alcotest.int "full mode: zero visible opcodes" 0 r_full.Leakage.opcode_visible;
  (* The seeded "all-plaintext policy" defect. *)
  let _, d_none =
    Eric.Policy_lint.lint ~mode:(Eric.Config.Partial (Eric.Config.Select_ranges [])) image
  in
  check Alcotest.bool "empty policy is an error" true
    (List.exists
       (fun d -> d.Diag.check = "leak.policy.empty" && d.Diag.severity = Diag.Error)
       d_none);
  (* Field mode with immediate scope: opcodes legible, warned above the
     advisory threshold; strict --max-leakage escalates. *)
  let mode = Eric.Config.Field (Eric.Config.Imm_fields, Eric.Config.Select_all) in
  let r_field, d_field = Eric.Policy_lint.lint ~mode image in
  check Alcotest.bool "opcode histogram leak warned" true
    (List.exists
       (fun d -> d.Diag.check = "leak.opcode.visible" && d.Diag.severity = Diag.Warning)
       d_field);
  check Alcotest.int "field-imm hides every 32-bit call edge" 0
    r_field.Leakage.call_edges_plaintext;
  let _, d_strict = Eric.Policy_lint.lint ~max_leakage:0.1 ~mode image in
  check Alcotest.bool "gate escalates to error" true
    (List.exists
       (fun d -> d.Diag.check = "leak.opcode.visible" && d.Diag.severity = Diag.Error)
       d_strict)

let test_leakage_partial_fraction () =
  let image = compile_workload (List.hd Eric_workloads.Workloads.all) in
  let mode =
    Eric.Config.Partial (Eric.Config.Select_fraction { fraction = 0.5; seed = 0x5EEDL })
  in
  let r, _ = Eric.Policy_lint.lint ~mode image in
  let f = r.Leakage.plaintext_fraction in
  check Alcotest.bool "about half the parcels stay plaintext" true (f > 0.3 && f < 0.7);
  (* The report agrees with the encryption unit's own accounting. *)
  let _, stats = Eric.Encrypt.encrypt ~key:(Bytes.make 32 '\x2a') ~mode image in
  check Alcotest.int "selection agrees with Encrypt"
    stats.Eric.Encrypt.encrypted_parcels
    (r.Leakage.parcels - r.Leakage.plaintext_parcels)

let () =
  Alcotest.run "eric_lint"
    [ ( "diag",
        [ Alcotest.test_case "sort and counts" `Quick test_sort_and_counts;
          Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "telemetry counter" `Quick test_diagnostics_counter;
          Alcotest.test_case "engine filter and gate" `Quick test_engine_filter_and_gate;
          Alcotest.test_case "check catalogue" `Quick test_check_catalogue ] );
      ( "ir-verify",
        [ Alcotest.test_case "clean function" `Quick test_ir_clean;
          Alcotest.test_case "unresolved label" `Quick test_ir_unresolved_label;
          Alcotest.test_case "cfg defects" `Quick test_ir_cfg_defects;
          Alcotest.test_case "temp defects" `Quick test_ir_temp_defects;
          Alcotest.test_case "slot and call defects" `Quick test_ir_slot_and_call_defects;
          Alcotest.test_case "driver gate" `Quick test_driver_rejects_broken_ir;
          Alcotest.test_case "workloads clean" `Quick test_workloads_ir_clean ] );
      ( "mc-verify",
        [ Alcotest.test_case "workloads clean" `Quick test_mc_workloads_clean;
          Alcotest.test_case "misaligned branch" `Quick test_mc_misaligned_branch;
          Alcotest.test_case "target out of section" `Quick test_mc_target_out_of_section;
          Alcotest.test_case "fallthrough end" `Quick test_mc_fallthrough_end;
          Alcotest.test_case "unbalanced stack" `Quick test_mc_unbalanced_stack;
          Alcotest.test_case "undecodable parcel" `Quick test_mc_undecodable_parcel;
          Alcotest.test_case "callee clobber" `Quick test_mc_callee_clobber ] );
      ( "leakage",
        [ Alcotest.test_case "modes" `Quick test_leakage_modes;
          Alcotest.test_case "partial fraction" `Quick test_leakage_partial_fraction ] ) ]
