(* Tests for the fleet subsystem: registry wire format (round-trip
   property + strict rejection), content-addressed artifact cache,
   retry/backoff shipping, deployment campaigns over hostile channels
   (nobody silently dropped), and key-rotation campaigns. *)

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let test_source =
  {|
int main() {
  int s = 0;
  for (int i = 1; i <= 16; i = i + 1) { s = s + i; }
  println_int(s);
  return 0;
}
|}

let enroll_fleet ?(start = 9_100) n =
  let reg = Eric_fleet.Registry.create () in
  for i = 0 to n - 1 do
    match Eric_fleet.Registry.enroll reg (Int64.of_int (start + i)) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  reg

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)
(* ------------------------------------------------------------------ *)

let test_backoff_schedule () =
  let p = Eric_fleet.Backoff.default in
  check Alcotest.int64 "retry 1 = base" p.Eric_fleet.Backoff.base_delay_ns
    (Eric_fleet.Backoff.delay_ns p ~retry:1);
  check Alcotest.int64 "retry 2 doubles"
    (Int64.mul 2L p.Eric_fleet.Backoff.base_delay_ns)
    (Eric_fleet.Backoff.delay_ns p ~retry:2);
  check Alcotest.int64 "far retry hits the cap" p.Eric_fleet.Backoff.max_delay_ns
    (Eric_fleet.Backoff.delay_ns p ~retry:40);
  check Alcotest.int64 "total = sum of delays"
    (Int64.add (Eric_fleet.Backoff.delay_ns p ~retry:1) (Eric_fleet.Backoff.delay_ns p ~retry:2))
    (Eric_fleet.Backoff.total_backoff_ns p ~retries:2)

let test_backoff_validate () =
  let bad p what =
    match Eric_fleet.Backoff.validate p with
    | Ok _ -> Alcotest.fail (what ^ " accepted")
    | Error _ -> ()
  in
  (match Eric_fleet.Backoff.validate Eric_fleet.Backoff.default with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  bad { Eric_fleet.Backoff.default with Eric_fleet.Backoff.max_attempts = 0 } "0 attempts";
  bad { Eric_fleet.Backoff.default with Eric_fleet.Backoff.multiplier = 0 } "0 multiplier";
  bad { Eric_fleet.Backoff.default with Eric_fleet.Backoff.base_delay_ns = -1L } "negative delay";
  bad
    { Eric_fleet.Backoff.default with Eric_fleet.Backoff.quarantine_refusals = 0 }
    "0 quarantine threshold"

(* ------------------------------------------------------------------ *)
(* Channels                                                            *)
(* ------------------------------------------------------------------ *)

let test_channel_plans () =
  let ch = Eric_fleet.Channel.drop_first 2 in
  (match Eric_fleet.Channel.attack ch ~device:1L ~attempt:1 with
  | Eric.Protocol.Bit_flips _ -> ()
  | _ -> Alcotest.fail "attempt 1 should be corrupted");
  (match Eric_fleet.Channel.attack ch ~device:1L ~attempt:3 with
  | Eric.Protocol.No_attack -> ()
  | _ -> Alcotest.fail "attempt 3 should be clean");
  (* flaky draws are a pure function of (seed, device, attempt) *)
  let f1 = Eric_fleet.Channel.flaky ~probability:0.5 ~seed:9L () in
  let f2 = Eric_fleet.Channel.flaky ~probability:0.5 ~seed:9L () in
  for device = 1 to 5 do
    for attempt = 1 to 5 do
      let device = Int64.of_int device in
      check Alcotest.bool "same plan" true
        (Eric_fleet.Channel.attack f1 ~device ~attempt
        = Eric_fleet.Channel.attack f2 ~device ~attempt)
    done
  done

let test_channel_of_string () =
  let ok s = match Eric_fleet.Channel.of_string s with Ok c -> c | Error e -> Alcotest.fail e in
  check Alcotest.string "clean" "clean" (Eric_fleet.Channel.name (ok "clean"));
  ignore (ok "drop-first:3");
  ignore (ok "flaky:0.4");
  ignore (ok "flaky:0.4:7");
  List.iter
    (fun s ->
      match Eric_fleet.Channel.of_string s with
      | Ok _ -> Alcotest.fail (s ^ " accepted")
      | Error _ -> ())
    [ "bogus"; "flaky:2.0"; "flaky:-1"; "drop-first:x"; "drop-first:-1"; "" ]

(* ------------------------------------------------------------------ *)
(* Registry wire format                                                *)
(* ------------------------------------------------------------------ *)

let helper_eq a b =
  match (a, b) with
  | None, None -> true
  | Some h, Some h' ->
    Bytes.equal (Eric_puf.Enroll.serialize h) (Eric_puf.Enroll.serialize h')
  | _ -> false

let entry_eq (a : Eric_fleet.Registry.entry) (b : Eric_fleet.Registry.entry) =
  Int64.equal a.Eric_fleet.Registry.device_id b.Eric_fleet.Registry.device_id
  && a.Eric_fleet.Registry.epoch = b.Eric_fleet.Registry.epoch
  && a.Eric_fleet.Registry.label = b.Eric_fleet.Registry.label
  && Bytes.equal a.Eric_fleet.Registry.key b.Eric_fleet.Registry.key
  && a.Eric_fleet.Registry.firmware_epoch = b.Eric_fleet.Registry.firmware_epoch
  && a.Eric_fleet.Registry.status = b.Eric_fleet.Registry.status
  && helper_eq a.Eric_fleet.Registry.helper b.Eric_fleet.Registry.helper
  && a.Eric_fleet.Registry.instability_ppm = b.Eric_fleet.Registry.instability_ppm

let registry_roundtrip_prop =
  (* Arbitrary entries (device id = index, so ids never collide) survive
     serialize/parse byte-for-byte. *)
  let entry_gen =
    QCheck.(
      list_of_size (Gen.int_range 0 8)
        (triple
           (pair small_nat small_printable_string)
           (pair (string_of_size (Gen.return 32)) small_nat)
           (pair (option small_printable_string) small_nat)))
  in
  qtest ~count:200 "registry round-trips" entry_gen (fun specs ->
      let reg = Eric_fleet.Registry.create () in
      List.iteri
        (fun i ((epoch, label), (key, firmware_epoch), (quarantine, instability_ppm)) ->
          let entry =
            {
              Eric_fleet.Registry.device_id = Int64.of_int i;
              epoch;
              label;
              key = Bytes.of_string key;
              firmware_epoch;
              status =
                (match quarantine with
                | None -> Eric_fleet.Registry.Active
                | Some reason -> Eric_fleet.Registry.Quarantined reason);
              helper = None;
              instability_ppm;
            }
          in
          match Eric_fleet.Registry.add reg entry with
          | Ok _ -> ()
          | Error e -> failwith e)
        specs;
      match Eric_fleet.Registry.parse (Eric_fleet.Registry.serialize reg) with
      | Error e -> QCheck.Test.fail_report e
      | Ok reg' ->
        List.length (Eric_fleet.Registry.entries reg') = List.length specs
        && List.for_all2 entry_eq (Eric_fleet.Registry.entries reg)
             (Eric_fleet.Registry.entries reg'))

let test_registry_parse_rejects () =
  let reg = enroll_fleet 3 in
  let good = Eric_fleet.Registry.serialize reg in
  let expect_error what bytes =
    match Eric_fleet.Registry.parse bytes with
    | Ok _ -> Alcotest.fail (what ^ " parsed")
    | Error _ -> ()
  in
  (match Eric_fleet.Registry.parse good with
  | Ok r -> check Alcotest.int "baseline parses" 3 (Eric_fleet.Registry.count r)
  | Error e -> Alcotest.fail e);
  (* truncation at every prefix length must fail, never crash *)
  for len = 0 to Bytes.length good - 1 do
    expect_error (Printf.sprintf "truncated to %d" len) (Bytes.sub good 0 len)
  done;
  let flip pos =
    let b = Bytes.copy good in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
    b
  in
  expect_error "bad magic" (flip 0);
  expect_error "bad version" (flip 4);
  expect_error "reserved set" (flip 6);
  expect_error "trailing byte" (Bytes.cat good (Bytes.of_string "x"));
  (* duplicate ids: double the first record and patch the count *)
  let one = Eric_fleet.Registry.create () in
  (match Eric_fleet.Registry.enroll one 42L with Ok _ -> () | Error e -> Alcotest.fail e);
  let b = Eric_fleet.Registry.serialize one in
  let record = Bytes.sub b 12 (Bytes.length b - 12) in
  let doubled = Bytes.cat b record in
  Eric_util.Bytesx.set_u32 doubled 8 2l;
  expect_error "duplicate device id" doubled

let test_registry_save_load () =
  let reg = enroll_fleet 4 in
  (match Eric_fleet.Registry.enroll reg 4242L with
  | Ok e ->
    Eric_fleet.Registry.update reg
      { e with Eric_fleet.Registry.status = Eric_fleet.Registry.Quarantined "test reason" }
  | Error e -> Alcotest.fail e);
  let path = Filename.temp_file "eric_fleet" ".efrg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Eric_fleet.Registry.save reg path;
      match Eric_fleet.Registry.load path with
      | Error e -> Alcotest.fail e
      | Ok reg' ->
        check Alcotest.int "count survives" 5 (Eric_fleet.Registry.count reg');
        check Alcotest.bool "entries survive" true
          (List.for_all2 entry_eq (Eric_fleet.Registry.entries reg)
             (Eric_fleet.Registry.entries reg'));
        check Alcotest.int "quarantine survives" 1
          (List.length (Eric_fleet.Registry.quarantined reg')));
  match Eric_fleet.Registry.load "/nonexistent/registry.efrg" with
  | Ok _ -> Alcotest.fail "missing file loaded"
  | Error _ -> ()

let test_registry_enroll_rejects_duplicates () =
  let reg = enroll_fleet 2 in
  match Eric_fleet.Registry.enroll reg 9_100L with
  | Ok _ -> Alcotest.fail "duplicate enrolled"
  | Error _ -> check Alcotest.int "count unchanged" 2 (Eric_fleet.Registry.count reg)

let test_registry_helper_roundtrip () =
  (* Reliability-aware enrollment attaches helper data; the v2 wire
     format must carry it byte-for-byte, extractor tag included. *)
  let reg = enroll_fleet 2 in
  List.iter
    (fun (e : Eric_fleet.Registry.entry) ->
      check Alcotest.bool "enrollment produced helper data" true
        (e.Eric_fleet.Registry.helper <> None))
    (Eric_fleet.Registry.entries reg);
  match Eric_fleet.Registry.parse (Eric_fleet.Registry.serialize reg) with
  | Error e -> Alcotest.fail e
  | Ok reg' ->
    check Alcotest.bool "helpers survive the round-trip" true
      (List.for_all2 entry_eq (Eric_fleet.Registry.entries reg)
         (Eric_fleet.Registry.entries reg'))

let test_registry_v1_compat () =
  (* A hand-built version-1 file (no helper section) must still parse,
     landing as a legacy entry: no helper, zero instability. *)
  let buf = Buffer.create 64 in
  let u16 v =
    Buffer.add_char buf (Char.chr (v land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))
  in
  let u32 v = u16 (v land 0xFFFF); u16 ((v lsr 16) land 0xFFFF) in
  Buffer.add_string buf "EFRG";
  u16 1 (* version *);
  u16 0 (* reserved *);
  u32 1 (* count *);
  Buffer.add_string buf "\x2A\x00\x00\x00\x00\x00\x00\x00" (* device id 42 *);
  u32 3 (* epoch *);
  u32 7 (* firmware epoch *);
  u16 4;
  Buffer.add_string buf "eric" (* label *);
  u16 4;
  Buffer.add_string buf "KEY!" (* key *);
  Buffer.add_char buf '\000' (* active *);
  match Eric_fleet.Registry.parse (Buffer.to_bytes buf) with
  | Error e -> Alcotest.fail ("v1 registry refused: " ^ e)
  | Ok reg ->
    let e = List.hd (Eric_fleet.Registry.entries reg) in
    check Alcotest.int64 "device id" 42L e.Eric_fleet.Registry.device_id;
    check Alcotest.int "epoch" 3 e.Eric_fleet.Registry.epoch;
    check Alcotest.bool "legacy entry has no helper" true
      (e.Eric_fleet.Registry.helper = None);
    check Alcotest.int "legacy instability is zero" 0 e.Eric_fleet.Registry.instability_ppm;
    (* re-serializing writes version 2; the upgrade must round-trip *)
    (match Eric_fleet.Registry.parse (Eric_fleet.Registry.serialize reg) with
    | Error e -> Alcotest.fail ("re-serialized v1 refused: " ^ e)
    | Ok reg' ->
      check Alcotest.bool "v1 -> v2 rewrite round-trips" true
        (List.for_all2 entry_eq (Eric_fleet.Registry.entries reg)
           (Eric_fleet.Registry.entries reg')))

(* ------------------------------------------------------------------ *)
(* Artifact cache                                                      *)
(* ------------------------------------------------------------------ *)

let test_cache_memory_tier () =
  let cache = Eric_fleet.Artifact_cache.create () in
  let get () =
    match Eric_fleet.Artifact_cache.get_or_compile cache ~mode:Eric.Config.Full test_source with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let p1, o1 = get () in
  check Alcotest.bool "first is a miss" true (o1 = Eric_fleet.Artifact_cache.Miss);
  let p2, o2 = get () in
  check Alcotest.bool "second is a hit" true (o2 = Eric_fleet.Artifact_cache.Memory_hit);
  check Alcotest.bool "hit returns the same prepared build" true (p1 == p2);
  check Alcotest.int "hit count" 1 (Eric_fleet.Artifact_cache.hits cache);
  check Alcotest.int "miss count" 1 (Eric_fleet.Artifact_cache.misses cache)

let test_cache_disk_tier () =
  let dir = Filename.temp_file "eric_cache" "" in
  Sys.remove dir;
  let get cache =
    match Eric_fleet.Artifact_cache.get_or_compile cache ~mode:Eric.Config.Full test_source with
    | Ok (_, o) -> o
    | Error e -> Alcotest.fail e
  in
  let c1 = Eric_fleet.Artifact_cache.create ~dir () in
  check Alcotest.bool "cold process misses" true (get c1 = Eric_fleet.Artifact_cache.Miss);
  (* a second process (fresh memory tier) finds the compiled image on disk *)
  let c2 = Eric_fleet.Artifact_cache.create ~dir () in
  check Alcotest.bool "warm process hits disk" true (get c2 = Eric_fleet.Artifact_cache.Disk_hit);
  check Alcotest.bool "then memory" true (get c2 = Eric_fleet.Artifact_cache.Memory_hit);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_cache_key_sensitivity () =
  let d ?(options = Eric_cc.Driver.default_options) ?(mode = Eric.Config.Full) src =
    Eric_fleet.Artifact_cache.digest ~options ~mode src
  in
  let base = d test_source in
  check Alcotest.string "deterministic" base (d test_source);
  check Alcotest.bool "source text in key" true (base <> d (test_source ^ " "));
  check Alcotest.bool "options in key" true
    (base
    <> d ~options:{ Eric_cc.Driver.default_options with Eric_cc.Driver.optimize = false }
         test_source);
  check Alcotest.bool "mode in key" true
    (base <> d ~mode:(Eric.Config.Partial Eric.Config.Select_all) test_source);
  check Alcotest.bool "selection seed in key" true
    (d ~mode:(Eric.Config.Partial (Eric.Config.Select_fraction { fraction = 0.5; seed = 1L }))
       test_source
    <> d
         ~mode:(Eric.Config.Partial (Eric.Config.Select_fraction { fraction = 0.5; seed = 2L }))
         test_source)

(* ------------------------------------------------------------------ *)
(* Personalize = build                                                 *)
(* ------------------------------------------------------------------ *)

let test_personalize_equals_build () =
  (* The split pipeline (prepare once, personalize per key) must produce
     byte-identical packages to the monolithic Source.build. *)
  let key = Eric.Target.derived_key (Eric.Target.of_id 5005L) in
  List.iter
    (fun mode ->
      let direct =
        match Eric.Source.build ~mode ~key test_source with
        | Ok b -> b
        | Error e -> Alcotest.fail e
      in
      let split =
        match Eric.Source.prepare ~mode test_source with
        | Ok p -> Eric.Source.personalize ~key p
        | Error e -> Alcotest.fail e
      in
      check Alcotest.string "identical package bytes"
        (Eric_util.Bytesx.to_hex (Eric.Package.serialize direct.Eric.Source.package))
        (Eric_util.Bytesx.to_hex (Eric.Package.serialize split.Eric.Source.package)))
    [ Eric.Config.Full;
      Eric.Config.Partial (Eric.Config.Select_fraction { fraction = 0.5; seed = 3L });
      Eric.Config.Field (Eric.Config.Imm_fields, Eric.Config.Select_all) ]

(* ------------------------------------------------------------------ *)
(* Shipper                                                             *)
(* ------------------------------------------------------------------ *)

let ship_one ?policy ?channel reg =
  let entry = List.hd (Eric_fleet.Registry.entries reg) in
  let build =
    match Eric.Source.prepare ~mode:Eric.Config.Full test_source with
    | Ok p -> Eric.Source.personalize ~key:entry.Eric_fleet.Registry.key p
    | Error e -> Alcotest.fail e
  in
  Eric_fleet.Shipper.ship ?policy ?channel ~build ~target:(Eric_fleet.Registry.target reg entry) ()

let test_shipper_clean_delivery () =
  let d = ship_one (enroll_fleet 1) in
  check Alcotest.bool "delivered" true (Eric_fleet.Shipper.delivered d);
  check Alcotest.bool "not retried" false (Eric_fleet.Shipper.retried d);
  check Alcotest.int "one attempt" 1 d.Eric_fleet.Shipper.attempts;
  check Alcotest.int64 "no backoff" 0L d.Eric_fleet.Shipper.backoff_ns

let test_shipper_retry_recovers () =
  let d = ship_one ~channel:(Eric_fleet.Channel.drop_first 2) (enroll_fleet 1) in
  check Alcotest.bool "delivered" true (Eric_fleet.Shipper.delivered d);
  check Alcotest.bool "retried" true (Eric_fleet.Shipper.retried d);
  check Alcotest.int "three attempts" 3 d.Eric_fleet.Shipper.attempts;
  check Alcotest.int "two refusals" 2 (List.length d.Eric_fleet.Shipper.refusals);
  check Alcotest.int64 "backoff = delay(1)+delay(2)"
    (Eric_fleet.Backoff.total_backoff_ns Eric_fleet.Backoff.default ~retries:2)
    d.Eric_fleet.Shipper.backoff_ns

let test_shipper_exhaustion_quarantines () =
  let d =
    ship_one ~channel:(Eric_fleet.Channel.always (Eric.Protocol.Truncate 10)) (enroll_fleet 1)
  in
  (match d.Eric_fleet.Shipper.outcome with
  | Eric_fleet.Shipper.Quarantined _ -> ()
  | Eric_fleet.Shipper.Delivered _ -> Alcotest.fail "truncated channel delivered");
  check Alcotest.int "used every attempt"
    Eric_fleet.Backoff.default.Eric_fleet.Backoff.max_attempts d.Eric_fleet.Shipper.attempts

let test_shipper_signature_refusals_quarantine () =
  (* A package whose embedded signature is corrupted decrypts and frames
     fine but fails HDE validation every time; the shipper must trip the
     quarantine threshold instead of burning every attempt. *)
  let reg = enroll_fleet 1 in
  let entry = List.hd (Eric_fleet.Registry.entries reg) in
  let build =
    match Eric.Source.prepare ~mode:Eric.Config.Full test_source with
    | Ok p ->
      let b = Eric.Source.personalize ~key:entry.Eric_fleet.Registry.key p in
      let pkg = b.Eric.Source.package in
      let sig' = Bytes.copy pkg.Eric.Package.enc_signature in
      Bytes.set sig' 0 (Char.chr (Char.code (Bytes.get sig' 0) lxor 1));
      { b with Eric.Source.package = { pkg with Eric.Package.enc_signature = sig' } }
    | Error e -> Alcotest.fail e
  in
  let policy = { Eric_fleet.Backoff.default with Eric_fleet.Backoff.max_attempts = 10 } in
  let d =
    Eric_fleet.Shipper.ship ~policy ~build ~target:(Eric_fleet.Registry.target reg entry) ()
  in
  match d.Eric_fleet.Shipper.outcome with
  | Eric_fleet.Shipper.Quarantined { reason } ->
    check Alcotest.int "stopped at the refusal threshold"
      policy.Eric_fleet.Backoff.quarantine_refusals d.Eric_fleet.Shipper.attempts;
    (match reason with
    | Eric_fleet.Shipper.Signature_refusals n ->
      check Alcotest.int "typed reason counts the refusals"
        policy.Eric_fleet.Backoff.quarantine_refusals n
    | Eric_fleet.Shipper.Key_reconstruction_failed | Eric_fleet.Shipper.Exhausted _
    | Eric_fleet.Shipper.Integrity_faults _ ->
      Alcotest.fail "wrong quarantine reason")
  | Eric_fleet.Shipper.Delivered _ -> Alcotest.fail "foreign-keyed package delivered"

let guarded_fleet n =
  let reg = enroll_fleet n in
  Eric_fleet.Registry.set_hde reg
    { Eric_hw.Hde.default_config with
      Eric_hw.Hde.guard = Eric_hw.Guard.fetch_and_scrub ~interval_cycles:256 };
  reg

(* Flip one text bit between load and run: the resident image diverges
   from the digests the guard enrolled at HDE load time. *)
let flip_text ~attempt:_ memory (_ : Eric_rv.Program.t) =
  let addr = Eric_rv.Program.Layout.text_base + 4 in
  Eric_sim.Memory.write_u8 memory addr (Eric_sim.Memory.read_u8 memory addr lxor 0x10)

let test_shipper_integrity_retry_recovers () =
  let reg = guarded_fleet 1 in
  let entry = List.hd (Eric_fleet.Registry.entries reg) in
  let build =
    match Eric.Source.prepare ~mode:Eric.Config.Full test_source with
    | Ok p -> Eric.Source.personalize ~key:entry.Eric_fleet.Registry.key p
    | Error e -> Alcotest.fail e
  in
  let target = Eric_fleet.Registry.target reg entry in
  let soft_errors ~attempt memory image =
    if attempt = 1 then flip_text ~attempt memory image
  in
  let d = Eric_fleet.Shipper.ship ~execute:true ~soft_errors ~build ~target () in
  check Alcotest.bool "re-delivery recovered the device" true
    (Eric_fleet.Shipper.delivered d);
  check Alcotest.int "first execution guard-faulted" 1
    d.Eric_fleet.Shipper.integrity_faults;
  check Alcotest.int "one retry" 2 d.Eric_fleet.Shipper.attempts;
  check Alcotest.bool "backoff charged for the integrity retry" true
    (d.Eric_fleet.Shipper.backoff_ns > 0L);
  (match d.Eric_fleet.Shipper.outcome with
  | Eric_fleet.Shipper.Delivered { exec = Some r; _ } ->
    check Alcotest.bool "clean re-run completed" true
      (r.Eric_sim.Soc.status = Eric_sim.Cpu.Exited 0)
  | _ -> Alcotest.fail "expected a Delivered outcome with an execution");
  check Alcotest.bool "device health restored" true
    (Eric.Target.health target = Eric.Target.Healthy)

let test_shipper_integrity_quarantine () =
  (* persistent corruption: every re-delivery faults again, so the
     shipper must give up with the typed reason, not burn all attempts *)
  let reg = guarded_fleet 1 in
  let entry = List.hd (Eric_fleet.Registry.entries reg) in
  let build =
    match Eric.Source.prepare ~mode:Eric.Config.Full test_source with
    | Ok p -> Eric.Source.personalize ~key:entry.Eric_fleet.Registry.key p
    | Error e -> Alcotest.fail e
  in
  let target = Eric_fleet.Registry.target reg entry in
  let policy = { Eric_fleet.Backoff.default with Eric_fleet.Backoff.max_attempts = 10 } in
  let d =
    Eric_fleet.Shipper.ship ~policy ~execute:true ~soft_errors:flip_text ~build ~target ()
  in
  (match d.Eric_fleet.Shipper.outcome with
  | Eric_fleet.Shipper.Quarantined { reason = Eric_fleet.Shipper.Integrity_faults n } ->
    check Alcotest.int "faulted to the threshold"
      policy.Eric_fleet.Backoff.quarantine_refusals n;
    check Alcotest.string "stable registry label"
      (Printf.sprintf "%d integrity faults" n)
      (Eric_fleet.Shipper.quarantine_label
         (Eric_fleet.Shipper.Integrity_faults n))
  | _ -> Alcotest.fail "expected an Integrity_faults quarantine");
  check Alcotest.int "counted every faulted run"
    policy.Eric_fleet.Backoff.quarantine_refusals d.Eric_fleet.Shipper.integrity_faults;
  match Eric.Target.health target with
  | Eric.Target.Integrity_faulted _ -> ()
  | Eric.Target.Healthy -> Alcotest.fail "quarantined device reports Healthy"

let test_shipper_unguarded_executes_corrupted () =
  (* the negative control: without a guard the same flip runs to
     completion (or machine-traps) and the shipper sees no integrity
     fault — this is exactly the exposure the guard exists to close *)
  let reg = enroll_fleet 1 in
  let entry = List.hd (Eric_fleet.Registry.entries reg) in
  let build =
    match Eric.Source.prepare ~mode:Eric.Config.Full test_source with
    | Ok p -> Eric.Source.personalize ~key:entry.Eric_fleet.Registry.key p
    | Error e -> Alcotest.fail e
  in
  let d =
    Eric_fleet.Shipper.ship ~execute:true ~soft_errors:flip_text ~build
      ~target:(Eric_fleet.Registry.target reg entry) ()
  in
  check Alcotest.bool "delivered without noticing" true (Eric_fleet.Shipper.delivered d);
  check Alcotest.int "no integrity faults recorded" 0
    d.Eric_fleet.Shipper.integrity_faults;
  match d.Eric_fleet.Shipper.outcome with
  | Eric_fleet.Shipper.Delivered { exec = Some r; _ } ->
    check Alcotest.bool "corrupted run not an Integrity_fault" true
      (match r.Eric_sim.Soc.status with
      | Eric_sim.Cpu.Integrity_fault _ -> false
      | _ -> true)
  | _ -> Alcotest.fail "expected a Delivered outcome with an execution"

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)
(* ------------------------------------------------------------------ *)

let deploy ?config ~cache reg =
  match Eric_fleet.Campaign.deploy ?config ~cache ~registry:reg test_source with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_campaign_happy_path () =
  let reg = enroll_fleet 6 in
  let cache = Eric_fleet.Artifact_cache.create () in
  let r = deploy ~cache reg in
  check Alcotest.int "all delivered" 6 r.Eric_fleet.Campaign.delivered;
  check Alcotest.int "none quarantined" 0 r.Eric_fleet.Campaign.quarantined;
  check Alcotest.bool "all accounted" true (Eric_fleet.Campaign.all_accounted r);
  check Alcotest.bool "compiled fresh" true
    (r.Eric_fleet.Campaign.cache = Eric_fleet.Artifact_cache.Miss);
  List.iter
    (fun e -> check Alcotest.int "firmware stamped" 1 e.Eric_fleet.Registry.firmware_epoch)
    (Eric_fleet.Registry.entries reg);
  (* second campaign: cache hit, firmware bumps again *)
  let r2 = deploy ~cache reg in
  check Alcotest.bool "second campaign hits cache" true
    (r2.Eric_fleet.Campaign.cache = Eric_fleet.Artifact_cache.Memory_hit);
  check Alcotest.int "fresh epoch" 2 r2.Eric_fleet.Campaign.firmware_epoch

let test_campaign_executes_when_asked () =
  let reg = enroll_fleet 2 in
  let cache = Eric_fleet.Artifact_cache.create () in
  let config = { Eric_fleet.Campaign.default_config with Eric_fleet.Campaign.execute = true } in
  let r = deploy ~config ~cache reg in
  check Alcotest.int "all delivered" 2 r.Eric_fleet.Campaign.delivered;
  List.iter
    (fun (_, result) ->
      match result with
      | Eric_fleet.Campaign.Shipped
          { Eric_fleet.Shipper.outcome = Eric_fleet.Shipper.Delivered { exec = Some res; _ }; _ }
        ->
        check Alcotest.string "program ran" "136\n" res.Eric_sim.Soc.output
      | _ -> Alcotest.fail "expected an executed delivery")
    r.Eric_fleet.Campaign.devices

let test_campaign_hostile_channel_no_silent_drops () =
  let reg = enroll_fleet 5 in
  let cache = Eric_fleet.Artifact_cache.create () in
  let config =
    { Eric_fleet.Campaign.default_config with
      Eric_fleet.Campaign.channel = Eric_fleet.Channel.always (Eric.Protocol.Truncate 16) }
  in
  let r = deploy ~config ~cache reg in
  check Alcotest.int "nothing delivered" 0 r.Eric_fleet.Campaign.delivered;
  check Alcotest.int "everyone explicitly quarantined" 5 r.Eric_fleet.Campaign.quarantined;
  check Alcotest.bool "all accounted" true (Eric_fleet.Campaign.all_accounted r);
  check Alcotest.int "registry flags them" 5
    (List.length (Eric_fleet.Registry.quarantined reg));
  (* the next campaign skips quarantined devices but still reports them *)
  let r2 = deploy ~cache reg in
  check Alcotest.int "skipped, not dropped" 5 r2.Eric_fleet.Campaign.skipped;
  check Alcotest.bool "still all accounted" true (Eric_fleet.Campaign.all_accounted r2)

let test_campaign_retry_recovers_everyone () =
  let reg = enroll_fleet 8 in
  let cache = Eric_fleet.Artifact_cache.create () in
  let config =
    { Eric_fleet.Campaign.default_config with
      Eric_fleet.Campaign.channel = Eric_fleet.Channel.drop_first 1 }
  in
  let r = deploy ~config ~cache reg in
  check Alcotest.int "all delivered" 8 r.Eric_fleet.Campaign.delivered;
  check Alcotest.int "all after retry" 8 r.Eric_fleet.Campaign.retried;
  check Alcotest.bool "backoff accounted" true (r.Eric_fleet.Campaign.backoff_ns > 0L)

(* ------------------------------------------------------------------ *)
(* Rotation                                                            *)
(* ------------------------------------------------------------------ *)

let test_rotation_rekeys_and_reactivates () =
  let reg = enroll_fleet 4 in
  let cache = Eric_fleet.Artifact_cache.create () in
  let old_keys =
    List.map (fun e -> Bytes.copy e.Eric_fleet.Registry.key) (Eric_fleet.Registry.entries reg)
  in
  (* quarantine one device, then rotate *)
  (let e = List.hd (Eric_fleet.Registry.entries reg) in
   Eric_fleet.Registry.update reg
     { e with Eric_fleet.Registry.status = Eric_fleet.Registry.Quarantined "flaky link" });
  let report = Eric_fleet.Rotation.rotate ~epoch:7 reg in
  check Alcotest.int "all rotated" 4 report.Eric_fleet.Rotation.rotated;
  check Alcotest.int "quarantined reactivated" 1 report.Eric_fleet.Rotation.reactivated;
  check Alcotest.int "none failed" 0 (List.length report.Eric_fleet.Rotation.failed);
  List.iter2
    (fun old e ->
      check Alcotest.int "epoch bumped" 7 e.Eric_fleet.Registry.epoch;
      check Alcotest.bool "key changed" false (Bytes.equal old e.Eric_fleet.Registry.key);
      check Alcotest.bool "active again" true
        (e.Eric_fleet.Registry.status = Eric_fleet.Registry.Active))
    old_keys (Eric_fleet.Registry.entries reg);
  (* redeploy after rotation: same plaintext, so the artifact cache still
     hits — re-encryption without recompilation *)
  let r1 = deploy ~cache reg in
  check Alcotest.int "redeploy delivers" 4 r1.Eric_fleet.Campaign.delivered;
  let r2 = deploy ~cache reg in
  check Alcotest.bool "no recompile after rotation" true
    (r2.Eric_fleet.Campaign.cache = Eric_fleet.Artifact_cache.Memory_hit)

let test_rotation_revokes_old_packages () =
  let reg = enroll_fleet 1 in
  let entry = List.hd (Eric_fleet.Registry.entries reg) in
  let old_build =
    match Eric.Source.prepare ~mode:Eric.Config.Full test_source with
    | Ok p -> Eric.Source.personalize ~key:entry.Eric_fleet.Registry.key p
    | Error e -> Alcotest.fail e
  in
  ignore (Eric_fleet.Rotation.rotate ~epoch:2 reg);
  let entry' = List.hd (Eric_fleet.Registry.entries reg) in
  let d =
    Eric_fleet.Shipper.ship ~build:old_build ~target:(Eric_fleet.Registry.target reg entry') ()
  in
  match d.Eric_fleet.Shipper.outcome with
  | Eric_fleet.Shipper.Quarantined _ -> ()
  | Eric_fleet.Shipper.Delivered _ -> Alcotest.fail "pre-rotation package still accepted"

let test_rotation_rsa_in_band () =
  let reg = enroll_fleet 2 in
  let report =
    Eric_fleet.Rotation.rotate
      ~method_:(Eric_fleet.Rotation.Rsa { bits = 384; seed = 404L })
      ~epoch:3 reg
  in
  check Alcotest.int "all rotated over RSA" 2 report.Eric_fleet.Rotation.rotated;
  check Alcotest.int "none failed" 0 (List.length report.Eric_fleet.Rotation.failed);
  (* the in-band recovered keys must actually work *)
  let cache = Eric_fleet.Artifact_cache.create () in
  let r = deploy ~cache reg in
  check Alcotest.int "campaign under RSA-provisioned keys" 2 r.Eric_fleet.Campaign.delivered

(* ------------------------------------------------------------------ *)
(* Key-reconstruction failure and re-enrollment                        *)
(* ------------------------------------------------------------------ *)

let tamper_helper (h : Eric_puf.Enroll.helper) =
  (* Flip one tag byte: reconstruction decodes the right key but the
     integrity check refuses it, so every boot fails explicitly. *)
  let tag = Bytes.copy h.Eric_puf.Enroll.tag in
  Bytes.set tag 0 (Char.chr (Char.code (Bytes.get tag 0) lxor 1));
  { h with Eric_puf.Enroll.tag }

let tamper_entry reg (entry : Eric_fleet.Registry.entry) =
  match entry.Eric_fleet.Registry.helper with
  | None -> Alcotest.fail "expected helper data"
  | Some h ->
    let entry' =
      { entry with Eric_fleet.Registry.helper = Some (tamper_helper h) }
    in
    Eric_fleet.Registry.update reg entry';
    entry'

let test_shipper_key_reconstruction_quarantine () =
  (* A device whose helper data no longer reconstructs a key must be
     quarantined immediately and with a reason distinct from repeated
     signature refusals: no signed package can ever land, so burning
     attempts is pointless. *)
  let reg = enroll_fleet 1 in
  let entry = tamper_entry reg (List.hd (Eric_fleet.Registry.entries reg)) in
  let build =
    match Eric.Source.prepare ~mode:Eric.Config.Full test_source with
    | Ok p -> Eric.Source.personalize ~key:entry.Eric_fleet.Registry.key p
    | Error e -> Alcotest.fail e
  in
  let d =
    Eric_fleet.Shipper.ship ~build ~target:(Eric_fleet.Registry.target reg entry) ()
  in
  match d.Eric_fleet.Shipper.outcome with
  | Eric_fleet.Shipper.Quarantined { reason } ->
    (match reason with
    | Eric_fleet.Shipper.Key_reconstruction_failed -> ()
    | Eric_fleet.Shipper.Signature_refusals _ | Eric_fleet.Shipper.Exhausted _
    | Eric_fleet.Shipper.Integrity_faults _ ->
      Alcotest.fail "expected the key-reconstruction quarantine reason");
    check Alcotest.string "stable registry label" "key reconstruction failed"
      (Eric_fleet.Shipper.quarantine_label reason);
    check Alcotest.int "no attempts wasted" 1 d.Eric_fleet.Shipper.attempts
  | Eric_fleet.Shipper.Delivered _ -> Alcotest.fail "keyless target accepted a package"

let test_reenroll_campaign () =
  let reg = enroll_fleet 3 in
  (* device 1: healthy.  device 2: tampered helper + the quarantine the
     shipper would have applied.  device 3 stays healthy; plus one legacy
     entry without helper data that must be upgraded. *)
  let victim = List.nth (Eric_fleet.Registry.entries reg) 1 in
  let victim' = tamper_entry reg victim in
  Eric_fleet.Registry.update reg
    { victim' with
      Eric_fleet.Registry.status =
        Eric_fleet.Registry.Quarantined "key reconstruction failed" };
  (match
     Eric_fleet.Registry.add reg
       {
         Eric_fleet.Registry.device_id = 9_300L;
         epoch = 0;
         label = "eric";
         key = Bytes.make 32 'x';
         firmware_epoch = 0;
         status = Eric_fleet.Registry.Active;
         helper = None;
         instability_ppm = 0;
       }
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let report = Eric_fleet.Reenroll.run reg in
  check Alcotest.int "surveyed everyone" 4 report.Eric_fleet.Reenroll.surveyed;
  check Alcotest.int "two healthy" 2 report.Eric_fleet.Reenroll.healthy;
  check Alcotest.int "quarantined device re-enrolled" 1
    report.Eric_fleet.Reenroll.reenrolled;
  check Alcotest.int "legacy entry upgraded" 1 report.Eric_fleet.Reenroll.upgraded;
  check Alcotest.int "quarantine lifted" 1 report.Eric_fleet.Reenroll.reactivated;
  check Alcotest.int "nobody failed" 0 (List.length report.Eric_fleet.Reenroll.failed);
  check Alcotest.bool "all accounted" true (Eric_fleet.Reenroll.all_accounted report);
  List.iter
    (fun (e : Eric_fleet.Registry.entry) ->
      check Alcotest.bool "every entry now boots via helper" true
        (e.Eric_fleet.Registry.helper <> None);
      check Alcotest.bool "every entry active" true
        (e.Eric_fleet.Registry.status = Eric_fleet.Registry.Active))
    (Eric_fleet.Registry.entries reg);
  (* the repaired fleet must actually take a deployment *)
  let cache = Eric_fleet.Artifact_cache.create () in
  let r = deploy ~cache reg in
  check Alcotest.int "repaired fleet takes a campaign" 4 r.Eric_fleet.Campaign.delivered

(* ------------------------------------------------------------------ *)
(* Sharded registry                                                    *)
(* ------------------------------------------------------------------ *)

module Shard = Eric_fleet.Registry_shard

let with_temp_dir f =
  let dir = Filename.temp_file "eric_shards" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir && Sys.is_directory dir then begin
        Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let by_id entries =
  List.sort
    (fun (a : Eric_fleet.Registry.entry) (b : Eric_fleet.Registry.entry) ->
      Int64.compare a.Eric_fleet.Registry.device_id b.Eric_fleet.Registry.device_id)
    entries

let shard_mapping_prop =
  qtest ~count:500 "shard mapping is pure and in range"
    QCheck.(pair (int_range 1 64) int64)
    (fun (shards, id) ->
      let s = Shard.shard_of ~shards id in
      s >= 0 && s < shards && s = Shard.shard_of ~shards id)

let shard_equivalence_prop =
  (* An N-shard registry is observably equivalent to the single-file one
     it was built from: same count, same entries (merged back), and every
     id resolves to a byte-identical entry through the sharded view —
     including after a cold manifest-only reopen from disk. *)
  let entry_gen =
    QCheck.(
      pair (int_range 1 9)
        (list_of_size (Gen.int_range 0 10)
           (triple
              (pair small_nat small_printable_string)
              (pair (string_of_size (Gen.return 32)) small_nat)
              (pair (option small_printable_string) small_nat))))
  in
  qtest ~count:60 "N shards = one registry" entry_gen (fun (shards, specs) ->
      let reg = Eric_fleet.Registry.create () in
      List.iteri
        (fun i ((epoch, label), (key, firmware_epoch), (quarantine, instability_ppm)) ->
          let entry =
            {
              Eric_fleet.Registry.device_id = Int64.of_int i;
              epoch;
              label;
              key = Bytes.of_string key;
              firmware_epoch;
              status =
                (match quarantine with
                | None -> Eric_fleet.Registry.Active
                | Some reason -> Eric_fleet.Registry.Quarantined reason);
              helper = None;
              instability_ppm;
            }
          in
          match Eric_fleet.Registry.add reg entry with
          | Ok _ -> ()
          | Error e -> failwith e)
        specs;
      with_temp_dir (fun dir ->
          match Shard.of_registry ~dir ~shards reg with
          | Error e -> QCheck.Test.fail_report e
          | Ok sh ->
            let merged_eq sh =
              match Shard.to_registry sh with
              | Error e -> QCheck.Test.fail_report e
              | Ok merged ->
                Eric_fleet.Registry.count merged = Eric_fleet.Registry.count reg
                && List.for_all2 entry_eq
                     (by_id (Eric_fleet.Registry.entries reg))
                     (by_id (Eric_fleet.Registry.entries merged))
            in
            let finds_eq sh =
              List.for_all
                (fun (e : Eric_fleet.Registry.entry) ->
                  match Shard.find sh e.Eric_fleet.Registry.device_id with
                  | Some e' -> entry_eq e e'
                  | None -> false)
                (Eric_fleet.Registry.entries reg)
            in
            let reopened =
              match Shard.load dir with
              | Error e -> QCheck.Test.fail_report e
              | Ok sh2 ->
                Shard.count sh2 = Eric_fleet.Registry.count reg
                && merged_eq sh2 && finds_eq sh2
            in
            Shard.count sh = Eric_fleet.Registry.count reg
            && merged_eq sh && finds_eq sh && reopened))

let test_shard_migrate_from_file () =
  let reg = enroll_fleet ~start:9_400 5 in
  let file = Filename.temp_file "eric_fleet" ".efrg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Eric_fleet.Registry.save reg file;
      check Alcotest.bool "a plain file is not sharded" false (Shard.is_sharded file);
      with_temp_dir (fun dir ->
          match Shard.migrate ~file ~dir ~shards:4 with
          | Error e -> Alcotest.fail e
          | Ok sh ->
            check Alcotest.bool "the directory is sharded" true (Shard.is_sharded dir);
            check Alcotest.int "count survives" 5 (Shard.count sh);
            List.iter
              (fun (e : Eric_fleet.Registry.entry) ->
                match Shard.find sh e.Eric_fleet.Registry.device_id with
                | Some e' ->
                  check Alcotest.bool "entry survives migration, helper included" true
                    (entry_eq e e')
                | None -> Alcotest.fail "device lost in migration")
              (Eric_fleet.Registry.entries reg);
            let seen = Shard.fold_entries sh ~init:0 ~f:(fun n _ -> n + 1) in
            check Alcotest.int "streaming scan walks the whole fleet" 5 seen;
            (* booting through either view reconstructs the same key *)
            let e = List.hd (Eric_fleet.Registry.entries reg) in
            let key t =
              match Eric.Target.key_state t with
              | Ok k -> Eric_util.Bytesx.to_hex k
              | Error _ -> Alcotest.fail "key unavailable"
            in
            check Alcotest.string "same boot key through either view"
              (key (Eric_fleet.Registry.target reg e))
              (key (Shard.target sh e))))

let test_shard_migrate_v1_file () =
  (* The streaming migration must accept a version-1 single-file registry
     and land its record as a legacy (helperless) entry. *)
  let buf = Buffer.create 64 in
  let u16 v =
    Buffer.add_char buf (Char.chr (v land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))
  in
  let u32 v = u16 (v land 0xFFFF); u16 ((v lsr 16) land 0xFFFF) in
  Buffer.add_string buf "EFRG";
  u16 1 (* version *);
  u16 0 (* reserved *);
  u32 1 (* count *);
  Buffer.add_string buf "\x2A\x00\x00\x00\x00\x00\x00\x00" (* device id 42 *);
  u32 3 (* epoch *);
  u32 7 (* firmware epoch *);
  u16 4;
  Buffer.add_string buf "eric" (* label *);
  u16 4;
  Buffer.add_string buf "KEY!" (* key *);
  Buffer.add_char buf '\000' (* active *);
  let file = Filename.temp_file "eric_fleet_v1" ".efrg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out_bin file in
      Buffer.output_buffer oc buf;
      close_out oc;
      with_temp_dir (fun dir ->
          match Shard.migrate ~file ~dir ~shards:2 with
          | Error e -> Alcotest.fail ("v1 migration refused: " ^ e)
          | Ok sh -> (
            check Alcotest.int "one device" 1 (Shard.count sh);
            match Shard.find sh 42L with
            | None -> Alcotest.fail "v1 device lost"
            | Some e ->
              check Alcotest.int "epoch" 3 e.Eric_fleet.Registry.epoch;
              check Alcotest.int "firmware" 7 e.Eric_fleet.Registry.firmware_epoch;
              check Alcotest.bool "legacy entry has no helper" true
                (e.Eric_fleet.Registry.helper = None))))

let test_campaign_sharded_deploys_and_persists () =
  let reg = enroll_fleet ~start:9_600 5 in
  with_temp_dir (fun dir ->
      let sh =
        match Shard.of_registry ~dir ~shards:3 reg with
        | Ok s -> s
        | Error e -> Alcotest.fail e
      in
      let cache = Eric_fleet.Artifact_cache.create () in
      let r =
        match Eric_fleet.Campaign.deploy_sharded ~cache ~shards:sh test_source with
        | Ok r -> r
        | Error e -> Alcotest.fail e
      in
      check Alcotest.int "all delivered" 5 r.Eric_fleet.Campaign.delivered;
      check Alcotest.bool "all accounted" true (Eric_fleet.Campaign.all_accounted r);
      check Alcotest.int "device list covers the fleet" 5
        (List.length r.Eric_fleet.Campaign.devices);
      (* the campaign wrote each shard back on release: a cold reopen
         sees the stamped firmware without any in-memory state *)
      match Shard.load dir with
      | Error e -> Alcotest.fail e
      | Ok sh2 ->
        Shard.fold_entries sh2 ~init:() ~f:(fun () e ->
            check Alcotest.int "firmware stamp persisted"
              r.Eric_fleet.Campaign.firmware_epoch e.Eric_fleet.Registry.firmware_epoch))

let test_campaign_scheduler_determinism () =
  (* Same fleet, same source, same hostile channel — the deterministic
     and domain schedulers must agree on everything but wall clock. *)
  let run scheduler =
    let reg = enroll_fleet ~start:9_500 6 in
    let cache = Eric_fleet.Artifact_cache.create () in
    let config =
      {
        Eric_fleet.Campaign.default_config with
        Eric_fleet.Campaign.channel = Eric_fleet.Channel.drop_first 1;
        engine =
          {
            Eric_engine.Engine.default_config with
            Eric_engine.Engine.scheduler;
            window = 2;
          };
      }
    in
    (deploy ~config ~cache reg, reg)
  in
  let ra, rega = run Eric_engine.Engine.Deterministic in
  let rb, regb = run (Eric_engine.Engine.Domains 2) in
  check Alcotest.string "same digest" ra.Eric_fleet.Campaign.digest
    rb.Eric_fleet.Campaign.digest;
  check Alcotest.int "same firmware epoch" ra.Eric_fleet.Campaign.firmware_epoch
    rb.Eric_fleet.Campaign.firmware_epoch;
  check Alcotest.int "same delivered" ra.Eric_fleet.Campaign.delivered
    rb.Eric_fleet.Campaign.delivered;
  check Alcotest.int "same retried" ra.Eric_fleet.Campaign.retried
    rb.Eric_fleet.Campaign.retried;
  check Alcotest.int "same quarantined" ra.Eric_fleet.Campaign.quarantined
    rb.Eric_fleet.Campaign.quarantined;
  check Alcotest.int "same skipped" ra.Eric_fleet.Campaign.skipped
    rb.Eric_fleet.Campaign.skipped;
  check Alcotest.int "same wire bytes" ra.Eric_fleet.Campaign.wire_bytes
    rb.Eric_fleet.Campaign.wire_bytes;
  check Alcotest.int64 "same load cycles" ra.Eric_fleet.Campaign.load_cycles
    rb.Eric_fleet.Campaign.load_cycles;
  check Alcotest.int64 "same simulated backoff" ra.Eric_fleet.Campaign.backoff_ns
    rb.Eric_fleet.Campaign.backoff_ns;
  List.iter2
    (fun ((ea : Eric_fleet.Registry.entry), da) ((eb : Eric_fleet.Registry.entry), db) ->
      check Alcotest.int64 "same device order" ea.Eric_fleet.Registry.device_id
        eb.Eric_fleet.Registry.device_id;
      match (da, db) with
      | Eric_fleet.Campaign.Shipped a, Eric_fleet.Campaign.Shipped b ->
        check Alcotest.bool "same delivery outcome" (Eric_fleet.Shipper.delivered a)
          (Eric_fleet.Shipper.delivered b);
        check Alcotest.int "same attempts" a.Eric_fleet.Shipper.attempts
          b.Eric_fleet.Shipper.attempts;
        check Alcotest.int "same per-device wire bytes" a.Eric_fleet.Shipper.wire_bytes
          b.Eric_fleet.Shipper.wire_bytes
      | Eric_fleet.Campaign.Skipped a, Eric_fleet.Campaign.Skipped b ->
        check Alcotest.string "same skip reason" a b
      | _ -> Alcotest.fail "schedulers disagree on a device's outcome class")
    ra.Eric_fleet.Campaign.devices rb.Eric_fleet.Campaign.devices;
  check Alcotest.bool "registries end byte-identical" true
    (List.for_all2 entry_eq
       (Eric_fleet.Registry.entries rega)
       (Eric_fleet.Registry.entries regb))

let test_enroll_legacy_boots_and_ships () =
  let reg = Eric_fleet.Registry.create () in
  (match Eric_fleet.Registry.enroll_legacy reg 9_700L with
  | Ok e ->
    check Alcotest.bool "legacy path records no helper" true
      (e.Eric_fleet.Registry.helper = None);
    check Alcotest.int "no instability figure" 0 e.Eric_fleet.Registry.instability_ppm
  | Error e -> Alcotest.fail e);
  (match Eric_fleet.Registry.enroll_legacy reg 9_700L with
  | Ok _ -> Alcotest.fail "duplicate legacy enrollment accepted"
  | Error _ -> ());
  (* a legacy device still boots (majority vote) and takes a campaign *)
  let cache = Eric_fleet.Artifact_cache.create () in
  let r = deploy ~cache reg in
  check Alcotest.int "legacy device takes a campaign" 1 r.Eric_fleet.Campaign.delivered

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "eric_fleet"
    [ ( "backoff",
        [ Alcotest.test_case "schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "validate" `Quick test_backoff_validate ] );
      ( "channel",
        [ Alcotest.test_case "plans" `Quick test_channel_plans;
          Alcotest.test_case "of_string" `Quick test_channel_of_string ] );
      ( "registry",
        [ registry_roundtrip_prop;
          Alcotest.test_case "parse rejects" `Quick test_registry_parse_rejects;
          Alcotest.test_case "save/load" `Quick test_registry_save_load;
          Alcotest.test_case "duplicate enroll" `Quick test_registry_enroll_rejects_duplicates;
          Alcotest.test_case "helper round-trip" `Quick test_registry_helper_roundtrip;
          Alcotest.test_case "v1 compatibility" `Quick test_registry_v1_compat;
          Alcotest.test_case "legacy enrollment" `Quick test_enroll_legacy_boots_and_ships ] );
      ( "shard",
        [ shard_mapping_prop;
          shard_equivalence_prop;
          Alcotest.test_case "migrate from file" `Quick test_shard_migrate_from_file;
          Alcotest.test_case "migrate v1 file" `Quick test_shard_migrate_v1_file ] );
      ( "cache",
        [ Alcotest.test_case "memory tier" `Quick test_cache_memory_tier;
          Alcotest.test_case "disk tier" `Quick test_cache_disk_tier;
          Alcotest.test_case "key sensitivity" `Quick test_cache_key_sensitivity ] );
      ( "pipeline",
        [ Alcotest.test_case "personalize = build" `Quick test_personalize_equals_build ] );
      ( "shipper",
        [ Alcotest.test_case "clean delivery" `Quick test_shipper_clean_delivery;
          Alcotest.test_case "retry recovers" `Quick test_shipper_retry_recovers;
          Alcotest.test_case "exhaustion quarantines" `Quick test_shipper_exhaustion_quarantines;
          Alcotest.test_case "signature refusals quarantine" `Quick
            test_shipper_signature_refusals_quarantine;
          Alcotest.test_case "integrity retry recovers" `Quick
            test_shipper_integrity_retry_recovers;
          Alcotest.test_case "integrity quarantine" `Quick test_shipper_integrity_quarantine;
          Alcotest.test_case "unguarded executes corrupted" `Quick
            test_shipper_unguarded_executes_corrupted ] );
      ( "campaign",
        [ Alcotest.test_case "happy path" `Quick test_campaign_happy_path;
          Alcotest.test_case "execute" `Quick test_campaign_executes_when_asked;
          Alcotest.test_case "hostile channel" `Quick test_campaign_hostile_channel_no_silent_drops;
          Alcotest.test_case "retry recovers everyone" `Quick test_campaign_retry_recovers_everyone;
          Alcotest.test_case "sharded deploy persists" `Quick
            test_campaign_sharded_deploys_and_persists;
          Alcotest.test_case "scheduler determinism" `Quick
            test_campaign_scheduler_determinism ] );
      ( "rotation",
        [ Alcotest.test_case "rekeys + reactivates" `Quick test_rotation_rekeys_and_reactivates;
          Alcotest.test_case "revokes old packages" `Quick test_rotation_revokes_old_packages;
          Alcotest.test_case "RSA in-band" `Slow test_rotation_rsa_in_band ] );
      ( "reenroll",
        [ Alcotest.test_case "key-reconstruction quarantine" `Quick
            test_shipper_key_reconstruction_quarantine;
          Alcotest.test_case "campaign" `Quick test_reenroll_campaign ] ) ]
