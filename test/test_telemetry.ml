(* Tests for the eric_telemetry library: span nesting and timing, the
   log-scale histogram's quantile error bound under random inserts, the
   registry's labelled families and disabled no-op guarantee, the JSON
   codec, and round-trips through the JSONL and Chrome-trace exporters. *)

open Eric_telemetry

let check = Alcotest.check
let qtest ?(count = 100) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Every test starts from clean, enabled telemetry and leaves it
   disabled, so suites can run in any order without crosstalk. *)
let with_fresh f =
  Snapshot.reset_all ();
  Control.enable ();
  Fun.protect
    ~finally:(fun () ->
      Control.disable ();
      Snapshot.reset_all ())
    f

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting_and_depth () =
  with_fresh @@ fun () ->
  Span.with_ ~name:"outer" (fun () ->
      Span.with_ ~name:"inner1" (fun () -> ());
      Span.with_ ~name:"inner2" (fun () -> Span.with_ ~name:"leaf" (fun () -> ())));
  let events = Span.completed () in
  let names = List.map (fun (e : Span.event) -> e.name) events in
  check Alcotest.(list string) "completion order" [ "inner1"; "leaf"; "inner2"; "outer" ] names;
  let depth n = (List.find (fun (e : Span.event) -> e.name = n) events).Span.depth in
  check Alcotest.int "outer depth" 0 (depth "outer");
  check Alcotest.int "inner depth" 1 (depth "inner1");
  check Alcotest.int "leaf depth" 2 (depth "leaf")

let test_span_timing_monotone () =
  with_fresh @@ fun () ->
  let busy () =
    let acc = ref 0 in
    for i = 1 to 10_000 do
      acc := !acc + (i * i)
    done;
    ignore (Sys.opaque_identity !acc)
  in
  Span.with_ ~name:"parent" (fun () -> Span.with_ ~name:"child" busy);
  let find n = List.find (fun (e : Span.event) -> e.Span.name = n) (Span.completed ()) in
  let parent = find "parent" and child = find "child" in
  check Alcotest.bool "durations non-negative" true
    (parent.Span.dur_ns >= 0L && child.Span.dur_ns >= 0L);
  check Alcotest.bool "child starts after parent" true (child.Span.start_ns >= parent.Span.start_ns);
  check Alcotest.bool "child within parent" true (child.Span.dur_ns <= parent.Span.dur_ns);
  check Alcotest.bool "clock is monotone" true (Clock.now_ns () >= parent.Span.start_ns)

let test_span_records_on_exception () =
  with_fresh @@ fun () ->
  (try Span.with_ ~name:"boom" (fun () -> failwith "expected") with Failure _ -> ());
  check Alcotest.int "span recorded despite raise" 1 (List.length (Span.completed ()))

let test_span_disabled_is_noop () =
  Snapshot.reset_all ();
  Control.disable ();
  let r = Span.with_ ~name:"ghost" (fun () -> 42) in
  check Alcotest.int "result passes through" 42 r;
  check Alcotest.int "nothing recorded" 0 (List.length (Span.completed ()))

let test_span_aggregate () =
  with_fresh @@ fun () ->
  for _ = 1 to 3 do
    Span.with_ ~name:"a" (fun () -> ())
  done;
  Span.with_ ~name:"b" (fun () -> ());
  match Span.aggregate (Span.completed ()) with
  | [ a; b ] ->
    check Alcotest.string "first name" "a" a.Span.a_name;
    check Alcotest.int "a count" 3 a.Span.a_count;
    check Alcotest.string "second name" "b" b.Span.a_name;
    check Alcotest.int "b count" 1 b.Span.a_count
  | aggs -> Alcotest.failf "expected 2 aggregates, got %d" (List.length aggs)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

(* The documented contract: the estimate never undershoots the true
   quantile and overshoots by strictly less than the bucket ratio. *)
let quantile_bound_ok values p =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) values;
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank = max 1 (min n (int_of_float (ceil (p *. float_of_int n)))) in
  let truth = List.nth sorted (rank - 1) in
  let est = Histogram.quantile h p in
  est >= truth && (truth = 0.0 || est <= truth *. Histogram.ratio *. (1.0 +. 1e-9))

let histogram_quantile_fuzz =
  qtest ~count:200 "quantile within one bucket of truth"
    QCheck.(pair (list_of_size Gen.(1 -- 200) (float_bound_exclusive 1e12)) (float_bound_inclusive 1.0))
    (fun (values, p) ->
      let values = List.map Float.abs values in
      quantile_bound_ok values p)

(* Deterministic exact-bucket cases of the quantile contract, pinning
   behaviour the fuzz test only samples: single-bucket populations are
   exact up to the bucket edge, the overflow bucket reports the observed
   max exactly, and an empty histogram reports 0. *)
let test_histogram_quantile_exact_buckets () =
  let h = Histogram.create () in
  check (Alcotest.float 0.0) "empty histogram" 0.0 (Histogram.quantile h 0.5);
  (* all mass in one bucket: every quantile lands on that bucket's edge *)
  Histogram.observe h 10.0;
  Histogram.observe h 10.0;
  Histogram.observe h 10.0;
  let edge = Histogram.quantile h 0.5 in
  check Alcotest.bool "edge covers value" true (edge >= 10.0 && edge < 10.0 *. Histogram.ratio);
  check (Alcotest.float 0.0) "p0 same bucket" edge (Histogram.quantile h 0.0);
  check (Alcotest.float 0.0) "p1 same bucket" edge (Histogram.quantile h 1.0);
  (* bimodal: median stays in the low bucket, the tail finds the high one *)
  let h = Histogram.create () in
  for _ = 1 to 90 do Histogram.observe h 10.0 done;
  for _ = 1 to 10 do Histogram.observe h 1000.0 done;
  let p50 = Histogram.quantile h 0.5 and p95 = Histogram.quantile h 0.95 in
  check Alcotest.bool "p50 in low bucket" true (p50 >= 10.0 && p50 < 10.0 *. Histogram.ratio);
  check Alcotest.bool "p95 in high bucket" true (p95 >= 1000.0 && p95 < 1000.0 *. Histogram.ratio);
  (* overflow bucket: reports the exact observed maximum *)
  let h = Histogram.create () in
  Histogram.observe h 1e300;
  check (Alcotest.float 0.0) "overflow reports max" 1e300 (Histogram.quantile h 1.0)

let test_registry_quantile_accessor () =
  with_fresh @@ fun () ->
  check (Alcotest.option (Alcotest.float 0.0)) "absent instance" None
    (Registry.quantile "nope" 0.5);
  Registry.inc "a_counter";
  check (Alcotest.option (Alcotest.float 0.0)) "not a histogram" None
    (Registry.quantile "a_counter" 0.5);
  Registry.observe ~labels:[ ("scenario", "steady") ] "serve.latency_ns" 50.0;
  Registry.observe ~labels:[ ("scenario", "steady") ] "serve.latency_ns" 50.0;
  (match Registry.quantile ~labels:[ ("scenario", "steady") ] "serve.latency_ns" 0.5 with
  | None -> Alcotest.fail "recorded histogram not found"
  | Some q -> check Alcotest.bool "quantile covers observation" true
                (q >= 50.0 && q < 50.0 *. Histogram.ratio));
  check (Alcotest.option (Alcotest.float 0.0)) "label mismatch is absent" None
    (Registry.quantile "serve.latency_ns" 0.5)

let test_histogram_summary () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.observe h (float_of_int i)
  done;
  let s = Histogram.summarize h in
  check Alcotest.int "count" 100 s.Histogram.s_count;
  check (Alcotest.float 1e-6) "sum" 5050.0 s.Histogram.s_sum;
  check (Alcotest.float 1e-6) "min exact" 1.0 s.Histogram.s_min;
  check (Alcotest.float 1e-6) "max exact" 100.0 s.Histogram.s_max;
  check Alcotest.bool "p50 bound" true (s.Histogram.s_p50 >= 50.0 && s.Histogram.s_p50 <= 50.0 *. Histogram.ratio);
  check Alcotest.bool "p99 bound" true (s.Histogram.s_p99 >= 99.0 && s.Histogram.s_p99 <= 99.0 *. Histogram.ratio)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.observe a 10.0;
  Histogram.observe b 1000.0;
  Histogram.merge_into ~dst:a b;
  check Alcotest.int "merged count" 2 (Histogram.count a);
  check (Alcotest.float 1e-6) "merged max" 1000.0 (Histogram.max_value a)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_counters_and_families () =
  with_fresh @@ fun () ->
  Registry.inc "req";
  Registry.inc ~by:2L "req";
  Registry.inc ~labels:[ ("reason", "signature") ] "refused";
  Registry.inc ~labels:[ ("reason", "framing") ] "refused";
  Registry.inc ~labels:[ ("reason", "framing") ] "refused";
  check Alcotest.int64 "plain counter" 3L (Registry.counter "req");
  check Alcotest.int64 "labelled instance" 2L
    (Registry.counter ~labels:[ ("reason", "framing") ] "refused");
  check Alcotest.int64 "family total" 3L (Registry.counter_family_total "refused");
  check Alcotest.int64 "absent counter is 0" 0L (Registry.counter "nope")

let test_registry_label_order_irrelevant () =
  with_fresh @@ fun () ->
  Registry.inc ~labels:[ ("a", "1"); ("b", "2") ] "c";
  Registry.inc ~labels:[ ("b", "2"); ("a", "1") ] "c";
  check Alcotest.int64 "same instance" 2L (Registry.counter ~labels:[ ("a", "1"); ("b", "2") ] "c")

let test_registry_disabled_writers_noop () =
  Snapshot.reset_all ();
  Control.disable ();
  Registry.inc "ghost";
  Registry.set "ghost_gauge" 1.0;
  Registry.observe "ghost_hist" 1.0;
  check Alcotest.int64 "counter untouched" 0L (Registry.counter "ghost");
  check Alcotest.bool "gauge untouched" true (Registry.gauge "ghost_gauge" = None);
  check Alcotest.int "nothing registered" 0 (List.length (Registry.entries ()))

let test_registry_type_clash_rejected () =
  with_fresh @@ fun () ->
  Registry.inc "metric";
  Alcotest.check_raises "gauge write to counter" (Invalid_argument "Registry.set: metric is not a gauge")
    (fun () -> Registry.set "metric" 1.0)

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let rec json_equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Num x, Json.Num y -> Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.abs x)
  | Json.Str x, Json.Str y -> x = y
  | Json.List x, Json.List y -> List.length x = List.length y && List.for_all2 json_equal x y
  | Json.Obj x, Json.Obj y ->
    List.length x = List.length y
    && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2) x y
  | _ -> false

let test_json_roundtrip_structures () =
  let samples =
    [ Json.Null;
      Json.Bool true;
      Json.Num 0.0;
      Json.Num (-12345.0);
      Json.Num 3.25;
      Json.Str "with \"quotes\", \\ and \n tabs\t";
      Json.List [ Json.Num 1.0; Json.Str "x"; Json.Null ];
      Json.Obj [ ("a", Json.Num 1.0); ("nested", Json.Obj [ ("b", Json.List [] ) ]) ] ]
  in
  List.iter
    (fun j ->
      match Json.of_string (Json.to_string j) with
      | Ok j' -> check Alcotest.bool (Json.to_string j) true (json_equal j j')
      | Error e -> Alcotest.failf "parse failed on %s: %s" (Json.to_string j) e)
    samples

let test_json_rejects_garbage () =
  List.iter
    (fun s -> check Alcotest.bool s true (Result.is_error (Json.of_string s)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_json_nonfinite_prints_null () =
  check Alcotest.string "nan" "null" (Json.to_string (Json.Num Float.nan));
  check Alcotest.string "inf" "null" (Json.to_string (Json.Num Float.infinity))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let populated_snapshot () =
  with_fresh @@ fun () ->
  Span.with_ ~name:"build" (fun () -> Span.with_ ~name:"encrypt" (fun () -> ()));
  Registry.inc ~labels:[ ("reason", "signature") ] ~by:4L "refused_total";
  Registry.set "cpi" 1.5;
  Registry.observe "load_ns" 123.0;
  Registry.observe "load_ns" 456.0;
  Snapshot.capture ()

let test_jsonl_roundtrip () =
  let snap = populated_snapshot () in
  let lines = String.split_on_char '\n' (String.trim (Export.to_jsonl snap)) in
  check Alcotest.int "one line per record" 5 (List.length lines);
  let parsed =
    List.map
      (fun line ->
        match Json.of_string line with
        | Ok j -> j
        | Error e -> Alcotest.failf "unparseable JSONL line %s: %s" line e)
      lines
  in
  let typed ty =
    List.filter (fun j -> Json.member "type" j = Some (Json.Str ty)) parsed
  in
  check Alcotest.int "2 spans" 2 (List.length (typed "span"));
  check Alcotest.int "1 counter" 1 (List.length (typed "counter"));
  check Alcotest.int "1 gauge" 1 (List.length (typed "gauge"));
  check Alcotest.int "1 histogram" 1 (List.length (typed "histogram"));
  let counter = List.hd (typed "counter") in
  check Alcotest.(option string) "counter name" (Some "refused_total")
    (Option.bind (Json.member "name" counter) Json.to_str);
  check Alcotest.(option (float 1e-9)) "counter value" (Some 4.0)
    (Option.bind (Json.member "value" counter) Json.to_float)

let test_chrome_trace_valid () =
  let snap = populated_snapshot () in
  match Json.of_string (Export.to_chrome_trace snap) with
  | Error e -> Alcotest.failf "trace is not valid JSON: %s" e
  | Ok root ->
    let events =
      match Option.bind (Json.member "traceEvents" root) Json.to_list with
      | Some l -> l
      | None -> Alcotest.fail "missing traceEvents array"
    in
    (* 2 spans as ph:X plus 1 counter as ph:C *)
    check Alcotest.int "event count" 3 (List.length events);
    let phases =
      List.filter_map (fun e -> Option.bind (Json.member "ph" e) Json.to_str) events
    in
    check Alcotest.int "complete events" 2 (List.length (List.filter (( = ) "X") phases));
    check Alcotest.int "counter events" 1 (List.length (List.filter (( = ) "C") phases));
    List.iter
      (fun e ->
        if Option.bind (Json.member "ph" e) Json.to_str = Some "X" then begin
          check Alcotest.bool "has ts" true (Json.member "ts" e <> None);
          check Alcotest.bool "has dur" true (Json.member "dur" e <> None);
          check Alcotest.bool "has pid" true (Json.member "pid" e <> None);
          check Alcotest.bool "has tid" true (Json.member "tid" e <> None)
        end)
      events

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_table_renders () =
  let snap = populated_snapshot () in
  let out = Format.asprintf "%a" Export.pp_table snap in
  List.iter
    (fun needle -> check Alcotest.bool needle true (contains ~needle out))
    [ "build"; "encrypt"; "refused_total"; "reason=\"signature\""; "cpi"; "load_ns" ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [ ( "span",
        [ Alcotest.test_case "nesting and depth" `Quick test_span_nesting_and_depth;
          Alcotest.test_case "timing monotone" `Quick test_span_timing_monotone;
          Alcotest.test_case "records on exception" `Quick test_span_records_on_exception;
          Alcotest.test_case "disabled no-op" `Quick test_span_disabled_is_noop;
          Alcotest.test_case "aggregate" `Quick test_span_aggregate ] );
      ( "histogram",
        [ histogram_quantile_fuzz;
          Alcotest.test_case "quantile exact buckets" `Quick
            test_histogram_quantile_exact_buckets;
          Alcotest.test_case "registry quantile accessor" `Quick
            test_registry_quantile_accessor;
          Alcotest.test_case "summary" `Quick test_histogram_summary;
          Alcotest.test_case "merge" `Quick test_histogram_merge ] );
      ( "registry",
        [ Alcotest.test_case "counters and families" `Quick test_registry_counters_and_families;
          Alcotest.test_case "label order" `Quick test_registry_label_order_irrelevant;
          Alcotest.test_case "disabled writers no-op" `Quick test_registry_disabled_writers_noop;
          Alcotest.test_case "type clash rejected" `Quick test_registry_type_clash_rejected ] );
      ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip_structures;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "non-finite prints null" `Quick test_json_nonfinite_prints_null ] );
      ( "export",
        [ Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "chrome trace valid" `Quick test_chrome_trace_valid;
          Alcotest.test_case "table renders" `Quick test_table_renders ] ) ]
