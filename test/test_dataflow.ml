(* Tests for the dataflow framework and the analyses built on it: the
   worklist solver (fixpoint + termination on random CFGs), qcheck
   lattice laws for every lattice instance, value-set resolution of
   computed jumps, the Mc_cfg compressed-instruction fallthrough fix,
   the linear/recursive attacker hierarchy over the workloads, and the
   pipeline secret-taint obligation. *)

open Eric_lint
module Df = Dataflow
module Rv = Eric_rv

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Solver                                                              *)
(* ------------------------------------------------------------------ *)

module Bits = Df.Make (Df.Bitset)

let test_solver_forward_diamond () =
  (*    0 -> 1 -> 3
        0 -> 2 -> 3   gen.(n) flows forward and joins at 3.  *)
  let graph = Df.graph_of_edges ~node_count:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let gen = [| 1; 2; 4; 8 |] in
  let transfer n v = v lor gen.(n) in
  let r = Bits.solve ~graph ~transfer () in
  check Alcotest.int "entry input empty" 0 r.Bits.input.(0);
  check Alcotest.int "join of both arms" (1 lor 2 lor 4) r.Bits.input.(3);
  check Alcotest.int "output includes own gen" (1 lor 2 lor 4 lor 8) r.Bits.output.(3);
  check Alcotest.bool "iterated at least once per node" true (r.Bits.iterations >= 4)

let test_solver_backward_liveness () =
  (* Straight line 0 -> 1 -> 2; node 2 uses bit 1, node 0 kills it. *)
  let graph = Df.graph_of_edges ~node_count:3 [ (0, 1); (1, 2) ] in
  let transfer n out = match n with 2 -> out lor 1 | 0 -> out land lnot 1 | _ -> out in
  let r = Bits.solve ~direction:Df.Backward ~graph ~transfer () in
  check Alcotest.int "live-out of 1 sees the use" 1 r.Bits.input.(1);
  check Alcotest.int "kill at 0" 0 r.Bits.output.(0)

let test_solver_boundary_and_loop () =
  (* Self-loop: boundary fact must survive the join and the solve must
     terminate. *)
  let graph = Df.graph_of_edges ~node_count:2 [ (0, 1); (1, 1) ] in
  let r = Bits.solve ~boundary:[ (0, 16) ] ~graph ~transfer:(fun _ v -> v) () in
  check Alcotest.int "boundary propagates through loop" 16 r.Bits.output.(1)

let test_graph_rejects_bad_edges () =
  Alcotest.check_raises "out-of-range edge" (Invalid_argument "Dataflow.graph_of_edges: edge (0,7) outside [0,3)")
    (fun () -> ignore (Df.graph_of_edges ~node_count:3 [ (0, 7) ]))

(* Random-CFG termination and fixpoint consistency: on any graph and any
   monotone gen/kill transfer, the solver returns, and every edge
   satisfies in(v) ⊒ out(u). *)
let arb_cfg =
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) es)))
    QCheck.Gen.(
      int_range 1 20 >>= fun n ->
      list_size (int_bound 40) (pair (int_bound (n - 1)) (int_bound (n - 1))) >>= fun es ->
      return (n, es))

let prop_solver_fixpoint (n, es) =
  let graph = Df.graph_of_edges ~node_count:n es in
  let gen = Array.init n (fun i -> 1 lsl (i mod 8)) in
  let kill = Array.init n (fun i -> 1 lsl ((i + 3) mod 8)) in
  let transfer i v = gen.(i) lor (v land lnot kill.(i)) in
  let r = Bits.solve ~boundary:[ (0, 0x100) ] ~graph ~transfer () in
  List.for_all
    (fun (u, v) ->
      let out_u = r.Bits.output.(u) and in_v = r.Bits.input.(v) in
      in_v lor out_u = in_v)
    es
  && r.Bits.iterations >= n

(* ------------------------------------------------------------------ *)
(* Lattice laws                                                        *)
(* ------------------------------------------------------------------ *)

(* One law-pack per lattice instance: join commutativity, associativity,
   idempotence, and bottom as identity. *)
let laws (type a) (module L : Df.LATTICE with type t = a) name arb =
  let t2 = QCheck.pair arb arb and t3 = QCheck.triple arb arb arb in
  [ qtest (name ^ ": join commutative") t2 (fun (a, b) ->
        L.equal (L.join a b) (L.join b a));
    qtest (name ^ ": join associative") t3 (fun (a, b, c) ->
        L.equal (L.join a (L.join b c)) (L.join (L.join a b) c));
    qtest (name ^ ": join idempotent") arb (fun a -> L.equal (L.join a a) a);
    qtest (name ^ ": bottom is identity") arb (fun a -> L.equal (L.join L.bottom a) a) ]

let arb_bitset = QCheck.map (fun i -> i land 0xFFFF) QCheck.small_nat

module Flat_int = Df.Flat (struct
  type t = int

  let equal = Int.equal
  let pp = Format.pp_print_int
end)

let arb_flat =
  QCheck.make
    ~print:(fun v -> Format.asprintf "%a" Flat_int.pp v)
    QCheck.Gen.(
      frequency
        [ (1, return Flat_int.Bot);
          (3, map (fun i -> Flat_int.Known i) (int_bound 5));
          (1, return Flat_int.Top) ])

let gen_value =
  QCheck.Gen.(
    frequency
      [ (1, return Mc_dataflow.Value.Bot);
        (1, return Mc_dataflow.Value.Top);
        (4,
          map
            (fun vs ->
              (* Normalise through join so the invariant (sorted, unique,
                 width-capped) holds, as any framework-produced value. *)
              Mc_dataflow.Value.join Mc_dataflow.Value.Bot
                (Mc_dataflow.Value.Vals (List.sort_uniq Int64.compare vs)))
            (list_size (int_range 1 10) (map Int64.of_int (int_bound 6))) ) ])

let arb_value =
  QCheck.make ~print:(Format.asprintf "%a" Mc_dataflow.Value.pp) gen_value

let arb_state =
  QCheck.make
    ~print:(Format.asprintf "%a" Mc_dataflow.State.pp)
    QCheck.Gen.(
      frequency
        [ (1, return Mc_dataflow.State.Unreached);
          (4,
            map
              (fun vs -> Mc_dataflow.State.Regs (Array.of_list vs))
              (list_repeat 32 gen_value) ) ])

let arb_taint =
  QCheck.make
    ~print:(Format.asprintf "%a" Taint.Lattice.pp)
    QCheck.Gen.(oneofl [ Taint.Lattice.Clean; Taint.Lattice.Tainted ])

module Must = Eric_cc.Ir_dataflow.Must_define
module Must_iset = Eric_cc.Ir_dataflow.Iset

let arb_must =
  QCheck.make
    ~print:(Format.asprintf "%a" Must.pp)
    QCheck.Gen.(
      frequency
        [ (1, return Must.All);
          (4,
            map
              (fun l -> Must.Defined (Must_iset.of_list l))
              (list_size (int_bound 6) (int_bound 8)) ) ])

(* Transfer monotonicity for the value-set analysis: a ⊑ b implies
   transfer a ⊑ transfer b, over a pool of representative parcels. *)
let transfer_pool =
  let open Rv in
  [ Inst.I (Addi, Reg.a 0, Reg.a 1, 12);
    Inst.U (Lui, Reg.t_ 0, 5);
    Inst.U (Auipc, Reg.t_ 1, 0);
    Inst.Shift (Slli, Reg.a 2, Reg.a 2, 3);
    Inst.R (Add, Reg.a 0, Reg.a 1, Reg.a 2);
    Inst.R (Sub, Reg.a 3, Reg.a 0, Reg.a 1);
    Inst.Jal (Reg.ra, 8);
    Inst.Jalr (Reg.x0, Reg.ra, 0);
    Inst.Ecall ]

let leq_state a b = Mc_dataflow.State.equal (Mc_dataflow.State.join a b) b

let prop_transfer_monotone (idx, (a, b)) =
  let inst = List.nth transfer_pool (idx mod List.length transfer_pool) in
  let node = { Mc_cfg.n_index = 0; n_offset = 0; n_size = 4; n_inst = Some inst } in
  let ab = Mc_dataflow.State.join a b in
  let t = Mc_dataflow.transfer ~text_base:Rv.Program.Layout.text_base node in
  leq_state (t a) (t ab)

(* ------------------------------------------------------------------ *)
(* Mc_cfg: compressed fallthrough                                      *)
(* ------------------------------------------------------------------ *)

let p32 i = Rv.Program.P32 (Rv.Encode.encode i)

let p16 i =
  match Rv.Rvc.compress i with
  | Some enc -> Rv.Program.P16 enc
  | None -> Alcotest.fail "instruction has no compressed form"

let image_of_parcels ?(entry = 0) ?(symbols = []) parcels =
  { Rv.Program.text = Array.of_list parcels;
    data = Bytes.create 0;
    bss_size = 0;
    entry_offset = entry;
    symbols }

let exit_stub code =
  [ p32 (Rv.Inst.I (Addi, Rv.Reg.a 0, Rv.Reg.x0, code));
    p32 (Rv.Inst.I (Addi, Rv.Reg.a 7, Rv.Reg.x0, 93));
    p32 Rv.Inst.Ecall ]

let test_rvc_indirect_call_falls_through () =
  (* c.jalr is 2 bytes: the resume point is offset+2, not +4.  Before the
     Indirect_call flow existed the successor was dropped entirely and
     the exit stub below was unreachable. *)
  let parcels =
    p32 (Rv.Inst.U (Lui, Rv.Reg.t_ 0, 16)) (* t0 = text base *)
    :: p16 (Rv.Inst.Jalr (Rv.Reg.ra, Rv.Reg.t_ 0, 0))
    :: exit_stub 0
  in
  let cfg = Mc_cfg.build (image_of_parcels parcels) in
  let node = Option.get (Mc_cfg.node_at cfg 4) in
  check Alcotest.int "compressed parcel is 2 bytes" 2 node.Mc_cfg.n_size;
  check Alcotest.bool "classified as an indirect call" true
    (Mc_cfg.flow_of node = Mc_cfg.Indirect_call);
  check Alcotest.(option int) "falls through 2 bytes later" (Some 6)
    (Mc_cfg.fallthrough cfg node);
  (* The 4-byte (uncompressed) form resumes 4 bytes later. *)
  let cfg32 =
    Mc_cfg.build
      (image_of_parcels
         (p32 (Rv.Inst.U (Lui, Rv.Reg.t_ 0, 16))
         :: p32 (Rv.Inst.Jalr (Rv.Reg.ra, Rv.Reg.t_ 0, 0))
         :: exit_stub 0))
  in
  let node32 = Option.get (Mc_cfg.node_at cfg32 4) in
  check Alcotest.(option int) "32-bit form resumes at +4" (Some 8)
    (Mc_cfg.fallthrough cfg32 node32)

let test_rvc_mixed_blocks () =
  (* Mixed 2/4-byte encodings: block leaders must be n_size-exact.  A
     compressed branch (c.beqz) at offset 4 is 2 bytes; its fallthrough
     block starts at 6. *)
  let parcels =
    [ p16 (Rv.Inst.I (Addi, Rv.Reg.a 0, Rv.Reg.x0, 1)); (* 0: c.li, 2 bytes *)
      p16 (Rv.Inst.Branch (Beq, Rv.Reg.a 0, Rv.Reg.x0, 10)); (* 2: c.beqz -> 12 *)
      p32 (Rv.Inst.I (Addi, Rv.Reg.a 0, Rv.Reg.a 0, 2)); (* 4 *)
      p32 (Rv.Inst.Jal (Rv.Reg.x0, 8)) (* 8: j -> 16 *) ]
    @ exit_stub 0 (* 12, 16, 20 *)
  in
  let cfg = Mc_cfg.build (image_of_parcels parcels) in
  let { Mc_cfg.blocks; block_of_node } = Mc_cfg.basic_blocks cfg in
  let block_starting off =
    let n = Option.get (Mc_cfg.node_at cfg off) in
    let b = blocks.(block_of_node.(n.Mc_cfg.n_index)) in
    check Alcotest.int ("block leader at " ^ string_of_int off) b.Mc_cfg.bb_first
      n.Mc_cfg.n_index;
    b
  in
  (* Leaders: 0 (entry), 4 (right after the 2-byte c.beqz), 12 (branch
     target), 16 (jump target). *)
  ignore (block_starting 0);
  ignore (block_starting 4);
  ignore (block_starting 12);
  ignore (block_starting 16);
  let b0 = blocks.(block_of_node.(0)) in
  let b4 = blocks.(block_of_node.((Option.get (Mc_cfg.node_at cfg 4)).Mc_cfg.n_index)) in
  check Alcotest.int "entry block spans both compressed parcels" 1 b0.Mc_cfg.bb_last;
  check Alcotest.int "two successors of the branch block" 2 (List.length b0.Mc_cfg.bb_succs);
  check Alcotest.int "fallthrough chain reaches the jump" 1
    (List.length b4.Mc_cfg.bb_succs)

let test_rvc_no_false_fallthrough_end () =
  (* A compressed indirect call just before the exit stub must not
     detach the stub (the pre-fix behaviour made the region end at the
     c.jalr and the verifier reported nothing downstream of it). *)
  let parcels =
    p32 (Rv.Inst.U (Lui, Rv.Reg.t_ 0, 16))
    :: p16 (Rv.Inst.Jalr (Rv.Reg.ra, Rv.Reg.t_ 0, 0))
    :: exit_stub 0
  in
  let diags = Mc_verify.verify (image_of_parcels parcels) in
  check Alcotest.bool "no fallthrough-end" false
    (List.exists (fun d -> d.Diag.check = "mc.cfg.fallthrough-end") diags);
  check Alcotest.bool "indirect call noted" true
    (List.exists
       (fun d -> d.Diag.check = "mc.jalr.indirect" && d.Diag.severity = Diag.Note)
       diags)

(* ------------------------------------------------------------------ *)
(* Value-set analysis                                                  *)
(* ------------------------------------------------------------------ *)

let test_value_set_resolves_auipc_jalr () =
  (* auipc t0, 0; addi t0, t0, 16; jalr x0, t0, 0  — a computed jump to
     text offset 16 (auipc at offset 0).  The linear sweep sees nothing;
     the value-set analysis must resolve it. *)
  let parcels =
    [ p32 (Rv.Inst.U (Auipc, Rv.Reg.t_ 0, 0));
      p32 (Rv.Inst.I (Addi, Rv.Reg.t_ 0, Rv.Reg.t_ 0, 16));
      p32 (Rv.Inst.Jalr (Rv.Reg.x0, Rv.Reg.t_ 0, 0));
      p32 (Rv.Inst.I (Addi, Rv.Reg.x0, Rv.Reg.x0, 0)) (* 12: dead pad *) ]
    @ exit_stub 0 (* 16: the target *)
  in
  let cfg = Mc_cfg.build (image_of_parcels parcels) in
  let r = Mc_dataflow.analyze cfg ~entries:[ 0 ] in
  check Alcotest.int "one indirect site" 1 (List.length r.Mc_dataflow.resolutions);
  let res = List.hd r.Mc_dataflow.resolutions in
  check Alcotest.int "site offset" 8 res.Mc_dataflow.site_offset;
  check (Alcotest.list Alcotest.int) "resolved to offset 16" [ 16 ] res.Mc_dataflow.targets;
  check Alcotest.int "counted as resolved" 1 r.Mc_dataflow.resolved_sites

let test_value_set_call_havoc () =
  (* A call between materialisation and use havocs t0: the jalr must NOT
     resolve (ra-relative resolution is the attacker's return linking,
     not the value-set's job). *)
  let parcels =
    [ p32 (Rv.Inst.U (Auipc, Rv.Reg.t_ 0, 0)); (* 0 *)
      p32 (Rv.Inst.Jal (Rv.Reg.ra, 12)); (* 4: call 16 *)
      p32 (Rv.Inst.Jalr (Rv.Reg.x0, Rv.Reg.t_ 0, 0)); (* 8: t0 now unknown *)
      p32 (Rv.Inst.I (Addi, Rv.Reg.x0, Rv.Reg.x0, 0)); (* 12 *)
      p32 (Rv.Inst.Jalr (Rv.Reg.x0, Rv.Reg.ra, 0)) ] (* 16: ret *)
  in
  let cfg = Mc_cfg.build (image_of_parcels parcels) in
  let r = Mc_dataflow.analyze cfg ~entries:[ 0 ] in
  let site8 =
    List.find (fun x -> x.Mc_dataflow.site_offset = 8) r.Mc_dataflow.resolutions
  in
  check (Alcotest.list Alcotest.int) "clobbered base resolves nothing" []
    site8.Mc_dataflow.targets

let test_value_set_invisible_parcels () =
  (* Same program as the auipc test, but the materialising parcels are
     encrypted: nothing resolves. *)
  let parcels =
    [ p32 (Rv.Inst.U (Auipc, Rv.Reg.t_ 0, 0));
      p32 (Rv.Inst.I (Addi, Rv.Reg.t_ 0, Rv.Reg.t_ 0, 16));
      p32 (Rv.Inst.Jalr (Rv.Reg.x0, Rv.Reg.t_ 0, 0));
      p32 (Rv.Inst.I (Addi, Rv.Reg.x0, Rv.Reg.x0, 0)) ]
    @ exit_stub 0
  in
  let cfg = Mc_cfg.build (image_of_parcels parcels) in
  let r = Mc_dataflow.analyze ~visible:(fun i -> i >= 2) cfg ~entries:[ 0 ] in
  check Alcotest.int "nothing resolves through encrypted parcels" 0
    r.Mc_dataflow.resolved_sites

(* ------------------------------------------------------------------ *)
(* Attacker hierarchy                                                  *)
(* ------------------------------------------------------------------ *)

let workload_images =
  lazy
    (List.map
       (fun (w : Eric_workloads.Workloads.t) ->
         (w.Eric_workloads.Workloads.name,
          Eric_cc.Driver.compile_exn w.Eric_workloads.Workloads.source))
       Eric_workloads.Workloads.all)

let clear_coverage (image : Rv.Program.t) =
  Array.map (fun _ -> Leakage.Clear) image.Rv.Program.text

let test_attacker_hierarchy_plain () =
  (* The acceptance gate: on every workload's plain image the recursive
     score dominates the linear score, strictly on at least 3 workloads
     (here: on all, via resolved returns and entry discovery). *)
  let strict = ref 0 in
  List.iter
    (fun (name, image) ->
      let cov = clear_coverage image in
      let lin = Leakage.recover Leakage.Linear image cov in
      let rc = Leakage.recover Leakage.Recursive image cov in
      if not (rc.Leakage.structure_score >= lin.Leakage.structure_score) then
        Alcotest.fail
          (Printf.sprintf "%s: recursive %.3f < linear %.3f" name
             rc.Leakage.structure_score lin.Leakage.structure_score);
      if rc.Leakage.structure_score > lin.Leakage.structure_score then incr strict;
      if rc.Leakage.indirect_resolved = 0 then
        Alcotest.fail (name ^ ": recursive attacker resolved no indirect transfer");
      check Alcotest.bool (name ^ ": component dominance") true
        (rc.Leakage.code_found >= lin.Leakage.code_found
        && rc.Leakage.functions_found >= lin.Leakage.functions_found
        && rc.Leakage.branch_targets_found >= lin.Leakage.branch_targets_found
        && rc.Leakage.call_edges_found >= lin.Leakage.call_edges_found
        && rc.Leakage.indirect_resolved >= lin.Leakage.indirect_resolved))
    (Lazy.force workload_images);
  check Alcotest.bool "strictly greater on >= 3 workloads" true (!strict >= 3)

let test_attacker_hierarchy_encrypted () =
  (* Under full encryption the recursive attacker keeps only the entry
     point (plaintext in the package header); under a half-plaintext
     policy it still dominates. *)
  List.iter
    (fun (name, image) ->
      let full = Eric.Policy_lint.recover ~mode:Eric.Config.Full ~attacker:Leakage.Recursive image in
      check Alcotest.int (name ^ ": full encryption leaves no code") 0
        full.Leakage.code_found;
      check Alcotest.bool (name ^ ": at most the entry function") true
        (full.Leakage.functions_found <= 1);
      let mode =
        Eric.Config.Partial (Eric.Config.Select_fraction { fraction = 0.5; seed = 0x5EEDL })
      in
      let lin = Eric.Policy_lint.recover ~mode ~attacker:Leakage.Linear image in
      let rc = Eric.Policy_lint.recover ~mode ~attacker:Leakage.Recursive image in
      check Alcotest.bool (name ^ ": dominance under partial policy") true
        (rc.Leakage.structure_score >= lin.Leakage.structure_score))
    (Lazy.force workload_images)

let test_attacker_structure_diags () =
  let _, image = List.hd (Lazy.force workload_images) in
  let cov = clear_coverage image in
  let s = Leakage.recover Leakage.Recursive image cov in
  check Alcotest.bool "plain image recovers everything" true (s.Leakage.structure_score > 0.99);
  let warn = Leakage.structure_diags s in
  check Alcotest.bool "advisory warning" true
    (List.exists
       (fun d -> d.Diag.check = "leak.struct.recovered" && d.Diag.severity = Diag.Warning)
       warn);
  let gated = Leakage.structure_diags ~max_leakage:0.5 s in
  check Alcotest.bool "gate escalates" true
    (List.exists
       (fun d -> d.Diag.check = "leak.struct.recovered" && d.Diag.severity = Diag.Error)
       gated);
  check Alcotest.bool "indirect note" true
    (List.exists (fun d -> d.Diag.check = "leak.struct.indirect") warn);
  (* Length-mismatch guard. *)
  Alcotest.check_raises "coverage mismatch"
    (Invalid_argument "Leakage.recover: coverage length <> parcel count") (fun () ->
      ignore (Leakage.recover Leakage.Linear image (Array.make 1 Leakage.Clear)))

let test_compiler_truth_export () =
  let name, image = List.hd (Lazy.force workload_images) in
  let t = Eric_cc.Truth.of_image image in
  check Alcotest.bool (name ^ ": has function symbols") true
    (List.length t.Eric_cc.Truth.functions >= 2);
  check Alcotest.bool "functions are non-local" true
    (List.for_all
       (fun (n, _) -> not (String.length n > 0 && n.[0] = '.'))
       t.Eric_cc.Truth.functions);
  check Alcotest.bool "_start exported" true
    (List.mem_assoc "_start" t.Eric_cc.Truth.functions);
  match Eric_telemetry.Json.of_string (Eric_telemetry.Json.to_string (Eric_cc.Truth.to_json t)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("truth json does not parse: " ^ e)

(* ------------------------------------------------------------------ *)
(* Pipeline taint                                                      *)
(* ------------------------------------------------------------------ *)

let test_taint_obligation_holds () =
  let result, diags = Eric.Pipeline_taint.lint () in
  check (Alcotest.list Alcotest.string) "no findings" []
    (List.map (fun d -> d.Diag.check) diags);
  check Alcotest.bool "keystream is tainted" true
    (List.mem "keystream" result.Taint.tainted);
  check Alcotest.bool "device key is tainted" true
    (List.mem "device_key" result.Taint.tainted);
  check Alcotest.bool "ciphertext is clean" false
    (List.mem "enc_text" result.Taint.tainted)

let test_taint_seeded_defect_fails () =
  let result = Taint.analyze Eric.Pipeline_taint.defective_model in
  let diags = Taint.diags result in
  check Alcotest.bool "defect reported at error severity" true
    (List.exists
       (fun d ->
         d.Diag.check = Eric.Pipeline_taint.field_check && d.Diag.severity = Diag.Error)
       diags);
  let f = List.find (fun f -> f.Taint.sink = "package_header") result.Taint.findings in
  check Alcotest.bool "witness path starts at the source" true
    (match f.Taint.path with "puf_response" :: _ -> true | _ -> false);
  check Alcotest.bool "witness path ends at the sink" true
    (match List.rev f.Taint.path with "package_header" :: _ -> true | _ -> false)

let test_taint_bad_specs_rejected () =
  let open Taint in
  Alcotest.check_raises "duplicate node"
    (Invalid_argument "Taint.analyze: duplicate node a") (fun () ->
      ignore (analyze { nodes = [ ("a", Internal); ("a", Internal) ]; edges = [] }));
  Alcotest.check_raises "unknown edge endpoint"
    (Invalid_argument "Taint.analyze: copy edge names unknown node b") (fun () ->
      ignore (analyze { nodes = [ ("a", Internal) ]; edges = [ ("a", Copy, "b") ] }))

let test_taint_checks_catalogued () =
  List.iter
    (fun id ->
      match Checks.find id with
      | Some i ->
        check Alcotest.bool (id ^ " is an error") true (i.Checks.severity = Diag.Error)
      | None -> Alcotest.fail ("undocumented check id: " ^ id))
    [ Eric.Pipeline_taint.field_check; Eric.Pipeline_taint.telemetry_check ];
  List.iter
    (fun id ->
      if Checks.find id = None then Alcotest.fail ("undocumented check id: " ^ id))
    [ "leak.struct.recovered"; "leak.struct.indirect" ]

let () =
  Alcotest.run "eric_dataflow"
    ([ ( "solver",
         [ Alcotest.test_case "forward diamond" `Quick test_solver_forward_diamond;
           Alcotest.test_case "backward liveness" `Quick test_solver_backward_liveness;
           Alcotest.test_case "boundary through loop" `Quick test_solver_boundary_and_loop;
           Alcotest.test_case "rejects bad edges" `Quick test_graph_rejects_bad_edges;
           qtest ~count:300 "terminates at a fixpoint on random CFGs" arb_cfg
             prop_solver_fixpoint ] ) ]
    @ [ ( "lattice-laws",
          laws (module Df.Bitset) "bitset" arb_bitset
          @ laws (module Flat_int) "flat" arb_flat
          @ laws (module Mc_dataflow.Value) "value-set" arb_value
          @ laws (module Mc_dataflow.State) "register-state" arb_state
          @ laws (module Taint.Lattice) "taint" arb_taint
          @ laws (module Must) "must-define" arb_must
          @ [ qtest ~count:300 "value-set transfer monotone"
                QCheck.(pair small_nat (pair arb_state arb_state))
                prop_transfer_monotone ] ) ]
    @ [ ( "mc-cfg-rvc",
          [ Alcotest.test_case "c.jalr falls through +2" `Quick
              test_rvc_indirect_call_falls_through;
            Alcotest.test_case "mixed-width blocks" `Quick test_rvc_mixed_blocks;
            Alcotest.test_case "no false fallthrough-end" `Quick
              test_rvc_no_false_fallthrough_end ] );
        ( "value-set",
          [ Alcotest.test_case "resolves auipc+jalr" `Quick test_value_set_resolves_auipc_jalr;
            Alcotest.test_case "call havoc" `Quick test_value_set_call_havoc;
            Alcotest.test_case "invisible parcels" `Quick test_value_set_invisible_parcels ] );
        ( "attacker",
          [ Alcotest.test_case "hierarchy on plain images" `Quick test_attacker_hierarchy_plain;
            Alcotest.test_case "hierarchy under policies" `Quick
              test_attacker_hierarchy_encrypted;
            Alcotest.test_case "structure diagnostics" `Quick test_attacker_structure_diags;
            Alcotest.test_case "compiler truth export" `Quick test_compiler_truth_export ] );
        ( "taint",
          [ Alcotest.test_case "obligation holds" `Quick test_taint_obligation_holds;
            Alcotest.test_case "seeded defect fails" `Quick test_taint_seeded_defect_fails;
            Alcotest.test_case "bad specs rejected" `Quick test_taint_bad_specs_rejected;
            Alcotest.test_case "checks catalogued" `Quick test_taint_checks_catalogued ] ) ])
