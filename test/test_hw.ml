(* Tests for eric_hw: RTL cost-tree arithmetic, the Table-II area model,
   and the HDE load-path cycle model. *)

open Eric_hw

let check = Alcotest.check
let qtest ?(count = 200) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rtl                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rtl_leaf_and_block () =
  let l1 = Rtl.leaf "a" ~luts:10 ~ffs:4 in
  let l2 = Rtl.register "r" ~bits:16 in
  let b = Rtl.block "top" [ l1; l2 ] in
  check Alcotest.int "luts sum" 10 (Rtl.luts b);
  check Alcotest.int "ffs sum" 20 (Rtl.ffs b);
  check Alcotest.string "name" "top" (Rtl.name b)

let test_rtl_primitives () =
  check Alcotest.int "register ffs" 64 (Rtl.ffs (Rtl.register "r" ~bits:64));
  check Alcotest.int "register luts" 0 (Rtl.luts (Rtl.register "r" ~bits:64));
  check Alcotest.int "adder" 32 (Rtl.luts (Rtl.adder "a" ~bits:32));
  check Alcotest.int "xor pair packing" 16 (Rtl.luts (Rtl.xor_gates "x" ~bits:32));
  check Alcotest.int "mux rounding" 3 (Rtl.luts (Rtl.mux2 "m" ~bits:5));
  check Alcotest.bool "counter has both" true
    (Rtl.luts (Rtl.counter "c" ~bits:8) > 0 && Rtl.ffs (Rtl.counter "c" ~bits:8) = 8)

let test_rtl_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Rtl.leaf: negative cost") (fun () ->
      ignore (Rtl.leaf "bad" ~luts:(-1) ~ffs:0))

(* ------------------------------------------------------------------ *)
(* Area / Table II                                                     *)
(* ------------------------------------------------------------------ *)

let test_baseline_matches_paper () =
  check Alcotest.int "baseline LUTs" 33894 (Rtl.luts Area.rocket_baseline);
  check Alcotest.int "baseline FFs" 19093 (Rtl.ffs Area.rocket_baseline)

let test_hde_delta_in_paper_band () =
  (* Paper: +2.63% LUTs, +3.83% FFs.  The model must land in the same
     low-single-digit band. *)
  let lut_pct =
    100.0
    *. float_of_int (Rtl.luts Area.rocket_with_hde - Rtl.luts Area.rocket_baseline)
    /. float_of_int (Rtl.luts Area.rocket_baseline)
  in
  let ff_pct =
    100.0
    *. float_of_int (Rtl.ffs Area.rocket_with_hde - Rtl.ffs Area.rocket_baseline)
    /. float_of_int (Rtl.ffs Area.rocket_baseline)
  in
  check Alcotest.bool "LUT delta ~2.6%" true (lut_pct > 2.0 && lut_pct < 3.3);
  check Alcotest.bool "FF delta ~3.8%" true (ff_pct > 3.0 && ff_pct < 4.6)

let test_table2_rows () =
  match Area.table2 () with
  | [ luts; ffs; freq ] ->
    check Alcotest.string "row 1" "Total Slice LUTs" luts.Area.resource;
    check Alcotest.int "row 1 baseline" 33894 luts.Area.baseline;
    check Alcotest.bool "row 1 grows" true (luts.Area.with_hde > luts.Area.baseline);
    check Alcotest.bool "row 2 grows" true (ffs.Area.with_hde > ffs.Area.baseline);
    check Alcotest.int "frequency unchanged" freq.Area.baseline freq.Area.with_hde
  | rows -> Alcotest.failf "expected 3 rows, got %d" (List.length rows)

let test_hde_composition () =
  (* The HDE must contain all five paper units (plus bus plumbing). *)
  check Alcotest.bool "hde is larger than any single unit" true
    (Rtl.luts Area.hde > 600 && Rtl.ffs Area.hde > 500)

(* ------------------------------------------------------------------ *)
(* Hde cycle model                                                     *)
(* ------------------------------------------------------------------ *)

let cfg = Hde.default_config

let test_plain_load () =
  check Alcotest.int64 "8B/cycle" 128L (Hde.load_plain cfg ~image_bytes:1024);
  check Alcotest.int64 "rounds up" 1L (Hde.load_plain cfg ~image_bytes:3)

let test_encrypted_slower_than_plain () =
  let b = Hde.load_encrypted cfg ~image_bytes:4096 ~hashed_bytes:4096 ~encrypted_bytes:4096 in
  check Alcotest.bool "encrypted load slower" true
    (Int64.compare b.Hde.total_cycles (Hde.load_plain cfg ~image_bytes:4096) > 0)

let test_partial_cheaper_than_full () =
  let full = Hde.load_encrypted cfg ~image_bytes:4096 ~hashed_bytes:4096 ~encrypted_bytes:4096 in
  let half = Hde.load_encrypted cfg ~image_bytes:4096 ~hashed_bytes:4096 ~encrypted_bytes:2048 in
  check Alcotest.bool "less keystream, faster" true
    (Int64.compare half.Hde.total_cycles full.Hde.total_cycles < 0)

let test_breakdown_consistency () =
  (* Default (shared SHA core): stages serialise. *)
  let b = Hde.load_encrypted cfg ~image_bytes:1000 ~hashed_bytes:900 ~encrypted_bytes:500 in
  let stage_sum =
    List.fold_left Int64.add 0L
      [ b.Hde.dma_cycles; b.Hde.hash_cycles; b.Hde.keystream_cycles; b.Hde.xor_cycles ]
  in
  check Alcotest.int64 "serialised total = stage sum + fixed" (Int64.add stage_sum b.Hde.fixed_cycles)
    b.Hde.total_cycles;
  (* Pipelined variant: bounded by the slowest stage. *)
  let p =
    Hde.load_encrypted { cfg with Hde.pipelined = true } ~image_bytes:1000 ~hashed_bytes:900
      ~encrypted_bytes:500
  in
  let stage_max =
    List.fold_left max 0L [ p.Hde.dma_cycles; p.Hde.hash_cycles; p.Hde.keystream_cycles; p.Hde.xor_cycles ]
  in
  check Alcotest.int64 "pipelined total = max stage + fixed" (Int64.add stage_max p.Hde.fixed_cycles)
    p.Hde.total_cycles;
  check Alcotest.bool "pipelined is no slower than serialised" true
    (Int64.compare p.Hde.total_cycles b.Hde.total_cycles <= 0)

let hde_monotonic =
  qtest "load cycles monotonic in encrypted bytes" QCheck.(pair (int_bound 100000) (int_bound 100000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let t bytes =
        (Hde.load_encrypted cfg ~image_bytes:100000 ~hashed_bytes:100000 ~encrypted_bytes:bytes)
          .Hde.total_cycles
      in
      Int64.compare (t lo) (t hi) <= 0)

let test_rejects_negative () =
  Alcotest.check_raises "negative bytes" (Invalid_argument "Hde.load_plain: negative byte count")
    (fun () -> ignore (Hde.load_plain cfg ~image_bytes:(-1)))

(* ------------------------------------------------------------------ *)
(* Integrity-guard cost model                                          *)
(* ------------------------------------------------------------------ *)

let test_guard_disabled_zero_cost () =
  let g = Guard.disabled in
  check Alcotest.bool "disabled" false (Guard.enabled g);
  check Alcotest.int "no enroll cost" 0 (Guard.enroll_cycles g ~resident_bytes:65536);
  check Alcotest.int "no scrub cost" 0 (Guard.scrub_pass_cycles g ~resident_bytes:65536);
  check Alcotest.int "no fetch cost" 0 (Guard.fetch_check_cycles g);
  check (Alcotest.float 0.0) "no overhead" 0.0 (Guard.overhead_rate g ~resident_bytes:65536)

let test_guard_cost_arithmetic () =
  (* Defaults: 64 B granules, 65-cycle hash, 4-cycle compare. *)
  let g = Guard.scrub ~interval_cycles:1024 in
  check Alcotest.int "granules ceil" 65 (Guard.granules g ~bytes:(64 * 64 + 1));
  check Alcotest.int "enroll = granules * hash" (64 * 65)
    (Guard.enroll_cycles g ~resident_bytes:4096);
  check Alcotest.int "scrub pass = granules * (hash + compare)" (64 * 69)
    (Guard.scrub_pass_cycles g ~resident_bytes:4096);
  check Alcotest.int "scrub has no fetch cost" 0 (Guard.fetch_check_cycles g);
  check Alcotest.int "fetch check = hash + compare" 69
    (Guard.fetch_check_cycles Guard.fetch_check);
  check Alcotest.int "fetch-only has no scrub pass" 0
    (Guard.scrub_pass_cycles Guard.fetch_check ~resident_bytes:4096)

let test_guard_mechanism_names () =
  List.iter
    (fun m ->
      let name = Guard.mechanism_name m in
      match Guard.mechanism_of_string name with
      | Ok m' -> check Alcotest.string ("roundtrip " ^ name) name (Guard.mechanism_name m')
      | Error e -> Alcotest.failf "%s did not parse back: %s" name e)
    [ Guard.Off;
      Guard.Scrub { interval_cycles = 512 };
      Guard.Fetch_check;
      Guard.Fetch_and_scrub { interval_cycles = 4096 } ];
  check Alcotest.bool "garbage refused" true
    (Result.is_error (Guard.mechanism_of_string "scrub:banana"))

let test_guard_validate () =
  check Alcotest.bool "zero interval refused" true
    (Result.is_error (Guard.validate (Guard.scrub ~interval_cycles:0)));
  check Alcotest.bool "zero granule refused" true
    (Result.is_error (Guard.validate { Guard.fetch_check with Guard.granule_bytes = 0 }));
  check Alcotest.bool "default ok" true
    (Result.is_ok (Guard.validate (Guard.fetch_and_scrub ~interval_cycles:512)))

let guard_overhead_antitone =
  qtest "scrub overhead antitone in interval"
    QCheck.(pair (int_range 1 100000) (int_range 1 100000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let rate i =
        Guard.overhead_rate (Guard.scrub ~interval_cycles:i) ~resident_bytes:8192
      in
      rate hi <= rate lo)

let guard_cost_monotone_bytes =
  qtest "guard costs monotone in resident bytes"
    QCheck.(pair (int_bound 100000) (int_bound 100000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let g = Guard.fetch_and_scrub ~interval_cycles:512 in
      Guard.enroll_cycles g ~resident_bytes:lo <= Guard.enroll_cycles g ~resident_bytes:hi
      && Guard.scrub_pass_cycles g ~resident_bytes:lo
         <= Guard.scrub_pass_cycles g ~resident_bytes:hi)

let test_guard_in_load_breakdown () =
  (* Enrollment rides the load: sequential HDEs serialise it with the
     other stages, a pipelined HDE overlaps it (total = slowest stage). *)
  let load pipelined guard =
    Hde.load_encrypted
      { cfg with Hde.pipelined; guard }
      ~image_bytes:4096 ~hashed_bytes:4096 ~encrypted_bytes:4096
  in
  let off = load false Guard.disabled in
  let seq = load false (Guard.scrub ~interval_cycles:512) in
  let pip = load true (Guard.scrub ~interval_cycles:512) in
  check Alcotest.int64 "no guard, no enroll cycles" 0L off.Hde.guard_cycles;
  check Alcotest.int64 "enroll cycles accounted"
    (Int64.of_int (Guard.enroll_cycles (Guard.scrub ~interval_cycles:512) ~resident_bytes:4096))
    seq.Hde.guard_cycles;
  check Alcotest.int64 "sequential pays enrollment on top"
    (Int64.add off.Hde.total_cycles seq.Hde.guard_cycles)
    seq.Hde.total_cycles;
  check Alcotest.bool "pipelined hides enrollment behind the slowest stage" true
    (Int64.compare pip.Hde.total_cycles seq.Hde.total_cycles <= 0)

(* ------------------------------------------------------------------ *)
(* Fuzzy-extractor key-setup recosting                                 *)
(* ------------------------------------------------------------------ *)

let test_reconstruction_positive () =
  check Alcotest.bool "one read, one attempt costs cycles" true
    (Hde.reconstruction_cycles cfg ~reads:1 ~attempts:1 > 0)

let reconstruction_monotone =
  qtest "reconstruction cycles monotone in reads and attempts"
    QCheck.(pair (pair (int_range 1 10000) (int_range 1 10000)) (pair (int_range 1 64) (int_range 1 64)))
    (fun ((r1, r2), (a1, a2)) ->
      let rlo = min r1 r2 and rhi = max r1 r2 in
      let alo = min a1 a2 and ahi = max a1 a2 in
      Hde.reconstruction_cycles cfg ~reads:rlo ~attempts:alo
      <= Hde.reconstruction_cycles cfg ~reads:rhi ~attempts:ahi)

let () =
  Alcotest.run "eric_hw"
    [ ( "rtl",
        [ Alcotest.test_case "leaf and block" `Quick test_rtl_leaf_and_block;
          Alcotest.test_case "primitives" `Quick test_rtl_primitives;
          Alcotest.test_case "rejects negative" `Quick test_rtl_rejects_negative ] );
      ( "area",
        [ Alcotest.test_case "baseline matches paper" `Quick test_baseline_matches_paper;
          Alcotest.test_case "HDE delta in paper band" `Quick test_hde_delta_in_paper_band;
          Alcotest.test_case "table2 rows" `Quick test_table2_rows;
          Alcotest.test_case "hde composition" `Quick test_hde_composition ] );
      ( "hde",
        [ Alcotest.test_case "plain load" `Quick test_plain_load;
          Alcotest.test_case "encrypted slower" `Quick test_encrypted_slower_than_plain;
          Alcotest.test_case "partial cheaper" `Quick test_partial_cheaper_than_full;
          Alcotest.test_case "breakdown consistency" `Quick test_breakdown_consistency;
          hde_monotonic;
          Alcotest.test_case "rejects negative" `Quick test_rejects_negative ] );
      ( "guard",
        [ Alcotest.test_case "disabled is free" `Quick test_guard_disabled_zero_cost;
          Alcotest.test_case "cost arithmetic" `Quick test_guard_cost_arithmetic;
          Alcotest.test_case "mechanism names" `Quick test_guard_mechanism_names;
          Alcotest.test_case "validate" `Quick test_guard_validate;
          guard_overhead_antitone;
          guard_cost_monotone_bytes;
          Alcotest.test_case "enrollment in load breakdown" `Quick
            test_guard_in_load_breakdown ] );
      ( "reconstruction",
        [ Alcotest.test_case "positive" `Quick test_reconstruction_positive;
          reconstruction_monotone ] ) ]
