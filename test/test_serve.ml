(* Tests for the serve subsystem: the shared simulated clock, Zipf
   sampling, the bounded admission queue's exact refusal accounting and
   FIFO order, traffic generation determinism, and the acceptance
   property of the whole loop — the same (scenario, seed) produces a
   byte-identical SLO report, JSON included. *)

open Eric_serve

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Sim_clock                                                           *)
(* ------------------------------------------------------------------ *)

let test_clock_advances () =
  let c = Eric_util.Sim_clock.create () in
  check Alcotest.int64 "starts at zero" 0L (Eric_util.Sim_clock.now_ns c);
  Eric_util.Sim_clock.advance c 500L;
  Eric_util.Sim_clock.advance c 250L;
  check Alcotest.int64 "advance accumulates" 750L (Eric_util.Sim_clock.now_ns c);
  Eric_util.Sim_clock.advance_to c 700L;
  check Alcotest.int64 "advance_to never rewinds" 750L (Eric_util.Sim_clock.now_ns c);
  Eric_util.Sim_clock.advance_to c 1_000L;
  check Alcotest.int64 "advance_to forward" 1_000L (Eric_util.Sim_clock.now_ns c)

let test_clock_rejects_negative () =
  let c = Eric_util.Sim_clock.create () in
  Alcotest.check_raises "negative advance" (Invalid_argument "Sim_clock.advance: negative delta")
    (fun () -> Eric_util.Sim_clock.advance c (-1L));
  Alcotest.check_raises "negative start"
    (Invalid_argument "Sim_clock.create: negative start") (fun () ->
      ignore (Eric_util.Sim_clock.create ~now_ns:(-5L) ()))

let test_clock_unit_conversions () =
  check Alcotest.int64 "of_s" 1_500_000_000L (Eric_util.Sim_clock.of_s 1.5);
  check (Alcotest.float 1e-9) "to_s" 1.5 (Eric_util.Sim_clock.to_s 1_500_000_000L);
  check (Alcotest.float 1e-9) "to_ms" 1500.0 (Eric_util.Sim_clock.to_ms 1_500_000_000L)

(* The satellite property: the shipper's retry backoff advances the same
   clock the serve loop reads, so both account one timeline. *)
let test_clock_shared_with_shipper () =
  let clock = Eric_util.Sim_clock.create () in
  let reg = Eric_fleet.Registry.create () in
  let entry =
    match Eric_fleet.Registry.enroll reg 77L with Ok e -> e | Error e -> failwith e
  in
  let prepared =
    match Eric.Source.prepare ~mode:Eric.Config.Full "int main() { return 0; }" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let build = Eric.Source.personalize ~key:entry.Eric_fleet.Registry.key prepared in
  let target = Eric_fleet.Registry.target reg entry in
  let channel = Eric_fleet.Channel.drop_first 2 in
  let d = Eric_fleet.Shipper.ship ~channel ~clock ~build ~target () in
  check Alcotest.bool "delivered after retries" true (Eric_fleet.Shipper.delivered d);
  check Alcotest.int "two refusals" 2 (List.length d.Eric_fleet.Shipper.refusals);
  check Alcotest.int64 "clock advanced by total backoff" d.Eric_fleet.Shipper.backoff_ns
    (Eric_util.Sim_clock.now_ns clock)

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~exponent:1.0 ~n:10 () in
  let total = ref 0.0 in
  for r = 0 to 9 do
    total := !total +. Zipf.pmf z r
  done;
  check (Alcotest.float 1e-9) "pmf sums to 1" 1.0 !total;
  (* rank 0 strictly more popular than rank 9 under exponent 1 *)
  check Alcotest.bool "head heavier than tail" true (Zipf.pmf z 0 > 2.0 *. Zipf.pmf z 9)

let test_zipf_exponent_zero_uniform () =
  let z = Zipf.create ~exponent:0.0 ~n:4 () in
  for r = 0 to 3 do
    check (Alcotest.float 1e-9) "uniform pmf" 0.25 (Zipf.pmf z r)
  done

let test_zipf_sample_deterministic () =
  let draw () =
    let z = Zipf.create ~n:10 () in
    let rng = Eric_util.Prng.create ~seed:99L in
    List.init 64 (fun _ -> Zipf.sample z rng)
  in
  check Alcotest.(list int) "same seed, same draws" (draw ()) (draw ());
  let z = Zipf.create ~n:10 () in
  let rng = Eric_util.Prng.create ~seed:1L in
  for _ = 1 to 1000 do
    let r = Zipf.sample z rng in
    check Alcotest.bool "in range" true (r >= 0 && r < 10)
  done

let test_zipf_rejects_bad_args () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Zipf.create: need at least one rank")
    (fun () -> ignore (Zipf.create ~n:0 ()));
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Zipf.create: exponent must be finite and non-negative") (fun () ->
      ignore (Zipf.create ~exponent:(-1.0) ~n:4 ()))

let zipf_skew_matches_pmf =
  qtest ~count:20 "empirical head frequency tracks pmf"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let z = Zipf.create ~n:10 () in
      let rng = Eric_util.Prng.create ~seed:(Int64.of_int seed) in
      let n = 2_000 in
      let hits = ref 0 in
      for _ = 1 to n do
        if Zipf.sample z rng = 0 then incr hits
      done;
      let freq = float_of_int !hits /. float_of_int n in
      Float.abs (freq -. Zipf.pmf z 0) < 0.05)

(* ------------------------------------------------------------------ *)
(* Admit queue                                                         *)
(* ------------------------------------------------------------------ *)

let test_admit_zero_capacity_refuses () =
  let q = Admit.create ~capacity:0 in
  check Alcotest.bool "first offer shed" true (Admit.offer q 1 = Admit.Shed);
  check Alcotest.bool "second offer shed" true (Admit.offer q 2 = Admit.Shed);
  check Alcotest.int "shed counted per offer" 2 (Admit.shed q);
  check Alcotest.int "nothing accepted" 0 (Admit.accepted q);
  check Alcotest.bool "pop empty" true (Admit.pop q = None)

let test_admit_full_queue_sheds_exactly_once () =
  let q = Admit.create ~capacity:2 in
  check Alcotest.bool "1 accepted" true (Admit.offer q 1 = Admit.Accepted);
  check Alcotest.bool "2 accepted" true (Admit.offer q 2 = Admit.Accepted);
  check Alcotest.bool "3 shed" true (Admit.offer q 3 = Admit.Shed);
  check Alcotest.int "exactly one shed" 1 (Admit.shed q);
  check Alcotest.int "two accepted" 2 (Admit.accepted q);
  (* popping frees a slot; the next offer is admitted, shed stays 1 *)
  check Alcotest.(option int) "fifo head" (Some 1) (Admit.pop q);
  check Alcotest.bool "4 accepted after pop" true (Admit.offer q 4 = Admit.Accepted);
  check Alcotest.int "shed unchanged" 1 (Admit.shed q)

let test_admit_fifo_drain_order () =
  let q = Admit.create ~capacity:8 in
  List.iter (fun x -> ignore (Admit.offer q x)) [ 3; 1; 4; 1; 5 ];
  let rec drain acc = match Admit.pop q with None -> List.rev acc | Some x -> drain (x :: acc) in
  check Alcotest.(list int) "drains in offer order" [ 3; 1; 4; 1; 5 ] (drain []);
  check Alcotest.int "peak depth" 5 (Admit.peak q)

let test_admit_rejects_negative_capacity () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Admit.create: negative capacity") (fun () ->
      ignore (Admit.create ~capacity:(-1)))

(* ------------------------------------------------------------------ *)
(* Traffic                                                             *)
(* ------------------------------------------------------------------ *)

let gen_stream seed =
  let rng = Eric_util.Prng.create ~seed in
  let programs = Zipf.create ~n:10 () in
  Traffic.generate ~rng ~rate:(fun _ -> 100.0) ~max_rate:100.0
    ~duration_ns:2_000_000_000L ~tenants:3 ~devices_per_tenant:8 ~programs
    ~rotate_fraction:0.25 ()

let test_traffic_deterministic () =
  let a = gen_stream 5L and b = gen_stream 5L in
  check Alcotest.int "same length" (List.length a) (List.length b);
  List.iter2
    (fun (x : Traffic.request) (y : Traffic.request) ->
      check Alcotest.int64 "same arrival" x.Traffic.r_arrival_ns y.Traffic.r_arrival_ns;
      check Alcotest.int "same tenant" x.Traffic.r_tenant y.Traffic.r_tenant;
      check Alcotest.int "same device" x.Traffic.r_device y.Traffic.r_device;
      check Alcotest.int "same program" x.Traffic.r_program y.Traffic.r_program;
      check Alcotest.bool "same kind" true (x.Traffic.r_kind = y.Traffic.r_kind))
    a b;
  let c = gen_stream 6L in
  check Alcotest.bool "different seed, different stream" false
    (List.length a = List.length c
    && List.for_all2
         (fun (x : Traffic.request) (y : Traffic.request) ->
           x.Traffic.r_arrival_ns = y.Traffic.r_arrival_ns)
         a c)

let test_traffic_shape () =
  let reqs = gen_stream 11L in
  check Alcotest.bool "non-empty" true (List.length reqs > 100);
  let sorted = ref true and last = ref Int64.min_int and seq = ref 0 in
  List.iter
    (fun (r : Traffic.request) ->
      if Int64.compare r.Traffic.r_arrival_ns !last < 0 then sorted := false;
      last := r.Traffic.r_arrival_ns;
      check Alcotest.int "sequence numbers dense" !seq r.Traffic.r_seq;
      incr seq;
      check Alcotest.bool "inside horizon" true
        (r.Traffic.r_arrival_ns >= 0L && r.Traffic.r_arrival_ns < 2_000_000_000L);
      check Alcotest.bool "tenant in range" true (r.Traffic.r_tenant >= 0 && r.Traffic.r_tenant < 3);
      check Alcotest.bool "device in range" true
        (r.Traffic.r_device >= 0 && r.Traffic.r_device < 8))
    reqs;
  check Alcotest.bool "arrivals sorted" true !sorted;
  let rotates =
    List.length (List.filter (fun (r : Traffic.request) -> r.Traffic.r_kind = Traffic.Rotate) reqs)
  in
  let frac = float_of_int rotates /. float_of_int (List.length reqs) in
  check Alcotest.bool "rotate fraction near 0.25" true (frac > 0.15 && frac < 0.35)

let test_traffic_rotate_fraction_zero () =
  let rng = Eric_util.Prng.create ~seed:3L in
  let programs = Zipf.create ~n:10 () in
  let reqs =
    Traffic.generate ~rng ~rate:(fun _ -> 50.0) ~max_rate:50.0 ~duration_ns:1_000_000_000L
      ~tenants:1 ~devices_per_tenant:4 ~programs ~rotate_fraction:0.0 ()
  in
  check Alcotest.bool "all updates" true
    (List.for_all (fun (r : Traffic.request) -> r.Traffic.r_kind = Traffic.Update) reqs)

let test_traffic_rejects_bad_args () =
  let programs = Zipf.create ~n:10 () in
  let gen ?(max_rate = 10.0) ?(tenants = 1) ?(rotate = 0.0) () =
    let rng = Eric_util.Prng.create ~seed:1L in
    ignore
      (Traffic.generate ~rng ~rate:(fun _ -> 10.0) ~max_rate ~duration_ns:1_000_000L
         ~tenants ~devices_per_tenant:1 ~programs ~rotate_fraction:rotate ())
  in
  Alcotest.check_raises "zero max rate"
    (Invalid_argument "Traffic.generate: max_rate must be positive") (fun () ->
      gen ~max_rate:0.0 ());
  Alcotest.check_raises "no tenants"
    (Invalid_argument "Traffic.generate: need at least one tenant and one device")
    (fun () -> gen ~tenants:0 ());
  Alcotest.check_raises "bad rotate fraction"
    (Invalid_argument "Traffic.generate: rotate_fraction outside [0,1]") (fun () ->
      gen ~rotate:1.5 ())

(* ------------------------------------------------------------------ *)
(* Scenario                                                            *)
(* ------------------------------------------------------------------ *)

let test_scenario_lookup () =
  (match Scenario.by_name "flash-crowd" with
  | Ok sc -> check Alcotest.string "found" "flash-crowd" sc.Scenario.name
  | Error e -> Alcotest.fail e);
  (match Scenario.by_name "nope" with
  | Ok _ -> Alcotest.fail "unknown scenario accepted"
  | Error e -> check Alcotest.bool "error names candidates" true
                 (String.length e > 0));
  check Alcotest.(list string) "preset names"
    [ "steady"; "flash-crowd"; "rotation-storm"; "soft-error-storm" ]
    Scenario.names

let test_scenario_overrides () =
  let sc = Scenario.with_duration Scenario.steady ~seconds:5.0 in
  check Alcotest.int64 "duration override" 5_000_000_000L sc.Scenario.duration_ns;
  let sc = Scenario.with_rate_scale Scenario.flash_crowd ~factor:0.5 in
  check (Alcotest.float 1e-9) "burst base scaled" 20.0 (Scenario.rate sc 0.0);
  check (Alcotest.float 1e-9) "burst peak scaled" 500.0 (Scenario.rate sc 12.0);
  check (Alcotest.float 1e-9) "max rate" 500.0 (Scenario.max_rate sc)

(* ------------------------------------------------------------------ *)
(* Service: determinism and accounting                                 *)
(* ------------------------------------------------------------------ *)

let run_short scenario seed =
  Service.run ~seed ~scenario:(Scenario.with_duration scenario ~seconds:3.0) ()

let test_service_deterministic () =
  (* flash-crowd is the acceptance scenario; rotation-storm exercises the
     most paths (rotation, retries, flaky channel, quarantine).  Both
     must give byte-identical JSON for identical seeds. *)
  let fa = run_short Scenario.flash_crowd 13L in
  let fb = run_short Scenario.flash_crowd 13L in
  check Alcotest.string "flash-crowd byte-identical JSON"
    (Eric_telemetry.Json.to_string (Slo.to_json fa))
    (Eric_telemetry.Json.to_string (Slo.to_json fb));
  let a = run_short Scenario.rotation_storm 13L in
  let b = run_short Scenario.rotation_storm 13L in
  check Alcotest.string "rotation-storm byte-identical JSON"
    (Eric_telemetry.Json.to_string (Slo.to_json a))
    (Eric_telemetry.Json.to_string (Slo.to_json b));
  let c = run_short Scenario.rotation_storm 14L in
  check Alcotest.bool "different seed differs" false
    (Eric_telemetry.Json.to_string (Slo.to_json a)
    = Eric_telemetry.Json.to_string (Slo.to_json c))

let test_service_accounting () =
  let r = run_short Scenario.flash_crowd 21L in
  check Alcotest.int "every request accounted" r.Slo.requests
    (r.Slo.served + r.Slo.refused + r.Slo.quarantined);
  check Alcotest.bool "served some" true (r.Slo.served > 0);
  check Alcotest.bool "cache miss bounded by corpus" true (r.Slo.cache_misses <= 10);
  check Alcotest.bool "hit rate high under zipf" true (r.Slo.cache_hit_rate > 0.9);
  check Alcotest.bool "latency quantiles ordered" true
    (r.Slo.latency.Slo.p50_ms <= r.Slo.latency.Slo.p99_ms)

let test_service_backpressure_sheds () =
  (* scale steady far past the 2-server capacity: the bounded queue must
     shed rather than grow without bound, and every shed is a refusal *)
  let scenario =
    Scenario.with_rate_scale (Scenario.with_duration Scenario.steady ~seconds:3.0)
      ~factor:20.0
  in
  let r = Service.run ~seed:2L ~scenario () in
  check Alcotest.bool "refusals happened" true (r.Slo.refused > 0);
  check Alcotest.bool "queue peak at capacity" true
    (r.Slo.queue_peak = Scenario.steady.Scenario.queue_capacity);
  check Alcotest.int "accounting still exact" r.Slo.requests
    (r.Slo.served + r.Slo.refused + r.Slo.quarantined);
  check Alcotest.bool "refusal budget blown" true (not (Slo.passed r))

let test_service_rotation_storm_rotates () =
  let r = run_short Scenario.rotation_storm 31L in
  check Alcotest.bool "rotations happened" true (r.Slo.rotations > 0);
  check Alcotest.bool "retries happened over noisy channel" true (r.Slo.retried > 0)

let test_service_soft_error_storm () =
  (* the recovery-path acceptance at test scale: upsets fire, the guard
     (or a machine trap) detects every one, re-delivery recovers devices,
     and nothing completes on corrupted memory *)
  let r = run_short Scenario.soft_error_storm 7L in
  check Alcotest.bool "faults were injected" true (r.Slo.faults_injected > 0);
  check Alcotest.int "every fault detected" r.Slo.faults_injected r.Slo.faults_detected;
  check Alcotest.int "nothing ran corrupted memory undetected" 0 r.Slo.faults_undetected;
  check Alcotest.bool "re-delivery recovered devices" true (r.Slo.fault_recovered > 0);
  check Alcotest.int "accounting still exact" r.Slo.requests
    (r.Slo.served + r.Slo.refused + r.Slo.quarantined);
  (* determinism holds with the fault injector in the loop *)
  let r' = run_short Scenario.soft_error_storm 7L in
  check Alcotest.string "soft-error-storm byte-identical JSON"
    (Eric_telemetry.Json.to_string (Slo.to_json r))
    (Eric_telemetry.Json.to_string (Slo.to_json r'));
  (* the integrity block reaches the JSON report *)
  match Eric_telemetry.Json.of_string (Eric_telemetry.Json.to_string (Slo.to_json r)) with
  | Error e -> Alcotest.fail e
  | Ok json -> (
    match Eric_telemetry.Json.member "integrity" json with
    | None -> Alcotest.fail "SLO JSON lacks the integrity block"
    | Some block ->
      let field name =
        match Option.bind (Eric_telemetry.Json.member name block) Eric_telemetry.Json.to_float with
        | Some v -> int_of_float v
        | None -> Alcotest.failf "integrity block lacks %s" name
      in
      check Alcotest.int "JSON faults_injected" r.Slo.faults_injected
        (field "faults_injected");
      check Alcotest.int "JSON faults_undetected" 0 (field "faults_undetected"))

let test_service_clean_scenarios_report_no_faults () =
  let r = run_short Scenario.steady 5L in
  check Alcotest.int "no faults injected" 0 r.Slo.faults_injected;
  check Alcotest.int "none detected" 0 r.Slo.faults_detected;
  check Alcotest.int "none recovered" 0 r.Slo.fault_recovered

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [ ( "sim-clock",
        [ Alcotest.test_case "advance and advance_to" `Quick test_clock_advances;
          Alcotest.test_case "rejects negative" `Quick test_clock_rejects_negative;
          Alcotest.test_case "unit conversions" `Quick test_clock_unit_conversions;
          Alcotest.test_case "shared with shipper backoff" `Quick
            test_clock_shared_with_shipper ] );
      ( "zipf",
        [ Alcotest.test_case "pmf sums to one" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "exponent zero is uniform" `Quick test_zipf_exponent_zero_uniform;
          Alcotest.test_case "sampling deterministic" `Quick test_zipf_sample_deterministic;
          Alcotest.test_case "rejects bad args" `Quick test_zipf_rejects_bad_args;
          zipf_skew_matches_pmf ] );
      ( "admit",
        [ Alcotest.test_case "zero capacity refuses immediately" `Quick
            test_admit_zero_capacity_refuses;
          Alcotest.test_case "full queue sheds exactly once" `Quick
            test_admit_full_queue_sheds_exactly_once;
          Alcotest.test_case "fifo drain order" `Quick test_admit_fifo_drain_order;
          Alcotest.test_case "rejects negative capacity" `Quick
            test_admit_rejects_negative_capacity ] );
      ( "traffic",
        [ Alcotest.test_case "deterministic per seed" `Quick test_traffic_deterministic;
          Alcotest.test_case "stream shape" `Quick test_traffic_shape;
          Alcotest.test_case "rotate fraction zero" `Quick test_traffic_rotate_fraction_zero;
          Alcotest.test_case "rejects bad args" `Quick test_traffic_rejects_bad_args ] );
      ( "scenario",
        [ Alcotest.test_case "lookup and names" `Quick test_scenario_lookup;
          Alcotest.test_case "duration and rate overrides" `Quick test_scenario_overrides ] );
      ( "service",
        [ Alcotest.test_case "flash-crowd seed reproduces identical SLO" `Quick
            test_service_deterministic;
          Alcotest.test_case "request accounting exact" `Quick test_service_accounting;
          Alcotest.test_case "backpressure sheds at capacity" `Quick
            test_service_backpressure_sheds;
          Alcotest.test_case "rotation storm rotates and retries" `Quick
            test_service_rotation_storm_rotates;
          Alcotest.test_case "soft-error storm detects and recovers" `Quick
            test_service_soft_error_storm;
          Alcotest.test_case "clean scenarios report no faults" `Quick
            test_service_clean_scenarios_report_no_faults ] ) ]
