// A slightly larger lint/CI smoke input: exercises globals, arrays,
// loops, helper calls and recursion so the IR and machine-code
// verifiers see a non-trivial CFG and call graph.

int table[64];

int mix(int x) {
  x = x ^ (x >> 7);
  x = (x * 31) & 0xffffffff;
  return x ^ (x << 3);
}

int fib(int n) {
  if (n < 2) {
    return n;
  }
  return fib(n - 1) + fib(n - 2);
}

int main() {
  int sum = 0;
  for (int i = 0; i < 64; i = i + 1) {
    table[i] = mix(i * 2654435761);
  }
  for (int i = 0; i < 64; i = i + 1) {
    sum = (sum + table[i]) & 0xffffffff;
  }
  sum = sum ^ fib(12);
  print_str("checksum: ");
  println_int(sum);
  return 0;
}
