// Smallest end-to-end MiniC program: builds, packages, and runs under
// the simulator; also the smoke input for `eric_cli lint` in CI.

char banner[16] = "hello, eric";

int main() {
  println_str(banner);
  return 0;
}
