(* Toolchain tour: every stage of the compiler/assembler pipeline on one
   small program, ending with a self-timing run that reads the hardware
   counters ERIC's dynamic-analysis threat model talks about.

     dune exec examples/toolchain_tour.exe *)

let source =
  {|
int hot_loop(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) { acc += i * i; }
  return acc;
}

int main() {
  int c0 = __cycles();
  int r = hot_loop(500);
  int c1 = __cycles();
  print_str("result: ");
  println_int(r);
  print_str("cycles in hot_loop (rdcycle): ");
  println_int(c1 - c0);
  return 0;
}
|}

let () =
  (* every stage below is instrumented; collect spans and counters so the
     tour can end with the telemetry table *)
  Eric_telemetry.Control.enable ();

  (* 1. MiniC -> IR (what the optimiser sees) *)
  let ir =
    match Eric_cc.Driver.compile_to_ir source with Ok ir -> ir | Error e -> failwith e
  in
  let hot = List.find (fun f -> f.Eric_cc.Ir.f_name = "hot_loop") ir.Eric_cc.Ir.p_funcs in
  print_endline "=== IR of hot_loop after optimisation ===";
  Format.printf "%a@." Eric_cc.Ir.pp_func hot;

  (* 2. IR -> assembly text (the compiler's -S mode) *)
  let asm_text =
    match Eric_cc.Driver.compile_to_assembly source with Ok t -> t | Error e -> failwith e
  in
  print_endline "=== assembly (first 18 lines) ===";
  String.split_on_char '\n' asm_text
  |> List.filteri (fun i _ -> i < 18)
  |> List.iter print_endline;

  (* 3. assembly text -> image, via the textual assembler *)
  let image =
    match Eric_rv.Asm.assemble asm_text with Ok img -> img | Error e -> failwith e
  in
  Format.printf "=== assembled: %a ===@." Eric_rv.Program.pp_summary image;

  (* 4. disassemble it back, symbolised *)
  print_endline "=== disassembly of hot_loop ===";
  let lines = Eric_rv.Disasm.disassemble_stream (Eric_rv.Program.text_bytes image) in
  let hot_off = List.assoc "hot_loop" image.Eric_rv.Program.symbols in
  let listing =
    Format.asprintf "%a"
      (Eric_rv.Disasm.pp_listing_symbols ~symbols:image.Eric_rv.Program.symbols)
      (List.filter
         (fun (l : Eric_rv.Disasm.line) -> l.offset >= hot_off && l.offset < hot_off + 40)
         lines)
  in
  print_string listing;

  (* 5. run it on the SoC — the program times itself with rdcycle *)
  print_endline "=== execution ===";
  let r = Eric_sim.Soc.run_program image in
  print_string r.Eric_sim.Soc.output;
  Printf.printf "(SoC totals: %Ld instructions, %Ld cycles)\n" r.Eric_sim.Soc.instructions
    r.Eric_sim.Soc.exec_cycles;

  (* 6. obfuscation: the same build with --obfuscate=flatten,opaque — a
     dispatcher replaces the legible control-flow topology and opaque
     predicates feed junk decoy edges.  Output is unchanged; what changes
     is what a disassembling attacker gets back, graded Jaccard-style
     against the decoy-subtracted ground truth (a plain image scores
     1.0). *)
  print_endline "\n=== obfuscation (--obfuscate=flatten,opaque) ===";
  let cfg =
    { Eric_obf.Obf.passes = [ Eric_obf.Obf.Opaque; Eric_obf.Obf.Flatten ];
      seed = Eric_obf.Obf.default_seed }
  in
  let transform, annot = Eric_obf.Obf.hook cfg in
  let obf_image =
    Eric_cc.Driver.compile_exn
      ~options:{ Eric_cc.Driver.default_options with Eric_cc.Driver.transform = Some transform }
      source
  in
  let ro = Eric_sim.Soc.run_program obf_image in
  (* the program times itself with rdcycle, so only the result line is
     comparable — the cycle line legitimately grows with the dispatcher *)
  let first_line s =
    match String.index_opt s '\n' with Some i -> String.sub s 0 i | None -> s
  in
  Printf.printf "result unchanged under obfuscation: %b\n"
    (first_line ro.Eric_sim.Soc.output = first_line r.Eric_sim.Soc.output);
  let s = Eric_obf.Obf.grade ~annot ~attacker:Eric_lint.Leakage.Recursive obf_image in
  Printf.printf
    "text %d B -> %d B; recursive attacker structure score %.2f (plain image: 1.00)\n"
    (Eric_rv.Program.text_size image)
    (Eric_rv.Program.text_size obf_image)
    s.Eric_lint.Leakage.structure_score;

  (* 7. fleet deployment: enroll ten devices and push the program to all
     of them over a lossy channel — compile/sign/layout run once, each
     device gets its own keystream, retries recover the lost packets *)
  print_endline "\n=== fleet campaign (10 devices, lossy channel) ===";
  let registry = Eric_fleet.Registry.create () in
  for id = 1 to 10 do
    match Eric_fleet.Registry.enroll registry (Int64.of_int id) with
    | Ok _ -> ()
    | Error e -> failwith e
  done;
  let cache = Eric_fleet.Artifact_cache.create () in
  let config =
    { Eric_fleet.Campaign.default_config with
      Eric_fleet.Campaign.channel = Eric_fleet.Channel.flaky ~probability:0.3 ~seed:42L () }
  in
  (match Eric_fleet.Campaign.deploy ~config ~cache ~registry source with
  | Error e -> failwith e
  | Ok report ->
    Format.printf "%a@." Eric_fleet.Campaign.pp_report report;
    (* a second wave — say, a staged rollout — reuses the cached artifact *)
    (match Eric_fleet.Campaign.deploy ~config ~cache ~registry source with
    | Error e -> failwith e
    | Ok wave2 ->
      Format.printf "second wave: cache %s, %d delivered@."
        (Eric_fleet.Artifact_cache.outcome_label wave2.Eric_fleet.Campaign.cache)
        wave2.Eric_fleet.Campaign.delivered));

  (* 8. a short differential-fuzz burst: generated MiniC programs run
     through the IR interpreter, the plain compiled image and the full
     encrypt-ship-decrypt-validate path; any disagreement would be a
     toolchain bug, shrunk to a minimal reproducer *)
  print_endline "\n=== differential fuzz (60 generated programs) ===";
  let outcome =
    Eric_verif.Fuzz.run
      ~config:{ Eric_verif.Fuzz.default_config with Eric_verif.Fuzz.count = 60; seed = 0x70FFL }
      ()
  in
  Format.printf "%a@." Eric_verif.Fuzz.pp_stats outcome.Eric_verif.Fuzz.stats;
  List.iter
    (fun f -> Format.printf "%a@." Eric_verif.Fuzz.pp_failure f)
    outcome.Eric_verif.Fuzz.failures;

  (* 9. the update service under load: 30 simulated seconds of flash-crowd
     traffic — Zipf-popular workloads, a 25x arrival burst, a bounded
     admission queue shedding what two servers cannot absorb — and the
     SLO report the scenario's budgets grade it against.  Deterministic:
     the same seed reprints this block byte-for-byte. *)
  print_endline "\n=== serve: flash-crowd scenario (30 simulated seconds) ===";
  let slo = Eric_serve.Service.run ~seed:7L ~scenario:Eric_serve.Scenario.flash_crowd () in
  Format.printf "%a@." Eric_serve.Slo.pp slo;

  (* 10. what the instrumentation saw: per-stage spans and SoC gauges *)
  print_endline "\n=== telemetry ===";
  Format.printf "%a@." Eric_telemetry.Export.pp_table (Eric_telemetry.Snapshot.capture ())
