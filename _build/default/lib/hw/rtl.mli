(** Structural FPGA-resource cost model.

    Stands in for Vivado synthesis in the Table-II experiment: hardware is
    described as a tree of primitive blocks with LUT/flip-flop costs, and
    area reports sum the tree.  Primitive costs reflect 6-input-LUT Xilinx
    7-series fabric (the paper's ZedBoard): a register bit is one FF; an
    adder/comparator bit is about one LUT (carry chains); a 2:1 mux bit or
    2-input gate packs two to a LUT. *)

type t

val leaf : string -> luts:int -> ffs:int -> t
(** An opaque block with explicit costs (used for externally calibrated
    macros, e.g. the Rocket core). *)

val block : string -> t list -> t
(** A named composition; its cost is the sum of its children. *)

val register : string -> bits:int -> t
(** [bits] flip-flops. *)

val adder : string -> bits:int -> t
(** Ripple/carry-chain adder: ~1 LUT per bit. *)

val xor_gates : string -> bits:int -> t
(** 2-input XOR array: 2 bits per LUT. *)

val mux2 : string -> bits:int -> t
(** 2:1 mux: 2 bits per LUT. *)

val comparator : string -> bits:int -> t
(** Equality comparator: ~1 LUT per 4 bits plus a reduction tree. *)

val counter : string -> bits:int -> t
(** Register plus increment logic. *)

val fsm : string -> states:int -> t
(** Small one-hot controller. *)

val name : t -> string
val luts : t -> int
val ffs : t -> int

val pp : Format.formatter -> t -> unit
(** Indented tree with per-node totals. *)
