lib/hw/area.ml: Format List Rtl
