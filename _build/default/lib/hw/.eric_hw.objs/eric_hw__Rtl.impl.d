lib/hw/rtl.ml: Format List
