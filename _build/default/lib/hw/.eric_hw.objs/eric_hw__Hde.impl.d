lib/hw/hde.ml: Format Int64
