lib/hw/rtl.mli: Format
