lib/hw/hde.mli: Format
