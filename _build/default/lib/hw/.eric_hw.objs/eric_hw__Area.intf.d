lib/hw/area.mli: Format Rtl
