(** The Table-II experiment: FPGA area of the Rocket Chip baseline versus
    Rocket Chip + HDE.

    The Rocket baseline is an externally calibrated macro (its subsystem
    split follows published Rocket/ZedBoard utilisation reports and sums to
    the paper's baseline: 33894 LUTs, 19093 FFs at 25 MHz).  The HDE units
    are composed from {!Rtl} primitives — compact SHA-256 core, 32-bit XOR
    decrypt datapath, key management, 32x8 arbiter-switch PUF array,
    streaming validation compare. *)

val rocket_baseline : Rtl.t
val hde : Rtl.t
val rocket_with_hde : Rtl.t

type row = { resource : string; baseline : int; with_hde : int; change_pct : float }

val table2 : unit -> row list
(** Rows: Total Slice LUTs, Total Flip-Flops, Frequency (MHz, unchanged). *)

val pp_table2 : Format.formatter -> unit -> unit
