type t = Leaf of string * int * int | Block of string * t list

let leaf name ~luts ~ffs =
  if luts < 0 || ffs < 0 then invalid_arg "Rtl.leaf: negative cost";
  Leaf (name, luts, ffs)

let block name children = Block (name, children)

let register name ~bits = leaf name ~luts:0 ~ffs:bits
let adder name ~bits = leaf name ~luts:bits ~ffs:0
let xor_gates name ~bits = leaf name ~luts:((bits + 1) / 2) ~ffs:0
let mux2 name ~bits = leaf name ~luts:((bits + 1) / 2) ~ffs:0
let comparator name ~bits = leaf name ~luts:((bits + 3) / 4 + 2) ~ffs:0

let counter name ~bits = block name [ register (name ^ ".reg") ~bits; adder (name ^ ".inc") ~bits ]

let fsm name ~states =
  block name [ register (name ^ ".state") ~bits:states; leaf (name ^ ".next") ~luts:(2 * states) ~ffs:0 ]

let name = function Leaf (n, _, _) | Block (n, _) -> n

let rec luts = function
  | Leaf (_, l, _) -> l
  | Block (_, children) -> List.fold_left (fun acc c -> acc + luts c) 0 children

let rec ffs = function
  | Leaf (_, _, f) -> f
  | Block (_, children) -> List.fold_left (fun acc c -> acc + ffs c) 0 children

let pp fmt t =
  let rec go indent node =
    let padded = indent ^ name node in
    Format.fprintf fmt "%-44s %6d LUT %6d FF@." padded (luts node) (ffs node);
    match node with
    | Leaf _ -> ()
    | Block (_, children) -> List.iter (go (indent ^ "  ")) children
  in
  go "" t
