(* Rocket subsystem split: proportions follow public Rocket-on-Zynq
   utilisation reports; the totals are the paper's Table II baseline. *)
let rocket_baseline =
  Rtl.block "rocket-chip"
    [ Rtl.leaf "rocket-core (6-stage in-order, RV64)" ~luts:14000 ~ffs:7000;
      Rtl.leaf "l1-icache (16KiB 4-way, tags+ctrl)" ~luts:3000 ~ffs:2000;
      Rtl.leaf "l1-dcache (16KiB 4-way, tags+ctrl)" ~luts:4500 ~ffs:2500;
      Rtl.leaf "mmu/ptw" ~luts:2000 ~ffs:1000;
      Rtl.leaf "fpu (RV64GC F/D)" ~luts:7000 ~ffs:4500;
      Rtl.leaf "uncore (tilelink, debug, periph)" ~luts:3394 ~ffs:2093 ]

(* Compact iterative SHA-256: one round per cycle, message schedule in
   distributed RAM, digest + working state in FFs. *)
let sha256_core name =
  Rtl.block name
    [ Rtl.register (name ^ ".working-state") ~bits:256;
      Rtl.register (name ^ ".block-buffer") ~bits:128;
      (* streaming quarter-block staging; schedule in LUTRAM *)
      Rtl.leaf (name ^ ".schedule-lutram") ~luts:128 ~ffs:0;
      Rtl.adder (name ^ ".round-adders") ~bits:160 (* five 32-bit carry chains *);
      Rtl.leaf (name ^ ".sigma-logic") ~luts:300 ~ffs:64;
      Rtl.counter (name ^ ".round-counter") ~bits:7;
      Rtl.fsm (name ^ ".ctrl") ~states:5 ]

let decryption_unit =
  Rtl.block "decryption-unit"
    [ Rtl.xor_gates "xor-datapath" ~bits:32;
      Rtl.register "word-buffer" ~bits:32;
      Rtl.counter "offset-counter" ~bits:8;
      Rtl.fsm "decrypt-ctrl" ~states:6 ]

let key_management_unit =
  Rtl.block "key-management-unit"
    [ Rtl.register "puf-key" ~bits:32;
      Rtl.register "derived-key" ~bits:48;
      (* staged out of the derivation core *)
      Rtl.leaf "derivation-mux" ~luts:60 ~ffs:0;
      Rtl.fsm "kmu-ctrl" ~states:6 ]

let puf_key_generator =
  Rtl.block "puf-key-generator"
    [ (* 32 chains x 8 switch stages; a stage is two 2:1 muxes *)
      Rtl.leaf "arbiter-array (32x8 stages)" ~luts:64 ~ffs:0;
      Rtl.register "arbiters+response" ~bits:34;
      Rtl.counter "vote-counters" ~bits:20;
      Rtl.fsm "challenge-sequencer" ~states:4 ]

let validation_unit =
  Rtl.block "validation-unit"
    [ Rtl.comparator "digest-compare (32b/beat)" ~bits:32;
      Rtl.register "expected-digest-window" ~bits:32;
      Rtl.counter "beat-counter" ~bits:4;
      Rtl.fsm "validate-ctrl" ~states:4 ]

(* The HDE hangs off the SoC interconnect; its slave port needs address
   decode, a data register slice and handshake logic. *)
let bus_interface =
  Rtl.block "bus-interface"
    [ Rtl.register "data-slice" ~bits:64;
      Rtl.leaf "addr-decode+handshake" ~luts:80 ~ffs:0;
      Rtl.fsm "bus-ctrl" ~states:2 ]

let hde =
  Rtl.block "hardware-decryption-engine"
    [ sha256_core "signature-generator"; decryption_unit; key_management_unit;
      puf_key_generator; validation_unit; bus_interface ]

let rocket_with_hde = Rtl.block "rocket-chip+hde" [ rocket_baseline; hde ]

type row = { resource : string; baseline : int; with_hde : int; change_pct : float }

let table2 () =
  let pct base v = 100.0 *. float_of_int (v - base) /. float_of_int base in
  let lut_b = Rtl.luts rocket_baseline and lut_h = Rtl.luts rocket_with_hde in
  let ff_b = Rtl.ffs rocket_baseline and ff_h = Rtl.ffs rocket_with_hde in
  [ { resource = "Total Slice LUTs"; baseline = lut_b; with_hde = lut_h; change_pct = pct lut_b lut_h };
    { resource = "Total Flip-Flops"; baseline = ff_b; with_hde = ff_h; change_pct = pct ff_b ff_h };
    { resource = "Frequency(MHz)"; baseline = 25; with_hde = 25; change_pct = 0.0 } ]

let pp_table2 fmt () =
  Format.fprintf fmt "%-20s %12s %18s %10s@." "" "Rocket Chip" "Rocket Chip + HDE" "Change";
  List.iter
    (fun r ->
      if r.resource = "Frequency(MHz)" then
        Format.fprintf fmt "%-20s %12d %18d %10s@." r.resource r.baseline r.with_hde "-"
      else
        Format.fprintf fmt "%-20s %12d %18d %+9.2f%%@." r.resource r.baseline r.with_hde
          r.change_pct)
    (table2 ())
