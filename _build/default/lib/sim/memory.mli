(** Flat little-endian byte-addressable main memory.

    All accesses are bounds-checked; an out-of-range access raises
    {!Trap}, which the CPU surfaces as an execution fault (the moral
    equivalent of a bus error on the real SoC). *)

type t

exception Trap of string

val create : size:int -> t
val size : t -> int

val read_u8 : t -> int -> int
val read_u16 : t -> int -> int
val read_u32 : t -> int -> int32
val read_u64 : t -> int -> int64

val write_u8 : t -> int -> int -> unit
val write_u16 : t -> int -> int -> unit
val write_u32 : t -> int -> int32 -> unit
val write_u64 : t -> int -> int64 -> unit

val blit_bytes : t -> addr:int -> bytes -> unit
(** Bulk copy into memory (the loader's DMA path). *)

val read_bytes : t -> addr:int -> len:int -> bytes

val fill : t -> addr:int -> len:int -> char -> unit
