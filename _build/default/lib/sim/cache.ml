type config = { size_bytes : int; ways : int; line_bytes : int }

let table1_config = { size_bytes = 16 * 1024; ways = 4; line_bytes = 64 }

type stats = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

type way_state = { mutable tag : int; mutable valid : bool; mutable dirty : bool; mutable age : int }

type t = {
  cfg : config;
  sets : way_state array array;
  stats_ : stats;
  mutable clock : int; (* monotonically increasing LRU timestamp *)
}

let is_power_of_two v = v > 0 && v land (v - 1) = 0

let create cfg =
  if not (is_power_of_two cfg.line_bytes) then invalid_arg "Cache.create: line size not a power of two";
  if cfg.ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  let lines = cfg.size_bytes / cfg.line_bytes in
  if lines mod cfg.ways <> 0 then invalid_arg "Cache.create: geometry does not divide";
  let nsets = lines / cfg.ways in
  if not (is_power_of_two nsets) then invalid_arg "Cache.create: set count not a power of two";
  {
    cfg;
    sets =
      Array.init nsets (fun _ ->
          Array.init cfg.ways (fun _ -> { tag = 0; valid = false; dirty = false; age = 0 }));
    stats_ = { accesses = 0; hits = 0; misses = 0; writebacks = 0 };
    clock = 0;
  }

let config t = t.cfg
let stats t = t.stats_

type outcome = Hit | Miss of { writeback : bool }

let access t ~addr ~write =
  let s = t.stats_ in
  s.accesses <- s.accesses + 1;
  t.clock <- t.clock + 1;
  let line = addr / t.cfg.line_bytes in
  let nsets = Array.length t.sets in
  let set = t.sets.(line land (nsets - 1)) in
  let tag = line / nsets in
  let found = ref None in
  Array.iter (fun w -> if w.valid && w.tag = tag then found := Some w) set;
  match !found with
  | Some w ->
    s.hits <- s.hits + 1;
    w.age <- t.clock;
    if write then w.dirty <- true;
    Hit
  | None ->
    s.misses <- s.misses + 1;
    (* Evict an invalid way if one exists, otherwise the least recently
       used one. *)
    let victim =
      match Array.to_list set |> List.find_opt (fun w -> not w.valid) with
      | Some w -> w
      | None -> Array.fold_left (fun best w -> if w.age < best.age then w else best) set.(0) set
    in
    let writeback = victim.valid && victim.dirty in
    if writeback then s.writebacks <- s.writebacks + 1;
    victim.tag <- tag;
    victim.valid <- true;
    victim.dirty <- write;
    victim.age <- t.clock;
    Miss { writeback }

let flush t =
  Array.iter
    (Array.iter (fun w ->
         w.valid <- false;
         w.dirty <- false;
         w.age <- 0))
    t.sets

let hit_rate t =
  if t.stats_.accesses = 0 then 0.0 else float_of_int t.stats_.hits /. float_of_int t.stats_.accesses
