(** Set-associative cache timing model with true-LRU replacement and
    write-back/write-allocate policy.

    Only timing is modelled (data lives in {!Memory}); the model tracks
    tags, valid and dirty bits per way, which is all the Fig-7 execution
    experiment needs.  Defaults match the paper's Table I: 16 KiB, 4-way. *)

type config = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
}

val table1_config : config
(** 16 KiB, 4-way, 64-byte lines — both L1I and L1D in the paper. *)

type stats = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;  (** dirty evictions *)
}

type t

val create : config -> t
val config : t -> config
val stats : t -> stats

type outcome = Hit | Miss of { writeback : bool }

val access : t -> addr:int -> write:bool -> outcome
(** Look up the line containing [addr]; on miss, allocate it, evicting the
    LRU way (reporting whether the victim was dirty).  Writes mark the line
    dirty. *)

val flush : t -> unit
(** Invalidate every line (keeps cumulative stats). *)

val hit_rate : t -> float
