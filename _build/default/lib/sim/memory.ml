type t = { data : Bytes.t }

exception Trap of string

let create ~size =
  if size <= 0 then invalid_arg "Memory.create: size must be positive";
  { data = Bytes.make size '\000' }

let size t = Bytes.length t.data

let check t addr len =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.data then
    raise (Trap (Printf.sprintf "memory access out of bounds: 0x%x (+%d)" addr len))

let read_u8 t addr =
  check t addr 1;
  Char.code (Bytes.get t.data addr)

let read_u16 t addr =
  check t addr 2;
  Eric_util.Bytesx.get_u16 t.data addr

let read_u32 t addr =
  check t addr 4;
  Eric_util.Bytesx.get_u32 t.data addr

let read_u64 t addr =
  check t addr 8;
  Eric_util.Bytesx.get_u64 t.data addr

let write_u8 t addr v =
  check t addr 1;
  Bytes.set t.data addr (Char.chr (v land 0xFF))

let write_u16 t addr v =
  check t addr 2;
  Eric_util.Bytesx.set_u16 t.data addr v

let write_u32 t addr v =
  check t addr 4;
  Eric_util.Bytesx.set_u32 t.data addr v

let write_u64 t addr v =
  check t addr 8;
  Eric_util.Bytesx.set_u64 t.data addr v

let blit_bytes t ~addr b =
  check t addr (Bytes.length b);
  Bytes.blit b 0 t.data addr (Bytes.length b)

let read_bytes t ~addr ~len =
  check t addr len;
  Bytes.sub t.data addr len

let fill t ~addr ~len c =
  check t addr len;
  Bytes.fill t.data addr len c
