lib/sim/cpu.mli: Cache Eric_rv Memory
