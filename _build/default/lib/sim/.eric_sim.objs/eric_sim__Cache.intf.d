lib/sim/cache.mli:
