lib/sim/memory.ml: Bytes Char Eric_util Printf
