lib/sim/memory.mli:
