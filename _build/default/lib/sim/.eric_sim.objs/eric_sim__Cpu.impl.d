lib/sim/cpu.ml: Array Buffer Cache Decode Eric_rv Hashtbl Inst Int32 Int64 List Memory Printf Reg Rvc
