lib/sim/soc.mli: Cpu Eric_rv Memory
