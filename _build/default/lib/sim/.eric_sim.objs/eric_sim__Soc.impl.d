lib/sim/soc.ml: Bytes Cache Cpu Eric_rv Int64 Memory Program
