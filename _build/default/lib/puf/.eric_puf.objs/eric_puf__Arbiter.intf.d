lib/puf/arbiter.mli: Eric_util
