lib/puf/metrics.ml: Arbiter Array Bytes Device Eric_util Format Int64
