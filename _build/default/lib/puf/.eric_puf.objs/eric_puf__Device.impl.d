lib/puf/device.ml: Arbiter Array Eric_util Float Int64
