lib/puf/metrics.mli: Format
