lib/puf/device.mli: Arbiter Eric_util
