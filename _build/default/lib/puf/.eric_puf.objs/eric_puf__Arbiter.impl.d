lib/puf/arbiter.ml: Array Eric_util
