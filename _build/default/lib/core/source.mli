(** The software-source side of ERIC: compile, sign, encrypt, package —
    steps 2-3 of the paper's workflow.

    The source never sees the target's PUF key, only a PUF-based key
    derived by the device's Key Management Unit and delivered during
    provisioning (the paper's "handshake is already done" assumption,
    realised by {!Protocol.provision}). *)

type build = {
  image : Eric_rv.Program.t;  (** the plaintext image (stays at the source) *)
  package : Package.t;  (** what ships *)
  stats : Encrypt.stats;
  plain_size : int;  (** plain binary bytes — Fig 5's baseline *)
  package_size : int;  (** encrypted package bytes — Fig 5's numerator *)
}

val build :
  ?options:Eric_cc.Driver.options ->
  mode:Config.mode ->
  key:bytes ->
  string ->
  (build, string) result
(** Compile MiniC [source] and package it for the holder of [key]. *)

val package_image :
  mode:Config.mode -> key:bytes -> Eric_rv.Program.t -> build
(** Packaging only, for a pre-compiled image. *)

val build_multi :
  ?options:Eric_cc.Driver.options ->
  mode:Config.mode ->
  keys:(string * bytes) list ->
  string ->
  ((string * build) list, string) result
(** One compile, many targets — the paper's "compiling from a single
    software source for multiple target hardware" (each device gets its own
    encryption of the same image). *)
