type build = {
  image : Eric_rv.Program.t;
  package : Package.t;
  stats : Encrypt.stats;
  plain_size : int;
  package_size : int;
}

let package_image ~mode ~key image =
  let package, stats = Encrypt.encrypt ~key ~mode image in
  {
    image;
    package;
    stats;
    plain_size = Bytes.length (Eric_rv.Program.to_binary image);
    package_size = Package.size package;
  }

let build ?options ~mode ~key source =
  Result.map (package_image ~mode ~key) (Eric_cc.Driver.compile ?options source)

let build_multi ?options ~mode ~keys source =
  Result.map
    (fun image -> List.map (fun (name, key) -> (name, package_image ~mode ~key image)) keys)
    (Eric_cc.Driver.compile ?options source)
