(** Key Management Unit: derives working "PUF-based keys" from the raw PUF
    key, the abstraction layer the paper insists on — the PUF key itself is
    immutable silicon and must never be handed to software sources, while
    derived keys can be rotated (epochs) and scoped (labels), and the same
    derivation runs inside the HDE and at the software source.

    Derivation is HMAC-SHA-256 with a context string, so distinct contexts
    yield independent keys and the software source learns nothing about
    the PUF key from the derived key it is given. *)

type context = {
  epoch : int;  (** rotating this revokes every previously issued key *)
  label : string;  (** deployment scope, e.g. "firmware-v2" *)
}

val default_context : context

val derive : puf_key:bytes -> context -> bytes
(** 32-byte PUF-based key. *)

val device_key : ?context:context -> Eric_puf.Device.t -> bytes
(** Convenience: read the device's PUF key (majority-voted) and derive. *)

val pp_context : Format.formatter -> context -> unit
