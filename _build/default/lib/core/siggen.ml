let signature_size = Eric_crypto.Sha256.digest_size

type ctx = Eric_crypto.Sha256.ctx

let init () = Eric_crypto.Sha256.init ()
let absorb = Eric_crypto.Sha256.feed
let finish = Eric_crypto.Sha256.finalize

let signature ~authenticated =
  let ctx = init () in
  List.iter (absorb ctx) authenticated;
  finish ctx
