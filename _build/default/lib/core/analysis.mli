(** Attack-model evaluation: what do the paper's two adversaries actually
    recover from an ERIC package?

    Static analysis: run a real linear-sweep disassembler over the text
    bytes and measure how much structure survives — fraction of parcels
    that decode at all, Shannon entropy of the recovered opcode histogram,
    and recovered call-graph edges.  Plaintext RISC-V text decodes almost
    completely with a heavily skewed opcode distribution and a recoverable
    call graph; a keystream-encrypted section approaches random bytes.

    Dynamic analysis: an attacker running the package on hardware they
    control (a different device) gets a Validation-Unit rejection, which is
    exercised in {!Protocol}; the helper here quantifies key sensitivity
    (how many text bits change when one key bit flips). *)

type static_report = {
  parcels_scanned : int;
  valid_fraction : float;  (** parcels that decode as instructions *)
  opcode_entropy_bits : float;  (** Shannon entropy over decoded mnemonics *)
  distinct_mnemonics : int;
  call_edges : int;  (** [jal ra, _] sites recovered *)
  branch_sites : int;
  prologue_candidates : int;
      (** function-boundary recovery: [addi sp, sp, -N] sites, the idiom
          attackers key on to carve functions out of a binary *)
  printable_runs : int;
      (** what `strings`-style tooling finds: runs of >= 4 printable ASCII
          bytes in the section *)
}

val static_analysis : bytes -> static_report
(** Linear-sweep over a text section. *)

val pp_static_report : Format.formatter -> static_report -> unit

val diffusion : key:bytes -> Package.t -> float
(** Fraction of text bits that change when the last key bit is flipped —
    1 minus this is what a single-bit key guess reveals; ~0.5 means the
    keystream behaves like a random function of the key. *)

val byte_entropy : bytes -> float
(** Shannon entropy of the byte histogram, bits/byte (8.0 = random). *)
