type conditions = {
  hour_slot : int option;
  temperature_band : int option;
  frequency_mhz : int option;
}

let unconstrained = { hour_slot = None; temperature_band = None; frequency_mhz = None }

let pp_opt fmt name = function
  | None -> Format.fprintf fmt "%s=*" name
  | Some v -> Format.fprintf fmt "%s=%d" name v

let pp_conditions fmt c =
  Format.fprintf fmt "%a %a %a" (fun f -> pp_opt f "slot") c.hour_slot (fun f -> pp_opt f "temp")
    c.temperature_band
    (fun f -> pp_opt f "mhz")
    c.frequency_mhz

type environment = { unix_hours : int; temperature_c : int; clock_mhz : int }

let window_of ~window_hours ~unix_hours =
  if window_hours <= 0 then invalid_arg "Envbind.window_of: window must be positive";
  unix_hours / window_hours

(* Floor division so negative temperatures band consistently. *)
let band t = if t >= 0 then t / 10 else ((t - 9) / 10)

let observe ~window_hours env wanted =
  {
    hour_slot =
      Option.map (fun _ -> window_of ~window_hours ~unix_hours:env.unix_hours) wanted.hour_slot;
    temperature_band = Option.map (fun _ -> band env.temperature_c) wanted.temperature_band;
    frequency_mhz = Option.map (fun _ -> env.clock_mhz) wanted.frequency_mhz;
  }

let derive ~puf_key ~context conditions =
  if conditions = unconstrained then Kmu.derive ~puf_key context
  else begin
    let part name = function None -> name ^ "=*" | Some v -> Printf.sprintf "%s=%d" name v in
    let env_string =
      String.concat "|"
        [ part "slot" conditions.hour_slot; part "temp" conditions.temperature_band;
          part "mhz" conditions.frequency_mhz ]
    in
    let base = Kmu.derive ~puf_key context in
    Eric_crypto.Hmac_sha256.mac_string ~key:base ("ERIC-ENV|" ^ env_string)
  end
