(** Signature generation (the paper's Signature Generator, both sides).

    The signature is SHA-256 over the package's authenticated content *in
    plaintext*: the header fields, the encryption map, the text section
    before encryption, and the data section.  It is computed by the
    compiler before encryption and recomputed inside the HDE from the
    decrypted stream; because it travels encrypted, it is "useless for
    those who cannot decrypt the program". *)

val signature_size : int
(** 32 bytes (SHA-256). *)

val signature : authenticated:bytes list -> bytes
(** Hash the concatenation of the authenticated sections, in order. *)

type ctx
(** Streaming form, mirroring the hardware unit absorbing decrypted words
    as they emerge from the Decryption Unit. *)

val init : unit -> ctx
val absorb : ctx -> bytes -> unit
val finish : ctx -> bytes
