lib/core/source.mli: Config Encrypt Eric_cc Eric_rv Package
