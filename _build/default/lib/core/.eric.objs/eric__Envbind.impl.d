lib/core/envbind.ml: Eric_crypto Format Kmu Option Printf String
