lib/core/analysis.ml: Bytes Char Encrypt Eric_rv Format Hashtbl List Option
