lib/core/encrypt.mli: Config Eric_rv Format Package
