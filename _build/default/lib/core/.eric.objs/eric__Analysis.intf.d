lib/core/analysis.mli: Format Package
