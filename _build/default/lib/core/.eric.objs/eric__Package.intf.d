lib/core/package.mli: Config Eric_util Format
