lib/core/config.mli: Eric_rv Eric_util Format
