lib/core/encrypt.ml: Array Bytes Char Config Eric_crypto Eric_rv Eric_util Format Int32 Package Program Siggen
