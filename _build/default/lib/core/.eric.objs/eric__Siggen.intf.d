lib/core/siggen.mli:
