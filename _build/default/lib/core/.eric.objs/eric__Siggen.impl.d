lib/core/siggen.ml: Eric_crypto List
