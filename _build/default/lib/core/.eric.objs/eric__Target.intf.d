lib/core/target.mli: Encrypt Eric_hw Eric_puf Eric_rv Eric_sim Format Kmu Package
