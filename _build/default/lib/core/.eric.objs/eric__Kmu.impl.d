lib/core/kmu.ml: Eric_crypto Eric_puf Format Printf
