lib/core/package.ml: Bytes Char Config Eric_util Format Int32 Printf Result Siggen
