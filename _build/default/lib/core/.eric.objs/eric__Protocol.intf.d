lib/core/protocol.mli: Eric_crypto Eric_sim Eric_util Format Source Target
