lib/core/target.ml: Bytes Encrypt Eric_hw Eric_puf Eric_rv Eric_sim Format Kmu Package Siggen
