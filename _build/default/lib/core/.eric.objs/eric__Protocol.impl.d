lib/core/protocol.ml: Bytes Char Eric_crypto Eric_sim Eric_util Format List Package Source Target
