lib/core/envbind.mli: Format Kmu
