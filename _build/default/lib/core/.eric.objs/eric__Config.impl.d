lib/core/config.ml: Array Eric_rv Eric_util Format Int32 List Printf String
