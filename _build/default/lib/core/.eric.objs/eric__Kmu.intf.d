lib/core/kmu.mli: Eric_puf Format
