lib/core/source.ml: Bytes Encrypt Eric_cc Eric_rv List Package Result
