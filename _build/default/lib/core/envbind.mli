(** Environment-bound key derivation — the paper's suggested KMU
    configuration: "if the necessary variables in the hardware are given as
    input to the PUF-based key generation function[,] a program that can
    only be decrypted and run at a specific time range or a program that
    can only be decrypted at a specific temperature, frequency, or
    altitude, etc. can be obtained".

    The mechanism is pure key derivation: the KMU folds *quantised* sensor
    readings into the derivation context.  The software source derives with
    the conditions it intends; the device derives with what its sensors say
    at load time.  If any bound condition falls in a different quantisation
    bucket, the keys differ, decryption produces garbage and the Validation
    Unit refuses the program — no policy check, nothing to patch out.

    Quantisation makes the binding practical: a time window is a range of
    hour-slots, a temperature bound is a 10-degree band, a frequency bound
    is the exact configured MHz. *)

type conditions = {
  hour_slot : int option;  (** hours since epoch / window length *)
  temperature_band : int option;  (** degrees C / 10, rounded toward -inf *)
  frequency_mhz : int option;  (** exact configured core clock *)
}

val unconstrained : conditions
(** All [None]: derivation ignores the environment entirely (the paper's
    base configuration, and this library's default everywhere else). *)

val pp_conditions : Format.formatter -> conditions -> unit

(** What the device's sensors report. *)
type environment = {
  unix_hours : int;  (** wall-clock hours since the epoch *)
  temperature_c : int;
  clock_mhz : int;
}

val observe : window_hours:int -> environment -> conditions -> conditions
(** [observe ~window_hours env wanted] quantises [env] into the same shape
    as [wanted], reading only the sensors that [wanted] actually binds
    (unbound sensors stay [None] so they do not perturb the key). *)

val window_of : window_hours:int -> unix_hours:int -> int
(** The hour-slot a timestamp falls into. *)

val derive : puf_key:bytes -> context:Kmu.context -> conditions -> bytes
(** PUF-based key bound to [conditions]; with {!unconstrained} this equals
    [Kmu.derive ~puf_key context]. *)
