(** Two-way authentication over an untrusted network (the paper's Fig 2
    and threat model).

    One direction: only the intended device can decrypt and run the
    program (dynamic-analysis protection).  Other direction: the device
    only runs programs built by a holder of its provisioned PUF-based key —
    any modification, soft error, replacement or replay of a package built
    for different hardware is rejected by the Validation Unit.

    This module simulates the transport with pluggable adversaries so the
    threat-model claims are executable. *)

type attack =
  | No_attack
  | Bit_flips of { count : int; seed : int64 }  (** tampering or soft errors in transit *)
  | Truncate of int  (** drop the last [n] bytes *)
  | Splice of { payload : bytes; at : int }  (** overwrite bytes (malicious add-on) *)
  | Replay of bytes  (** substitute a package captured earlier *)

val apply_attack : attack -> bytes -> bytes

type outcome =
  | Executed of Eric_sim.Soc.result  (** validated and ran *)
  | Refused of Target.load_error

val pp_outcome : Format.formatter -> outcome -> unit

val provision : Target.t -> bytes
(** The out-of-band handshake: the device hands its current PUF-based key
    to a trusted software source.  (The PUF key itself never leaves the
    device.) *)

val provision_over_network :
  ?attack:attack ->
  rng:Eric_util.Prng.t ->
  source_key:Eric_crypto.Rsa.private_key ->
  Target.t ->
  (bytes, string) result
(** In-band provisioning — the paper's RSA future work: the device encrypts
    its PUF-based key under the software source's RSA public key and sends
    it over the same untrusted channel as everything else.  Returns the key
    the source recovers; a tampered transmission fails padding validation
    (and even an undetected corruption would only yield a key that no
    subsequent package validates against).  The eavesdropper sees only the
    RSA ciphertext. *)

val transmit :
  ?attack:attack -> ?fuel:int -> source:Source.build -> target:Target.t -> unit -> outcome
(** Serialise the package, push it through the (possibly hostile) channel,
    and let the target authenticate + execute it. *)

val cross_check : builds:(string * Source.build) list -> targets:(string * Target.t) list ->
  (string * string * bool) list
(** Run every build against every target and report which pairs execute —
    the diagonal should be [true] and everything else [false] unless two
    devices were deliberately provisioned with the same key. *)
