type context = { epoch : int; label : string }

let default_context = { epoch = 1; label = "eric" }

let derive ~puf_key context =
  if context.epoch < 0 then invalid_arg "Kmu.derive: negative epoch";
  let msg = Printf.sprintf "ERIC-KDF|epoch=%d|label=%s" context.epoch context.label in
  Eric_crypto.Hmac_sha256.mac_string ~key:puf_key msg

let device_key ?(context = default_context) device =
  derive ~puf_key:(Eric_puf.Device.puf_key device) context

let pp_context fmt c = Format.fprintf fmt "epoch %d, label %S" c.epoch c.label
