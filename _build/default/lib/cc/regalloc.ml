open Eric_rv

type assignment = Reg of Reg.t | Spill of int

type allocation = {
  assign : (Ir.temp, assignment) Hashtbl.t;
  spill_slots : int;
  used_callee_saved : Reg.t list;
}

let caller_pool = [ Reg.t_ 0; Reg.t_ 1; Reg.t_ 2; Reg.t_ 3 ]
let callee_pool = List.init 12 Reg.s

module Iset = Set.Make (Int)

type interval = { temp : int; lo : int; hi : int; crosses_call : bool }

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

let block_liveness (f : Ir.func) =
  (* Gen/kill per block, then the usual backwards fixpoint. *)
  let blocks = Array.of_list f.f_blocks in
  let index_of = Hashtbl.create 16 in
  Array.iteri (fun i b -> Hashtbl.replace index_of b.Ir.b_label i) blocks;
  let n = Array.length blocks in
  let gen = Array.make n Iset.empty and kill = Array.make n Iset.empty in
  Array.iteri
    (fun i b ->
      List.iter
        (fun instr ->
          List.iter
            (fun t -> if not (Iset.mem t kill.(i)) then gen.(i) <- Iset.add t gen.(i))
            (Ir.uses_of instr);
          match Ir.def_of instr with
          | Some d -> kill.(i) <- Iset.add d kill.(i)
          | None -> ())
        b.Ir.body;
      List.iter
        (fun t -> if not (Iset.mem t kill.(i)) then gen.(i) <- Iset.add t gen.(i))
        (Ir.term_uses b.Ir.term))
    blocks;
  let live_in = Array.make n Iset.empty and live_out = Array.make n Iset.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc l ->
            match Hashtbl.find_opt index_of l with
            | Some j -> Iset.union acc live_in.(j)
            | None -> acc)
          Iset.empty
          (Ir.successors blocks.(i).Ir.term)
      in
      let inn = Iset.union gen.(i) (Iset.diff out kill.(i)) in
      if not (Iset.equal out live_out.(i)) || not (Iset.equal inn live_in.(i)) then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  (blocks, live_in, live_out)

(* ------------------------------------------------------------------ *)
(* Intervals                                                           *)
(* ------------------------------------------------------------------ *)

let build_intervals (f : Ir.func) =
  let blocks, live_in, live_out = block_liveness f in
  let lo = Hashtbl.create 64 and hi = Hashtbl.create 64 in
  let touch t pos =
    (match Hashtbl.find_opt lo t with
    | Some v when v <= pos -> ()
    | _ -> Hashtbl.replace lo t pos);
    match Hashtbl.find_opt hi t with
    | Some v when v >= pos -> ()
    | _ -> Hashtbl.replace hi t pos
  in
  let call_sites = ref [] in
  let pos = ref 0 in
  (* Parameters are defined by the prologue. *)
  List.iter (fun p -> touch p 0) f.f_params;
  Array.iteri
    (fun i b ->
      let block_start = !pos in
      List.iter
        (fun instr ->
          incr pos;
          List.iter (fun t -> touch t !pos) (Ir.uses_of instr);
          (match Ir.def_of instr with Some d -> touch d !pos | None -> ());
          match instr with Ir.Call _ -> call_sites := !pos :: !call_sites | _ -> ())
        b.Ir.body;
      incr pos;
      List.iter (fun t -> touch t !pos) (Ir.term_uses b.Ir.term);
      let block_end = !pos in
      Iset.iter (fun t -> touch t block_start) live_in.(i);
      Iset.iter
        (fun t ->
          touch t block_end;
          (* Live-out temps must cover the whole block tail. *)
          touch t block_start)
        live_out.(i);
      (* Live-in temps that are also live-out span everything between;
         linear scan over a linearised order handles loop-carried temps by
         the conservative [block_start, block_end] extension above applied
         to every block where the temp is live. *)
      ())
    blocks;
  let intervals =
    Hashtbl.fold
      (fun t l acc ->
        let h = Hashtbl.find hi t in
        let crosses = List.exists (fun c -> l < c && c < h) !call_sites in
        { temp = t; lo = l; hi = h; crosses_call = crosses } :: acc)
      lo []
  in
  List.sort (fun a b -> compare (a.lo, a.hi) (b.lo, b.hi)) intervals

(* ------------------------------------------------------------------ *)
(* Linear scan                                                         *)
(* ------------------------------------------------------------------ *)

let allocate (f : Ir.func) =
  let intervals = build_intervals f in
  let assign = Hashtbl.create 64 in
  let free_caller = ref caller_pool and free_callee = ref callee_pool in
  let active = ref [] in
  (* (interval, reg) sorted by increasing hi *)
  let spill_count = ref 0 in
  let used_callee = ref [] in
  let release reg =
    if List.exists (Reg.equal reg) caller_pool then free_caller := reg :: !free_caller
    else free_callee := reg :: !free_callee
  in
  let expire current_lo =
    let expired, still = List.partition (fun (iv, _) -> iv.hi < current_lo) !active in
    List.iter (fun (_, r) -> release r) expired;
    active := still
  in
  let take_reg iv =
    if iv.crosses_call then
      match !free_callee with
      | r :: rest ->
        free_callee := rest;
        if not (List.exists (Reg.equal r) !used_callee) then used_callee := r :: !used_callee;
        Some r
      | [] -> None
    else
      match !free_caller with
      | r :: rest ->
        free_caller := rest;
        Some r
      | [] -> (
        match !free_callee with
        | r :: rest ->
          free_callee := rest;
          if not (List.exists (Reg.equal r) !used_callee) then used_callee := r :: !used_callee;
          Some r
        | [] -> None)
  in
  let insert_active entry =
    let rec ins = function
      | [] -> [ entry ]
      | ((iv, _) as hd) :: tl -> if (fst entry).hi <= iv.hi then entry :: hd :: tl else hd :: ins tl
    in
    active := ins !active
  in
  let spill_slot () =
    let s = !spill_count in
    incr spill_count;
    s
  in
  List.iter
    (fun iv ->
      expire iv.lo;
      match take_reg iv with
      | Some r ->
        Hashtbl.replace assign iv.temp (Reg r);
        insert_active (iv, r)
      | None -> (
        (* Standard heuristic: spill whichever of {current, furthest-ending
           active with a compatible register} ends last. *)
        let compatible (aiv, r) =
          ignore aiv;
          if iv.crosses_call then List.exists (Reg.equal r) callee_pool else true
        in
        let candidates = List.filter compatible !active in
        match List.rev candidates with
        | (victim, vreg) :: _ when victim.hi > iv.hi ->
          Hashtbl.replace assign victim.temp (Spill (spill_slot ()));
          active := List.filter (fun (a, _) -> a.temp <> victim.temp) !active;
          Hashtbl.replace assign iv.temp (Reg vreg);
          insert_active (iv, vreg)
        | _ -> Hashtbl.replace assign iv.temp (Spill (spill_slot ()))))
    intervals;
  { assign; spill_slots = !spill_count; used_callee_saved = List.rev !used_callee }
