type token =
  | INT_LIT of int64
  | STR_LIT of string
  | IDENT of string
  | KW_INT | KW_CHAR | KW_VOID
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_SIZEOF
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | PERCENTEQ
  | AMPEQ | PIPEEQ | CARETEQ | SHLEQ | SHREQ
  | PLUSPLUS | MINUSMINUS
  | QUESTION | COLON
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL | SHR
  | LT | LE | GT | GE | EQEQ | NEQ
  | ANDAND | OROR
  | ASSIGN
  | EOF

let token_name = function
  | INT_LIT _ -> "integer literal"
  | STR_LIT _ -> "string literal"
  | IDENT s -> "identifier '" ^ s ^ "'"
  | KW_INT -> "'int'" | KW_CHAR -> "'char'" | KW_VOID -> "'void'"
  | KW_IF -> "'if'" | KW_ELSE -> "'else'" | KW_WHILE -> "'while'" | KW_DO -> "'do'"
  | KW_FOR -> "'for'" | KW_SIZEOF -> "'sizeof'"
  | KW_RETURN -> "'return'" | KW_BREAK -> "'break'" | KW_CONTINUE -> "'continue'"
  | LPAREN -> "'('" | RPAREN -> "')'" | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACKET -> "'['" | RBRACKET -> "']'"
  | SEMI -> "';'" | COMMA -> "','"
  | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'" | SLASH -> "'/'" | PERCENT -> "'%'"
  | PLUSEQ -> "'+='" | MINUSEQ -> "'-='" | STAREQ -> "'*='" | SLASHEQ -> "'/='"
  | PERCENTEQ -> "'%='" | AMPEQ -> "'&='" | PIPEEQ -> "'|='" | CARETEQ -> "'^='"
  | SHLEQ -> "'<<='" | SHREQ -> "'>>='" | PLUSPLUS -> "'++'" | MINUSMINUS -> "'--'"
  | QUESTION -> "'?'" | COLON -> "':'"
  | AMP -> "'&'" | PIPE -> "'|'" | CARET -> "'^'" | TILDE -> "'~'" | BANG -> "'!'"
  | SHL -> "'<<'" | SHR -> "'>>'"
  | LT -> "'<'" | LE -> "'<='" | GT -> "'>'" | GE -> "'>='" | EQEQ -> "'=='" | NEQ -> "'!='"
  | ANDAND -> "'&&'" | OROR -> "'||'"
  | ASSIGN -> "'='"
  | EOF -> "end of input"

type loc_token = { tok : token; pos : Ast.pos }

exception Lex_error of string * Ast.pos

let keywords =
  [ ("int", KW_INT); ("char", KW_CHAR); ("void", KW_VOID); ("if", KW_IF); ("else", KW_ELSE);
    ("while", KW_WHILE); ("do", KW_DO); ("for", KW_FOR); ("return", KW_RETURN);
    ("break", KW_BREAK); ("continue", KW_CONTINUE); ("sizeof", KW_SIZEOF) ]

type state = { src : string; mutable idx : int; mutable line : int; mutable col : int }

let pos st = { Ast.line = st.line; col = st.col }
let error st msg = raise (Lex_error (msg, pos st))
let peek st = if st.idx < String.length st.src then Some st.src.[st.idx] else None
let peek2 st = if st.idx + 1 < String.length st.src then Some st.src.[st.idx + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.idx <- st.idx + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_space st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_space st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_space st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec eat () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | Some _, _ ->
        advance st;
        eat ()
      | None, _ -> error st "unterminated block comment"
    in
    eat ();
    skip_space st
  | Some _ | None -> ()

let lex_number st =
  let start = st.idx in
  let hex = peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') in
  if hex then begin
    advance st;
    advance st;
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done;
    if st.idx = start + 2 then error st "hex literal needs digits";
    Int64.of_string ("0x" ^ String.sub st.src (start + 2) (st.idx - start - 2))
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    Int64.of_string (String.sub st.src start (st.idx - start))
  end

let lex_escape st =
  match peek st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '0' -> advance st; '\000'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | Some c -> error st (Printf.sprintf "unknown escape '\\%c'" c)
  | None -> error st "unterminated escape"

let lex_char st =
  advance st;
  (* opening quote *)
  let c =
    match peek st with
    | Some '\\' ->
      advance st;
      lex_escape st
    | Some '\'' -> error st "empty character literal"
    | Some c ->
      advance st;
      c
    | None -> error st "unterminated character literal"
  in
  (match peek st with
  | Some '\'' -> advance st
  | Some _ | None -> error st "character literal must contain exactly one character");
  Int64.of_int (Char.code c)

let lex_string st =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      Buffer.add_char buf (lex_escape st);
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
    | None -> error st "unterminated string literal"
  in
  go ();
  Buffer.contents buf

(* Lex a one-character token [t1] that becomes [t2] when followed by [b]. *)
let two st b t1 t2 =
  advance st;
  if peek st = Some b then begin
    advance st;
    t2
  end
  else t1

let tokenize src =
  let st = { src; idx = 0; line = 1; col = 1 } in
  let toks = ref [] in
  let emit p t = toks := { tok = t; pos = p } :: !toks in
  let rec loop () =
    skip_space st;
    let p = pos st in
    match peek st with
    | None -> emit p EOF
    | Some c ->
      (match c with
      | c when is_digit c -> emit p (INT_LIT (lex_number st))
      | c when is_ident_start c ->
        let start = st.idx in
        while (match peek st with Some c -> is_ident c | None -> false) do
          advance st
        done;
        let word = String.sub src start (st.idx - start) in
        emit p (match List.assoc_opt word keywords with Some kw -> kw | None -> IDENT word)
      | '\'' -> emit p (INT_LIT (lex_char st))
      | '"' -> emit p (STR_LIT (lex_string st))
      | '(' -> advance st; emit p LPAREN
      | ')' -> advance st; emit p RPAREN
      | '{' -> advance st; emit p LBRACE
      | '}' -> advance st; emit p RBRACE
      | '[' -> advance st; emit p LBRACKET
      | ']' -> advance st; emit p RBRACKET
      | ';' -> advance st; emit p SEMI
      | ',' -> advance st; emit p COMMA
      | '+' ->
        advance st;
        (match peek st with
        | Some '+' -> advance st; emit p PLUSPLUS
        | Some '=' -> advance st; emit p PLUSEQ
        | Some _ | None -> emit p PLUS)
      | '-' ->
        advance st;
        (match peek st with
        | Some '-' -> advance st; emit p MINUSMINUS
        | Some '=' -> advance st; emit p MINUSEQ
        | Some _ | None -> emit p MINUS)
      | '*' -> emit p (two st '=' STAR STAREQ)
      | '/' -> emit p (two st '=' SLASH SLASHEQ)
      | '%' -> emit p (two st '=' PERCENT PERCENTEQ)
      | '^' -> emit p (two st '=' CARET CARETEQ)
      | '~' -> advance st; emit p TILDE
      | '?' -> advance st; emit p QUESTION
      | ':' -> advance st; emit p COLON
      | '&' ->
        advance st;
        (match peek st with
        | Some '&' -> advance st; emit p ANDAND
        | Some '=' -> advance st; emit p AMPEQ
        | Some _ | None -> emit p AMP)
      | '|' ->
        advance st;
        (match peek st with
        | Some '|' -> advance st; emit p OROR
        | Some '=' -> advance st; emit p PIPEEQ
        | Some _ | None -> emit p PIPE)
      | '!' -> emit p (two st '=' BANG NEQ)
      | '=' -> emit p (two st '=' ASSIGN EQEQ)
      | '<' ->
        advance st;
        (match peek st with
        | Some '<' ->
          advance st;
          (match peek st with
          | Some '=' -> advance st; emit p SHLEQ
          | Some _ | None -> emit p SHL)
        | Some '=' -> advance st; emit p LE
        | Some _ | None -> emit p LT)
      | '>' ->
        advance st;
        (match peek st with
        | Some '>' ->
          advance st;
          (match peek st with
          | Some '=' -> advance st; emit p SHREQ
          | Some _ | None -> emit p SHR)
        | Some '=' -> advance st; emit p GE
        | Some _ | None -> emit p GT)
      | c -> error st (Printf.sprintf "unexpected character '%c'" c));
      if (match !toks with { tok = EOF; _ } :: _ -> false | _ -> true) then loop ()
  in
  loop ();
  List.rev !toks
