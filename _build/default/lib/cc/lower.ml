open Tast

type ctx = {
  mutable rev_blocks : Ir.block list;
  mutable cur_label : Ir.label;
  mutable cur_body : Ir.instr list;  (** reversed *)
  mutable open_ : bool;  (** is a block currently being filled? *)
  mutable next_label : int;
  mutable next_temp : int;
  mutable slots : (int * int) list;  (** slot id, size *)
  mutable next_slot : int;
  local_map :
    (int, [ `Temp of Ir.temp | `Slot of int | `Slot_scalar of int * Ir.width ]) Hashtbl.t;
  global_ty : (string, Ast.ty) Hashtbl.t;  (** scalar globals: their type *)
  mutable loop_stack : (Ir.label * Ir.label) list;  (** continue, break *)
  strings : (string, string) Hashtbl.t;  (** literal -> symbol *)
  mutable rev_data : (string * bytes) list;
  mutable next_string : int;
}

let fresh_temp ctx =
  let t = ctx.next_temp in
  ctx.next_temp <- t + 1;
  t

let fresh_label ctx =
  let l = ctx.next_label in
  ctx.next_label <- l + 1;
  l

let emit ctx i = if ctx.open_ then ctx.cur_body <- i :: ctx.cur_body else ()

let seal ctx term =
  if ctx.open_ then begin
    ctx.rev_blocks <-
      { Ir.b_label = ctx.cur_label; body = List.rev ctx.cur_body; term } :: ctx.rev_blocks;
    ctx.open_ <- false
  end

let start_block ctx label =
  if ctx.open_ then seal ctx (Ir.Jmp label);
  ctx.cur_label <- label;
  ctx.cur_body <- [];
  ctx.open_ <- true

let width_of_ty ty : Ir.width = if ty = Ast.T_char then Ir.W8 else Ir.W64

let intern_string ctx s =
  match Hashtbl.find_opt ctx.strings s with
  | Some sym -> sym
  | None ->
    let sym = Printf.sprintf "__str_%d" ctx.next_string in
    ctx.next_string <- ctx.next_string + 1;
    Hashtbl.replace ctx.strings s sym;
    (* NUL-terminated, C style. *)
    ctx.rev_data <- (sym, Bytes.of_string (s ^ "\000")) :: ctx.rev_data;
    sym

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let binop_map : Ast.binop -> Ir.binop = function
  | Add -> Ir.Add | Sub -> Ir.Sub | Mul -> Ir.Mul | Div -> Ir.Div | Rem -> Ir.Rem
  | Shl -> Ir.Shl | Shr -> Ir.Shr
  | Band -> Ir.And | Bor -> Ir.Or | Bxor -> Ir.Xor
  | Lt -> Ir.Slt | Le -> Ir.Sle | Gt -> Ir.Sgt | Ge -> Ir.Sge | Eq -> Ir.Seq | Ne -> Ir.Sne
  | Land | Lor -> invalid_arg "binop_map: short-circuit operators lower to control flow"

let rec lower_expr ctx (e : texpr) : Ir.value =
  match e.te with
  | TE_int v -> Ir.Imm v
  | TE_str s ->
    let sym = intern_string ctx s in
    let t = fresh_temp ctx in
    emit ctx (Ir.Addr_global (t, sym));
    Ir.Temp t
  | TE_local id -> (
    match Hashtbl.find ctx.local_map id with
    | `Temp t -> Ir.Temp t
    | `Slot_scalar (slot, w) ->
      let addr = fresh_temp ctx in
      emit ctx (Ir.Addr_local (addr, slot));
      let t = fresh_temp ctx in
      emit ctx (Ir.Load (w, t, Ir.Temp addr));
      Ir.Temp t
    | `Slot _ -> invalid_arg "lower_expr: scalar read of an array local")
  | TE_global name ->
    let addr = fresh_temp ctx in
    emit ctx (Ir.Addr_global (addr, name));
    let t = fresh_temp ctx in
    emit ctx (Ir.Load (width_of_ty (Hashtbl.find ctx.global_ty name), t, Ir.Temp addr));
    Ir.Temp t
  | TE_addr_local id -> (
    match Hashtbl.find ctx.local_map id with
    | `Slot s | `Slot_scalar (s, _) ->
      let t = fresh_temp ctx in
      emit ctx (Ir.Addr_local (t, s));
      Ir.Temp t
    | `Temp _ -> invalid_arg "lower_expr: address of a register-resident local")
  | TE_addr_global name ->
    let t = fresh_temp ctx in
    emit ctx (Ir.Addr_global (t, name));
    Ir.Temp t
  | TE_unop (op, inner) -> (
    let v = lower_expr ctx inner in
    let t = fresh_temp ctx in
    (match op with
    | Ast.Neg -> emit ctx (Ir.Bin (Ir.Sub, t, Ir.Imm 0L, v))
    | Ast.Bitnot -> emit ctx (Ir.Bin (Ir.Xor, t, v, Ir.Imm (-1L)))
    | Ast.Lognot -> emit ctx (Ir.Bin (Ir.Seq, t, v, Ir.Imm 0L))
    | Ast.Deref | Ast.Addrof -> invalid_arg "lower_expr: deref/addrof survive typechecking");
    Ir.Temp t)
  | TE_binop (Ast.Land, a, b) -> lower_short_circuit ctx ~is_and:true a b
  | TE_binop (Ast.Lor, a, b) -> lower_short_circuit ctx ~is_and:false a b
  | TE_binop (op, a, b) -> (
    (* Pointer arithmetic scales the integer side by the element size. *)
    let elem_size ty = match ty with Ast.T_ptr e -> Tast.size_of_ty e | _ -> 1 in
    let va = lower_expr ctx a in
    let vb = lower_expr ctx b in
    let scale v by =
      if by = 1 then v
      else begin
        let t = fresh_temp ctx in
        emit ctx (Ir.Bin (Ir.Mul, t, v, Ir.Imm (Int64.of_int by)));
        Ir.Temp t
      end
    in
    match (op, a.tty, b.tty) with
    | Ast.Add, Ast.T_ptr _, _ ->
      let t = fresh_temp ctx in
      emit ctx (Ir.Bin (Ir.Add, t, va, scale vb (elem_size a.tty)));
      Ir.Temp t
    | Ast.Add, _, Ast.T_ptr _ ->
      let t = fresh_temp ctx in
      emit ctx (Ir.Bin (Ir.Add, t, scale va (elem_size b.tty), vb));
      Ir.Temp t
    | Ast.Sub, Ast.T_ptr _, (Ast.T_int | Ast.T_char) ->
      let t = fresh_temp ctx in
      emit ctx (Ir.Bin (Ir.Sub, t, va, scale vb (elem_size a.tty)));
      Ir.Temp t
    | Ast.Sub, Ast.T_ptr _, Ast.T_ptr _ ->
      let diff = fresh_temp ctx in
      emit ctx (Ir.Bin (Ir.Sub, diff, va, vb));
      let sz = elem_size a.tty in
      if sz = 1 then Ir.Temp diff
      else begin
        let t = fresh_temp ctx in
        emit ctx (Ir.Bin (Ir.Div, t, Ir.Temp diff, Ir.Imm (Int64.of_int sz)));
        Ir.Temp t
      end
    | _ ->
      let t = fresh_temp ctx in
      emit ctx (Ir.Bin (binop_map op, t, va, vb));
      Ir.Temp t)
  | TE_index (base, idx) ->
    let addr = lower_index_addr ctx base idx in
    let t = fresh_temp ctx in
    emit ctx (Ir.Load (width_of_ty e.tty, t, addr));
    Ir.Temp t
  | TE_assign_local (id, rhs) -> (
    let v = lower_expr ctx rhs in
    match Hashtbl.find ctx.local_map id with
    | `Temp t ->
      emit ctx (Ir.Move (t, v));
      v
    | `Slot_scalar (slot, w) ->
      let addr = fresh_temp ctx in
      emit ctx (Ir.Addr_local (addr, slot));
      emit ctx (Ir.Store (w, Ir.Temp addr, v));
      v
    | `Slot _ -> invalid_arg "lower_expr: assignment to array local")
  | TE_assign_global (name, rhs) ->
    let v = lower_expr ctx rhs in
    let addr = fresh_temp ctx in
    emit ctx (Ir.Addr_global (addr, name));
    emit ctx (Ir.Store (width_of_ty (Hashtbl.find ctx.global_ty name), Ir.Temp addr, v));
    v
  | TE_assign_index (base, idx, rhs) ->
    let v = lower_expr ctx rhs in
    let addr = lower_index_addr ctx base idx in
    emit ctx (Ir.Store (width_of_ty e.tty, addr, v));
    v
  | TE_call ("__write", [ buf; len ]) ->
    let vb = lower_expr ctx buf in
    let vl = lower_expr ctx len in
    emit ctx (Ir.Write (vb, vl));
    vl
  | TE_call ("__exit", [ code ]) ->
    let v = lower_expr ctx code in
    emit ctx (Ir.Exit v);
    Ir.Imm 0L
  | TE_call ("__cycles", []) ->
    let t = fresh_temp ctx in
    emit ctx (Ir.Counter (t, Ir.C_cycles));
    Ir.Temp t
  | TE_call ("__instret", []) ->
    let t = fresh_temp ctx in
    emit ctx (Ir.Counter (t, Ir.C_instret));
    Ir.Temp t
  | TE_call (name, args) ->
    let vargs = List.map (lower_expr ctx) args in
    if e.tty = Ast.T_void then begin
      emit ctx (Ir.Call (None, name, vargs));
      Ir.Imm 0L
    end
    else begin
      let t = fresh_temp ctx in
      emit ctx (Ir.Call (Some t, name, vargs));
      Ir.Temp t
    end
  | TE_compound_local (id, op, rhs) ->
    lower_rmw ctx ~loc:(loc_of_local ctx id) ~ty:e.tty
      ~modify:(fun old -> lower_compound_op ctx op ~lv_ty:e.tty old rhs)
      ~want_old:false
  | TE_compound_global (name, op, rhs) ->
    lower_rmw ctx ~loc:(loc_of_global ctx name) ~ty:e.tty
      ~modify:(fun old -> lower_compound_op ctx op ~lv_ty:e.tty old rhs)
      ~want_old:false
  | TE_compound_index (base, idx, op, rhs) ->
    let addr = lower_index_addr ctx base idx in
    lower_rmw ctx ~loc:(addr, width_of_ty e.tty) ~ty:e.tty
      ~modify:(fun old -> lower_compound_op ctx op ~lv_ty:e.tty old rhs)
      ~want_old:false
  | TE_incr_local (id, pre, delta) ->
    lower_rmw ctx ~loc:(loc_of_local ctx id) ~ty:e.tty
      ~modify:(fun old ->
        let t = fresh_temp ctx in
        emit ctx (Ir.Bin (Ir.Add, t, old, Ir.Imm (Int64.of_int delta)));
        Ir.Temp t)
      ~want_old:(not pre)
  | TE_incr_global (name, pre, delta) ->
    lower_rmw ctx ~loc:(loc_of_global ctx name) ~ty:e.tty
      ~modify:(fun old ->
        let t = fresh_temp ctx in
        emit ctx (Ir.Bin (Ir.Add, t, old, Ir.Imm (Int64.of_int delta)));
        Ir.Temp t)
      ~want_old:(not pre)
  | TE_incr_index (base, idx, pre, delta) ->
    let addr = lower_index_addr ctx base idx in
    lower_rmw ctx ~loc:(addr, width_of_ty e.tty) ~ty:e.tty
      ~modify:(fun old ->
        let t = fresh_temp ctx in
        emit ctx (Ir.Bin (Ir.Add, t, old, Ir.Imm (Int64.of_int delta)));
        Ir.Temp t)
      ~want_old:(not pre)
  | TE_ternary (c, a, b) ->
    let result = fresh_temp ctx in
    let l_then = fresh_label ctx in
    let l_else = fresh_label ctx in
    let join = fresh_label ctx in
    let vc = lower_expr ctx c in
    seal ctx (Ir.Br (vc, l_then, l_else));
    start_block ctx l_then;
    let va = lower_expr ctx a in
    emit ctx (Ir.Move (result, va));
    seal ctx (Ir.Jmp join);
    start_block ctx l_else;
    let vb = lower_expr ctx b in
    emit ctx (Ir.Move (result, vb));
    seal ctx (Ir.Jmp join);
    start_block ctx join;
    Ir.Temp result
  | TE_cast_char inner ->
    let v = lower_expr ctx inner in
    let t = fresh_temp ctx in
    emit ctx (Ir.Bin (Ir.And, t, v, Ir.Imm 0xFFL));
    Ir.Temp t

(* A memory location: address value + access width.  Register-resident
   locals are modelled as a zero-width sentinel via loc_of_local below. *)
and loc_of_local ctx id : Ir.value * Ir.width =
  match Hashtbl.find ctx.local_map id with
  | `Temp t -> (Ir.Temp t, Ir.W64) (* sentinel: recognised by lower_rmw *)
  | `Slot_scalar (slot, w) ->
    let addr = fresh_temp ctx in
    emit ctx (Ir.Addr_local (addr, slot));
    (Ir.Temp addr, w)
  | `Slot _ -> invalid_arg "loc_of_local: array local"

and loc_of_global ctx name : Ir.value * Ir.width =
  let addr = fresh_temp ctx in
  emit ctx (Ir.Addr_global (addr, name));
  (Ir.Temp addr, width_of_ty (Hashtbl.find ctx.global_ty name))

(* Read-modify-write on a location, evaluating the address once.  [modify]
   receives the old value and emits the computation of the new one;
   [want_old] selects the expression's result (post-increment wants the old
   value).  Char-typed locations are masked to a byte so the result value
   matches what memory will reread. *)
and lower_rmw ctx ~loc:(addr, w) ~ty ~modify ~want_old =
  let is_reg_local = match addr with Ir.Temp t -> is_local_temp ctx t | Ir.Imm _ -> false in
  let old_value =
    if is_reg_local then addr
    else begin
      let t = fresh_temp ctx in
      emit ctx (Ir.Load (w, t, addr));
      Ir.Temp t
    end
  in
  (* Post-increment needs the old value after the write; snapshot it. *)
  let snapshot =
    if want_old then begin
      let t = fresh_temp ctx in
      emit ctx (Ir.Move (t, old_value));
      Ir.Temp t
    end
    else Ir.Imm 0L
  in
  let new_value = modify old_value in
  let new_value =
    if ty = Ast.T_char then begin
      let t = fresh_temp ctx in
      emit ctx (Ir.Bin (Ir.And, t, new_value, Ir.Imm 0xFFL));
      Ir.Temp t
    end
    else new_value
  in
  (if is_reg_local then
     match addr with
     | Ir.Temp t -> emit ctx (Ir.Move (t, new_value))
     | Ir.Imm _ -> assert false
   else emit ctx (Ir.Store (w, addr, new_value)));
  if want_old then snapshot else new_value

and is_local_temp ctx t =
  (* Register-resident locals map to temps below the expression-temp
     watermark recorded when the function started; cheaper and simpler:
     check membership in the local map. *)
  Hashtbl.fold
    (fun _ v acc -> acc || match v with `Temp t' -> t' = t | _ -> false)
    ctx.local_map false

and lower_compound_op ctx op ~lv_ty old rhs =
  (* Pointer compound assignment scales the integer side. *)
  let vr = lower_expr ctx rhs in
  let vr =
    match lv_ty with
    | Ast.T_ptr elem when Tast.size_of_ty elem <> 1 ->
      let t = fresh_temp ctx in
      emit ctx (Ir.Bin (Ir.Mul, t, vr, Ir.Imm (Int64.of_int (Tast.size_of_ty elem))));
      Ir.Temp t
    | _ -> vr
  in
  let t = fresh_temp ctx in
  emit ctx (Ir.Bin (binop_map op, t, old, vr));
  Ir.Temp t

and lower_index_addr ctx base idx =
  let elem =
    match base.tty with
    | Ast.T_ptr e -> e
    | _ -> invalid_arg "lower_index_addr: base is not a pointer"
  in
  let vb = lower_expr ctx base in
  let vi = lower_expr ctx idx in
  let size = Tast.size_of_ty elem in
  let scaled =
    if size = 1 then vi
    else begin
      let t = fresh_temp ctx in
      emit ctx (Ir.Bin (Ir.Mul, t, vi, Ir.Imm (Int64.of_int size)));
      Ir.Temp t
    end
  in
  let addr = fresh_temp ctx in
  emit ctx (Ir.Bin (Ir.Add, addr, vb, scaled));
  Ir.Temp addr

and lower_short_circuit ctx ~is_and a b =
  let result = fresh_temp ctx in
  let eval_b = fresh_label ctx in
  let set_true = fresh_label ctx in
  let set_false = fresh_label ctx in
  let join = fresh_label ctx in
  let va = lower_expr ctx a in
  if is_and then seal ctx (Ir.Br (va, eval_b, set_false))
  else seal ctx (Ir.Br (va, set_true, eval_b));
  start_block ctx eval_b;
  let vb = lower_expr ctx b in
  seal ctx (Ir.Br (vb, set_true, set_false));
  start_block ctx set_true;
  emit ctx (Ir.Move (result, Ir.Imm 1L));
  seal ctx (Ir.Jmp join);
  start_block ctx set_false;
  emit ctx (Ir.Move (result, Ir.Imm 0L));
  seal ctx (Ir.Jmp join);
  start_block ctx join;
  Ir.Temp result

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt ctx (ret_void : bool) (st : tstmt) =
  match st with
  | TS_expr e -> ignore (lower_expr ctx e)
  | TS_init (id, e) -> (
    let v = lower_expr ctx e in
    match Hashtbl.find ctx.local_map id with
    | `Temp t -> emit ctx (Ir.Move (t, v))
    | `Slot_scalar (slot, w) ->
      let addr = fresh_temp ctx in
      emit ctx (Ir.Addr_local (addr, slot));
      emit ctx (Ir.Store (w, Ir.Temp addr, v))
    | `Slot _ -> invalid_arg "lower_stmt: init of array local")
  | TS_if (cond, then_, else_) ->
    let lt = fresh_label ctx in
    let lf = fresh_label ctx in
    let join = fresh_label ctx in
    let vc = lower_expr ctx cond in
    seal ctx (Ir.Br (vc, lt, if else_ = [] then join else lf));
    start_block ctx lt;
    List.iter (lower_stmt ctx ret_void) then_;
    seal ctx (Ir.Jmp join);
    if else_ <> [] then begin
      start_block ctx lf;
      List.iter (lower_stmt ctx ret_void) else_;
      seal ctx (Ir.Jmp join)
    end;
    start_block ctx join
  | TS_while (cond, body) ->
    let head = fresh_label ctx in
    let body_l = fresh_label ctx in
    let exit_l = fresh_label ctx in
    seal ctx (Ir.Jmp head);
    start_block ctx head;
    let vc = lower_expr ctx cond in
    seal ctx (Ir.Br (vc, body_l, exit_l));
    start_block ctx body_l;
    ctx.loop_stack <- (head, exit_l) :: ctx.loop_stack;
    List.iter (lower_stmt ctx ret_void) body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    seal ctx (Ir.Jmp head);
    start_block ctx exit_l
  | TS_dowhile (body, cond) ->
    let body_l = fresh_label ctx in
    let cond_l = fresh_label ctx in
    let exit_l = fresh_label ctx in
    seal ctx (Ir.Jmp body_l);
    start_block ctx body_l;
    ctx.loop_stack <- (cond_l, exit_l) :: ctx.loop_stack;
    List.iter (lower_stmt ctx ret_void) body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    seal ctx (Ir.Jmp cond_l);
    start_block ctx cond_l;
    let vc = lower_expr ctx cond in
    seal ctx (Ir.Br (vc, body_l, exit_l));
    start_block ctx exit_l
  | TS_for (init, cond, incr, body) ->
    let head = fresh_label ctx in
    let body_l = fresh_label ctx in
    let incr_l = fresh_label ctx in
    let exit_l = fresh_label ctx in
    List.iter (lower_stmt ctx ret_void) init;
    seal ctx (Ir.Jmp head);
    start_block ctx head;
    (match cond with
    | None -> seal ctx (Ir.Jmp body_l)
    | Some c ->
      let vc = lower_expr ctx c in
      seal ctx (Ir.Br (vc, body_l, exit_l)));
    start_block ctx body_l;
    ctx.loop_stack <- (incr_l, exit_l) :: ctx.loop_stack;
    List.iter (lower_stmt ctx ret_void) body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    seal ctx (Ir.Jmp incr_l);
    start_block ctx incr_l;
    List.iter (lower_stmt ctx ret_void) incr;
    seal ctx (Ir.Jmp head);
    start_block ctx exit_l
  | TS_return None -> seal ctx (Ir.Ret None)
  | TS_return (Some e) ->
    let v = lower_expr ctx e in
    seal ctx (Ir.Ret (Some v))
  | TS_break -> (
    match ctx.loop_stack with
    | (_, brk) :: _ -> seal ctx (Ir.Jmp brk)
    | [] -> invalid_arg "lower_stmt: break outside loop")
  | TS_continue -> (
    match ctx.loop_stack with
    | (cont, _) :: _ -> seal ctx (Ir.Jmp cont)
    | [] -> invalid_arg "lower_stmt: continue outside loop")

(* ------------------------------------------------------------------ *)
(* Globals and program                                                 *)
(* ------------------------------------------------------------------ *)

let global_bytes (g : tglobal) : bytes option =
  let elem_size = Tast.size_of_ty g.tg_ty in
  match g.tg_init with
  | None -> None
  | Some (Ast.G_scalar v) ->
    let b = Bytes.make elem_size '\000' in
    if elem_size = 1 then Bytes.set b 0 (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
    else Eric_util.Bytesx.set_u64 b 0 v;
    Some b
  | Some (Ast.G_array vs) ->
    let n = Option.value g.tg_array ~default:(List.length vs) in
    let b = Bytes.make (n * elem_size) '\000' in
    List.iteri
      (fun i v ->
        if elem_size = 1 then Bytes.set b i (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
        else Eric_util.Bytesx.set_u64 b (i * 8) v)
      vs;
    Some b
  | Some (Ast.G_string s) ->
    let n = Option.value g.tg_array ~default:(String.length s + 1) in
    let b = Bytes.make n '\000' in
    Bytes.blit_string s 0 b 0 (String.length s);
    Some b

let global_size (g : tglobal) =
  Tast.size_of_ty g.tg_ty * Option.value g.tg_array ~default:1

let lower (prog : tprogram) : Ir.program =
  let global_ty = Hashtbl.create 64 in
  List.iter (fun g -> Hashtbl.replace global_ty g.tg_name g.tg_ty) prog.tglobals;
  let data = ref [] and bss = ref [] in
  List.iter
    (fun g ->
      match global_bytes g with
      | Some b -> data := (g.tg_name, b) :: !data
      | None -> bss := (g.tg_name, global_size g) :: !bss)
    prog.tglobals;
  let shared_strings = Hashtbl.create 16 in
  let string_counter = ref 0 in
  let string_data = ref [] in
  let funcs =
    List.map
      (fun f ->
        let ctx =
          {
            rev_blocks = [];
            cur_label = 0;
            cur_body = [];
            open_ = false;
            next_label = 1;
            next_temp = 0;
            slots = [];
            next_slot = 0;
            local_map = Hashtbl.create 32;
            global_ty;
            loop_stack = [];
            strings = shared_strings;
            rev_data = [];
            next_string = !string_counter;
          }
        in
        (* Parameters first so they map to temps 0..n-1 in order. *)
        let param_temps =
          List.map
            (fun (p : local) ->
              let t = fresh_temp ctx in
              Hashtbl.replace ctx.local_map p.l_id (`Temp t);
              t)
            f.tf_params
        in
        let scalar_slot (l : local) =
          let slot = ctx.next_slot in
          ctx.next_slot <- slot + 1;
          ctx.slots <- (slot, 8) :: ctx.slots;
          Hashtbl.replace ctx.local_map l.l_id (`Slot_scalar (slot, width_of_ty l.l_ty))
        in
        (* Parameters whose address is taken move from their register to a
           slot; lower_func emits the spill as an init move below. *)
        let addressed_params =
          List.filter (fun (p : local) -> List.mem p.l_id f.tf_addressed) f.tf_params
        in
        List.iter
          (fun (l : local) ->
            match l.l_array with
            | None when List.mem l.l_id f.tf_addressed -> scalar_slot l
            | None -> Hashtbl.replace ctx.local_map l.l_id (`Temp (fresh_temp ctx))
            | Some n ->
              let slot = ctx.next_slot in
              ctx.next_slot <- slot + 1;
              let size = (n * Tast.size_of_ty l.l_ty + 7) / 8 * 8 in
              ctx.slots <- (slot, size) :: ctx.slots;
              Hashtbl.replace ctx.local_map l.l_id (`Slot slot))
          f.tf_locals;
        start_block ctx 0;
        (* Spill address-taken parameters from their incoming register
           temps into their slots. *)
        List.iter
          (fun (p : local) ->
            match Hashtbl.find_opt ctx.local_map p.l_id with
            | Some (`Temp incoming) ->
              let slot = ctx.next_slot in
              ctx.next_slot <- slot + 1;
              ctx.slots <- (slot, 8) :: ctx.slots;
              Hashtbl.replace ctx.local_map p.l_id (`Slot_scalar (slot, width_of_ty p.l_ty));
              let addr = fresh_temp ctx in
              emit ctx (Ir.Addr_local (addr, slot));
              emit ctx (Ir.Store (width_of_ty p.l_ty, Ir.Temp addr, Ir.Temp incoming))
            | _ -> ())
          addressed_params;
        List.iter (lower_stmt ctx (f.tf_ret = Ast.T_void)) f.tf_body;
        (* Implicit return for fall-through paths. *)
        seal ctx (if f.tf_ret = Ast.T_void then Ir.Ret None else Ir.Ret (Some (Ir.Imm 0L)));
        string_counter := ctx.next_string;
        string_data := ctx.rev_data @ !string_data;
        {
          Ir.f_name = f.tf_name;
          f_params = param_temps;
          f_blocks = List.rev ctx.rev_blocks;
          f_slots = List.rev ctx.slots;
          f_temp_count = ctx.next_temp;
        })
      prog.tfuncs
  in
  {
    Ir.p_funcs = funcs;
    p_data = List.rev !data @ List.rev !string_data;
    p_bss = List.rev !bss;
  }
