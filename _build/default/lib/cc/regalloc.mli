(** Linear-scan register allocation over IR temporaries.

    Temporaries whose live interval crosses a call site compete for
    callee-saved registers (s0-s11); the rest prefer caller-saved
    temporaries (t0-t3).  a-registers are never allocated (they carry
    arguments/results and syscall operands), and t4/t5/t6 are reserved as
    code-generation scratch.  Temporaries that do not receive a register
    are spilled to 8-byte frame slots. *)

type assignment = Reg of Eric_rv.Reg.t | Spill of int  (** spill slot index *)

type allocation = {
  assign : (Ir.temp, assignment) Hashtbl.t;
  spill_slots : int;  (** number of 8-byte spill slots used *)
  used_callee_saved : Eric_rv.Reg.t list;  (** to save/restore in the prologue *)
}

val caller_pool : Eric_rv.Reg.t list
val callee_pool : Eric_rv.Reg.t list

val allocate : Ir.func -> allocation
