(** The compiler's intermediate representation: functions of basic blocks
    over an unbounded set of 64-bit temporaries, in the role LLVM IR plays
    in the paper's toolchain.  Optimisation passes rewrite this form;
    {!Codegen} maps it onto RV64. *)

type temp = int
type label = int

type value = Temp of temp | Imm of int64

(* Comparison operators produce 0/1.  Shr is arithmetic (C's [>>] on signed
   int); byte loads are unsigned (MiniC's char). *)
type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Slt | Sle | Sgt | Sge | Seq | Sne

type width = W8 | W64

type counter = C_cycles | C_instret

type instr =
  | Move of temp * value
  | Bin of binop * temp * value * value
  | Load of width * temp * value  (** dest, address *)
  | Store of width * value * value  (** address, source *)
  | Addr_global of temp * string
  | Addr_local of temp * int  (** frame slot id *)
  | Call of temp option * string * value list
  | Write of value * value  (** buffer address, length (the __write intrinsic) *)
  | Exit of value  (** the __exit intrinsic; does not return *)
  | Counter of temp * counter
      (** read a hardware performance counter (the __cycles/__instret
          intrinsics -> rdcycle/rdinstret); non-deterministic, so never
          merged by CSE *)

type term =
  | Ret of value option
  | Jmp of label
  | Br of value * label * label  (** non-zero -> first label *)

type block = { b_label : label; mutable body : instr list; mutable term : term }

type func = {
  f_name : string;
  f_params : temp list;
  mutable f_blocks : block list;  (** head is the entry block *)
  f_slots : (int * int) list;  (** frame slot id -> size in bytes *)
  mutable f_temp_count : int;
}

type program = {
  p_funcs : func list;
  p_data : (string * bytes) list;  (** initialised globals, in layout order *)
  p_bss : (string * int) list;  (** zero-initialised globals: name, byte size *)
}

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let has_side_effect = function
  | Store _ | Call _ | Write _ | Exit _ -> true
  (* Counter reads are droppable when unused, but each read observes a
     different value, so they are handled as uncacheable in CSE. *)
  | Move _ | Bin _ | Load _ | Addr_global _ | Addr_local _ | Counter _ -> false

let def_of = function
  | Move (d, _) | Bin (_, d, _, _) | Load (_, d, _) | Addr_global (d, _) | Addr_local (d, _) ->
    Some d
  | Call (d, _, _) -> d
  | Counter (d, _) -> Some d
  | Store _ | Write _ | Exit _ -> None

let uses_of_value = function Temp t -> [ t ] | Imm _ -> []

let uses_of = function
  | Move (_, v) -> uses_of_value v
  | Bin (_, _, a, b) -> uses_of_value a @ uses_of_value b
  | Load (_, _, addr) -> uses_of_value addr
  | Store (_, addr, src) -> uses_of_value addr @ uses_of_value src
  | Addr_global _ | Addr_local _ -> []
  | Call (_, _, args) -> List.concat_map uses_of_value args
  | Write (a, b) -> uses_of_value a @ uses_of_value b
  | Exit v -> uses_of_value v
  | Counter _ -> []

let term_uses = function
  | Ret (Some v) -> uses_of_value v
  | Ret None -> []
  | Jmp _ -> []
  | Br (v, _, _) -> uses_of_value v

let successors = function Ret _ -> [] | Jmp l -> [ l ] | Br (_, a, b) -> [ a; b ]

(* ------------------------------------------------------------------ *)
(* Pretty printing (for tests and debugging)                           *)
(* ------------------------------------------------------------------ *)

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt" | Sge -> "sge" | Seq -> "seq" | Sne -> "sne"

let pp_value fmt = function
  | Temp t -> Format.fprintf fmt "t%d" t
  | Imm v -> Format.fprintf fmt "%Ld" v

let width_name = function W8 -> "b" | W64 -> "d"

let pp_instr fmt = function
  | Move (d, v) -> Format.fprintf fmt "t%d = %a" d pp_value v
  | Bin (op, d, a, b) -> Format.fprintf fmt "t%d = %s %a, %a" d (binop_name op) pp_value a pp_value b
  | Load (w, d, a) -> Format.fprintf fmt "t%d = load.%s [%a]" d (width_name w) pp_value a
  | Store (w, a, s) -> Format.fprintf fmt "store.%s [%a], %a" (width_name w) pp_value a pp_value s
  | Addr_global (d, g) -> Format.fprintf fmt "t%d = &%s" d g
  | Addr_local (d, s) -> Format.fprintf fmt "t%d = &slot%d" d s
  | Call (None, f, args) ->
    Format.fprintf fmt "call %s(%a)" f (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_value) args
  | Call (Some d, f, args) ->
    Format.fprintf fmt "t%d = call %s(%a)" d f
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_value)
      args
  | Write (a, n) -> Format.fprintf fmt "write [%a], %a" pp_value a pp_value n
  | Exit v -> Format.fprintf fmt "exit %a" pp_value v
  | Counter (d, C_cycles) -> Format.fprintf fmt "t%d = rdcycle" d
  | Counter (d, C_instret) -> Format.fprintf fmt "t%d = rdinstret" d

let pp_term fmt = function
  | Ret None -> Format.fprintf fmt "ret"
  | Ret (Some v) -> Format.fprintf fmt "ret %a" pp_value v
  | Jmp l -> Format.fprintf fmt "jmp L%d" l
  | Br (v, a, b) -> Format.fprintf fmt "br %a, L%d, L%d" pp_value v a b

let pp_func fmt f =
  Format.fprintf fmt "func %s(%a):@." f.f_name
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") (fun f t ->
         Format.fprintf f "t%d" t))
    f.f_params;
  List.iter
    (fun b ->
      Format.fprintf fmt "L%d:@." b.b_label;
      List.iter (fun i -> Format.fprintf fmt "  %a@." pp_instr i) b.body;
      Format.fprintf fmt "  %a@." pp_term b.term)
    f.f_blocks

let instruction_count f = List.fold_left (fun acc b -> acc + List.length b.body + 1) 0 f.f_blocks
