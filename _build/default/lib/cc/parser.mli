(** Recursive-descent parser for MiniC.

    Operator precedence (loosest to tightest) follows C:
    [||], [&&], [|], [^], [&], [== !=], [< <= > >=], [<< >>], [+ -],
    [* / %], unary [- ! ~], postfix (call, index).  Assignment is
    right-associative and looser than everything else. *)

exception Parse_error of string * Ast.pos

val parse : string -> (Ast.program, string) result
(** Lex + parse; the error string carries "line:col: message". *)

val parse_exn : string -> Ast.program
