(** Typed abstract syntax: the typechecker's output and the lowering pass's
    input.  Name resolution has happened (locals carry unique ids, scoping
    is gone), array-to-pointer decay is explicit, and every expression
    carries its type. *)

type texpr = { te : tkind; tty : Ast.ty }

and tkind =
  | TE_int of int64
  | TE_str of string  (** string literal; interned into .data by lowering *)
  | TE_local of int  (** scalar local/param read *)
  | TE_global of string  (** scalar global read *)
  | TE_addr_local of int  (** decayed local array: its address *)
  | TE_addr_global of string  (** decayed global array: its address *)
  | TE_unop of Ast.unop * texpr
  | TE_binop of Ast.binop * texpr * texpr
  | TE_index of texpr * texpr  (** load elem: pointer-typed base, int index *)
  | TE_assign_local of int * texpr
  | TE_assign_global of string * texpr
  | TE_assign_index of texpr * texpr * texpr  (** base, index, value *)
  | TE_call of string * texpr list
  | TE_compound_local of int * Ast.binop * texpr  (** x op= v *)
  | TE_compound_global of string * Ast.binop * texpr
  | TE_compound_index of texpr * texpr * Ast.binop * texpr  (** base, idx, op, v *)
  | TE_incr_local of int * bool * int  (** pre?, signed delta (already ptr-scaled) *)
  | TE_incr_global of string * bool * int
  | TE_incr_index of texpr * texpr * bool * int
  | TE_ternary of texpr * texpr * texpr
  | TE_cast_char of texpr
      (** explicit int -> char narrowing, inserted by the typechecker at
          every int-to-char assignment/argument/return boundary so the
          "char values are always 0..255" invariant is visible in the IR *)

type tstmt =
  | TS_expr of texpr
  | TS_init of int * texpr  (** scalar local initialisation *)
  | TS_if of texpr * tstmt list * tstmt list
  | TS_while of texpr * tstmt list
  | TS_dowhile of tstmt list * texpr
  | TS_for of tstmt list * texpr option * tstmt list * tstmt list
  | TS_return of texpr option
  | TS_break
  | TS_continue

type local = {
  l_id : int;
  l_name : string;
  l_ty : Ast.ty;  (** element type for arrays *)
  l_array : int option;  (** Some n = array of n elements (stack slot) *)
}

type tfunc = {
  tf_name : string;
  tf_ret : Ast.ty;
  tf_params : local list;  (** always scalars *)
  tf_locals : local list;  (** every local in the function, params excluded *)
  tf_addressed : int list;
      (** scalar locals (or params) whose address is taken with [&]; they
          must live in memory rather than a register *)
  tf_body : tstmt list;
}

type tglobal = {
  tg_name : string;
  tg_ty : Ast.ty;  (** element type for arrays *)
  tg_array : int option;
  tg_init : Ast.ginit option;
}

type tprogram = { tglobals : tglobal list; tfuncs : tfunc list }

let size_of_ty = function
  | Ast.T_char -> 1
  | Ast.T_int | Ast.T_ptr _ -> 8
  | Ast.T_void -> invalid_arg "size_of_ty: void has no size"
