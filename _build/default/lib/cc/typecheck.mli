(** Name resolution and type checking: {!Ast.program} -> {!Tast.tprogram}.

    MiniC's rules, briefly: [char] promotes to [int] in arithmetic and
    comparisons and truncates on assignment; pointer [+]/[-] integer scales
    by element size (done in lowering; recorded here via types); pointer
    difference and pointer comparisons require identical pointer types;
    conditions accept any scalar; arrays decay to pointers on use; functions
    take at most eight arguments.  The intrinsics [__write(char*, int)] and
    [__exit(int)] are predeclared. *)

exception Type_error of string * Ast.pos

val check : Ast.program -> (Tast.tprogram, string) result

val check_exn : Ast.program -> Tast.tprogram
