(** Hand-written lexer for MiniC. *)

type token =
  | INT_LIT of int64
  | STR_LIT of string
  | IDENT of string
  | KW_INT | KW_CHAR | KW_VOID
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_SIZEOF
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | PERCENTEQ
  | AMPEQ | PIPEEQ | CARETEQ | SHLEQ | SHREQ
  | PLUSPLUS | MINUSMINUS
  | QUESTION | COLON
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL | SHR
  | LT | LE | GT | GE | EQEQ | NEQ
  | ANDAND | OROR
  | ASSIGN
  | EOF

val token_name : token -> string

type loc_token = { tok : token; pos : Ast.pos }

exception Lex_error of string * Ast.pos

val tokenize : string -> loc_token list
(** Raises {!Lex_error} on malformed input (bad escapes, unterminated
    strings or comments, stray characters).  Character literals lex as
    [INT_LIT] of their byte value; [//] and [/* */] comments are skipped. *)
