open Ast
open Tast

exception Type_error of string * Ast.pos

let err pos fmt = Format.kasprintf (fun s -> raise (Type_error (s, pos))) fmt

type sym =
  | Sym_scalar_local of int * ty
  | Sym_array_local of int * ty * int  (** id, element type, length *)
  | Sym_scalar_global of ty
  | Sym_array_global of ty * int

type fsig = { fs_ret : ty; fs_params : ty list }

type env = {
  globals : (string, sym) Hashtbl.t;
  funcs : (string, fsig) Hashtbl.t;
  mutable scopes : (string * sym) list list;
  mutable locals_acc : local list;  (** collected for the current function *)
  mutable next_local : int;
  mutable addressed : int list;  (** locals whose address was taken *)
}

let builtins =
  [ ("__write", { fs_ret = T_int; fs_params = [ T_ptr T_char; T_int ] });
    ("__exit", { fs_ret = T_void; fs_params = [ T_int ] });
    ("__cycles", { fs_ret = T_int; fs_params = [] });
    ("__instret", { fs_ret = T_int; fs_params = [] }) ]

let lookup_var env name =
  let rec in_scopes = function
    | [] -> Hashtbl.find_opt env.globals name
    | scope :: rest -> (
      match List.assoc_opt name scope with Some s -> Some s | None -> in_scopes rest)
  in
  in_scopes env.scopes

let fresh_local env name ty array =
  let id = env.next_local in
  env.next_local <- id + 1;
  env.locals_acc <- { l_id = id; l_name = name; l_ty = ty; l_array = array } :: env.locals_acc;
  id

let bind env name sym =
  match env.scopes with
  | scope :: rest -> env.scopes <- ((name, sym) :: scope) :: rest
  | [] -> invalid_arg "bind: no open scope"

let is_arith = function T_int | T_char -> true | T_void | T_ptr _ -> false
let is_scalar = function T_int | T_char | T_ptr _ -> true | T_void -> false

(* Implicit conversion for assignment and argument passing. *)
let assignable ~dst ~src =
  match (dst, src) with
  | (T_int | T_char), (T_int | T_char) -> true
  | T_ptr a, T_ptr b -> ty_equal a b
  | _ -> false

(* Apply the conversion, materialising int -> char narrowing. *)
let coerce ~dst te =
  match (dst, te.tty) with
  | T_char, T_int -> { te = TE_cast_char te; tty = T_char }
  | _ -> te

let rec check_expr env (e : expr) : texpr =
  let pos = e.epos in
  match e.e with
  | Int_lit v -> { te = TE_int v; tty = T_int }
  | Str_lit s -> { te = TE_str s; tty = T_ptr T_char }
  | Var name -> (
    match lookup_var env name with
    | Some (Sym_scalar_local (id, ty)) -> { te = TE_local id; tty = ty }
    | Some (Sym_array_local (id, ty, _)) -> { te = TE_addr_local id; tty = T_ptr ty }
    | Some (Sym_scalar_global ty) -> { te = TE_global name; tty = ty }
    | Some (Sym_array_global (ty, _)) -> { te = TE_addr_global name; tty = T_ptr ty }
    | None -> err pos "undefined variable %s" name)
  | Unop (Deref, inner) -> (
    let ti = check_expr env inner in
    match ti.tty with
    | T_ptr elem when elem <> T_void ->
      { te = TE_index (ti, { te = TE_int 0L; tty = T_int }); tty = elem }
    | _ -> err pos "cannot dereference a value of type %a" pp_ty ti.tty)
  | Unop (Addrof, inner) -> check_addrof env pos inner
  | Unop (op, inner) -> (
    let ti = check_expr env inner in
    match op with
    | Neg | Bitnot ->
      if not (is_arith ti.tty) then err pos "unary operator needs an arithmetic operand";
      { te = TE_unop (op, ti); tty = T_int }
    | Lognot ->
      if not (is_scalar ti.tty) then err pos "'!' needs a scalar operand";
      { te = TE_unop (op, ti); tty = T_int }
    | Deref | Addrof -> assert false)
  | Binop (op, a, b) -> check_binop env pos op a b
  | Assign (lhs, rhs) -> check_assign env pos lhs rhs
  | Compound (op, lhs, rhs) -> check_compound env pos op lhs rhs
  | Incr { pre; up; lvalue } -> check_incr env pos ~pre ~up lvalue
  | Ternary (c, a, b) -> (
    let tc = check_expr env c in
    if not (is_scalar tc.tty) then err pos "ternary condition must be a scalar";
    let ta = check_expr env a in
    let tb = check_expr env b in
    let ty =
      match (ta.tty, tb.tty) with
      | (T_int | T_char), (T_int | T_char) -> T_int
      | T_ptr x, T_ptr y when ty_equal x y -> ta.tty
      | _ -> err pos "ternary branches have incompatible types %a and %a" pp_ty ta.tty pp_ty tb.tty
    in
    { te = TE_ternary (tc, ta, tb); tty = ty })
  | Sizeof ty -> (
    match ty with
    | T_void -> err pos "sizeof(void) is meaningless"
    | _ -> { te = TE_int (Int64.of_int (Tast.size_of_ty ty)); tty = T_int })
  | Call (name, args) -> (
    match Hashtbl.find_opt env.funcs name with
    | None -> err pos "call to undefined function %s" name
    | Some fs ->
      if List.length args <> List.length fs.fs_params then
        err pos "%s expects %d arguments, got %d" name (List.length fs.fs_params)
          (List.length args);
      let targs =
        List.map2
          (fun arg pty ->
            let ta = check_expr env arg in
            if not (assignable ~dst:pty ~src:ta.tty) then
              err arg.epos "argument type %a does not match parameter type %a" pp_ty ta.tty
                pp_ty pty;
            coerce ~dst:pty ta)
          args fs.fs_params
      in
      { te = TE_call (name, targs); tty = fs.fs_ret })
  | Index (base, idx) ->
    let tb = check_expr env base in
    let ti = check_expr env idx in
    if not (is_arith ti.tty) then err idx.epos "array index must be an integer";
    (match tb.tty with
    | T_ptr elem when elem <> T_void -> { te = TE_index (tb, ti); tty = elem }
    | _ -> err base.epos "indexing a non-pointer value of type %a" pp_ty tb.tty)

and check_binop env pos op a b =
  let ta = check_expr env a in
  let tb = check_expr env b in
  match op with
  | Add | Sub -> (
    match (ta.tty, tb.tty) with
    | (T_int | T_char), (T_int | T_char) -> { te = TE_binop (op, ta, tb); tty = T_int }
    | T_ptr _, (T_int | T_char) -> { te = TE_binop (op, ta, tb); tty = ta.tty }
    | (T_int | T_char), T_ptr _ when op = Add -> { te = TE_binop (op, ta, tb); tty = tb.tty }
    | T_ptr x, T_ptr y when op = Sub && ty_equal x y ->
      { te = TE_binop (op, ta, tb); tty = T_int }
    | _ -> err pos "invalid operand types %a and %a" pp_ty ta.tty pp_ty tb.tty)
  | Mul | Div | Rem | Shl | Shr | Band | Bor | Bxor ->
    if not (is_arith ta.tty && is_arith tb.tty) then
      err pos "arithmetic operator needs integer operands (%a, %a)" pp_ty ta.tty pp_ty tb.tty;
    { te = TE_binop (op, ta, tb); tty = T_int }
  | Lt | Le | Gt | Ge | Eq | Ne -> (
    match (ta.tty, tb.tty) with
    | (T_int | T_char), (T_int | T_char) -> { te = TE_binop (op, ta, tb); tty = T_int }
    | T_ptr x, T_ptr y when ty_equal x y -> { te = TE_binop (op, ta, tb); tty = T_int }
    | _ -> err pos "cannot compare %a with %a" pp_ty ta.tty pp_ty tb.tty)
  | Land | Lor ->
    if not (is_scalar ta.tty && is_scalar tb.tty) then err pos "'&&'/'||' need scalar operands";
    { te = TE_binop (op, ta, tb); tty = T_int }

and check_addrof env pos (inner : expr) : texpr =
  match inner.e with
  | Var name -> (
    match lookup_var env name with
    | Some (Sym_scalar_local (id, ty)) ->
      if not (List.mem id env.addressed) then env.addressed <- id :: env.addressed;
      { te = TE_addr_local id; tty = T_ptr ty }
    | Some (Sym_scalar_global ty) -> { te = TE_addr_global name; tty = T_ptr ty }
    | Some (Sym_array_local (id, ty, _)) ->
      (* &arr is the array's address (we do not distinguish T_ptr from
         pointer-to-array) *)
      { te = TE_addr_local id; tty = T_ptr ty }
    | Some (Sym_array_global (ty, _)) -> { te = TE_addr_global name; tty = T_ptr ty }
    | None -> err pos "undefined variable %s" name)
  | Index (base, idx) ->
    (* &a[i] is just a + i *)
    let tb = check_expr env base in
    let ti = check_expr env idx in
    if not (is_arith ti.tty) then err idx.epos "array index must be an integer";
    (match tb.tty with
    | T_ptr _ -> { te = TE_binop (Add, tb, ti); tty = tb.tty }
    | _ -> err base.epos "indexing a non-pointer value of type %a" pp_ty tb.tty)
  | Unop (Deref, e) -> check_expr env e (* &*e = e *)
  | _ -> err pos "cannot take the address of this expression"

and compound_result_ty pos op lv_ty rhs_ty =
  (* The subset of binops the parser produces for op=. *)
  match (lv_ty, rhs_ty) with
  | (T_int | T_char), (T_int | T_char) -> ()
  | T_ptr _, (T_int | T_char) when op = Add || op = Sub -> ()
  | _ ->
    err pos "invalid compound assignment operand types %a and %a" pp_ty lv_ty pp_ty rhs_ty

and check_compound env pos op lhs rhs =
  let tr = check_expr env rhs in
  match lhs.e with
  | Var name -> (
    match lookup_var env name with
    | Some (Sym_scalar_local (id, ty)) ->
      compound_result_ty pos op ty tr.tty;
      { te = TE_compound_local (id, op, tr); tty = ty }
    | Some (Sym_scalar_global ty) ->
      compound_result_ty pos op ty tr.tty;
      { te = TE_compound_global (name, op, tr); tty = ty }
    | Some (Sym_array_local _ | Sym_array_global _) -> err pos "cannot assign to array %s" name
    | None -> err pos "undefined variable %s" name)
  | Index (base, idx) -> (
    let tb = check_expr env base in
    let ti = check_expr env idx in
    if not (is_arith ti.tty) then err idx.epos "array index must be an integer";
    match tb.tty with
    | T_ptr elem when elem <> T_void ->
      compound_result_ty pos op elem tr.tty;
      { te = TE_compound_index (tb, ti, op, tr); tty = elem }
    | _ -> err base.epos "indexing a non-pointer value of type %a" pp_ty tb.tty)
  | Unop (Deref, e) -> (
    let te = check_expr env e in
    match te.tty with
    | T_ptr elem when elem <> T_void ->
      compound_result_ty pos op elem tr.tty;
      { te = TE_compound_index (te, { te = TE_int 0L; tty = T_int }, op, tr); tty = elem }
    | _ -> err pos "cannot dereference a value of type %a" pp_ty te.tty)
  | _ -> err pos "left side of compound assignment is not assignable"

and check_incr env pos ~pre ~up lvalue =
  let delta_for ty =
    let magnitude = match ty with T_ptr elem -> Tast.size_of_ty elem | _ -> 1 in
    if up then magnitude else -magnitude
  in
  match lvalue.e with
  | Var name -> (
    match lookup_var env name with
    | Some (Sym_scalar_local (id, ty)) ->
      { te = TE_incr_local (id, pre, delta_for ty); tty = ty }
    | Some (Sym_scalar_global ty) -> { te = TE_incr_global (name, pre, delta_for ty); tty = ty }
    | Some (Sym_array_local _ | Sym_array_global _) -> err pos "cannot increment array %s" name
    | None -> err pos "undefined variable %s" name)
  | Index (base, idx) -> (
    let tb = check_expr env base in
    let ti = check_expr env idx in
    if not (is_arith ti.tty) then err idx.epos "array index must be an integer";
    match tb.tty with
    | T_ptr elem when elem <> T_void ->
      { te = TE_incr_index (tb, ti, pre, delta_for elem); tty = elem }
    | _ -> err base.epos "indexing a non-pointer value of type %a" pp_ty tb.tty)
  | Unop (Deref, e) -> (
    let te = check_expr env e in
    match te.tty with
    | T_ptr elem when elem <> T_void ->
      { te = TE_incr_index (te, { te = TE_int 0L; tty = T_int }, pre, delta_for elem);
        tty = elem }
    | _ -> err pos "cannot dereference a value of type %a" pp_ty te.tty)
  | _ -> err pos "operand of ++/-- is not assignable"

and check_assign env pos lhs rhs =
  let tr = check_expr env rhs in
  match lhs.e with
  | Var name -> (
    match lookup_var env name with
    | Some (Sym_scalar_local (id, ty)) ->
      if not (assignable ~dst:ty ~src:tr.tty) then
        err pos "cannot assign %a to %s of type %a" pp_ty tr.tty name pp_ty ty;
      { te = TE_assign_local (id, coerce ~dst:ty tr); tty = ty }
    | Some (Sym_scalar_global ty) ->
      if not (assignable ~dst:ty ~src:tr.tty) then
        err pos "cannot assign %a to %s of type %a" pp_ty tr.tty name pp_ty ty;
      { te = TE_assign_global (name, coerce ~dst:ty tr); tty = ty }
    | Some (Sym_array_local _ | Sym_array_global _) -> err pos "cannot assign to array %s" name
    | None -> err pos "undefined variable %s" name)
  | Index (base, idx) -> (
    let tb = check_expr env base in
    let ti = check_expr env idx in
    if not (is_arith ti.tty) then err idx.epos "array index must be an integer";
    match tb.tty with
    | T_ptr elem when elem <> T_void ->
      if not (assignable ~dst:elem ~src:tr.tty) then
        err pos "cannot store %a into element of type %a" pp_ty tr.tty pp_ty elem;
      { te = TE_assign_index (tb, ti, coerce ~dst:elem tr); tty = elem }
    | _ -> err base.epos "indexing a non-pointer value of type %a" pp_ty tb.tty)
  | Unop (Deref, e) -> (
    let te = check_expr env e in
    match te.tty with
    | T_ptr elem when elem <> T_void ->
      if not (assignable ~dst:elem ~src:tr.tty) then
        err pos "cannot store %a into element of type %a" pp_ty tr.tty pp_ty elem;
      { te = TE_assign_index (te, { te = TE_int 0L; tty = T_int }, coerce ~dst:elem tr);
        tty = elem }
    | _ -> err pos "cannot dereference a value of type %a" pp_ty te.tty)
  | _ -> err pos "left side of '=' is not assignable"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

type fctx = { ret_ty : ty; mutable loop_depth : int }

let rec check_stmt env fctx (st : stmt) : tstmt list =
  let pos = st.spos in
  match st.s with
  | S_expr e -> [ TS_expr (check_expr env e) ]
  | S_decl (ty, name, array, init) -> (
    (match ty with
    | T_void -> err pos "cannot declare a void variable"
    | T_int | T_char | T_ptr _ -> ());
    match array with
    | Some n ->
      if n <= 0 then err pos "array %s must have positive length" name;
      if init <> None then err pos "local array %s cannot have an initialiser" name;
      let id = fresh_local env name ty (Some n) in
      bind env name (Sym_array_local (id, ty, n));
      []
    | None ->
      let id = fresh_local env name ty None in
      let init_stmts =
        match init with
        | None -> []
        | Some e ->
          let te = check_expr env e in
          if not (assignable ~dst:ty ~src:te.tty) then
            err pos "cannot initialise %s of type %a with %a" name pp_ty ty pp_ty te.tty;
          [ TS_init (id, coerce ~dst:ty te) ]
      in
      bind env name (Sym_scalar_local (id, ty));
      init_stmts)
  | S_if (cond, then_, else_) ->
    let tc = check_cond env cond in
    let tt = check_block env fctx [ then_ ] in
    let te = match else_ with None -> [] | Some s -> check_block env fctx [ s ] in
    [ TS_if (tc, tt, te) ]
  | S_while (cond, body) ->
    let tc = check_cond env cond in
    fctx.loop_depth <- fctx.loop_depth + 1;
    let tb = check_block env fctx [ body ] in
    fctx.loop_depth <- fctx.loop_depth - 1;
    [ TS_while (tc, tb) ]
  | S_dowhile (body, cond) ->
    fctx.loop_depth <- fctx.loop_depth + 1;
    let tb = check_block env fctx [ body ] in
    fctx.loop_depth <- fctx.loop_depth - 1;
    let tc = check_cond env cond in
    [ TS_dowhile (tb, tc) ]
  | S_for (init, cond, incr, body) ->
    (* The init declaration scopes over the whole loop. *)
    env.scopes <- [] :: env.scopes;
    let ti = match init with None -> [] | Some s -> check_stmt env fctx s in
    let tc = Option.map (check_cond env) cond in
    fctx.loop_depth <- fctx.loop_depth + 1;
    let tb = check_block env fctx [ body ] in
    fctx.loop_depth <- fctx.loop_depth - 1;
    let tincr = match incr with None -> [] | Some s -> check_stmt env fctx s in
    env.scopes <- List.tl env.scopes;
    [ TS_for (ti, tc, tincr, tb) ]
  | S_return e -> (
    match (e, fctx.ret_ty) with
    | None, T_void -> [ TS_return None ]
    | None, ty -> err pos "function must return a value of type %a" pp_ty ty
    | Some _, T_void -> err pos "void function cannot return a value"
    | Some e, ty ->
      let te = check_expr env e in
      if not (assignable ~dst:ty ~src:te.tty) then
        err pos "return type mismatch: %a vs %a" pp_ty te.tty pp_ty ty;
      [ TS_return (Some (coerce ~dst:ty te)) ])
  | S_break ->
    if fctx.loop_depth = 0 then err pos "break outside a loop";
    [ TS_break ]
  | S_continue ->
    if fctx.loop_depth = 0 then err pos "continue outside a loop";
    [ TS_continue ]
  | S_block stmts -> check_block env fctx stmts

and check_cond env e =
  let te = check_expr env e in
  if not (is_scalar te.tty) then err e.epos "condition must be a scalar";
  te

and check_block env fctx stmts =
  env.scopes <- [] :: env.scopes;
  let result = List.concat_map (check_stmt env fctx) stmts in
  env.scopes <- List.tl env.scopes;
  result

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let check_global (g : global) : tglobal =
  (match g.g_ty with
  | T_void -> err g.g_pos "cannot declare a void global"
  | T_ptr _ when g.g_init <> None -> err g.g_pos "pointer globals cannot have initialisers"
  | T_int | T_char | T_ptr _ -> ());
  (match (g.g_array, g.g_init) with
  | Some n, _ when n <= 0 -> err g.g_pos "array %s must have positive length" g.g_name
  | None, Some (G_array _ | G_string _) ->
    err g.g_pos "scalar global %s cannot take an aggregate initialiser" g.g_name
  | Some _, Some (G_scalar _) -> err g.g_pos "array global %s needs an aggregate initialiser" g.g_name
  | Some n, Some (G_array vs) when List.length vs > n ->
    err g.g_pos "initialiser for %s has %d elements but the array holds %d" g.g_name
      (List.length vs) n
  | Some n, Some (G_string s) when g.g_ty <> T_char ->
    ignore (n, s);
    err g.g_pos "string initialiser requires a char array"
  | Some n, Some (G_string s) when String.length s + 1 > n ->
    err g.g_pos "string initialiser for %s needs %d bytes but the array holds %d" g.g_name
      (String.length s + 1) n
  | _ -> ());
  { tg_name = g.g_name; tg_ty = g.g_ty; tg_array = g.g_array; tg_init = g.g_init }

let check_func env (f : func) : tfunc =
  if List.length f.f_params > 8 then err f.f_pos "functions take at most 8 parameters";
  env.scopes <- [ [] ];
  env.locals_acc <- [];
  env.next_local <- 0;
  env.addressed <- [];
  let params =
    List.map
      (fun (ty, name) ->
        (match ty with
        | T_void -> err f.f_pos "parameter %s cannot be void" name
        | T_int | T_char | T_ptr _ -> ());
        let id = fresh_local env name ty None in
        bind env name (Sym_scalar_local (id, ty));
        { l_id = id; l_name = name; l_ty = ty; l_array = None })
      f.f_params
  in
  let fctx = { ret_ty = f.f_ret; loop_depth = 0 } in
  let body = check_block env fctx f.f_body in
  let param_ids = List.map (fun p -> p.l_id) params in
  let locals =
    List.filter (fun l -> not (List.mem l.l_id param_ids)) (List.rev env.locals_acc)
  in
  { tf_name = f.f_name; tf_ret = f.f_ret; tf_params = params; tf_locals = locals;
    tf_addressed = List.sort_uniq compare env.addressed; tf_body = body }

let check_exn (prog : program) : tprogram =
  let env =
    { globals = Hashtbl.create 64; funcs = Hashtbl.create 64; scopes = []; locals_acc = [];
      next_local = 0; addressed = [] }
  in
  List.iter (fun (name, fs) -> Hashtbl.replace env.funcs name fs) builtins;
  (* First pass: declare every global and function signature. *)
  List.iter
    (fun decl ->
      match decl with
      | D_global g ->
        if Hashtbl.mem env.globals g.g_name then err g.g_pos "duplicate global %s" g.g_name;
        let sym =
          match g.g_array with
          | Some n -> Sym_array_global (g.g_ty, n)
          | None -> Sym_scalar_global g.g_ty
        in
        Hashtbl.replace env.globals g.g_name sym
      | D_func f ->
        if Hashtbl.mem env.funcs f.f_name then err f.f_pos "duplicate function %s" f.f_name;
        Hashtbl.replace env.funcs f.f_name
          { fs_ret = f.f_ret; fs_params = List.map fst f.f_params })
    prog;
  let tglobals =
    List.filter_map (function D_global g -> Some (check_global g) | D_func _ -> None) prog
  in
  let tfuncs =
    List.filter_map (function D_func f -> Some (check_func env f) | D_global _ -> None) prog
  in
  { tglobals; tfuncs }

let check prog =
  match check_exn prog with
  | tp -> Ok tp
  | exception Type_error (msg, pos) -> Error (Format.asprintf "%a: %s" pp_pos pos msg)
