(** RV64 code generation: allocated IR functions -> {!Eric_rv.Assemble}
    items, plus the [_start] stub and data/BSS packing.

    Calling convention is the standard RISC-V integer ABI restricted to
    MiniC: up to eight arguments in a0-a7, result in a0, ra plus used
    callee-saved registers preserved in the frame, sp 16-byte aligned.
    The [__write]/[__exit] intrinsics become Linux-convention [ecall]s
    (write=64, exit=93), which is what the simulated SoC implements. *)

val frame_size : Ir.func -> Regalloc.allocation -> int
(** Bytes of stack frame the function will use (16-byte aligned). *)

val gen_func : Ir.func -> Eric_rv.Assemble.item list
(** Allocate registers and emit one function's items (leading label =
    function name). *)

val gen_program : Ir.program -> Eric_rv.Assemble.input
(** Emit every function plus [_start] (which calls [main] and exits with
    its return value), and pack initialised globals into the data image
    with 8-byte alignment. *)
