(** Abstract syntax of MiniC, the C subset the framework's compiler accepts.

    MiniC covers what the MiBench-style evaluation workloads need: 64-bit
    [int], unsigned byte [char], pointers with [&]/[*] (address-taken
    locals live in the frame), fixed-size arrays (global and local), string
    literals, the usual expression operators with C semantics (including
    short-circuit [&&]/[||], compound assignment, [++]/[--], the ternary
    conditional and [sizeof]), [if]/[while]/[do-while]/[for] control flow
    with [break]/[continue], and functions with up to eight arguments. *)

type pos = { line : int; col : int }

let pp_pos fmt p = Format.fprintf fmt "%d:%d" p.line p.col

type ty = T_int | T_char | T_void | T_ptr of ty

let rec pp_ty fmt = function
  | T_int -> Format.pp_print_string fmt "int"
  | T_char -> Format.pp_print_string fmt "char"
  | T_void -> Format.pp_print_string fmt "void"
  | T_ptr t -> Format.fprintf fmt "%a*" pp_ty t

let rec ty_equal a b =
  match (a, b) with
  | T_int, T_int | T_char, T_char | T_void, T_void -> true
  | T_ptr a, T_ptr b -> ty_equal a b
  | (T_int | T_char | T_void | T_ptr _), _ -> false

type unop = Neg | Lognot | Bitnot | Deref | Addrof

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr
  | Band | Bor | Bxor
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor

type expr = { e : expr_kind; epos : pos }

and expr_kind =
  | Int_lit of int64
  | Str_lit of string
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr  (** lvalue, value *)
  | Compound of binop * expr * expr  (** lvalue op= value; lvalue evaluated once *)
  | Incr of { pre : bool; up : bool; lvalue : expr }  (** ++x / x++ / --x / x-- *)
  | Ternary of expr * expr * expr
  | Sizeof of ty
  | Call of string * expr list
  | Index of expr * expr

type stmt = { s : stmt_kind; spos : pos }

and stmt_kind =
  | S_expr of expr
  | S_decl of ty * string * int option * expr option
      (** type, name, array length (None = scalar), initialiser *)
  | S_if of expr * stmt * stmt option
  | S_while of expr * stmt
  | S_dowhile of stmt * expr
  | S_for of stmt option * expr option * stmt option * stmt
  | S_return of expr option
  | S_break
  | S_continue
  | S_block of stmt list

type ginit = G_scalar of int64 | G_array of int64 list | G_string of string

type global = {
  g_ty : ty;
  g_name : string;
  g_array : int option;
  g_init : ginit option;
  g_pos : pos;
}

type func = {
  f_ret : ty;
  f_name : string;
  f_params : (ty * string) list;
  f_body : stmt list;
  f_pos : pos;
}

type decl = D_global of global | D_func of func

type program = decl list
