(** A reference interpreter for the IR.

    Executes {!Ir.program} directly — no code generation, no register
    allocation, no RISC-V — with its own flat memory for globals, string
    literals and frame slots.  Because it shares nothing with the back end
    below the IR, comparing its observable behaviour (output + exit code)
    with the compiled program running on the simulated SoC checks
    code generation, register allocation, layout and the CPU model as one
    differential unit. *)

type outcome = {
  output : string;  (** everything written via the __write intrinsic *)
  exit_code : int;  (** from __exit or main's return value *)
}

exception Runtime_error of string
(** Out-of-bounds access, missing function, call-depth explosion. *)

val run : ?max_steps:int -> Ir.program -> outcome
(** Interpret from [main] (default fuel 100M IR instructions). *)
