(** Lowering: {!Tast.tprogram} -> {!Ir.program}.

    Scalars live in temporaries; local arrays get frame slots; globals and
    string literals become data/BSS symbols.  Pointer arithmetic is scaled
    here (element size from the static type), short-circuit [&&]/[||] become
    control flow, and char narrowing becomes an explicit [and 0xff]. *)

val lower : Tast.tprogram -> Ir.program
