type outcome = { output : string; exit_code : int }

exception Runtime_error of string
exception Program_exit of int

let err fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type state = {
  memory : Bytes.t;
  globals : (string, int) Hashtbl.t;  (** symbol -> address *)
  funcs : (string, Ir.func) Hashtbl.t;
  out : Buffer.t;
  mutable stack_pointer : int;  (** bump-down frame allocator *)
  mutable steps : int;
  max_steps : int;
}

let memory_size = 4 * 1024 * 1024
let data_base = 0x1000

let check st addr len =
  if addr < 0 || len < 0 || addr + len > Bytes.length st.memory then
    err "memory access out of bounds: 0x%x (+%d)" addr len

let read st w addr =
  match w with
  | Ir.W8 ->
    check st addr 1;
    Int64.of_int (Char.code (Bytes.get st.memory addr))
  | Ir.W64 ->
    check st addr 8;
    Eric_util.Bytesx.get_u64 st.memory addr

let write st w addr v =
  match w with
  | Ir.W8 ->
    check st addr 1;
    Bytes.set st.memory addr (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | Ir.W64 ->
    check st addr 8;
    Eric_util.Bytesx.set_u64 st.memory addr v

let eval_binop (op : Ir.binop) a b =
  let open Int64 in
  let bool_ c = if c then 1L else 0L in
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div -> if b = 0L then -1L else if a = min_int && b = -1L then min_int else div a b
  | Rem -> if b = 0L then a else if a = min_int && b = -1L then 0L else rem a b
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Shl -> shift_left a (to_int (logand b 63L))
  | Shr -> shift_right a (to_int (logand b 63L))
  | Slt -> bool_ (compare a b < 0)
  | Sle -> bool_ (compare a b <= 0)
  | Sgt -> bool_ (compare a b > 0)
  | Sge -> bool_ (compare a b >= 0)
  | Seq -> bool_ (equal a b)
  | Sne -> bool_ (not (equal a b))

let rec exec_func st (f : Ir.func) (args : int64 list) : int64 =
  let temps = Array.make (max f.Ir.f_temp_count 1) 0L in
  List.iteri
    (fun i p -> if i < List.length args then temps.(p) <- List.nth args i)
    f.Ir.f_params;
  (* Frame slots: bump the interpreter's stack downwards. *)
  let frame_size = List.fold_left (fun acc (_, size) -> acc + size) 0 f.Ir.f_slots in
  let saved_sp = st.stack_pointer in
  st.stack_pointer <- st.stack_pointer - ((frame_size + 15) / 16 * 16);
  if st.stack_pointer < memory_size / 2 then err "interpreter stack overflow in %s" f.Ir.f_name;
  let slot_addr = Hashtbl.create 8 in
  let off = ref st.stack_pointer in
  List.iter
    (fun (slot, size) ->
      Hashtbl.replace slot_addr slot !off;
      off := !off + size)
    f.Ir.f_slots;
  let blocks = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace blocks b.Ir.b_label b) f.Ir.f_blocks;
  let value = function Ir.Temp t -> temps.(t) | Ir.Imm v -> v in
  let result = ref 0L in
  let rec run_block label =
    let block =
      match Hashtbl.find_opt blocks label with
      | Some b -> b
      | None -> err "%s: no block L%d" f.Ir.f_name label
    in
    List.iter
      (fun instr ->
        st.steps <- st.steps + 1;
        if st.steps > st.max_steps then err "interpreter out of fuel";
        match instr with
        | Ir.Move (d, v) -> temps.(d) <- value v
        | Ir.Bin (op, d, a, b) -> temps.(d) <- eval_binop op (value a) (value b)
        | Ir.Load (w, d, addr) -> temps.(d) <- read st w (Int64.to_int (value addr))
        | Ir.Store (w, addr, src) -> write st w (Int64.to_int (value addr)) (value src)
        | Ir.Addr_global (d, sym) -> (
          match Hashtbl.find_opt st.globals sym with
          | Some addr -> temps.(d) <- Int64.of_int addr
          | None -> err "undefined global %s" sym)
        | Ir.Addr_local (d, slot) -> (
          match Hashtbl.find_opt slot_addr slot with
          | Some addr -> temps.(d) <- Int64.of_int addr
          | None -> err "%s: unknown slot %d" f.Ir.f_name slot)
        | Ir.Call (dest, callee, call_args) -> (
          match Hashtbl.find_opt st.funcs callee with
          | None -> err "call to undefined function %s" callee
          | Some g ->
            let r = exec_func st g (List.map value call_args) in
            (match dest with Some d -> temps.(d) <- r | None -> ()))
        | Ir.Write (buf, len) ->
          let addr = Int64.to_int (value buf) and n = Int64.to_int (value len) in
          check st addr n;
          Buffer.add_subbytes st.out st.memory addr n
        | Ir.Exit v -> raise (Program_exit (Int64.to_int (value v)))
        | Ir.Counter (d, _) ->
          (* the interpreter's only monotonic clock is its step count *)
          temps.(d) <- Int64.of_int st.steps)
      block.Ir.body;
    st.steps <- st.steps + 1;
    match block.Ir.term with
    | Ir.Ret None -> ()
    | Ir.Ret (Some v) -> result := value v
    | Ir.Jmp l -> run_block l
    | Ir.Br (v, l1, l2) -> if value v <> 0L then run_block l1 else run_block l2
  in
  run_block (match f.Ir.f_blocks with b :: _ -> b.Ir.b_label | [] -> err "%s has no blocks" f.Ir.f_name);
  st.stack_pointer <- saved_sp;
  !result

let run ?(max_steps = 100_000_000) (p : Ir.program) =
  let st =
    {
      memory = Bytes.make memory_size '\000';
      globals = Hashtbl.create 64;
      funcs = Hashtbl.create 64;
      out = Buffer.create 256;
      stack_pointer = memory_size - 16;
      steps = 0;
      max_steps;
    }
  in
  List.iter (fun f -> Hashtbl.replace st.funcs f.Ir.f_name f) p.Ir.p_funcs;
  (* Lay out initialised data then BSS, 8-byte aligned like the linker. *)
  let cursor = ref data_base in
  let align8 v = (v + 7) / 8 * 8 in
  List.iter
    (fun (name, bytes) ->
      cursor := align8 !cursor;
      Hashtbl.replace st.globals name !cursor;
      Bytes.blit bytes 0 st.memory !cursor (Bytes.length bytes);
      cursor := !cursor + Bytes.length bytes)
    p.Ir.p_data;
  List.iter
    (fun (name, size) ->
      cursor := align8 !cursor;
      Hashtbl.replace st.globals name !cursor;
      cursor := !cursor + size)
    p.Ir.p_bss;
  match Hashtbl.find_opt st.funcs "main" with
  | None -> raise (Runtime_error "program has no main function")
  | Some main -> (
    match exec_func st main [] with
    | code -> { output = Buffer.contents st.out; exit_code = Int64.to_int code }
    | exception Program_exit code -> { output = Buffer.contents st.out; exit_code = code })
