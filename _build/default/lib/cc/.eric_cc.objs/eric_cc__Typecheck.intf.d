lib/cc/typecheck.mli: Ast Tast
