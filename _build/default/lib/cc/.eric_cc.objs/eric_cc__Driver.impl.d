lib/cc/driver.ml: Codegen Eric_rv Format Ir List Lower Opt Parser Result Typecheck
