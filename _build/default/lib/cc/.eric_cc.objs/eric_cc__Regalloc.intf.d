lib/cc/regalloc.mli: Eric_rv Hashtbl Ir
