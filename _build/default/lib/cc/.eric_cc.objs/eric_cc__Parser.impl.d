lib/cc/parser.ml: Ast Format Int64 Lexer List Printf
