lib/cc/ir_interp.mli: Ir
