lib/cc/lower.mli: Ir Tast
