lib/cc/codegen.ml: Array Assemble Buffer Bytes Eric_rv Hashtbl Inst Int64 Ir List Option Printf Reg Regalloc
