lib/cc/opt.mli: Ir
