lib/cc/typecheck.ml: Ast Format Hashtbl Int64 List Option String Tast
