lib/cc/lower.ml: Ast Bytes Char Eric_util Hashtbl Int64 Ir List Option Printf String Tast
