lib/cc/regalloc.ml: Array Eric_rv Hashtbl Int Ir List Reg Set
