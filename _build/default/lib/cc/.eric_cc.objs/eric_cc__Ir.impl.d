lib/cc/ir.ml: Format List
