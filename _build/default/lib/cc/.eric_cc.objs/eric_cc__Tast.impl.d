lib/cc/tast.ml: Ast
