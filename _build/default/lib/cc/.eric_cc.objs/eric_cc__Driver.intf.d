lib/cc/driver.mli: Eric_rv Ir
