lib/cc/lexer.mli: Ast
