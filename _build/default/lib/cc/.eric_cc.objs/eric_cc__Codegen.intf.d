lib/cc/codegen.mli: Eric_rv Ir Regalloc
