lib/cc/ir_interp.ml: Array Buffer Bytes Char Eric_util Format Hashtbl Int64 Ir List
