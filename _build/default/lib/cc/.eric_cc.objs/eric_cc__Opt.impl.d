lib/cc/opt.ml: Hashtbl Int Int64 Ir List Set
