(* MiBench automotive/qsort: recursive quicksort (median-of-three pivot)
   over an LCG-filled array, followed by an is-sorted sweep and a
   position-weighted checksum. *)

let template =
  {|
// qsort: in-place quicksort of 3000 pseudo-random values

int data[@N@];

void swap(int *xs, int i, int j) {
  int t = xs[i];
  xs[i] = xs[j];
  xs[j] = t;
}

int median3(int *xs, int lo, int hi) {
  int mid = lo + (hi - lo) / 2;
  if (xs[mid] < xs[lo]) { swap(xs, mid, lo); }
  if (xs[hi] < xs[lo]) { swap(xs, hi, lo); }
  if (xs[hi] < xs[mid]) { swap(xs, hi, mid); }
  return xs[mid];
}

void quicksort(int *xs, int lo, int hi) {
  if (lo >= hi) { return; }
  int pivot = median3(xs, lo, hi);
  int i = lo;
  int j = hi;
  while (i <= j) {
    while (xs[i] < pivot) { i = i + 1; }
    while (xs[j] > pivot) { j = j - 1; }
    if (i <= j) {
      swap(xs, i, j);
      i = i + 1;
      j = j - 1;
    }
  }
  quicksort(xs, lo, j);
  quicksort(xs, i, hi);
}

int main() {
  int n = @N@;
  int seed = 42;
  for (int i = 0; i < n; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    data[i] = seed % 100000;
  }
  quicksort(data, 0, n - 1);
  for (int i = 1; i < n; i = i + 1) {
    if (data[i - 1] > data[i]) {
      println_str("UNSORTED");
      return 1;
    }
  }
  int checksum = 0;
  for (int i = 0; i < n; i = i + 1) {
    checksum = (checksum + (i + 1) * (data[i] % 1000)) % 1000000007;
  }
  println_int(data[0]);
  println_int(data[n - 1]);
  println_int(checksum);
  return 0;
}
|}

let make ~n = Subst.apply template (Subst.int_bindings [ ("N", n) ])

let source = make ~n:3000
let source_small = make ~n:220
