(* MiBench security/sha: SHA-1 in MiniC (32-bit modular arithmetic built
   from 64-bit ints).  Hashes the FIPS "abc" vector first — the five
   printed words are checkable against the standard — then a 4 KiB
   pseudo-random buffer. *)

let template =
  {|
// sha: SHA-1 with proper padding

int h[5];
int w[80];
char data[@LEN@];

int rotl(int x, int n) {
  return ((x << n) | ((x & 0xffffffff) >> (32 - n))) & 0xffffffff;
}

void sha1_init() {
  h[0] = 0x67452301;
  h[1] = 0xefcdab89;
  h[2] = 0x98badcfe;
  h[3] = 0x10325476;
  h[4] = 0xc3d2e1f0;
}

void sha1_block(char *p) {
  for (int t = 0; t < 16; t = t + 1) {
    w[t] = (p[4 * t] << 24) | (p[4 * t + 1] << 16) | (p[4 * t + 2] << 8) | p[4 * t + 3];
  }
  for (int t = 16; t < 80; t = t + 1) {
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }
  int a = h[0];
  int b = h[1];
  int c = h[2];
  int d = h[3];
  int e = h[4];
  for (int t = 0; t < 80; t = t + 1) {
    int f = 0;
    int k = 0;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5a827999;
    } else {
      if (t < 40) {
        f = b ^ c ^ d;
        k = 0x6ed9eba1;
      } else {
        if (t < 60) {
          f = (b & c) | (b & d) | (c & d);
          k = 0x8f1bbcdc;
        } else {
          f = b ^ c ^ d;
          k = 0xca62c1d6;
        }
      }
    }
    int temp = (rotl(a, 5) + f + e + k + w[t]) & 0xffffffff;
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }
  h[0] = (h[0] + a) & 0xffffffff;
  h[1] = (h[1] + b) & 0xffffffff;
  h[2] = (h[2] + c) & 0xffffffff;
  h[3] = (h[3] + d) & 0xffffffff;
  h[4] = (h[4] + e) & 0xffffffff;
}

void sha1(char *p, int len) {
  sha1_init();
  int nblocks = len / 64;
  for (int i = 0; i < nblocks; i = i + 1) {
    sha1_block(p + i * 64);
  }
  char tail[128];
  int rem = len % 64;
  int t = 0;
  while (t < rem) {
    tail[t] = p[nblocks * 64 + t];
    t = t + 1;
  }
  tail[t] = 0x80;
  t = t + 1;
  int tail_len = 64;
  if (rem >= 56) { tail_len = 128; }
  while (t < tail_len - 8) {
    tail[t] = 0;
    t = t + 1;
  }
  int bits = len * 8;
  for (int i = 0; i < 8; i = i + 1) {
    tail[tail_len - 1 - i] = (bits >> (8 * i)) & 255;
  }
  sha1_block(tail);
  if (tail_len == 128) {
    sha1_block(tail + 64);
  }
}

void print_digest() {
  for (int i = 0; i < 5; i = i + 1) {
    println_int(h[i]);
  }
}

int main() {
  char abc[3];
  abc[0] = 'a';
  abc[1] = 'b';
  abc[2] = 'c';
  sha1(abc, 3);
  print_digest();   // a9993e36 4706816a ba3e2571 7850c26c 9cd0d89d

  int seed = 2021;
  for (int i = 0; i < @LEN@; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    data[i] = seed >> 8;
  }
  sha1(data, @LEN@);
  print_digest();
  return 0;
}
|}

let make ~len = Subst.apply template (Subst.int_bindings [ ("LEN", len) ])

let source = make ~len:4096
let source_small = make ~len:384
