(* MiBench network/dijkstra: single-source shortest paths on a dense
   pseudo-random 96-node graph (adjacency matrix, O(N^2) selection),
   repeated from several sources. *)

let template =
  {|
// dijkstra: shortest paths over a dense random digraph

int adj[@NN@];     // @N@ x @N@ weights
int dist[@N@];
int visited[@N@];

int main() {
  int n = @N@;
  int inf = 1000000000;
  int seed = 7;
  for (int i = 0; i < n; i = i + 1) {
    for (int j = 0; j < n; j = j + 1) {
      seed = (seed * 1103515245 + 12345) & 0x7fffffff;
      int w = seed % 1000;
      if (w < 700) {
        adj[i * n + j] = w + 1;
      } else {
        adj[i * n + j] = inf;   // no edge
      }
    }
  }
  int total = 0;
  int unreachable = 0;
  for (int src = 0; src < @SRC@; src = src + 1) {
    for (int i = 0; i < n; i = i + 1) {
      dist[i] = inf;
      visited[i] = 0;
    }
    dist[src * 11 % n] = 0;
    for (int round = 0; round < n; round = round + 1) {
      int best = -1;
      int best_d = inf;
      for (int i = 0; i < n; i = i + 1) {
        if (!visited[i] && dist[i] < best_d) {
          best = i;
          best_d = dist[i];
        }
      }
      if (best < 0) { break; }
      visited[best] = 1;
      for (int j = 0; j < n; j = j + 1) {
        int w = adj[best * n + j];
        if (w < inf && dist[best] + w < dist[j]) {
          dist[j] = dist[best] + w;
        }
      }
    }
    for (int i = 0; i < n; i = i + 1) {
      if (dist[i] == inf) {
        unreachable = unreachable + 1;
      } else {
        total = total + dist[i];
      }
    }
  }
  println_int(total);
  println_int(unreachable);
  return 0;
}
|}

let make ~n ~sources =
  Subst.apply template
    (Subst.int_bindings [ ("N", n); ("NN", n * n); ("SRC", sources) ])

let source = make ~n:96 ~sources:8
let source_small = make ~n:40 ~sources:1
