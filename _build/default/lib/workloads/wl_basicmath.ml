(* MiBench automotive/basicmath, integer edition: integer square roots,
   GCD grid, and a prime sieve.  Prints three checksums. *)

let template =
  {|
// basicmath: integer square root, gcd grid, prime sieve

int isqrt(int x) {
  if (x < 2) { return x; }
  int r = x;
  int y = (r + 1) / 2;
  while (y < r) {
    r = y;
    y = (r + x / r) / 2;
  }
  return r;
}

int gcd(int a, int b) {
  while (b != 0) {
    int t = b;
    b = a % b;
    a = t;
  }
  return a;
}

char sieve[@SIEVE@];

int main() {
  int sum = 0;
  for (int i = 0; i < @ISQRT@; i = i + 1) {
    sum = sum + isqrt(i);
  }
  println_int(sum);

  int g = 0;
  for (int i = 1; i <= @GCD@; i = i + 1) {
    for (int j = 1; j <= @GCD@; j = j + 1) {
      g = g + gcd(i, j);
    }
  }
  println_int(g);

  int n = @SIEVE@;
  for (int i = 0; i < n; i = i + 1) { sieve[i] = 1; }
  sieve[0] = 0;
  sieve[1] = 0;
  for (int i = 2; i * i < n; i = i + 1) {
    if (sieve[i]) {
      for (int j = i * i; j < n; j = j + i) { sieve[j] = 0; }
    }
  }
  int primes = 0;
  for (int i = 0; i < n; i = i + 1) {
    if (sieve[i]) { primes = primes + 1; }
  }
  println_int(primes);
  return 0;
}
|}

let make ~isqrt_n ~gcd_n ~sieve_n =
  Subst.apply template
    (Subst.int_bindings [ ("ISQRT", isqrt_n); ("GCD", gcd_n); ("SIEVE", sieve_n) ])

let source = make ~isqrt_n:30000 ~gcd_n:120 ~sieve_n:20000
let source_small = make ~isqrt_n:70 ~gcd_n:16 ~sieve_n:1200
