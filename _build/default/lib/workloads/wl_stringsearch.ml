(* MiBench office/stringsearch: Boyer-Moore-Horspool over a generated
   corpus with planted needles, plus a naive scan cross-check. *)

let template =
  {|
// stringsearch: Horspool matcher over an 8 KiB corpus

char corpus[@LEN@];
int skip[256];

int strlen_(char *s) {
  int n = 0;
  while (s[n] != 0) { n = n + 1; }
  return n;
}

int horspool_count(char *text, int n, char *pat) {
  int m = strlen_(pat);
  if (m == 0 || m > n) { return 0; }
  for (int i = 0; i < 256; i = i + 1) { skip[i] = m; }
  for (int i = 0; i < m - 1; i = i + 1) { skip[pat[i]] = m - 1 - i; }
  int count = 0;
  int pos = 0;
  while (pos <= n - m) {
    int j = m - 1;
    while (j >= 0 && text[pos + j] == pat[j]) { j = j - 1; }
    if (j < 0) {
      count = count + 1;
      pos = pos + 1;
    } else {
      pos = pos + skip[text[pos + m - 1]];
    }
  }
  return count;
}

int naive_count(char *text, int n, char *pat) {
  int m = strlen_(pat);
  int count = 0;
  for (int pos = 0; pos + m <= n; pos = pos + 1) {
    int j = 0;
    while (j < m && text[pos + j] == pat[j]) { j = j + 1; }
    if (j == m) { count = count + 1; }
  }
  return count;
}

void plant(char *text, int at, char *pat) {
  int m = strlen_(pat);
  for (int i = 0; i < m; i = i + 1) { text[at + i] = pat[i]; }
}

int main() {
  int n = @LEN@;
  int seed = 99;
  for (int i = 0; i < n; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    corpus[i] = 'a' + seed % 26;
  }
  plant(corpus, @P1@, "obfuscation");
  plant(corpus, @P2@, "hardware");
  plant(corpus, @P3@, "obfuscation");
  plant(corpus, @P4@, "signature");

  int total = 0;
  total = total + horspool_count(corpus, n, "obfuscation");
  total = total + horspool_count(corpus, n, "hardware");
  total = total + horspool_count(corpus, n, "signature");
  total = total + horspool_count(corpus, n, "decrypt");
  total = total + horspool_count(corpus, n, "the");
  println_int(total);

  int check = 0;
  check = check + naive_count(corpus, n, "obfuscation");
  check = check + naive_count(corpus, n, "hardware");
  check = check + naive_count(corpus, n, "signature");
  check = check + naive_count(corpus, n, "decrypt");
  check = check + naive_count(corpus, n, "the");
  if (total != check) {
    println_str("MISMATCH");
    return 1;
  }
  println_int(check);
  return 0;
}
|}

let make ~len =
  Subst.apply template
    (Subst.int_bindings
       [ ("LEN", len); ("P1", len / 80); ("P2", len / 4); ("P3", len / 2); ("P4", len - 192) ])

let source = make ~len:8192
let source_small = make ~len:768
