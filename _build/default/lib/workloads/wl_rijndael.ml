(* MiBench security/rijndael: AES-128 encryption.  The S-box is derived at
   runtime from GF(2^8) log/antilog tables (generator 3) plus the affine
   transform; the FIPS-197 appendix-B vector is encrypted first so the
   printed words are externally checkable, then an LCG-filled buffer is
   encrypted in ECB and checksummed. *)

let template =
  {|
// rijndael: AES-128, FIPS-197 vector self-check + ECB over a buffer

char sbox[256];
char logt[256];
char alog[256];
char roundkeys[176];
char state[16];
char buffer[@LEN@];

int xtime(int a) {
  int r = (a << 1) & 0xff;
  if (a & 0x80) { r ^= 0x1b; }
  return r;
}

int rotl8(int v, int n) {
  return ((v << n) | (v >> (8 - n))) & 0xff;
}

void build_tables() {
  // log/antilog over generator 3: alog[i] = 3^i in GF(2^8)
  int t = 1;
  for (int i = 0; i < 255; i++) {
    alog[i] = t;
    logt[t] = i;
    t = t ^ xtime(t);        // multiply by 3
  }
  sbox[0] = 0x63;
  for (int x = 1; x < 256; x++) {
    int inv = alog[(255 - logt[x]) % 255];
    sbox[x] = inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^ rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63;
  }
}

void expand_key(char *key) {
  for (int i = 0; i < 16; i++) { roundkeys[i] = key[i]; }
  int rcon = 1;
  for (int w = 4; w < 44; w++) {
    int base = 4 * w;
    int prev = base - 4;
    if (w % 4 == 0) {
      // rotate previous word, substitute, xor rcon
      roundkeys[base]     = roundkeys[16 * (w / 4 - 1)]     ^ sbox[roundkeys[prev + 1]] ^ rcon;
      roundkeys[base + 1] = roundkeys[16 * (w / 4 - 1) + 1] ^ sbox[roundkeys[prev + 2]];
      roundkeys[base + 2] = roundkeys[16 * (w / 4 - 1) + 2] ^ sbox[roundkeys[prev + 3]];
      roundkeys[base + 3] = roundkeys[16 * (w / 4 - 1) + 3] ^ sbox[roundkeys[prev]];
      rcon = xtime(rcon);
    } else {
      for (int b = 0; b < 4; b++) {
        roundkeys[base + b] = roundkeys[base - 16 + b] ^ roundkeys[prev + b];
      }
    }
  }
}

void add_round_key(int round) {
  for (int i = 0; i < 16; i++) { state[i] ^= roundkeys[16 * round + i]; }
}

void sub_bytes() {
  for (int i = 0; i < 16; i++) { state[i] = sbox[state[i]]; }
}

void shift_rows() {
  char tmp[16];
  for (int c = 0; c < 4; c++) {
    for (int r = 0; r < 4; r++) {
      tmp[4 * c + r] = state[4 * ((c + r) % 4) + r];
    }
  }
  for (int i = 0; i < 16; i++) { state[i] = tmp[i]; }
}

void mix_columns() {
  for (int c = 0; c < 4; c++) {
    int s0 = state[4 * c];
    int s1 = state[4 * c + 1];
    int s2 = state[4 * c + 2];
    int s3 = state[4 * c + 3];
    int all = s0 ^ s1 ^ s2 ^ s3;
    state[4 * c]     = s0 ^ all ^ xtime(s0 ^ s1);
    state[4 * c + 1] = s1 ^ all ^ xtime(s1 ^ s2);
    state[4 * c + 2] = s2 ^ all ^ xtime(s2 ^ s3);
    state[4 * c + 3] = s3 ^ all ^ xtime(s3 ^ s0);
  }
}

void encrypt_block(char *inout) {
  for (int i = 0; i < 16; i++) { state[i] = inout[i]; }
  add_round_key(0);
  for (int round = 1; round < 10; round++) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
  for (int i = 0; i < 16; i++) { inout[i] = state[i]; }
}

int main() {
  build_tables();
  // FIPS-197 appendix B: key 000102...0f, plaintext 00112233...eeff
  char key[16];
  char block[16];
  for (int i = 0; i < 16; i++) {
    key[i] = i;
    block[i] = i * 17;   // 0x00, 0x11, 0x22, ..., 0xff
  }
  expand_key(key);
  encrypt_block(block);
  // expected: 69 c4 e0 d8 6a 7b 04 30 d8 cd b7 80 70 b4 c5 5a
  for (int i = 0; i < 16; i += 4) {
    println_int((block[i] << 24) | (block[i + 1] << 16) | (block[i + 2] << 8) | block[i + 3]);
  }

  // ECB over a pseudo-random buffer
  int seed = 77;
  for (int i = 0; i < @LEN@; i++) {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    buffer[i] = seed >> 11;
  }
  for (int off = 0; off + 16 <= @LEN@; off += 16) {
    encrypt_block(buffer + off);
  }
  int checksum = 0;
  for (int i = 0; i < @LEN@; i++) {
    checksum = (checksum * 131 + buffer[i]) % 1000000007;
  }
  println_int(checksum);
  return 0;
}
|}

let make ~len = Subst.apply template (Subst.int_bindings [ ("LEN", len) ])

let source = make ~len:2048
let source_small = make ~len:64
