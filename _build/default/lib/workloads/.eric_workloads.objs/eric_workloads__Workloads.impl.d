lib/workloads/workloads.ml: List Wl_adpcm Wl_basicmath Wl_bitcount Wl_crc32 Wl_dijkstra Wl_fft Wl_qsort Wl_rijndael Wl_sha Wl_stringsearch
