lib/workloads/wl_dijkstra.ml: Subst
