lib/workloads/wl_bitcount.ml: Subst
