lib/workloads/wl_fft.ml: Subst
