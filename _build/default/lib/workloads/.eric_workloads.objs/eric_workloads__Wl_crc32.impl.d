lib/workloads/wl_crc32.ml: Subst
