lib/workloads/workloads.mli:
