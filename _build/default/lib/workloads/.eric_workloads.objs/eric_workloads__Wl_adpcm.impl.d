lib/workloads/wl_adpcm.ml: Subst
