lib/workloads/wl_rijndael.ml: Subst
