lib/workloads/wl_basicmath.ml: Subst
