lib/workloads/wl_sha.ml: Subst
