lib/workloads/wl_stringsearch.ml: Subst
