lib/workloads/wl_qsort.ml: Subst
