lib/workloads/subst.ml: Buffer List String
