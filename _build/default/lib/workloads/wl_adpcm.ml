(* MiBench telecomm/adpcm: IMA ADPCM codec.  Encodes a synthesised
   waveform to 4-bit deltas, decodes it back, and checks the
   reconstruction error stays within the codec's step bound. *)

let template =
  {|
// adpcm: IMA ADPCM encode/decode round trip

int step_table[89] = {
  7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31,
  34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143,
  157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544,
  598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707,
  1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871,
  5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635,
  13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

int index_table[16] = {-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8};

int samples[@N@];
int deltas[@N@];
int decoded[@N@];

int clamp(int v, int lo, int hi) {
  if (v < lo) { return lo; }
  if (v > hi) { return hi; }
  return v;
}

void encode(int n) {
  int valpred = 0;
  int index = 0;
  for (int i = 0; i < n; i = i + 1) {
    int step = step_table[index];
    int diff = samples[i] - valpred;
    int sign = 0;
    if (diff < 0) {
      sign = 8;
      diff = 0 - diff;
    }
    int delta = 0;
    int vpdiff = step >> 3;
    if (diff >= step) {
      delta = 4;
      diff = diff - step;
      vpdiff = vpdiff + step;
    }
    step = step >> 1;
    if (diff >= step) {
      delta = delta | 2;
      diff = diff - step;
      vpdiff = vpdiff + step;
    }
    step = step >> 1;
    if (diff >= step) {
      delta = delta | 1;
      vpdiff = vpdiff + step;
    }
    if (sign) {
      valpred = valpred - vpdiff;
    } else {
      valpred = valpred + vpdiff;
    }
    valpred = clamp(valpred, -32768, 32767);
    delta = delta | sign;
    deltas[i] = delta;
    index = clamp(index + index_table[delta], 0, 88);
  }
}

void decode(int n) {
  int valpred = 0;
  int index = 0;
  for (int i = 0; i < n; i = i + 1) {
    int delta = deltas[i];
    int step = step_table[index];
    int vpdiff = step >> 3;
    if (delta & 4) { vpdiff = vpdiff + step; }
    if (delta & 2) { vpdiff = vpdiff + (step >> 1); }
    if (delta & 1) { vpdiff = vpdiff + (step >> 2); }
    if (delta & 8) {
      valpred = valpred - vpdiff;
    } else {
      valpred = valpred + vpdiff;
    }
    valpred = clamp(valpred, -32768, 32767);
    decoded[i] = valpred;
    index = clamp(index + index_table[delta], 0, 88);
  }
}

int main() {
  int n = @N@;
  // Synthesised waveform: ramps with pseudo-random jitter.
  int seed = 5;
  int phase = 0;
  int dir = 37;
  for (int i = 0; i < n; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    phase = phase + dir;
    if (phase > 12000) { dir = 0 - 41; }
    if (phase < -12000) { dir = 53; }
    samples[i] = clamp(phase + seed % 257 - 128, -32768, 32767);
  }
  encode(n);
  decode(n);
  int checksum = 0;
  int worst = 0;
  for (int i = 0; i < n; i = i + 1) {
    checksum = (checksum * 31 + deltas[i]) % 1000000007;
    int err = samples[i] - decoded[i];
    if (err < 0) { err = 0 - err; }
    if (err > worst) { worst = err; }
  }
  println_int(checksum);
  println_int(worst);
  // Reconstruction error must stay within the largest quantiser step.
  if (worst > 40000) {
    println_str("DIVERGED");
    return 1;
  }
  return 0;
}
|}

let make ~n = Subst.apply template (Subst.int_bindings [ ("N", n) ])

let source = make ~n:4096
let source_small = make ~n:384
