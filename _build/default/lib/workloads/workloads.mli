(** The evaluation workload suite: eight MiBench-style programs written in
    MiniC, mirroring the benchmark categories the paper selected from
    MiBench ("programs of different sizes", automotive / network /
    security / telecomm / office).

    Each workload prints checksums on stdout and exits 0; several embed
    cross-implementation self-checks (bitcount's four popcounts must
    agree, crc32's table-driven vs bitwise, stringsearch's Horspool vs
    naive, sha's FIPS "abc" vector), so a wrong compilation or a corrupted
    decryption cannot silently pass. *)

type t = {
  name : string;
  description : string;
  source : string;  (** MiniC source, reference ("large") dataset *)
  source_small : string;
      (** same program with a reduced ("small") dataset — MiBench ships
          small/large input sets, and the Fig-7 experiment uses the small
          one so load-time costs are visible against the run length, as on
          the paper's 25 MHz FPGA *)
}

val all : t list
(** In a stable order: basicmath, bitcount, qsort, dijkstra, crc32,
    stringsearch, sha, adpcm, rijndael, fft. *)

val by_name : string -> t option

val names : string list
