(* MiBench telecomm/fft: 256-point radix-2 fixed-point FFT (Q14 twiddles,
   64-bit accumulators), fed a pure tone plus jitter.  Self-checks: the
   dominant output bin must be the tone frequency, and the inverse
   transform must reconstruct the input within a small fixed-point error
   bound. *)

let template =
  {|
// fft: 256-point radix-2 DIT, Q14 twiddle factors

// sin(2*pi*k/256) in Q14 for k = 0..64 (quarter wave + endpoint)
int sine_q14[65] = {
  0, 402, 804, 1205, 1606, 2006, 2404, 2801, 3196, 3590,
  3981, 4370, 4756, 5139, 5520, 5897, 6270, 6639, 7005, 7366,
  7723, 8076, 8423, 8765, 9102, 9434, 9760, 10080, 10394, 10702,
  11003, 11297, 11585, 11866, 12140, 12406, 12665, 12916, 13160, 13395,
  13623, 13842, 14053, 14256, 14449, 14635, 14811, 14978, 15137, 15286,
  15426, 15557, 15679, 15791, 15893, 15986, 16069, 16143, 16207, 16261,
  16305, 16340, 16364, 16379, 16384};

int re[256];
int im[256];
int orig[256];

// sin(2*pi*k/256) for any k, via quarter-wave symmetry
int sin256(int k) {
  k = k % 256;
  if (k < 0) { k += 256; }
  if (k <= 64) { return sine_q14[k]; }
  if (k <= 128) { return sine_q14[128 - k]; }
  if (k <= 192) { return 0 - sine_q14[k - 128]; }
  return 0 - sine_q14[256 - k];
}

int cos256(int k) { return sin256(k + 64); }

void bit_reverse(int n) {
  int j = 0;
  for (int i = 0; i < n - 1; i++) {
    if (i < j) {
      int tr = re[i]; re[i] = re[j]; re[j] = tr;
      int ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
    int m = n >> 1;
    while (m >= 1 && j >= m) {
      j -= m;
      m >>= 1;
    }
    j += m;
  }
}

// inverse=0: W = exp(-2*pi*i*k/n); inverse=1: conjugate twiddles
void fft(int n, int inverse) {
  bit_reverse(n);
  int len = 2;
  while (len <= n) {
    int half = len / 2;
    int step = 256 / len;
    for (int i = 0; i < n; i += len) {
      for (int k = 0; k < half; k++) {
        int tw = k * step;
        int wr = cos256(tw);
        int wi = inverse ? sin256(tw) : 0 - sin256(tw);
        int ur = re[i + k];
        int ui = im[i + k];
        int vr = (re[i + k + half] * wr - im[i + k + half] * wi) >> 14;
        int vi = (re[i + k + half] * wi + im[i + k + half] * wr) >> 14;
        re[i + k] = ur + vr;
        im[i + k] = ui + vi;
        re[i + k + half] = ur - vr;
        im[i + k + half] = ui - vi;
      }
    }
    len <<= 1;
  }
}

int iabs(int v) { return v < 0 ? 0 - v : v; }

int main() {
  int n = 256;
  int tone = @TONE@;
  int seed = 31;
  for (int i = 0; i < n; i++) {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    re[i] = (8192 * sin256(tone * i)) >> 14;   // amplitude 8192 tone
    re[i] += seed % 65 - 32;                   // small jitter
    im[i] = 0;
    orig[i] = re[i];
  }

  for (int pass = 0; pass < @PASSES@; pass++) {
    // forward
    for (int i = 0; i < n; i++) { re[i] = orig[i]; im[i] = 0; }
    fft(n, 0);

    if (pass == 0) {
      // dominant bin: scan positive-frequency half
      int best = 0;
      int best_mag = 0;
      for (int k = 1; k < n / 2; k++) {
        int mag = re[k] * re[k] + im[k] * im[k];
        if (mag > best_mag) {
          best_mag = mag;
          best = k;
        }
      }
      println_int(best);                       // must equal the tone bin

      // inverse and reconstruction error (inverse needs the 1/n scale)
      fft(n, 1);
      int maxerr = 0;
      for (int i = 0; i < n; i++) {
        int err = iabs(re[i] / n - orig[i]);
        if (err > maxerr) { maxerr = err; }
      }
      println_int(maxerr < 24 ? 1 : 0);        // Q14 round-off stays small
      int checksum = 0;
      for (int i = 0; i < n; i++) {
        checksum = (checksum * 31 + iabs(re[i] / n)) % 1000000007;
      }
      println_int(checksum);
    }
  }
  return 0;
}
|}

let make ~tone ~passes =
  Subst.apply template (Subst.int_bindings [ ("TONE", tone); ("PASSES", passes) ])

let source = make ~tone:10 ~passes:12
let source_small = make ~tone:10 ~passes:1
