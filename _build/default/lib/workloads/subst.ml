(* Token substitution for workload source templates: "@NAME@" -> value.
   MiniC sources contain '%' (the modulo operator), so Printf-style
   templates are unusable; this replaces explicit tokens instead and
   raises on any token left unresolved, which catches typos in templates
   at workload-construction time. *)

let apply template bindings =
  let out =
    List.fold_left
      (fun acc (name, value) ->
        let token = "@" ^ name ^ "@" in
        let buf = Buffer.create (String.length acc) in
        let tlen = String.length token in
        let rec go from =
          match String.index_from_opt acc from '@' with
          | Some at when at + tlen <= String.length acc && String.sub acc at tlen = token ->
            Buffer.add_substring buf acc from (at - from);
            Buffer.add_string buf value;
            go (at + tlen)
          | Some at ->
            Buffer.add_substring buf acc from (at - from + 1);
            go (at + 1)
          | None ->
            Buffer.add_substring buf acc from (String.length acc - from)
        in
        go 0;
        Buffer.contents buf)
      template bindings
  in
  (match String.index_opt out '@' with
  | Some i ->
    let stop = min (String.length out) (i + 20) in
    invalid_arg ("Subst.apply: unresolved token near: " ^ String.sub out i (stop - i))
  | None -> ());
  out

let int_bindings bindings = List.map (fun (n, v) -> (n, string_of_int v)) bindings
