(* MiBench automotive/bitcount: four population-count implementations over
   the same pseudo-random stream; all four totals must agree, so the
   printed lines double as a self-check. *)

let template =
  {|
// bitcount: four popcount strategies over an LCG stream

int nibble_table[16] = {0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4};
int byte_table[256];

int count_naive(int v) {
  int n = 0;
  for (int i = 0; i < 32; i = i + 1) {
    n = n + ((v >> i) & 1);
  }
  return n;
}

int count_kernighan(int v) {
  int n = 0;
  while (v != 0) {
    v = v & (v - 1);
    n = n + 1;
  }
  return n;
}

int count_nibbles(int v) {
  int n = 0;
  for (int i = 0; i < 8; i = i + 1) {
    n = n + nibble_table[(v >> (4 * i)) & 15];
  }
  return n;
}

int count_bytes(int v) {
  return byte_table[v & 255] + byte_table[(v >> 8) & 255]
       + byte_table[(v >> 16) & 255] + byte_table[(v >> 24) & 255];
}

int main() {
  for (int i = 0; i < 256; i = i + 1) {
    byte_table[i] = nibble_table[i & 15] + nibble_table[(i >> 4) & 15];
  }
  int seed = 1;
  int a = 0;
  int b = 0;
  int c = 0;
  int d = 0;
  for (int i = 0; i < @ITER@; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    int v = seed & 0xffffffff;
    a = a + count_naive(v);
    b = b + count_kernighan(v);
    c = c + count_nibbles(v);
    d = d + count_bytes(v);
  }
  println_int(a);
  println_int(b);
  println_int(c);
  println_int(d);
  if (a != b) { println_str("MISMATCH"); return 1; }
  if (a != c) { println_str("MISMATCH"); return 1; }
  if (a != d) { println_str("MISMATCH"); return 1; }
  return 0;
}
|}

let make ~iterations = Subst.apply template (Subst.int_bindings [ ("ITER", iterations) ])

let source = make ~iterations:20000
let source_small = make ~iterations:140
