(* MiBench telecomm/crc32: table-driven CRC-32 (reflected, polynomial
   0xEDB88320) over a pseudo-random buffer, cross-checked against a
   bitwise implementation on a prefix. *)

let template =
  {|
// crc32: table-driven CRC-32 over 16 KiB, with a bitwise cross-check

int crc_table[256];
char buffer[@LEN@];

void build_table() {
  for (int i = 0; i < 256; i = i + 1) {
    int c = i;
    for (int k = 0; k < 8; k = k + 1) {
      if (c & 1) {
        c = 0xedb88320 ^ ((c & 0xffffffff) >> 1);
      } else {
        c = (c & 0xffffffff) >> 1;
      }
    }
    crc_table[i] = c;
  }
}

int crc32_table(char *p, int len) {
  int c = 0xffffffff;
  for (int i = 0; i < len; i = i + 1) {
    c = crc_table[(c ^ p[i]) & 255] ^ ((c & 0xffffffff) >> 8);
  }
  return (c ^ 0xffffffff) & 0xffffffff;
}

int crc32_bitwise(char *p, int len) {
  int c = 0xffffffff;
  for (int i = 0; i < len; i = i + 1) {
    c = c ^ p[i];
    for (int k = 0; k < 8; k = k + 1) {
      if (c & 1) {
        c = 0xedb88320 ^ ((c & 0xffffffff) >> 1);
      } else {
        c = (c & 0xffffffff) >> 1;
      }
    }
  }
  return (c ^ 0xffffffff) & 0xffffffff;
}

int main() {
  build_table();
  int seed = 123;
  for (int i = 0; i < @LEN@; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    buffer[i] = seed >> 16;
  }
  int full = crc32_table(buffer, @LEN@);
  int prefix_fast = crc32_table(buffer, @PREFIX@);
  int prefix_slow = crc32_bitwise(buffer, @PREFIX@);
  println_int(full);
  println_int(prefix_fast);
  if (prefix_fast != prefix_slow) {
    println_str("MISMATCH");
    return 1;
  }
  return 0;
}
|}

let make ~len ~prefix =
  Subst.apply template (Subst.int_bindings [ ("LEN", len); ("PREFIX", prefix) ])

let source = make ~len:16384 ~prefix:512
let source_small = make ~len:768 ~prefix:192
