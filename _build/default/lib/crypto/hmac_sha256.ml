let block_size = Sha256.block_size

let normalize_key key =
  let key = if Bytes.length key > block_size then Sha256.digest key else key in
  let out = Bytes.make block_size '\000' in
  Bytes.blit key 0 out 0 (Bytes.length key);
  out

let xor_pad key pad = Bytes.map (fun c -> Char.chr (Char.code c lxor pad)) key

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.feed inner (xor_pad key 0x36);
  Sha256.feed inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.feed outer (xor_pad key 0x5C);
  Sha256.feed outer inner_digest;
  Sha256.finalize outer

let mac_string ~key s = mac ~key (Bytes.of_string s)
