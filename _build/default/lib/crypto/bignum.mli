(** Arbitrary-precision unsigned integers, from scratch.

    Substrate for the RSA key-delivery extension (the paper's stated future
    work: "bring RSA-based key generation and usage to ERIC").  Numbers are
    little-endian arrays of 24-bit limbs; all operations are purely
    functional.  Modular multiplication is interleaved shift-and-add (one
    conditional subtraction per step), so [modexp] needs no general
    division on its hot path; general [divmod] (binary long division)
    exists for the extended Euclid used by key generation.

    This is educational cryptography: no blinding, no constant-time
    guarantees, demo-grade sizes.  The XOR-cipher core of ERIC does not
    depend on it. *)

type t

val zero : t
val one : t
val of_int : int -> t
(** Raises [Invalid_argument] on negatives. *)

val to_int_opt : t -> int option
(** [None] when the value exceeds [max_int]. *)

val of_bytes_be : bytes -> t
val to_bytes_be : ?len:int -> t -> bytes
(** Big-endian; [len] left-pads with zeros (raises if the value needs more
    than [len] bytes). *)

val of_hex : string -> t
val to_hex : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_even : t -> bool
val num_bits : t -> int
val bit : t -> int -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** Raises [Invalid_argument] when the result would be negative. *)

val mul : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [(q, r)] with [a = q*b + r], [r < b].  Raises [Division_by_zero]. *)

val rem : t -> t -> t

val modmul : t -> t -> m:t -> t
(** [(a * b) mod m] without forming the double-width product. *)

val modexp : t -> t -> m:t -> t
(** [base^exp mod m], square-and-multiply over {!modmul}. *)

val gcd : t -> t -> t

val modinv : t -> m:t -> t option
(** Multiplicative inverse mod [m] when [gcd a m = 1]. *)

val random_bits : Eric_util.Prng.t -> bits:int -> t
(** Uniform with exactly [bits] bits (top bit set). *)

val random_below : Eric_util.Prng.t -> t -> t
(** Uniform in [\[0, bound)]. *)

val is_probable_prime : ?rounds:int -> Eric_util.Prng.t -> t -> bool
(** Miller-Rabin after trial division by small primes; [rounds] defaults
    to 20. *)

val random_prime : Eric_util.Prng.t -> bits:int -> t
(** An odd probable prime with exactly [bits] bits. *)

val pp : Format.formatter -> t -> unit
