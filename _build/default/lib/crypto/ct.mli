(** Constant-time byte comparison.

    The Validation Unit compares the recomputed signature with the decrypted
    signature that travelled with the program; a data-dependent early-exit
    compare would leak match prefixes through timing, the very side channel
    class the paper's dynamic-analysis threat model worries about. *)

val equal : bytes -> bytes -> bool
(** Length mismatch returns [false] immediately (lengths are public); byte
    comparison itself runs in time independent of the contents. *)
