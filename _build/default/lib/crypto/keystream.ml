type t = {
  key : bytes;
  mutable pos : int; (* absolute byte offset in the stream *)
  mutable block_index : int; (* index of the block cached in [block], or -1 *)
  block : Bytes.t;
}

let block_size = Sha256.digest_size

let create ~key = { key = Bytes.copy key; pos = 0; block_index = -1; block = Bytes.create block_size }
let at ~key ~offset =
  if offset < 0 then invalid_arg "Keystream.at: negative offset";
  { key = Bytes.copy key; pos = offset; block_index = -1; block = Bytes.create block_size }

let offset t = t.pos

let fill_block t index =
  let ctx = Sha256.init () in
  Sha256.feed ctx t.key;
  let ctr = Bytes.create 8 in
  Eric_util.Bytesx.set_u64 ctr 0 (Int64.of_int index);
  Sha256.feed ctx ctr;
  Bytes.blit (Sha256.finalize ctx) 0 t.block 0 block_size;
  t.block_index <- index

let take t n =
  if n < 0 then invalid_arg "Keystream.take: negative length";
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    let abs = t.pos + i in
    let index = abs / block_size in
    if index <> t.block_index then fill_block t index;
    Bytes.set out i (Bytes.get t.block (abs mod block_size))
  done;
  t.pos <- t.pos + n;
  out

let xor ~key ?(offset = 0) data =
  let t = at ~key ~offset in
  let ks = take t (Bytes.length data) in
  let out = Bytes.create (Bytes.length data) in
  Eric_util.Bytesx.xor_into ~src:data ~key:ks ~dst:out;
  out
