(** The paper's encryption function: an XOR cipher over instruction parcels.

    Encryption and decryption are the same operation (XOR against the
    keystream), matching the paper: "the encrypted message is accessed back
    in symmetrical steps".  Keystream bytes are addressed by the parcel's
    byte offset inside the text section, so a partially encrypted program can
    be decrypted parcel-by-parcel without regenerating the whole stream.

    Field-masked variants XOR only the bits selected by a mask — the paper's
    third encryption method ("partial encryption of a select few instructions
    ... by specifying the target bits in the instruction encoding"), e.g.
    encrypting only load/store immediates to hide memory traces while leaving
    opcodes legible. *)

val apply_bytes : key:bytes -> ?offset:int -> bytes -> bytes
(** Whole-buffer XOR against the stream starting at [offset]. *)

val apply_word32 : key:bytes -> offset:int -> int32 -> int32
(** XOR a 32-bit instruction word with its 4 keystream bytes. *)

val apply_word16 : key:bytes -> offset:int -> int -> int
(** XOR a 16-bit compressed parcel (low 16 bits of the int are used). *)

val apply_field32 : key:bytes -> offset:int -> mask:int32 -> int32 -> int32
(** XOR only the bits of the word selected by [mask]. *)

val apply_field16 : key:bytes -> offset:int -> mask:int -> int -> int
