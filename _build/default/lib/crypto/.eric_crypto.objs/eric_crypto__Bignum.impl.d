lib/crypto/bignum.ml: Array Buffer Bytes Char Eric_util Format List Stdlib String
