lib/crypto/keystream.mli:
