lib/crypto/bignum.mli: Eric_util Format
