lib/crypto/sha256.ml: Array Bytes Char Eric_util Int64
