lib/crypto/ct.mli:
