lib/crypto/rsa.mli: Bignum Eric_util
