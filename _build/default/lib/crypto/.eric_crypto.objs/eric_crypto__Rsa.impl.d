lib/crypto/rsa.ml: Bignum Bytes Char Ct Eric_util Printf Sha256
