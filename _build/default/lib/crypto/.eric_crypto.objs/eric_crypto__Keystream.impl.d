lib/crypto/keystream.ml: Bytes Eric_util Int64 Sha256
