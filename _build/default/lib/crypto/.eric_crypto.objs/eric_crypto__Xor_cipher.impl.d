lib/crypto/xor_cipher.ml: Eric_util Int32 Keystream
