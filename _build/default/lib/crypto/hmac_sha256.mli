(** HMAC-SHA-256 (RFC 2104).

    The paper's Key Management Unit derives PUF-based keys by "passing the
    PUF key through a function (e.g., secure hash algorithm)".  We use HMAC
    as that keyed derivation primitive so the derivation context (epoch,
    target label, environmental binding) keys the hash rather than being
    plain concatenation. *)

val mac : key:bytes -> bytes -> bytes
(** 32-byte tag. *)

val mac_string : key:bytes -> string -> bytes
