let equal a b =
  if Bytes.length a <> Bytes.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to Bytes.length a - 1 do
      acc := !acc lor (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i))
    done;
    !acc = 0
  end
