(* Little-endian 24-bit limbs, normalised (no trailing zero limbs); the
   empty array is zero.  24-bit limbs keep schoolbook products and carry
   accumulation comfortably inside OCaml's 63-bit native int. *)

type t = int array

let limb_bits = 24
let limb_mask = (1 lsl limb_bits) - 1

let zero : t = [||]
let one : t = [| 1 |]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int v =
  if v < 0 then invalid_arg "Bignum.of_int: negative";
  let rec go v acc = if v = 0 then acc else go (v lsr limb_bits) ((v land limb_mask) :: acc) in
  normalize (Array.of_list (List.rev (go v [])))

let to_int_opt (a : t) =
  if Array.length a * limb_bits > 62 && Array.length a > 3 then None
  else begin
    let v = ref 0 and overflow = ref false in
    for i = Array.length a - 1 downto 0 do
      if !v > max_int lsr limb_bits then overflow := true
      else v := (!v lsl limb_bits) lor a.(i)
    done;
    if !overflow then None else Some !v
  end

let is_zero (a : t) = Array.length a = 0
let is_even (a : t) = Array.length a = 0 || a.(0) land 1 = 0

let num_bits (a : t) =
  if is_zero a then 0
  else begin
    let top = a.(Array.length a - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((Array.length a - 1) * limb_bits) + width top 0
  end

let bit (a : t) i =
  let limb = i / limb_bits in
  if limb >= Array.length a then false else a.(limb) land (1 lsl (i mod limb_bits)) <> 0

let compare (a : t) (b : t) =
  if Array.length a <> Array.length b then Stdlib.compare (Array.length a) (Array.length b)
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (Array.length a - 1)
  end

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let n = max (Array.length a) (Array.length b) in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let av = if i < Array.length a then a.(i) else 0 in
    let bv = if i < Array.length b then b.(i) else 0 in
    let s = av + bv + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  normalize out

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let out = Array.make (Array.length a) 0 in
  let borrow = ref 0 in
  for i = 0 to Array.length a - 1 do
    let bv = if i < Array.length b then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    if d < 0 then begin
      out.(i) <- d + limb_mask + 1;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let mul (a : t) (b : t) : t =
  if is_zero a || is_zero b then zero
  else begin
    let out = Array.make (Array.length a + Array.length b) 0 in
    for i = 0 to Array.length a - 1 do
      let carry = ref 0 in
      for j = 0 to Array.length b - 1 do
        let acc = out.(i + j) + (a.(i) * b.(j)) + !carry in
        out.(i + j) <- acc land limb_mask;
        carry := acc lsr limb_bits
      done;
      let k = ref (i + Array.length b) in
      while !carry <> 0 do
        let acc = out.(!k) + !carry in
        out.(!k) <- acc land limb_mask;
        carry := acc lsr limb_bits;
        incr k
      done
    done;
    normalize out
  end

let shift_left (a : t) bits =
  if bits < 0 then invalid_arg "Bignum.shift_left: negative";
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and rem = bits mod limb_bits in
    let out = Array.make (Array.length a + limbs + 1) 0 in
    for i = 0 to Array.length a - 1 do
      let v = a.(i) lsl rem in
      out.(i + limbs) <- out.(i + limbs) lor (v land limb_mask);
      out.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize out
  end

let shift_right (a : t) bits =
  if bits < 0 then invalid_arg "Bignum.shift_right: negative";
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and rem = bits mod limb_bits in
    if limbs >= Array.length a then zero
    else begin
      let n = Array.length a - limbs in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limbs) lsr rem in
        let hi = if rem > 0 && i + limbs + 1 < Array.length a then a.(i + limbs + 1) lsl (limb_bits - rem) else 0 in
        out.(i) <- (lo lor hi) land limb_mask
      done;
      normalize out
    end
  end

let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    (* Binary long division over a mutable remainder window. *)
    let shift = num_bits a - num_bits b in
    let q = Array.make (Array.length a) 0 in
    let r = ref a and d = ref (shift_left b shift) in
    for i = shift downto 0 do
      if compare !r !d >= 0 then begin
        r := sub !r !d;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end;
      d := shift_right !d 1
    done;
    (normalize q, !r)
  end

let rem a b = snd (divmod a b)

(* Interleaved modular multiplication: scans [a]'s bits high to low,
   doubling and conditionally adding [b], reducing by at most two
   subtractions per step.  Both inputs must already be < m. *)
let modmul (a : t) (b : t) ~m =
  if is_zero m then raise Division_by_zero;
  let a = if compare a m >= 0 then rem a m else a in
  let b = if compare b m >= 0 then rem b m else b in
  let result = ref zero in
  for i = num_bits a - 1 downto 0 do
    result := add !result !result;
    if compare !result m >= 0 then result := sub !result m;
    if bit a i then begin
      result := add !result b;
      if compare !result m >= 0 then result := sub !result m
    end
  done;
  !result

let modexp base exp ~m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else begin
    let result = ref one and b = ref (rem base m) in
    for i = 0 to num_bits exp - 1 do
      if bit exp i then result := modmul !result !b ~m;
      b := modmul !b !b ~m
    done;
    !result
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let modinv a ~m =
  (* Extended Euclid with signed coefficients tracked as (sign, magnitude). *)
  let rec go r0 r1 (s0_sign, s0) (s1_sign, s1) =
    if is_zero r1 then if equal r0 one then Some (s0_sign, s0) else None
    else begin
      let q, r2 = divmod r0 r1 in
      (* s2 = s0 - q*s1 *)
      let qs1 = mul q s1 in
      let s2 =
        match (s0_sign, s1_sign) with
        | true, true -> if compare s0 qs1 >= 0 then (true, sub s0 qs1) else (false, sub qs1 s0)
        | true, false -> (true, add s0 qs1)
        | false, true -> (false, add s0 qs1)
        | false, false -> if compare s0 qs1 >= 0 then (false, sub s0 qs1) else (true, sub qs1 s0)
      in
      go r1 r2 (s1_sign, s1) s2
    end
  in
  match go m (rem a m) (true, zero) (true, one) with
  | None -> None
  | Some (sign, v) ->
    let v = rem v m in
    Some (if sign || is_zero v then v else sub m v)

(* 24-bit limbs are exactly three bytes, so byte conversion indexes limbs
   directly instead of dividing. *)
let of_bytes_be b =
  let nbytes = Bytes.length b in
  let limbs = Array.make ((nbytes + 2) / 3) 0 in
  for i = 0 to nbytes - 1 do
    (* i-th byte from the end is little-endian byte index *)
    let le = nbytes - 1 - i in
    limbs.(le / 3) <- limbs.(le / 3) lor (Char.code (Bytes.get b i) lsl (8 * (le mod 3)))
  done;
  normalize limbs

let to_bytes_be ?len (a : t) =
  let needed = (num_bits a + 7) / 8 in
  let len = match len with None -> max needed 1 | Some l -> l in
  if needed > len then invalid_arg "Bignum.to_bytes_be: value too large for len";
  let out = Bytes.make len '\000' in
  for le = 0 to needed - 1 do
    let v = (a.(le / 3) lsr (8 * (le mod 3))) land 0xFF in
    Bytes.set out (len - 1 - le) (Char.chr v)
  done;
  out

let hex_digits = "0123456789abcdef"

let to_hex (a : t) =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let started = ref false in
    for i = (num_bits a + 3) / 4 - 1 downto 0 do
      let nibble =
        (if bit a ((4 * i) + 3) then 8 else 0)
        + (if bit a ((4 * i) + 2) then 4 else 0)
        + (if bit a ((4 * i) + 1) then 2 else 0)
        + if bit a (4 * i) then 1 else 0
      in
      if nibble <> 0 || !started then begin
        started := true;
        Buffer.add_char buf hex_digits.[nibble]
      end
    done;
    if Buffer.length buf = 0 then "0" else Buffer.contents buf
  end

let of_hex s =
  let v = ref zero in
  String.iter
    (fun c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> invalid_arg "Bignum.of_hex: non-hex character"
      in
      v := add (shift_left !v 4) (of_int d))
    s;
  !v

let pp fmt a = Format.fprintf fmt "0x%s" (to_hex a)

(* ------------------------------------------------------------------ *)
(* Randomness and primality                                            *)
(* ------------------------------------------------------------------ *)

let random_bits rng ~bits =
  if bits <= 0 then invalid_arg "Bignum.random_bits: bits must be positive";
  let bytes = Eric_util.Prng.bytes rng ~len:((bits + 7) / 8) in
  let v = ref (of_bytes_be bytes) in
  (* trim to width, then force the top bit *)
  v := rem !v (shift_left one bits);
  v := add (rem !v (shift_left one (bits - 1))) (shift_left one (bits - 1));
  !v

let random_below rng bound =
  if is_zero bound then invalid_arg "Bignum.random_below: zero bound";
  let bits = num_bits bound in
  let rec draw attempts =
    if attempts > 1000 then rem (of_bytes_be (Eric_util.Prng.bytes rng ~len:((bits + 7) / 8))) bound
    else begin
      let v = rem (of_bytes_be (Eric_util.Prng.bytes rng ~len:((bits + 7) / 8))) (shift_left one bits) in
      if compare v bound < 0 then v else draw (attempts + 1)
    end
  in
  draw 0

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71; 73; 79; 83; 89;
    97; 101; 103; 107; 109; 113; 127; 131; 137; 139; 149; 151; 157; 163; 167; 173; 179; 181;
    191; 193; 197; 199; 211; 223; 227; 229; 233; 239; 241; 251 ]

let is_probable_prime ?(rounds = 20) rng n =
  if compare n (of_int 2) < 0 then false
  else if List.exists (fun p -> equal n (of_int p)) small_primes then true
  else if is_even n then false
  else if
    List.exists (fun p -> compare n (of_int p) > 0 && is_zero (rem n (of_int p))) small_primes
  then false
  else begin
    (* n - 1 = d * 2^s with d odd *)
    let n1 = sub n one in
    let s = ref 0 and d = ref n1 in
    while is_even !d do
      d := shift_right !d 1;
      incr s
    done;
    let witness a =
      let x = ref (modexp a !d ~m:n) in
      if equal !x one || equal !x n1 then false
      else begin
        let composite = ref true in
        (try
           for _ = 1 to !s - 1 do
             x := modmul !x !x ~m:n;
             if equal !x n1 then begin
               composite := false;
               raise Exit
             end
           done
         with Exit -> ());
        !composite
      end
    in
    let rec rounds_loop k =
      if k = 0 then true
      else begin
        let a = add (of_int 2) (random_below rng (sub n (of_int 3))) in
        if witness a then false else rounds_loop (k - 1)
      end
    in
    rounds_loop rounds
  end

let random_prime rng ~bits =
  if bits < 8 then invalid_arg "Bignum.random_prime: need at least 8 bits";
  let rec search () =
    let candidate = random_bits rng ~bits in
    let candidate = if is_even candidate then add candidate one else candidate in
    if num_bits candidate = bits && is_probable_prime rng candidate then candidate
    else search ()
  in
  search ()
