(** Textbook RSA with PKCS#1-v1.5-style padding, built on {!Bignum}.

    Implements the paper's stated future work ("bring RSA-based key
    generation and usage to ERIC"): with an RSA keypair at the software
    source, a device can deliver its PUF-based key *in band* over the
    untrusted network (see [Protocol.provision_over_network]) instead of
    the paper's assumed out-of-band handshake, and the source can sign
    packages so devices can pin a vendor key.

    Demo-grade: default 512-bit modulus, no blinding, not constant time —
    fine for the simulation, not for production. *)

type public_key = { n : Bignum.t; e : Bignum.t }

type private_key = {
  pub : public_key;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
}

val generate : ?bits:int -> Eric_util.Prng.t -> private_key
(** [bits] is the modulus size (default 512, minimum 128); e = 65537. *)

val public_of : private_key -> public_key

val modulus_bytes : public_key -> int

val max_message_bytes : public_key -> int
(** Modulus bytes minus the 11-byte padding minimum. *)

val encrypt : public_key -> Eric_util.Prng.t -> bytes -> (bytes, string) result
(** EB = 00 02 <nonzero random, >= 8 bytes> 00 <message>; errors when the
    message exceeds {!max_message_bytes}. *)

val decrypt : private_key -> bytes -> (bytes, string) result
(** Errors on wrong length, bad padding, or garbage (wrong key). *)

val sign : private_key -> bytes -> bytes
(** EB = 00 01 FF..FF 00 <SHA-256 of message>, exponentiated with [d]. *)

val verify : public_key -> message:bytes -> signature:bytes -> bool
