let apply_bytes ~key ?(offset = 0) data = Keystream.xor ~key ~offset data

let key_word32 ~key ~offset =
  let ks = Keystream.at ~key ~offset in
  Eric_util.Bytesx.get_u32 (Keystream.take ks 4) 0

let key_word16 ~key ~offset =
  let ks = Keystream.at ~key ~offset in
  Eric_util.Bytesx.get_u16 (Keystream.take ks 2) 0

let apply_word32 ~key ~offset w = Int32.logxor w (key_word32 ~key ~offset)
let apply_word16 ~key ~offset w = (w lxor key_word16 ~key ~offset) land 0xFFFF

let apply_field32 ~key ~offset ~mask w =
  Int32.logxor w (Int32.logand (key_word32 ~key ~offset) mask)

let apply_field16 ~key ~offset ~mask w =
  (w lxor (key_word16 ~key ~offset land mask)) land 0xFFFF
