(** Deterministic keystream expansion for the XOR cipher.

    The paper's Key Management Unit turns a single PUF-based key into "keys
    in the appropriate formats for the Encryption Unit", so that "multiple
    encryption iterations continue with a single PUF-based key".  We realise
    this as SHA-256 in counter mode: block [i] of the stream is
    [SHA-256(key || le64 i)].  The same stream is regenerated independently
    on the software source and inside the HDE. *)

type t
(** A positioned stream reader. *)

val create : key:bytes -> t
(** Stream positioned at offset 0. *)

val at : key:bytes -> offset:int -> t
(** Stream positioned at an absolute byte [offset]; used to decrypt package
    sections (e.g., the signature trailer) independently. *)

val take : t -> int -> bytes
(** [take t n] returns the next [n] keystream bytes, advancing the stream. *)

val offset : t -> int
(** Current absolute position in bytes. *)

val xor : key:bytes -> ?offset:int -> bytes -> bytes
(** One-shot: XOR a buffer against the stream starting at [offset]
    (default 0).  Symmetric, so it both encrypts and decrypts. *)
