type public_key = { n : Bignum.t; e : Bignum.t }
type private_key = { pub : public_key; d : Bignum.t; p : Bignum.t; q : Bignum.t }

let e_value = Bignum.of_int 65537

let generate ?(bits = 512) rng =
  if bits < 128 then invalid_arg "Rsa.generate: modulus below 128 bits";
  let half = bits / 2 in
  let rec attempt () =
    let p = Bignum.random_prime rng ~bits:half in
    let q = Bignum.random_prime rng ~bits:(bits - half) in
    if Bignum.equal p q then attempt ()
    else begin
      let n = Bignum.mul p q in
      let phi = Bignum.mul (Bignum.sub p Bignum.one) (Bignum.sub q Bignum.one) in
      match Bignum.modinv e_value ~m:phi with
      | None -> attempt () (* gcd(e, phi) <> 1; rare *)
      | Some d -> { pub = { n; e = e_value }; d; p; q }
    end
  in
  attempt ()

let public_of key = key.pub
let modulus_bytes pub = (Bignum.num_bits pub.n + 7) / 8
let max_message_bytes pub = modulus_bytes pub - 11

let encrypt pub rng msg =
  let k = modulus_bytes pub in
  if Bytes.length msg > max_message_bytes pub then
    Error
      (Printf.sprintf "message too long: %d bytes, capacity %d" (Bytes.length msg)
         (max_message_bytes pub))
  else begin
    let pad_len = k - 3 - Bytes.length msg in
    let eb = Bytes.create k in
    Bytes.set eb 0 '\000';
    Bytes.set eb 1 '\002';
    for i = 0 to pad_len - 1 do
      (* nonzero random padding *)
      let b = 1 + Eric_util.Prng.int rng ~bound:255 in
      Bytes.set eb (2 + i) (Char.chr b)
    done;
    Bytes.set eb (2 + pad_len) '\000';
    Bytes.blit msg 0 eb (3 + pad_len) (Bytes.length msg);
    let m = Bignum.of_bytes_be eb in
    let c = Bignum.modexp m pub.e ~m:pub.n in
    Ok (Bignum.to_bytes_be ~len:k c)
  end

let decrypt key cipher =
  let k = modulus_bytes key.pub in
  if Bytes.length cipher <> k then Error "ciphertext length does not match the modulus"
  else begin
    let c = Bignum.of_bytes_be cipher in
    if Bignum.compare c key.pub.n >= 0 then Error "ciphertext out of range"
    else begin
      let m = Bignum.modexp c key.d ~m:key.pub.n in
      let eb = Bignum.to_bytes_be ~len:k m in
      if Bytes.get eb 0 <> '\000' || Bytes.get eb 1 <> '\002' then Error "bad padding header"
      else begin
        (* find the 00 separator after at least 8 padding bytes *)
        let rec find i =
          if i >= k then None else if Bytes.get eb i = '\000' then Some i else find (i + 1)
        in
        match find 2 with
        | Some sep when sep >= 10 -> Ok (Bytes.sub eb (sep + 1) (k - sep - 1))
        | Some _ -> Error "padding too short"
        | None -> Error "missing padding separator"
      end
    end
  end

let digest_eb pub msg =
  let k = modulus_bytes pub in
  let digest = Sha256.digest msg in
  let eb = Bytes.make k '\xff' in
  Bytes.set eb 0 '\000';
  Bytes.set eb 1 '\001';
  Bytes.set eb (k - Sha256.digest_size - 1) '\000';
  Bytes.blit digest 0 eb (k - Sha256.digest_size) Sha256.digest_size;
  eb

let sign key msg =
  let eb = digest_eb key.pub msg in
  Bignum.to_bytes_be ~len:(modulus_bytes key.pub)
    (Bignum.modexp (Bignum.of_bytes_be eb) key.d ~m:key.pub.n)

let verify pub ~message ~signature =
  Bytes.length signature = modulus_bytes pub
  &&
  let s = Bignum.of_bytes_be signature in
  Bignum.compare s pub.n < 0
  &&
  let eb = Bignum.to_bytes_be ~len:(modulus_bytes pub) (Bignum.modexp s pub.e ~m:pub.n) in
  Ct.equal eb (digest_eb pub message)
