(** Textual RISC-V assembler.

    Parses standard-looking assembly (the same syntax {!Disasm} prints,
    plus labels, sections, data directives and the usual pseudo
    instructions) into an {!Assemble.input}, and on to a {!Program.t}.
    This completes the toolchain triangle: compiler -> assembly text ->
    image, and disassembly output can be re-assembled.

    Supported:
    - instructions: every {!Inst.t} mnemonic, with operands written as in
      {!Disasm} output ([addi a0, sp, 16], [ld a0, 8(sp)],
      [beq a0, a1, label_or_offset], [jal ra, label_or_offset],
      [lui a0, 0x12345]);
    - pseudo instructions: [nop], [li rd, imm], [la rd, sym], [mv rd, rs],
      [not rd, rs], [neg rd, rs], [seqz rd, rs], [snez rd, rs],
      [j target], [jr rs], [ret], [call target], [beqz rs, target],
      [bnez rs, target], [bltz rs, target], [bgez rs, target];
    - sections: [.text] (default), [.data], [.bss];
    - data directives: [.byte e,...], [.word e,...] (4 bytes),
      [.dword e,...] (8 bytes), [.ascii "s"], [.asciz "s"],
      [.zero n] / [.space n] (zero-filled in [.data], size-only in
      [.bss]);
    - [.globl]/[.global] (accepted, ignored); comments with [#] or [;];
      labels as [name:]. *)

val parse : ?entry:string -> string -> (Assemble.input, string) result
(** [entry] defaults to ["_start"] if such a label exists, otherwise the
    first text label.  Errors carry a line number. *)

val assemble : ?entry:string -> ?compress:bool -> string -> (Program.t, string) result
(** [parse] then {!Assemble.assemble}. *)

val print_inst : Inst.t -> string
(** Canonical text for one instruction — identical to {!Disasm}, re-exported
    so asm round-trip tests read naturally. *)
