lib/rv/encode.ml: Inst Int32 Reg
