lib/rv/asm.mli: Assemble Inst Program
