lib/rv/program.ml: Array Buffer Bytes Decode Eric_util Format Int32 List Option Result Rvc String
