lib/rv/program.mli: Format Inst
