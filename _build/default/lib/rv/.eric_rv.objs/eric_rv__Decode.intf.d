lib/rv/decode.mli: Inst
