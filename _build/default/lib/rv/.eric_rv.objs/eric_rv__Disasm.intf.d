lib/rv/disasm.mli: Format Inst
