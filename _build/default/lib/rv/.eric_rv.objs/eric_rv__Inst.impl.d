lib/rv/inst.ml: Reg
