lib/rv/assemble.mli: Format Inst Program Reg
