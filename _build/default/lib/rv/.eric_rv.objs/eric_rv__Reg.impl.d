lib/rv/reg.ml: Array Format Int String
