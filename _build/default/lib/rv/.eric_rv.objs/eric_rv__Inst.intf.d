lib/rv/inst.mli: Reg
