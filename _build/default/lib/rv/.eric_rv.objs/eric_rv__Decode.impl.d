lib/rv/decode.ml: Inst Int32 Option Reg
