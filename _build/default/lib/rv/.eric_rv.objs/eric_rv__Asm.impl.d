lib/rv/asm.ml: Assemble Buffer Bytes Char Disasm Eric_util Format Inst Int64 List Printf Reg String
