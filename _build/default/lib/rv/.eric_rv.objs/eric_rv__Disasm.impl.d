lib/rv/disasm.ml: Bytes Char Decode Eric_util Format Hashtbl Inst Int Int32 List Printf Reg Rvc
