lib/rv/encode.mli: Inst
