lib/rv/rvc.ml: Inst Option Reg
