lib/rv/assemble.ml: Array Bytes Char Disasm Encode Format Hashtbl Inst Int64 List Program Reg Rvc String
