lib/rv/rvc.mli: Inst
