lib/rv/reg.mli: Format
