let bits w ~lo ~width = (w lsr lo) land ((1 lsl width) - 1)

let sign_extend ~bits:n v = if v land (1 lsl (n - 1)) <> 0 then v - (1 lsl n) else v

let reg w ~lo = Reg.of_int (bits w ~lo ~width:5)

let decode_r w =
  let f3 = bits w ~lo:12 ~width:3 and f7 = bits w ~lo:25 ~width:7 in
  let op32 = bits w ~lo:0 ~width:7 = 0b0111011 in
  let op : Inst.r_op option =
    match (op32, f7, f3) with
    | false, 0b0000000, 0b000 -> Some Add
    | false, 0b0100000, 0b000 -> Some Sub
    | false, 0b0000000, 0b001 -> Some Sll
    | false, 0b0000000, 0b010 -> Some Slt
    | false, 0b0000000, 0b011 -> Some Sltu
    | false, 0b0000000, 0b100 -> Some Xor
    | false, 0b0000000, 0b101 -> Some Srl
    | false, 0b0100000, 0b101 -> Some Sra
    | false, 0b0000000, 0b110 -> Some Or
    | false, 0b0000000, 0b111 -> Some And
    | false, 0b0000001, 0b000 -> Some Mul
    | false, 0b0000001, 0b001 -> Some Mulh
    | false, 0b0000001, 0b010 -> Some Mulhsu
    | false, 0b0000001, 0b011 -> Some Mulhu
    | false, 0b0000001, 0b100 -> Some Div
    | false, 0b0000001, 0b101 -> Some Divu
    | false, 0b0000001, 0b110 -> Some Rem
    | false, 0b0000001, 0b111 -> Some Remu
    | true, 0b0000000, 0b000 -> Some Addw
    | true, 0b0100000, 0b000 -> Some Subw
    | true, 0b0000000, 0b001 -> Some Sllw
    | true, 0b0000000, 0b101 -> Some Srlw
    | true, 0b0100000, 0b101 -> Some Sraw
    | true, 0b0000001, 0b000 -> Some Mulw
    | true, 0b0000001, 0b100 -> Some Divw
    | true, 0b0000001, 0b101 -> Some Divuw
    | true, 0b0000001, 0b110 -> Some Remw
    | true, 0b0000001, 0b111 -> Some Remuw
    | _ -> None
  in
  Option.map (fun op -> Inst.R (op, reg w ~lo:7, reg w ~lo:15, reg w ~lo:20)) op

let decode_op_imm w =
  let f3 = bits w ~lo:12 ~width:3 in
  let imm = sign_extend ~bits:12 (bits w ~lo:20 ~width:12) in
  let rd = reg w ~lo:7 and rs1 = reg w ~lo:15 in
  let funct6 = bits w ~lo:26 ~width:6 in
  let shamt = bits w ~lo:20 ~width:6 in
  match f3 with
  | 0b000 -> Some (Inst.I (Addi, rd, rs1, imm))
  | 0b010 -> Some (Inst.I (Slti, rd, rs1, imm))
  | 0b011 -> Some (Inst.I (Sltiu, rd, rs1, imm))
  | 0b100 -> Some (Inst.I (Xori, rd, rs1, imm))
  | 0b110 -> Some (Inst.I (Ori, rd, rs1, imm))
  | 0b111 -> Some (Inst.I (Andi, rd, rs1, imm))
  | 0b001 -> if funct6 = 0 then Some (Inst.Shift (Slli, rd, rs1, shamt)) else None
  | 0b101 ->
    if funct6 = 0b000000 then Some (Inst.Shift (Srli, rd, rs1, shamt))
    else if funct6 = 0b010000 then Some (Inst.Shift (Srai, rd, rs1, shamt))
    else None
  | _ -> None

let decode_op_imm32 w =
  let f3 = bits w ~lo:12 ~width:3 in
  let imm = sign_extend ~bits:12 (bits w ~lo:20 ~width:12) in
  let rd = reg w ~lo:7 and rs1 = reg w ~lo:15 in
  let funct7 = bits w ~lo:25 ~width:7 in
  let shamt = bits w ~lo:20 ~width:5 in
  match f3 with
  | 0b000 -> Some (Inst.I (Addiw, rd, rs1, imm))
  | 0b001 -> if funct7 = 0 then Some (Inst.Shift (Slliw, rd, rs1, shamt)) else None
  | 0b101 ->
    if funct7 = 0b0000000 then Some (Inst.Shift (Srliw, rd, rs1, shamt))
    else if funct7 = 0b0100000 then Some (Inst.Shift (Sraiw, rd, rs1, shamt))
    else None
  | _ -> None

let decode_load w =
  let op : Inst.load_op option =
    match bits w ~lo:12 ~width:3 with
    | 0b000 -> Some Lb | 0b001 -> Some Lh | 0b010 -> Some Lw | 0b011 -> Some Ld
    | 0b100 -> Some Lbu | 0b101 -> Some Lhu | 0b110 -> Some Lwu
    | _ -> None
  in
  let off = sign_extend ~bits:12 (bits w ~lo:20 ~width:12) in
  Option.map (fun op -> Inst.Load (op, reg w ~lo:7, reg w ~lo:15, off)) op

let decode_store w =
  let op : Inst.store_op option =
    match bits w ~lo:12 ~width:3 with
    | 0b000 -> Some Sb | 0b001 -> Some Sh | 0b010 -> Some Sw | 0b011 -> Some Sd
    | _ -> None
  in
  let off = sign_extend ~bits:12 ((bits w ~lo:25 ~width:7 lsl 5) lor bits w ~lo:7 ~width:5) in
  Option.map (fun op -> Inst.Store (op, reg w ~lo:20, reg w ~lo:15, off)) op

let decode_branch w =
  let op : Inst.branch_op option =
    match bits w ~lo:12 ~width:3 with
    | 0b000 -> Some Beq | 0b001 -> Some Bne | 0b100 -> Some Blt | 0b101 -> Some Bge
    | 0b110 -> Some Bltu | 0b111 -> Some Bgeu
    | _ -> None
  in
  let off =
    (bits w ~lo:31 ~width:1 lsl 12)
    lor (bits w ~lo:7 ~width:1 lsl 11)
    lor (bits w ~lo:25 ~width:6 lsl 5)
    lor (bits w ~lo:8 ~width:4 lsl 1)
  in
  let off = sign_extend ~bits:13 off in
  Option.map (fun op -> Inst.Branch (op, reg w ~lo:15, reg w ~lo:20, off)) op

let decode_jal w =
  let off =
    (bits w ~lo:31 ~width:1 lsl 20)
    lor (bits w ~lo:12 ~width:8 lsl 12)
    lor (bits w ~lo:20 ~width:1 lsl 11)
    lor (bits w ~lo:21 ~width:10 lsl 1)
  in
  Some (Inst.Jal (reg w ~lo:7, sign_extend ~bits:21 off))

let decode_system w =
  match bits w ~lo:7 ~width:25 with
  | 0 -> Some Inst.Ecall
  | v when v = 1 lsl 13 -> Some Inst.Ebreak
  | _ ->
    (* csrrs rd, csr, x0 with a supported read-only counter *)
    let f3 = bits w ~lo:12 ~width:3 and rs1 = bits w ~lo:15 ~width:5 in
    let csr = bits w ~lo:20 ~width:12 in
    if f3 = 0b010 && rs1 = 0 && (csr = 0xC00 || csr = 0xC01 || csr = 0xC02) then
      Some (Inst.Csrr (reg w ~lo:7, csr))
    else None

let decode w32 =
  let w = Int32.to_int w32 land 0xFFFFFFFF in
  if w land 0b11 <> 0b11 then None (* 16-bit parcel, not a 32-bit encoding *)
  else
    match bits w ~lo:0 ~width:7 with
    | 0b0110011 | 0b0111011 -> decode_r w
    | 0b0010011 -> decode_op_imm w
    | 0b0011011 -> decode_op_imm32 w
    | 0b0000011 -> decode_load w
    | 0b0100011 -> decode_store w
    | 0b1100011 -> decode_branch w
    | 0b1101111 -> decode_jal w
    | 0b1100111 ->
      if bits w ~lo:12 ~width:3 = 0 then
        Some (Inst.Jalr (reg w ~lo:7, reg w ~lo:15, sign_extend ~bits:12 (bits w ~lo:20 ~width:12)))
      else None
    | 0b0110111 -> Some (Inst.U (Lui, reg w ~lo:7, sign_extend ~bits:20 (bits w ~lo:12 ~width:20)))
    | 0b0010111 -> Some (Inst.U (Auipc, reg w ~lo:7, sign_extend ~bits:20 (bits w ~lo:12 ~width:20)))
    | 0b1110011 -> decode_system w
    | 0b0001111 -> if w = 0x0ff0000f then Some Inst.Fence else None
    | _ -> None

let is_valid w = Option.is_some (decode w)
