exception Error of int * string
(* line number, message *)

let err line fmt = Format.kasprintf (fun s -> raise (Error (line, s))) fmt

(* ------------------------------------------------------------------ *)
(* Lexical helpers                                                     *)
(* ------------------------------------------------------------------ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '.'

(* Strip a trailing comment, respecting string literals. *)
let strip_comment line =
  let n = String.length line in
  let rec scan i in_string =
    if i >= n then line
    else
      match line.[i] with
      | '"' -> scan (i + 1) (not in_string)
      | '\\' when in_string -> scan (i + 2) in_string
      | ('#' | ';') when not in_string -> String.sub line 0 i
      | _ -> scan (i + 1) in_string
  in
  scan 0 false

let parse_int line s =
  let s = String.trim s in
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> err line "expected an integer, found %S" s

let parse_reg line s =
  match Reg.of_name (String.trim s) with
  | Some r -> r
  | None -> err line "unknown register %S" s

(* "off(base)" *)
let parse_mem line s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | Some lp when String.length s > 0 && s.[String.length s - 1] = ')' ->
    let off_str = String.sub s 0 lp in
    let base_str = String.sub s (lp + 1) (String.length s - lp - 2) in
    let off = if String.trim off_str = "" then 0L else parse_int line off_str in
    (Int64.to_int off, parse_reg line base_str)
  | _ -> err line "expected offset(base), found %S" s

type target = T_label of string | T_offset of int

let parse_target line s =
  let s = String.trim s in
  if s = "" then err line "missing branch target"
  else
    match Int64.of_string_opt s with
    | Some v -> T_offset (Int64.to_int v)
    | None -> T_label s

(* Split operands on top-level commas. *)
let split_operands s =
  let parts = String.split_on_char ',' s in
  List.filter (fun p -> String.trim p <> "") (List.map String.trim parts)

let unescape line s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '\\' && i + 1 < n then begin
        (match s.[i + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | '0' -> Buffer.add_char buf '\000'
        | '\\' -> Buffer.add_char buf '\\'
        | '"' -> Buffer.add_char buf '"'
        | c -> err line "unknown escape '\\%c'" c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let parse_string_literal line s =
  let s = String.trim s in
  if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"' then
    unescape line (String.sub s 1 (String.length s - 2))
  else err line "expected a string literal, found %S" s

(* ------------------------------------------------------------------ *)
(* Instruction parsing                                                 *)
(* ------------------------------------------------------------------ *)

let r_ops : (string * Inst.r_op) list =
  [ ("add", Add); ("sub", Sub); ("sll", Sll); ("slt", Slt); ("sltu", Sltu); ("xor", Xor);
    ("srl", Srl); ("sra", Sra); ("or", Or); ("and", And); ("addw", Addw); ("subw", Subw);
    ("sllw", Sllw); ("srlw", Srlw); ("sraw", Sraw); ("mul", Mul); ("mulh", Mulh);
    ("mulhsu", Mulhsu); ("mulhu", Mulhu); ("div", Div); ("divu", Divu); ("rem", Rem);
    ("remu", Remu); ("mulw", Mulw); ("divw", Divw); ("divuw", Divuw); ("remw", Remw);
    ("remuw", Remuw) ]

let i_ops : (string * Inst.i_op) list =
  [ ("addi", Addi); ("slti", Slti); ("sltiu", Sltiu); ("xori", Xori); ("ori", Ori);
    ("andi", Andi); ("addiw", Addiw) ]

let shift_ops : (string * Inst.shift_op) list =
  [ ("slli", Slli); ("srli", Srli); ("srai", Srai); ("slliw", Slliw); ("srliw", Srliw);
    ("sraiw", Sraiw) ]

let load_ops : (string * Inst.load_op) list =
  [ ("lb", Lb); ("lh", Lh); ("lw", Lw); ("ld", Ld); ("lbu", Lbu); ("lhu", Lhu); ("lwu", Lwu) ]

let store_ops : (string * Inst.store_op) list =
  [ ("sb", Sb); ("sh", Sh); ("sw", Sw); ("sd", Sd) ]

let branch_ops : (string * Inst.branch_op) list =
  [ ("beq", Beq); ("bne", Bne); ("blt", Blt); ("bge", Bge); ("bltu", Bltu); ("bgeu", Bgeu) ]

let expect_n line mnemonic n ops =
  if List.length ops <> n then
    err line "%s expects %d operands, found %d" mnemonic n (List.length ops)

(* U-type immediates as Disasm prints them: the raw 20-bit field in hex,
   so values above 0x7FFFF are the two's-complement negatives. *)
let parse_uimm line s =
  let v = Int64.to_int (parse_int line s) in
  if v >= 0x80000 && v <= 0xFFFFF then v - 0x100000
  else if v >= -0x80000 && v < 0x80000 then v
  else err line "U-type immediate out of range: %s" s

let parse_instruction line mnemonic ops : Assemble.item list =
  let one_inst i = [ Assemble.Ins i ] in
  match mnemonic with
  | m when List.mem_assoc m r_ops ->
    expect_n line m 3 ops;
    let rd = parse_reg line (List.nth ops 0) in
    let rs1 = parse_reg line (List.nth ops 1) in
    let rs2 = parse_reg line (List.nth ops 2) in
    one_inst (Inst.R (List.assoc m r_ops, rd, rs1, rs2))
  | m when List.mem_assoc m i_ops ->
    expect_n line m 3 ops;
    let rd = parse_reg line (List.nth ops 0) in
    let rs1 = parse_reg line (List.nth ops 1) in
    let imm = Int64.to_int (parse_int line (List.nth ops 2)) in
    one_inst (Inst.I (List.assoc m i_ops, rd, rs1, imm))
  | m when List.mem_assoc m shift_ops ->
    expect_n line m 3 ops;
    let rd = parse_reg line (List.nth ops 0) in
    let rs1 = parse_reg line (List.nth ops 1) in
    let sh = Int64.to_int (parse_int line (List.nth ops 2)) in
    one_inst (Inst.Shift (List.assoc m shift_ops, rd, rs1, sh))
  | m when List.mem_assoc m load_ops ->
    expect_n line m 2 ops;
    let rd = parse_reg line (List.nth ops 0) in
    let off, base = parse_mem line (List.nth ops 1) in
    one_inst (Inst.Load (List.assoc m load_ops, rd, base, off))
  | m when List.mem_assoc m store_ops ->
    expect_n line m 2 ops;
    let src = parse_reg line (List.nth ops 0) in
    let off, base = parse_mem line (List.nth ops 1) in
    one_inst (Inst.Store (List.assoc m store_ops, src, base, off))
  | m when List.mem_assoc m branch_ops ->
    expect_n line m 3 ops;
    let rs1 = parse_reg line (List.nth ops 0) in
    let rs2 = parse_reg line (List.nth ops 1) in
    let op = List.assoc m branch_ops in
    (match parse_target line (List.nth ops 2) with
    | T_label l -> [ Assemble.Branch (op, rs1, rs2, l) ]
    | T_offset off -> one_inst (Inst.Branch (op, rs1, rs2, off)))
  | "lui" | "auipc" ->
    expect_n line mnemonic 2 ops;
    let rd = parse_reg line (List.nth ops 0) in
    let imm = parse_uimm line (List.nth ops 1) in
    let op : Inst.u_op = if mnemonic = "lui" then Lui else Auipc in
    one_inst (Inst.U (op, rd, imm))
  | "jal" -> (
    (* jal rd, target | jal target (rd = ra) *)
    let rd, target =
      match ops with
      | [ target ] -> (Reg.ra, target)
      | [ rd; target ] -> (parse_reg line rd, target)
      | _ -> err line "jal expects 1 or 2 operands"
    in
    match parse_target line target with
    | T_label l -> [ Assemble.Jump (rd, l) ]
    | T_offset off -> one_inst (Inst.Jal (rd, off)))
  | "jalr" -> (
    match ops with
    | [ rs1 ] -> one_inst (Inst.Jalr (Reg.ra, parse_reg line rs1, 0))
    | [ rd; mem ] ->
      let off, base = parse_mem line mem in
      one_inst (Inst.Jalr (parse_reg line rd, base, off))
    | _ -> err line "jalr expects rd, off(base)")
  | "rdcycle" | "rdtime" | "rdinstret" ->
    expect_n line mnemonic 1 ops;
    let csr = match mnemonic with "rdcycle" -> 0xC00 | "rdtime" -> 0xC01 | _ -> 0xC02 in
    one_inst (Inst.Csrr (parse_reg line (List.nth ops 0), csr))
  | "ecall" -> one_inst Inst.Ecall
  | "ebreak" -> one_inst Inst.Ebreak
  | "fence" -> one_inst Inst.Fence
  (* ---- pseudo instructions ---- *)
  | "nop" -> one_inst (Inst.I (Addi, Reg.x0, Reg.x0, 0))
  | "li" ->
    expect_n line "li" 2 ops;
    [ Assemble.Li (parse_reg line (List.nth ops 0), parse_int line (List.nth ops 1)) ]
  | "la" ->
    expect_n line "la" 2 ops;
    [ Assemble.La (parse_reg line (List.nth ops 0), String.trim (List.nth ops 1)) ]
  | "mv" ->
    expect_n line "mv" 2 ops;
    one_inst (Inst.I (Addi, parse_reg line (List.nth ops 0), parse_reg line (List.nth ops 1), 0))
  | "not" ->
    expect_n line "not" 2 ops;
    one_inst (Inst.I (Xori, parse_reg line (List.nth ops 0), parse_reg line (List.nth ops 1), -1))
  | "neg" ->
    expect_n line "neg" 2 ops;
    one_inst (Inst.R (Sub, parse_reg line (List.nth ops 0), Reg.x0, parse_reg line (List.nth ops 1)))
  | "seqz" ->
    expect_n line "seqz" 2 ops;
    one_inst (Inst.I (Sltiu, parse_reg line (List.nth ops 0), parse_reg line (List.nth ops 1), 1))
  | "snez" ->
    expect_n line "snez" 2 ops;
    one_inst (Inst.R (Sltu, parse_reg line (List.nth ops 0), Reg.x0, parse_reg line (List.nth ops 1)))
  | "j" -> (
    expect_n line "j" 1 ops;
    match parse_target line (List.nth ops 0) with
    | T_label l -> [ Assemble.Jump (Reg.x0, l) ]
    | T_offset off -> one_inst (Inst.Jal (Reg.x0, off)))
  | "jr" ->
    expect_n line "jr" 1 ops;
    one_inst (Inst.Jalr (Reg.x0, parse_reg line (List.nth ops 0), 0))
  | "ret" -> one_inst (Inst.Jalr (Reg.x0, Reg.ra, 0))
  | "call" -> (
    expect_n line "call" 1 ops;
    match parse_target line (List.nth ops 0) with
    | T_label l -> [ Assemble.Jump (Reg.ra, l) ]
    | T_offset off -> one_inst (Inst.Jal (Reg.ra, off)))
  | "beqz" | "bnez" | "bltz" | "bgez" -> (
    expect_n line mnemonic 2 ops;
    let rs = parse_reg line (List.nth ops 0) in
    let op, rs1, rs2 =
      match mnemonic with
      | "beqz" -> (Inst.Beq, rs, Reg.x0)
      | "bnez" -> (Inst.Bne, rs, Reg.x0)
      | "bltz" -> (Inst.Blt, rs, Reg.x0)
      | _ -> (Inst.Bge, rs, Reg.x0)
    in
    match parse_target line (List.nth ops 1) with
    | T_label l -> [ Assemble.Branch (op, rs1, rs2, l) ]
    | T_offset off -> one_inst (Inst.Branch (op, rs1, rs2, off)))
  | m -> err line "unknown mnemonic %S" m

(* ------------------------------------------------------------------ *)
(* Sections and directives                                             *)
(* ------------------------------------------------------------------ *)

type section = Text | Data | Bss

type state = {
  mutable section : section;
  mutable text : Assemble.item list;  (** reversed *)
  data : Buffer.t;
  mutable data_symbols : (string * int) list;
  mutable bss_symbols : (string * int) list;
  mutable pending_bss_label : (int * string) option;
  mutable first_text_label : string option;
}

let bind_label st line name =
  match st.section with
  | Text ->
    if st.first_text_label = None then st.first_text_label <- Some name;
    st.text <- Assemble.Label name :: st.text
  | Data -> st.data_symbols <- (name, Buffer.length st.data) :: st.data_symbols
  | Bss -> (
    match st.pending_bss_label with
    | None -> st.pending_bss_label <- Some (line, name)
    | Some (l, prev) -> err line "bss label %S has no size yet (declared line %d)" prev l)

let add_data_int st line width value_str =
  let v = parse_int line value_str in
  let b = Bytes.create width in
  (match width with
  | 1 -> Bytes.set b 0 (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | 4 -> Eric_util.Bytesx.set_u32 b 0 (Int64.to_int32 v)
  | 8 -> Eric_util.Bytesx.set_u64 b 0 v
  | _ -> assert false);
  Buffer.add_bytes st.data b

let handle_directive st line directive rest =
  match directive with
  | ".text" -> st.section <- Text
  | ".data" -> st.section <- Data
  | ".bss" -> st.section <- Bss
  | ".globl" | ".global" -> () (* single flat namespace; accepted for compatibility *)
  | ".byte" | ".word" | ".dword" ->
    if st.section <> Data then err line "%s outside .data" directive;
    let width = match directive with ".byte" -> 1 | ".word" -> 4 | _ -> 8 in
    List.iter (add_data_int st line width) (split_operands rest)
  | ".ascii" | ".asciz" ->
    if st.section <> Data then err line "%s outside .data" directive;
    Buffer.add_string st.data (parse_string_literal line rest);
    if directive = ".asciz" then Buffer.add_char st.data '\000'
  | ".zero" | ".space" -> (
    let n = Int64.to_int (parse_int line rest) in
    if n < 0 then err line "%s with negative size" directive;
    match st.section with
    | Data -> Buffer.add_bytes st.data (Bytes.make n '\000')
    | Bss -> (
      match st.pending_bss_label with
      | Some (_, name) ->
        st.bss_symbols <- (name, n) :: st.bss_symbols;
        st.pending_bss_label <- None
      | None -> err line "%s in .bss needs a preceding label" directive)
    | Text -> err line "%s in .text" directive)
  | ".align" ->
    if st.section <> Data then err line ".align outside .data"
    else begin
      let k = Int64.to_int (parse_int line rest) in
      if k < 0 || k > 12 then err line ".align argument out of range";
      let target = 1 lsl k in
      while Buffer.length st.data mod target <> 0 do
        Buffer.add_char st.data '\000'
      done
    end
  | d -> err line "unknown directive %S" d

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let parse_line st line_no raw =
  let line = String.trim (strip_comment raw) in
  if line <> "" then begin
    (* Peel leading labels: "name:" where name is identifier-like (labels
       may contain dots, e.g. the compiler's ".L_main_3"; a directive never
       has a ':' before its first space). *)
    let rec peel s =
      let s = String.trim s in
      match String.index_opt s ':' with
      | Some i when i > 0 && String.for_all is_ident_char (String.sub s 0 i) ->
        bind_label st line_no (String.sub s 0 i);
        peel (String.sub s (i + 1) (String.length s - i - 1))
      | Some _ | None -> s
    in
    let body = peel line in
    if body <> "" then
      if body.[0] = '.' then begin
        let directive, rest =
          match String.index_opt body ' ' with
          | Some i -> (String.sub body 0 i, String.sub body i (String.length body - i))
          | None -> (body, "")
        in
        handle_directive st line_no (String.trim directive) (String.trim rest)
      end
      else begin
        if st.section <> Text then err line_no "instruction outside .text";
        let mnemonic, rest =
          match String.index_opt body ' ' with
          | Some i -> (String.sub body 0 i, String.sub body i (String.length body - i))
          | None -> (body, "")
        in
        let items = parse_instruction line_no (String.lowercase_ascii mnemonic) (split_operands rest) in
        st.text <- List.rev_append items st.text
      end
  end

let parse ?entry source =
  let st =
    { section = Text; text = []; data = Buffer.create 64; data_symbols = []; bss_symbols = [];
      pending_bss_label = None; first_text_label = None }
  in
  try
    List.iteri (fun i line -> parse_line st (i + 1) line) (String.split_on_char '\n' source);
    (match st.pending_bss_label with
    | Some (l, name) -> err l "bss label %S has no size" name
    | None -> ());
    let text = List.rev st.text in
    let has_label name = List.exists (function Assemble.Label l -> l = name | _ -> false) text in
    let entry =
      match entry with
      | Some e -> e
      | None ->
        if has_label "_start" then "_start"
        else (
          match st.first_text_label with
          | Some l -> l
          | None -> raise (Error (0, "no text labels; cannot pick an entry point")))
    in
    Ok
      {
        Assemble.text;
        data = Bytes.of_string (Buffer.contents st.data);
        data_symbols = List.rev st.data_symbols;
        bss_symbols = List.rev st.bss_symbols;
        entry;
      }
  with Error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)

let assemble ?entry ?compress source =
  match parse ?entry source with
  | Error _ as e -> e
  | Ok input -> Assemble.assemble ?compress input

let print_inst = Disasm.inst_to_string
