(** 32-bit instruction decoder.

    [decode] is the inverse of {!Encode.encode} on its image and returns
    [None] for any word that is not a valid encoding of the supported
    RV64IM subset — exactly the predicate the static-analysis attack model
    uses to tell plausible instruction words from ciphertext. *)

val decode : int32 -> Inst.t option

val is_valid : int32 -> bool
(** [is_valid w = Option.is_some (decode w)]. *)
