(** Layout, relaxation and linking: turns symbolic assembly items into a
    {!Program.t} image.

    The interesting part is the interaction the paper highlights between
    compressed instructions and program size: compression shrinks the text
    section, which shrinks branch displacements and can move the data
    section, so layout runs to a fixpoint — sizes only ever shrink, so the
    iteration terminates.  Branches whose targets end up beyond the 13-bit
    B-type range are relaxed into an inverted branch over a [jal].

    Address materialisation ([La]) always occupies a fixed [lui+addi] pair
    (never compressed) so that symbol resolution cannot oscillate with
    compression decisions. *)

type item =
  | Label of string
  | Ins of Inst.t  (** complete instruction, no symbolic operand *)
  | Branch of Inst.branch_op * Reg.t * Reg.t * string  (** target label *)
  | Jump of Reg.t * string  (** jal rd, label *)
  | La of Reg.t * string  (** load the absolute address of a symbol *)
  | Li of Reg.t * int64  (** load a constant (minimal RV64 sequence) *)

val expand_li : Reg.t -> int64 -> Inst.t list
(** The standard RV64 constant-materialisation recursion ([addi] /
    [lui+addiw] / shift-and-add for 64-bit constants). *)

type input = {
  text : item list;
  data : bytes;
  data_symbols : (string * int) list;  (** name -> offset within [data] *)
  bss_symbols : (string * int) list;  (** name -> size; laid out in order *)
  entry : string;  (** label to enter at *)
}

val assemble : ?compress:bool -> input -> (Program.t, string) result
(** [compress] (default true) enables RVC compression of eligible
    instructions.  Errors: duplicate or undefined labels/symbols, immediate
    overflow after relaxation, empty text. *)

val pp_input : Format.formatter -> input -> unit
(** Render the input as assembly text that {!Asm.parse} accepts and that
    reconstructs the same program: [.text] items (pseudo instructions
    preserved as [li]/[la], control flow by label), the [.data] image byte
    for byte at its original offsets, and [.bss] symbols.  This is what the
    compiler's [-S] output prints. *)
