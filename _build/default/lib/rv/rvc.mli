(** The "C" standard compressed extension (RVC), integer subset.

    The paper targets RV64GC and notes that partial encryption's map costs
    "1 bit of extra information ... for 16 bits if the compressed
    instructions ... are included", so faithful parcel accounting needs real
    RVC support.  Compressed forms are an encoding-level concern only: the
    compiler and simulator speak {!Inst.t}; [compress] opportunistically
    shrinks an instruction to 16 bits when a compressed form expresses it,
    and [expand] maps a 16-bit parcel back to the base instruction it is an
    alias of.

    Supported forms: C.ADDI4SPN, C.LW, C.LD, C.SW, C.SD, C.NOP, C.ADDI,
    C.ADDIW, C.LI, C.ADDI16SP, C.LUI, C.SRLI, C.SRAI, C.ANDI, C.SUB, C.XOR,
    C.OR, C.AND, C.SUBW, C.ADDW, C.J, C.BEQZ, C.BNEZ, C.SLLI, C.LWSP,
    C.LDSP, C.JR, C.MV, C.EBREAK, C.JALR, C.ADD, C.SWSP, C.SDSP. *)

val compress : Inst.t -> int option
(** A 16-bit encoding of the instruction, when one exists.  Round-trip
    guarantee: [expand (compress i) = Some i'] with [i'] semantically equal
    to [i] (the expansion is the ISA manual's canonical base alias, e.g.
    C.MV expands to [add rd, x0, rs2]). *)

val expand : int -> Inst.t option
(** Decode a 16-bit parcel (low 16 bits used).  [None] for reserved or
    unsupported encodings, and for any parcel whose low two bits are [11]
    (those mark 32-bit instructions). *)

val is_valid : int -> bool
