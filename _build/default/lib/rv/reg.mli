(** RISC-V integer register file names (x0..x31) and the standard ABI
    aliases.  The paper's target is RV64GC with the usual 31 writable
    registers (x0 is hardwired zero). *)

type t = private int
(** Always in [0, 31]. *)

val of_int : int -> t
(** Raises [Invalid_argument] outside [0, 31]. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val x0 : t
(** Hardwired zero. *)

val ra : t
(** x1, return address. *)

val sp : t
(** x2, stack pointer. *)

val gp : t
(** x3, global pointer. *)

val tp : t
(** x4, thread pointer. *)

val t_ : int -> t
(** [t_ n] is temporary tn (n in 0..6). *)

val s : int -> t
(** [s n] is saved register sn (n in 0..11). *)

val a : int -> t
(** [a n] is argument register an (n in 0..7). *)

val abi_name : t -> string
(** e.g. ["zero"], ["ra"], ["a0"], ["t3"]. *)

val of_name : string -> t option
(** Accepts both ABI names and ["x<n>"] forms. *)

val is_compressible : t -> bool
(** True for x8..x15, the registers addressable by the 3-bit fields of
    compressed instructions. *)

val pp : Format.formatter -> t -> unit
