(** 32-bit instruction encoder (the reverse of {!Decode}).

    Field placement follows the RISC-V unprivileged ISA manual's R/I/S/B/U/J
    formats.  The encoder is total over valid instructions and raises
    [Invalid_argument] with the {!Inst.validate} message otherwise, so that
    an out-of-range immediate is a compiler bug caught at emission time, not
    a silently corrupted encoding. *)

val encode : Inst.t -> int32

val encode_exn_message : Inst.t -> string option
(** The validation failure the encoder would raise for, if any. *)

(** Field masks used by field-level partial encryption, expressed on the
    32-bit encoding. *)
module Field : sig
  val opcode : int32  (** bits [6:0] *)

  val rd : int32  (** bits [11:7] *)

  val rs1 : int32  (** bits [19:15] *)

  val rs2 : int32  (** bits [24:20] *)

  val funct3 : int32  (** bits [14:12] *)

  val imm_i : int32  (** bits [31:20]: I-type immediate (loads, jalr, addi) *)

  val imm_s : int32  (** bits [31:25] and [11:7]: S-type store offset *)

  val imm_u : int32  (** bits [31:12]: U-type immediate *)
end
