type t = int

let of_int n = if n < 0 || n > 31 then invalid_arg "Reg.of_int: register out of range" else n
let to_int n = n
let equal = Int.equal
let compare = Int.compare

let x0 = 0
let ra = 1
let sp = 2
let gp = 3
let tp = 4

let t_ n =
  if n < 0 || n > 6 then invalid_arg "Reg.t_: t0..t6 only"
  else if n < 3 then 5 + n (* t0-t2 = x5-x7 *)
  else 28 + (n - 3) (* t3-t6 = x28-x31 *)

let s n =
  if n < 0 || n > 11 then invalid_arg "Reg.s: s0..s11 only"
  else if n < 2 then 8 + n (* s0-s1 = x8-x9 *)
  else 18 + (n - 2) (* s2-s11 = x18-x27 *)

let a n = if n < 0 || n > 7 then invalid_arg "Reg.a: a0..a7 only" else 10 + n

let abi_names =
  [| "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2"; "s0"; "s1"; "a0"; "a1"; "a2"; "a3";
     "a4"; "a5"; "a6"; "a7"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7"; "s8"; "s9"; "s10"; "s11";
     "t3"; "t4"; "t5"; "t6" |]

let abi_name n = abi_names.(n)

let of_name name =
  let by_abi = ref None in
  Array.iteri (fun i s -> if s = name then by_abi := Some i) abi_names;
  match !by_abi with
  | Some i -> Some i
  | None ->
    if String.length name >= 2 && name.[0] = 'x' then
      match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
      | Some n when n >= 0 && n <= 31 -> Some n
      | Some _ | None -> None
    else if name = "fp" then Some 8 (* frame-pointer alias of s0 *)
    else None

let is_compressible n = n >= 8 && n <= 15
let pp fmt n = Format.pp_print_string fmt (abi_name n)
