type item =
  | Label of string
  | Ins of Inst.t
  | Branch of Inst.branch_op * Reg.t * Reg.t * string
  | Jump of Reg.t * string
  | La of Reg.t * string
  | Li of Reg.t * int64

type input = {
  text : item list;
  data : bytes;
  data_symbols : (string * int) list;
  bss_symbols : (string * int) list;
  entry : string;
}

(* -------------------------------------------------------------------- *)
(* Constant materialisation                                              *)
(* -------------------------------------------------------------------- *)

let fits_simm ~bits v =
  let open Int64 in
  let lo = neg (shift_left 1L (bits - 1)) and hi = sub (shift_left 1L (bits - 1)) 1L in
  compare v lo >= 0 && compare v hi <= 0

let expand_li rd v =
  let rec go v =
    if fits_simm ~bits:12 v then [ Inst.I (Addi, rd, Reg.x0, Int64.to_int v) ]
    else if fits_simm ~bits:32 v then begin
      (* lui hi20 then addiw lo12; addiw keeps the value sign-extended from
         bit 31, matching what lui produced. *)
      let lo = Int64.to_int (Int64.sub v (Int64.mul (Int64.div (Int64.add v 0x800L) 0x1000L) 0x1000L)) in
      let lo = if lo >= 2048 then lo - 4096 else if lo < -2048 then lo + 4096 else lo in
      let hi = Int64.to_int (Int64.shift_right (Int64.sub v (Int64.of_int lo)) 12) in
      (* The hi part is a *signed* 20-bit lui immediate: values at the top
         of the positive 32-bit range wrap negative, and the following
         addiw's 32-bit sign extension puts the result right. *)
      let hi = if hi >= 0x80000 then hi - 0x100000 else hi in
      let lui = Inst.U (Lui, rd, hi) in
      if lo = 0 then [ lui ] else [ lui; Inst.I (Addiw, rd, rd, lo) ]
    end
    else begin
      (* Peel the low 12 bits, materialise the rest, then shift-and-add. *)
      let lo = Int64.to_int (Int64.sub v (Int64.mul (Int64.div (Int64.add v 0x800L) 0x1000L) 0x1000L)) in
      let lo = if lo >= 2048 then lo - 4096 else if lo < -2048 then lo + 4096 else lo in
      let hi = Int64.shift_right (Int64.sub v (Int64.of_int lo)) 12 in
      let rest = go hi @ [ Inst.Shift (Slli, rd, rd, 12) ] in
      if lo = 0 then rest else rest @ [ Inst.I (Addi, rd, rd, lo) ]
    end
  in
  go v

let expand_la rd addr =
  let lo = addr land 0xFFF in
  let lo = if lo >= 2048 then lo - 4096 else lo in
  let hi = (addr - lo) asr 12 in
  [ Inst.U (Lui, rd, hi); Inst.I (Addi, rd, rd, lo) ]

(* -------------------------------------------------------------------- *)
(* Layout state                                                          *)
(* -------------------------------------------------------------------- *)

type unit_kind =
  | U_ins of Inst.t
  | U_branch of Inst.branch_op * Reg.t * Reg.t * string
  | U_jump of Reg.t * string
  | U_la of Reg.t * string

type unit_state = {
  kind : unit_kind;
  mutable size : int;
  mutable relaxed : bool;  (** sticky: branch rewritten as inverted branch + jal *)
  mutable parcels : Program.parcel list;
}

let invert_branch : Inst.branch_op -> Inst.branch_op = function
  | Beq -> Bne | Bne -> Beq | Blt -> Bge | Bge -> Blt | Bltu -> Bgeu | Bgeu -> Bltu

exception Asm_error of string

let err fmt = Format.kasprintf (fun s -> raise (Asm_error s)) fmt

let encode_unit ~compress ~resolve ~offset u =
  (* Produce the final instruction list for a unit given current symbol
     offsets, then parcelise (compressing eligible instructions). *)
  let insts =
    match u.kind with
    | U_ins i -> [ i ]
    | U_la (rd, sym) -> expand_la rd (resolve sym)
    | U_jump (rd, lbl) ->
      let delta = resolve lbl - offset in
      if not (Inst.fits_simm ~bits:21 delta) then err "jump to %s out of range (%d bytes)" lbl delta;
      [ Inst.Jal (rd, delta) ]
    | U_branch (op, rs1, rs2, lbl) ->
      let delta = resolve lbl - offset in
      if u.relaxed || not (Inst.fits_simm ~bits:13 delta) then begin
        u.relaxed <- true;
        (* Inverted branch skips the unconditional jump.  The branch's own
           size depends on compression, so the skip distance is computed
           from the encoded first instruction below; use the conservative
           4-byte form and never compress the inverted branch. *)
        let jal_delta = resolve lbl - (offset + 4) in
        if not (Inst.fits_simm ~bits:21 jal_delta) then
          err "relaxed branch to %s out of range" lbl;
        [ Inst.Branch (invert_branch op, rs1, rs2, 8); Inst.Jal (Reg.x0, jal_delta) ]
      end
      else [ Inst.Branch (op, rs1, rs2, delta) ]
  in
  let compressible inst =
    match u.kind with
    | U_la _ -> None (* fixed-size by design *)
    | U_branch _ when u.relaxed -> (
      (* Only the jal half may compress; the inverted branch's +8 skip
         assumed a 4-byte form, so keep it 4 bytes. *)
      match inst with Inst.Jal _ -> Rvc.compress inst | _ -> None)
    | _ -> Rvc.compress inst
  in
  let parcels =
    List.map
      (fun inst ->
        match if compress then compressible inst else None with
        | Some p -> Program.P16 p
        | None -> Program.P32 (Encode.encode inst))
      insts
  in
  (* A relaxed branch's skip distance depends on whether its jal half got
     compressed; re-encode the inverted branch with the actual jal size. *)
  let parcels =
    match (u.relaxed, u.kind, parcels) with
    | true, U_branch (op, rs1, rs2, _), [ Program.P32 _; jal ] ->
      let first = Inst.Branch (invert_branch op, rs1, rs2, 4 + Program.parcel_size jal) in
      [ Program.P32 (Encode.encode first); jal ]
    | _ -> parcels
  in
  u.parcels <- parcels;
  u.size <- List.fold_left (fun acc p -> acc + Program.parcel_size p) 0 parcels

let assemble ?(compress = true) input =
  try
    (* Expand Li eagerly (sizes depend only on the constant). *)
    let items =
      List.concat_map
        (function
          | Li (rd, v) -> List.map (fun i -> Ins i) (expand_li rd v)
          | other -> [ other ])
        input.text
    in
    let units = ref [] and labels = Hashtbl.create 64 in
    let unit_count = ref 0 in
    List.iter
      (fun item ->
        match item with
        | Label name ->
          if Hashtbl.mem labels name then err "duplicate label %s" name;
          Hashtbl.add labels name !unit_count
        | Ins i ->
          (match Inst.validate i with Ok () -> () | Error m -> err "invalid instruction: %s" m);
          units := { kind = U_ins i; size = 4; relaxed = false; parcels = [] } :: !units;
          incr unit_count
        | Branch (op, r1, r2, lbl) ->
          units := { kind = U_branch (op, r1, r2, lbl); size = 4; relaxed = false; parcels = [] } :: !units;
          incr unit_count
        | Jump (rd, lbl) ->
          units := { kind = U_jump (rd, lbl); size = 4; relaxed = false; parcels = [] } :: !units;
          incr unit_count
        | La (rd, sym) ->
          units := { kind = U_la (rd, sym); size = 8; relaxed = false; parcels = [] } :: !units;
          incr unit_count
        | Li _ -> assert false)
      items;
    let units = Array.of_list (List.rev !units) in
    if Array.length units = 0 then err "empty text section";
    (* Per-label unit index -> byte offset, recomputed each iteration. *)
    let unit_offsets = Array.make (Array.length units + 1) 0 in
    let compute_offsets () =
      let off = ref 0 in
      Array.iteri
        (fun i u ->
          unit_offsets.(i) <- !off;
          off := !off + u.size)
        units;
      unit_offsets.(Array.length units) <- !off;
      !off
    in
    (* Data and BSS symbol offsets are layout-independent; absolute
       addresses depend on the (shrinking) text size. *)
    let bss_offsets =
      let off = ref 0 in
      List.map
        (fun (name, size) ->
          if size < 0 then err "negative bss size for %s" name;
          let here = !off in
          off := !off + ((size + 7) / 8 * 8);
          (name, here))
        input.bss_symbols
    in
    let bss_total = List.fold_left (fun acc (_, s) -> acc + ((s + 7) / 8 * 8)) 0 input.bss_symbols in
    (* Pad the data section to 8 bytes so the BSS that follows it stays
       naturally aligned for 64-bit stores. *)
    let data =
      let len = Bytes.length input.data in
      let padded = (len + 7) / 8 * 8 in
      if padded = len then input.data
      else begin
        let b = Bytes.make padded '\000' in
        Bytes.blit input.data 0 b 0 len;
        b
      end
    in
    let make_resolver text_size =
      let text_base = Program.Layout.text_base in
      let data_base = text_base + ((text_size + 0xFFF) / 0x1000 * 0x1000) in
      let bss_base = data_base + Bytes.length data in
      fun sym ->
        match Hashtbl.find_opt labels sym with
        | Some unit_index -> text_base + unit_offsets.(unit_index)
        | None -> (
          match List.assoc_opt sym input.data_symbols with
          | Some off -> data_base + off
          | None -> (
            match List.assoc_opt sym bss_offsets with
            | Some off -> bss_base + off
            | None -> err "undefined symbol %s" sym))
    in
    (* Label resolution for branches is text-relative; reuse the absolute
       resolver and subtract. *)
    let rec iterate n =
      if n > 64 then err "layout did not converge";
      let text_size = compute_offsets () in
      let resolve_abs = make_resolver text_size in
      let changed = ref false in
      Array.iteri
        (fun i u ->
          let before = u.size in
          let offset = Program.Layout.text_base + unit_offsets.(i) in
          (* Branch targets must be text labels; resolve gives absolute. *)
          encode_unit ~compress ~resolve:resolve_abs ~offset u;
          if u.size <> before then changed := true)
        units;
      if !changed then iterate (n + 1)
    in
    iterate 0;
    ignore (compute_offsets ());
    let parcels = Array.of_list (List.concat_map (fun u -> u.parcels) (Array.to_list units)) in
    let entry_offset =
      match Hashtbl.find_opt labels input.entry with
      | Some idx -> unit_offsets.(idx)
      | None -> err "entry label %s not defined" input.entry
    in
    let symbols = Hashtbl.fold (fun name idx acc -> (name, unit_offsets.(idx)) :: acc) labels [] in
    Ok
      {
        Program.text = parcels;
        data = Bytes.copy data;
        bss_size = bss_total;
        entry_offset;
        symbols = List.sort compare symbols;
      }
  with Asm_error msg -> Error msg

let pp_input fmt (input : input) =
  let p fm = Format.fprintf fmt fm in
  p "# generated by eric (entry %s)@." input.entry;
  p ".text@.";
  List.iter
    (fun item ->
      match item with
      | Label name -> p "%s:@." name
      | Ins i -> p "  %s@." (Disasm.inst_to_string i)
      | Branch (op, rs1, rs2, target) ->
        p "  %s %s, %s, %s@."
          (Inst.mnemonic (Inst.Branch (op, rs1, rs2, 0)))
          (Reg.abi_name rs1) (Reg.abi_name rs2) target
      | Jump (rd, target) -> p "  jal %s, %s@." (Reg.abi_name rd) target
      | La (rd, sym) -> p "  la %s, %s@." (Reg.abi_name rd) sym
      | Li (rd, v) -> p "  li %s, %Ld@." (Reg.abi_name rd) v)
    input.text;
  if Bytes.length input.data > 0 then begin
    p ".data@.";
    (* Dump the data image byte for byte, splitting at symbol offsets so
       each symbol binds to exactly its original position. *)
    let boundaries =
      List.sort_uniq compare (List.map snd input.data_symbols @ [ 0; Bytes.length input.data ])
    in
    let label_at off =
      List.filter_map (fun (n, o) -> if o = off then Some n else None) input.data_symbols
    in
    let rec chunks = function
      | start :: (next :: _ as rest) ->
        List.iter (fun name -> p "%s:@." name) (label_at start);
        if next > start then begin
          let bytes =
            List.init (next - start) (fun i ->
                string_of_int (Char.code (Bytes.get input.data (start + i))))
          in
          p "  .byte %s@." (String.concat ", " bytes)
        end;
        chunks rest
      | [ last ] -> List.iter (fun name -> p "%s:@." name) (label_at last)
      | [] -> ()
    in
    chunks boundaries
  end;
  if input.bss_symbols <> [] then begin
    p ".bss@.";
    List.iter (fun (name, size) -> p "%s:@.  .space %d@." name size) input.bss_symbols
  end
