let opc_op = 0b0110011
let opc_op32 = 0b0111011
let opc_op_imm = 0b0010011
let opc_op_imm32 = 0b0011011
let opc_load = 0b0000011
let opc_store = 0b0100011
let opc_branch = 0b1100011
let opc_jal = 0b1101111
let opc_jalr = 0b1100111
let opc_lui = 0b0110111
let opc_auipc = 0b0010111
let opc_system = 0b1110011

(* opcode, funct3, funct7 *)
let r_fields : Inst.r_op -> int * int * int = function
  | Add -> (opc_op, 0b000, 0b0000000)
  | Sub -> (opc_op, 0b000, 0b0100000)
  | Sll -> (opc_op, 0b001, 0b0000000)
  | Slt -> (opc_op, 0b010, 0b0000000)
  | Sltu -> (opc_op, 0b011, 0b0000000)
  | Xor -> (opc_op, 0b100, 0b0000000)
  | Srl -> (opc_op, 0b101, 0b0000000)
  | Sra -> (opc_op, 0b101, 0b0100000)
  | Or -> (opc_op, 0b110, 0b0000000)
  | And -> (opc_op, 0b111, 0b0000000)
  | Mul -> (opc_op, 0b000, 0b0000001)
  | Mulh -> (opc_op, 0b001, 0b0000001)
  | Mulhsu -> (opc_op, 0b010, 0b0000001)
  | Mulhu -> (opc_op, 0b011, 0b0000001)
  | Div -> (opc_op, 0b100, 0b0000001)
  | Divu -> (opc_op, 0b101, 0b0000001)
  | Rem -> (opc_op, 0b110, 0b0000001)
  | Remu -> (opc_op, 0b111, 0b0000001)
  | Addw -> (opc_op32, 0b000, 0b0000000)
  | Subw -> (opc_op32, 0b000, 0b0100000)
  | Sllw -> (opc_op32, 0b001, 0b0000000)
  | Srlw -> (opc_op32, 0b101, 0b0000000)
  | Sraw -> (opc_op32, 0b101, 0b0100000)
  | Mulw -> (opc_op32, 0b000, 0b0000001)
  | Divw -> (opc_op32, 0b100, 0b0000001)
  | Divuw -> (opc_op32, 0b101, 0b0000001)
  | Remw -> (opc_op32, 0b110, 0b0000001)
  | Remuw -> (opc_op32, 0b111, 0b0000001)

let i_funct3 : Inst.i_op -> int * int = function
  | Addi -> (opc_op_imm, 0b000)
  | Slti -> (opc_op_imm, 0b010)
  | Sltiu -> (opc_op_imm, 0b011)
  | Xori -> (opc_op_imm, 0b100)
  | Ori -> (opc_op_imm, 0b110)
  | Andi -> (opc_op_imm, 0b111)
  | Addiw -> (opc_op_imm32, 0b000)

(* opcode, funct3, upper bits of the immediate field above the shamt *)
let shift_fields : Inst.shift_op -> int * int * int = function
  | Slli -> (opc_op_imm, 0b001, 0b000000)
  | Srli -> (opc_op_imm, 0b101, 0b000000)
  | Srai -> (opc_op_imm, 0b101, 0b010000)
  | Slliw -> (opc_op_imm32, 0b001, 0b000000)
  | Srliw -> (opc_op_imm32, 0b101, 0b000000)
  | Sraiw -> (opc_op_imm32, 0b101, 0b010000)

let load_funct3 : Inst.load_op -> int = function
  | Lb -> 0b000 | Lh -> 0b001 | Lw -> 0b010 | Ld -> 0b011
  | Lbu -> 0b100 | Lhu -> 0b101 | Lwu -> 0b110

let store_funct3 : Inst.store_op -> int = function
  | Sb -> 0b000 | Sh -> 0b001 | Sw -> 0b010 | Sd -> 0b011

let branch_funct3 : Inst.branch_op -> int = function
  | Beq -> 0b000 | Bne -> 0b001 | Blt -> 0b100 | Bge -> 0b101 | Bltu -> 0b110 | Bgeu -> 0b111

let reg = Reg.to_int
let bits v ~lo ~width = (v lsr lo) land ((1 lsl width) - 1)

let encode_int inst =
  match Inst.validate inst with
  | Error msg -> invalid_arg ("Encode.encode: " ^ msg)
  | Ok () ->
    (match inst with
    | Inst.R (op, rd, rs1, rs2) ->
      let opcode, f3, f7 = r_fields op in
      (f7 lsl 25) lor (reg rs2 lsl 20) lor (reg rs1 lsl 15) lor (f3 lsl 12) lor (reg rd lsl 7)
      lor opcode
    | Inst.I (op, rd, rs1, imm) ->
      let opcode, f3 = i_funct3 op in
      (bits imm ~lo:0 ~width:12 lsl 20) lor (reg rs1 lsl 15) lor (f3 lsl 12) lor (reg rd lsl 7)
      lor opcode
    | Inst.Shift (op, rd, rs1, shamt) ->
      let opcode, f3, hi = shift_fields op in
      (hi lsl 26) lor (bits shamt ~lo:0 ~width:6 lsl 20) lor (reg rs1 lsl 15) lor (f3 lsl 12)
      lor (reg rd lsl 7) lor opcode
    | Inst.U (op, rd, imm) ->
      let opcode = match op with Inst.Lui -> opc_lui | Inst.Auipc -> opc_auipc in
      (bits imm ~lo:0 ~width:20 lsl 12) lor (reg rd lsl 7) lor opcode
    | Inst.Load (op, rd, base, off) ->
      (bits off ~lo:0 ~width:12 lsl 20) lor (reg base lsl 15) lor (load_funct3 op lsl 12)
      lor (reg rd lsl 7) lor opc_load
    | Inst.Store (op, src, base, off) ->
      (bits off ~lo:5 ~width:7 lsl 25) lor (reg src lsl 20) lor (reg base lsl 15)
      lor (store_funct3 op lsl 12) lor (bits off ~lo:0 ~width:5 lsl 7) lor opc_store
    | Inst.Branch (op, rs1, rs2, off) ->
      (bits off ~lo:12 ~width:1 lsl 31) lor (bits off ~lo:5 ~width:6 lsl 25) lor (reg rs2 lsl 20)
      lor (reg rs1 lsl 15) lor (branch_funct3 op lsl 12) lor (bits off ~lo:1 ~width:4 lsl 8)
      lor (bits off ~lo:11 ~width:1 lsl 7) lor opc_branch
    | Inst.Jal (rd, off) ->
      (bits off ~lo:20 ~width:1 lsl 31) lor (bits off ~lo:1 ~width:10 lsl 21)
      lor (bits off ~lo:11 ~width:1 lsl 20) lor (bits off ~lo:12 ~width:8 lsl 12)
      lor (reg rd lsl 7) lor opc_jal
    | Inst.Jalr (rd, rs1, off) ->
      (bits off ~lo:0 ~width:12 lsl 20) lor (reg rs1 lsl 15) lor (reg rd lsl 7) lor opc_jalr
    | Inst.Ecall -> opc_system
    | Inst.Ebreak -> (1 lsl 20) lor opc_system
    | Inst.Fence -> 0x0ff0000f
    | Inst.Csrr (rd, csr) ->
      (* csrrs rd, csr, x0 *)
      (csr lsl 20) lor (0b010 lsl 12) lor (reg rd lsl 7) lor opc_system)

let encode inst = Int32.of_int (encode_int inst land 0xFFFFFFFF)

let encode_exn_message inst =
  match Inst.validate inst with Ok () -> None | Error msg -> Some msg

module Field = struct
  let opcode = 0x0000007Fl
  let rd = 0x00000F80l
  let rs1 = 0x000F8000l
  let rs2 = 0x01F00000l
  let funct3 = 0x00007000l
  let imm_i = 0xFFF00000l
  let imm_s = 0xFE000F80l
  let imm_u = 0xFFFFF000l
end
