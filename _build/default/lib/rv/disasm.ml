let reg = Reg.abi_name

let pp_inst fmt (inst : Inst.t) =
  let p = Format.fprintf in
  match inst with
  | R (_, rd, rs1, rs2) -> p fmt "%s %s, %s, %s" (Inst.mnemonic inst) (reg rd) (reg rs1) (reg rs2)
  | I (_, rd, rs1, imm) -> p fmt "%s %s, %s, %d" (Inst.mnemonic inst) (reg rd) (reg rs1) imm
  | Shift (_, rd, rs1, sh) -> p fmt "%s %s, %s, %d" (Inst.mnemonic inst) (reg rd) (reg rs1) sh
  | U (_, rd, imm) -> p fmt "%s %s, 0x%x" (Inst.mnemonic inst) (reg rd) (imm land 0xFFFFF)
  | Load (_, rd, base, off) -> p fmt "%s %s, %d(%s)" (Inst.mnemonic inst) (reg rd) off (reg base)
  | Store (_, src, base, off) -> p fmt "%s %s, %d(%s)" (Inst.mnemonic inst) (reg src) off (reg base)
  | Branch (_, rs1, rs2, off) -> p fmt "%s %s, %s, %d" (Inst.mnemonic inst) (reg rs1) (reg rs2) off
  | Jal (rd, off) -> p fmt "jal %s, %d" (reg rd) off
  | Jalr (rd, rs1, off) -> p fmt "jalr %s, %d(%s)" (reg rd) off (reg rs1)
  | Ecall -> p fmt "ecall"
  | Ebreak -> p fmt "ebreak"
  | Fence -> p fmt "fence"
  | Csrr (rd, csr) -> (
    match csr with
    | 0xC00 -> p fmt "rdcycle %s" (reg rd)
    | 0xC01 -> p fmt "rdtime %s" (reg rd)
    | 0xC02 -> p fmt "rdinstret %s" (reg rd)
    | _ -> p fmt "csrr %s, 0x%x" (reg rd) csr)

let inst_to_string inst = Format.asprintf "%a" pp_inst inst

type line = { offset : int; size : int; raw : int; decoded : Inst.t option }

let disassemble_stream text =
  let n = Bytes.length text in
  let rec sweep offset acc =
    if offset >= n then List.rev acc
    else if offset + 2 > n then
      (* trailing odd byte: report as an undecodable 16-bit slot *)
      List.rev ({ offset; size = n - offset; raw = Char.code (Bytes.get text offset); decoded = None } :: acc)
    else
      let parcel = Eric_util.Bytesx.get_u16 text offset in
      if parcel land 0b11 = 0b11 && offset + 4 <= n then
        let word = Int32.to_int (Eric_util.Bytesx.get_u32 text offset) land 0xFFFFFFFF in
        let decoded = Decode.decode (Eric_util.Bytesx.get_u32 text offset) in
        sweep (offset + 4) ({ offset; size = 4; raw = word; decoded } :: acc)
      else
        let decoded = Rvc.expand parcel in
        sweep (offset + 2) ({ offset; size = 2; raw = parcel; decoded } :: acc)
  in
  sweep 0 []

let pp_listing fmt lines =
  List.iter
    (fun l ->
      match l.decoded with
      | Some inst ->
        Format.fprintf fmt "%6x:  %0*x  %a@." l.offset (2 * l.size) l.raw pp_inst inst
      | None -> Format.fprintf fmt "%6x:  %0*x  <invalid>@." l.offset (2 * l.size) l.raw)
    lines

let pp_listing_symbols ~symbols fmt lines =
  let by_offset = Hashtbl.create 32 in
  List.iter (fun (name, off) -> Hashtbl.replace by_offset off name) symbols;
  let sorted = List.sort (fun (_, a) (_, b) -> Int.compare a b) symbols in
  let locate target =
    (* nearest symbol at or below the target *)
    let rec best acc = function
      | (name, off) :: rest when off <= target -> best (Some (name, off)) rest
      | _ -> acc
    in
    match best None sorted with
    | Some (name, off) when off = target -> Some name
    | Some (name, off) -> Some (Printf.sprintf "%s+0x%x" name (target - off))
    | None -> None
  in
  List.iter
    (fun l ->
      (match Hashtbl.find_opt by_offset l.offset with
      | Some name -> Format.fprintf fmt "%s:@." name
      | None -> ());
      match l.decoded with
      | None -> Format.fprintf fmt "%6x:  %0*x  <invalid>@." l.offset (2 * l.size) l.raw
      | Some inst ->
        let annotation =
          match inst with
          | Inst.Branch (_, _, _, off) | Inst.Jal (_, off) -> (
            match locate (l.offset + off) with
            | Some sym -> Printf.sprintf "    <%s>" sym
            | None -> "")
          | _ -> ""
        in
        Format.fprintf fmt "%6x:  %0*x  %a%s@." l.offset (2 * l.size) l.raw pp_inst inst
          annotation)
    lines
