(** Executable program images.

    An image is what the compiler hands to ERIC's packaging stage and what
    the target SoC loads: a text section of instruction parcels (16-bit
    compressed or 32-bit), an initialised data section, a BSS size, and an
    entry offset.  [to_binary]/[of_binary] define the *plain* (unencrypted)
    on-the-wire format whose size is the Fig-5 baseline. *)

type parcel =
  | P16 of int  (** compressed instruction, low 16 bits significant *)
  | P32 of int32

type t = {
  text : parcel array;
  data : bytes;
  bss_size : int;
  entry_offset : int;  (** byte offset of the entry point within text *)
  symbols : (string * int) list;  (** label -> text byte offset (serialised on request) *)
}

val parcel_size : parcel -> int
(** 2 or 4 bytes. *)

val text_size : t -> int
(** Text section length in bytes. *)

val total_size : t -> int
(** Text + data bytes (BSS occupies no image bytes). *)

val parcel_offsets : t -> int array
(** Byte offset of each parcel within the text section. *)

val text_bytes : t -> bytes
(** Little-endian serialisation of the parcel stream. *)

val frame_text : bytes -> parcel array option
(** Reconstruct the parcel structure of *plaintext* text bytes using the
    ISA's length encoding (low two bits [11] = 32-bit).  [None] when the
    byte count does not tile (e.g. a 32-bit marker with only 2 bytes
    left). *)

val decode_parcel : parcel -> Inst.t option
val decode_all : t -> Inst.t array option

(** Memory layout shared by the linker and the SoC loader. *)
module Layout : sig
  val text_base : int
  val data_base : t -> int
  (** Text base plus text size, rounded up to a 4 KiB boundary. *)

  val bss_base : t -> int
  val stack_top : int
  val memory_size : int
  val entry_address : t -> int
end

val to_binary : ?with_symbols:bool -> t -> bytes
(** Plain binary: 24-byte header (magic "REXE", version, flags, entry,
    section sizes) followed by text then data.  [with_symbols] (default
    false, so evaluation baselines stay lean) appends a symbol table —
    [u32 count] then per symbol [u16 name length, name, u32 text offset] —
    and sets a header flag; {!of_binary} restores it. *)

val of_binary : bytes -> (t, string) result

val pp_summary : Format.formatter -> t -> unit
