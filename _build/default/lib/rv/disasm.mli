(** Textual disassembly in standard RISC-V assembly syntax.

    Besides debugging, this is the tool the paper's static-analysis attacker
    wields: "a binary can be converted into a human-readable form by using
    standard compiler tools (e.g., disassembler)".  {!disassemble_stream}
    therefore behaves like a real objdump over raw bytes — decoding both
    16-bit and 32-bit parcels and flagging undecodable words — so the
    analysis module can quantify what an attacker recovers from plaintext
    versus ERIC-encrypted text sections. *)

val pp_inst : Format.formatter -> Inst.t -> unit
(** e.g. [addi a0, sp, 16], [ld s1, 8(sp)], [beq a0, a1, 24] (control-flow
    offsets are printed as signed byte displacements). *)

val inst_to_string : Inst.t -> string

type line = {
  offset : int;  (** byte offset of the parcel in the stream *)
  size : int;  (** 2 or 4 bytes *)
  raw : int;  (** raw parcel value (16 or 32 bits) *)
  decoded : Inst.t option;  (** [None] = not a valid encoding *)
}

val disassemble_stream : bytes -> line list
(** Linear sweep from offset 0: reads a 16-bit parcel, treats it as the low
    half of a 32-bit instruction when its low two bits are [11], otherwise
    as a compressed instruction.  Undecodable 32-bit words consume 4 bytes;
    undecodable 16-bit parcels consume 2. *)

val pp_listing : Format.formatter -> line list -> unit

val pp_listing_symbols :
  symbols:(string * int) list -> Format.formatter -> line list -> unit
(** Listing with label lines inserted at symbol offsets and control-flow
    targets annotated with the symbol (or [symbol+delta]) they land on —
    objdump-style output. *)
