type parcel = P16 of int | P32 of int32

type t = {
  text : parcel array;
  data : bytes;
  bss_size : int;
  entry_offset : int;
  symbols : (string * int) list;
}

let parcel_size = function P16 _ -> 2 | P32 _ -> 4
let text_size t = Array.fold_left (fun acc p -> acc + parcel_size p) 0 t.text
let total_size t = text_size t + Bytes.length t.data

let parcel_offsets t =
  let off = ref 0 in
  Array.map
    (fun p ->
      let here = !off in
      off := !off + parcel_size p;
      here)
    t.text

let text_bytes t =
  let buf = Bytes.create (text_size t) in
  let off = ref 0 in
  Array.iter
    (fun p ->
      (match p with
      | P16 v -> Eric_util.Bytesx.set_u16 buf !off (v land 0xFFFF)
      | P32 w -> Eric_util.Bytesx.set_u32 buf !off w);
      off := !off + parcel_size p)
    t.text;
  buf

let frame_text bytes =
  let n = Bytes.length bytes in
  let rec walk off acc =
    if off = n then Some (Array.of_list (List.rev acc))
    else if off + 2 > n then None
    else
      let half = Eric_util.Bytesx.get_u16 bytes off in
      if half land 0b11 = 0b11 then
        if off + 4 > n then None
        else walk (off + 4) (P32 (Eric_util.Bytesx.get_u32 bytes off) :: acc)
      else walk (off + 2) (P16 half :: acc)
  in
  walk 0 []

let decode_parcel = function P16 v -> Rvc.expand v | P32 w -> Decode.decode w

let decode_all t =
  let insts = Array.map decode_parcel t.text in
  if Array.for_all Option.is_some insts then Some (Array.map Option.get insts) else None

module Layout = struct
  let text_base = 0x10000
  let page = 0x1000
  let round_up v = (v + page - 1) / page * page
  let data_base t = text_base + round_up (text_size t)
  let bss_base t = data_base t + Bytes.length t.data
  let memory_size = 16 * 1024 * 1024
  let stack_top = memory_size - 16
  let entry_address t = text_base + t.entry_offset
end

let magic = "REXE"
let version = 1
let header_size = 24

let symtab_bytes symbols =
  let buf = Buffer.create 64 in
  let b4 = Bytes.create 4 and b2 = Bytes.create 2 in
  Eric_util.Bytesx.set_u32 b4 0 (Int32.of_int (List.length symbols));
  Buffer.add_bytes buf b4;
  List.iter
    (fun (name, offset) ->
      Eric_util.Bytesx.set_u16 b2 0 (String.length name);
      Buffer.add_bytes buf b2;
      Buffer.add_string buf name;
      Eric_util.Bytesx.set_u32 b4 0 (Int32.of_int offset);
      Buffer.add_bytes buf b4)
    symbols;
  Buffer.contents buf

let to_binary ?(with_symbols = false) t =
  let text = text_bytes t in
  let symtab = if with_symbols then symtab_bytes t.symbols else "" in
  let out =
    Bytes.create (header_size + Bytes.length text + Bytes.length t.data + String.length symtab)
  in
  Bytes.blit_string magic 0 out 0 4;
  Eric_util.Bytesx.set_u16 out 4 version;
  Eric_util.Bytesx.set_u16 out 6 (if with_symbols then 1 else 0);
  Eric_util.Bytesx.set_u32 out 8 (Int32.of_int t.entry_offset);
  Eric_util.Bytesx.set_u32 out 12 (Int32.of_int (Bytes.length text));
  Eric_util.Bytesx.set_u32 out 16 (Int32.of_int (Bytes.length t.data));
  Eric_util.Bytesx.set_u32 out 20 (Int32.of_int t.bss_size);
  Bytes.blit text 0 out header_size (Bytes.length text);
  Bytes.blit t.data 0 out (header_size + Bytes.length text) (Bytes.length t.data);
  Bytes.blit_string symtab 0 out
    (header_size + Bytes.length text + Bytes.length t.data)
    (String.length symtab);
  out

let of_binary b =
  let ( let* ) = Result.bind in
  let* () = if Bytes.length b >= header_size then Ok () else Error "image too short" in
  let* () =
    if Bytes.sub_string b 0 4 = magic then Ok () else Error "bad magic (not a REXE image)"
  in
  let* () =
    if Eric_util.Bytesx.get_u16 b 4 = version then Ok () else Error "unsupported image version"
  in
  let flags = Eric_util.Bytesx.get_u16 b 6 in
  let entry_offset = Int32.to_int (Eric_util.Bytesx.get_u32 b 8) in
  let text_len = Int32.to_int (Eric_util.Bytesx.get_u32 b 12) in
  let data_len = Int32.to_int (Eric_util.Bytesx.get_u32 b 16) in
  let bss_size = Int32.to_int (Eric_util.Bytesx.get_u32 b 20) in
  let has_symbols = flags land 1 = 1 in
  let* () =
    let body = header_size + text_len + data_len in
    if text_len >= 0 && data_len >= 0 && bss_size >= 0
       && (if has_symbols then Bytes.length b >= body + 4 else Bytes.length b = body)
    then Ok ()
    else Error "inconsistent section lengths"
  in
  let text_raw = Bytes.sub b header_size text_len in
  let* text =
    match frame_text text_raw with
    | Some parcels -> Ok parcels
    | None -> Error "text section does not tile into parcels"
  in
  let data = Bytes.sub b (header_size + text_len) data_len in
  let* () =
    if entry_offset >= 0 && entry_offset <= text_len then Ok () else Error "entry out of range"
  in
  let* symbols =
    if not has_symbols then Ok []
    else begin
      let pos = ref (header_size + text_len + data_len) in
      let remaining () = Bytes.length b - !pos in
      if remaining () < 4 then Error "truncated symbol table"
      else begin
        let count = Int32.to_int (Eric_util.Bytesx.get_u32 b !pos) in
        pos := !pos + 4;
        let rec read n acc =
          if n = 0 then if remaining () = 0 then Ok (List.rev acc) else Error "trailing bytes after symbol table"
          else if remaining () < 2 then Error "truncated symbol entry"
          else begin
            let name_len = Eric_util.Bytesx.get_u16 b !pos in
            pos := !pos + 2;
            if remaining () < name_len + 4 then Error "truncated symbol entry"
            else begin
              let name = Bytes.sub_string b !pos name_len in
              pos := !pos + name_len;
              let offset = Int32.to_int (Eric_util.Bytesx.get_u32 b !pos) in
              pos := !pos + 4;
              read (n - 1) ((name, offset) :: acc)
            end
          end
        in
        if count < 0 then Error "negative symbol count" else read count []
      end
    end
  in
  Ok { text; data; bss_size; entry_offset; symbols }

let pp_summary fmt t =
  Format.fprintf fmt "text %d B (%d parcels), data %d B, bss %d B, entry +0x%x" (text_size t)
    (Array.length t.text) (Bytes.length t.data) t.bss_size t.entry_offset
