let bits v ~lo ~width = (v lsr lo) land ((1 lsl width) - 1)
let sign_extend ~bits:n v = if v land (1 lsl (n - 1)) <> 0 then v - (1 lsl n) else v
let fits_simm = Inst.fits_simm

(* 3-bit register fields address x8..x15. *)
let creg_of_field f = Reg.of_int (8 + f)
let field_of_creg r = Reg.to_int r - 8
let compressible r = Reg.is_compressible r

let q0 = 0b00
let q1 = 0b01
let q2 = 0b10

let make ~quadrant ~funct3 body = (funct3 lsl 13) lor body lor quadrant

(* ------------------------------------------------------------------ *)
(* Compression                                                         *)
(* ------------------------------------------------------------------ *)

let compress_addi rd rs1 imm =
  let zero = Reg.x0 and sp = Reg.sp in
  if Reg.equal rd zero && Reg.equal rs1 zero && imm = 0 then Some (make ~quadrant:q1 ~funct3:0 0)
    (* c.nop *)
  else if Reg.equal rd rs1 && not (Reg.equal rd zero) && imm <> 0 && fits_simm ~bits:6 imm then
    Some
      (make ~quadrant:q1 ~funct3:0b000
         ((bits imm ~lo:5 ~width:1 lsl 12) lor (Reg.to_int rd lsl 7) lor (bits imm ~lo:0 ~width:5 lsl 2)))
  else if Reg.equal rs1 zero && not (Reg.equal rd zero) && fits_simm ~bits:6 imm then
    Some
      (make ~quadrant:q1 ~funct3:0b010
         ((bits imm ~lo:5 ~width:1 lsl 12) lor (Reg.to_int rd lsl 7) lor (bits imm ~lo:0 ~width:5 lsl 2)))
  else if
    Reg.equal rd sp && Reg.equal rs1 sp && imm <> 0 && imm mod 16 = 0 && fits_simm ~bits:10 imm
  then
    Some
      (make ~quadrant:q1 ~funct3:0b011
         ((bits imm ~lo:9 ~width:1 lsl 12) lor (2 lsl 7)
         lor (bits imm ~lo:4 ~width:1 lsl 6)
         lor (bits imm ~lo:6 ~width:1 lsl 5)
         lor (bits imm ~lo:7 ~width:2 lsl 3)
         lor (bits imm ~lo:5 ~width:1 lsl 2)))
  else if Reg.equal rs1 sp && compressible rd && imm > 0 && imm mod 4 = 0 && imm < 1024 then
    Some
      (make ~quadrant:q0 ~funct3:0b000
         ((bits imm ~lo:4 ~width:2 lsl 11) lor (bits imm ~lo:6 ~width:4 lsl 7)
         lor (bits imm ~lo:2 ~width:1 lsl 6)
         lor (bits imm ~lo:3 ~width:1 lsl 5)
         lor (field_of_creg rd lsl 2)))
  else None

let compress_load_store ~funct3_q0 ~funct3_q2 ~word_size ~value ~base ~off ~is_load =
  (* [value] is rd for loads, rs2 for stores. *)
  let scale = word_size and sp = Reg.sp in
  let q0_form () =
    if compressible value && compressible base && off >= 0 && off mod scale = 0 && off < 256
       && (scale = 8 || off < 128)
    then
      let imm_bits =
        if scale = 4 then
          (bits off ~lo:3 ~width:3 lsl 10) lor (bits off ~lo:2 ~width:1 lsl 6)
          lor (bits off ~lo:6 ~width:1 lsl 5)
        else (bits off ~lo:3 ~width:3 lsl 10) lor (bits off ~lo:6 ~width:2 lsl 5)
      in
      Some
        (make ~quadrant:q0 ~funct3:funct3_q0
           (imm_bits lor (field_of_creg base lsl 7) lor (field_of_creg value lsl 2)))
    else None
  in
  let q2_form () =
    let max_off = if scale = 4 then 256 else 512 in
    if Reg.equal base sp && off >= 0 && off mod scale = 0 && off < max_off
       && ((not is_load) || not (Reg.equal value Reg.x0))
    then
      if is_load then
        let imm_bits =
          if scale = 4 then
            (bits off ~lo:5 ~width:1 lsl 12) lor (bits off ~lo:2 ~width:3 lsl 4)
            lor (bits off ~lo:6 ~width:2 lsl 2)
          else
            (bits off ~lo:5 ~width:1 lsl 12) lor (bits off ~lo:3 ~width:2 lsl 5)
            lor (bits off ~lo:6 ~width:3 lsl 2)
        in
        Some (make ~quadrant:q2 ~funct3:funct3_q2 (imm_bits lor (Reg.to_int value lsl 7)))
      else
        let imm_bits =
          if scale = 4 then (bits off ~lo:2 ~width:4 lsl 9) lor (bits off ~lo:6 ~width:2 lsl 7)
          else (bits off ~lo:3 ~width:3 lsl 10) lor (bits off ~lo:6 ~width:3 lsl 7)
        in
        Some (make ~quadrant:q2 ~funct3:funct3_q2 (imm_bits lor (Reg.to_int value lsl 2)))
    else None
  in
  match q0_form () with Some e -> Some e | None -> q2_form ()

let compress_j off =
  if fits_simm ~bits:12 off && off land 1 = 0 then
    Some
      (make ~quadrant:q1 ~funct3:0b101
         ((bits off ~lo:11 ~width:1 lsl 12) lor (bits off ~lo:4 ~width:1 lsl 11)
         lor (bits off ~lo:8 ~width:2 lsl 9)
         lor (bits off ~lo:10 ~width:1 lsl 8)
         lor (bits off ~lo:6 ~width:1 lsl 7)
         lor (bits off ~lo:7 ~width:1 lsl 6)
         lor (bits off ~lo:1 ~width:3 lsl 3)
         lor (bits off ~lo:5 ~width:1 lsl 2)))
  else None

let compress_branch ~funct3 rs1 off =
  if compressible rs1 && fits_simm ~bits:9 off && off land 1 = 0 then
    Some
      (make ~quadrant:q1 ~funct3
         ((bits off ~lo:8 ~width:1 lsl 12) lor (bits off ~lo:3 ~width:2 lsl 10)
         lor (field_of_creg rs1 lsl 7)
         lor (bits off ~lo:6 ~width:2 lsl 5)
         lor (bits off ~lo:1 ~width:2 lsl 3)
         lor (bits off ~lo:5 ~width:1 lsl 2)))
  else None

let ca_funct2 : Inst.r_op -> (int * int) option = function
  | Sub -> Some (0, 0b00)
  | Xor -> Some (0, 0b01)
  | Or -> Some (0, 0b10)
  | And -> Some (0, 0b11)
  | Subw -> Some (1, 0b00)
  | Addw -> Some (1, 0b01)
  | Add | Sll | Slt | Sltu | Srl | Sra | Sllw | Srlw | Sraw | Mul | Mulh | Mulhsu | Mulhu | Div
  | Divu | Rem | Remu | Mulw | Divw | Divuw | Remw | Remuw ->
    None

let compress inst =
  let zero = Reg.x0 in
  match inst with
  | Inst.I (Addi, rd, rs1, imm) -> compress_addi rd rs1 imm
  | Inst.I (Addiw, rd, rs1, imm)
    when Reg.equal rd rs1 && (not (Reg.equal rd zero)) && fits_simm ~bits:6 imm ->
    Some
      (make ~quadrant:q1 ~funct3:0b001
         ((bits imm ~lo:5 ~width:1 lsl 12) lor (Reg.to_int rd lsl 7) lor (bits imm ~lo:0 ~width:5 lsl 2)))
  | Inst.I (Andi, rd, rs1, imm) when Reg.equal rd rs1 && compressible rd && fits_simm ~bits:6 imm ->
    Some
      (make ~quadrant:q1 ~funct3:0b100
         ((bits imm ~lo:5 ~width:1 lsl 12) lor (0b10 lsl 10) lor (field_of_creg rd lsl 7)
         lor (bits imm ~lo:0 ~width:5 lsl 2)))
  | Inst.U (Lui, rd, imm)
    when (not (Reg.equal rd zero)) && (not (Reg.equal rd Reg.sp)) && imm <> 0
         && fits_simm ~bits:6 imm ->
    Some
      (make ~quadrant:q1 ~funct3:0b011
         ((bits imm ~lo:5 ~width:1 lsl 12) lor (Reg.to_int rd lsl 7) lor (bits imm ~lo:0 ~width:5 lsl 2)))
  | Inst.R (Add, rd, rs1, rs2) when Reg.equal rs1 zero && (not (Reg.equal rd zero)) && not (Reg.equal rs2 zero)
    ->
    Some (make ~quadrant:q2 ~funct3:0b100 ((Reg.to_int rd lsl 7) lor (Reg.to_int rs2 lsl 2)))
  | Inst.R (Add, rd, rs1, rs2)
    when Reg.equal rd rs1 && (not (Reg.equal rd zero)) && not (Reg.equal rs2 zero) ->
    Some
      (make ~quadrant:q2 ~funct3:0b100
         ((1 lsl 12) lor (Reg.to_int rd lsl 7) lor (Reg.to_int rs2 lsl 2)))
  | Inst.R (op, rd, rs1, rs2) when Reg.equal rd rs1 && compressible rd && compressible rs2 -> (
    match ca_funct2 op with
    | Some (w, f2) ->
      Some
        (make ~quadrant:q1 ~funct3:0b100
           ((w lsl 12) lor (0b11 lsl 10) lor (field_of_creg rd lsl 7) lor (f2 lsl 5)
           lor (field_of_creg rs2 lsl 2)))
    | None -> None)
  | Inst.Shift (Slli, rd, rs1, sh) when Reg.equal rd rs1 && (not (Reg.equal rd zero)) && sh > 0 ->
    Some
      (make ~quadrant:q2 ~funct3:0b000
         ((bits sh ~lo:5 ~width:1 lsl 12) lor (Reg.to_int rd lsl 7) lor (bits sh ~lo:0 ~width:5 lsl 2)))
  | Inst.Shift (((Srli | Srai) as op), rd, rs1, sh)
    when Reg.equal rd rs1 && compressible rd && sh > 0 ->
    let f2 = match op with Srli -> 0b00 | _ -> 0b01 in
    Some
      (make ~quadrant:q1 ~funct3:0b100
         ((bits sh ~lo:5 ~width:1 lsl 12) lor (f2 lsl 10) lor (field_of_creg rd lsl 7)
         lor (bits sh ~lo:0 ~width:5 lsl 2)))
  | Inst.Load (Lw, rd, base, off) ->
    compress_load_store ~funct3_q0:0b010 ~funct3_q2:0b010 ~word_size:4 ~value:rd ~base ~off
      ~is_load:true
  | Inst.Load (Ld, rd, base, off) ->
    compress_load_store ~funct3_q0:0b011 ~funct3_q2:0b011 ~word_size:8 ~value:rd ~base ~off
      ~is_load:true
  | Inst.Store (Sw, src, base, off) ->
    compress_load_store ~funct3_q0:0b110 ~funct3_q2:0b110 ~word_size:4 ~value:src ~base ~off
      ~is_load:false
  | Inst.Store (Sd, src, base, off) ->
    compress_load_store ~funct3_q0:0b111 ~funct3_q2:0b111 ~word_size:8 ~value:src ~base ~off
      ~is_load:false
  | Inst.Jal (rd, off) when Reg.equal rd zero -> compress_j off
  | Inst.Branch (Beq, rs1, rs2, off) when Reg.equal rs2 zero -> compress_branch ~funct3:0b110 rs1 off
  | Inst.Branch (Bne, rs1, rs2, off) when Reg.equal rs2 zero -> compress_branch ~funct3:0b111 rs1 off
  | Inst.Jalr (rd, rs1, 0) when Reg.equal rd zero && not (Reg.equal rs1 zero) ->
    Some (make ~quadrant:q2 ~funct3:0b100 (Reg.to_int rs1 lsl 7))
  | Inst.Jalr (rd, rs1, 0) when Reg.equal rd Reg.ra && not (Reg.equal rs1 zero) ->
    Some (make ~quadrant:q2 ~funct3:0b100 ((1 lsl 12) lor (Reg.to_int rs1 lsl 7)))
  | Inst.Ebreak -> Some (make ~quadrant:q2 ~funct3:0b100 (1 lsl 12))
  | Inst.I _ | Inst.U _ | Inst.R _ | Inst.Shift _ | Inst.Load _ | Inst.Store _ | Inst.Branch _
  | Inst.Jal _ | Inst.Jalr _ | Inst.Ecall | Inst.Fence | Inst.Csrr _ ->
    None

(* ------------------------------------------------------------------ *)
(* Expansion                                                           *)
(* ------------------------------------------------------------------ *)

let expand_q0 p =
  let rd' = creg_of_field (bits p ~lo:2 ~width:3) in
  let rs1' = creg_of_field (bits p ~lo:7 ~width:3) in
  match bits p ~lo:13 ~width:3 with
  | 0b000 ->
    let imm =
      (bits p ~lo:11 ~width:2 lsl 4) lor (bits p ~lo:7 ~width:4 lsl 6)
      lor (bits p ~lo:6 ~width:1 lsl 2)
      lor (bits p ~lo:5 ~width:1 lsl 3)
    in
    if imm = 0 then None (* includes the all-zero illegal parcel *)
    else Some (Inst.I (Addi, rd', Reg.sp, imm))
  | 0b010 ->
    let off =
      (bits p ~lo:10 ~width:3 lsl 3) lor (bits p ~lo:6 ~width:1 lsl 2)
      lor (bits p ~lo:5 ~width:1 lsl 6)
    in
    Some (Inst.Load (Lw, rd', rs1', off))
  | 0b011 ->
    let off = (bits p ~lo:10 ~width:3 lsl 3) lor (bits p ~lo:5 ~width:2 lsl 6) in
    Some (Inst.Load (Ld, rd', rs1', off))
  | 0b110 ->
    let off =
      (bits p ~lo:10 ~width:3 lsl 3) lor (bits p ~lo:6 ~width:1 lsl 2)
      lor (bits p ~lo:5 ~width:1 lsl 6)
    in
    Some (Inst.Store (Sw, rd', rs1', off))
  | 0b111 ->
    let off = (bits p ~lo:10 ~width:3 lsl 3) lor (bits p ~lo:5 ~width:2 lsl 6) in
    Some (Inst.Store (Sd, rd', rs1', off))
  | _ -> None

let expand_q1 p =
  let rd = Reg.of_int (bits p ~lo:7 ~width:5) in
  let imm6 = sign_extend ~bits:6 ((bits p ~lo:12 ~width:1 lsl 5) lor bits p ~lo:2 ~width:5) in
  match bits p ~lo:13 ~width:3 with
  | 0b000 ->
    if Reg.equal rd Reg.x0 then if imm6 = 0 then Some (Inst.I (Addi, Reg.x0, Reg.x0, 0)) else None
    else if imm6 = 0 then None (* HINT *)
    else Some (Inst.I (Addi, rd, rd, imm6))
  | 0b001 -> if Reg.equal rd Reg.x0 then None else Some (Inst.I (Addiw, rd, rd, imm6))
  | 0b010 -> if Reg.equal rd Reg.x0 then None else Some (Inst.I (Addi, rd, Reg.x0, imm6))
  | 0b011 ->
    if Reg.to_int rd = 2 then begin
      let imm =
        (bits p ~lo:12 ~width:1 lsl 9) lor (bits p ~lo:6 ~width:1 lsl 4)
        lor (bits p ~lo:5 ~width:1 lsl 6)
        lor (bits p ~lo:3 ~width:2 lsl 7)
        lor (bits p ~lo:2 ~width:1 lsl 5)
      in
      let imm = sign_extend ~bits:10 imm in
      if imm = 0 then None else Some (Inst.I (Addi, Reg.sp, Reg.sp, imm))
    end
    else if Reg.equal rd Reg.x0 || imm6 = 0 then None
    else Some (Inst.U (Lui, rd, imm6))
  | 0b100 -> (
    let rd' = creg_of_field (bits p ~lo:7 ~width:3) in
    match bits p ~lo:10 ~width:2 with
    | 0b00 | 0b01 ->
      let sh = (bits p ~lo:12 ~width:1 lsl 5) lor bits p ~lo:2 ~width:5 in
      if sh = 0 then None
      else
        let op : Inst.shift_op = if bits p ~lo:10 ~width:2 = 0 then Srli else Srai in
        Some (Inst.Shift (op, rd', rd', sh))
    | 0b10 -> Some (Inst.I (Andi, rd', rd', imm6))
    | _ -> (
      let rs2' = creg_of_field (bits p ~lo:2 ~width:3) in
      let w = bits p ~lo:12 ~width:1 in
      match (w, bits p ~lo:5 ~width:2) with
      | 0, 0b00 -> Some (Inst.R (Sub, rd', rd', rs2'))
      | 0, 0b01 -> Some (Inst.R (Xor, rd', rd', rs2'))
      | 0, 0b10 -> Some (Inst.R (Or, rd', rd', rs2'))
      | 0, 0b11 -> Some (Inst.R (And, rd', rd', rs2'))
      | 1, 0b00 -> Some (Inst.R (Subw, rd', rd', rs2'))
      | 1, 0b01 -> Some (Inst.R (Addw, rd', rd', rs2'))
      | _ -> None))
  | 0b101 ->
    let off =
      (bits p ~lo:12 ~width:1 lsl 11) lor (bits p ~lo:11 ~width:1 lsl 4)
      lor (bits p ~lo:9 ~width:2 lsl 8)
      lor (bits p ~lo:8 ~width:1 lsl 10)
      lor (bits p ~lo:7 ~width:1 lsl 6)
      lor (bits p ~lo:6 ~width:1 lsl 7)
      lor (bits p ~lo:3 ~width:3 lsl 1)
      lor (bits p ~lo:2 ~width:1 lsl 5)
    in
    Some (Inst.Jal (Reg.x0, sign_extend ~bits:12 off))
  | 0b110 | 0b111 ->
    let rs1' = creg_of_field (bits p ~lo:7 ~width:3) in
    let off =
      (bits p ~lo:12 ~width:1 lsl 8) lor (bits p ~lo:10 ~width:2 lsl 3)
      lor (bits p ~lo:5 ~width:2 lsl 6)
      lor (bits p ~lo:3 ~width:2 lsl 1)
      lor (bits p ~lo:2 ~width:1 lsl 5)
    in
    let off = sign_extend ~bits:9 off in
    let op : Inst.branch_op = if bits p ~lo:13 ~width:3 = 0b110 then Beq else Bne in
    Some (Inst.Branch (op, rs1', Reg.x0, off))
  | _ -> None

let expand_q2 p =
  let rd = Reg.of_int (bits p ~lo:7 ~width:5) in
  let rs2 = Reg.of_int (bits p ~lo:2 ~width:5) in
  let zero = Reg.x0 in
  match bits p ~lo:13 ~width:3 with
  | 0b000 ->
    let sh = (bits p ~lo:12 ~width:1 lsl 5) lor bits p ~lo:2 ~width:5 in
    if Reg.equal rd zero || sh = 0 then None else Some (Inst.Shift (Slli, rd, rd, sh))
  | 0b010 ->
    let off =
      (bits p ~lo:12 ~width:1 lsl 5) lor (bits p ~lo:4 ~width:3 lsl 2)
      lor (bits p ~lo:2 ~width:2 lsl 6)
    in
    if Reg.equal rd zero then None else Some (Inst.Load (Lw, rd, Reg.sp, off))
  | 0b011 ->
    let off =
      (bits p ~lo:12 ~width:1 lsl 5) lor (bits p ~lo:5 ~width:2 lsl 3)
      lor (bits p ~lo:2 ~width:3 lsl 6)
    in
    if Reg.equal rd zero then None else Some (Inst.Load (Ld, rd, Reg.sp, off))
  | 0b100 -> (
    match (bits p ~lo:12 ~width:1, Reg.equal rd zero, Reg.equal rs2 zero) with
    | 0, false, true -> Some (Inst.Jalr (zero, rd, 0)) (* c.jr *)
    | 0, false, false -> Some (Inst.R (Add, rd, zero, rs2)) (* c.mv *)
    | 1, true, true -> Some Inst.Ebreak
    | 1, false, true -> Some (Inst.Jalr (Reg.ra, rd, 0)) (* c.jalr *)
    | 1, false, false -> Some (Inst.R (Add, rd, rd, rs2)) (* c.add *)
    | _ -> None)
  | 0b110 ->
    let off = (bits p ~lo:9 ~width:4 lsl 2) lor (bits p ~lo:7 ~width:2 lsl 6) in
    Some (Inst.Store (Sw, rs2, Reg.sp, off))
  | 0b111 ->
    let off = (bits p ~lo:10 ~width:3 lsl 3) lor (bits p ~lo:7 ~width:3 lsl 6) in
    Some (Inst.Store (Sd, rs2, Reg.sp, off))
  | _ -> None

let expand parcel =
  let p = parcel land 0xFFFF in
  match p land 0b11 with
  | 0b00 -> expand_q0 p
  | 0b01 -> expand_q1 p
  | 0b10 -> expand_q2 p
  | _ -> None (* 32-bit instruction marker *)

let is_valid p = Option.is_some (expand p)
