type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand the user seed into the xoshiro256** state,
   as recommended by the xoshiro authors. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create ~seed:(bits64 t)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits avoids modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (bits64 t) mask) in
    let limit = max_int - (max_int mod bound) in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  (* 53 high-quality bits, as in the reference xoshiro double conversion. *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t in
    if u <= 1e-300 then nonzero () else u
  in
  let u1 = nonzero () in
  let u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let bytes t ~len =
  let b = Bytes.create len in
  let i = ref 0 in
  while !i < len do
    let v = ref (bits64 t) in
    let n = min 8 (len - !i) in
    for j = 0 to n - 1 do
      Bytes.set b (!i + j) (Char.chr (Int64.to_int (Int64.logand !v 0xFFL)));
      v := Int64.shift_right_logical !v 8
    done;
    i := !i + n
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose_subset t ~n ~k =
  if n < 0 then invalid_arg "Prng.choose_subset: n must be non-negative";
  let k = max 0 (min k n) in
  let idx = Array.init n (fun i -> i) in
  shuffle t idx;
  let marks = Array.make n false in
  for i = 0 to k - 1 do
    marks.(idx.(i)) <- true
  done;
  marks
