type t = { len : int; data : Bytes.t }

let bytes_for_bits n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitvec.create: negative length";
  { len = n; data = Bytes.make (bytes_for_bits n) '\000' }

let length t = t.len

let check t i name = if i < 0 || i >= t.len then invalid_arg ("Bitvec." ^ name ^ ": index out of bounds")

let get t i =
  check t i "get";
  let byte = Char.code (Bytes.get t.data (i / 8)) in
  byte land (1 lsl (i mod 8)) <> 0

let set t i v =
  check t i "set";
  let pos = i / 8 in
  let mask = 1 lsl (i mod 8) in
  let byte = Char.code (Bytes.get t.data pos) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set t.data pos (Char.chr (byte land 0xFF))

let append t v =
  let t' = { len = t.len + 1; data = Bytes.make (bytes_for_bits (t.len + 1)) '\000' } in
  Bytes.blit t.data 0 t'.data 0 (Bytes.length t.data);
  set t' t.len v;
  t'

let of_bool_array a =
  let t = create (Array.length a) in
  Array.iteri (fun i v -> if v then set t i true) a;
  t

let to_bool_array t = Array.init t.len (get t)

let popcount t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if get t i then incr n
  done;
  !n

let to_bytes t = Bytes.copy t.data

let of_bytes ~len b =
  if len < 0 then invalid_arg "Bitvec.of_bytes: negative length";
  if Bytes.length b < bytes_for_bits len then invalid_arg "Bitvec.of_bytes: buffer too short";
  let t = create len in
  Bytes.blit b 0 t.data 0 (bytes_for_bits len);
  (* Clear padding bits so equality is structural. *)
  let rem = len mod 8 in
  if rem > 0 then begin
    let last = bytes_for_bits len - 1 in
    let byte = Char.code (Bytes.get t.data last) in
    Bytes.set t.data last (Char.chr (byte land ((1 lsl rem) - 1)))
  end;
  t

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let pp fmt t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char fmt (if get t i then '1' else '0')
  done
