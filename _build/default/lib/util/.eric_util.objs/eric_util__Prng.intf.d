lib/util/prng.mli:
