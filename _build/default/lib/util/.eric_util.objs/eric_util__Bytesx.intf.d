lib/util/bytesx.mli:
