(** Deterministic pseudo-random number generation.

    ERIC's evaluation must be reproducible run-to-run: PUF devices are
    "manufactured" from a seed, workload inputs are generated from seeds, and
    partial-encryption selections are seeded.  This module provides a small,
    fast, splittable PRNG (SplitMix64 seeding a xoshiro256** state) together
    with the distributions the PUF model needs. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] builds a generator whose whole stream is a pure function
    of [seed]. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce the same
    stream. *)

val bits64 : t -> int64
(** Next 64 uniformly random bits. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed sample (Box-Muller). *)

val bytes : t -> len:int -> bytes
(** [len] uniformly random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose_subset : t -> n:int -> k:int -> bool array
(** [choose_subset t ~n ~k] marks exactly [min k n] of [n] positions true,
    uniformly at random. *)
