(** Growable bit vectors.

    Used for ERIC's encryption maps (one bit per instruction parcel, per the
    paper's partial-encryption packaging) and for PUF response streams. *)

type t

val create : int -> t
(** [create n] is an all-zero bit vector of length [n]. *)

val length : t -> int

val get : t -> int -> bool
(** Raises [Invalid_argument] when out of bounds. *)

val set : t -> int -> bool -> unit

val append : t -> bool -> t
(** Functional append (copies); handy for building maps incrementally. *)

val of_bool_array : bool array -> t
val to_bool_array : t -> bool array

val popcount : t -> int
(** Number of set bits. *)

val to_bytes : t -> bytes
(** Little-endian bit packing: bit [i] lives in byte [i/8], bit position
    [i mod 8].  The final partial byte is zero-padded. *)

val of_bytes : len:int -> bytes -> t
(** Inverse of [to_bytes] given the original bit [len].  Raises
    [Invalid_argument] if [bytes] is too short for [len]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
