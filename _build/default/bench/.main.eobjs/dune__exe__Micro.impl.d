bench/micro.ml: Analyze Bechamel Benchmark Bytes Char Eric Eric_cc Eric_crypto Eric_puf Eric_rv Eric_workloads Hashtbl Instance Lazy List Measure Printf Report Staged Test Time Toolkit
