bench/main.mli:
