bench/experiments.ml: Array Bytes Eric Eric_cc Eric_hw Eric_puf Eric_rv Eric_sim Eric_workloads Format Gc Int64 Lazy List Printf Report Unix
