bench/report.ml: Int64 List Printf String
