(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (see DESIGN.md's experiment index), the ablation
   studies, and the bechamel microbenchmarks.

   Usage: main.exe [table1|table2|fig5|fig6|fig7|ablations|micro|all]... *)

let experiments =
  [ ("table1", Experiments.table1);
    ("table2", Experiments.table2);
    ("fig5", Experiments.fig5);
    ("fig6", Experiments.fig6);
    ("fig7", Experiments.fig7);
    ("ablations", Experiments.ablations);
    ("micro", Micro.run) ]

let run_all () = List.iter (fun (_, f) -> f ()) experiments

let () =
  match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] -> run_all ()
  | _ :: picks ->
    List.iter
      (fun pick ->
        match List.assoc_opt pick experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; known: %s all\n" pick
            (String.concat " " (List.map fst experiments));
          exit 2)
      picks
  | [] -> run_all ()
