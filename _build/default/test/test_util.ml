(* Unit and property tests for eric_util: PRNG, bit vectors, byte codecs. *)

open Eric_util

let check = Alcotest.check
let qtest ?(count = 200) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 2)

let test_prng_copy () =
  let a = Prng.create ~seed:7L in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copies continue identically" (Prng.bits64 a) (Prng.bits64 b)

let test_prng_split_independent () =
  let parent = Prng.create ~seed:9L in
  let child = Prng.split parent in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 parent = Prng.bits64 child then incr matches
  done;
  check Alcotest.bool "split stream is distinct" true (!matches < 2)

let test_prng_int_bounds () =
  let rng = Prng.create ~seed:3L in
  for _ = 1 to 1000 do
    let v = Prng.int rng ~bound:17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_prng_int_rejects_bad_bound () =
  let rng = Prng.create ~seed:3L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng ~bound:0))

let test_prng_float_range () =
  let rng = Prng.create ~seed:5L in
  for _ = 1 to 1000 do
    let f = Prng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_prng_gaussian_moments () =
  let rng = Prng.create ~seed:11L in
  let n = 20000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.gaussian rng ~mu:10.0 ~sigma:3.0 in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check (Alcotest.float 0.2) "mean" 10.0 mean;
  check (Alcotest.float 0.5) "stddev" 3.0 (sqrt var)

let test_prng_bytes_len () =
  let rng = Prng.create ~seed:13L in
  List.iter
    (fun len -> check Alcotest.int "length" len (Bytes.length (Prng.bytes rng ~len)))
    [ 0; 1; 7; 8; 9; 63; 200 ]

let test_choose_subset () =
  let rng = Prng.create ~seed:17L in
  let marks = Prng.choose_subset rng ~n:50 ~k:20 in
  let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 marks in
  check Alcotest.int "exactly k marked" 20 count;
  let none = Prng.choose_subset rng ~n:10 ~k:0 in
  check Alcotest.int "k=0" 0 (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 none);
  let clamped = Prng.choose_subset rng ~n:5 ~k:99 in
  check Alcotest.int "k clamped to n" 5
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 clamped)

let test_shuffle_permutation () =
  let rng = Prng.create ~seed:19L in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation" (Array.init 100 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Bitvec                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitvec_basic () =
  let v = Bitvec.create 10 in
  check Alcotest.int "length" 10 (Bitvec.length v);
  check Alcotest.bool "initially clear" false (Bitvec.get v 3);
  Bitvec.set v 3 true;
  check Alcotest.bool "set" true (Bitvec.get v 3);
  Bitvec.set v 3 false;
  check Alcotest.bool "cleared" false (Bitvec.get v 3);
  check Alcotest.int "popcount empty" 0 (Bitvec.popcount v)

let test_bitvec_bounds () =
  let v = Bitvec.create 4 in
  Alcotest.check_raises "get oob" (Invalid_argument "Bitvec.get: index out of bounds") (fun () ->
      ignore (Bitvec.get v 4));
  Alcotest.check_raises "set oob" (Invalid_argument "Bitvec.set: index out of bounds") (fun () ->
      Bitvec.set v (-1) true)

let test_bitvec_append () =
  let v = ref (Bitvec.create 0) in
  for i = 0 to 16 do
    v := Bitvec.append !v (i mod 3 = 0)
  done;
  check Alcotest.int "length" 17 (Bitvec.length !v);
  for i = 0 to 16 do
    check Alcotest.bool "bit" (i mod 3 = 0) (Bitvec.get !v i)
  done

let bitvec_roundtrip =
  qtest "bitvec bytes roundtrip" QCheck.(list bool) (fun bits ->
      let arr = Array.of_list bits in
      let v = Bitvec.of_bool_array arr in
      let v' = Bitvec.of_bytes ~len:(Array.length arr) (Bitvec.to_bytes v) in
      Bitvec.equal v v' && Bitvec.to_bool_array v' = arr)

let bitvec_popcount =
  qtest "bitvec popcount" QCheck.(list bool) (fun bits ->
      let v = Bitvec.of_bool_array (Array.of_list bits) in
      Bitvec.popcount v = List.length (List.filter Fun.id bits))

(* ------------------------------------------------------------------ *)
(* Bytesx                                                              *)
(* ------------------------------------------------------------------ *)

let test_hex_known () =
  check Alcotest.string "hex" "00ff10ab" (Bytesx.to_hex (Bytes.of_string "\x00\xff\x10\xab"));
  check Alcotest.string "unhex" "\x00\xff\x10\xab"
    (Bytes.to_string (Bytesx.of_hex "00ff10AB"))

let test_hex_errors () =
  Alcotest.check_raises "odd length" (Invalid_argument "Bytesx.of_hex: odd length") (fun () ->
      ignore (Bytesx.of_hex "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Bytesx.of_hex: non-hex character")
    (fun () -> ignore (Bytesx.of_hex "zz"))

let hex_roundtrip =
  qtest "hex roundtrip" QCheck.string (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Bytesx.of_hex (Bytesx.to_hex b)))

let test_le_codecs () =
  let b = Bytes.create 8 in
  Bytesx.set_u16 b 0 0xBEEF;
  check Alcotest.int "u16" 0xBEEF (Bytesx.get_u16 b 0);
  check Alcotest.int "u16 byte order" 0xEF (Char.code (Bytes.get b 0));
  Bytesx.set_u32 b 0 0xDEADBEEFl;
  check Alcotest.int32 "u32" 0xDEADBEEFl (Bytesx.get_u32 b 0);
  Bytesx.set_u64 b 0 0x0123456789ABCDEFL;
  check Alcotest.int64 "u64" 0x0123456789ABCDEFL (Bytesx.get_u64 b 0);
  check Alcotest.int "u64 low byte first" 0xEF (Char.code (Bytes.get b 0))

let xor_involution =
  qtest "xor involution" QCheck.(pair string string) (fun (s, k) ->
      let n = min (String.length s) (String.length k) in
      let src = Bytes.of_string (String.sub s 0 n) in
      let key = Bytes.of_string (String.sub k 0 n) in
      let once = Bytes.create n and twice = Bytes.create n in
      Bytesx.xor_into ~src ~key ~dst:once;
      Bytesx.xor_into ~src:once ~key ~dst:twice;
      Bytes.equal src twice)

let test_append_concat () =
  check Alcotest.string "append" "abcd"
    (Bytes.to_string (Bytesx.append (Bytes.of_string "ab") (Bytes.of_string "cd")));
  check Alcotest.string "concat" "xyz"
    (Bytes.to_string (Bytesx.concat [ Bytes.of_string "x"; Bytes.empty; Bytes.of_string "yz" ]))

let () =
  Alcotest.run "eric_util"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_prng_int_rejects_bad_bound;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
          Alcotest.test_case "bytes length" `Quick test_prng_bytes_len;
          Alcotest.test_case "choose subset" `Quick test_choose_subset;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation ] );
      ( "bitvec",
        [ Alcotest.test_case "basic" `Quick test_bitvec_basic;
          Alcotest.test_case "bounds" `Quick test_bitvec_bounds;
          Alcotest.test_case "append" `Quick test_bitvec_append;
          bitvec_roundtrip;
          bitvec_popcount ] );
      ( "bytesx",
        [ Alcotest.test_case "hex known" `Quick test_hex_known;
          Alcotest.test_case "hex errors" `Quick test_hex_errors;
          hex_roundtrip;
          Alcotest.test_case "le codecs" `Quick test_le_codecs;
          xor_involution;
          Alcotest.test_case "append/concat" `Quick test_append_concat ] ) ]
