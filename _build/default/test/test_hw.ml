(* Tests for eric_hw: RTL cost-tree arithmetic, the Table-II area model,
   and the HDE load-path cycle model. *)

open Eric_hw

let check = Alcotest.check
let qtest ?(count = 200) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rtl                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rtl_leaf_and_block () =
  let l1 = Rtl.leaf "a" ~luts:10 ~ffs:4 in
  let l2 = Rtl.register "r" ~bits:16 in
  let b = Rtl.block "top" [ l1; l2 ] in
  check Alcotest.int "luts sum" 10 (Rtl.luts b);
  check Alcotest.int "ffs sum" 20 (Rtl.ffs b);
  check Alcotest.string "name" "top" (Rtl.name b)

let test_rtl_primitives () =
  check Alcotest.int "register ffs" 64 (Rtl.ffs (Rtl.register "r" ~bits:64));
  check Alcotest.int "register luts" 0 (Rtl.luts (Rtl.register "r" ~bits:64));
  check Alcotest.int "adder" 32 (Rtl.luts (Rtl.adder "a" ~bits:32));
  check Alcotest.int "xor pair packing" 16 (Rtl.luts (Rtl.xor_gates "x" ~bits:32));
  check Alcotest.int "mux rounding" 3 (Rtl.luts (Rtl.mux2 "m" ~bits:5));
  check Alcotest.bool "counter has both" true
    (Rtl.luts (Rtl.counter "c" ~bits:8) > 0 && Rtl.ffs (Rtl.counter "c" ~bits:8) = 8)

let test_rtl_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Rtl.leaf: negative cost") (fun () ->
      ignore (Rtl.leaf "bad" ~luts:(-1) ~ffs:0))

(* ------------------------------------------------------------------ *)
(* Area / Table II                                                     *)
(* ------------------------------------------------------------------ *)

let test_baseline_matches_paper () =
  check Alcotest.int "baseline LUTs" 33894 (Rtl.luts Area.rocket_baseline);
  check Alcotest.int "baseline FFs" 19093 (Rtl.ffs Area.rocket_baseline)

let test_hde_delta_in_paper_band () =
  (* Paper: +2.63% LUTs, +3.83% FFs.  The model must land in the same
     low-single-digit band. *)
  let lut_pct =
    100.0
    *. float_of_int (Rtl.luts Area.rocket_with_hde - Rtl.luts Area.rocket_baseline)
    /. float_of_int (Rtl.luts Area.rocket_baseline)
  in
  let ff_pct =
    100.0
    *. float_of_int (Rtl.ffs Area.rocket_with_hde - Rtl.ffs Area.rocket_baseline)
    /. float_of_int (Rtl.ffs Area.rocket_baseline)
  in
  check Alcotest.bool "LUT delta ~2.6%" true (lut_pct > 2.0 && lut_pct < 3.3);
  check Alcotest.bool "FF delta ~3.8%" true (ff_pct > 3.0 && ff_pct < 4.6)

let test_table2_rows () =
  match Area.table2 () with
  | [ luts; ffs; freq ] ->
    check Alcotest.string "row 1" "Total Slice LUTs" luts.Area.resource;
    check Alcotest.int "row 1 baseline" 33894 luts.Area.baseline;
    check Alcotest.bool "row 1 grows" true (luts.Area.with_hde > luts.Area.baseline);
    check Alcotest.bool "row 2 grows" true (ffs.Area.with_hde > ffs.Area.baseline);
    check Alcotest.int "frequency unchanged" freq.Area.baseline freq.Area.with_hde
  | rows -> Alcotest.failf "expected 3 rows, got %d" (List.length rows)

let test_hde_composition () =
  (* The HDE must contain all five paper units (plus bus plumbing). *)
  check Alcotest.bool "hde is larger than any single unit" true
    (Rtl.luts Area.hde > 600 && Rtl.ffs Area.hde > 500)

(* ------------------------------------------------------------------ *)
(* Hde cycle model                                                     *)
(* ------------------------------------------------------------------ *)

let cfg = Hde.default_config

let test_plain_load () =
  check Alcotest.int64 "8B/cycle" 128L (Hde.load_plain cfg ~image_bytes:1024);
  check Alcotest.int64 "rounds up" 1L (Hde.load_plain cfg ~image_bytes:3)

let test_encrypted_slower_than_plain () =
  let b = Hde.load_encrypted cfg ~image_bytes:4096 ~hashed_bytes:4096 ~encrypted_bytes:4096 in
  check Alcotest.bool "encrypted load slower" true
    (Int64.compare b.Hde.total_cycles (Hde.load_plain cfg ~image_bytes:4096) > 0)

let test_partial_cheaper_than_full () =
  let full = Hde.load_encrypted cfg ~image_bytes:4096 ~hashed_bytes:4096 ~encrypted_bytes:4096 in
  let half = Hde.load_encrypted cfg ~image_bytes:4096 ~hashed_bytes:4096 ~encrypted_bytes:2048 in
  check Alcotest.bool "less keystream, faster" true
    (Int64.compare half.Hde.total_cycles full.Hde.total_cycles < 0)

let test_breakdown_consistency () =
  (* Default (shared SHA core): stages serialise. *)
  let b = Hde.load_encrypted cfg ~image_bytes:1000 ~hashed_bytes:900 ~encrypted_bytes:500 in
  let stage_sum =
    List.fold_left Int64.add 0L
      [ b.Hde.dma_cycles; b.Hde.hash_cycles; b.Hde.keystream_cycles; b.Hde.xor_cycles ]
  in
  check Alcotest.int64 "serialised total = stage sum + fixed" (Int64.add stage_sum b.Hde.fixed_cycles)
    b.Hde.total_cycles;
  (* Pipelined variant: bounded by the slowest stage. *)
  let p =
    Hde.load_encrypted { cfg with Hde.pipelined = true } ~image_bytes:1000 ~hashed_bytes:900
      ~encrypted_bytes:500
  in
  let stage_max =
    List.fold_left max 0L [ p.Hde.dma_cycles; p.Hde.hash_cycles; p.Hde.keystream_cycles; p.Hde.xor_cycles ]
  in
  check Alcotest.int64 "pipelined total = max stage + fixed" (Int64.add stage_max p.Hde.fixed_cycles)
    p.Hde.total_cycles;
  check Alcotest.bool "pipelined is no slower than serialised" true
    (Int64.compare p.Hde.total_cycles b.Hde.total_cycles <= 0)

let hde_monotonic =
  qtest "load cycles monotonic in encrypted bytes" QCheck.(pair (int_bound 100000) (int_bound 100000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let t bytes =
        (Hde.load_encrypted cfg ~image_bytes:100000 ~hashed_bytes:100000 ~encrypted_bytes:bytes)
          .Hde.total_cycles
      in
      Int64.compare (t lo) (t hi) <= 0)

let test_rejects_negative () =
  Alcotest.check_raises "negative bytes" (Invalid_argument "Hde.load_plain: negative byte count")
    (fun () -> ignore (Hde.load_plain cfg ~image_bytes:(-1)))

let () =
  Alcotest.run "eric_hw"
    [ ( "rtl",
        [ Alcotest.test_case "leaf and block" `Quick test_rtl_leaf_and_block;
          Alcotest.test_case "primitives" `Quick test_rtl_primitives;
          Alcotest.test_case "rejects negative" `Quick test_rtl_rejects_negative ] );
      ( "area",
        [ Alcotest.test_case "baseline matches paper" `Quick test_baseline_matches_paper;
          Alcotest.test_case "HDE delta in paper band" `Quick test_hde_delta_in_paper_band;
          Alcotest.test_case "table2 rows" `Quick test_table2_rows;
          Alcotest.test_case "hde composition" `Quick test_hde_composition ] );
      ( "hde",
        [ Alcotest.test_case "plain load" `Quick test_plain_load;
          Alcotest.test_case "encrypted slower" `Quick test_encrypted_slower_than_plain;
          Alcotest.test_case "partial cheaper" `Quick test_partial_cheaper_than_full;
          Alcotest.test_case "breakdown consistency" `Quick test_breakdown_consistency;
          hde_monotonic;
          Alcotest.test_case "rejects negative" `Quick test_rejects_negative ] ) ]
