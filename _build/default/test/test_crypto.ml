(* Tests for eric_crypto: SHA-256 against FIPS/NIST vectors, HMAC against
   RFC 4231, keystream/XOR-cipher properties. *)

open Eric_crypto

let check = Alcotest.check
let qtest ?(count = 200) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
let hex b = Eric_util.Bytesx.to_hex b

(* ------------------------------------------------------------------ *)
(* SHA-256: FIPS 180-2 and NIST CAVS vectors                           *)
(* ------------------------------------------------------------------ *)

let sha_vectors =
  [ ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    ("a", "ca978112ca1bbdcafac231b39a23dc4da786eff8147c4e72b9807785afee48bb");
    ("message digest", "f7846f55cf23e14eebeab5b4e1550cad5b509e3348fbc4efa3a1413d393cb650") ]

let test_sha256_vectors () =
  List.iter
    (fun (msg, expected) -> check Alcotest.string msg expected (hex (Sha256.digest_string msg)))
    sha_vectors

let test_sha256_million_a () =
  (* FIPS long vector: one million 'a'. *)
  let ctx = Sha256.init () in
  let chunk = Bytes.make 10_000 'a' in
  for _ = 1 to 100 do
    Sha256.feed ctx chunk
  done;
  check Alcotest.string "1M x 'a'" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex (Sha256.finalize ctx))

let sha256_incremental =
  qtest "incremental = one-shot" QCheck.(pair string (small_list small_nat)) (fun (s, cuts) ->
      let data = Bytes.of_string s in
      let ctx = Sha256.init () in
      let pos = ref 0 in
      List.iter
        (fun c ->
          let len = min c (Bytes.length data - !pos) in
          Sha256.feed_sub ctx data ~pos:!pos ~len;
          pos := !pos + len)
        cuts;
      Sha256.feed_sub ctx data ~pos:!pos ~len:(Bytes.length data - !pos);
      Bytes.equal (Sha256.finalize ctx) (Sha256.digest data))

let test_sha256_finalize_once () =
  let ctx = Sha256.init () in
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "second finalize"
    (Invalid_argument "Sha256.finalize: context already finalized") (fun () ->
      ignore (Sha256.finalize ctx))

let test_sha256_feed_after_finalize () =
  let ctx = Sha256.init () in
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "feed after finalize"
    (Invalid_argument "Sha256.feed: context already finalized") (fun () ->
      Sha256.feed ctx (Bytes.of_string "x"))

(* ------------------------------------------------------------------ *)
(* HMAC-SHA-256: RFC 4231 vectors                                      *)
(* ------------------------------------------------------------------ *)

let test_hmac_rfc4231_case1 () =
  let key = Bytes.make 20 '\x0b' in
  check Alcotest.string "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex (Hmac_sha256.mac_string ~key "Hi There"))

let test_hmac_rfc4231_case2 () =
  let key = Bytes.of_string "Jefe" in
  check Alcotest.string "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex (Hmac_sha256.mac_string ~key "what do ya want for nothing?"))

let test_hmac_rfc4231_case3 () =
  let key = Bytes.make 20 '\xaa' in
  let data = Bytes.make 50 '\xdd' in
  check Alcotest.string "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (hex (Hmac_sha256.mac ~key data))

let test_hmac_rfc4231_long_key () =
  (* case 6: 131-byte key, exercising the hash-the-key path *)
  let key = Bytes.make 131 '\xaa' in
  check Alcotest.string "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (hex (Hmac_sha256.mac_string ~key "Test Using Larger Than Block-Size Key - Hash Key First"))

let hmac_key_sensitivity =
  qtest "distinct keys give distinct macs" QCheck.(pair string string) (fun (k1, k2) ->
      QCheck.assume (k1 <> k2);
      let m = Bytes.of_string "fixed message" in
      not
        (Bytes.equal
           (Hmac_sha256.mac ~key:(Bytes.of_string k1) m)
           (Hmac_sha256.mac ~key:(Bytes.of_string k2) m)))

(* ------------------------------------------------------------------ *)
(* Keystream                                                           *)
(* ------------------------------------------------------------------ *)

let key = Bytes.of_string "0123456789abcdef0123456789abcdef"

let test_keystream_deterministic () =
  let a = Keystream.create ~key and b = Keystream.create ~key in
  check Alcotest.string "same stream" (hex (Keystream.take a 100)) (hex (Keystream.take b 100))

let test_keystream_offset_consistency () =
  (* Reading at an absolute offset equals skipping to it. *)
  let full = Keystream.take (Keystream.create ~key) 300 in
  let tail = Keystream.take (Keystream.at ~key ~offset:113) 187 in
  check Alcotest.string "offset view" (hex (Bytes.sub full 113 187)) (hex tail)

let test_keystream_position_tracking () =
  let t = Keystream.create ~key in
  ignore (Keystream.take t 33);
  check Alcotest.int "offset" 33 (Keystream.offset t);
  ignore (Keystream.take t 0);
  check Alcotest.int "offset unchanged by empty take" 33 (Keystream.offset t)

let test_keystream_key_sensitivity () =
  let other = Bytes.of_string "0123456789abcdef0123456789abcdeg" in
  let a = Keystream.take (Keystream.create ~key) 64 in
  let b = Keystream.take (Keystream.create ~key:other) 64 in
  check Alcotest.bool "differs" false (Bytes.equal a b)

let keystream_xor_involution =
  qtest "xor twice is identity" QCheck.(pair string small_nat) (fun (s, offset) ->
      let data = Bytes.of_string s in
      let once = Keystream.xor ~key ~offset data in
      Bytes.equal data (Keystream.xor ~key ~offset once))

(* ------------------------------------------------------------------ *)
(* Xor_cipher                                                          *)
(* ------------------------------------------------------------------ *)

let test_word_ops_match_bytes () =
  (* Word-level application must agree with byte-level application at the
     same offsets. *)
  let data = Bytes.init 64 (fun i -> Char.chr ((i * 37) land 0xFF)) in
  let whole = Xor_cipher.apply_bytes ~key data in
  for off = 0 to 15 do
    let w = Eric_util.Bytesx.get_u32 data (4 * off) in
    let expected = Eric_util.Bytesx.get_u32 whole (4 * off) in
    check Alcotest.int32
      (Printf.sprintf "word at %d" (4 * off))
      expected
      (Xor_cipher.apply_word32 ~key ~offset:(4 * off) w)
  done;
  for off = 0 to 31 do
    let p = Eric_util.Bytesx.get_u16 data (2 * off) in
    let expected = Eric_util.Bytesx.get_u16 whole (2 * off) in
    check Alcotest.int
      (Printf.sprintf "half at %d" (2 * off))
      expected
      (Xor_cipher.apply_word16 ~key ~offset:(2 * off) p)
  done

let field_mask_property =
  qtest "field apply touches only masked bits" QCheck.(pair int32 int32) (fun (w, mask) ->
      let enc = Xor_cipher.apply_field32 ~key ~offset:12 ~mask w in
      Int32.logand (Int32.logxor enc w) (Int32.lognot mask) = 0l
      && Xor_cipher.apply_field32 ~key ~offset:12 ~mask enc = w)

let field16_mask_property =
  qtest "field16 apply touches only masked bits" QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (p, mask) ->
      let enc = Xor_cipher.apply_field16 ~key ~offset:6 ~mask p in
      enc lxor p land lnot mask land 0xFFFF = 0
      && Xor_cipher.apply_field16 ~key ~offset:6 ~mask enc = p)

(* ------------------------------------------------------------------ *)
(* Constant-time compare                                               *)
(* ------------------------------------------------------------------ *)

let test_ct_equal () =
  check Alcotest.bool "equal" true (Ct.equal (Bytes.of_string "abc") (Bytes.of_string "abc"));
  check Alcotest.bool "differs" false (Ct.equal (Bytes.of_string "abc") (Bytes.of_string "abd"));
  check Alcotest.bool "length mismatch" false (Ct.equal (Bytes.of_string "ab") (Bytes.of_string "abc"));
  check Alcotest.bool "empty" true (Ct.equal Bytes.empty Bytes.empty)

let ct_matches_structural =
  qtest "ct.equal = Bytes.equal" QCheck.(pair string string) (fun (a, b) ->
      Ct.equal (Bytes.of_string a) (Bytes.of_string b) = (a = b))


(* ------------------------------------------------------------------ *)
(* Bignum                                                              *)
(* ------------------------------------------------------------------ *)

let bn = Bignum.of_int
let nat = QCheck.map abs QCheck.int

let bignum_int_ops =
  qtest ~count:500 "add/sub/mul/divmod agree with int" QCheck.(pair nat nat) (fun (a, b) ->
      (* 30-bit operands keep the native-int product below 2^60 *)
      let a = a land 0x3FFFFFFF and b = b land 0x3FFFFFFF in
      let ok_add = Bignum.to_int_opt (Bignum.add (bn a) (bn b)) = Some (a + b) in
      let hi = max a b and lo = min a b in
      let ok_sub = Bignum.to_int_opt (Bignum.sub (bn hi) (bn lo)) = Some (hi - lo) in
      let ok_mul = Bignum.to_int_opt (Bignum.mul (bn a) (bn b)) = Some (a * b) in
      let ok_div =
        b = 0
        ||
        let q, r = Bignum.divmod (bn a) (bn b) in
        Bignum.to_int_opt q = Some (a / b) && Bignum.to_int_opt r = Some (a mod b)
      in
      ok_add && ok_sub && ok_mul && ok_div)

let bignum_modexp_reference =
  qtest ~count:200 "modexp agrees with int reference" QCheck.(triple nat nat nat)
    (fun (b, e, m) ->
      let b = b land 0xFFFF and e = e land 0xFFF and m = 2 + (m land 0xFFFF) in
      let rec pow_mod b e acc = if e = 0 then acc else pow_mod (b * b mod m) (e / 2) (if e land 1 = 1 then acc * b mod m else acc) in
      Bignum.to_int_opt (Bignum.modexp (bn b) (bn e) ~m:(bn m)) = Some (pow_mod (b mod m) e 1))

let bignum_bytes_roundtrip =
  qtest "bytes_be roundtrip" QCheck.string (fun s ->
      let v = Bignum.of_bytes_be (Bytes.of_string s) in
      Bignum.equal v (Bignum.of_bytes_be (Bignum.to_bytes_be v)))

let bignum_hex_roundtrip =
  qtest "hex roundtrip" nat (fun v ->
      Bignum.to_int_opt (Bignum.of_hex (Bignum.to_hex (bn v))) = Some v)

let bignum_shift_roundtrip =
  qtest "shift left then right" QCheck.(pair nat (int_bound 100)) (fun (v, k) ->
      Bignum.equal (bn v) (Bignum.shift_right (Bignum.shift_left (bn v) k) k))

let bignum_modmul_vs_mul =
  qtest ~count:200 "modmul = mul then rem" QCheck.(triple nat nat nat) (fun (a, b, m) ->
      let m = 1 + (m land 0xFFFFFF) in
      Bignum.equal
        (Bignum.modmul (bn a) (bn b) ~m:(bn m))
        (Bignum.rem (Bignum.mul (bn a) (bn b)) (bn m)))

let test_bignum_modinv () =
  let m = bn 1000000007 in
  List.iter
    (fun a ->
      match Bignum.modinv (bn a) ~m with
      | Some inv ->
        check Alcotest.bool (Printf.sprintf "inv %d" a) true
          (Bignum.to_int_opt (Bignum.modmul (bn a) inv ~m) = Some 1)
      | None -> Alcotest.failf "no inverse for %d mod prime" a)
    [ 1; 2; 12345; 999999999 ];
  check Alcotest.bool "no inverse when not coprime" true
    (Bignum.modinv (bn 6) ~m:(bn 9) = None)

let test_bignum_primality_knowns () =
  let rng = Eric_util.Prng.create ~seed:9L in
  List.iter
    (fun p -> check Alcotest.bool (string_of_int p) true (Bignum.is_probable_prime rng (bn p)))
    [ 2; 3; 5; 97; 7919; 1000000007 ];
  List.iter
    (fun c ->
      check Alcotest.bool (string_of_int c) false (Bignum.is_probable_prime rng (bn c)))
    [ 0; 1; 4; 100; 7917; 561 (* Carmichael *); 1000000007 * 3 ];
  (* 2^64 - 59 is prime *)
  check Alcotest.bool "large prime" true
    (Bignum.is_probable_prime rng (Bignum.of_hex "ffffffffffffffc5"))

let test_bignum_random_prime () =
  let rng = Eric_util.Prng.create ~seed:21L in
  let p = Bignum.random_prime rng ~bits:96 in
  check Alcotest.int "width" 96 (Bignum.num_bits p);
  check Alcotest.bool "odd" false (Bignum.is_even p)

let test_bignum_guards () =
  Alcotest.check_raises "negative of_int" (Invalid_argument "Bignum.of_int: negative") (fun () ->
      ignore (bn (-1)));
  Alcotest.check_raises "negative sub" (Invalid_argument "Bignum.sub: negative result") (fun () ->
      ignore (Bignum.sub (bn 1) (bn 2)));
  check Alcotest.bool "division by zero" true
    (try ignore (Bignum.divmod (bn 1) Bignum.zero); false with Division_by_zero -> true)

(* ------------------------------------------------------------------ *)
(* RSA                                                                 *)
(* ------------------------------------------------------------------ *)

let rsa_key = lazy (Rsa.generate ~bits:384 (Eric_util.Prng.create ~seed:77L))

let test_rsa_roundtrip () =
  let key = Lazy.force rsa_key in
  let rng = Eric_util.Prng.create ~seed:1L in
  List.iter
    (fun msg ->
      match Rsa.encrypt (Rsa.public_of key) rng (Bytes.of_string msg) with
      | Error e -> Alcotest.fail e
      | Ok cipher -> (
        check Alcotest.bool "ciphertext differs from message" false
          (Bytes.equal cipher (Bytes.of_string msg));
        match Rsa.decrypt key cipher with
        | Ok plain -> check Alcotest.string "roundtrip" msg (Bytes.to_string plain)
        | Error e -> Alcotest.fail e))
    [ ""; "k"; "0123456789abcdef0123456789abcdef" ]

let test_rsa_wrong_key_fails () =
  let key = Lazy.force rsa_key in
  let other = Rsa.generate ~bits:384 (Eric_util.Prng.create ~seed:78L) in
  let rng = Eric_util.Prng.create ~seed:2L in
  match Rsa.encrypt (Rsa.public_of key) rng (Bytes.of_string "secret key bytes") with
  | Error e -> Alcotest.fail e
  | Ok cipher -> (
    match Rsa.decrypt other cipher with
    | Error _ -> ()
    | Ok plain ->
      check Alcotest.bool "wrong key never recovers plaintext" false
        (Bytes.to_string plain = "secret key bytes"))

let test_rsa_tamper_fails () =
  let key = Lazy.force rsa_key in
  let rng = Eric_util.Prng.create ~seed:3L in
  match Rsa.encrypt (Rsa.public_of key) rng (Bytes.of_string "payload") with
  | Error e -> Alcotest.fail e
  | Ok cipher -> (
    Bytes.set cipher 5 (Char.chr (Char.code (Bytes.get cipher 5) lxor 1));
    match Rsa.decrypt key cipher with
    | Error _ -> ()
    | Ok plain ->
      check Alcotest.bool "tampered ciphertext never matches" false
        (Bytes.to_string plain = "payload"))

let test_rsa_too_long () =
  let key = Lazy.force rsa_key in
  let rng = Eric_util.Prng.create ~seed:4L in
  let big = Bytes.make (Rsa.max_message_bytes (Rsa.public_of key) + 1) 'x' in
  check Alcotest.bool "rejected" true (Result.is_error (Rsa.encrypt (Rsa.public_of key) rng big))

let test_rsa_sign_verify () =
  let key = Lazy.force rsa_key in
  let msg = Bytes.of_string "firmware package v7" in
  let signature = Rsa.sign key msg in
  check Alcotest.bool "verifies" true (Rsa.verify (Rsa.public_of key) ~message:msg ~signature);
  check Alcotest.bool "other message fails" false
    (Rsa.verify (Rsa.public_of key) ~message:(Bytes.of_string "firmware package v8") ~signature);
  let bad = Bytes.copy signature in
  Bytes.set bad 3 (Char.chr (Char.code (Bytes.get bad 3) lxor 4));
  check Alcotest.bool "tampered signature fails" false
    (Rsa.verify (Rsa.public_of key) ~message:msg ~signature:bad);
  let other = Rsa.generate ~bits:384 (Eric_util.Prng.create ~seed:79L) in
  check Alcotest.bool "other key fails" false
    (Rsa.verify (Rsa.public_of other) ~message:msg ~signature)

let () =
  Alcotest.run "eric_crypto"
    [ ( "sha256",
        [ Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          sha256_incremental;
          Alcotest.test_case "finalize once" `Quick test_sha256_finalize_once;
          Alcotest.test_case "no feed after finalize" `Quick test_sha256_feed_after_finalize ] );
      ( "hmac",
        [ Alcotest.test_case "rfc4231 case1" `Quick test_hmac_rfc4231_case1;
          Alcotest.test_case "rfc4231 case2" `Quick test_hmac_rfc4231_case2;
          Alcotest.test_case "rfc4231 case3" `Quick test_hmac_rfc4231_case3;
          Alcotest.test_case "rfc4231 long key" `Quick test_hmac_rfc4231_long_key;
          hmac_key_sensitivity ] );
      ( "keystream",
        [ Alcotest.test_case "deterministic" `Quick test_keystream_deterministic;
          Alcotest.test_case "offset consistency" `Quick test_keystream_offset_consistency;
          Alcotest.test_case "position tracking" `Quick test_keystream_position_tracking;
          Alcotest.test_case "key sensitivity" `Quick test_keystream_key_sensitivity;
          keystream_xor_involution ] );
      ( "xor_cipher",
        [ Alcotest.test_case "word ops match bytes" `Quick test_word_ops_match_bytes;
          field_mask_property;
          field16_mask_property ] );
      ("ct", [ Alcotest.test_case "basics" `Quick test_ct_equal; ct_matches_structural ]);
      ( "bignum",
        [ bignum_int_ops;
          bignum_modexp_reference;
          bignum_bytes_roundtrip;
          bignum_hex_roundtrip;
          bignum_shift_roundtrip;
          bignum_modmul_vs_mul;
          Alcotest.test_case "modinv" `Quick test_bignum_modinv;
          Alcotest.test_case "primality knowns" `Quick test_bignum_primality_knowns;
          Alcotest.test_case "random prime" `Slow test_bignum_random_prime;
          Alcotest.test_case "guards" `Quick test_bignum_guards ] );
      ( "rsa",
        [ Alcotest.test_case "roundtrip" `Slow test_rsa_roundtrip;
          Alcotest.test_case "wrong key" `Slow test_rsa_wrong_key_fails;
          Alcotest.test_case "tamper" `Slow test_rsa_tamper_fails;
          Alcotest.test_case "too long" `Quick test_rsa_too_long;
          Alcotest.test_case "sign/verify" `Slow test_rsa_sign_verify ] ) ]
