test/test_workloads.ml: Alcotest Array Bytes Char Eric Eric_cc Eric_rv Eric_sim Eric_util Eric_workloads Float Hashtbl Int64 List Option String
