test/test_rv.ml: Alcotest Array Asm Assemble Bytes Decode Disasm Encode Eric_rv Eric_sim Eric_util Format Inst Int32 Int64 List Option Printf Program QCheck QCheck_alcotest Reg Result Rvc String
