test/test_crypto.ml: Alcotest Bignum Bytes Char Ct Eric_crypto Eric_util Hmac_sha256 Int32 Keystream Lazy List Printf QCheck QCheck_alcotest Result Rsa Sha256 Xor_cipher
