test/test_core.ml: Alcotest Array Bytes Char Eric Eric_cc Eric_crypto Eric_hw Eric_puf Eric_rv Eric_sim Eric_util Format Int64 Lazy List Printf QCheck QCheck_alcotest Result
