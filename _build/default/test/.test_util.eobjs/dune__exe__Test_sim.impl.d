test/test_sim.ml: Alcotest Array Bytes Cache Cpu Encode Eric_rv Eric_sim Inst Int32 Int64 List Memory Program QCheck QCheck_alcotest Reg Soc String
