test/test_util.ml: Alcotest Array Bitvec Bytes Bytesx Char Eric_util Fun List Prng QCheck QCheck_alcotest String
