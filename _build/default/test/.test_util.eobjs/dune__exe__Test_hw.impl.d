test/test_hw.ml: Alcotest Area Eric_hw Hde Int64 List QCheck QCheck_alcotest Rtl
