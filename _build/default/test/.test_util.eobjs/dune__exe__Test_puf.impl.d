test/test_puf.ml: Alcotest Arbiter Array Bytes Device Eric_puf Eric_util Int64 List Metrics Printf
