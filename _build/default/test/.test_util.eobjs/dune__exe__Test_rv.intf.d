test/test_rv.mli:
