test/test_cc.ml: Alcotest Array Ast Driver Eric_cc Eric_rv Eric_sim Eric_workloads Format Hashtbl Int64 Ir Ir_interp Lexer List Opt Option Parser Printf QCheck QCheck_alcotest Regalloc Result String
