test/test_puf.mli:
