(* Tests for eric_puf: arbiter chain physics, device determinism, key
   generation stability, population quality metrics. *)

open Eric_puf

let check = Alcotest.check

let test_arbiter_deterministic () =
  let rng = Eric_util.Prng.create ~seed:1L in
  let chain = Arbiter.manufacture Arbiter.default_params rng in
  for challenge = 0 to 255 do
    check Alcotest.bool
      (Printf.sprintf "challenge %d" challenge)
      (Arbiter.eval chain ~challenge) (Arbiter.eval chain ~challenge)
  done

let test_arbiter_sign_matches_delay () =
  let rng = Eric_util.Prng.create ~seed:2L in
  let chain = Arbiter.manufacture Arbiter.default_params rng in
  for challenge = 0 to 255 do
    let d = Arbiter.delay_difference chain ~challenge in
    check Alcotest.bool "eval = sign of delay difference" (d < 0.0)
      (Arbiter.eval chain ~challenge)
  done

let test_arbiter_challenge_sensitivity () =
  (* A healthy chain should not answer every challenge identically. *)
  let rng = Eric_util.Prng.create ~seed:3L in
  let ones = ref 0 in
  for _ = 1 to 8 do
    let chain = Arbiter.manufacture Arbiter.default_params rng in
    for challenge = 0 to 255 do
      if Arbiter.eval chain ~challenge then incr ones
    done
  done;
  check Alcotest.bool "response distribution is mixed" true (!ones > 200 && !ones < 8 * 256 - 200)

let test_arbiter_stage_validation () =
  Alcotest.check_raises "zero stages" (Invalid_argument "Arbiter.manufacture: stages must be positive")
    (fun () ->
      ignore
        (Arbiter.manufacture
           { Arbiter.default_params with Arbiter.stages = 0 }
           (Eric_util.Prng.create ~seed:1L)))

let test_device_table1_shape () =
  (* Table I: 32 chains, 8-bit challenge, 1-bit response each. *)
  let d = Device.manufacture 100L in
  check Alcotest.int "32 chains" 32 (Device.chains d);
  check Alcotest.int "key bits" 32 (Device.key_bits d);
  check Alcotest.int "challenge set size" 32 (Array.length (Device.challenge_set d));
  Array.iter
    (fun c -> check Alcotest.bool "8-bit challenge" true (c >= 0 && c < 256))
    (Device.challenge_set d);
  check Alcotest.int "key bytes" 4 (Bytes.length (Device.puf_key d))

let test_device_reproducible () =
  let a = Device.manufacture 55L and b = Device.manufacture 55L in
  check Alcotest.string "same silicon, same key"
    (Eric_util.Bytesx.to_hex (Device.puf_key a))
    (Eric_util.Bytesx.to_hex (Device.puf_key b))

let test_device_unique () =
  (* Keys across a population must not collide en masse. *)
  let keys =
    List.init 24 (fun i -> Eric_util.Bytesx.to_hex (Device.puf_key (Device.manufacture (Int64.of_int (i + 1)))))
  in
  let distinct = List.sort_uniq compare keys in
  check Alcotest.bool "mostly distinct keys" true (List.length distinct >= 23)

let test_device_key_stable_under_noise () =
  (* Majority voting + dark-bit masking: regeneration is error-free. *)
  let d = Device.manufacture 77L in
  let enrolled = Device.puf_key d in
  for _ = 1 to 50 do
    check Alcotest.string "regenerated key" (Eric_util.Bytesx.to_hex enrolled)
      (Eric_util.Bytesx.to_hex (Device.puf_key d))
  done

let test_device_noiseless_response_deterministic () =
  let d = Device.manufacture 88L in
  let ch = Device.challenge_set d in
  let a = Device.respond ~noisy:false d ch in
  let b = Device.respond ~noisy:false d ch in
  check Alcotest.bool "ideal responses equal" true (Eric_util.Bitvec.equal a b)

let test_device_respond_arity () =
  let d = Device.manufacture 99L in
  Alcotest.check_raises "arity" (Invalid_argument "Device.respond: one challenge per chain expected")
    (fun () -> ignore (Device.respond d [| 1; 2; 3 |]))

let test_metrics_quality () =
  let r = Metrics.evaluate ~devices:12 ~challenges_per_device:48 ~reeval:8 ~seed:2024L () in
  check Alcotest.bool "uniformity near 50%" true
    (r.Metrics.uniformity_pct > 40.0 && r.Metrics.uniformity_pct < 60.0);
  check Alcotest.bool "uniqueness near 50%" true
    (r.Metrics.uniqueness_pct > 40.0 && r.Metrics.uniqueness_pct < 60.0);
  check Alcotest.bool "reliability high" true (r.Metrics.reliability_pct > 95.0);
  check Alcotest.bool "keys regenerate" true (r.Metrics.key_failure_rate < 0.01)

let test_metrics_validation () =
  Alcotest.check_raises "needs 2 devices"
    (Invalid_argument "Metrics.evaluate: need at least two devices") (fun () ->
      ignore (Metrics.evaluate ~devices:1 ~seed:1L ()))

let () =
  Alcotest.run "eric_puf"
    [ ( "arbiter",
        [ Alcotest.test_case "deterministic" `Quick test_arbiter_deterministic;
          Alcotest.test_case "sign matches delay" `Quick test_arbiter_sign_matches_delay;
          Alcotest.test_case "challenge sensitivity" `Quick test_arbiter_challenge_sensitivity;
          Alcotest.test_case "stage validation" `Quick test_arbiter_stage_validation ] );
      ( "device",
        [ Alcotest.test_case "table1 shape" `Quick test_device_table1_shape;
          Alcotest.test_case "reproducible" `Quick test_device_reproducible;
          Alcotest.test_case "unique" `Quick test_device_unique;
          Alcotest.test_case "key stable under noise" `Quick test_device_key_stable_under_noise;
          Alcotest.test_case "ideal response deterministic" `Quick
            test_device_noiseless_response_deterministic;
          Alcotest.test_case "respond arity" `Quick test_device_respond_arity ] );
      ( "metrics",
        [ Alcotest.test_case "population quality" `Slow test_metrics_quality;
          Alcotest.test_case "validation" `Quick test_metrics_validation ] ) ]
