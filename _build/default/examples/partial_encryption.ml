(* Partial and field-level encryption: protecting exactly what matters.

   The paper's selective methods: encrypt only a critical function (using
   the image's symbol table to find its byte range), or encrypt only chosen
   bit-fields — e.g. the address offsets of memory instructions, which
   hides the memory-access pattern while the program still *looks* like an
   ordinary unencrypted binary to a disassembler.

     dune exec examples/partial_encryption.exe *)

let program =
  {|
// public helper: nothing secret here
int scale(int x) { return 3 * x + 1; }

// the function worth protecting
int royalty_rate(int units) {
  int rate = 17;
  if (units > 1000) { rate = 11; }
  if (units > 10000) { rate = 7; }
  return units * rate;
}

int main() {
  println_int(scale(14));
  println_int(royalty_rate(500));
  println_int(royalty_rate(20000));
  return 0;
}
|}

let find_function_range image name =
  (* The function's label up to the next label that is not one of its own
     internal block labels (those are named ".L_<function>_..."). *)
  let symbols = image.Eric_rv.Program.symbols in
  let start = List.assoc name symbols in
  let own_prefix = ".L_" ^ name ^ "_" in
  let is_own label =
    String.length label >= String.length own_prefix
    && String.sub label 0 (String.length own_prefix) = own_prefix
  in
  let next =
    List.fold_left
      (fun acc (label, off) -> if off > start && off < acc && not (is_own label) then off else acc)
      (Eric_rv.Program.text_size image)
      symbols
  in
  (start, next)

let () =
  let target = Eric.Target.of_id 808L in
  let key = Eric.Protocol.provision target in
  let image =
    match Eric_cc.Driver.compile program with Ok i -> i | Error e -> failwith e
  in

  (* --- Variant A: encrypt just the royalty_rate function ------------- *)
  let lo, hi = find_function_range image "royalty_rate" in
  Printf.printf "royalty_rate occupies text bytes [0x%x, 0x%x)\n" lo hi;
  let ranged = Eric.Config.Partial (Eric.Config.Select_ranges [ (lo, hi) ]) in
  let build_a = Eric.Source.package_image ~mode:ranged ~key image in
  Printf.printf "variant A (function-scoped): %d of %d parcels encrypted\n"
    build_a.Eric.Source.stats.Eric.Encrypt.encrypted_parcels
    build_a.Eric.Source.stats.Eric.Encrypt.parcels;

  (* --- Variant B: encrypt only memory/branch offsets everywhere ------ *)
  let field = Eric.Config.Field (Eric.Config.Imm_fields, Eric.Config.Select_all) in
  let build_b = Eric.Source.package_image ~mode:field ~key image in
  let report text = Eric.Analysis.static_analysis text in
  let plain_r = report (Eric_rv.Program.text_bytes image) in
  let b_r = report build_b.Eric.Source.package.Eric.Package.enc_text in
  Printf.printf
    "variant B (field-level): ciphertext still decodes %.0f%% (vs %.0f%% plaintext) — \
     encryption is hard to even notice, but offsets are scrambled\n"
    (100.0 *. b_r.Eric.Analysis.valid_fraction)
    (100.0 *. plain_r.Eric.Analysis.valid_fraction);

  (* Both variants must decrypt and behave identically on the device. *)
  List.iter
    (fun (name, build) ->
      match Eric.Protocol.transmit ~source:build ~target () with
      | Eric.Protocol.Executed r ->
        Printf.printf "%s executed; output: %s\n" name
          (String.concat " " (String.split_on_char '\n' (String.trim r.Eric_sim.Soc.output)))
      | Eric.Protocol.Refused e ->
        Format.printf "%s refused: %a@." name Eric.Target.pp_load_error e)
    [ ("variant A", build_a); ("variant B", build_b) ];

  (* And the package-size price list of the three methods: *)
  let plain = Bytes.length (Eric_rv.Program.to_binary image) in
  let price mode =
    let b = Eric.Source.package_image ~mode ~key image in
    b.Eric.Source.package_size
  in
  Printf.printf "\nsizes: plain binary %d B | full %d B | function-scoped %d B | field-level %d B\n"
    plain (price Eric.Config.Full) (price ranged) (price field)
