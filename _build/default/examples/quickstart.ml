(* Quickstart: the whole ERIC workflow on one page.

   A software source compiles a MiniC program, encrypts it for one specific
   target device (using the device's PUF-derived key), ships it over a
   network, and the device's Hardware Decryption Engine decrypts, validates
   and runs it.

     dune exec examples/quickstart.exe *)

let program =
  {|
// A toy "proprietary" workload: checksum a generated message.
char message[64] = "ERIC: encrypted on the way, plaintext only inside.";

int checksum(char *s) {
  int h = 5381;
  int i = 0;
  while (s[i] != 0) {
    h = (h * 33 + s[i]) % 1000000007;
    i = i + 1;
  }
  return h;
}

int main() {
  print_str("message: ");
  println_str(message);
  print_str("djb2 checksum: ");
  println_int(checksum(message));
  return 0;
}
|}

let () =
  (* 1. The target hardware: a device whose Arbiter PUF gives it an
        identity.  The PUF key never leaves the silicon; provisioning hands
        out a derived key. *)
  let target = Eric.Target.of_id 0xD341CEL in
  let key = Eric.Protocol.provision target in
  Printf.printf "[device] PUF-based key (derived, safe to give to the source): %s\n"
    (Eric_util.Bytesx.to_hex key);

  (* 2. The software source compiles + signs + encrypts in one step. *)
  let build =
    match Eric.Source.build ~mode:Eric.Config.Full ~key program with
    | Ok b -> b
    | Error e -> failwith e
  in
  Printf.printf "[source] compiled: %s\n"
    (Format.asprintf "%a" Eric_rv.Program.pp_summary build.Eric.Source.image);
  Printf.printf "[source] packaged: %s\n"
    (Format.asprintf "%a" Eric.Package.pp_summary build.Eric.Source.package);

  (* 3. Ship it over the (untrusted) network and let the device run it. *)
  match Eric.Protocol.transmit ~source:build ~target () with
  | Eric.Protocol.Executed result ->
    Printf.printf "[device] HDE load: %Ld cycles, execution: %Ld cycles\n"
      result.Eric_sim.Soc.load_cycles result.Eric_sim.Soc.exec_cycles;
    print_string "[device] program output:\n";
    print_string result.Eric_sim.Soc.output;
    (* 4. And confirm nobody else can run it. *)
    let imposter = Eric.Target.of_id 0xBAD_DEL in
    (match Eric.Protocol.transmit ~source:build ~target:imposter () with
    | Eric.Protocol.Refused reason ->
      Format.printf "[imposter] refused, as intended: %a@." Eric.Target.pp_load_error reason
    | Eric.Protocol.Executed _ -> failwith "imposter executed the package!")
  | Eric.Protocol.Refused reason ->
    Format.printf "unexpected refusal: %a@." Eric.Target.pp_load_error reason;
    exit 1
