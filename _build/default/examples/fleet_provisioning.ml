(* Fleet provisioning: one software source, many devices.

   The paper's scaling story: "ERIC is suitable for compiling from a single
   software source for multiple target hardware" — the program is compiled
   once and encrypted per device, so only licensed devices run it, and a
   key-epoch rotation revokes old builds without touching the silicon.

     dune exec examples/fleet_provisioning.exe *)

let firmware =
  {|
int sensor_model() {
  // stand-in for a trade-secret calibration polynomial
  int acc = 0;
  for (int t = 0; t < 100; t = t + 1) {
    acc = acc + (3 * t * t - 7 * t + 11) % 1000;
  }
  return acc;
}

int main() {
  print_str("calibration constant: ");
  println_int(sensor_model());
  return 0;
}
|}

let () =
  (* Manufacture a small fleet; each device derives its own PUF-based key. *)
  let fleet =
    List.map
      (fun id -> (Printf.sprintf "device-%02Ld" id, Eric.Target.of_id id))
      [ 11L; 22L; 33L; 44L ]
  in
  let keys = List.map (fun (name, t) -> (name, Eric.Protocol.provision t)) fleet in

  (* One compilation, one encryption per licensed device. *)
  let builds =
    match Eric.Source.build_multi ~mode:Eric.Config.Full ~keys firmware with
    | Ok builds -> builds
    | Error e -> failwith e
  in
  Printf.printf "compiled once; %d per-device packages produced\n\n" (List.length builds);

  (* Every build runs only on its own device. *)
  print_endline "cross-check matrix (rows: package built for; columns: device ran on):";
  let matrix = Eric.Protocol.cross_check ~builds ~targets:fleet in
  Printf.printf "%-12s" "";
  List.iter (fun (name, _) -> Printf.printf " %-10s" name) fleet;
  print_newline ();
  List.iter
    (fun (bname, _) ->
      Printf.printf "%-12s" bname;
      List.iter
        (fun (tname, _) ->
          let ok =
            List.exists (fun (b, t, ok) -> b = bname && t = tname && ok) matrix
          in
          Printf.printf " %-10s" (if ok then "runs" else "refused"))
        fleet;
      print_newline ())
    builds;

  (* Revocation: device-11 rotates its KMU epoch; the old package dies. *)
  print_newline ();
  let old_name, old_build = List.hd builds in
  let device = Eric.Target.device (snd (List.hd fleet)) in
  let rotated = Eric.Target.create ~context:{ Eric.Kmu.epoch = 2; label = "eric" } device in
  (match Eric.Protocol.transmit ~source:old_build ~target:rotated () with
  | Eric.Protocol.Refused _ ->
    Printf.printf "%s rotated to epoch 2: old package refused (revoked)\n" old_name
  | Eric.Protocol.Executed _ -> failwith "revoked package still runs!");
  (* A fresh build against the rotated key works again. *)
  let new_key = Eric.Protocol.provision rotated in
  match Eric.Source.build ~mode:Eric.Config.Full ~key:new_key firmware with
  | Error e -> failwith e
  | Ok fresh -> (
    match Eric.Protocol.transmit ~source:fresh ~target:rotated () with
    | Eric.Protocol.Executed r ->
      Printf.printf "re-provisioned build runs: %s" r.Eric_sim.Soc.output
    | Eric.Protocol.Refused _ -> failwith "re-provisioned build refused")
