(* RSA-based key delivery — the paper's future-work item, implemented.

   The paper assumes the device's PUF-based key reaches the software source
   through an out-of-band handshake.  With an RSA keypair at the source,
   provisioning moves in band: the device encrypts its derived key under
   the source's public key and ships it across the same hostile network the
   program packages use.  An eavesdropper sees only RSA ciphertext; a
   tamperer trips the padding check.  The source additionally signs the
   package so the operator can pin a vendor key.

     dune exec examples/rsa_provisioning.exe *)

let firmware = {|
int main() {
  println_str("provisioned entirely over the network");
  return 0;
}
|}

let () =
  let rng = Eric_util.Prng.create ~seed:0xFEEDL in
  (* The vendor's long-term keypair (demo-grade 512-bit). *)
  let vendor_key = Eric_crypto.Rsa.generate ~bits:512 rng in
  let vendor_pub = Eric_crypto.Rsa.public_of vendor_key in
  Printf.printf "vendor RSA modulus: %d bits\n"
    (Eric_crypto.Bignum.num_bits vendor_pub.Eric_crypto.Rsa.n);

  let device = Eric.Target.of_id 31337L in

  (* 1. In-band provisioning: the device sends its derived key, RSA-sealed. *)
  (match Eric.Protocol.provision_over_network ~rng ~source_key:vendor_key device with
  | Error e -> failwith e
  | Ok key ->
    Printf.printf "vendor recovered device key over the network: %s...\n"
      (String.sub (Eric_util.Bytesx.to_hex key) 0 16);

    (* 2. Build and sign the package. *)
    let build =
      match Eric.Source.build ~mode:Eric.Config.Full ~key firmware with
      | Ok b -> b
      | Error e -> failwith e
    in
    let wire = Eric.Package.serialize build.Eric.Source.package in
    let signature = Eric_crypto.Rsa.sign vendor_key wire in
    Printf.printf "package signed (%d-byte RSA signature)\n" (Bytes.length signature);

    (* 3. The device pins the vendor key: verify before even parsing. *)
    if not (Eric_crypto.Rsa.verify vendor_pub ~message:wire ~signature) then
      failwith "vendor signature check failed";
    print_endline "device verified the vendor signature";
    (match Eric.Protocol.transmit ~source:build ~target:device () with
    | Eric.Protocol.Executed r -> print_string r.Eric_sim.Soc.output
    | Eric.Protocol.Refused e ->
      Format.printf "refused: %a@." Eric.Target.pp_load_error e);

    (* 4. A forged package fails the pinned-key check before the HDE runs. *)
    let mallory = Eric_crypto.Rsa.generate ~bits:512 rng in
    let forged_sig = Eric_crypto.Rsa.sign mallory wire in
    if Eric_crypto.Rsa.verify vendor_pub ~message:wire ~signature:forged_sig then
      failwith "forged signature accepted!"
    else print_endline "forged vendor signature rejected (pinned key)");

  (* 5. Provisioning under attack: a flipped bit in transit is caught. *)
  match
    Eric.Protocol.provision_over_network
      ~attack:(Eric.Protocol.Bit_flips { count = 1; seed = 2L })
      ~rng ~source_key:vendor_key device
  with
  | Error e -> Printf.printf "tampered provisioning rejected: %s\n" e
  | Ok key when Bytes.equal key (Eric.Target.derived_key device) ->
    failwith "tampered provisioning silently succeeded?!"
  | Ok _ -> print_endline "tampered provisioning yielded a useless key"
