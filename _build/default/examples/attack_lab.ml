(* Attack lab: what the paper's two adversaries actually see and get.

   Walks the threat model: (i) a static-analysis attacker disassembling an
   intercepted package, (ii) a dynamic-analysis attacker running it on
   hardware they control, (iii) in-transit tampering and soft errors.

     dune exec examples/attack_lab.exe *)

let secret_program =
  {|
// The "IP" the attacker wants: a distinctive constant-time comparison
// routine plus a key schedule.
int schedule[16];

void expand(int seed) {
  for (int i = 0; i < 16; i = i + 1) {
    seed = (seed * 0x5deece66 + 11) % 0x7fffffff;
    schedule[i] = seed;
  }
}

int compare(int *a, int *b, int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    acc = acc | (a[i] ^ b[i]);
  }
  return acc == 0;
}

int main() {
  expand(42);
  println_int(compare(schedule, schedule, 16));
  println_int(schedule[7] % 100000);
  return 0;
}
|}

let show_listing title text ~lines =
  Printf.printf "\n%s (first %d parcels):\n" title lines;
  let all = Eric_rv.Disasm.disassemble_stream text in
  List.iteri
    (fun i (l : Eric_rv.Disasm.line) ->
      if i < lines then
        match l.decoded with
        | Some inst -> Printf.printf "  %4x:  %s\n" l.offset (Eric_rv.Disasm.inst_to_string inst)
        | None -> Printf.printf "  %4x:  <not a valid instruction>\n" l.offset)
    all

let () =
  let target = Eric.Target.of_id 5150L in
  let key = Eric.Protocol.provision target in
  let build =
    match Eric.Source.build ~mode:Eric.Config.Full ~key secret_program with
    | Ok b -> b
    | Error e -> failwith e
  in
  let plain_text = Eric_rv.Program.text_bytes build.Eric.Source.image in
  let cipher_text = build.Eric.Source.package.Eric.Package.enc_text in

  print_endline "=== 1. Static analysis: disassembling the intercepted package ===";
  show_listing "what the attacker would see WITHOUT ERIC" plain_text ~lines:8;
  show_listing "what the attacker sees WITH ERIC" cipher_text ~lines:8;
  let rp = Eric.Analysis.static_analysis plain_text in
  let rc = Eric.Analysis.static_analysis cipher_text in
  Format.printf "@.plaintext : %a@." Eric.Analysis.pp_static_report rp;
  Format.printf "ciphertext: %a@." Eric.Analysis.pp_static_report rc;
  Printf.printf "byte entropy: %.2f -> %.2f bits/byte (8.0 = random)\n"
    (Eric.Analysis.byte_entropy plain_text)
    (Eric.Analysis.byte_entropy cipher_text);

  print_endline "\n=== 2. Dynamic analysis: running it on attacker-controlled hardware ===";
  let lab_device = Eric.Target.of_id 0xA77ACCE5L in
  (match Eric.Protocol.transmit ~source:build ~target:lab_device () with
  | Eric.Protocol.Refused reason ->
    Format.printf "lab device: %a — no instruction ever executes@." Eric.Target.pp_load_error
      reason
  | Eric.Protocol.Executed _ -> failwith "attack succeeded?!");
  (* Even brute-forcing one key bit tells the attacker almost nothing: *)
  Printf.printf "key diffusion: flipping 1 key bit changes %.1f%% of decrypted text bits\n"
    (100.0 *. Eric.Analysis.diffusion ~key build.Eric.Source.package);

  print_endline "\n=== 3. Tampering and soft errors in transit ===";
  let attempts =
    [ ("1 flipped bit (soft error)", Eric.Protocol.Bit_flips { count = 1; seed = 1L });
      ("8 flipped bits", Eric.Protocol.Bit_flips { count = 8; seed = 2L });
      ("malicious 16-byte splice", Eric.Protocol.Splice { payload = Bytes.make 16 '\x90'; at = 120 });
      ("truncated tail", Eric.Protocol.Truncate 5) ]
  in
  List.iter
    (fun (name, attack) ->
      match Eric.Protocol.transmit ~attack ~source:build ~target () with
      | Eric.Protocol.Refused reason ->
        Format.printf "  %-28s -> %a@." name Eric.Target.pp_load_error reason
      | Eric.Protocol.Executed _ -> Format.printf "  %-28s -> EXECUTED (bad!)@." name)
    attempts;

  print_endline "\n=== 4. The legitimate device, for contrast ===";
  match Eric.Protocol.transmit ~source:build ~target () with
  | Eric.Protocol.Executed r ->
    Printf.printf "validated and ran; output:\n%s" r.Eric_sim.Soc.output
  | Eric.Protocol.Refused _ -> failwith "legit device refused"
