(* Environment-bound packages: the paper's configurable Key Management
   Unit.  The same firmware is packaged so it only decrypts (a) during one
   maintenance window and (b) while the device is at a sane temperature —
   outside either condition the derived key differs and the Validation
   Unit refuses the program without any explicit policy check.

     dune exec examples/timelock.exe *)

let firmware =
  {|
int main() {
  println_str("maintenance firmware running");
  return 0;
}
|}

let window_hours = 4

let () =
  let device = Eric_puf.Device.manufacture 4242L in
  let puf_key = Eric_puf.Device.puf_key device in
  let context = Eric.Kmu.default_context in

  (* The source binds the package to the maintenance window starting at
     hour 490000 since the epoch, and to the 20-29 degree band. *)
  let wanted =
    { Eric.Envbind.hour_slot = Some (Eric.Envbind.window_of ~window_hours ~unix_hours:490000);
      temperature_band = Some 2;
      frequency_mhz = Some 25 }
  in
  let bound_key = Eric.Envbind.derive ~puf_key ~context wanted in
  Format.printf "package bound to: %a@." Eric.Envbind.pp_conditions wanted;
  let image = Eric_cc.Driver.compile_exn firmware in
  let pkg, _ = Eric.Encrypt.encrypt ~key:bound_key ~mode:Eric.Config.Full image in

  (* The device derives its key from what its sensors *actually* read. *)
  let attempt name env =
    let observed = Eric.Envbind.observe ~window_hours env wanted in
    let device_key = Eric.Envbind.derive ~puf_key ~context observed in
    match Eric.Encrypt.decrypt ~key:device_key pkg with
    | Ok (image, _) ->
      let r = Eric_sim.Soc.run_program image in
      Format.printf "%-34s -> runs: %s" name r.Eric_sim.Soc.output
    | Error e -> Format.printf "%-34s -> %a@." name Eric.Encrypt.pp_error e
  in
  attempt "in window, 24C"
    { Eric.Envbind.unix_hours = 490001; temperature_c = 24; clock_mhz = 25 };
  attempt "same window, 21C (same band)"
    { Eric.Envbind.unix_hours = 490003; temperature_c = 21; clock_mhz = 25 };
  attempt "six hours later"
    { Eric.Envbind.unix_hours = 490006; temperature_c = 24; clock_mhz = 25 };
  attempt "in window but overheating (41C)"
    { Eric.Envbind.unix_hours = 490001; temperature_c = 41; clock_mhz = 25 };
  attempt "in window, overclocked to 50MHz"
    { Eric.Envbind.unix_hours = 490001; temperature_c = 24; clock_mhz = 50 }
