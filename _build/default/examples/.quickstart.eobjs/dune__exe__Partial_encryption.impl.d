examples/partial_encryption.ml: Bytes Eric Eric_cc Eric_rv Eric_sim Format List Printf String
