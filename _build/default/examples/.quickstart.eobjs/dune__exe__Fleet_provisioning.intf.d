examples/fleet_provisioning.mli:
