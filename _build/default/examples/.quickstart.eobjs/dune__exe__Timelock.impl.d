examples/timelock.ml: Eric Eric_cc Eric_puf Eric_sim Format
