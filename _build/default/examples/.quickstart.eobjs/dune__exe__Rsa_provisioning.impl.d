examples/rsa_provisioning.ml: Bytes Eric Eric_crypto Eric_sim Eric_util Format Printf String
