examples/rsa_provisioning.mli:
