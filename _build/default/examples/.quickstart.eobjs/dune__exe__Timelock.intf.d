examples/timelock.mli:
