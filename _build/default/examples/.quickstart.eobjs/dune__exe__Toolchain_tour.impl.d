examples/toolchain_tour.ml: Eric_cc Eric_rv Eric_sim Format List Printf String
