examples/quickstart.ml: Eric Eric_rv Eric_sim Eric_util Format Printf
