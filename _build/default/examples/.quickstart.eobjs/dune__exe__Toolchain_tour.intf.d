examples/toolchain_tour.mli:
