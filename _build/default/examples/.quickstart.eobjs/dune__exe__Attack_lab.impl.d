examples/attack_lab.ml: Bytes Eric Eric_rv Eric_sim Format List Printf
