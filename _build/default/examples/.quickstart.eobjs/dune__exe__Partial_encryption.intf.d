examples/partial_encryption.mli:
