examples/fleet_provisioning.ml: Eric Eric_sim List Printf
