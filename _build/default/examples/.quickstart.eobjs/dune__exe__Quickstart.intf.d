examples/quickstart.mli:
