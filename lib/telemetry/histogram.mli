(** Fixed log-scale histogram: geometric buckets with ratio [2^(1/4)]
    (four per octave), so quantile estimates are upper bounds at most
    ~19% above the true observation.  Accepts any non-negative value
    (nanoseconds, bytes, cycles); negatives and NaN land in bucket 0. *)

type t

val ratio : float
(** Bucket edge ratio, [2 ** 0.25].  [quantile] never overestimates by
    more than this factor. *)

val create : unit -> t
val clear : t -> unit
val observe : t -> float -> unit

val count : t -> int
val sum : t -> float
val mean : t -> float
val min_value : t -> float
(** Exact observed minimum (0.0 when empty). *)

val max_value : t -> float
(** Exact observed maximum (0.0 when empty). *)

val quantile : t -> float -> float
(** [quantile t p] for p in [0,1]: the upper edge of the bucket holding
    the p-quantile observation.  Guaranteed [>=] the true quantile and
    [< true *. ratio] (exact for the overflow bucket, which reports the
    observed max).  0.0 when empty. *)

type summary = {
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

val summarize : t -> summary
val merge_into : dst:t -> t -> unit
