(* Process-global metric registry.

   A metric instance is (name, sorted labels) -> value; instances
   sharing a name form a labelled family (e.g.
   refused_total{reason="signature"} and refused_total{reason="framing"}).
   All writers guard on Control.enabled first, so instrumented code
   pays one branch when telemetry is off. *)

type key = { k_name : string; k_labels : (string * string) list }

type value = Counter of int64 ref | Gauge of float ref | Hist of Histogram.t

let table : (key, value) Hashtbl.t = Hashtbl.create 64

(* Registration order, so exporters print deterministically. *)
let order : key list ref = ref []

(* One process-wide lock makes every writer and reader safe to call from
   engine worker domains (OCaml 5); under 4.14's single runtime it is
   uncontended.  Writers are still a single unlocked branch while
   telemetry is disabled, so instrumented code pays nothing extra. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let key name labels = { k_name = name; k_labels = List.sort compare labels }

let find_or_add k fresh =
  match Hashtbl.find_opt table k with
  | Some v -> v
  | None ->
    let v = fresh () in
    Hashtbl.replace table k v;
    order := k :: !order;
    v

let reset () =
  locked (fun () ->
      Hashtbl.reset table;
      order := [])

(* ------------------------------------------------------------------ *)
(* Writers (no-ops when disabled)                                      *)
(* ------------------------------------------------------------------ *)

let inc ?(labels = []) ?(by = 1L) name =
  if !Control.enabled then
    locked (fun () ->
        match find_or_add (key name labels) (fun () -> Counter (ref 0L)) with
        | Counter r -> r := Int64.add !r by
        | Gauge _ | Hist _ -> invalid_arg ("Registry.inc: " ^ name ^ " is not a counter"))

let set ?(labels = []) name v =
  if !Control.enabled then
    locked (fun () ->
        match find_or_add (key name labels) (fun () -> Gauge (ref 0.0)) with
        | Gauge r -> r := v
        | Counter _ | Hist _ -> invalid_arg ("Registry.set: " ^ name ^ " is not a gauge"))

let observe ?(labels = []) name v =
  if !Control.enabled then
    locked (fun () ->
        match find_or_add (key name labels) (fun () -> Hist (Histogram.create ())) with
        | Hist h -> Histogram.observe h v
        | Counter _ | Gauge _ -> invalid_arg ("Registry.observe: " ^ name ^ " is not a histogram"))

(* ------------------------------------------------------------------ *)
(* Readers (always live, so tests can assert after a run)              *)
(* ------------------------------------------------------------------ *)

let counter ?(labels = []) name =
  locked (fun () ->
      match Hashtbl.find_opt table (key name labels) with Some (Counter r) -> !r | _ -> 0L)

let gauge ?(labels = []) name =
  locked (fun () ->
      match Hashtbl.find_opt table (key name labels) with Some (Gauge r) -> Some !r | _ -> None)

let histogram ?(labels = []) name =
  locked (fun () ->
      match Hashtbl.find_opt table (key name labels) with Some (Hist h) -> Some h | _ -> None)

let quantile ?(labels = []) name p =
  locked (fun () ->
      match Hashtbl.find_opt table (key name labels) with
      | Some (Hist h) when Histogram.count h > 0 -> Some (Histogram.quantile h p)
      | _ -> None)

(* Sum of a counter family across all label sets. *)
let counter_family_total name =
  locked (fun () ->
      Hashtbl.fold
        (fun k v acc ->
          match v with
          | Counter r when k.k_name = name -> Int64.add acc !r
          | _ -> acc)
        table 0L)

type entry = {
  e_name : string;
  e_labels : (string * string) list;
  e_value : value;
}

let entries () =
  locked (fun () ->
      List.rev_map
        (fun k -> { e_name = k.k_name; e_labels = k.k_labels; e_value = Hashtbl.find table k })
        !order)
