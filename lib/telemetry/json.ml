(* Minimal JSON codec: just enough for the JSONL and Chrome trace_event
   exporters and their round-trip tests.  No dependencies. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v ->
    (* JSON has no NaN/inf *)
    if Float.is_nan v || Float.abs v = Float.infinity then Buffer.add_string buf "null"
    else Buffer.add_string buf (number_to_string v)
  | Str s -> escape_into buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | _ -> raise (Bad (Printf.sprintf "expected %c at offset %d" c st.pos))

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else raise (Bad (Printf.sprintf "bad literal at offset %d" st.pos))

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if st.pos >= String.length st.src then raise (Bad "unterminated string");
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (if st.pos >= String.length st.src then raise (Bad "unterminated escape");
       let e = st.src.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         if st.pos + 4 > String.length st.src then raise (Bad "short \\u escape");
         let hex = String.sub st.src st.pos 4 in
         st.pos <- st.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex) with _ -> raise (Bad ("bad \\u escape " ^ hex))
         in
         (* UTF-8 encode the code point (no surrogate-pair support). *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
       | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
      loop ()
    | c -> Buffer.add_char buf c; loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.src start (st.pos - start) in
  match float_of_string_opt tok with
  | Some v -> Num v
  | None -> raise (Bad ("bad number " ^ tok))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> raise (Bad "unexpected end of input")
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let items = ref [ parse_value st ] in
      skip_ws st;
      while peek st = Some ',' do
        st.pos <- st.pos + 1;
        items := parse_value st :: !items;
        skip_ws st
      done;
      expect st ']';
      List (List.rev !items)
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws st;
      while peek st = Some ',' do
        st.pos <- st.pos + 1;
        fields := field () :: !fields;
        skip_ws st
      done;
      expect st '}';
      Obj (List.rev !fields)
    end
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos = String.length s then Ok v else Error "trailing garbage after JSON value"
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Num v -> Some v | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
