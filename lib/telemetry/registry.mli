(** Process-global registry of labelled metric families.

    An instance is (name, labels); instances sharing a name form a
    family, e.g. [refused_total{reason="signature"}] and
    [refused_total{reason="framing"}].  Writers are single-branch no-ops
    while telemetry is disabled ({!Control}); readers always work, so
    tests can assert on what a run recorded. *)

type value = Counter of int64 ref | Gauge of float ref | Hist of Histogram.t

val inc : ?labels:(string * string) list -> ?by:int64 -> string -> unit
(** Increment a counter (creating it at 0).
    @raise Invalid_argument if the instance exists with another type. *)

val set : ?labels:(string * string) list -> string -> float -> unit
(** Set a gauge to the latest value. *)

val observe : ?labels:(string * string) list -> string -> float -> unit
(** Record one observation into a histogram. *)

val counter : ?labels:(string * string) list -> string -> int64
(** Current counter value; 0 when absent. *)

val gauge : ?labels:(string * string) list -> string -> float option
val histogram : ?labels:(string * string) list -> string -> Histogram.t option

val quantile : ?labels:(string * string) list -> string -> float -> float option
(** [quantile name p] reads {!Histogram.quantile} off a recorded
    histogram instance: [None] when the instance is absent, empty or not
    a histogram — so SLO reports never invent a latency from nothing. *)

val counter_family_total : string -> int64
(** Sum of a counter family across every label set. *)

val reset : unit -> unit
(** Drop every metric instance (spans are reset separately). *)

type entry = {
  e_name : string;
  e_labels : (string * string) list;
  e_value : value;
}

val entries : unit -> entry list
(** Every instance in registration order (for exporters). *)
