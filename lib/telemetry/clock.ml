(* Monotonic nanosecond clock.

   The stdlib has no monotonic clock, so we derive one from the wall
   clock by clamping: time never goes backwards even if the wall clock
   steps.  Resolution is whatever gettimeofday offers (~1us); span
   durations below that read as 0, which the exporters handle. *)

let last = ref 0L

let now_ns () =
  let t = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  if Int64.compare t !last > 0 then last := t;
  !last

let ns_to_ms ns = Int64.to_float ns /. 1e6
let ns_to_us ns = Int64.to_float ns /. 1e3
