(* The three exporters over a Snapshot:
   - pp_table: human-readable summary for terminals;
   - to_jsonl: one self-describing JSON object per line;
   - to_chrome_trace: Chrome trace_event JSON for about:tracing /
     Perfetto (one "X" complete event per span, microsecond units). *)

let labels_to_string = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
    ^ "}"

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let pp_aligned fmt rows =
  match rows with
  | [] -> ()
  | header :: _ ->
    let columns = List.length header in
    let width c =
      List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 rows
    in
    let widths = List.init columns width in
    List.iter
      (fun row ->
        List.iteri
          (fun c cell ->
            let w = List.nth widths c in
            if c = 0 then Format.fprintf fmt "  %-*s" w cell
            else Format.fprintf fmt "  %*s" w cell)
          row;
        Format.pp_print_newline fmt ())
      rows

let ms ns = Printf.sprintf "%.3f" (Clock.ns_to_ms ns)
let msf v = Printf.sprintf "%.3f" (v /. 1e6)

let pp_table fmt (s : Snapshot.t) =
  Format.fprintf fmt "== telemetry ==@.";
  (match Span.aggregate s.Snapshot.spans with
  | [] -> ()
  | aggs ->
    Format.fprintf fmt "spans:@.";
    pp_aligned fmt
      ([ "span"; "count"; "total ms"; "p50 ms"; "p99 ms" ]
      :: List.map
           (fun (a : Span.agg) ->
             [ a.Span.a_name;
               string_of_int a.Span.a_count;
               ms a.Span.a_total_ns;
               msf (Histogram.quantile a.Span.a_hist 0.5);
               msf (Histogram.quantile a.Span.a_hist 0.99) ])
           aggs));
  (match s.Snapshot.counters with
  | [] -> ()
  | counters ->
    Format.fprintf fmt "counters:@.";
    pp_aligned fmt
      (List.map
         (fun (name, labels, v) -> [ name ^ labels_to_string labels; Int64.to_string v ])
         counters));
  (match s.Snapshot.gauges with
  | [] -> ()
  | gauges ->
    Format.fprintf fmt "gauges:@.";
    pp_aligned fmt
      (List.map
         (fun (name, labels, v) -> [ name ^ labels_to_string labels; Printf.sprintf "%g" v ])
         gauges));
  match s.Snapshot.histograms with
  | [] -> ()
  | hists ->
    Format.fprintf fmt "histograms:@.";
    pp_aligned fmt
      ([ "histogram"; "count"; "mean"; "p50"; "p90"; "p99"; "max" ]
      :: List.map
           (fun (name, labels, (h : Histogram.summary)) ->
             let f v = Printf.sprintf "%g" v in
             [ name ^ labels_to_string labels;
               string_of_int h.Histogram.s_count;
               f (if h.Histogram.s_count = 0 then 0.0
                  else h.Histogram.s_sum /. float_of_int h.Histogram.s_count);
               f h.Histogram.s_p50; f h.Histogram.s_p90; f h.Histogram.s_p99;
               f h.Histogram.s_max ])
           hists)

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let jsonl_records (s : Snapshot.t) =
  List.map
    (fun (e : Span.event) ->
      Json.Obj
        [ ("type", Json.Str "span");
          ("name", Json.Str e.Span.name);
          ("cat", Json.Str e.Span.cat);
          ("start_ns", Json.Num (Int64.to_float e.Span.start_ns));
          ("dur_ns", Json.Num (Int64.to_float e.Span.dur_ns));
          ("depth", Json.Num (float_of_int e.Span.depth)) ])
    s.Snapshot.spans
  @ List.map
      (fun (name, labels, v) ->
        Json.Obj
          [ ("type", Json.Str "counter");
            ("name", Json.Str name);
            ("labels", labels_json labels);
            ("value", Json.Num (Int64.to_float v)) ])
      s.Snapshot.counters
  @ List.map
      (fun (name, labels, v) ->
        Json.Obj
          [ ("type", Json.Str "gauge");
            ("name", Json.Str name);
            ("labels", labels_json labels);
            ("value", Json.Num v) ])
      s.Snapshot.gauges
  @ List.map
      (fun (name, labels, (h : Histogram.summary)) ->
        Json.Obj
          [ ("type", Json.Str "histogram");
            ("name", Json.Str name);
            ("labels", labels_json labels);
            ("count", Json.Num (float_of_int h.Histogram.s_count));
            ("sum", Json.Num h.Histogram.s_sum);
            ("min", Json.Num h.Histogram.s_min);
            ("max", Json.Num h.Histogram.s_max);
            ("p50", Json.Num h.Histogram.s_p50);
            ("p90", Json.Num h.Histogram.s_p90);
            ("p99", Json.Num h.Histogram.s_p99) ])
      s.Snapshot.histograms

let to_jsonl s =
  String.concat "" (List.map (fun r -> Json.to_string r ^ "\n") (jsonl_records s))

(* ------------------------------------------------------------------ *)
(* Chrome trace_event                                                  *)
(* ------------------------------------------------------------------ *)

let trace_json (s : Snapshot.t) =
  let events =
    List.map
      (fun (e : Span.event) ->
        Json.Obj
          [ ("name", Json.Str e.Span.name);
            ("cat", Json.Str e.Span.cat);
            ("ph", Json.Str "X");
            ("ts", Json.Num (Clock.ns_to_us e.Span.start_ns));
            ("dur", Json.Num (Clock.ns_to_us e.Span.dur_ns));
            ("pid", Json.Num 1.0);
            ("tid", Json.Num 1.0) ])
      s.Snapshot.spans
  in
  (* Counters ride along as metadata-style counter events at the end of
     the trace so Perfetto shows final totals. *)
  let end_ts =
    List.fold_left
      (fun acc (e : Span.event) ->
        max acc (Clock.ns_to_us e.Span.start_ns +. Clock.ns_to_us e.Span.dur_ns))
      0.0 s.Snapshot.spans
  in
  let counter_events =
    List.map
      (fun (name, labels, v) ->
        Json.Obj
          [ ("name", Json.Str (name ^ labels_to_string labels));
            ("ph", Json.Str "C");
            ("ts", Json.Num end_ts);
            ("pid", Json.Num 1.0);
            ("args", Json.Obj [ ("value", Json.Num (Int64.to_float v)) ]) ])
      s.Snapshot.counters
  in
  Json.Obj
    [ ("traceEvents", Json.List (events @ counter_events));
      ("displayTimeUnit", Json.Str "ms") ]

let to_chrome_trace s = Json.to_string (trace_json s)
