(* Hierarchical timed spans.

   A span is opened by [with_ ~name f] and recorded when [f] returns
   (or raises).  Nesting is tracked with an explicit stack, so the
   exporters can rebuild the hierarchy (depth) and Chrome's trace
   viewer nests the "X" complete events by time containment.

   When telemetry is disabled [with_] is exactly [f ()] after one
   branch. *)

type event = {
  name : string;
  cat : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;  (** 0 = top level; children have depth parent+1 *)
}

(* Completed spans, most recent first.  The list push is mutex-guarded
   so spans recorded from engine worker domains never tear it; [depth]
   stays a plain global — concurrent workers may observe a sibling's
   nesting, which skews hierarchy cosmetically but never corrupts it. *)
let events : event list ref = ref []
let open_depth = ref 0
let lock = Mutex.create ()

let reset () =
  Mutex.lock lock;
  events := [];
  open_depth := 0;
  Mutex.unlock lock

let record ~name ~cat ~start_ns ~dur_ns ~depth =
  Mutex.lock lock;
  events := { name; cat; start_ns; dur_ns; depth } :: !events;
  Mutex.unlock lock

let with_ ?(cat = "eric") ~name f =
  if not !Control.enabled then f ()
  else begin
    let depth = !open_depth in
    incr open_depth;
    let start_ns = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur_ns = Int64.sub (Clock.now_ns ()) start_ns in
        decr open_depth;
        record ~name ~cat ~start_ns ~dur_ns ~depth)
      f
  end

let completed () = List.rev !events

(* ------------------------------------------------------------------ *)
(* Per-name aggregation (what the table exporter shows)                *)
(* ------------------------------------------------------------------ *)

type agg = { a_name : string; a_count : int; a_total_ns : int64; a_hist : Histogram.t }

let aggregate evs =
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      let a =
        match Hashtbl.find_opt tbl e.name with
        | Some a -> a
        | None ->
          let a = { a_name = e.name; a_count = 0; a_total_ns = 0L; a_hist = Histogram.create () } in
          Hashtbl.replace tbl e.name a;
          order := e.name :: !order;
          a
      in
      Histogram.observe a.a_hist (Int64.to_float e.dur_ns);
      Hashtbl.replace tbl e.name
        { a with a_count = a.a_count + 1; a_total_ns = Int64.add a.a_total_ns e.dur_ns })
    evs;
  List.rev !order |> List.map (fun name -> Hashtbl.find tbl name)
