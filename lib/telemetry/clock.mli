(** Monotonic (never-decreasing) nanosecond clock for span timing. *)

val now_ns : unit -> int64
(** Current time in nanoseconds.  Guaranteed non-decreasing across calls
    within a process, even if the wall clock steps backwards. *)

val ns_to_ms : int64 -> float
val ns_to_us : int64 -> float
