(** Minimal JSON codec backing the JSONL and Chrome trace exporters.

    Covers the JSON the exporters emit (objects, arrays, strings with
    escapes, finite numbers, booleans, null); [of_string] exists so tests
    can round-trip exporter output without external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  NaN and infinities print as
    [null], as JSON requires. *)

val of_string : string -> (t, string) result

val member : string -> t -> t option
(** [member k (Obj ...)] looks up a field; [None] on other constructors. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
