(** Exporters over a {!Snapshot}: human table, JSONL, and Chrome
    [trace_event] JSON loadable in about:tracing / Perfetto / ui.perfetto.dev. *)

val pp_table : Format.formatter -> Snapshot.t -> unit
(** Aligned human-readable summary: spans (count/total/p50/p99),
    counters, gauges, histogram quantiles. *)

val to_jsonl : Snapshot.t -> string
(** One JSON object per line.  Each has a ["type"] field:
    ["span"] (name, cat, start_ns, dur_ns, depth) or
    ["counter"]/["gauge"]/["histogram"] (name, labels, value(s)). *)

val jsonl_records : Snapshot.t -> Json.t list
(** The JSONL lines as JSON values (for programmatic use and tests). *)

val to_chrome_trace : Snapshot.t -> string
(** Chrome trace_event JSON: one ["ph":"X"] complete event per span
    (microsecond timestamps) plus a final ["ph":"C"] counter event per
    counter instance. *)

val trace_json : Snapshot.t -> Json.t

val labels_to_string : (string * string) list -> string
(** [{k="v",...}] suffix used in table output; empty string for no labels. *)
