(* Fixed log-scale histogram.

   Bucket edges form a geometric series with ratio 2^(1/4) (four
   sub-buckets per octave), so any quantile estimate is at most ~19%
   above the true value.  Bucket 0 catches everything below 1.0;
   [bucket_count - 1] is an overflow bucket.  With 242 buckets the edges
   reach past 2^60 — enough for nanosecond durations, byte counts and
   cycle counts alike. *)

let buckets_per_octave = 4
let bucket_count = 242

let ratio = Float.pow 2.0 (1.0 /. float_of_int buckets_per_octave)

(* edges.(i) is the lower edge of bucket i+1: bucket i (i >= 1) holds
   values v with edges.(i-1) <= v < edges.(i). *)
let edges =
  let e = Array.make (bucket_count - 1) 1.0 in
  for i = 1 to Array.length e - 1 do
    e.(i) <- e.(i - 1) *. ratio
  done;
  e

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { counts = Array.make bucket_count 0; count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity }

let clear t =
  Array.fill t.counts 0 bucket_count 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

(* Binary search: smallest bucket whose upper edge is > v.  Using the
   same [edges] array for indexing and for quantile read-back keeps the
   two self-consistent, immune to log() rounding. *)
let bucket_of v =
  if not (v >= edges.(0)) then 0 (* also catches NaN and negatives *)
  else begin
    let lo = ref 0 and hi = ref (Array.length edges) in
    (* invariant: edges.(!lo) <= v, and (!hi = length || edges.(!hi) > v) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if edges.(mid) <= v then lo := mid else hi := mid
    done;
    !hi (* bucket index; = bucket_count - 1 means overflow *)
  end

let upper_edge bucket =
  if bucket = 0 then edges.(0)
  else if bucket >= Array.length edges then infinity
  else edges.(bucket)

let observe t v =
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0.0 else t.min_v
let max_value t = if t.count = 0 then 0.0 else t.max_v

(* Upper edge of the bucket holding the p-quantile observation: an upper
   bound on the true quantile, tight to one bucket ratio.  The overflow
   bucket reports the exact observed max instead of infinity. *)
let quantile t p =
  if t.count = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (Float.ceil (p *. float_of_int t.count))) in
    let rank = min rank t.count in
    let acc = ref 0 and bucket = ref 0 in
    (try
       for i = 0 to bucket_count - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= rank then begin
           bucket := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !bucket = bucket_count - 1 then t.max_v else upper_edge !bucket
  end

type summary = {
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

let summarize t =
  {
    s_count = t.count;
    s_sum = t.sum;
    s_min = min_value t;
    s_max = max_value t;
    s_p50 = quantile t 0.5;
    s_p90 = quantile t 0.9;
    s_p99 = quantile t 0.99;
  }

let merge_into ~dst src =
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum +. src.sum;
  if src.count > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end
