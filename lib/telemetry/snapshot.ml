(* A point-in-time copy of everything telemetry recorded, decoupling the
   exporters from the live (mutable) registry and span buffer. *)

type t = {
  spans : Span.event list;
  counters : (string * (string * string) list * int64) list;
  gauges : (string * (string * string) list * float) list;
  histograms : (string * (string * string) list * Histogram.summary) list;
}

let capture () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (e : Registry.entry) ->
      match e.Registry.e_value with
      | Registry.Counter r -> counters := (e.Registry.e_name, e.Registry.e_labels, !r) :: !counters
      | Registry.Gauge r -> gauges := (e.Registry.e_name, e.Registry.e_labels, !r) :: !gauges
      | Registry.Hist h ->
        histograms := (e.Registry.e_name, e.Registry.e_labels, Histogram.summarize h) :: !histograms)
    (Registry.entries ());
  {
    spans = Span.completed ();
    counters = List.rev !counters;
    gauges = List.rev !gauges;
    histograms = List.rev !histograms;
  }

let reset_all () =
  Registry.reset ();
  Span.reset ()
