(* Global on/off switch for the whole telemetry subsystem.

   Every recording entry point (Span.with_, Registry.inc, ...) reads this
   one ref first and returns immediately when it is false, so a build
   without --telemetry pays exactly one branch per instrumentation site. *)

let enabled = ref false

let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

let with_enabled f =
  let saved = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := saved) f
