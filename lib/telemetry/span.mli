(** Hierarchical timed spans over the monotonic clock.

    [with_ ~name f] times [f] and records a completed span (also on
    exception).  Nested calls record their depth, so exporters can
    rebuild the hierarchy.  When telemetry is disabled ({!Control}),
    [with_] is [f ()] behind a single branch. *)

type event = {
  name : string;
  cat : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;  (** 0 = top level; children have depth parent+1 *)
}

val with_ : ?cat:string -> name:string -> (unit -> 'a) -> 'a

val completed : unit -> event list
(** All completed spans in completion order. *)

val reset : unit -> unit

type agg = { a_name : string; a_count : int; a_total_ns : int64; a_hist : Histogram.t }

val aggregate : event list -> agg list
(** Group events by name (first-appearance order) with count, total
    duration, and a duration histogram for quantiles. *)
