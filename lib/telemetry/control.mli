(** Global on/off switch for telemetry recording.

    Disabled by default: every instrumentation site in the pipeline guards
    on {!is_enabled} and is a single-branch no-op when the switch is off. *)

val enabled : bool ref
(** The raw switch; exposed so guards compile to one load + branch. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val with_enabled : (unit -> 'a) -> 'a
(** Run a thunk with telemetry on, restoring the previous state after
    (including on exceptions). *)
