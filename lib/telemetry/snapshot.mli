(** Point-in-time copy of everything telemetry recorded: completed spans
    plus every counter / gauge / histogram instance.  Exporters consume
    this rather than the live registry. *)

type t = {
  spans : Span.event list;
  counters : (string * (string * string) list * int64) list;
  gauges : (string * (string * string) list * float) list;
  histograms : (string * (string * string) list * Histogram.summary) list;
}

val capture : unit -> t

val reset_all : unit -> unit
(** Clear the registry and the span buffer (e.g. between runs). *)
