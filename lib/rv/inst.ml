type r_op =
  | Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And
  | Addw | Subw | Sllw | Srlw | Sraw
  | Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu
  | Mulw | Divw | Divuw | Remw | Remuw

type i_op = Addi | Slti | Sltiu | Xori | Ori | Andi | Addiw
type shift_op = Slli | Srli | Srai | Slliw | Srliw | Sraiw
type load_op = Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu
type store_op = Sb | Sh | Sw | Sd
type branch_op = Beq | Bne | Blt | Bge | Bltu | Bgeu
type u_op = Lui | Auipc

type t =
  | R of r_op * Reg.t * Reg.t * Reg.t
  | I of i_op * Reg.t * Reg.t * int
  | Shift of shift_op * Reg.t * Reg.t * int
  | U of u_op * Reg.t * int
  | Load of load_op * Reg.t * Reg.t * int
  | Store of store_op * Reg.t * Reg.t * int
  | Branch of branch_op * Reg.t * Reg.t * int
  | Jal of Reg.t * int
  | Jalr of Reg.t * Reg.t * int
  | Ecall
  | Ebreak
  | Fence
  | Csrr of Reg.t * int

let equal (a : t) (b : t) = a = b

let uses = function
  | R (_, _, rs1, rs2) -> [ rs1; rs2 ]
  | I (_, _, rs1, _) | Shift (_, _, rs1, _) | Load (_, _, rs1, _) -> [ rs1 ]
  | U _ | Jal _ -> []
  | Store (_, src, base, _) -> [ src; base ]
  | Branch (_, rs1, rs2, _) -> [ rs1; rs2 ]
  | Jalr (_, rs1, _) -> [ rs1 ]
  | Ecall | Ebreak | Fence | Csrr _ -> []

let defines = function
  | R (_, rd, _, _) | I (_, rd, _, _) | Shift (_, rd, _, _) | U (_, rd, _) | Load (_, rd, _, _)
  | Jal (rd, _) | Jalr (rd, _, _) | Csrr (rd, _) ->
    Some rd
  | Store _ | Branch _ | Ecall | Ebreak | Fence -> None

let is_control_flow = function
  | Branch _ | Jal _ | Jalr _ | Ecall | Ebreak -> true
  | R _ | I _ | Shift _ | U _ | Load _ | Store _ | Fence | Csrr _ -> false

let is_call = function
  | Jal (rd, _) | Jalr (rd, _, _) -> not (Reg.equal rd Reg.x0)
  | _ -> false

let is_return = function
  | Jalr (rd, rs1, 0) -> Reg.equal rd Reg.x0 && Reg.equal rs1 Reg.ra
  | _ -> false

let r_mnemonic = function
  | Add -> "add" | Sub -> "sub" | Sll -> "sll" | Slt -> "slt" | Sltu -> "sltu"
  | Xor -> "xor" | Srl -> "srl" | Sra -> "sra" | Or -> "or" | And -> "and"
  | Addw -> "addw" | Subw -> "subw" | Sllw -> "sllw" | Srlw -> "srlw" | Sraw -> "sraw"
  | Mul -> "mul" | Mulh -> "mulh" | Mulhsu -> "mulhsu" | Mulhu -> "mulhu"
  | Div -> "div" | Divu -> "divu" | Rem -> "rem" | Remu -> "remu"
  | Mulw -> "mulw" | Divw -> "divw" | Divuw -> "divuw" | Remw -> "remw" | Remuw -> "remuw"

let i_mnemonic = function
  | Addi -> "addi" | Slti -> "slti" | Sltiu -> "sltiu" | Xori -> "xori"
  | Ori -> "ori" | Andi -> "andi" | Addiw -> "addiw"

let shift_mnemonic = function
  | Slli -> "slli" | Srli -> "srli" | Srai -> "srai"
  | Slliw -> "slliw" | Srliw -> "srliw" | Sraiw -> "sraiw"

let load_mnemonic = function
  | Lb -> "lb" | Lh -> "lh" | Lw -> "lw" | Ld -> "ld" | Lbu -> "lbu" | Lhu -> "lhu" | Lwu -> "lwu"

let store_mnemonic = function Sb -> "sb" | Sh -> "sh" | Sw -> "sw" | Sd -> "sd"

let branch_mnemonic = function
  | Beq -> "beq" | Bne -> "bne" | Blt -> "blt" | Bge -> "bge" | Bltu -> "bltu" | Bgeu -> "bgeu"

let u_mnemonic = function Lui -> "lui" | Auipc -> "auipc"

let mnemonic = function
  | R (op, _, _, _) -> r_mnemonic op
  | I (op, _, _, _) -> i_mnemonic op
  | Shift (op, _, _, _) -> shift_mnemonic op
  | U (op, _, _) -> u_mnemonic op
  | Load (op, _, _, _) -> load_mnemonic op
  | Store (op, _, _, _) -> store_mnemonic op
  | Branch (op, _, _, _) -> branch_mnemonic op
  | Jal _ -> "jal"
  | Jalr _ -> "jalr"
  | Ecall -> "ecall"
  | Ebreak -> "ebreak"
  | Fence -> "fence"
  | Csrr (_, 0xC00) -> "rdcycle"
  | Csrr (_, 0xC01) -> "rdtime"
  | Csrr (_, 0xC02) -> "rdinstret"
  | Csrr _ -> "csrr"

let fits_simm ~bits v =
  let lo = -(1 lsl (bits - 1)) in
  let hi = (1 lsl (bits - 1)) - 1 in
  v >= lo && v <= hi

let is_w_shift = function Slliw | Srliw | Sraiw -> true | Slli | Srli | Srai -> false

let validate inst =
  let check cond msg = if cond then Ok () else Error msg in
  match inst with
  | R _ | Ecall | Ebreak | Fence -> Ok ()
  | Csrr (_, csr) ->
    check (csr = 0xC00 || csr = 0xC01 || csr = 0xC02) "unsupported CSR (cycle/time/instret only)"
  | I (_, _, _, imm) -> check (fits_simm ~bits:12 imm) "I-type immediate out of 12-bit range"
  | Shift (op, _, _, shamt) ->
    let limit = if is_w_shift op then 32 else 64 in
    check (shamt >= 0 && shamt < limit) "shift amount out of range"
  | U (_, _, imm) -> check (fits_simm ~bits:20 imm) "U-type immediate out of 20-bit range"
  | Load (_, _, _, off) | Store (_, _, _, off) | Jalr (_, _, off) ->
    check (fits_simm ~bits:12 off) "memory/jalr offset out of 12-bit range"
  | Branch (_, _, _, off) ->
    if not (fits_simm ~bits:13 off) then Error "branch offset out of 13-bit range"
    else check (off land 1 = 0) "branch offset must be even"
  | Jal (_, off) ->
    if not (fits_simm ~bits:21 off) then Error "jal offset out of 21-bit range"
    else check (off land 1 = 0) "jal offset must be even"
