(** The RV64IM instruction set (plus the system instructions ERIC needs),
    grouped by encoding format.

    This is the instruction vocabulary shared by the whole framework: the
    MiniC compiler emits it, the encoder/compressor serialise it, the HDE
    decrypts its encodings, the simulator executes it, and the
    static-analysis attack model tries to disassemble it.

    Branch, jump and compare-branch offsets are *byte* offsets relative to
    the address of the instruction itself, as in the ISA manual. *)

type r_op =
  | Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And
  | Addw | Subw | Sllw | Srlw | Sraw
  | Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu
  | Mulw | Divw | Divuw | Remw | Remuw

type i_op = Addi | Slti | Sltiu | Xori | Ori | Andi | Addiw
type shift_op = Slli | Srli | Srai | Slliw | Srliw | Sraiw
type load_op = Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu
type store_op = Sb | Sh | Sw | Sd
type branch_op = Beq | Bne | Blt | Bge | Bltu | Bgeu
type u_op = Lui | Auipc

type t =
  | R of r_op * Reg.t * Reg.t * Reg.t  (** rd, rs1, rs2 *)
  | I of i_op * Reg.t * Reg.t * int  (** rd, rs1, imm12 (sign-extended) *)
  | Shift of shift_op * Reg.t * Reg.t * int  (** rd, rs1, shamt *)
  | U of u_op * Reg.t * int  (** rd, signed 20-bit immediate (placed at [31:12]) *)
  | Load of load_op * Reg.t * Reg.t * int  (** rd, base, byte offset *)
  | Store of store_op * Reg.t * Reg.t * int  (** src, base, byte offset *)
  | Branch of branch_op * Reg.t * Reg.t * int  (** rs1, rs2, pc-relative byte offset *)
  | Jal of Reg.t * int  (** rd, pc-relative byte offset *)
  | Jalr of Reg.t * Reg.t * int  (** rd, base, imm12 *)
  | Ecall
  | Ebreak
  | Fence
  | Csrr of Reg.t * int
      (** read-only CSR read ([csrrs rd, csr, x0]); supported CSRs are the
          unprivileged counters cycle (0xC00), time (0xC01) and instret
          (0xC02) — what a dynamic-analysis attacker samples *)

val equal : t -> t -> bool

val uses : t -> Reg.t list
(** Source registers read by the instruction. *)

val defines : t -> Reg.t option
(** Destination register, if any ([x0] destinations are reported as-is). *)

val is_control_flow : t -> bool

val is_call : t -> bool
(** [jal]/[jalr] writing a link register: control transfers that resume
    at the following parcel.  Used by CFG reconstruction and the
    call-graph-recovery attack model. *)

val is_return : t -> bool
(** [jalr x0, ra, 0] — the canonical (and [c.jr ra] compressed) return. *)

val mnemonic : t -> string
(** Just the operation name, e.g. ["addi"]; used by the static-analysis
    attack model's opcode histograms. *)

val fits_simm : bits:int -> int -> bool
(** [fits_simm ~bits v] is true when [v] is representable as a [bits]-wide
    two's-complement signed immediate. *)

val validate : t -> (unit, string) result
(** Range-checks every immediate field against its encoding width. *)
