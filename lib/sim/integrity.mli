(** Functional runtime of the integrity guard modeled by {!Eric_hw.Guard}.

    At load the guard enrolls a reference digest per granule of the
    resident image (text, data and bss).  While the program runs it
    re-checks granules — periodically (scrub) and/or on I-cache fills
    (re-validate on fetch) — and any mismatch is an integrity fault.

    The region below the image's data segment (text plus its page-
    rounding slack) is treated as immutable: it is never re-enrolled, so
    a modification there always faults at the next check.  Granules from
    the data segment up are {e dirty-tracked}: a granule the program
    stored to since the last scrub is re-enrolled (its new contents
    become the reference) rather than checked — the hardware cannot
    distinguish a legitimate write from an upset it did not observe, so
    honesty costs a small exposure window that the interval sweep
    measures.

    Digests are modeled with a 64-bit FNV-1a hash standing in for the
    truncated SHA-256 the silicon computes; the cycle cost charged is
    the SHA cost from {!Eric_hw.Guard}. *)

type stats = {
  mutable scrub_passes : int;
  mutable granules_checked : int;
  mutable granules_reenrolled : int;  (** dirty granules re-hashed, not checked *)
  mutable fetch_checks : int;
  mutable guard_cycles : int64;  (** total cycles charged for checking *)
}

type t

val create : config:Eric_hw.Guard.config -> image:Eric_rv.Program.t -> Memory.t -> t
(** Enroll reference digests over the image's resident span in [memory]
    (which must already be loaded).  @raise Invalid_argument on a config
    that fails {!Eric_hw.Guard.validate}. *)

val stats : t -> stats

val attach : t -> Cpu.t -> unit
(** Install the store-tracking and fetch-check hooks on the core. *)

val scrub_due : t -> now:int64 -> bool

val scrub : t -> Cpu.t -> unit
(** One full scrub pass: checks clean granules, re-enrolls dirty ones,
    charges the pass cycles to the core and faults it
    ({!Cpu.fault_integrity}) on the first mismatch.  Schedules the next
    pass. *)

val verify_all : t -> (unit, string) result
(** Check every non-dirty granule without charging cycles — the
    final-state audit used by tests. *)
