(** The target SoC: memory + Rocket-class core, plus the plain program
    loader.

    [run_program] is the baseline execution path of the Fig-7 experiment:
    load a *plaintext* image into main memory over the DMA path and execute
    it to completion.  ERIC's encrypted path (decrypt + hash + validate
    while loading) lives in the [eric] core library and reuses this SoC for
    the execution half. *)

type result = {
  status : Cpu.status;
  output : string;
  exec_cycles : int64;  (** core cycles from entry to exit *)
  load_cycles : int64;  (** cycles spent loading the image into memory *)
  guard_cycles : int64;
      (** cycles the runtime integrity guard spent re-checking resident
          granules (scrub passes + fetch checks); 0 when no guard runs.
          Already included in [exec_cycles] — reported separately so the
          overhead curve can be read off directly. *)
  instructions : int64;
  icache_hit_rate : float;
  dcache_hit_rate : float;
}

val total_cycles : result -> int64
(** Load + execute: the end-to-end time Fig 7 compares. *)

val record_result : result -> unit
(** Publish a run's hardware counters as telemetry gauges
    ([sim.exec_cycles], [sim.instructions], [sim.cpi],
    [sim.icache_hit_rate], ...).  Called by [run_loaded]/[run_program];
    exposed for front ends that drive {!Cpu} directly.  No-op while
    telemetry is disabled. *)

val dma_bytes_per_cycle : int
(** Throughput of the plain loader's memory port (8 B/cycle). *)

val plain_load_cycles : Eric_rv.Program.t -> int64
(** Cycles to DMA the plain image (header + text + data) into memory. *)

val load : Eric_rv.Program.t -> Memory.t
(** Fresh memory with text, data and zeroed BSS placed per
    {!Eric_rv.Program.Layout}. *)

val boot :
  ?timing:Cpu.timing -> ?branch_predictor:bool -> Eric_rv.Program.t -> Memory.t -> Cpu.t
(** A CPU with pc at the image entry and sp at the top of the stack. *)

val run_program :
  ?timing:Cpu.timing -> ?branch_predictor:bool -> ?fuel:int -> Eric_rv.Program.t -> result
(** Load and run a plaintext image end-to-end. *)

val run_loaded :
  ?timing:Cpu.timing ->
  ?fuel:int ->
  ?guard:Eric_hw.Guard.config ->
  load_cycles:int64 ->
  Eric_rv.Program.t ->
  Memory.t ->
  result
(** Run an image that something else (e.g. the HDE) already placed in
    memory, accounting its loading cost as [load_cycles].

    When [guard] (default {!Eric_hw.Guard.disabled}) enables a mechanism,
    an {!Integrity} runtime is enrolled over the resident image before the
    first instruction and its checks run as the program executes: scrub
    passes between instructions whenever the interval elapses, fetch
    checks on I-cache misses.  A mismatch ends the run with
    {!Cpu.Integrity_fault}; all checking cycles are charged to
    [exec_cycles] and reported in [guard_cycles]. *)
