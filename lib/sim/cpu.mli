(** Cycle-approximate model of the paper's target core: an in-order 6-stage
    RV64 pipeline (Rocket-class) with L1 instruction and data caches.

    Architectural execution is exact (every supported instruction's RV64
    semantics, including the M extension's division corner cases).  Timing
    is approximate but shaped like the real pipeline: one instruction per
    cycle, plus stalls for load-use hazards, taken control flow, long-latency
    multiply/divide, and cache misses.  Fig 7 only needs relative execution
    times, for which this class of model is standard. *)

type timing = {
  icache_miss_penalty : int;
  dcache_miss_penalty : int;
  writeback_penalty : int;
  load_use_stall : int;
  taken_branch_penalty : int;
  jump_penalty : int;  (** jal: target known at decode *)
  jalr_penalty : int;  (** indirect: target known at execute *)
  mul_extra : int;
  div_extra : int;
}

val default_timing : timing

type syscall_result =
  | Sys_continue
  | Sys_exit of int

type t

val create :
  ?timing:timing ->
  ?icache:Cache.config ->
  ?dcache:Cache.config ->
  ?branch_predictor:bool ->
  memory:Memory.t ->
  pc:int ->
  sp:int ->
  unit ->
  t
(** [branch_predictor] (default false, matching the fixed-penalty model the
    evaluation uses) enables a bimodal 2-bit predictor: conditional
    branches pay [taken_branch_penalty] only on a misprediction. *)

val reg : t -> Eric_rv.Reg.t -> int64
val set_reg : t -> Eric_rv.Reg.t -> int64 -> unit
val pc : t -> int
val set_pc : t -> int -> unit

val cycles : t -> int64
val instructions : t -> int64
val icache : t -> Cache.t
val dcache : t -> Cache.t
val output : t -> string
(** Everything the program wrote to stdout via the write syscall. *)

type status =
  | Running
  | Exited of int
  | Faulted of string  (** invalid instruction, bus error, ... *)
  | Integrity_fault of string
      (** the runtime integrity guard found resident code or data that
          no longer matches its load-time reference digest — distinct
          from {!Faulted}: the fault is raised by dedicated checking
          hardware, not by the corrupted program happening to trap *)

val status : t -> status

exception Integrity_violation of string
(** Raised by guard hooks mid-step; {!step} converts it into the
    {!Integrity_fault} status. *)

val set_trace : t -> (pc:int -> Eric_rv.Inst.t -> unit) option -> unit
(** Install (or clear) a per-instruction hook, called after fetch/decode
    and before execution — the basis of the CLI's [--trace] mode and of
    instruction-level debugging. *)

val set_store_hook : t -> (addr:int -> len:int -> unit) option -> unit
(** Called after every architecturally executed store — how the
    integrity guard tracks granules the program legitimately wrote. *)

val set_ifetch_miss_hook : t -> (addr:int -> int) option -> unit
(** Called on every I-cache miss with the fetch address; returns extra
    fill-path cycles to charge and may raise {!Integrity_violation}
    (the re-validate-on-fetch guard mechanism). *)

val charge : t -> int -> unit
(** Charge extra cycles to the core's cycle counter — used by external
    agents (the scrub engine) that steal memory bandwidth. *)

val fault_integrity : t -> string -> unit
(** Force the {!Integrity_fault} status from outside {!step} (the
    periodic scrub engine runs between instructions). *)

val step : t -> unit
(** Execute one instruction (no-op once not [Running]).

    Syscall ABI (a7 selects, as in the Linux RV64 convention):
    - 64 (write): a0=fd (ignored), a1=buffer address, a2=length; appends the
      bytes to {!output}; returns a2 in a0.
    - 93 (exit): terminates with code a0. *)

val run : ?fuel:int -> t -> status
(** Step until no longer [Running] or [fuel] instructions (default 50M) have
    retired; returns the final status ([Running] means fuel ran out, and the
    status is set to [Faulted "out of fuel"]). *)
