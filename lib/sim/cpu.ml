open Eric_rv

type timing = {
  icache_miss_penalty : int;
  dcache_miss_penalty : int;
  writeback_penalty : int;
  load_use_stall : int;
  taken_branch_penalty : int;
  jump_penalty : int;
  jalr_penalty : int;
  mul_extra : int;
  div_extra : int;
}

let default_timing =
  {
    icache_miss_penalty = 20;
    dcache_miss_penalty = 20;
    writeback_penalty = 4;
    load_use_stall = 1;
    taken_branch_penalty = 2;
    jump_penalty = 1;
    jalr_penalty = 2;
    mul_extra = 3;
    div_extra = 31;
  }

type syscall_result = Sys_continue | Sys_exit of int

type status = Running | Exited of int | Faulted of string | Integrity_fault of string

exception Integrity_violation of string

type t = {
  regs : int64 array;
  mutable pc_ : int;
  memory : Memory.t;
  icache_ : Cache.t;
  dcache_ : Cache.t;
  timing : timing;
  mutable cycles_ : int64;
  mutable instret : int64;
  mutable status_ : status;
  mutable last_load_dest : Reg.t option;
  mutable trace : (pc:int -> Inst.t -> unit) option;
  mutable on_store : (addr:int -> len:int -> unit) option;
  mutable on_ifetch_miss : (addr:int -> int) option;
  predictor : int array option;  (** bimodal 2-bit counters, pc-indexed *)
  out : Buffer.t;
  decode_cache : (int, Inst.t * int) Hashtbl.t;
}

let create ?(timing = default_timing) ?(icache = Cache.table1_config)
    ?(dcache = Cache.table1_config) ?(branch_predictor = false) ~memory ~pc ~sp () =
  let t =
    {
      regs = Array.make 32 0L;
      pc_ = pc;
      memory;
      icache_ = Cache.create icache;
      dcache_ = Cache.create dcache;
      timing;
      cycles_ = 0L;
      instret = 0L;
      status_ = Running;
      last_load_dest = None;
      trace = None;
      on_store = None;
      on_ifetch_miss = None;
      predictor = (if branch_predictor then Some (Array.make 512 1) else None);
      out = Buffer.create 256;
      decode_cache = Hashtbl.create 1024;
    }
  in
  t.regs.(Reg.to_int Reg.sp) <- Int64.of_int sp;
  t

let reg t r = t.regs.(Reg.to_int r)

let set_reg t r v = if Reg.to_int r <> 0 then t.regs.(Reg.to_int r) <- v

let pc t = t.pc_
let set_pc t pc = t.pc_ <- pc
let cycles t = t.cycles_
let instructions t = t.instret
let icache t = t.icache_
let dcache t = t.dcache_
let output t = Buffer.contents t.out
let status t = t.status_

let set_trace t hook = t.trace <- hook
let set_store_hook t hook = t.on_store <- hook
let set_ifetch_miss_hook t hook = t.on_ifetch_miss <- hook

let add_cycles t n = t.cycles_ <- Int64.add t.cycles_ (Int64.of_int n)
let charge = add_cycles

let fault_integrity t msg = t.status_ <- Integrity_fault msg

let charge_cache t cache ~addr ~write =
  match Cache.access cache ~addr ~write with
  | Cache.Hit -> ()
  | Cache.Miss { writeback } ->
    let penalty =
      (if cache == t.icache_ then t.timing.icache_miss_penalty else t.timing.dcache_miss_penalty)
      + if writeback then t.timing.writeback_penalty else 0
    in
    add_cycles t penalty

(* I-side fetch charge: on a miss the line is filled from memory, which
   is where a fetch-checking integrity guard re-hashes the granule being
   filled (and may raise {!Integrity_violation}). *)
let charge_ifetch t ~addr =
  match Cache.access t.icache_ ~addr ~write:false with
  | Cache.Hit -> ()
  | Cache.Miss { writeback } ->
    add_cycles t
      (t.timing.icache_miss_penalty + if writeback then t.timing.writeback_penalty else 0);
    (match t.on_ifetch_miss with
    | Some hook -> add_cycles t (hook ~addr)
    | None -> ())

(* ------------------------------------------------------------------ *)
(* 64-bit arithmetic helpers                                           *)
(* ------------------------------------------------------------------ *)

let sext32 v = Int64.of_int32 (Int64.to_int32 v)
let low32_mask = 0xFFFFFFFFL

let mulhu a b =
  let open Int64 in
  let al = logand a low32_mask and ah = shift_right_logical a 32 in
  let bl = logand b low32_mask and bh = shift_right_logical b 32 in
  let ll = mul al bl in
  let lh = mul al bh in
  let hl = mul ah bl in
  let hh = mul ah bh in
  let mid = add (add lh (shift_right_logical ll 32)) (logand hl low32_mask) in
  add (add hh (shift_right_logical hl 32)) (shift_right_logical mid 32)

let mulh a b =
  let open Int64 in
  let r = mulhu a b in
  let r = if compare a 0L < 0 then sub r b else r in
  if compare b 0L < 0 then sub r a else r

let mulhsu a b =
  let open Int64 in
  let r = mulhu a b in
  if compare a 0L < 0 then sub r b else r

let div_signed a b =
  if b = 0L then -1L
  else if a = Int64.min_int && b = -1L then Int64.min_int
  else Int64.div a b

let rem_signed a b =
  if b = 0L then a else if a = Int64.min_int && b = -1L then 0L else Int64.rem a b

let div_unsigned a b = if b = 0L then -1L else Int64.unsigned_div a b
let rem_unsigned a b = if b = 0L then a else Int64.unsigned_rem a b

let bool_to_i64 c = if c then 1L else 0L

let exec_r (op : Inst.r_op) a b =
  let open Int64 in
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Sll -> shift_left a (to_int (logand b 63L))
  | Slt -> bool_to_i64 (compare a b < 0)
  | Sltu -> bool_to_i64 (unsigned_compare a b < 0)
  | Xor -> logxor a b
  | Srl -> shift_right_logical a (to_int (logand b 63L))
  | Sra -> shift_right a (to_int (logand b 63L))
  | Or -> logor a b
  | And -> logand a b
  | Addw -> sext32 (add a b)
  | Subw -> sext32 (sub a b)
  | Sllw -> sext32 (shift_left a (to_int (logand b 31L)))
  | Srlw -> sext32 (shift_right_logical (logand a low32_mask) (to_int (logand b 31L)))
  | Sraw -> sext32 (shift_right (sext32 a) (to_int (logand b 31L)))
  | Mul -> mul a b
  | Mulh -> mulh a b
  | Mulhsu -> mulhsu a b
  | Mulhu -> mulhu a b
  | Div -> div_signed a b
  | Divu -> div_unsigned a b
  | Rem -> rem_signed a b
  | Remu -> rem_unsigned a b
  | Mulw -> sext32 (mul a b)
  | Divw ->
    let a32 = sext32 a and b32 = sext32 b in
    if b32 = 0L then -1L
    else if a32 = Int64.of_int32 Int32.min_int && b32 = -1L then sext32 a32
    else sext32 (div a32 b32)
  | Divuw ->
    let a32 = logand a low32_mask and b32 = logand b low32_mask in
    if b32 = 0L then -1L else sext32 (Int64.unsigned_div a32 b32)
  | Remw ->
    let a32 = sext32 a and b32 = sext32 b in
    if b32 = 0L then a32
    else if a32 = Int64.of_int32 Int32.min_int && b32 = -1L then 0L
    else sext32 (rem a32 b32)
  | Remuw ->
    let a32 = logand a low32_mask and b32 = logand b low32_mask in
    if b32 = 0L then sext32 a32 else sext32 (Int64.unsigned_rem a32 b32)

let exec_i (op : Inst.i_op) a imm =
  let open Int64 in
  let b = of_int imm in
  match op with
  | Addi -> add a b
  | Slti -> bool_to_i64 (compare a b < 0)
  | Sltiu -> bool_to_i64 (unsigned_compare a b < 0)
  | Xori -> logxor a b
  | Ori -> logor a b
  | Andi -> logand a b
  | Addiw -> sext32 (add a b)

let exec_shift (op : Inst.shift_op) a sh =
  let open Int64 in
  match op with
  | Slli -> shift_left a sh
  | Srli -> shift_right_logical a sh
  | Srai -> shift_right a sh
  | Slliw -> sext32 (shift_left a sh)
  | Srliw -> sext32 (shift_right_logical (logand a low32_mask) sh)
  | Sraiw -> sext32 (shift_right (sext32 a) sh)

let branch_taken (op : Inst.branch_op) a b =
  match op with
  | Beq -> Int64.equal a b
  | Bne -> not (Int64.equal a b)
  | Blt -> Int64.compare a b < 0
  | Bge -> Int64.compare a b >= 0
  | Bltu -> Int64.unsigned_compare a b < 0
  | Bgeu -> Int64.unsigned_compare a b >= 0

(* ------------------------------------------------------------------ *)
(* Fetch / decode                                                      *)
(* ------------------------------------------------------------------ *)

exception Fault of string

let fetch_decode t =
  match Hashtbl.find_opt t.decode_cache t.pc_ with
  | Some entry -> entry
  | None ->
    let half = Memory.read_u16 t.memory t.pc_ in
    let entry =
      if half land 0b11 = 0b11 then begin
        let word = Memory.read_u32 t.memory t.pc_ in
        match Decode.decode word with
        | Some inst -> (inst, 4)
        | None -> raise (Fault (Printf.sprintf "invalid instruction 0x%08lx at pc 0x%x" word t.pc_))
      end
      else
        match Rvc.expand half with
        | Some inst -> (inst, 2)
        | None -> raise (Fault (Printf.sprintf "invalid compressed parcel 0x%04x at pc 0x%x" half t.pc_))
    in
    Hashtbl.add t.decode_cache t.pc_ entry;
    entry

let load_value t (op : Inst.load_op) addr =
  let open Int64 in
  match op with
  | Lb ->
    let v = Memory.read_u8 t.memory addr in
    of_int (if v land 0x80 <> 0 then v - 0x100 else v)
  | Lbu -> of_int (Memory.read_u8 t.memory addr)
  | Lh ->
    let v = Memory.read_u16 t.memory addr in
    of_int (if v land 0x8000 <> 0 then v - 0x10000 else v)
  | Lhu -> of_int (Memory.read_u16 t.memory addr)
  | Lw -> of_int32 (Memory.read_u32 t.memory addr)
  | Lwu -> logand (of_int32 (Memory.read_u32 t.memory addr)) low32_mask
  | Ld -> Memory.read_u64 t.memory addr

let store_value t (op : Inst.store_op) addr v =
  match op with
  | Sb -> Memory.write_u8 t.memory addr (Int64.to_int (Int64.logand v 0xFFL))
  | Sh -> Memory.write_u16 t.memory addr (Int64.to_int (Int64.logand v 0xFFFFL))
  | Sw -> Memory.write_u32 t.memory addr (Int64.to_int32 v)
  | Sd -> Memory.write_u64 t.memory addr v

let alignment (op : Inst.load_op) =
  match op with Lb | Lbu -> 1 | Lh | Lhu -> 2 | Lw | Lwu -> 4 | Ld -> 8

let store_alignment (op : Inst.store_op) = match op with Sb -> 1 | Sh -> 2 | Sw -> 4 | Sd -> 8

let is_mul (op : Inst.r_op) = match op with Mul | Mulh | Mulhsu | Mulhu | Mulw -> true | _ -> false

let is_div (op : Inst.r_op) =
  match op with Div | Divu | Rem | Remu | Divw | Divuw | Remw | Remuw -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Syscalls                                                            *)
(* ------------------------------------------------------------------ *)

let syscall t =
  let a n = t.regs.(Reg.to_int (Reg.a n)) in
  match Int64.to_int (a 7) with
  | 64 ->
    let addr = Int64.to_int (a 1) and len = Int64.to_int (a 2) in
    Buffer.add_bytes t.out (Memory.read_bytes t.memory ~addr ~len);
    set_reg t (Reg.a 0) (Int64.of_int len);
    Sys_continue
  | 93 -> Sys_exit (Int64.to_int (a 0))
  | n -> raise (Fault (Printf.sprintf "unsupported syscall %d at pc 0x%x" n t.pc_))

(* ------------------------------------------------------------------ *)
(* Step                                                                *)
(* ------------------------------------------------------------------ *)

let step t =
  match t.status_ with
  | Exited _ | Faulted _ | Integrity_fault _ -> ()
  | Running -> (
    try
      (* The line fill precedes decode, as in silicon: a fetch-checking
         integrity guard must get to refuse the granule before a
         corrupted encoding can raise its own (less diagnosable) decode
         fault. *)
      charge_ifetch t ~addr:t.pc_;
      let inst, size = fetch_decode t in
      (match t.trace with Some hook -> hook ~pc:t.pc_ inst | None -> ());
      add_cycles t 1;
      (* Load-use hazard: stalls when an instruction consumes the result of
         the immediately preceding load. *)
      (match t.last_load_dest with
      | Some dest when List.exists (Reg.equal dest) (Inst.uses inst) ->
        add_cycles t t.timing.load_use_stall
      | Some _ | None -> ());
      t.last_load_dest <- None;
      let next_pc = ref (t.pc_ + size) in
      (match inst with
      | Inst.R (op, rd, rs1, rs2) ->
        if is_mul op then add_cycles t t.timing.mul_extra;
        if is_div op then add_cycles t t.timing.div_extra;
        set_reg t rd (exec_r op (reg t rs1) (reg t rs2))
      | Inst.I (op, rd, rs1, imm) -> set_reg t rd (exec_i op (reg t rs1) imm)
      | Inst.Shift (op, rd, rs1, sh) -> set_reg t rd (exec_shift op (reg t rs1) sh)
      | Inst.U (Lui, rd, imm) -> set_reg t rd (Int64.of_int (imm lsl 12))
      | Inst.U (Auipc, rd, imm) -> set_reg t rd (Int64.of_int (t.pc_ + (imm lsl 12)))
      | Inst.Load (op, rd, base, off) ->
        let addr = Int64.to_int (reg t base) + off in
        if addr mod alignment op <> 0 then
          raise (Fault (Printf.sprintf "misaligned load at 0x%x (pc 0x%x)" addr t.pc_));
        charge_cache t t.dcache_ ~addr ~write:false;
        set_reg t rd (load_value t op addr);
        t.last_load_dest <- Some rd
      | Inst.Store (op, src, base, off) ->
        let addr = Int64.to_int (reg t base) + off in
        if addr mod store_alignment op <> 0 then
          raise (Fault (Printf.sprintf "misaligned store at 0x%x (pc 0x%x)" addr t.pc_));
        charge_cache t t.dcache_ ~addr ~write:true;
        store_value t op addr (reg t src);
        (match t.on_store with
        | Some hook -> hook ~addr ~len:(store_alignment op)
        | None -> ())
      | Inst.Branch (op, rs1, rs2, off) ->
        let taken = branch_taken op (reg t rs1) (reg t rs2) in
        if taken then next_pc := t.pc_ + off;
        (match t.predictor with
        | None -> if taken then add_cycles t t.timing.taken_branch_penalty
        | Some counters ->
          (* Bimodal 2-bit saturating counters: penalty on mispredict only. *)
          let slot = (t.pc_ lsr 1) land (Array.length counters - 1) in
          let predicted_taken = counters.(slot) >= 2 in
          if predicted_taken <> taken then add_cycles t t.timing.taken_branch_penalty;
          counters.(slot) <-
            (if taken then min 3 (counters.(slot) + 1) else max 0 (counters.(slot) - 1)))
      | Inst.Jal (rd, off) ->
        set_reg t rd (Int64.of_int (t.pc_ + size));
        next_pc := t.pc_ + off;
        add_cycles t t.timing.jump_penalty
      | Inst.Jalr (rd, rs1, imm) ->
        let target = (Int64.to_int (reg t rs1) + imm) land lnot 1 in
        set_reg t rd (Int64.of_int (t.pc_ + size));
        next_pc := target;
        add_cycles t t.timing.jalr_penalty
      | Inst.Ecall -> (
        match syscall t with
        | Sys_continue -> ()
        | Sys_exit code -> t.status_ <- Exited code)
      | Inst.Ebreak -> raise (Fault (Printf.sprintf "ebreak at pc 0x%x" t.pc_))
      | Inst.Fence -> ()
      | Inst.Csrr (rd, csr) ->
        let v =
          match csr with
          | 0xC00 -> t.cycles_
          | 0xC01 -> Int64.div t.cycles_ 25L (* microseconds at the 25 MHz clock *)
          | 0xC02 -> t.instret
          | _ -> raise (Fault (Printf.sprintf "unsupported CSR 0x%x at pc 0x%x" csr t.pc_))
        in
        set_reg t rd v);
      t.instret <- Int64.add t.instret 1L;
      if t.status_ = Running then t.pc_ <- !next_pc
    with
    | Fault msg -> t.status_ <- Faulted msg
    | Integrity_violation msg -> t.status_ <- Integrity_fault msg
    | Memory.Trap msg -> t.status_ <- Faulted (msg ^ Printf.sprintf " (pc 0x%x)" t.pc_))

let run ?(fuel = 50_000_000) t =
  let remaining = ref fuel in
  while t.status_ = Running && !remaining > 0 do
    step t;
    decr remaining
  done;
  if t.status_ = Running then t.status_ <- Faulted "out of fuel";
  t.status_
