module Guard = Eric_hw.Guard

type stats = {
  mutable scrub_passes : int;
  mutable granules_checked : int;
  mutable granules_reenrolled : int;
  mutable fetch_checks : int;
  mutable guard_cycles : int64;
}

type t = {
  cfg : Guard.config;
  memory : Memory.t;
  base : int;  (** text_base *)
  limit : int;  (** end of the guarded span, granule-aligned *)
  writable_from : int;  (** data_base: granules below are immutable *)
  refs : int64 array;
  dirty : bool array;
  pass_cycles : int;
  fetch_cycles : int;
  mutable next_scrub : int64;
  stats : stats;
}

(* FNV-1a 64: cheap, deterministic, and a single flipped bit always
   changes the digest (the model's stand-in for truncated SHA-256). *)
let fnv_init = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L
let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int b)) fnv_prime

let digest memory ~addr ~len =
  let h = ref fnv_init in
  for i = addr to addr + len - 1 do
    h := fnv_byte !h (Memory.read_u8 memory i)
  done;
  !h

let digest_sub buf ~off ~len =
  let h = ref fnv_init in
  for i = off to off + len - 1 do
    h := fnv_byte !h (Char.code (Bytes.get buf i))
  done;
  !h

let granule_index t addr = (addr - t.base) / t.cfg.Guard.granule_bytes

let granule_digest t g =
  digest t.memory ~addr:(t.base + (g * t.cfg.Guard.granule_bytes)) ~len:t.cfg.Guard.granule_bytes

let create ~config ~image memory =
  (match Guard.validate config with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Integrity.create: " ^ e));
  let open Eric_rv.Program in
  let base = Layout.text_base in
  let resident = Layout.bss_base image + image.bss_size - base in
  let n = Guard.granules config ~bytes:resident in
  let limit = base + (n * config.Guard.granule_bytes) in
  let t =
    {
      cfg = config;
      memory;
      base;
      limit;
      writable_from = Layout.data_base image;
      refs = Array.make n 0L;
      dirty = Array.make n false;
      pass_cycles = Guard.scrub_pass_cycles config ~resident_bytes:resident;
      fetch_cycles = Guard.fetch_check_cycles config;
      next_scrub =
        (match Guard.scrub_interval config with
        | Some i -> Int64.of_int i
        | None -> Int64.max_int);
      stats =
        {
          scrub_passes = 0;
          granules_checked = 0;
          granules_reenrolled = 0;
          fetch_checks = 0;
          guard_cycles = 0L;
        };
    }
  in
  (* Enroll from the *image*, not from memory: the silicon computes the
     reference digests while the validated load streams through the HDE,
     i.e. before any later upset — a flip injected between load and run
     must diverge from these, not become them. *)
  let pristine = Bytes.make (n * config.Guard.granule_bytes) '\000' in
  let text = text_bytes image in
  Bytes.blit text 0 pristine 0 (Bytes.length text);
  Bytes.blit image.data 0 pristine (Layout.data_base image - base) (Bytes.length image.data);
  for g = 0 to n - 1 do
    t.refs.(g) <-
      digest_sub pristine ~off:(g * config.Guard.granule_bytes) ~len:config.Guard.granule_bytes
  done;
  t

let stats t = t.stats

let mismatch_msg t g =
  Printf.sprintf "integrity guard: granule at 0x%x (%d bytes) diverges from its load-time digest"
    (t.base + (g * t.cfg.Guard.granule_bytes))
    t.cfg.Guard.granule_bytes

let mark_dirty t ~addr ~len =
  (* Only the data/bss span is legitimately writable; stores below
     [writable_from] (self-modifying text) stay un-enrolled so the next
     check faults them. *)
  if addr + len > t.writable_from && addr < t.limit then begin
    let lo = max addr t.writable_from and hi = min (addr + len) t.limit in
    for g = granule_index t lo to granule_index t (hi - 1) do
      t.dirty.(g) <- true
    done
  end

let fetch_check t ~addr =
  if addr >= t.base && addr < t.limit then begin
    let g = granule_index t addr in
    t.stats.fetch_checks <- t.stats.fetch_checks + 1;
    t.stats.guard_cycles <- Int64.add t.stats.guard_cycles (Int64.of_int t.fetch_cycles);
    if (not t.dirty.(g)) && granule_digest t g <> t.refs.(g) then
      raise (Cpu.Integrity_violation (mismatch_msg t g));
    t.fetch_cycles
  end
  else 0

let attach t cpu =
  Cpu.set_store_hook cpu (Some (fun ~addr ~len -> mark_dirty t ~addr ~len));
  if Guard.fetch_checked t.cfg then
    Cpu.set_ifetch_miss_hook cpu (Some (fun ~addr -> fetch_check t ~addr))

let scrub_due t ~now = Int64.compare now t.next_scrub >= 0

let scan t ~on_mismatch =
  let n = Array.length t.refs in
  for g = 0 to n - 1 do
    if t.dirty.(g) then begin
      t.refs.(g) <- granule_digest t g;
      t.dirty.(g) <- false;
      t.stats.granules_reenrolled <- t.stats.granules_reenrolled + 1
    end
    else begin
      t.stats.granules_checked <- t.stats.granules_checked + 1;
      if granule_digest t g <> t.refs.(g) then on_mismatch g
    end
  done

let scrub t cpu =
  t.stats.scrub_passes <- t.stats.scrub_passes + 1;
  t.stats.guard_cycles <- Int64.add t.stats.guard_cycles (Int64.of_int t.pass_cycles);
  Cpu.charge cpu t.pass_cycles;
  let fault = ref None in
  scan t ~on_mismatch:(fun g -> if !fault = None then fault := Some g);
  (match !fault with
  | Some g -> Cpu.fault_integrity cpu (mismatch_msg t g)
  | None -> ());
  (match Guard.scrub_interval t.cfg with
  | Some i -> t.next_scrub <- Int64.add (Cpu.cycles cpu) (Int64.of_int i)
  | None -> t.next_scrub <- Int64.max_int)

let verify_all t =
  let fault = ref None in
  (* A pure audit: peek without touching stats or dirty state. *)
  let n = Array.length t.refs in
  (try
     for g = 0 to n - 1 do
       if (not t.dirty.(g)) && granule_digest t g <> t.refs.(g) then begin
         fault := Some g;
         raise Exit
       end
     done
   with Exit -> ());
  match !fault with Some g -> Error (mismatch_msg t g) | None -> Ok ()
