open Eric_rv

type result = {
  status : Cpu.status;
  output : string;
  exec_cycles : int64;
  load_cycles : int64;
  guard_cycles : int64;
  instructions : int64;
  icache_hit_rate : float;
  dcache_hit_rate : float;
}

let total_cycles r = Int64.add r.exec_cycles r.load_cycles

let dma_bytes_per_cycle = 8

let plain_load_cycles image =
  let bytes = Bytes.length (Program.to_binary image) in
  Int64.of_int ((bytes + dma_bytes_per_cycle - 1) / dma_bytes_per_cycle)

let load image =
  let memory = Memory.create ~size:Program.Layout.memory_size in
  Memory.blit_bytes memory ~addr:Program.Layout.text_base (Program.text_bytes image);
  Memory.blit_bytes memory ~addr:(Program.Layout.data_base image) image.Program.data;
  if image.Program.bss_size > 0 then
    Memory.fill memory ~addr:(Program.Layout.bss_base image) ~len:image.Program.bss_size '\000';
  memory

let boot ?timing ?branch_predictor image memory =
  Cpu.create ?timing ?branch_predictor ~memory ~pc:(Program.Layout.entry_address image)
    ~sp:Program.Layout.stack_top ()

(* Export the per-run hardware counters as gauges: the figures that the
   bench harness reads from [result] become queryable through one metric
   pipeline (latest run wins, as for any gauge). *)
let record_result r =
  if Eric_telemetry.Control.is_enabled () then begin
    let set = Eric_telemetry.Registry.set in
    set "sim.exec_cycles" (Int64.to_float r.exec_cycles);
    set "sim.load_cycles" (Int64.to_float r.load_cycles);
    set "sim.instructions" (Int64.to_float r.instructions);
    set "sim.cpi"
      (if r.instructions = 0L then 0.0
       else Int64.to_float r.exec_cycles /. Int64.to_float r.instructions);
    set "sim.icache_hit_rate" r.icache_hit_rate;
    set "sim.dcache_hit_rate" r.dcache_hit_rate
  end

let finish ?(guard_cycles = 0L) ~load_cycles cpu status =
  let r =
    {
      status;
      output = Cpu.output cpu;
      exec_cycles = Cpu.cycles cpu;
      load_cycles;
      guard_cycles;
      instructions = Cpu.instructions cpu;
      icache_hit_rate = Cache.hit_rate (Cpu.icache cpu);
      dcache_hit_rate = Cache.hit_rate (Cpu.dcache cpu);
    }
  in
  record_result r;
  r

(* Same stepping contract as [Cpu.run], with the scrub engine interleaved
   between instructions whenever its interval elapses. *)
let run_guarded ?(fuel = 50_000_000) guard image cpu memory =
  let integ = Integrity.create ~config:guard ~image memory in
  Integrity.attach integ cpu;
  let remaining = ref fuel in
  while Cpu.status cpu = Running && !remaining > 0 do
    if Integrity.scrub_due integ ~now:(Cpu.cycles cpu) then Integrity.scrub integ cpu;
    if Cpu.status cpu = Running then begin
      Cpu.step cpu;
      decr remaining
    end
  done;
  (* [Cpu.run ~fuel:0] applies the same out-of-fuel faulting as the
     unguarded path without stepping. *)
  let status = if Cpu.status cpu = Running then Cpu.run ~fuel:0 cpu else Cpu.status cpu in
  ((Integrity.stats integ).Integrity.guard_cycles, status)

let run_loaded ?timing ?fuel ?(guard = Eric_hw.Guard.disabled) ~load_cycles image memory =
  let cpu = boot ?timing image memory in
  let guard_cycles, status =
    Eric_telemetry.Span.with_ ~cat:"sim" ~name:"sim.execute" (fun () ->
        if Eric_hw.Guard.enabled guard then run_guarded ?fuel guard image cpu memory
        else (0L, Cpu.run ?fuel cpu))
  in
  finish ~guard_cycles ~load_cycles cpu status

let run_program ?timing ?branch_predictor ?fuel image =
  let cpu = boot ?timing ?branch_predictor image (load image) in
  let status = Eric_telemetry.Span.with_ ~cat:"sim" ~name:"sim.execute" (fun () -> Cpu.run ?fuel cpu) in
  finish ~load_cycles:(plain_load_cycles image) cpu status
