(* Reliability-aware enrollment: oversample a wide challenge pool at a
   stress corner, keep only comfortably-margined challenges, mask chains
   that cannot field a full repetition group, and publish the result as a
   versioned helper-data blob (secure sketch + integrity tag).

   The sketch is a repetition code: each kept chain contributes [rep]
   challenges whose ideal bits are XOR-masked with the chain's key bit.
   Helper data is public by construction — each helper bit leaks only the
   XOR of two response bits, never a response bit itself — so the blob can
   live in the fleet registry next to the device id. *)

type config = {
  rep : int;
  screen_votes : int;
  screen_env : Env.t;
  margin_sigmas : float;
  drift_allowance_ps : float;
  max_instability : float;
  min_chains : int;
}

let default_config =
  {
    rep = 7;
    screen_votes = 9;
    screen_env = Env.stress;
    margin_sigmas = 2.5;
    drift_allowance_ps = 4.0;
    max_instability = 0.2;
    min_chains = 16;
  }

type helper = {
  version : int;
  device_id : Device.id;
  chains : int;
  rep : int;
  mask : Eric_util.Bitvec.t;  (* length [chains]; set = chain kept *)
  challenges : int array;  (* kept * rep, chain-major over kept chains *)
  sketch : Eric_util.Bitvec.t;  (* kept * rep helper bits *)
  tag : bytes;  (* 32-byte keyed integrity/correctness tag *)
}

type enrollment = {
  helper : helper;
  key : bytes;
  instability : float array;  (* per kept chain, worst over its group *)
  worst_instability : float;
}

let helper_version = 1
let magic = "EHLP"
let tag_len = 32
let tag_domain = "ERIC-HELPER-TAG|v1"

let kept_chains h = Eric_util.Bitvec.popcount h.mask

(* -- wire format ---------------------------------------------------------

   magic(4) "EHLP" | u16 version | u16 rep | u64 device_id | u16 chains
   | u16 kept | mask bytes (ceil(chains/8)) | kept*rep u16 challenges
   | sketch bytes (ceil(kept*rep/8)) | tag (32).  All little-endian. *)

let serialize_prefix h =
  let kept = kept_chains h in
  let mask_bytes = Eric_util.Bitvec.to_bytes h.mask in
  let sketch_bytes = Eric_util.Bitvec.to_bytes h.sketch in
  let len =
    4 + 2 + 2 + 8 + 2 + 2 + Bytes.length mask_bytes
    + (2 * Array.length h.challenges)
    + Bytes.length sketch_bytes
  in
  let b = Bytes.create len in
  Bytes.blit_string magic 0 b 0 4;
  Eric_util.Bytesx.set_u16 b 4 h.version;
  Eric_util.Bytesx.set_u16 b 6 h.rep;
  Eric_util.Bytesx.set_u64 b 8 h.device_id;
  Eric_util.Bytesx.set_u16 b 16 h.chains;
  Eric_util.Bytesx.set_u16 b 18 kept;
  Bytes.blit mask_bytes 0 b 20 (Bytes.length mask_bytes);
  let off = ref (20 + Bytes.length mask_bytes) in
  Array.iter
    (fun c ->
      Eric_util.Bytesx.set_u16 b !off c;
      off := !off + 2)
    h.challenges;
  Bytes.blit sketch_bytes 0 b !off (Bytes.length sketch_bytes);
  b

let serialize h = Eric_util.Bytesx.append (serialize_prefix h) h.tag

let compute_tag ~key prefix =
  let auth_key = Eric_crypto.Hmac_sha256.mac_string ~key tag_domain in
  Eric_crypto.Hmac_sha256.mac ~key:auth_key prefix

let tag_matches ~key h =
  Eric_crypto.Ct.equal (compute_tag ~key (serialize_prefix h)) h.tag

let parse blob =
  let err msg = Error (Printf.sprintf "helper data: %s" msg) in
  let len = Bytes.length blob in
  if len < 20 then err "truncated header"
  else if Bytes.sub_string blob 0 4 <> magic then err "bad magic"
  else begin
    let version = Eric_util.Bytesx.get_u16 blob 4 in
    let rep = Eric_util.Bytesx.get_u16 blob 6 in
    let device_id = Eric_util.Bytesx.get_u64 blob 8 in
    let chains = Eric_util.Bytesx.get_u16 blob 16 in
    let kept = Eric_util.Bytesx.get_u16 blob 18 in
    if version <> helper_version then
      err (Printf.sprintf "unsupported version %d" version)
    else if rep < 1 || rep mod 2 = 0 then err "repetition count must be odd"
    else if chains < 1 then err "no chains"
    else if kept > chains then err "kept exceeds chains"
    else begin
      let mask_len = (chains + 7) / 8 in
      let group = kept * rep in
      let sketch_len = (group + 7) / 8 in
      let expect = 20 + mask_len + (2 * group) + sketch_len + tag_len in
      if len <> expect then
        err (Printf.sprintf "length %d, expected %d" len expect)
      else begin
        let mask =
          Eric_util.Bitvec.of_bytes ~len:chains (Bytes.sub blob 20 mask_len)
        in
        if Eric_util.Bitvec.popcount mask <> kept then
          err "mask popcount disagrees with kept count"
        else begin
          let off = 20 + mask_len in
          let challenges =
            Array.init group (fun i -> Eric_util.Bytesx.get_u16 blob (off + (2 * i)))
          in
          let off = off + (2 * group) in
          let sketch =
            Eric_util.Bitvec.of_bytes ~len:group (Bytes.sub blob off sketch_len)
          in
          let tag = Bytes.sub blob (off + sketch_len) tag_len in
          Ok { version; device_id; chains; rep; mask; challenges; sketch; tag }
        end
      end
    end
  end

(* -- enrollment ---------------------------------------------------------- *)

let measure_instability ~votes ~env device ~chain ~challenge =
  let ideal = Device.eval_chain ~noisy:false device ~chain ~challenge in
  let flips = ref 0 in
  for _ = 1 to votes do
    if Device.eval_chain ~env device ~chain ~challenge <> ideal then incr flips
  done;
  float_of_int !flips /. float_of_int votes

let enroll ?(config = default_config) device =
  if config.rep < 1 || config.rep mod 2 = 0 then
    invalid_arg "Enroll.enroll: rep must be odd and positive";
  let chains = Device.chains device in
  let bound = 1 lsl Device.challenge_width device in
  let floor_ps =
    (config.margin_sigmas
    *. Device.accumulated_noise_sigma ~env:config.screen_env device)
    +. config.drift_allowance_ps
  in
  let kept_idx = ref [] and groups = ref [] in
  let key_bits = ref [] and instab = ref [] in
  for chain = chains - 1 downto 0 do
    (* Rank every challenge by stress-corner margin; wide margins first. *)
    let ranked =
      List.init bound (fun challenge ->
          (challenge, Float.abs (Device.chain_margin ~env:config.screen_env device ~chain ~challenge)))
      |> List.filter (fun (_, m) -> m >= floor_ps)
      |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
    in
    if List.length ranked >= config.rep then begin
      let group =
        List.filteri (fun i _ -> i < config.rep) ranked |> List.map fst
      in
      let worst =
        List.fold_left
          (fun acc challenge ->
            Float.max acc
              (measure_instability ~votes:config.screen_votes
                 ~env:config.screen_env device ~chain ~challenge))
          0.0 group
      in
      if worst <= config.max_instability then begin
        kept_idx := chain :: !kept_idx;
        groups := group :: !groups;
        instab := worst :: !instab;
        (* The chain's key bit is the ideal response of its widest-margin
           challenge; the sketch re-expresses the rest relative to it. *)
        key_bits :=
          Device.eval_chain ~noisy:false device ~chain ~challenge:(List.hd group)
          :: !key_bits
      end
    end
  done;
  let kept_idx = !kept_idx and groups = !groups in
  let key_bits = Array.of_list !key_bits in
  let kept = List.length kept_idx in
  if kept < config.min_chains then
    Error
      (Printf.sprintf
         "enrollment yielded %d stable chains, below the %d-chain floor (dark-bit mask too aggressive for this die)"
         kept config.min_chains)
  else begin
    let mask = Eric_util.Bitvec.create chains in
    List.iter (fun chain -> Eric_util.Bitvec.set mask chain true) kept_idx;
    let challenges = Array.of_list (List.concat groups) in
    let sketch = Eric_util.Bitvec.create (kept * config.rep) in
    List.iteri
      (fun j group ->
        List.iteri
          (fun i challenge ->
            let chain = List.nth kept_idx j in
            let w = Device.eval_chain ~noisy:false device ~chain ~challenge in
            Eric_util.Bitvec.set sketch ((j * config.rep) + i)
              (w <> key_bits.(j)))
          group)
      groups;
    let key =
      Eric_util.Bitvec.to_bytes (Eric_util.Bitvec.of_bool_array key_bits)
    in
    let h =
      {
        version = helper_version;
        device_id = Device.id device;
        chains;
        rep = config.rep;
        mask;
        challenges;
        sketch;
        tag = Bytes.create tag_len;
      }
    in
    let h = { h with tag = compute_tag ~key (serialize_prefix h) } in
    let instability = Array.of_list !instab in
    let worst_instability = Array.fold_left Float.max 0.0 instability in
    if Eric_telemetry.Control.is_enabled () then begin
      Eric_telemetry.Registry.inc "puf.enroll.total";
      Eric_telemetry.Registry.observe "puf.enroll.masked_chains"
        (float_of_int (chains - kept));
      Eric_telemetry.Registry.observe "puf.enroll.worst_instability"
        worst_instability
    end;
    Ok { helper = h; key; instability; worst_instability }
  end

let survey ?(votes = 15) ?env device h =
  if Device.id device <> h.device_id then
    invalid_arg "Enroll.survey: helper belongs to another device";
  let votes = if votes mod 2 = 0 then votes + 1 else votes in
  let worst = ref 0.0 in
  let group = ref 0 in
  for chain = 0 to h.chains - 1 do
    if Eric_util.Bitvec.get h.mask chain then begin
      for i = 0 to h.rep - 1 do
        let challenge = h.challenges.((!group * h.rep) + i) in
        let ones = ref 0 in
        for _ = 1 to votes do
          if Device.eval_chain ?env device ~chain ~challenge then incr ones
        done;
        (* Instability relative to this read burst's own majority: key-free,
           so the field can survey a device without reconstructing. *)
        let minority = min !ones (votes - !ones) in
        worst := Float.max !worst (float_of_int minority /. float_of_int votes)
      done;
      incr group
    end
  done;
  !worst

let pp_helper fmt h =
  Format.fprintf fmt "helper v%d dev=0x%Lx chains=%d kept=%d rep=%d tag=%s…"
    h.version h.device_id h.chains (kept_chains h) h.rep
    (String.sub (Eric_util.Bytesx.to_hex h.tag) 0 8)
