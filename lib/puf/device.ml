type id = int64

type t = {
  id : id;
  chains_ : Arbiter.t array;
  challenge_width : int;
  noise_rng : Eric_util.Prng.t;
}

let manufacture ?(params = Arbiter.default_params) ?(chains = 32) id =
  if chains <= 0 then invalid_arg "Device.manufacture: chains must be positive";
  (* Distinct derivation domains: silicon draw vs runtime noise vs aging
     drift.  Drift uses its own stream so the silicon draws — and hence
     every key enrolled before the aging model existed — are unchanged. *)
  let silicon = Eric_util.Prng.create ~seed:(Int64.add 0x5111C0DEL id) in
  let noise = Eric_util.Prng.create ~seed:(Int64.add 0x4015EL id) in
  let drift = Eric_util.Prng.create ~seed:(Int64.add 0xD21F7L id) in
  {
    id;
    chains_ = Array.init chains (fun _ -> Arbiter.manufacture ~drift_rng:drift params silicon);
    challenge_width = params.Arbiter.stages;
    noise_rng = noise;
  }

let id t = t.id
let chains t = Array.length t.chains_
let key_bits = chains
let challenge_width t = t.challenge_width

let challenge_set t =
  (* Enrolment challenges are public; derive them from the device id so the
     software source can reconstruct them without a database.  Candidates
     whose race margin is within reach of evaluation noise are skipped
     (dark-bit masking): an unstable bit would survive majority voting with
     non-negligible probability and brick the device's own key. *)
  let rng = Eric_util.Prng.create ~seed:(Int64.add 0xCA11E64EL t.id) in
  let bound = 1 lsl t.challenge_width in
  let margin_floor chain =
    (* Noise on each of ~2*stages delays accumulates as sqrt; 8 sigma of the
       accumulated noise keeps single-shot flip probability ~1e-15. *)
    let accumulated = sqrt (float_of_int (2 * Arbiter.stages chain)) in
    8.0 *. accumulated
  in
  Array.map
    (fun chain ->
      let floor_ps = margin_floor chain *. Arbiter.noise_sigma chain in
      let rec pick attempts =
        let candidate = Eric_util.Prng.int rng ~bound in
        if attempts > 64 then candidate
        else if Float.abs (Arbiter.delay_difference chain ~challenge:candidate) >= floor_ps then
          candidate
        else pick (attempts + 1)
      in
      pick 0)
    t.chains_

let respond ?(noisy = true) ?env t challenges =
  if Array.length challenges <> chains t then
    invalid_arg "Device.respond: one challenge per chain expected";
  let bits =
    Array.mapi
      (fun i challenge ->
        if noisy then Arbiter.eval ~noise:t.noise_rng ?env t.chains_.(i) ~challenge
        else Arbiter.eval ?env t.chains_.(i) ~challenge)
      challenges
  in
  Eric_util.Bitvec.of_bool_array bits

let eval_chain ?(noisy = true) ?env t ~chain ~challenge =
  if chain < 0 || chain >= chains t then invalid_arg "Device.eval_chain: chain out of range";
  if noisy then Arbiter.eval ~noise:t.noise_rng ?env t.chains_.(chain) ~challenge
  else Arbiter.eval ?env t.chains_.(chain) ~challenge

let accumulated_noise_sigma ?(env = Env.nominal) t =
  (* Noise on each of ~2*stages delays accumulates as sqrt; all chains share
     the manufacture params, so chain 0 is representative. *)
  let chain = t.chains_.(0) in
  sqrt (float_of_int (2 * Arbiter.stages chain))
  *. Arbiter.noise_sigma chain *. Env.noise_scale env

let chain_margin ?env t ~chain ~challenge =
  if chain < 0 || chain >= chains t then invalid_arg "Device.chain_margin: chain out of range";
  Arbiter.delay_difference ?env t.chains_.(chain) ~challenge

let puf_key ?(votes = 15) ?env t =
  let votes = if votes mod 2 = 0 then votes + 1 else votes in
  let challenges = challenge_set t in
  let counts = Array.make (chains t) 0 in
  for _ = 1 to votes do
    let r = respond ?env t challenges in
    for i = 0 to chains t - 1 do
      if Eric_util.Bitvec.get r i then counts.(i) <- counts.(i) + 1
    done
  done;
  let bits = Array.map (fun c -> c * 2 > votes) counts in
  Eric_util.Bitvec.to_bytes (Eric_util.Bitvec.of_bool_array bits)
