(** Reliability-aware PUF enrollment.

    One factory pass per device: oversample a wide challenge pool, screen
    every candidate at a stress corner ({!Env.stress}), keep only
    challenges whose noiseless race margin clears a noise + aging floor,
    and mask whole chains ("dark bits") that cannot field a full
    repetition group of stable challenges.  The output is a helper-data
    blob — a repetition-code secure sketch plus keyed integrity tag —
    that the {!Fuzzy} extractor consumes at every boot, and the enrolled
    key the sketch protects.

    Helper data is {e public by construction}: each sketch bit is the XOR
    of two response bits of the same chain, so it reveals response
    {e correlations} but never a response bit, and the tag is keyed by a
    key derived from the enrolled key itself (it authenticates, it does
    not hide). *)

type config = {
  rep : int;  (** challenges per kept chain; odd (default 7) *)
  screen_votes : int;  (** noisy reads per instability estimate *)
  screen_env : Env.t;  (** screening corner (default {!Env.stress}) *)
  margin_sigmas : float;  (** margin floor, in accumulated-noise sigmas *)
  drift_allowance_ps : float;  (** extra floor for lifetime aging drift *)
  max_instability : float;  (** mask chains flipping more often than this *)
  min_chains : int;  (** refuse enrollment below this many kept chains *)
}

val default_config : config
(** rep 7, 9 screen votes at {!Env.stress}, 2.5 sigma + 4 ps floor,
    0.2 max instability, 16-chain floor. *)

type helper = {
  version : int;
  device_id : Device.id;
  chains : int;  (** chains on the enrolled device *)
  rep : int;
  mask : Eric_util.Bitvec.t;  (** length [chains]; set = chain kept *)
  challenges : int array;  (** kept x rep, chain-major over kept chains *)
  sketch : Eric_util.Bitvec.t;  (** kept x rep repetition-code helper bits *)
  tag : bytes;  (** 32-byte HMAC over the serialized prefix, keyed by
                    HMAC(enrolled key, domain string) *)
}

type enrollment = {
  helper : helper;
  key : bytes;  (** the enrolled PUF key the sketch reconstructs *)
  instability : float array;  (** per kept chain, worst over its group *)
  worst_instability : float;
}

val helper_version : int

val enroll : ?config:config -> Device.t -> (enrollment, string) result
(** Enroll a device.  [Error] when fewer than [min_chains] chains survive
    dark-bit masking — a die that bad must be scrapped, not shipped. *)

val kept_chains : helper -> int

val serialize : helper -> bytes
(** Versioned wire blob ("EHLP" magic); see docs/puf-reliability.md. *)

val parse : bytes -> (helper, string) result
(** Strict inverse of {!serialize}: wrong magic, version, length, or an
    inconsistent mask/kept count all refuse.  The tag is {e not} checked
    here — only reconstruction can check it ({!Fuzzy.reconstruct}). *)

val compute_tag : key:bytes -> bytes -> bytes
(** [compute_tag ~key prefix] is the keyed tag over a serialized prefix;
    exposed for the extractor's post-reconstruction verification. *)

val tag_matches : key:bytes -> helper -> bool
(** Constant-time check that [key] reproduces [helper]'s tag. *)

val survey : ?votes:int -> ?env:Env.t -> Device.t -> helper -> float
(** Key-free field health check: re-read every enrolled challenge [votes]
    times at an operating point and return the worst observed minority
    fraction (0 = perfectly stable, 0.5 = coin flip).  Fleet re-enrollment
    campaigns compare this against their instability threshold.
    @raise Invalid_argument when the helper names another device. *)

val measure_instability :
  votes:int -> env:Env.t -> Device.t -> chain:int -> challenge:int -> float
(** Fraction of [votes] noisy reads disagreeing with the nominal ideal
    bit; the enrollment screen, exposed for campaigns and tests. *)

val pp_helper : Format.formatter -> helper -> unit
