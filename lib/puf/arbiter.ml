type stage = {
  straight_top : float;
  straight_bot : float;
  cross_top : float; (* bottom input -> top output *)
  cross_bot : float; (* top input -> bottom output *)
}

type t = {
  stages_ : stage array;
  drift_ : stage array;  (* unit aging-drift direction per delay element *)
  arbiter_skew : float;
  noise_sigma : float;
}

type params = {
  stages : int;
  nominal_delay_ps : float;
  variation_sigma_ps : float;
  noise_sigma_ps : float;
}

let default_params =
  { stages = 8; nominal_delay_ps = 100.0; variation_sigma_ps = 3.0; noise_sigma_ps = 0.12 }

let zero_stage = { straight_top = 0.0; straight_bot = 0.0; cross_top = 0.0; cross_bot = 0.0 }

let manufacture ?drift_rng p rng =
  if p.stages <= 0 then invalid_arg "Arbiter.manufacture: stages must be positive";
  let draw () = Eric_util.Prng.gaussian rng ~mu:p.nominal_delay_ps ~sigma:p.variation_sigma_ps in
  let make_stage _ =
    { straight_top = draw (); straight_bot = draw (); cross_top = draw (); cross_bot = draw () }
  in
  (* Aging drift directions come from their own stream so existing silicon
     draws (and therefore every enrolled key) are unchanged by the model. *)
  let drift_ =
    match drift_rng with
    | None -> Array.make p.stages zero_stage
    | Some rng ->
      let d () = Eric_util.Prng.gaussian rng ~mu:0.0 ~sigma:1.0 in
      Array.init p.stages (fun _ ->
          { straight_top = d (); straight_bot = d (); cross_top = d (); cross_bot = d () })
  in
  {
    stages_ = Array.init p.stages make_stage;
    drift_;
    arbiter_skew = Eric_util.Prng.gaussian rng ~mu:0.0 ~sigma:(p.variation_sigma_ps /. 4.0);
    noise_sigma = p.noise_sigma_ps;
  }

let stages t = Array.length t.stages_

let race ?noise ?(env = Env.nominal) t ~challenge =
  let age = Env.age_shift_ps env in
  let sigma = t.noise_sigma *. Env.noise_scale env in
  let perturb d drift =
    let d = d +. (age *. drift) in
    match noise with
    | None -> d
    | Some rng -> d +. Eric_util.Prng.gaussian rng ~mu:0.0 ~sigma
  in
  let top = ref 0.0 and bot = ref 0.0 in
  Array.iteri
    (fun i st ->
      let dr = t.drift_.(i) in
      if (challenge lsr i) land 1 = 0 then begin
        top := !top +. perturb st.straight_top dr.straight_top;
        bot := !bot +. perturb st.straight_bot dr.straight_bot
      end
      else begin
        let new_top = !bot +. perturb st.cross_top dr.cross_top in
        let new_bot = !top +. perturb st.cross_bot dr.cross_bot in
        top := new_top;
        bot := new_bot
      end)
    t.stages_;
  !top -. !bot +. t.arbiter_skew

let noise_sigma t = t.noise_sigma
let eval ?noise ?env t ~challenge = race ?noise ?env t ~challenge < 0.0
let delay_difference ?env t ~challenge = race ?env t ~challenge
