(* Fuzzy extractor: rebuild the enrolled key from noisy PUF reads plus
   public helper data.  Decode is repetition-code majority, attempts are
   bounded, and the candidate key is accepted only if it reproduces the
   helper blob's keyed tag — so a wrong key can never leave this module:
   every failure is a typed refusal. *)

type failure =
  | Helper_mismatch of string  (* helper structurally wrong for device *)
  | Exhausted of { attempts : int }  (* retries spent, tag never verified *)

type config = {
  attempts : int;  (* bounded re-read retries per boot *)
  votes : int;  (* noisy reads per challenge per attempt *)
}

let default_config = { attempts = 3; votes = 3 }

type reconstruction = { key : bytes; attempts_used : int }

let pp_failure fmt = function
  | Helper_mismatch msg -> Format.fprintf fmt "helper mismatch: %s" msg
  | Exhausted { attempts } ->
    Format.fprintf fmt
      "key reconstruction exhausted after %d attempt%s (tag never verified)"
      attempts
      (if attempts = 1 then "" else "s")

let failure_to_string f = Format.asprintf "%a" pp_failure f

let count_metric name =
  if Eric_telemetry.Control.is_enabled () then Eric_telemetry.Registry.inc name

let decode_once ~votes ?env device (h : Enroll.helper) =
  let votes = if votes mod 2 = 0 then votes + 1 else votes in
  let kept = Enroll.kept_chains h in
  let bits = Array.make kept false in
  let group = ref 0 in
  for chain = 0 to h.chains - 1 do
    if Eric_util.Bitvec.get h.mask chain then begin
      let ones = ref 0 in
      for i = 0 to h.rep - 1 do
        let idx = (!group * h.rep) + i in
        let challenge = h.challenges.(idx) in
        (* Majority over [votes] reads of one challenge, then unmask with
           the sketch bit: each group member votes for the chain's key bit. *)
        let hi = ref 0 in
        for _ = 1 to votes do
          if Device.eval_chain ?env device ~chain ~challenge then incr hi
        done;
        let read = 2 * !hi > votes in
        let k_hat = read <> Eric_util.Bitvec.get h.sketch idx in
        if k_hat then incr ones
      done;
      bits.(!group) <- 2 * !ones > h.rep;
      incr group
    end
  done;
  Eric_util.Bitvec.to_bytes (Eric_util.Bitvec.of_bool_array bits)

let reconstruct ?(config = default_config) ?env device (h : Enroll.helper) =
  if config.attempts < 1 then invalid_arg "Fuzzy.reconstruct: attempts must be positive";
  if Device.id device <> h.device_id then begin
    count_metric "puf.reconstruct.mismatch_total";
    Error
      (Helper_mismatch
         (Printf.sprintf "helper enrolled for device 0x%Lx, booting 0x%Lx"
            h.device_id (Device.id device)))
  end
  else if Device.chains device <> h.chains then begin
    count_metric "puf.reconstruct.mismatch_total";
    Error
      (Helper_mismatch
         (Printf.sprintf "helper covers %d chains, device has %d" h.chains
            (Device.chains device)))
  end
  else begin
    let rec go attempt =
      if attempt > config.attempts then begin
        count_metric "puf.reconstruct.exhausted_total";
        Error (Exhausted { attempts = config.attempts })
      end
      else begin
        let key = decode_once ~votes:config.votes ?env device h in
        (* The tag doubles as integrity check (tampered helper never
           verifies) and key-correctness check (a wrong decode never
           verifies): acceptance implies the enrolled key, up to 2^-256. *)
        if Enroll.tag_matches ~key h then begin
          count_metric "puf.reconstruct.ok_total";
          if Eric_telemetry.Control.is_enabled () then
            Eric_telemetry.Registry.observe "puf.reconstruct.attempts"
              (float_of_int attempt);
          Ok { key; attempts_used = attempt }
        end
        else begin
          count_metric "puf.reconstruct.retry_total";
          go (attempt + 1)
        end
      end
    in
    go 1
  end
