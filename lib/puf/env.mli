(** Environmental operating points for the PUF silicon model.

    The paper takes Arbiter-PUF stability as a given; real arbiter chains
    do not cooperate.  Evaluation noise scales with temperature excursion
    and supply droop, and slow aging (NBTI/HCI) drifts the stage delays
    themselves.  An operating point bundles the three knobs; every PUF
    evaluation can be taken at a point, so campaigns can sweep the
    automotive corners (-40 °C … +85 °C, ±10 % supply, years of aging)
    and measure what survives. *)

type t = {
  temperature_c : float;  (** junction temperature *)
  voltage_v : float;  (** core supply; nominal 1.0 V *)
  age_years : float;  (** accumulated field aging *)
}

val nominal : t
(** 25 °C, 1.0 V, age zero: [noise_scale nominal = 1.0], no drift. *)

val noise_scale : t -> float
(** Multiplier applied to every chain's per-evaluation noise sigma at this
    operating point.  1.0 at nominal; a bit above 12x at the harshest
    corner (cold-lowv), which is the regime the fuzzy extractor is sized
    for. *)

val age_shift_ps : t -> float
(** Magnitude (ps) of the aging drift applied along each delay element's
    fixed drift direction. *)

val corners : (string * t) list
(** Named sweep points: nominal, cold, hot, low-voltage, cold-lowv,
    hot-lowv, aged, aged-hot-lowv. *)

val stress : t
(** The screening corner enrollment defaults to (cold-lowv, ≥ 10x noise):
    a challenge that looks stable here is stable everywhere milder. *)

val of_name : string -> t option
(** Look up a named corner. *)

val name : t -> string option
(** Inverse of {!of_name} for exactly the named corners. *)

val pp : Format.formatter -> t -> unit
