(** Fuzzy-extractor key reconstruction (the boot-time half of {!Enroll}).

    Reads every enrolled challenge a few times at the current operating
    point, majority-decodes through the repetition-code sketch, and
    accepts the candidate key only if it reproduces the helper blob's
    keyed tag.  Retries are bounded; when they run out the caller gets a
    typed {!failure}, never a wrong key — the KMU and HDE refuse to load
    rather than decrypt with garbage. *)

type failure =
  | Helper_mismatch of string
      (** Helper data structurally wrong for this device (other device id,
          chain-count disagreement).  Retrying cannot help. *)
  | Exhausted of { attempts : int }
      (** Every bounded attempt decoded to a key that failed tag
          verification: either the environment is beyond what enrollment
          screened for, or the helper blob was tampered with.  Either way
          the device must refuse to boot the protected program. *)

type config = {
  attempts : int;  (** bounded re-read retries per boot (default 3) *)
  votes : int;  (** noisy reads per challenge per attempt (default 3, forced odd) *)
}

val default_config : config

type reconstruction = {
  key : bytes;  (** the enrolled key, tag-verified *)
  attempts_used : int;  (** 1-based attempt that verified *)
}

val reconstruct :
  ?config:config -> ?env:Env.t -> Device.t -> Enroll.helper ->
  (reconstruction, failure) result
(** Reconstruct the enrolled key on a device at an operating point.
    Emits [puf.reconstruct.*] telemetry counters. *)

val pp_failure : Format.formatter -> failure -> unit
val failure_to_string : failure -> string
