(** Behavioural model of a delay-based Arbiter PUF chain.

    The paper's PUF Key Generator uses Arbiter PUFs: two nominally identical
    delay paths race through a chain of challenge-controlled switch stages,
    and an arbiter at the end emits '0' or '1' depending on which edge wins.
    Manufacturing process variation makes the per-stage delays
    device-unique; we model them as Gaussian perturbations around a nominal
    stage delay, drawn once per device from a seed (the stand-in for
    silicon), plus a smaller per-evaluation Gaussian noise term (thermal /
    supply noise) that makes marginal challenges flip occasionally — the
    behaviour real Arbiter PUFs exhibit and the reason the key generator
    applies majority voting. *)

type t
(** One manufactured chain: fixed per-stage delays plus an arbiter skew. *)

type params = {
  stages : int;  (** challenge bits per chain; the paper uses 8 *)
  nominal_delay_ps : float;  (** mean per-stage propagation delay *)
  variation_sigma_ps : float;  (** process-variation std-dev, per delay *)
  noise_sigma_ps : float;  (** per-evaluation noise std-dev, per delay *)
}

val default_params : params
(** 8 stages, 100 ps nominal, 3 ps variation, 0.12 ps noise — small enough
    variation to keep responses balanced, noise two orders below variation
    (typical silicon Arbiter-PUF regime: a few % unstable bits). *)

val manufacture : ?drift_rng:Eric_util.Prng.t -> params -> Eric_util.Prng.t -> t
(** Draw one chain's delays from the process-variation distribution.
    [drift_rng], when given, draws a fixed unit aging-drift direction for
    every delay element from its own stream (so silicon draws — and hence
    all enrolled keys — are independent of whether aging is modelled);
    without it the chain does not age. *)

val stages : t -> int

val eval : ?noise:Eric_util.Prng.t -> ?env:Env.t -> t -> challenge:int -> bool
(** [eval t ~challenge] races the two edges for the given challenge (low
    [stages t] bits used) and returns the arbiter decision.  Without [noise]
    the evaluation is the chain's noiseless ideal response; with [noise],
    each delay is perturbed for this evaluation only.  [env] (default
    {!Env.nominal}) scales the noise sigma by {!Env.noise_scale} and shifts
    each delay along its drift direction by {!Env.age_shift_ps}. *)

val noise_sigma : t -> float
(** Per-delay evaluation-noise std-dev this chain was manufactured with
    (at nominal conditions, before {!Env.noise_scale}). *)

val delay_difference : ?env:Env.t -> t -> challenge:int -> float
(** Signed top-minus-bottom arrival-time difference in ps for a noiseless
    evaluation; exposes how marginal a challenge is (near 0 = unstable).
    With [env], includes the operating point's aging drift. *)
