type t = { temperature_c : float; voltage_v : float; age_years : float }

let nominal = { temperature_c = 25.0; voltage_v = 1.0; age_years = 0.0 }

let nominal_temperature_c = 25.0
let nominal_voltage_v = 1.0

(* Noise grows roughly linearly in |ΔT| (thermal jitter) and sharply with
   supply droop (reduced gate overdrive).  The coefficients are calibrated
   so the harshest automotive corner (-40 °C at 0.9 V) lands a bit above
   12x the nominal evaluation-noise sigma — comfortably past the 10x
   regime where plain majority voting starts dropping keys. *)
let temp_coeff_per_c = 0.08
let voltage_coeff = 10.0

let noise_scale env =
  let dt = Float.abs (env.temperature_c -. nominal_temperature_c) in
  let dv = Float.abs (env.voltage_v -. nominal_voltage_v) in
  (1.0 +. (temp_coeff_per_c *. dt)) *. (1.0 +. (voltage_coeff *. dv))

(* Slow NBTI/HCI-style aging: each delay element drifts along a fixed
   per-device direction (drawn at manufacture) at this rate.  Ten years
   shifts every delay by about one process-variation sigma third — enough
   to walk marginal bits across the decision threshold. *)
let aging_rate_ps_per_year = 0.1

let age_shift_ps env = aging_rate_ps_per_year *. env.age_years

let corners =
  [ ("nominal", nominal);
    ("cold", { temperature_c = -40.0; voltage_v = 1.0; age_years = 0.0 });
    ("hot", { temperature_c = 85.0; voltage_v = 1.0; age_years = 0.0 });
    ("low-voltage", { temperature_c = 25.0; voltage_v = 0.9; age_years = 0.0 });
    ("cold-lowv", { temperature_c = -40.0; voltage_v = 0.9; age_years = 0.0 });
    ("hot-lowv", { temperature_c = 85.0; voltage_v = 0.9; age_years = 0.0 });
    ("aged", { temperature_c = 25.0; voltage_v = 1.0; age_years = 10.0 });
    ("aged-hot-lowv", { temperature_c = 85.0; voltage_v = 0.9; age_years = 10.0 }) ]

let stress = { temperature_c = -40.0; voltage_v = 0.9; age_years = 0.0 }

let of_name name = List.assoc_opt name corners

let name env =
  List.find_map (fun (n, e) -> if e = env then Some n else None) corners

let pp fmt env =
  match name env with
  | Some n ->
    Format.fprintf fmt "%s (%.0f C, %.2f V, %gy, %.1fx noise)" n env.temperature_c env.voltage_v
      env.age_years (noise_scale env)
  | None ->
    Format.fprintf fmt "%.0f C, %.2f V, %gy (%.1fx noise)" env.temperature_c env.voltage_v
      env.age_years (noise_scale env)
