type report = {
  uniformity_pct : float;
  uniqueness_pct : float;
  reliability_pct : float;
  key_failure_rate : float;
}

let hamming a b =
  let n = Eric_util.Bitvec.length a in
  let d = ref 0 in
  for i = 0 to n - 1 do
    if Eric_util.Bitvec.get a i <> Eric_util.Bitvec.get b i then incr d
  done;
  !d

let evaluate ?(devices = 32) ?(challenges_per_device = 128) ?(reeval = 32) ?env ~seed () =
  if devices < 2 then invalid_arg "Metrics.evaluate: need at least two devices";
  let rng = Eric_util.Prng.create ~seed in
  let population = Array.init devices (fun i -> Device.manufacture (Int64.of_int (i + 1001))) in
  let chains = Device.chains population.(0) in
  let width = Arbiter.default_params.Arbiter.stages in
  (* One shared random challenge vector per trial so inter-device distances
     are measured on identical inputs. *)
  let trials =
    Array.init challenges_per_device (fun _ ->
        Array.init chains (fun _ -> Eric_util.Prng.int rng ~bound:(1 lsl width)))
  in
  let ideal = Array.map (fun d -> Array.map (fun c -> Device.respond ~noisy:false d c) trials) population in
  (* Uniformity: fraction of ones in ideal responses. *)
  let ones = ref 0 and total = ref 0 in
  Array.iter
    (Array.iter (fun r ->
         total := !total + Eric_util.Bitvec.length r;
         ones := !ones + Eric_util.Bitvec.popcount r))
    ideal;
  let uniformity = 100.0 *. float_of_int !ones /. float_of_int !total in
  (* Uniqueness: mean pairwise HD between devices on the same challenges. *)
  let inter = ref 0.0 and pairs = ref 0 in
  for i = 0 to devices - 1 do
    for j = i + 1 to devices - 1 do
      for t = 0 to challenges_per_device - 1 do
        inter := !inter +. (float_of_int (hamming ideal.(i).(t) ideal.(j).(t)) /. float_of_int chains);
        incr pairs
      done
    done
  done;
  let uniqueness = 100.0 *. !inter /. float_of_int !pairs in
  (* Reliability: noisy re-evaluations vs the ideal response. *)
  let intra = ref 0.0 and samples = ref 0 in
  Array.iteri
    (fun i d ->
      Array.iteri
        (fun t c ->
          for _ = 1 to reeval do
            let r = Device.respond ~noisy:true ?env d c in
            intra := !intra +. (float_of_int (hamming ideal.(i).(t) r) /. float_of_int chains);
            incr samples
          done)
        trials)
    population;
  let reliability = 100.0 -. (100.0 *. !intra /. float_of_int !samples) in
  (* Key stability: regenerate the majority-voted key and compare. *)
  let failures = ref 0 and regens = 20 in
  Array.iter
    (fun d ->
      let enrolled = Device.puf_key d in
      for _ = 1 to regens do
        if not (Bytes.equal (Device.puf_key ?env d) enrolled) then incr failures
      done)
    population;
  {
    uniformity_pct = uniformity;
    uniqueness_pct = uniqueness;
    reliability_pct = reliability;
    key_failure_rate = float_of_int !failures /. float_of_int (regens * devices);
  }

let pp_report fmt r =
  Format.fprintf fmt
    "uniformity %.2f%% | uniqueness %.2f%% | reliability %.2f%% | key failure rate %.4f"
    r.uniformity_pct r.uniqueness_pct r.reliability_pct r.key_failure_rate
