(** A PUF device: the paper's PUF Key Generator (PKG) configuration of
    32 Arbiter chains, each answering an 8-bit challenge with 1 response
    bit, yielding a 32-bit device-unique PUF key.

    Devices are "manufactured" deterministically from a [device_id]: two
    devices with different ids get independent process-variation draws (so
    their keys differ), and re-creating the same id reproduces the same
    silicon — the property ERIC relies on for two-way authentication. *)

type t

type id = int64
(** Manufacturing identity (wafer position stand-in).  Not a secret; the
    secret is the delay pattern it seeds. *)

val manufacture : ?params:Arbiter.params -> ?chains:int -> id -> t
(** Default 32 chains of [Arbiter.default_params]. *)

val id : t -> id
val chains : t -> int

val challenge_width : t -> int
(** Challenge bits per chain (the arbiter stage count). *)

val challenge_set : t -> int array
(** The enrolled challenge vector (one challenge per chain), derived from a
    public per-device enrolment seed.  Every element fits the chain's
    challenge width. *)

val respond : ?noisy:bool -> ?env:Env.t -> t -> int array -> Eric_util.Bitvec.t
(** Raw single-shot responses, one bit per chain.  [noisy] (default true)
    applies per-evaluation delay noise; pass [false] for the ideal
    response.  [env] (default {!Env.nominal}) sets the operating point
    (noise scaling, aging drift). *)

val eval_chain : ?noisy:bool -> ?env:Env.t -> t -> chain:int -> challenge:int -> bool
(** One chain's response to one challenge — what enrollment oversampling
    and fuzzy-extractor reconstruction read, since they use challenge
    pools wider than one challenge per chain.
    @raise Invalid_argument when [chain] is out of range. *)

val chain_margin : ?env:Env.t -> t -> chain:int -> challenge:int -> float
(** Noiseless race margin (ps) of one chain on one challenge at an
    operating point; enrollment screens candidates on its magnitude. *)

val accumulated_noise_sigma : ?env:Env.t -> t -> float
(** Std-dev (ps) of the total race-time noise at an operating point
    (per-delay sigma accumulated over the ~2x stages delays a race sums).
    Enrollment sizes its margin floor in multiples of this. *)

val puf_key : ?votes:int -> ?env:Env.t -> t -> bytes
(** The device's PUF key: majority vote over [votes] (default 15, forced
    odd) noisy evaluations of the enrolled challenge set, packed LSB-first
    into bytes (4 bytes for the default 32 chains).  This is the immutable
    hardware identity the Key Management Unit derives working keys from.
    At a harsh [env] the vote can flip — the failure mode the fuzzy
    extractor ({!Fuzzy}) exists to absorb. *)

val key_bits : t -> int
(** Number of key bits = number of chains. *)
