(** Standard PUF quality metrics over a population of simulated devices.

    The paper takes the Arbiter PUF's fitness for purpose as given; these
    metrics validate that our silicon model behaves like one, and feed the
    ablation bench: uniformity should sit near 50 %, uniqueness (inter-device
    Hamming distance) near 50 %, and reliability (response stability under
    evaluation noise) in the high 90s — the regime where 15-vote majority
    key generation is essentially error-free. *)

type report = {
  uniformity_pct : float;  (** mean fraction of '1' responses per device, % *)
  uniqueness_pct : float;  (** mean pairwise inter-device Hamming distance, % *)
  reliability_pct : float;  (** 100 − mean intra-device noisy HD, % *)
  key_failure_rate : float;  (** fraction of majority-voted key regenerations
                                 that differ from the enrolled key *)
}

val evaluate :
  ?devices:int -> ?challenges_per_device:int -> ?reeval:int -> ?env:Env.t ->
  seed:int64 -> unit -> report
(** Monte-Carlo evaluation over a fresh population ([devices] default 32,
    [challenges_per_device] default 128 random challenges, [reeval] default
    32 noisy re-evaluations per challenge).  [env] (default {!Env.nominal})
    sets the operating point for the noisy evaluations and key
    regenerations; enrollment (ideal responses, enrolled keys) stays
    nominal, as in the factory. *)

val pp_report : Format.formatter -> report -> unit
