(** Zipf-distributed popularity: rank [r] (0-based) of [n] is drawn with
    probability proportional to [(r+1)^-exponent].  Exponent 0 degrades
    to uniform; ~1 is the classic web-traffic skew that makes a small
    artifact cache absorb most of an update service's load. *)

type t

val create : ?exponent:float -> n:int -> unit -> t
(** Precompute the CDF for [n] ranks (default exponent 1.0).
    @raise Invalid_argument when [n < 1] or the exponent is negative. *)

val size : t -> int
val exponent : t -> float

val pmf : t -> int -> float
(** Probability of one rank; the whole family sums to 1. *)

val sample : t -> Eric_util.Prng.t -> int
(** One draw by CDF inversion — deterministic given the PRNG state. *)
