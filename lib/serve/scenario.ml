type profile =
  | Constant of float
  | Burst of { base : float; peak : float; from_s : float; until_s : float }

type channel = Clean | Flaky of { probability : float }

type faults = No_faults | Soft_errors of { per_exec : float }

type costs = {
  overhead_ns : int64;
  prepare_ns : int64;
  disk_hit_ns : int64;
  mem_hit_ns : int64;
  personalize_ns_per_byte : float;
  wire_ns_per_byte : float;
  rotate_ns : int64;
  cycle_ns : float;
}

type budgets = {
  p99_budget_ms : float;
  refusal_budget : float;
  quarantine_budget : float;
}

type t = {
  name : string;
  description : string;
  profile : profile;
  duration_ns : int64;
  tenants : int;
  devices_per_tenant : int;
  zipf_exponent : float;
  rotate_fraction : float;
  queue_capacity : int;
  servers : int;
  channel : channel;
  faults : faults;
  guard : Eric_hw.Guard.config;
  costs : costs;
  budgets : budgets;
}

let rate t s =
  match t.profile with
  | Constant r -> r
  | Burst { base; peak; from_s; until_s } ->
      if s >= from_s && s < until_s then peak else base

let max_rate t =
  match t.profile with
  | Constant r -> r
  | Burst { base; peak; _ } -> Float.max base peak

(* One shared cost model, calibrated so a cache-hit update costs a few
   simulated milliseconds: fixed handling overhead, compile-on-miss two
   orders slower than a memory hit, byte-proportional personalize/wire
   costs and the HDE ingest billed at 25 MHz (40 ns per cycle). *)
let default_costs =
  {
    overhead_ns = 2_000_000L;
    prepare_ns = 120_000_000L;
    disk_hit_ns = 8_000_000L;
    mem_hit_ns = 200_000L;
    personalize_ns_per_byte = 40.0;
    wire_ns_per_byte = 25.0;
    rotate_ns = 3_000_000L;
    cycle_ns = 40.0;
  }

let steady =
  {
    name = "steady";
    description = "constant 60 req/s, clean channel, light rotation";
    profile = Constant 60.0;
    duration_ns = 30_000_000_000L;
    tenants = 3;
    devices_per_tenant = 16;
    zipf_exponent = 1.0;
    rotate_fraction = 0.02;
    queue_capacity = 256;
    servers = 2;
    channel = Clean;
    faults = No_faults;
    guard = Eric_hw.Guard.disabled;
    costs = default_costs;
    budgets = { p99_budget_ms = 250.0; refusal_budget = 0.01; quarantine_budget = 0.01 };
  }

let flash_crowd =
  {
    name = "flash-crowd";
    description = "40 req/s background with a 25x burst from t=10s to t=15s";
    profile = Burst { base = 40.0; peak = 1000.0; from_s = 10.0; until_s = 15.0 };
    duration_ns = 30_000_000_000L;
    tenants = 3;
    devices_per_tenant = 16;
    zipf_exponent = 1.0;
    rotate_fraction = 0.01;
    queue_capacity = 256;
    servers = 2;
    channel = Clean;
    faults = No_faults;
    guard = Eric_hw.Guard.disabled;
    costs = default_costs;
    budgets = { p99_budget_ms = 1_000.0; refusal_budget = 0.35; quarantine_budget = 0.01 };
  }

let rotation_storm =
  {
    name = "rotation-storm";
    description = "half of all requests rotate keys, over a noisy channel";
    profile = Constant 50.0;
    duration_ns = 30_000_000_000L;
    tenants = 3;
    devices_per_tenant = 16;
    zipf_exponent = 1.0;
    rotate_fraction = 0.5;
    queue_capacity = 256;
    servers = 2;
    channel = Flaky { probability = 0.25 };
    faults = No_faults;
    guard = Eric_hw.Guard.disabled;
    costs = default_costs;
    budgets = { p99_budget_ms = 400.0; refusal_budget = 0.01; quarantine_budget = 0.05 };
  }

let soft_error_storm =
  {
    name = "soft-error-storm";
    description = "DRAM upsets corrupt 30% of executions; the scrub guard re-delivers";
    (* Guarded on-device execution is billed into service time (the
       scrub passes alone multiply run time), so this scenario trades
       throughput for integrity: a quarter of steady's rate on more
       servers, with a latency budget that absorbs re-delivery. *)
    profile = Constant 15.0;
    duration_ns = 20_000_000_000L;
    tenants = 3;
    devices_per_tenant = 16;
    zipf_exponent = 1.0;
    rotate_fraction = 0.02;
    queue_capacity = 256;
    servers = 3;
    channel = Clean;
    faults = Soft_errors { per_exec = 0.3 };
    guard = Eric_hw.Guard.fetch_and_scrub ~interval_cycles:512;
    costs = default_costs;
    (* At a 30% upset rate, a device drawing [quarantine_refusals] guard
       faults across one delivery (~0.3^4) is expected a few times per
       run, and every later request to it re-counts — the budget admits
       that; what it must never admit is a silent escape
       ([faults_undetected], a violation at any count). *)
    budgets = { p99_budget_ms = 2_000.0; refusal_budget = 0.01; quarantine_budget = 0.10 };
  }

let presets = [ steady; flash_crowd; rotation_storm; soft_error_storm ]
let names = List.map (fun t -> t.name) presets

let by_name name =
  match List.find_opt (fun t -> t.name = name) presets with
  | Some t -> Ok t
  | None ->
      Error
        (Printf.sprintf "unknown scenario %S (expected one of: %s)" name
           (String.concat ", " names))

let with_duration t ~seconds =
  if not (Float.is_finite seconds) || seconds <= 0.0 then
    invalid_arg "Scenario.with_duration: need a positive duration";
  { t with duration_ns = Eric_util.Sim_clock.of_s seconds }

let with_rate_scale t ~factor =
  if not (Float.is_finite factor) || factor <= 0.0 then
    invalid_arg "Scenario.with_rate_scale: need a positive factor";
  let profile =
    match t.profile with
    | Constant r -> Constant (r *. factor)
    | Burst b -> Burst { b with base = b.base *. factor; peak = b.peak *. factor }
  in
  { t with profile }

let channel_of t ~seed ~seq =
  match t.channel with
  | Clean -> Eric_fleet.Channel.clean
  | Flaky { probability } ->
      (* Salt by request sequence: a fleet channel's draw is a pure
         function of (seed, device, attempt), so one fixed seed would
         corrupt the same attempts of every ship to a device, run-long.
         Per-request salting keeps transit noise independent across
         requests and still a pure function of the run seed. *)
      let seed = Int64.add (Int64.add seed 0x5EEDL) (Int64.of_int seq) in
      Eric_fleet.Channel.flaky ~probability ~seed ()

let pp ppf t =
  Fmt.pf ppf "%-16s %s (%.0fs, %d tenants x %d devices, queue %d, %d servers)"
    t.name t.description
    (Eric_util.Sim_clock.to_s t.duration_ns)
    t.tenants t.devices_per_tenant t.queue_capacity t.servers
