type latency = { p50_ms : float; p99_ms : float; max_ms : float; mean_ms : float }

type report = {
  scenario : string;
  seed : int64;
  duration_s : float;
  completed_s : float;
  requests : int;
  served : int;
  refused : int;
  quarantined : int;
  rotations : int;
  retried : int;
  queue_peak : int;
  faults_injected : int;
  faults_detected : int;
  faults_undetected : int;
  fault_recovered : int;
  cache_hits : int;
  cache_disk_hits : int;
  cache_misses : int;
  cache_hit_rate : float;
  latency : latency;
  refusal_rate : float;
  quarantine_rate : float;
  budgets : Scenario.budgets;
  violations : string list;
}

let passed r = r.violations = []

let rate ~total n = if total = 0 then 0.0 else float_of_int n /. float_of_int total

let violations ~(budgets : Scenario.budgets) ~latency ~refusal_rate ~quarantine_rate
    ~faults_undetected =
  let v = ref [] in
  (* Not a rate: one execution completing on corrupted memory is a
     correctness failure, not a degradation. *)
  if faults_undetected > 0 then
    v :=
      Printf.sprintf "%d execution(s) ran corrupted memory undetected" faults_undetected
      :: !v;
  if latency.p99_ms > budgets.p99_budget_ms then
    v :=
      Printf.sprintf "p99 latency %.1f ms exceeds budget %.1f ms" latency.p99_ms
        budgets.p99_budget_ms
      :: !v;
  if refusal_rate > budgets.refusal_budget then
    v :=
      Printf.sprintf "refusal rate %.4f exceeds budget %.4f" refusal_rate
        budgets.refusal_budget
      :: !v;
  if quarantine_rate > budgets.quarantine_budget then
    v :=
      Printf.sprintf "quarantine rate %.4f exceeds budget %.4f" quarantine_rate
        budgets.quarantine_budget
      :: !v;
  List.rev !v

let make ?(faults_injected = 0) ?(faults_detected = 0) ?(faults_undetected = 0)
    ?(fault_recovered = 0) ~(scenario : Scenario.t) ~seed ~completed_ns ~requests ~served
    ~refused ~quarantined ~rotations ~retried ~queue_peak ~cache ~latency_hist () =
  let h = latency_hist in
  let ms ns = ns /. 1e6 in
  let latency =
    {
      p50_ms = ms (Eric_telemetry.Histogram.quantile h 0.5);
      p99_ms = ms (Eric_telemetry.Histogram.quantile h 0.99);
      max_ms = ms (Eric_telemetry.Histogram.max_value h);
      mean_ms = ms (Eric_telemetry.Histogram.mean h);
    }
  in
  let refusal_rate = rate ~total:requests refused in
  let quarantine_rate = rate ~total:requests quarantined in
  {
    scenario = scenario.Scenario.name;
    seed;
    duration_s = Eric_util.Sim_clock.to_s scenario.Scenario.duration_ns;
    completed_s = Eric_util.Sim_clock.to_s completed_ns;
    requests;
    served;
    refused;
    quarantined;
    rotations;
    retried;
    queue_peak;
    faults_injected;
    faults_detected;
    faults_undetected;
    fault_recovered;
    cache_hits = Eric_fleet.Artifact_cache.hits cache;
    cache_disk_hits = Eric_fleet.Artifact_cache.disk_hits cache;
    cache_misses = Eric_fleet.Artifact_cache.misses cache;
    cache_hit_rate = Eric_fleet.Artifact_cache.hit_rate cache;
    latency;
    refusal_rate;
    quarantine_rate;
    budgets = scenario.Scenario.budgets;
    violations =
      violations ~budgets:scenario.Scenario.budgets ~latency ~refusal_rate
        ~quarantine_rate ~faults_undetected;
  }

let to_json r =
  let open Eric_telemetry.Json in
  Obj
    [
      ("scenario", Str r.scenario);
      ("seed", Num (Int64.to_float r.seed));
      ("duration_s", Num r.duration_s);
      ("completed_s", Num r.completed_s);
      ("requests", Num (float_of_int r.requests));
      ("served", Num (float_of_int r.served));
      ("refused", Num (float_of_int r.refused));
      ("quarantined", Num (float_of_int r.quarantined));
      ("rotations", Num (float_of_int r.rotations));
      ("retried", Num (float_of_int r.retried));
      ("queue_peak", Num (float_of_int r.queue_peak));
      ( "integrity",
        Obj
          [
            ("faults_injected", Num (float_of_int r.faults_injected));
            ("faults_detected", Num (float_of_int r.faults_detected));
            ("faults_undetected", Num (float_of_int r.faults_undetected));
            ("recovered", Num (float_of_int r.fault_recovered));
          ] );
      ( "cache",
        Obj
          [
            ("hits", Num (float_of_int r.cache_hits));
            ("disk_hits", Num (float_of_int r.cache_disk_hits));
            ("misses", Num (float_of_int r.cache_misses));
            ("hit_rate", Num r.cache_hit_rate);
          ] );
      ( "latency_ms",
        Obj
          [
            ("p50", Num r.latency.p50_ms);
            ("p99", Num r.latency.p99_ms);
            ("max", Num r.latency.max_ms);
            ("mean", Num r.latency.mean_ms);
          ] );
      ("refusal_rate", Num r.refusal_rate);
      ("quarantine_rate", Num r.quarantine_rate);
      ( "budgets",
        Obj
          [
            ("p99_ms", Num r.budgets.Scenario.p99_budget_ms);
            ("refusal_rate", Num r.budgets.Scenario.refusal_budget);
            ("quarantine_rate", Num r.budgets.Scenario.quarantine_budget);
          ] );
      ("violations", List (List.map (fun v -> Str v) r.violations));
      ("passed", Bool (passed r));
    ]

let pp_integrity ppf r =
  if r.faults_injected > 0 || r.faults_detected > 0 then
    Fmt.pf ppf "integrity: %d fault(s) injected, %d detected, %d undetected, %d recovered@,"
      r.faults_injected r.faults_detected r.faults_undetected r.fault_recovered

let pp ppf r =
  Fmt.pf ppf
    "@[<v>scenario %s (seed %Ld): %d requests over %.1fs simulated@,\
     served %d, refused %d (%.2f%%), quarantined %d (%.2f%%), rotations %d, \
     retried %d@,\
     latency p50 %.2f ms, p99 %.2f ms (budget %.0f ms), max %.2f ms@,\
     cache hit rate %.2f%% (%d mem / %d disk / %d miss), queue peak %d@,\
     %aSLO %s%a@]"
    r.scenario r.seed r.requests r.completed_s r.served r.refused
    (100.0 *. r.refusal_rate) r.quarantined
    (100.0 *. r.quarantine_rate)
    r.rotations r.retried r.latency.p50_ms r.latency.p99_ms
    r.budgets.Scenario.p99_budget_ms r.latency.max_ms
    (100.0 *. r.cache_hit_rate)
    r.cache_hits r.cache_disk_hits r.cache_misses r.queue_peak
    pp_integrity r
    (if passed r then "PASSED" else "VIOLATED")
    Fmt.(list ~sep:nop (any "@,  - " ++ string))
    r.violations
