(** One tenant of the update service: its own fleet registry (multi-source
    isolation — tenants share no keys, because each enrollment derives its
    key under the tenant's KMU label) plus an array of enrolled device ids
    for O(1) uniform picks by the traffic model. *)

type t

val provision :
  ?engine:Eric_engine.Engine.config ->
  label:string -> first_id:Eric_puf.Device.id -> count:int -> unit -> t
(** Enroll [count] devices starting at [first_id] (unenrollable dies are
    skipped deterministically) under KMU label [label].  Reliability
    screening runs as {!Eric_engine.Engine} jobs in waves of consecutive
    candidate ids ([engine], default deterministic); the surviving
    population does not depend on the scheduler.
    @raise Failure when too many consecutive dies fail enrollment. *)

val label : t -> string
val registry : t -> Eric_fleet.Registry.t
val device_count : t -> int

val device_id : t -> int -> Eric_puf.Device.id
(** @raise Invalid_argument when the index is out of range. *)

val entry : t -> int -> Eric_fleet.Registry.entry
(** The registry entry of the [i]th device (always present). *)
