(** Bounded FIFO admission queue — the backpressure point of the serve
    loop.  An offer is decided immediately: [Accepted] enqueues in
    arrival order, [Shed] refuses and bumps the shed counter exactly
    once.  Capacity 0 means "never queue" and sheds every offer.

    Telemetry: [serve.queue.offers_total{result=accepted|shed}]. *)

type 'a t

type verdict = Accepted | Shed

val create : capacity:int -> 'a t
(** @raise Invalid_argument on negative capacity. *)

val offer : 'a t -> 'a -> verdict
val pop : 'a t -> 'a option
(** FIFO: the oldest accepted element still queued. *)

val capacity : 'a t -> int
val length : 'a t -> int
val accepted : 'a t -> int
val shed : 'a t -> int
val peak : 'a t -> int
(** High-water mark of queue depth over the run. *)
