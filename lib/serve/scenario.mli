(** Scenario presets: named, fully-specified serve configurations.

    A scenario fixes everything but the seed — traffic shape, population,
    queue capacity, server count, channel quality, the simulated cost
    model and the SLO budgets — so [(scenario, seed)] names exactly one
    run and its JSON report. *)

type profile =
  | Constant of float  (** req/s for the whole run *)
  | Burst of { base : float; peak : float; from_s : float; until_s : float }
      (** [base] req/s, stepping to [peak] inside [[from_s, until_s)] *)

type channel = Clean | Flaky of { probability : float }

type faults = No_faults | Soft_errors of { per_exec : float }
(** [Soft_errors] corrupts resident DRAM (a single text-region bit flip)
    on that fraction of executions, after HDE validation and before the
    first instruction — the post-validation exposure window the runtime
    integrity guard covers. *)

type costs = {
  overhead_ns : int64;  (** fixed handling cost per served request *)
  prepare_ns : int64;  (** compile+prepare on an artifact-cache miss *)
  disk_hit_ns : int64;  (** re-prepare from a cached compiled image *)
  mem_hit_ns : int64;  (** prepared build already in memory *)
  personalize_ns_per_byte : float;  (** keystream XOR over the image *)
  wire_ns_per_byte : float;  (** serialized package transmission *)
  rotate_ns : int64;  (** KMU re-provisioning round-trip *)
  cycle_ns : float;  (** one HDE ingest cycle (40 ns = 25 MHz) *)
}

type budgets = {
  p99_budget_ms : float;  (** blown when served p99 latency exceeds this *)
  refusal_budget : float;  (** max refused/total (queue shed) *)
  quarantine_budget : float;  (** max quarantined/total *)
}

type t = {
  name : string;
  description : string;
  profile : profile;
  duration_ns : int64;
  tenants : int;
  devices_per_tenant : int;
  zipf_exponent : float;
  rotate_fraction : float;
  queue_capacity : int;
  servers : int;
  channel : channel;
  faults : faults;
  guard : Eric_hw.Guard.config;
      (** integrity-guard mechanism provisioned on every device the run
          addresses; scenarios with [faults] enable one so corrupted
          executions fault instead of completing silently *)
  costs : costs;
  budgets : budgets;
}

val steady : t
val flash_crowd : t
val rotation_storm : t

val soft_error_storm : t
(** DRAM soft errors on 30% of executions under a tight
    fetch+scrub guard: every corrupted run must integrity-fault and be
    absorbed by re-delivery (the report's [faults_undetected] must stay
    0 for the SLO to pass). *)

val presets : t list
val names : string list
val by_name : string -> (t, string) result

val rate : t -> float -> float
(** Target req/s at simulated second [s]. *)

val max_rate : t -> float

val with_duration : t -> seconds:float -> t
val with_rate_scale : t -> factor:float -> t
(** Scale the profile's rates (CI smoke runs shrink both). *)

val channel_of : t -> seed:int64 -> seq:int -> Eric_fleet.Channel.t
(** Materialize the channel spec for one request; flaky draws are salted
    by (run seed, request sequence) so transit noise is independent
    across requests yet a pure function of the run seed. *)

val pp : Format.formatter -> t -> unit
