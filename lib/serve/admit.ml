(* Bounded FIFO admission queue with explicit refusal.

   A request either enters the queue ([Accepted]) or is refused on the
   spot ([Shed]) — there is no blocking and no silent drop, so the SLO
   report's refusal count is exactly the number of [Shed] results.
   Capacity 0 is a valid policy ("never queue"): every offer sheds. *)

type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  mutable accepted : int;
  mutable shed : int;
  mutable peak : int;
}

type verdict = Accepted | Shed

let create ~capacity =
  if capacity < 0 then invalid_arg "Admit.create: negative capacity";
  { capacity; q = Queue.create (); accepted = 0; shed = 0; peak = 0 }

let capacity t = t.capacity
let length t = Queue.length t.q
let accepted t = t.accepted
let shed t = t.shed
let peak t = t.peak

let offer t x =
  if Queue.length t.q >= t.capacity then begin
    t.shed <- t.shed + 1;
    Eric_telemetry.Registry.inc ~labels:[ ("result", "shed") ] "serve.queue.offers_total";
    Shed
  end
  else begin
    Queue.push x t.q;
    t.accepted <- t.accepted + 1;
    if Queue.length t.q > t.peak then t.peak <- Queue.length t.q;
    Eric_telemetry.Registry.inc ~labels:[ ("result", "accepted") ] "serve.queue.offers_total";
    Accepted
  end

let pop t = Queue.take_opt t.q
