(* Request-stream generation.

   Arrivals are an inhomogeneous Poisson process sampled by thinning: we
   draw candidate arrivals at the scenario's peak rate and keep each with
   probability rate(t)/max_rate.  Everything — arrival instants, tenant,
   device, program rank, update-vs-rotate — is drawn from the one PRNG
   handed in, so a (scenario, seed) pair names exactly one stream. *)

type kind = Update | Rotate

let kind_label = function Update -> "update" | Rotate -> "rotate"

type request = {
  r_seq : int;
  r_arrival_ns : int64;
  r_tenant : int;
  r_device : int;
  r_program : int;
  r_kind : kind;
}

let ns_per_s = 1_000_000_000.0

(* Exp(rate) inter-arrival, guarding log 0. *)
let exp_draw rng ~rate =
  let u = Eric_util.Prng.float rng in
  let u = if u >= 1.0 then Float.pred 1.0 else u in
  -.Float.log (1.0 -. u) /. rate

let generate ~rng ~rate ~max_rate ~duration_ns ~tenants ~devices_per_tenant
    ~programs ~rotate_fraction () =
  if max_rate <= 0.0 then invalid_arg "Traffic.generate: max_rate must be positive";
  if tenants < 1 || devices_per_tenant < 1 then
    invalid_arg "Traffic.generate: need at least one tenant and one device";
  if rotate_fraction < 0.0 || rotate_fraction > 1.0 then
    invalid_arg "Traffic.generate: rotate_fraction outside [0,1]";
  let horizon_s = Int64.to_float duration_ns /. ns_per_s in
  let out = ref [] in
  let seq = ref 0 in
  let t = ref 0.0 in
  let continue = ref true in
  while !continue do
    t := !t +. exp_draw rng ~rate:max_rate;
    if !t >= horizon_s then continue := false
    else begin
      let lambda = rate !t in
      let keep = Eric_util.Prng.float rng < lambda /. max_rate in
      if keep then begin
        let r_tenant = Eric_util.Prng.int rng ~bound:tenants in
        let r_device = Eric_util.Prng.int rng ~bound:devices_per_tenant in
        let r_program = Zipf.sample programs rng in
        let r_kind =
          if Eric_util.Prng.float rng < rotate_fraction then Rotate else Update
        in
        let r_arrival_ns = Int64.of_float (!t *. ns_per_s) in
        out := { r_seq = !seq; r_arrival_ns; r_tenant; r_device; r_program; r_kind } :: !out;
        incr seq
      end
    end
  done;
  List.rev !out
