(* A tenant = one fleet registry plus an indexable device population.

   Provisioning enrolls [count] devices starting at [first_id], skipping
   the occasional die that cannot field enough stable chains — the same
   id always fails (or succeeds) enrollment, so the surviving population
   is deterministic.  Devices live in an array because the serve loop
   picks them by uniform index millions of times per run.

   The reliability screening (the expensive part) runs as engine jobs in
   waves of consecutive candidate ids; each die's screen depends only on
   its own PUF noise stream, and registry records commit in id order, so
   the surviving population is independent of the scheduler. *)

module Engine = Eric_engine.Engine
module Job = Eric_engine.Job

type t = {
  t_label : string;
  t_registry : Eric_fleet.Registry.t;
  t_devices : Eric_puf.Device.id array;
}

let provision ?(engine = Engine.default_config) ~label ~first_id ~count () =
  if count < 1 then invalid_arg "Tenant.provision: need at least one device";
  let registry = Eric_fleet.Registry.create () in
  let ids = ref [] in
  let enrolled = ref 0 in
  let next = ref first_id in
  let tried = ref 0 in
  let budget = (count * 8) + 64 in
  let spec =
    {
      Job.admit = Job.always_admit;
      prepare =
        (fun id -> Ok (id, Eric_puf.Enroll.enroll (Eric_fleet.Registry.device registry id)));
      personalize = (fun x -> Ok x);
      ship = (fun x -> Ok x);
      verify = (fun x -> Ok x);
    }
  in
  while !enrolled < count do
    let wave = min (count - !enrolled) (budget - !tried) in
    if wave <= 0 then
      failwith
        (Printf.sprintf "Tenant.provision %s: %d/%d dies enrolled after %d tries"
           label !enrolled count !tried);
    let items = Array.init wave (fun i -> Int64.add !next (Int64.of_int i)) in
    next := Int64.add !next (Int64.of_int wave);
    tried := !tried + wave;
    let commit (c : _ Engine.completion) =
      match c.Engine.c_outcome with
      | Job.Done (id, Ok e) -> (
        match Eric_fleet.Registry.enroll ~label ~enrollment:e registry id with
        | Ok entry ->
          ids := entry.Eric_fleet.Registry.device_id :: !ids;
          incr enrolled
        | Error _ -> ())
      | Job.Done (_, Error _) | Job.Faulted _ | Job.Skipped _ -> ()
    in
    let (_ : _ Engine.report) =
      Engine.run ~config:engine ~commit ~name:"serve.tenant.provision" spec items
    in
    ()
  done;
  { t_label = label; t_registry = registry; t_devices = Array.of_list (List.rev !ids) }

let label t = t.t_label
let registry t = t.t_registry
let device_count t = Array.length t.t_devices

let device_id t i =
  if i < 0 || i >= Array.length t.t_devices then
    invalid_arg "Tenant.device_id: index out of range";
  t.t_devices.(i)

let entry t i =
  match Eric_fleet.Registry.find t.t_registry (device_id t i) with
  | Some e -> e
  | None -> assert false (* enrolled above; registry never forgets *)
