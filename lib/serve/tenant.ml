(* A tenant = one fleet registry plus an indexable device population.

   Provisioning enrolls [count] devices starting at [first_id], skipping
   the occasional die that cannot field enough stable chains — the same
   id always fails (or succeeds) enrollment, so the surviving population
   is deterministic.  Devices live in an array because the serve loop
   picks them by uniform index millions of times per run. *)

type t = {
  t_label : string;
  t_registry : Eric_fleet.Registry.t;
  t_devices : Eric_puf.Device.id array;
}

let provision ~label ~first_id ~count =
  if count < 1 then invalid_arg "Tenant.provision: need at least one device";
  let registry = Eric_fleet.Registry.create () in
  let ids = ref [] in
  let enrolled = ref 0 in
  let candidate = ref first_id in
  let tried = ref 0 in
  let budget = (count * 8) + 64 in
  while !enrolled < count do
    if !tried >= budget then
      failwith
        (Printf.sprintf "Tenant.provision %s: %d/%d dies enrolled after %d tries"
           label !enrolled count !tried);
    (match Eric_fleet.Registry.enroll ~label registry !candidate with
    | Ok e ->
        ids := e.Eric_fleet.Registry.device_id :: !ids;
        incr enrolled
    | Error _ -> ());
    candidate := Int64.add !candidate 1L;
    incr tried
  done;
  { t_label = label; t_registry = registry; t_devices = Array.of_list (List.rev !ids) }

let label t = t.t_label
let registry t = t.t_registry
let device_count t = Array.length t.t_devices

let device_id t i =
  if i < 0 || i >= Array.length t.t_devices then
    invalid_arg "Tenant.device_id: index out of range";
  t.t_devices.(i)

let entry t i =
  match Eric_fleet.Registry.find t.t_registry (device_id t i) with
  | Some e -> e
  | None -> assert false (* enrolled above; registry never forgets *)
