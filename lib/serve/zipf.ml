(* Zipf(s) popularity over n ranks: weight of rank r is r^-s.

   The CDF is precomputed once; sampling is CDF inversion by binary
   search on a uniform draw, so a stream of program picks is a pure
   function of the PRNG state — the property every serve scenario's
   determinism rests on. *)

type t = { exponent : float; cdf : float array }

let create ?(exponent = 1.0) ~n () =
  if n < 1 then invalid_arg "Zipf.create: need at least one rank";
  if not (Float.is_finite exponent) || exponent < 0.0 then
    invalid_arg "Zipf.create: exponent must be finite and non-negative";
  let weights = Array.init n (fun i -> Float.pow (float_of_int (i + 1)) (-.exponent)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  (* the running sum can land at 0.999...; the last bucket owns the rest *)
  cdf.(n - 1) <- 1.0;
  { exponent; cdf }

let size t = Array.length t.cdf
let exponent t = t.exponent

let pmf t rank =
  if rank < 0 || rank >= size t then invalid_arg "Zipf.pmf: rank out of range";
  if rank = 0 then t.cdf.(0) else t.cdf.(rank) -. t.cdf.(rank - 1)

(* Smallest rank whose cumulative probability covers u. *)
let sample t rng =
  let u = Eric_util.Prng.float rng in
  let lo = ref 0 and hi = ref (size t - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo
