(** Deterministic request streams for the serve loop.

    Arrivals follow an inhomogeneous Poisson process (thinning against
    the scenario's peak rate), program popularity is Zipf, and a
    configurable fraction of requests ask for a key rotation instead of
    a plain update.  The whole stream is a pure function of the PRNG. *)

type kind =
  | Update  (** ship the device its personalized image at the current epoch *)
  | Rotate  (** bump the device's key epoch, then ship at the new epoch *)

val kind_label : kind -> string

type request = {
  r_seq : int;  (** 0-based arrival order *)
  r_arrival_ns : int64;  (** simulated arrival instant *)
  r_tenant : int;
  r_device : int;  (** index within the tenant's device population *)
  r_program : int;  (** Zipf rank into the workloads corpus *)
  r_kind : kind;
}

val generate :
  rng:Eric_util.Prng.t ->
  rate:(float -> float) ->
  max_rate:float ->
  duration_ns:int64 ->
  tenants:int ->
  devices_per_tenant:int ->
  programs:Zipf.t ->
  rotate_fraction:float ->
  unit ->
  request list
(** [rate t] is the target request rate (req/s) at simulated second [t];
    it must never exceed [max_rate].  Returns requests sorted by arrival
    time.  @raise Invalid_argument on non-positive [max_rate], empty
    populations or a rotate fraction outside [0,1]. *)
