(** SLO accounting for one serve run.

    Every number is simulated: latencies are completion minus arrival on
    the run's {!Eric_util.Sim_clock}, so the report is identical across
    machines and across runs with the same (scenario, seed).

    Definitions: [refusal_rate] = queue-shed requests / generated
    requests; [quarantine_rate] = requests whose device was (or already
    had been) quarantined / generated requests; latency quantiles come
    from {!Eric_telemetry.Histogram.quantile} (upper bucket edge, [<=]
    ~19% above the true value) over {e served} requests only. *)

type latency = { p50_ms : float; p99_ms : float; max_ms : float; mean_ms : float }

type report = {
  scenario : string;
  seed : int64;
  duration_s : float;  (** configured traffic horizon *)
  completed_s : float;  (** simulated instant the last request finished *)
  requests : int;  (** generated arrivals *)
  served : int;  (** delivered to the device *)
  refused : int;  (** shed at the admission queue *)
  quarantined : int;  (** quarantined during service, or skipped because
                          the device was already quarantined *)
  rotations : int;  (** key rotations performed *)
  retried : int;  (** served, but only after channel retries *)
  queue_peak : int;
  faults_injected : int;  (** soft errors the scenario injected into DRAM *)
  faults_detected : int;
      (** corrupted executions that aborted visibly — by the runtime
          integrity guard, or by a machine trap the corruption itself
          caused (the verif campaign's [trap_is_detection] convention);
          one request can contribute several across its delivery
          attempts *)
  faults_undetected : int;
      (** injected faults whose execution completed without a guard
          fault — code ran on corrupted memory; any non-zero count is an
          SLO violation regardless of budgets *)
  fault_recovered : int;
      (** requests delivered despite at least one guard fault — the
          re-delivery path absorbed the upset *)
  cache_hits : int;
  cache_disk_hits : int;
  cache_misses : int;
  cache_hit_rate : float;
  latency : latency;
  refusal_rate : float;
  quarantine_rate : float;
  budgets : Scenario.budgets;
  violations : string list;  (** empty iff every budget held *)
}

val passed : report -> bool

val make :
  ?faults_injected:int ->
  ?faults_detected:int ->
  ?faults_undetected:int ->
  ?fault_recovered:int ->
  scenario:Scenario.t ->
  seed:int64 ->
  completed_ns:int64 ->
  requests:int ->
  served:int ->
  refused:int ->
  quarantined:int ->
  rotations:int ->
  retried:int ->
  queue_peak:int ->
  cache:Eric_fleet.Artifact_cache.t ->
  latency_hist:Eric_telemetry.Histogram.t ->
  unit ->
  report
(** Assemble the report and check it against the scenario's budgets.
    The integrity counters (all default 0) come from fault-injecting
    scenarios; [faults_undetected > 0] is always a violation. *)

val to_json : report -> Eric_telemetry.Json.t
(** The stable JSON schema documented in [docs/serve.md]. *)

val pp : Format.formatter -> report -> unit
