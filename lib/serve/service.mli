(** The serve loop: drive one scenario's request stream through the
    bounded admission queue into [k] simulated servers, each request
    flowing through the fleet pipeline (artifact cache → personalize →
    ship, with key rotations via {!Eric_fleet.Registry.target_for}).

    Deterministic end to end: same (scenario, seed) → byte-identical
    {!Slo.report} (and JSON), regardless of machine or wall-clock. *)

val run :
  ?seed:int64 ->
  ?cache_dir:string ->
  ?policy:Eric_fleet.Backoff.policy ->
  scenario:Scenario.t ->
  unit ->
  Slo.report
(** [seed] (default 1) drives traffic and channel draws; [cache_dir]
    enables the artifact cache's disk tier; [policy] (default
    {!Eric_fleet.Backoff.default}) is the shipper's retry policy.
    @raise Failure if a corpus workload fails to compile (a build bug,
    not a scenario outcome). *)
