(* The OTA update service loop: a discrete-event M/G/k simulation.

   [servers] is an array of per-server free-at instants; the admission
   queue holds requests FIFO between arrival and service start.  All
   latency is simulated — the sum of the scenario's cost model plus the
   shipper's simulated backoff — so a (scenario, seed) pair produces a
   byte-identical SLO report on any machine.

   The run's {!Eric_util.Sim_clock} is a monotone high-water mark over
   every processed event; the shipper advances it too (its retry
   backoff), so fleet delivery and the service loop account time on one
   shared timeline. *)

module Registry = Eric_fleet.Registry
module Shipper = Eric_fleet.Shipper
module Cache = Eric_fleet.Artifact_cache
module T = Eric_telemetry.Registry

let corpus = Array.of_list Eric_workloads.Workloads.all

type state = {
  scenario : Scenario.t;
  policy : Eric_fleet.Backoff.policy;
  seed : int64;
  clock : Eric_util.Sim_clock.t;
  cache : Cache.t;
  tenants : Tenant.t array;
  mode : Eric.Config.mode;
  latency : Eric_telemetry.Histogram.t;
  mutable served : int;
  mutable refused : int;
  mutable quarantined : int;
  mutable rotations : int;
  mutable retried : int;
  mutable faults_injected : int;
  mutable faults_detected : int;
  mutable faults_undetected : int;
  mutable fault_recovered : int;
}

let quarantine ~reason st tenant (r : Traffic.request) =
  st.quarantined <- st.quarantined + 1;
  T.inc ~labels:[ ("reason", reason) ] "serve.quarantined_total";
  let reg = Tenant.registry tenant in
  let entry = Tenant.entry tenant r.r_device in
  match entry.Registry.status with
  | Registry.Quarantined _ -> ()
  | Registry.Active ->
      Registry.update reg { entry with Registry.status = Registry.Quarantined reason }

(* Rotate the device to epoch+1 under its enrolled label.  A successful
   rotation re-activates a quarantined device (fresh keys cure a stale or
   hostile key); a failed key reconstruction at the new epoch quarantines
   it for re-enrollment instead. *)
let rotate st tenant (r : Traffic.request) =
  let reg = Tenant.registry tenant in
  let entry = Tenant.entry tenant r.r_device in
  let context =
    { Eric.Kmu.epoch = entry.Registry.epoch + 1; label = entry.Registry.label }
  in
  let target = Registry.target_for reg ~context entry.Registry.device_id in
  match Eric.Target.key_state target with
  | Error _ -> None
  | Ok key ->
      st.rotations <- st.rotations + 1;
      T.inc "serve.rotations_total";
      Registry.update reg
        {
          entry with
          Registry.epoch = entry.Registry.epoch + 1;
          key;
          status = Registry.Active;
        };
      Some (target, key)

(* Serve one admitted request starting at [start]; returns its completion
   instant.  Every cost is simulated per the scenario's cost model. *)
let serve_one st (r : Traffic.request) ~start =
  let c = st.scenario.Scenario.costs in
  let tenant = st.tenants.(r.r_tenant) in
  let entry = Tenant.entry tenant r.r_device in
  let dur = ref c.Scenario.overhead_ns in
  let add ns = dur := Int64.add !dur ns in
  let add_f f = add (Int64.of_float f) in
  let completion () = Int64.add start !dur in
  T.inc ~labels:[ ("kind", Traffic.kind_label r.r_kind) ] "serve.requests_total";
  match (entry.Registry.status, r.r_kind) with
  | Registry.Quarantined _, Traffic.Update ->
      (* the service refuses to ship to a quarantined device; only a
         rotation (re-key) or re-enrollment brings it back *)
      st.quarantined <- st.quarantined + 1;
      T.inc ~labels:[ ("reason", "already-quarantined") ] "serve.quarantined_total";
      completion ()
  | _ -> (
      let wl = corpus.(r.r_program) in
      match Cache.get_or_compile st.cache ~mode:st.mode wl.Eric_workloads.Workloads.source_small with
      | Error e -> failwith ("serve: corpus workload failed to compile: " ^ e)
      | Ok (prepared, outcome) -> (
          add
            (match outcome with
            | Cache.Memory_hit -> c.Scenario.mem_hit_ns
            | Cache.Disk_hit -> c.Scenario.disk_hit_ns
            | Cache.Miss -> c.Scenario.prepare_ns);
          let keyed =
            match r.r_kind with
            | Traffic.Update ->
                Some (Registry.target (Tenant.registry tenant) entry, entry.Registry.key)
            | Traffic.Rotate ->
                add c.Scenario.rotate_ns;
                rotate st tenant r
          in
          match keyed with
          | None ->
              quarantine
                ~reason:(Shipper.quarantine_label Shipper.Key_reconstruction_failed)
                st tenant r;
              completion ()
          | Some (target, key) ->
              let build = Eric.Source.personalize ~key prepared in
              add_f
                (float_of_int build.Eric.Source.plain_size
                *. c.Scenario.personalize_ns_per_byte);
              let channel = Scenario.channel_of st.scenario ~seed:st.seed ~seq:r.r_seq in
              let fires, soft_errors =
                match st.scenario.Scenario.faults with
                | Scenario.No_faults -> (None, None)
                | Scenario.Soft_errors { per_exec } ->
                    let fires = ref 0 in
                    (* One bit flipped in resident text, after HDE
                       validation and before the first instruction —
                       salted by (run seed, request, attempt) so a retry
                       of the same request draws an independent upset. *)
                    let inject ~attempt memory (image : Eric_rv.Program.t) =
                      let rng =
                        Eric_util.Prng.create
                          ~seed:
                            (Int64.logxor st.seed
                               (Int64.of_int ((r.r_seq * 0x10001) + attempt)))
                      in
                      if Eric_util.Prng.float rng < per_exec then begin
                        incr fires;
                        let text_len = Eric_rv.Program.text_size image in
                        let bit = Eric_util.Prng.int rng ~bound:(text_len * 8) in
                        let addr = Eric_rv.Program.Layout.text_base + (bit / 8) in
                        Eric_sim.Memory.write_u8 memory addr
                          (Eric_sim.Memory.read_u8 memory addr lxor (1 lsl (bit mod 8)))
                      end
                    in
                    (Some fires, Some inject)
              in
              let execute = Option.is_some soft_errors in
              let delivery =
                Shipper.ship ~policy:st.policy ~channel ~execute
                  ?fuel:(if execute then Some 2_000_000 else None)
                  ~clock:st.clock ?soft_errors ~build ~target ()
              in
              (match fires with
              | None -> ()
              | Some fires ->
                  let guard_faults = delivery.Shipper.integrity_faults in
                  (* Same convention as the verif DRAM campaign
                     (trap_is_detection): a corrupted execution the
                     machine aborts with its own fault was caught, not
                     silent — only a run that *completes* on corrupted
                     memory counts as undetected. *)
                  let trap_detected =
                    match delivery.Shipper.outcome with
                    | Shipper.Delivered
                        {
                          exec = Some { Eric_sim.Soc.status = Eric_sim.Cpu.Faulted _; _ };
                          _;
                        }
                      when !fires > guard_faults ->
                        1
                    | _ -> 0
                  in
                  let detected = guard_faults + trap_detected in
                  st.faults_injected <- st.faults_injected + !fires;
                  st.faults_detected <- st.faults_detected + detected;
                  st.faults_undetected <- st.faults_undetected + max 0 (!fires - detected);
                  if !fires > 0 then
                    T.inc ~by:(Int64.of_int !fires) "serve.faults_injected_total";
                  if detected > 0 then
                    T.inc ~by:(Int64.of_int detected) "serve.faults_detected_total");
              add_f
                (float_of_int (delivery.Shipper.wire_bytes * delivery.Shipper.attempts)
                *. c.Scenario.wire_ns_per_byte);
              add delivery.Shipper.backoff_ns;
              (match delivery.Shipper.outcome with
              | Shipper.Delivered { load_cycles; exec } ->
                  add_f (Int64.to_float load_cycles *. c.Scenario.cycle_ns);
                  (* Executed requests also bill on-device run time; the
                     guard's scrub/fetch-check cycles are already charged
                     into [exec_cycles], so its overhead shows up in the
                     served latency, not a side channel. *)
                  (match exec with
                  | Some res ->
                      add_f
                        (Int64.to_float res.Eric_sim.Soc.exec_cycles *. c.Scenario.cycle_ns)
                  | None -> ());
                  if delivery.Shipper.integrity_faults > 0 then begin
                    st.fault_recovered <- st.fault_recovered + 1;
                    T.inc "serve.faults_recovered_total"
                  end;
                  st.served <- st.served + 1;
                  if Shipper.retried delivery then st.retried <- st.retried + 1;
                  T.inc "serve.served_total";
                  let latency_ns =
                    Int64.to_float (Int64.sub (completion ()) r.r_arrival_ns)
                  in
                  Eric_telemetry.Histogram.observe st.latency latency_ns;
                  T.observe "serve.latency_ns" latency_ns
              | Shipper.Quarantined { reason } ->
                  quarantine ~reason:(Shipper.quarantine_label reason) st tenant r);
              completion ()))

let argmin servers =
  let best = ref 0 in
  for i = 1 to Array.length servers - 1 do
    if Int64.compare servers.(i) servers.(!best) < 0 then best := i
  done;
  !best

let run ?(seed = 1L) ?cache_dir ?(policy = Eric_fleet.Backoff.default)
    ~(scenario : Scenario.t) () =
  let rng = Eric_util.Prng.create ~seed in
  let traffic_rng = Eric_util.Prng.split rng in
  let programs =
    Zipf.create ~exponent:scenario.Scenario.zipf_exponent ~n:(Array.length corpus) ()
  in
  let tenants =
    Array.init scenario.Scenario.tenants (fun i ->
        Tenant.provision
          ~label:(Printf.sprintf "tenant-%d" i)
          ~first_id:(Int64.of_int (0x5E0000 + (i * 0x1000)))
          ~count:scenario.Scenario.devices_per_tenant ())
  in
  let st =
    {
      scenario;
      policy;
      seed;
      clock = Eric_util.Sim_clock.create ();
      cache = Cache.create ?dir:cache_dir ();
      tenants;
      mode = Eric.Config.Full;
      latency = Eric_telemetry.Histogram.create ();
      served = 0;
      refused = 0;
      quarantined = 0;
      rotations = 0;
      retried = 0;
      faults_injected = 0;
      faults_detected = 0;
      faults_undetected = 0;
      fault_recovered = 0;
    }
  in
  (* Fault-injecting scenarios provision every device with the scenario's
     integrity guard: corrupted executions must fault (and re-deliver)
     instead of completing silently. *)
  if Eric_hw.Guard.enabled scenario.Scenario.guard then
    Array.iter
      (fun tn ->
        Registry.set_hde (Tenant.registry tn)
          { Eric_hw.Hde.default_config with Eric_hw.Hde.guard = scenario.Scenario.guard })
      tenants;
  let requests =
    Traffic.generate ~rng:traffic_rng ~rate:(Scenario.rate scenario)
      ~max_rate:(Scenario.max_rate scenario)
      ~duration_ns:scenario.Scenario.duration_ns ~tenants:scenario.Scenario.tenants
      ~devices_per_tenant:scenario.Scenario.devices_per_tenant ~programs
      ~rotate_fraction:scenario.Scenario.rotate_fraction ()
  in
  let queue = Admit.create ~capacity:scenario.Scenario.queue_capacity in
  let servers = Array.make scenario.Scenario.servers 0L in
  (* Start queued requests on any server that frees up at or before
     [bound]; service is FIFO in arrival order. *)
  let rec drain bound =
    if Admit.length queue > 0 then begin
      let i = argmin servers in
      if Int64.compare servers.(i) bound <= 0 then begin
        match Admit.pop queue with
        | None -> ()
        | Some h ->
            let start =
              if Int64.compare servers.(i) h.Traffic.r_arrival_ns > 0 then servers.(i)
              else h.Traffic.r_arrival_ns
            in
            let completion = serve_one st h ~start in
            servers.(i) <- completion;
            Eric_util.Sim_clock.advance_to st.clock completion;
            drain bound
      end
    end
  in
  List.iter
    (fun (r : Traffic.request) ->
      Eric_util.Sim_clock.advance_to st.clock r.Traffic.r_arrival_ns;
      drain r.Traffic.r_arrival_ns;
      match Admit.offer queue r with
      | Admit.Shed ->
          st.refused <- st.refused + 1;
          T.inc ~labels:[ ("reason", "queue-shed") ] "serve.refused_total"
      | Admit.Accepted -> drain r.Traffic.r_arrival_ns)
    requests;
  drain Int64.max_int;
  Slo.make ~scenario ~seed
    ~faults_injected:st.faults_injected ~faults_detected:st.faults_detected
    ~faults_undetected:st.faults_undetected ~fault_recovered:st.fault_recovered
    ~completed_ns:(Eric_util.Sim_clock.now_ns st.clock)
    ~requests:(List.length requests) ~served:st.served ~refused:st.refused
    ~quarantined:st.quarantined ~rotations:st.rotations ~retried:st.retried
    ~queue_peak:(Admit.peak queue) ~cache:st.cache ~latency_hist:st.latency ()
