(* Secret-taint propagation over a declared dataflow model.

   The subject is not machine code but a pipeline: named values (a PUF
   response, a derived key, a keystream, package fields, telemetry
   counters) connected by edges describing how each is computed from the
   others.  Taint starts at sources, flows along Copy and Derive edges —
   a value derived from key material is itself key material — and stops
   at Sanitize edges, which model operations whose output is useless
   without the secret (XOR against a fresh keystream, for ERIC).  A
   tainted sink is a violated obligation.

   The fixpoint is the boolean-lattice instance of {!Dataflow}: sanitize
   edges simply do not appear in the solver graph, so solving forward
   from the sources is exactly reachability along propagating edges. *)

module Lattice = struct
  type t = Clean | Tainted

  let bottom = Clean
  let join a b = if a = Tainted || b = Tainted then Tainted else Clean
  let equal (a : t) b = a = b

  let pp fmt = function
    | Clean -> Format.pp_print_string fmt "clean"
    | Tainted -> Format.pp_print_string fmt "tainted"
end

type kind = Copy | Derive | Sanitize

let kind_to_string = function
  | Copy -> "copy"
  | Derive -> "derive"
  | Sanitize -> "sanitize"

type role = Source | Sink of string | Internal

type spec = {
  nodes : (string * role) list;
  edges : (string * kind * string) list;
}

type finding = { sink : string; check : string; path : string list }

type result = {
  tainted : string list;  (** every tainted node, in declaration order *)
  findings : finding list;  (** tainted sinks, with a witness path *)
}

let index_of spec =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i (name, _) ->
      if Hashtbl.mem tbl name then
        invalid_arg (Printf.sprintf "Taint.analyze: duplicate node %s" name);
      Hashtbl.replace tbl name i)
    spec.nodes;
  tbl

module Solver = Dataflow.Make (Lattice)

let analyze spec =
  let idx = index_of spec in
  let node_count = List.length spec.nodes in
  let resolve ctx name =
    match Hashtbl.find_opt idx name with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Taint.analyze: %s edge names unknown node %s" ctx name)
  in
  let propagating =
    List.filter_map
      (fun (src, kind, dst) ->
        let s = resolve (kind_to_string kind) src
        and d = resolve (kind_to_string kind) dst in
        match kind with Copy | Derive -> Some (s, d) | Sanitize -> None)
      spec.edges
  in
  let graph = Dataflow.graph_of_edges ~node_count propagating in
  let names = Array.of_list (List.map fst spec.nodes) in
  let roles = Array.of_list (List.map snd spec.nodes) in
  let boundary =
    List.filteri (fun i _ -> roles.(i) = Source) (Array.to_list names)
    |> List.map (fun n -> (Hashtbl.find idx n, Lattice.Tainted))
  in
  let transfer i v = if roles.(i) = Source then Lattice.Tainted else v in
  let solved = Solver.solve ~boundary ~graph ~transfer () in
  let tainted =
    List.filteri (fun i _ -> solved.Solver.output.(i) = Lattice.Tainted) (Array.to_list names)
  in
  (* Witness path for a tainted sink: BFS backwards along propagating
     edges to the nearest source. *)
  let preds = Array.make node_count [] in
  List.iter (fun (s, d) -> preds.(d) <- s :: preds.(d)) propagating;
  let witness sink_i =
    let parent = Array.make node_count (-1) in
    let seen = Array.make node_count false in
    let q = Queue.create () in
    seen.(sink_i) <- true;
    Queue.add sink_i q;
    let found = ref None in
    while !found = None && not (Queue.is_empty q) do
      let i = Queue.take q in
      if roles.(i) = Source then found := Some i
      else
        List.iter
          (fun p ->
            if not seen.(p) then begin
              seen.(p) <- true;
              parent.(p) <- i;
              Queue.add p q
            end)
          preds.(i)
    done;
    match !found with
    | None -> [ names.(sink_i) ]
    | Some src ->
      let rec follow i acc = if i = -1 then acc else follow parent.(i) (names.(i) :: acc) in
      List.rev (follow src [])
  in
  let findings =
    List.concat
      (List.mapi
         (fun i _ ->
           match roles.(i) with
           | Sink check when solved.Solver.output.(i) = Lattice.Tainted ->
             [ { sink = names.(i); check; path = witness i } ]
           | _ -> [])
         (Array.to_list names))
  in
  { tainted; findings }

let diags result =
  List.map
    (fun f ->
      Diag.errorf ~check:f.check "key material reaches %s (%s)" f.sink
        (String.concat " -> " f.path))
    result.findings
  |> Diag.sort
